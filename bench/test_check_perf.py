#!/usr/bin/env python3
"""Unit tests for check_perf.py's benchmark-keying logic.

Regression cover for the load_medians bug where `base.split("/")[0]`
collapsed arg-suffixed benchmarks ("BM_X/64" vs "BM_X/4096") into one
key, so the gate silently compared the wrong median.

Stdlib only; run directly (``python3 bench/test_check_perf.py``) or via
ctest (registered as ``check_perf_unit``).
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from check_perf import GATED, GATES, load_medians


def write_result(rows):
    """Write a minimal google-benchmark aggregate JSON; return its path."""
    fd, path = tempfile.mkstemp(suffix=".json")
    with os.fdopen(fd, "w") as f:
        json.dump({"benchmarks": rows}, f)
    return path


def median_row(run_name, real_time, unit="ns"):
    return {
        "name": run_name + "_median",
        "run_name": run_name,
        "run_type": "aggregate",
        "aggregate_name": "median",
        "real_time": real_time,
        "time_unit": unit,
    }


class LoadMediansTest(unittest.TestCase):
    def load(self, rows):
        path = write_result(rows)
        try:
            return load_medians(path)
        finally:
            os.unlink(path)

    def test_arg_suffixed_benchmarks_stay_distinct(self):
        medians = self.load([
            median_row("BM_X/64", 1.0),
            median_row("BM_X/4096", 9.0),
        ])
        self.assertEqual(medians, {"BM_X/64": 1.0, "BM_X/4096": 9.0})

    def test_repeats_decoration_is_stripped(self):
        medians = self.load([
            median_row("BM_X/64/repeats:10", 2.5),
            median_row("BM_Plain/repeats:10", 1.5),
        ])
        self.assertEqual(medians, {"BM_X/64": 2.5, "BM_Plain": 1.5})

    def test_colon_decorations_are_stripped_generally(self):
        medians = self.load([
            median_row("BM_X/8/threads:4/repeats:10", 3.0),
        ])
        self.assertEqual(medians, {"BM_X/8": 3.0})

    def test_key_collision_is_an_error(self):
        rows = [
            median_row("BM_X/64/repeats:10", 1.0),
            median_row("BM_X/64/repeats:20", 2.0),
        ]
        with self.assertRaises(SystemExit):
            self.load(rows)

    def test_non_median_aggregates_are_skipped(self):
        medians = self.load([
            median_row("BM_X", 1.0),
            {
                "name": "BM_X_mean",
                "run_name": "BM_X",
                "run_type": "aggregate",
                "aggregate_name": "mean",
                "real_time": 99.0,
                "time_unit": "ns",
            },
        ])
        self.assertEqual(medians, {"BM_X": 1.0})

    def test_time_units_normalize_to_ns(self):
        medians = self.load([median_row("BM_Us", 2.0, unit="us")])
        self.assertEqual(medians, {"BM_Us": 2000.0})


class GatesTest(unittest.TestCase):
    def test_legacy_alias_is_the_default_gate(self):
        self.assertEqual(GATED, GATES["microcheck"])

    def test_gate_names_are_unique_within_each_gate(self):
        for gate, names in GATES.items():
            self.assertEqual(len(names), len(set(names)), gate)


if __name__ == "__main__":
    unittest.main()
