#include "core/sync_objects.h"

#include <algorithm>
#include <thread>

#include "support/backoff.h"

namespace clean
{

// ---------------------------------------------------------------------
// RecoveryToken
// ---------------------------------------------------------------------

void
RecoveryToken::acquire(ThreadId tid, det::DetCount count)
{
    {
        std::lock_guard<std::mutex> guard(m_);
        waiters_.push_back({count, tid});
    }
    SpinWait spin(rt_.config().watchdogMs);
    for (;;) {
        {
            std::lock_guard<std::mutex> guard(m_);
            if (!held_) {
                // Grant to the strict minimum (count, tid) — the Kendo
                // tie-break — so competing recoveries serialize in the
                // same order on every run.
                auto it = std::min_element(
                    waiters_.begin(), waiters_.end(),
                    [](const Waiter &a, const Waiter &b) {
                        return a.count != b.count ? a.count < b.count
                                                  : a.tid < b.tid;
                    });
                if (it != waiters_.end() && it->tid == tid) {
                    waiters_.erase(it);
                    held_ = true;
                    return;
                }
            }
        }
        if (CLEAN_UNLIKELY(rt_.aborted())) {
            deregister(tid);
            throw ExecutionAborted();
        }
        if (CLEAN_UNLIKELY(spin.expired())) {
            deregister(tid);
            rt_.raiseDeadlock("RecoveryToken::acquire", tid,
                              spin.elapsedMs());
        }
        spin.pause();
    }
}

void
RecoveryToken::release()
{
    std::lock_guard<std::mutex> guard(m_);
    held_ = false;
}

void
RecoveryToken::deregister(ThreadId tid)
{
    std::lock_guard<std::mutex> guard(m_);
    std::erase_if(waiters_,
                  [&](const Waiter &w) { return w.tid == tid; });
}

// ---------------------------------------------------------------------
// CleanMutex
// ---------------------------------------------------------------------

CleanMutex::CleanMutex(CleanRuntime &rt)
    : rt_(rt), vc_(rt.config().epoch, rt.config().maxThreads)
{
    rt_.registerSyncClock(&vc_);
}

CleanMutex::~CleanMutex()
{
    rt_.unregisterSyncClock(&vc_);
}

void
CleanMutex::lock(ThreadContext &ctx)
{
    auto &kendo = rt_.kendo();
    const ThreadId tid = ctx.tid();
    // Kendo det_lock: retry under successive deterministic turns; every
    // failed attempt advances logical time so the holder can reach its
    // unlock turn (§2.4). With Kendo disabled, acquireTurn degenerates
    // into rollover/abort polling and this is a plain spin lock.
    // acquireTurn provides the backoff while waiting for the holder's
    // progress; a plain yield between attempts keeps the handoff fast.
    // The watchdog spans the whole acquisition: a holder that never
    // unlocks (e.g. a killed thread) becomes a DeadlockError, not a
    // silent spin.
    SpinWait watchdog(rt_.config().watchdogMs);
    for (;;) {
        ctx.acquireTurn();
        if (m_.try_lock())
            break;
        kendo.increment(tid);
        rt_.throwIfAborted();
        if (CLEAN_UNLIKELY(watchdog.expired()))
            rt_.raiseDeadlock("CleanMutex::lock", tid,
                              watchdog.elapsedMs());
        std::this_thread::yield();
    }
    // Acquire: synchronize-with every earlier release of this mutex —
    // unless the injection plan drops this happens-before edge (the
    // SkipAcquire fault; properly-locked accesses by later holders then
    // surface as deterministic downstream races).
    if (CLEAN_LIKELY(!ctx.injectSkipAcquire()))
        ctx.state().vc.joinFrom(vc_);
    kendo.increment(tid);
    ctx.obsSyncAcquire();
}

bool
CleanMutex::tryLock(ThreadContext &ctx)
{
    auto &kendo = rt_.kendo();
    ctx.acquireTurn();
    const bool got = m_.try_lock();
    if (got)
        ctx.state().vc.joinFrom(vc_);
    kendo.increment(ctx.tid());
    if (got)
        ctx.obsSyncAcquire();
    return got;
}

void
CleanMutex::unlock(ThreadContext &ctx)
{
    ctx.acquireTurn();
    // Release: publish this thread's clock on the mutex, then advance the
    // thread's own clock so post-release writes are not covered by it.
    vc_.joinFrom(ctx.state().vc);
    rt_.tickClock(ctx.state());
    m_.unlock();
    rt_.kendo().increment(ctx.tid());
    ctx.obsSyncRelease();
}

void
CleanMutex::releaseForWait(ThreadContext &ctx)
{
    // Same as unlock but inside the caller's already-held turn; the
    // caller advances the deterministic counter once for the whole
    // compound wait operation.
    vc_.joinFrom(ctx.state().vc);
    rt_.tickClock(ctx.state());
    m_.unlock();
    ctx.obsSyncRelease();
}

// ---------------------------------------------------------------------
// CleanCondVar
// ---------------------------------------------------------------------

CleanCondVar::CleanCondVar(CleanRuntime &rt)
    : rt_(rt), vc_(rt.config().epoch, rt.config().maxThreads)
{
    rt_.registerSyncClock(&vc_);
}

CleanCondVar::~CleanCondVar()
{
    rt_.unregisterSyncClock(&vc_);
}

void
CleanCondVar::wait(ThreadContext &ctx, CleanMutex &m)
{
    auto &kendo = rt_.kendo();
    const ThreadId tid = ctx.tid();
    std::atomic<bool> flag{false};

    // Registration, blocking and the mutex release form one compound
    // synchronization operation under a single deterministic turn.
    ctx.acquireTurn();
    {
        std::lock_guard<std::mutex> guard(im_);
        waiters_.push_back({tid, &flag});
        kendo.block(tid);
    }
    m.releaseForWait(ctx);
    kendo.increment(tid);

    rt_.setPhase(ctx.record(), ThreadRecord::Phase::Blocked);
    SpinWait spin(rt_.config().watchdogMs);
    while (!flag.load(std::memory_order_acquire)) {
        const bool abortNow = CLEAN_UNLIKELY(rt_.aborted());
        const bool timedOut = !abortNow && CLEAN_UNLIKELY(spin.expired());
        if (CLEAN_UNLIKELY(abortNow || timedOut)) {
            // The signaler may never come; deregister and unwind. If a
            // signaler popped us concurrently it set the flag under im_,
            // so after taking im_ the state is unambiguous.
            {
                std::lock_guard<std::mutex> guard(im_);
                auto it = std::find_if(waiters_.begin(), waiters_.end(),
                                       [&](const Waiter &w) {
                                           return w.flag == &flag;
                                       });
                if (it != waiters_.end())
                    waiters_.erase(it);
                else if (!flag.load(std::memory_order_acquire))
                    continue; // popped but flag not yet set: retry
                else
                    break; // woken after all; proceed normally
            }
            // im_ is released before parking/throwing so signalers (and
            // the rollover resetter waiting on them) cannot deadlock on
            // this waiter.
            rt_.resumeFromBlocked(ctx.record());
            if (abortNow)
                throw ExecutionAborted();
            rt_.raiseDeadlock("CleanCondVar::wait", tid, spin.elapsedMs());
        }
        spin.pause();
    }
    rt_.resumeFromBlocked(ctx.record());

    // Absorb the signaler's happens-before knowledge, then re-acquire
    // the mutex deterministically.
    {
        std::lock_guard<std::mutex> guard(im_);
        ctx.state().vc.joinFrom(vc_);
    }
    m.lock(ctx);
}

void
CleanCondVar::wakeLocked(ThreadContext &ctx, bool all)
{
    auto &kendo = rt_.kendo();
    // Publish the signaler's clock so wakees synchronize with it.
    vc_.joinFrom(ctx.state().vc);
    const det::DetCount resume = kendo.count(ctx.tid()) + 1;
    const std::size_t n = all ? waiters_.size()
                              : std::min<std::size_t>(1, waiters_.size());
    for (std::size_t i = 0; i < n; ++i) {
        Waiter w = waiters_.front();
        waiters_.pop_front();
        // Re-admit before raising the flag: once the flag is visible the
        // wakee may run, and it must already count in the Kendo minimum.
        kendo.unblock(w.tid, resume);
        w.flag->store(true, std::memory_order_release);
    }
}

void
CleanCondVar::signal(ThreadContext &ctx)
{
    ctx.acquireTurn();
    {
        std::lock_guard<std::mutex> guard(im_);
        wakeLocked(ctx, false);
    }
    rt_.tickClock(ctx.state());
    rt_.kendo().increment(ctx.tid());
    ctx.obsSyncRelease();
}

void
CleanCondVar::broadcast(ThreadContext &ctx)
{
    ctx.acquireTurn();
    {
        std::lock_guard<std::mutex> guard(im_);
        wakeLocked(ctx, true);
    }
    rt_.tickClock(ctx.state());
    rt_.kendo().increment(ctx.tid());
    ctx.obsSyncRelease();
}

// ---------------------------------------------------------------------
// CleanBarrier
// ---------------------------------------------------------------------

CleanBarrier::CleanBarrier(CleanRuntime &rt, std::uint32_t parties)
    : rt_(rt), parties_(parties),
      vc_(rt.config().epoch, rt.config().maxThreads),
      releaseVc_(rt.config().epoch, rt.config().maxThreads)
{
    CLEAN_ASSERT(parties_ > 0);
    rt_.registerSyncClock(&vc_);
    rt_.registerSyncClock(&releaseVc_);
    rt_.registerBarrier(this);
}

CleanBarrier::~CleanBarrier()
{
    rt_.unregisterBarrier(this);
    rt_.unregisterSyncClock(&vc_);
    rt_.unregisterSyncClock(&releaseVc_);
}

void
CleanBarrier::arrive(ThreadContext &ctx)
{
    auto &kendo = rt_.kendo();
    const ThreadId tid = ctx.tid();
    std::atomic<bool> flag{false};
    bool last = false;

    ctx.acquireTurn();
    {
        std::lock_guard<std::mutex> guard(im_);
        vc_.joinFrom(ctx.state().vc);
        rt_.tickClock(ctx.state());
        ++arrived_;
        // Retired parties (kill supervision) count as permanently
        // arrived: the survivors must not wait for a dead thread.
        if (arrived_ + retired_ >= parties_) {
            last = true;
            releaseWaitersLocked(ctx);
            // The releaser itself synchronizes with all parties.
            ctx.state().vc.joinFrom(releaseVc_);
        } else {
            waiters_.push_back({tid, &flag});
            kendo.block(tid);
        }
    }
    kendo.increment(tid);
    // The arrival published this thread's clock on the barrier; the
    // matching acquire is recorded when the release clock is absorbed.
    ctx.obsSyncRelease();
    if (last) {
        ctx.obsSyncAcquire();
        return;
    }

    rt_.setPhase(ctx.record(), ThreadRecord::Phase::Blocked);
    SpinWait spin(rt_.config().watchdogMs);
    while (!flag.load(std::memory_order_acquire)) {
        const bool abortNow = CLEAN_UNLIKELY(rt_.aborted());
        const bool timedOut = !abortNow && CLEAN_UNLIKELY(spin.expired());
        if (CLEAN_UNLIKELY(abortNow || timedOut)) {
            {
                std::lock_guard<std::mutex> guard(im_);
                auto it = std::find_if(waiters_.begin(), waiters_.end(),
                                       [&](const Waiter &w) {
                                           return w.flag == &flag;
                                       });
                if (it != waiters_.end()) {
                    waiters_.erase(it);
                    --arrived_;
                } else if (!flag.load(std::memory_order_acquire)) {
                    continue; // released but flag not yet set: retry
                } else {
                    break; // released after all; proceed normally
                }
            }
            rt_.resumeFromBlocked(ctx.record());
            if (abortNow)
                throw ExecutionAborted();
            rt_.raiseDeadlock("CleanBarrier::arrive", tid,
                              spin.elapsedMs());
        }
        spin.pause();
    }
    rt_.resumeFromBlocked(ctx.record());

    {
        std::lock_guard<std::mutex> guard(im_);
        ctx.state().vc.joinFrom(releaseVc_);
    }
    ctx.obsSyncAcquire();
}

void
CleanBarrier::releaseWaitersLocked(ThreadContext &ctx)
{
    auto &kendo = rt_.kendo();
    arrived_ = 0;
    releaseVc_.assign(vc_);
    const det::DetCount resume = kendo.count(ctx.tid()) + 1;
    for (const Waiter &w : waiters_) {
        kendo.unblock(w.tid, resume);
        w.flag->store(true, std::memory_order_release);
    }
    waiters_.clear();
}

void
CleanBarrier::retireParty(ThreadContext &ctx)
{
    std::lock_guard<std::mutex> guard(im_);
    // The dying thread's happens-before knowledge still flows through
    // the barrier (its pre-kill SFRs were released normally).
    vc_.joinFrom(ctx.state().vc);
    ++retired_;
    if (arrived_ > 0 && arrived_ + retired_ >= parties_)
        releaseWaitersLocked(ctx);
}

// Defined here rather than runtime.cc so CleanBarrier is complete.
void
CleanRuntime::retireFromBarriers(ThreadContext &ctx)
{
    std::vector<CleanBarrier *> barriers;
    {
        std::lock_guard<std::mutex> guard(barrierMutex_);
        barriers = barriers_;
    }
    for (CleanBarrier *barrier : barriers)
        barrier->retireParty(ctx);
}

} // namespace clean
