/**
 * @file
 * Name-indexed access to the 26-benchmark suite (§6.1).
 */

#ifndef CLEAN_WORKLOADS_REGISTRY_H
#define CLEAN_WORKLOADS_REGISTRY_H

#include <string>
#include <vector>

#include "workloads/workload.h"

namespace clean::wl
{

/** All benchmark names in the paper's figure order. */
std::vector<std::string> workloadNames();

/** Names of the 17 benchmarks with a racy (unmodified) variant. */
std::vector<std::string> racyWorkloadNames();

/** Singleton kernel for @p name; fatal() on unknown names. */
Workload &findWorkload(const std::string &name);

} // namespace clean::wl

#endif // CLEAN_WORKLOADS_REGISTRY_H
