/**
 * @file
 * Ablation — CLEAN detection vs full precise (FastTrack) vs imprecise
 * (TsanLite) detection cost (§7's comparison, measured).
 *
 * CLEAN's advantage over FastTrack is structural: no read metadata, no
 * O(threads) read-VC scans on writes, no locking. TsanLite is cheap but
 * misses races. This bench measures all three on the same workloads
 * plus the uninstrumented baseline, and a Linear-vs-Sparse shadow
 * comparison (the paper's fixed-layout argument, §4.2).
 */

#include "bench/common.h"

using namespace clean;
using namespace clean::bench;
using namespace clean::wl;

int
main(int argc, char **argv)
{
    BenchConfig config = parseBench(argc, argv, "small");
    if (!config.options.has("workloads")) {
        config.workloads = {"lu_cb", "fft", "barnes", "blackscholes",
                            "water_nsq", "streamcluster"};
    }

    std::printf("=== Ablation: detection baselines "
                "(threads=%u, scale=%s) ===\n\n",
                config.threads,
                config.options.getString("scale", "small").c_str());
    std::printf("%-14s %10s %9s %9s %9s %9s\n", "benchmark",
                "native[s]", "clean", "sparse", "fasttrk", "tsanlite");

    std::vector<double> cleanX, sparseX, ftX, tsanX;
    for (const auto &name : config.workloads) {
        const double native = timedSeconds(
            baseSpec(config, name, BackendKind::Native), config.repeats);
        auto linearSpec = baseSpec(config, name, BackendKind::DetectOnly);
        auto sparseSpec = linearSpec;
        sparseSpec.runtime.shadow = ShadowKind::Sparse;
        const double clean = timedSeconds(linearSpec, config.repeats);
        const double sparse = timedSeconds(sparseSpec, config.repeats);
        const double ft = timedSeconds(
            baseSpec(config, name, BackendKind::FastTrack),
            config.repeats);
        const double tsan = timedSeconds(
            baseSpec(config, name, BackendKind::TsanLite),
            config.repeats);
        if (native <= 0 || clean <= 0 || sparse <= 0 || ft <= 0 ||
            tsan <= 0) {
            std::printf("%-14s %10s\n", name.c_str(), "FAILED");
            continue;
        }
        cleanX.push_back(clean / native);
        sparseX.push_back(sparse / native);
        ftX.push_back(ft / native);
        tsanX.push_back(tsan / native);
        std::printf("%-14s %10.4f %8.2fx %8.2fx %8.2fx %8.2fx\n",
                    name.c_str(), native, clean / native,
                    sparse / native, ft / native, tsan / native);
    }

    std::printf("\ngeomeans: clean %.2fx, sparse-shadow %.2fx, "
                "fasttrack %.2fx, tsan-lite %.2fx\n",
                geomean(cleanX), geomean(sparseX), geomean(ftX),
                geomean(tsanX));
    std::printf("expected shape: clean < fasttrack (no WAR machinery); "
                "linear < sparse shadow\n(fixed-arithmetic EPOCH_ADDRESS "
                "beats the lookup).\n");
    return 0;
}
