/**
 * @file
 * streamcluster — online k-median clustering (PARSEC).
 *
 * Iterations of: assign points to the nearest open center (parallel,
 * read centers / write own assignment), reduce the total cost under a
 * lock, let thread 0 decide whether to open a new center, repeat —
 * with a barrier after every step. streamcluster is PARSEC's most
 * barrier-intensive benchmark; the paper calls it out as the workload
 * that *speeds up* under deterministic synchronization because Kendo's
 * spin-based waits replace pthread blocking waits (Figure 6).
 * Race-free.
 */

#include "workloads/suite/factories.h"
#include "workloads/suite/kernel_common.h"

namespace clean::wl::suite
{

namespace
{

constexpr unsigned kDims = 8;

class Streamcluster : public KernelBase
{
  public:
    Streamcluster() : KernelBase("streamcluster", "parsec", false) {}

    void
    run(Env &env, const WorkloadParams &p) override
    {
        const std::uint64_t nPoints = scaled(p.scale, 512, 2048, 8192);
        const std::uint64_t maxCenters = 24;
        const std::uint64_t rounds = scaled(p.scale, 8, 12, 20);

        auto *points = env.allocShared<double>(nPoints * kDims);
        auto *centers = env.allocShared<double>(maxCenters * kDims);
        auto *nCenters = env.allocShared<std::uint32_t>(1);
        auto *assign = env.allocShared<std::uint32_t>(nPoints);
        auto *totalCost = env.allocShared<double>(1);
        const unsigned costLock = env.createMutex();
        const unsigned phase = env.createBarrier(p.threads);

        {
            Prng init(p.seed);
            for (std::uint64_t i = 0; i < nPoints * kDims; ++i)
                points[i] = init.nextDouble();
            for (unsigned d = 0; d < kDims; ++d)
                centers[d] = points[d];
            nCenters[0] = 1;
            totalCost[0] = 0.0;
        }

        env.parallel(p.threads, [&](Worker &w) {
            const Slice s = sliceOf(nPoints, w.index(), w.count());
            // Private snapshot of the open centers for the assign scan
            // (streamcluster's per-thread center cache).
            auto *centerCache =
                env.allocPrivate<double>(maxCenters * kDims);
            for (std::uint64_t round = 0; round < rounds; ++round) {
                if (w.index() == 0)
                    w.write(&totalCost[0], 0.0);
                w.barrier(phase);

                // Assign: nearest open center for each owned point.
                const std::uint32_t k = w.read(&nCenters[0]);
                for (std::uint32_t c = 0; c < k; ++c)
                    for (unsigned d = 0; d < kDims; ++d)
                        w.writePrivate(&centerCache[c * kDims + d],
                                       w.read(&centers[c * kDims + d]));
                double localCost = 0.0;
                for (std::uint64_t i = s.begin; i < s.end; ++i) {
                    double best = 1e30;
                    std::uint32_t bestC = 0;
                    for (std::uint32_t c = 0; c < k; ++c) {
                        double d2 = 0.0;
                        for (unsigned d = 0; d < kDims; ++d) {
                            const double diff =
                                w.read(&points[i * kDims + d]) -
                                w.readPrivate(
                                    &centerCache[c * kDims + d]);
                            d2 += diff * diff;
                        }
                        if (d2 < best) {
                            best = d2;
                            bestC = c;
                        }
                        w.compute(kDims * 3);
                    }
                    w.write(&assign[i], bestC);
                    localCost += best;
                }
                w.lock(costLock);
                w.update(&totalCost[0], [localCost](double v) {
                    return v + localCost;
                });
                w.unlock(costLock);
                w.barrier(phase);

                // Open a new center if the cost warrants it (thread 0).
                if (w.index() == 0) {
                    const double cost = w.read(&totalCost[0]);
                    const std::uint32_t cur = w.read(&nCenters[0]);
                    if (cur < maxCenters &&
                        cost > 10.0 * static_cast<double>(cur)) {
                        // Seed from a deterministic point index.
                        const std::uint64_t pick =
                            (round * 7919) % nPoints;
                        for (unsigned d = 0; d < kDims; ++d)
                            w.write(&centers[cur * kDims + d],
                                    w.read(&points[pick * kDims + d]));
                        w.write(&nCenters[0], cur + 1);
                    }
                }
                w.barrier(phase);
            }

            std::uint64_t h = 0;
            for (std::uint64_t i = s.begin; i < s.end; ++i)
                h = h * 31 + w.read(&assign[i]);
            w.sink(h);
        });

        env.declareOutput(assign, nPoints * sizeof(std::uint32_t));
    }
};

} // namespace

std::unique_ptr<Workload>
makeStreamcluster()
{
    return std::make_unique<Streamcluster>();
}

} // namespace clean::wl::suite
