/**
 * @file
 * canneal — lock-free simulated annealing for chip placement (PARSEC).
 *
 * canneal's defining trait is its *intentionally racy* synchronization
 * strategy: threads swap element locations concurrently with plain loads
 * and stores, accepting stale reads as annealing noise. The paper could
 * not produce a race-free version by hand ("too many races to be removed
 * manually") and omits canneal from the modified suite —
 * excludedFromModified() reflects that.
 *
 * The racy (canonical) variant swaps placements without any locking:
 * WAW on the location words appears almost immediately. The lockified
 * variant (this reproduction's addition, used only where a clean run is
 * required) orders each swap with two address-ordered element locks.
 */

#include "workloads/suite/factories.h"
#include "workloads/suite/kernel_common.h"

namespace clean::wl::suite
{

namespace
{

class Canneal : public KernelBase
{
  public:
    Canneal() : KernelBase("canneal", "parsec", true) {}

    bool excludedFromModified() const override { return true; }

    void
    run(Env &env, const WorkloadParams &p) override
    {
        const std::uint64_t nElements = scaled(p.scale, 512, 2048, 8192);
        const std::uint64_t swapsPerThread =
            scaled(p.scale, 512, 2048, 8192);
        const unsigned nNets = 4;

        // loc[e] = current (x << 16 | y) placement of element e.
        auto *loc = env.allocShared<std::uint32_t>(nElements);
        // nets[e][k]: elements connected to e (read-only).
        auto *nets = env.allocShared<std::uint32_t>(nElements * nNets);

        std::vector<unsigned> elemLocks;
        for (unsigned i = 0; i < 128; ++i)
            elemLocks.push_back(env.createMutex());

        {
            Prng init(p.seed);
            for (std::uint64_t e = 0; e < nElements; ++e) {
                loc[e] = static_cast<std::uint32_t>(
                    (init.nextBelow(256) << 16) | init.nextBelow(256));
                for (unsigned k = 0; k < nNets; ++k)
                    nets[e * nNets + k] = static_cast<std::uint32_t>(
                        init.nextBelow(nElements));
            }
        }

        const bool racy = p.racy;
        env.parallel(p.threads, [&](Worker &w) {
            auto dist = [&](std::uint32_t a, std::uint32_t b) {
                const int ax = a >> 16, ay = a & 0xffff;
                const int bx = b >> 16, by = b & 0xffff;
                return std::abs(ax - bx) + std::abs(ay - by);
            };
            auto lockOf = [&](std::uint64_t e) {
                return elemLocks[e % elemLocks.size()];
            };

            double temperature = 100.0;
            std::int64_t accepted = 0;
            for (std::uint64_t s = 0; s < swapsPerThread; ++s) {
                const std::uint64_t a = w.rng().nextBelow(nElements);
                std::uint64_t b = w.rng().nextBelow(nElements);
                if (b == a)
                    b = (b + 1) % nElements;

                // Every access to loc[x] is protected by x's shard lock
                // in the lockified variant; neighbor locations are read
                // one lock at a time *before* the swap locks are taken,
                // so locks never nest beyond the address-ordered pair
                // (slightly stale deltas are just annealing noise).
                auto readLoc = [&](std::uint64_t e) {
                    if (racy)
                        return w.read(&loc[e]);
                    const unsigned l = lockOf(e);
                    w.lock(l);
                    const std::uint32_t v = w.read(&loc[e]);
                    w.unlock(l);
                    return v;
                };

                const std::uint32_t locA0 = readLoc(a);
                const std::uint32_t locB0 = readLoc(b);
                // Routing cost delta over both elements' nets.
                std::int64_t delta = 0;
                for (unsigned k = 0; k < nNets; ++k) {
                    const std::uint32_t na =
                        w.read(&nets[a * nNets + k]);
                    const std::uint32_t nb =
                        w.read(&nets[b * nNets + k]);
                    const std::uint32_t ln = readLoc(na);
                    const std::uint32_t lm = readLoc(nb);
                    delta += dist(locB0, ln) - dist(locA0, ln);
                    delta += dist(locA0, lm) - dist(locB0, lm);
                    w.compute(16);
                }
                const bool accept =
                    delta < 0 ||
                    w.rng().nextDouble() <
                        std::exp(-static_cast<double>(delta) /
                                 temperature);
                if (accept) {
                    if (racy) {
                        // The canonical canneal race: concurrent
                        // unlocked swaps (WAW on loc words).
                        w.write(&loc[a], locB0);
                        w.write(&loc[b], locA0);
                    } else {
                        // Shard-ordered two-lock swap.
                        const unsigned s1 =
                            std::min(lockOf(a), lockOf(b));
                        const unsigned s2 =
                            std::max(lockOf(a), lockOf(b));
                        w.lock(s1);
                        if (s2 != s1)
                            w.lock(s2);
                        const std::uint32_t la = w.read(&loc[a]);
                        const std::uint32_t lb = w.read(&loc[b]);
                        w.write(&loc[a], lb);
                        w.write(&loc[b], la);
                        if (s2 != s1)
                            w.unlock(s2);
                        w.unlock(s1);
                    }
                    ++accepted;
                }
                temperature *= 0.9995;
            }
            w.sink(static_cast<std::uint64_t>(accepted));
        });

        env.declareOutput(loc, nElements * sizeof(std::uint32_t));
    }
};

} // namespace

std::unique_ptr<Workload>
makeCanneal()
{
    return std::make_unique<Canneal>();
}

} // namespace clean::wl::suite
