/**
 * @file
 * Cross-detector property tests (§3.4 correctness, empirically).
 *
 * Random programs (reads/writes/lock ops over a small address range)
 * are executed in a fixed random interleaving and fed simultaneously to
 * the CLEAN checker and to FastTrack. Invariants:
 *
 *   1. CLEAN throws exactly at the step of FastTrack's *first* WAW or
 *      RAW report (same schedule, same granularity) — never earlier,
 *      never later, never on a WAR-only schedule.
 *   2. CLEAN never reports a race FastTrack does not (no false
 *      positives relative to the full precise detector).
 */

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "core/linear_shadow.h"
#include "core/race_check.h"
#include "detectors/fasttrack.h"
#include "support/prng.h"

namespace clean
{
namespace
{

constexpr Addr kBase = 0x20000;
constexpr ThreadId kThreads = 4;
constexpr unsigned kLocks = 3;

struct CrossHarness
{
    explicit CrossHarness(const CheckerConfig &config = {})
        : shadow(kBase, 4096), checker(config, shadow),
          fasttrack(kDefaultEpochConfig, kThreads)
    {
        for (ThreadId t = 0; t < kThreads; ++t) {
            threads.emplace_back(kDefaultEpochConfig, t, kThreads);
            threads[t].vc.setClock(t, 1);
            threads[t].refreshOwnEpoch();
        }
        for (unsigned l = 0; l < kLocks; ++l)
            locks.emplace_back(kDefaultEpochConfig, kThreads);
    }

    /** Runs one op on both systems; returns CLEAN's exception if any. */
    std::optional<RaceKind>
    step(Prng &rng)
    {
        const ThreadId t = rng.nextBelow(kThreads);
        const unsigned op = static_cast<unsigned>(rng.nextBelow(10));
        const Addr addr = kBase + rng.nextBelow(48);
        const std::size_t size = 1 + rng.nextBelow(8);
        try {
            if (op < 4) {
                // FastTrack first: CLEAN may throw and abandon the op.
                fasttrack.onWrite(t, addr, size);
                checker.beforeWrite(threads[t], addr, size);
            } else if (op < 8) {
                fasttrack.onRead(t, addr, size);
                checker.afterRead(threads[t], addr, size);
            } else if (op == 8) {
                const unsigned l = rng.nextBelow(kLocks);
                threads[t].vc.joinFrom(locks[l]);
                threads[t].refreshOwnEpoch();
                fasttrack.onAcquire(t, l);
            } else {
                const unsigned l = rng.nextBelow(kLocks);
                locks[l].joinFrom(threads[t].vc);
                threads[t].vc.tick(t);
                threads[t].refreshOwnEpoch();
                fasttrack.onRelease(t, l);
            }
        } catch (const RaceException &e) {
            lastRace = e;
            return e.kind();
        }
        return std::nullopt;
    }

    std::size_t
    fasttrackWawRaw() const
    {
        std::size_t n = 0;
        for (const auto &r : fasttrack.reports())
            n += r.kind != RaceKind::War;
        return n;
    }

    LinearShadow shadow;
    RaceChecker<LinearShadow> checker;
    detectors::FastTrackDetector fasttrack;
    std::vector<ThreadState> threads;
    std::vector<VectorClock> locks;
    /** CLEAN's last thrown race, if any (site identity for parity). */
    std::optional<RaceException> lastRace;
};

CheckerConfig
noFastPathConfig()
{
    CheckerConfig config;
    config.fastPath = false;
    return config;
}

/** Body of the Clean-vs-FastTrack invariant, per checker config. */
void
runCleanVsFastTrack(unsigned seed, const CheckerConfig &config)
{
    Prng rng(seed * 7919 + 13);
    CrossHarness harness(config);
    for (int step = 0; step < 600; ++step) {
        const std::size_t before = harness.fasttrackWawRaw();
        const auto cleanRace = harness.step(rng);
        const std::size_t after = harness.fasttrackWawRaw();
        if (cleanRace) {
            EXPECT_EQ(before, 0u)
                << "CLEAN threw later than FastTrack's first WAW/RAW";
            EXPECT_GT(after, 0u)
                << "CLEAN threw a race FastTrack does not see";
            // CLEAN reports the same kind FastTrack sees at this step.
            bool kindSeen = false;
            for (const auto &r : harness.fasttrack.reports())
                kindSeen |= r.kind == *cleanRace;
            EXPECT_TRUE(kindSeen);
            return;
        }
        EXPECT_EQ(after, 0u)
            << "FastTrack saw a WAW/RAW CLEAN missed at step " << step;
    }
    // Schedule ended exception-free: FastTrack may have WAR reports but
    // no WAW/RAW ones.
    EXPECT_EQ(harness.fasttrackWawRaw(), 0u);
}

class CrossDetector : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CrossDetector, CleanThrowsExactlyAtFirstWawOrRaw)
{
    runCleanVsFastTrack(GetParam(), CheckerConfig{});
}

/** The same invariant with the software fast path disabled: the fast
 *  path must not change what CLEAN detects relative to FastTrack. */
TEST_P(CrossDetector, CleanThrowsExactlyAtFirstWawOrRawNoFastPath)
{
    runCleanVsFastTrack(GetParam(), noFastPathConfig());
}

/**
 * Property pinning the skip-republish fast path: the same random racy
 * program, replayed step-for-step under CLEAN-with-fast-path and
 * CLEAN-without, must produce identical outcomes — throw vs. complete,
 * the same throwing step, the same race site (kind, address, accessor,
 * previous writer and clock).
 */
TEST_P(CrossDetector, FastPathParityWithPlainPath)
{
    Prng rngFast(GetParam() * 7919 + 13);
    Prng rngPlain(GetParam() * 7919 + 13);
    CrossHarness fast;
    CrossHarness plain(noFastPathConfig());
    for (int step = 0; step < 600; ++step) {
        const auto fastRace = fast.step(rngFast);
        const auto plainRace = plain.step(rngPlain);
        ASSERT_EQ(fastRace.has_value(), plainRace.has_value())
            << "fast path diverged from plain path at step " << step;
        if (fastRace) {
            EXPECT_EQ(*fastRace, *plainRace);
            ASSERT_TRUE(fast.lastRace && plain.lastRace);
            EXPECT_EQ(fast.lastRace->addr(), plain.lastRace->addr());
            EXPECT_EQ(fast.lastRace->accessor(),
                      plain.lastRace->accessor());
            EXPECT_EQ(fast.lastRace->previousWriter(),
                      plain.lastRace->previousWriter());
            EXPECT_EQ(fast.lastRace->previousClock(),
                      plain.lastRace->previousClock());
            return;
        }
    }
    // Both completed exception-free.
    EXPECT_FALSE(fast.lastRace || plain.lastRace);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossDetector, ::testing::Range(0u, 60u));

/** WAR-only schedules complete under CLEAN while FastTrack reports. */
TEST(CrossDetectorDirected, WarOnlyScheduleCompletes)
{
    CrossHarness harness;
    // Threads 1..3 read; thread 0 then writes: pure WAR.
    harness.checker.afterRead(harness.threads[1], kBase, 4);
    harness.fasttrack.onRead(1, kBase, 4);
    harness.checker.afterRead(harness.threads[2], kBase, 4);
    harness.fasttrack.onRead(2, kBase, 4);
    EXPECT_NO_THROW(
        harness.checker.beforeWrite(harness.threads[0], kBase, 4));
    harness.fasttrack.onWrite(0, kBase, 4);
    EXPECT_EQ(harness.fasttrackWawRaw(), 0u);
    std::size_t wars = 0;
    for (const auto &r : harness.fasttrack.reports())
        wars += r.kind == RaceKind::War;
    EXPECT_GE(wars, 2u);
}

} // namespace
} // namespace clean
