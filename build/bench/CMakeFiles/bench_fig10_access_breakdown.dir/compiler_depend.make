# Empty compiler generated dependencies file for bench_fig10_access_breakdown.
# This may be replaced when dependencies are built.
