# Empty dependencies file for bench_micro_check.
# This may be replaced when dependencies are built.
