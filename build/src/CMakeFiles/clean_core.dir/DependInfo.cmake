
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/linear_shadow.cc" "src/CMakeFiles/clean_core.dir/core/linear_shadow.cc.o" "gcc" "src/CMakeFiles/clean_core.dir/core/linear_shadow.cc.o.d"
  "/root/repo/src/core/race_check.cc" "src/CMakeFiles/clean_core.dir/core/race_check.cc.o" "gcc" "src/CMakeFiles/clean_core.dir/core/race_check.cc.o.d"
  "/root/repo/src/core/rollover.cc" "src/CMakeFiles/clean_core.dir/core/rollover.cc.o" "gcc" "src/CMakeFiles/clean_core.dir/core/rollover.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/CMakeFiles/clean_core.dir/core/runtime.cc.o" "gcc" "src/CMakeFiles/clean_core.dir/core/runtime.cc.o.d"
  "/root/repo/src/core/shared_heap.cc" "src/CMakeFiles/clean_core.dir/core/shared_heap.cc.o" "gcc" "src/CMakeFiles/clean_core.dir/core/shared_heap.cc.o.d"
  "/root/repo/src/core/sparse_shadow.cc" "src/CMakeFiles/clean_core.dir/core/sparse_shadow.cc.o" "gcc" "src/CMakeFiles/clean_core.dir/core/sparse_shadow.cc.o.d"
  "/root/repo/src/core/sync_objects.cc" "src/CMakeFiles/clean_core.dir/core/sync_objects.cc.o" "gcc" "src/CMakeFiles/clean_core.dir/core/sync_objects.cc.o.d"
  "/root/repo/src/core/vector_clock.cc" "src/CMakeFiles/clean_core.dir/core/vector_clock.cc.o" "gcc" "src/CMakeFiles/clean_core.dir/core/vector_clock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/clean_support.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clean_det.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
