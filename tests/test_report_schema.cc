/**
 * @file
 * Golden-schema test for CleanRuntime::failureReportJson(): every
 * OnRacePolicy mode (and the DeadlockError path) must keep emitting the
 * keys downstream tooling parses. A removed or renamed field fails here,
 * not in a consumer's dashboard.
 */

#include <gtest/gtest.h>

#include <initializer_list>
#include <string>

#include "core/clean.h"
#include "workloads/runner.h"

namespace clean
{
namespace
{

void
expectKeys(const std::string &report,
           std::initializer_list<const char *> keys)
{
    for (const char *key : keys) {
        EXPECT_NE(report.find(key), std::string::npos)
            << "missing " << key << " in:\n"
            << report;
    }
}

/** Keys every report carries regardless of policy or outcome. */
void
expectCommonSchema(const std::string &report, const char *policy)
{
    expectKeys(report,
               {"\"version\":1", "\"policy\":\"", "\"outcome\":\"",
                "\"races\":{", "\"count\":", "\"reported\":[",
                "\"detCounts\":[", "\"checker\":{", "\"sharedReads\":",
                "\"sharedWrites\":", "\"accessedBytes\":",
                "\"epochUpdates\":", "\"rollovers\":"});
    EXPECT_NE(report.find(std::string("\"policy\":\"") + policy + "\""),
              std::string::npos)
        << report;
}

wl::RunSpec
racySpec(OnRacePolicy policy)
{
    wl::RunSpec spec;
    spec.workload = "streamcluster";
    spec.backend = wl::BackendKind::Clean;
    spec.params.threads = 4;
    spec.params.scale = wl::Scale::Test;
    spec.runtime.maxThreads = 32;
    spec.runtime.heap.sharedBytes = std::size_t{256} << 20;
    spec.runtime.heap.privateBytes = std::size_t{64} << 20;
    spec.runtime.onRace = policy;
    spec.runtime.inject.enabled = true;
    spec.runtime.inject.seed = 2;
    spec.runtime.inject.skipAcquireRate = 0.05;
    return spec;
}

/** Keys of one reported race record, including the ISSUE 3 site/SFR
 *  provenance fields. */
constexpr std::initializer_list<const char *> kRaceRecordKeys = {
    "\"kind\":\"",     "\"addrOffset\":",     "\"accessor\":",
    "\"previousWriter\":", "\"previousClock\":", "\"site\":",
    "\"sfr\":"};

TEST(ReportSchema, ThrowPolicy)
{
    const auto result = wl::runWorkload(racySpec(OnRacePolicy::Throw));
    ASSERT_TRUE(result.raceException);
    expectCommonSchema(result.failureReport, "throw");
    expectKeys(result.failureReport, {"\"outcome\":\"race\""});
    expectKeys(result.failureReport, kRaceRecordKeys);
    // No recovery manager under Throw: the block must be absent.
    EXPECT_EQ(result.failureReport.find("\"recovery\":"),
              std::string::npos);
}

TEST(ReportSchema, ReportPolicy)
{
    const auto result = wl::runWorkload(racySpec(OnRacePolicy::Report));
    ASSERT_GT(result.raceCount, 0u);
    expectCommonSchema(result.failureReport, "report");
    expectKeys(result.failureReport, {"\"outcome\":\"race\""});
    expectKeys(result.failureReport, kRaceRecordKeys);
    expectKeys(result.failureReport, {"\"injection\":{", "\"seed\":",
                                      "\"skippedAcquires\":"});
}

TEST(ReportSchema, CountPolicy)
{
    const auto result = wl::runWorkload(racySpec(OnRacePolicy::Count));
    ASSERT_GT(result.raceCount, 0u);
    expectCommonSchema(result.failureReport, "count");
    expectKeys(result.failureReport, {"\"outcome\":\"race\""});
}

TEST(ReportSchema, RecoverPolicy)
{
    const auto result = wl::runWorkload(racySpec(OnRacePolicy::Recover));
    EXPECT_FALSE(result.raceException);
    ASSERT_GT(result.recoveredRaces, 0u);
    expectCommonSchema(result.failureReport, "recover");
    expectKeys(result.failureReport,
               {"\"outcome\":\"recovered\"", "\"recovery\":{",
                "\"episodes\":", "\"attempts\":", "\"recovered\":",
                "\"forcedReplays\":", "\"replayRaces\":",
                "\"replayMismatches\":", "\"rolledBackWrites\":",
                "\"skippedRollbacks\":", "\"recoveredKills\":",
                "\"quarantinedSites\":["});
    expectKeys(result.failureReport, kRaceRecordKeys);
}

TEST(ReportSchema, DeadlockError)
{
    auto spec = racySpec(OnRacePolicy::Throw);
    spec.workload = "fft";
    spec.runtime.watchdogMs = 500;
    spec.runtime.inject.skipAcquireRate = 0;
    spec.runtime.inject.seed = 1;
    spec.runtime.inject.killRate = 0.0005;
    const auto result = wl::runWorkload(spec);
    ASSERT_TRUE(result.deadlock);
    expectCommonSchema(result.failureReport, "throw");
    expectKeys(result.failureReport,
               {"\"outcome\":\"deadlock\"", "\"deadlock\":{",
                "\"waiter\":", "\"stuckSlot\":", "\"waitedMs\":",
                "\"message\":"});
}

} // namespace
} // namespace clean
