file(REMOVE_RECURSE
  "libclean_workloads.a"
)
