#include "core/linear_shadow.h"

#include <sys/mman.h>

#include "support/logging.h"

namespace clean
{

LinearShadow::LinearShadow(Addr dataBase, std::size_t dataSpan)
    : dataBase_(dataBase), dataSpan_(dataSpan)
{
    const std::size_t shadowBytes = dataSpan * kShadowBytesPerByte;
    void *mem = ::mmap(nullptr, shadowBytes, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (mem == MAP_FAILED)
        fatal("LinearShadow: cannot reserve %zu shadow bytes", shadowBytes);
    base_ = static_cast<EpochValue *>(mem);
}

LinearShadow::~LinearShadow()
{
    if (base_)
        ::munmap(base_, dataSpan_ * kShadowBytesPerByte);
}

void
LinearShadow::reset()
{
    // Re-point every shadow page at the kernel zero page; the next touch
    // faults a fresh zeroed page in. This is the paper's O(1) reset.
    if (::madvise(base_, dataSpan_ * kShadowBytesPerByte, MADV_DONTNEED) != 0)
        panic("LinearShadow: madvise(MADV_DONTNEED) failed");
}

} // namespace clean
