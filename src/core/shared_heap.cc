#include "core/shared_heap.h"

#include <sys/mman.h>

#include "support/logging.h"

namespace clean
{

SharedHeap::SharedHeap(const SharedHeapConfig &config) : config_(config)
{
    const std::size_t span = config_.sharedBytes + config_.privateBytes;
    void *mem = ::mmap(nullptr, span, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (mem == MAP_FAILED)
        fatal("SharedHeap: cannot reserve %zu bytes", span);
    base_ = static_cast<unsigned char *>(mem);
}

SharedHeap::~SharedHeap()
{
    if (base_)
        ::munmap(base_, config_.sharedBytes + config_.privateBytes);
}

void *
SharedHeap::bump(std::atomic<std::size_t> &cursor, std::size_t limit,
                 std::size_t offsetBase, std::size_t bytes)
{
    const std::size_t aligned = (bytes + 15) & ~std::size_t{15};
    const std::size_t offset = cursor.fetch_add(aligned);
    if (offset + aligned > limit)
        fatal("SharedHeap: out of space (%zu + %zu > %zu)", offset, aligned,
              limit);
    return base_ + offsetBase + offset;
}

void *
SharedHeap::allocShared(std::size_t bytes)
{
    return bump(sharedBump_, config_.sharedBytes, 0, bytes);
}

void *
SharedHeap::allocPrivate(std::size_t bytes)
{
    return bump(privateBump_, config_.privateBytes, config_.sharedBytes,
                bytes);
}

} // namespace clean
