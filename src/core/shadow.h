/**
 * @file
 * Shadow-memory backend concept (epoch storage, §4.2).
 *
 * A shadow backend maps every checked data byte to one 32-bit epoch slot
 * and guarantees that slots for adjacent bytes are adjacent in memory
 * within a `contiguousSlots` window — the property the vectorized
 * multi-byte check (§4.4) depends on.
 *
 * Slots are plain uint32_t storage accessed with __atomic builtins by the
 * race checker; a backend only provides addressing and bulk reset.
 *
 * Two implementations exist:
 *   LinearShadow — the paper's design: one reserved region, epoch address
 *       = base + 4 * (data address - data base); O(1) reset via
 *       madvise(MADV_DONTNEED) (the zero-page remap trick of §4.5).
 *   SparseShadow — a portable chunked radix map for arbitrary addresses;
 *       slower, used as an ablation and for addresses outside the heap.
 */

#ifndef CLEAN_CORE_SHADOW_H
#define CLEAN_CORE_SHADOW_H

#include "support/common.h"

namespace clean
{

/**
 * Compile-time interface documentation for shadow backends (enforced by
 * the RaceChecker template):
 *
 *   EpochValue *slots(Addr addr)        — slot for the byte at addr;
 *   std::size_t contiguousSlots(Addr a) — how many consecutive bytes
 *                                         starting at a have consecutive
 *                                         slots;
 *   void reset()                        — zero all epochs (rollover).
 */

} // namespace clean

#endif // CLEAN_CORE_SHADOW_H
