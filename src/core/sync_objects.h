/**
 * @file
 * Deterministic, vector-clock-aware synchronization objects (§3.3).
 *
 * Each object keeps a vector clock that carries happens-before edges
 * between threads (release joins the releaser's clock in; acquire joins
 * the object's clock out), and every operation is a Kendo-ordered
 * synchronization point: the thread first takes its deterministic turn,
 * performs the operation, then advances its deterministic counter.
 *
 * Turn exclusivity (only the strict-minimum thread is ever inside a
 * synchronization operation) makes the outcome of every try_lock — and
 * hence the entire synchronization order — a deterministic function of
 * the program input.
 *
 * Blocking operations (condition wait, barrier, join) mark the thread
 * Blocked so it neither gates the Kendo minimum nor delays a rollover
 * reset; the waking thread re-admits it with a deterministic resume
 * counter (waker's counter + 1).
 */

#ifndef CLEAN_CORE_SYNC_OBJECTS_H
#define CLEAN_CORE_SYNC_OBJECTS_H

#include <atomic>
#include <deque>
#include <mutex>
#include <vector>

#include "core/runtime.h"
#include "core/vector_clock.h"

namespace clean
{

/**
 * Global recovery token (ISSUE 3): SFR re-execution after a race runs
 * serialized under this token, and the grant order is fixed by the Kendo
 * deterministic clock — among the registered waiters, the strict minimum
 * (detCount, tid) wins, the same tie-break Kendo's turn predicate uses.
 * Waiters stay Running (recovery episodes are bounded, so a pending
 * rollover reset just waits them out) and poll the abort flag and the
 * watchdog like every other blocking loop in the runtime.
 */
class RecoveryToken
{
  public:
    explicit RecoveryToken(CleanRuntime &rt) : rt_(rt) {}

    RecoveryToken(const RecoveryToken &) = delete;
    RecoveryToken &operator=(const RecoveryToken &) = delete;

    /** Blocks until this thread holds the token. @p count is the
     *  caller's published Kendo counter — its grant priority. */
    void acquire(ThreadId tid, det::DetCount count);
    void release();

  private:
    struct Waiter
    {
        det::DetCount count;
        ThreadId tid;
    };

    void deregister(ThreadId tid);

    CleanRuntime &rt_;
    std::mutex m_;
    bool held_ = false;
    std::vector<Waiter> waiters_;
};

/** Deterministic mutex with release/acquire vector-clock semantics. */
class CleanMutex
{
  public:
    explicit CleanMutex(CleanRuntime &rt);
    ~CleanMutex();

    CleanMutex(const CleanMutex &) = delete;
    CleanMutex &operator=(const CleanMutex &) = delete;

    void lock(ThreadContext &ctx);
    /** One deterministic acquisition attempt. */
    bool tryLock(ThreadContext &ctx);
    void unlock(ThreadContext &ctx);

  private:
    friend class CleanCondVar;

    /** Release m inside an already-held turn (condition wait). */
    void releaseForWait(ThreadContext &ctx);

    CleanRuntime &rt_;
    std::mutex m_;
    VectorClock vc_;
};

/** Deterministic condition variable (FIFO wakeup in registration order,
 *  which is itself deterministic under Kendo). */
class CleanCondVar
{
  public:
    explicit CleanCondVar(CleanRuntime &rt);
    ~CleanCondVar();

    CleanCondVar(const CleanCondVar &) = delete;
    CleanCondVar &operator=(const CleanCondVar &) = delete;

    /** Atomically releases @p m and waits; re-acquires @p m before
     *  returning. No spurious wakeups. */
    void wait(ThreadContext &ctx, CleanMutex &m);

    /** Wakes the longest-registered waiter, if any. */
    void signal(ThreadContext &ctx);

    /** Wakes every currently registered waiter. */
    void broadcast(ThreadContext &ctx);

  private:
    struct Waiter
    {
        ThreadId tid;
        std::atomic<bool> *flag;
    };

    void wakeLocked(ThreadContext &ctx, bool all);

    CleanRuntime &rt_;
    std::mutex im_;
    std::deque<Waiter> waiters_;
    VectorClock vc_;
};

/** Deterministic cyclic barrier over a fixed number of parties. */
class CleanBarrier
{
  public:
    CleanBarrier(CleanRuntime &rt, std::uint32_t parties);
    ~CleanBarrier();

    CleanBarrier(const CleanBarrier &) = delete;
    CleanBarrier &operator=(const CleanBarrier &) = delete;

    /** Arrive and wait for the remaining parties. */
    void arrive(ThreadContext &ctx);

    /**
     * Permanently removes one party (kill supervision, ISSUE 3): the
     * dying thread's clock is joined in and, if the remaining parties
     * have all arrived, the barrier releases them on its behalf. Called
     * via CleanRuntime::retireFromBarriers.
     */
    void retireParty(ThreadContext &ctx);

    std::uint32_t parties() const { return parties_; }

  private:
    struct Waiter
    {
        ThreadId tid;
        std::atomic<bool> *flag;
    };

    void releaseWaitersLocked(ThreadContext &ctx);

    CleanRuntime &rt_;
    std::uint32_t parties_;
    std::mutex im_;
    std::uint32_t arrived_ = 0;
    /** Parties permanently retired by kill supervision. */
    std::uint32_t retired_ = 0;
    std::vector<Waiter> waiters_;
    VectorClock vc_;
    VectorClock releaseVc_;
};

} // namespace clean

#endif // CLEAN_CORE_SYNC_OBJECTS_H
