/**
 * @file
 * Vector clocks tracking the happens-before relation (§2.3).
 *
 * Elements are stored as full epochs: element i carries thread id i in
 * its tid bits. This makes join a raw element-wise max (same tid bits on
 * both sides) and lets the race check compare a location epoch against an
 * element with one integer comparison (§4.1).
 */

#ifndef CLEAN_CORE_VECTOR_CLOCK_H
#define CLEAN_CORE_VECTOR_CLOCK_H

#include <string>
#include <vector>

#include "core/epoch.h"
#include "support/common.h"

namespace clean
{

/** A fixed-width vector clock over `slots` thread ids. */
class VectorClock
{
  public:
    VectorClock() = default;

    /** All elements start at clock 0 (nothing happened yet). */
    VectorClock(const EpochConfig &config, ThreadId slots);

    ThreadId size() const { return static_cast<ThreadId>(elements_.size()); }

    /** Raw epoch-encoded element for thread @p tid. */
    EpochValue element(ThreadId tid) const { return elements_[tid]; }

    /** Clock component of the element for thread @p tid. */
    ClockValue clockOf(ThreadId tid) const
    {
        return config_.clockOf(elements_[tid]);
    }

    /** Sets the clock component of @p tid's element. */
    void setClock(ThreadId tid, ClockValue clock);

    /** Increments @p tid's clock by one; returns the new clock value. */
    ClockValue tick(ThreadId tid);

    /** Like tick(), but saturates at maxClock() instead of asserting.
     *  For callers with no rollover machinery (the baseline detectors):
     *  a saturated clock stops ordering new events, which can only make
     *  such a detector report *more* races, never lose soundness. */
    ClockValue tickSaturating(ThreadId tid);

    /** Element-wise maximum with @p other (the happens-before join). */
    void joinFrom(const VectorClock &other);

    /** Copies @p other into this clock. */
    void assign(const VectorClock &other) { elements_ = other.elements_; }

    /** Resets every element's clock to zero (rollover reset, §4.5). */
    void clearClocks();

    /** True iff every element of this clock is <= its peer in @p other.
     *  ("this happens-before-or-equals other") */
    bool allLessOrEqual(const VectorClock &other) const;

    /** Epoch of thread @p tid at its current clock. */
    EpochValue epochOf(ThreadId tid) const { return elements_[tid]; }

    const EpochConfig &config() const { return config_; }

    /** "<c0, c1, ...>" debug rendering of the clock components. */
    std::string toString() const;

  private:
    EpochConfig config_;
    std::vector<EpochValue> elements_;
};

} // namespace clean

#endif // CLEAN_CORE_VECTOR_CLOCK_H
