/**
 * @file
 * RaceChecker tests: the heart of CLEAN (§3.2, §4.3, §4.4).
 *
 * Covers: WAW/RAW detection, WAR non-detection (by design),
 * happens-before suppression, vectorized/byte-path equivalence,
 * CAS-based atomicity under real concurrency, and the Locked ablation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/linear_shadow.h"
#include "core/race_check.h"
#include "core/sparse_shadow.h"
#include "core/thread_state.h"
#include "support/prng.h"

namespace clean
{
namespace
{

constexpr Addr kBase = 0x40000000;
constexpr std::size_t kSpan = 1 << 20;
constexpr ThreadId kSlots = 8;

/** Test harness: a checker over a LinearShadow plus N thread states. */
class RaceCheckTest : public ::testing::Test
{
  protected:
    RaceCheckTest() : shadow_(kBase, kSpan) { reset(); }

    void
    reset(CheckerConfig config = {})
    {
        shadow_.reset();
        checker_ =
            std::make_unique<RaceChecker<LinearShadow>>(config, shadow_);
        threads_.clear();
        for (ThreadId t = 0; t < kSlots; ++t) {
            threads_.emplace_back(config.epoch, t, kSlots);
            threads_[t].vc.setClock(t, 1);
            threads_[t].refreshOwnEpoch();
        }
    }

    /** Models a release->acquire edge from a to b. */
    void
    syncEdge(ThreadId from, ThreadId to)
    {
        threads_[to].vc.joinFrom(threads_[from].vc);
        threads_[from].vc.tick(from);
        threads_[from].refreshOwnEpoch();
        threads_[to].refreshOwnEpoch();
    }

    void
    write(ThreadId t, Addr addr, std::size_t n)
    {
        checker_->beforeWrite(threads_[t], addr, n);
    }

    void
    read(ThreadId t, Addr addr, std::size_t n)
    {
        checker_->afterRead(threads_[t], addr, n);
    }

    LinearShadow shadow_;
    std::unique_ptr<RaceChecker<LinearShadow>> checker_;
    std::vector<ThreadState> threads_;
};

TEST_F(RaceCheckTest, FirstWriteIsRaceFree)
{
    EXPECT_NO_THROW(write(0, kBase, 4));
}

TEST_F(RaceCheckTest, ReadOfUntouchedDataIsRaceFree)
{
    EXPECT_NO_THROW(read(3, kBase + 100, 8));
}

TEST_F(RaceCheckTest, SameThreadWriteWriteIsRaceFree)
{
    write(0, kBase, 4);
    EXPECT_NO_THROW(write(0, kBase, 4));
}

TEST_F(RaceCheckTest, SameThreadReadAfterWriteIsRaceFree)
{
    write(0, kBase, 4);
    EXPECT_NO_THROW(read(0, kBase, 4));
}

TEST_F(RaceCheckTest, UnorderedWriteWriteIsWaw)
{
    write(0, kBase, 4);
    try {
        write(1, kBase, 4);
        FAIL() << "expected WAW";
    } catch (const RaceException &e) {
        EXPECT_EQ(e.kind(), RaceKind::Waw);
        EXPECT_EQ(e.accessor(), 1u);
        EXPECT_EQ(e.previousWriter(), 0u);
    }
}

TEST_F(RaceCheckTest, UnorderedReadAfterWriteIsRaw)
{
    write(0, kBase + 8, 4);
    try {
        read(1, kBase + 8, 4);
        FAIL() << "expected RAW";
    } catch (const RaceException &e) {
        EXPECT_EQ(e.kind(), RaceKind::Raw);
    }
}

TEST_F(RaceCheckTest, WarIsNotDetectedByDesign)
{
    // Thread 1 reads, then thread 0 writes with no ordering: a WAR race
    // a full detector reports, and CLEAN deliberately does not (§3.2).
    read(1, kBase, 4);
    EXPECT_NO_THROW(write(0, kBase, 4));
}

TEST_F(RaceCheckTest, SyncOrderedWriteWriteIsRaceFree)
{
    write(0, kBase, 4);
    syncEdge(0, 1);
    EXPECT_NO_THROW(write(1, kBase, 4));
}

TEST_F(RaceCheckTest, SyncOrderedReadIsRaceFree)
{
    write(0, kBase, 4);
    syncEdge(0, 1);
    EXPECT_NO_THROW(read(1, kBase, 4));
}

TEST_F(RaceCheckTest, TransitiveHappensBeforeIsRespected)
{
    write(0, kBase, 4);
    syncEdge(0, 1);
    syncEdge(1, 2);
    EXPECT_NO_THROW(write(2, kBase, 4));
    EXPECT_NO_THROW(read(2, kBase, 4));
}

TEST_F(RaceCheckTest, StaleViewStillRaces)
{
    write(0, kBase, 4);
    syncEdge(0, 1);
    write(1, kBase, 4); // ok, ordered
    // Thread 2 never synchronized: racing with thread 1's write.
    EXPECT_THROW(read(2, kBase, 4), RaceException);
}

TEST_F(RaceCheckTest, RaceReportsOffendingAddress)
{
    write(0, kBase + 40, 1);
    try {
        write(1, kBase + 40, 1);
        FAIL();
    } catch (const RaceException &e) {
        EXPECT_EQ(e.addr(), kBase + 40);
    }
}

TEST_F(RaceCheckTest, PartialOverlapRaces)
{
    write(0, kBase + 4, 8);
    // Overlaps the last 4 bytes only.
    EXPECT_THROW(write(1, kBase + 8, 8), RaceException);
}

TEST_F(RaceCheckTest, DisjointWritesDoNotRace)
{
    write(0, kBase, 8);
    EXPECT_NO_THROW(write(1, kBase + 8, 8));
}

TEST_F(RaceCheckTest, SingleByteGranularityIsExact)
{
    write(0, kBase + 3, 1);
    EXPECT_NO_THROW(write(1, kBase + 2, 1)); // adjacent byte: no race
    EXPECT_THROW(write(1, kBase + 3, 1), RaceException);
}

TEST_F(RaceCheckTest, EpochNotUpdatedOnRead)
{
    write(0, kBase, 4);
    syncEdge(0, 1);
    read(1, kBase, 4);
    // If the read had published thread 1's epoch, this same-epoch write
    // by thread 0 (not synchronized with 1's "read") would now race.
    syncEdge(0, 2);
    EXPECT_NO_THROW(read(2, kBase, 4));
}

TEST_F(RaceCheckTest, WriteAfterRolloverStyleResetIsFresh)
{
    write(0, kBase, 4);
    shadow_.reset();
    threads_[1].vc.clearClocks();
    threads_[1].vc.setClock(1, 1);
    threads_[1].refreshOwnEpoch();
    EXPECT_NO_THROW(write(1, kBase, 4));
}

TEST_F(RaceCheckTest, StatsCountAccessesAndWidths)
{
    write(0, kBase, 8);
    read(0, kBase, 8);
    read(0, kBase + 100, 2);
    const CheckerStats &stats = threads_[0].stats;
    EXPECT_EQ(stats.sharedWrites, 1u);
    EXPECT_EQ(stats.sharedReads, 2u);
    EXPECT_EQ(stats.accessedBytes, 18u);
    EXPECT_EQ(stats.wideAccesses, 2u);
}

TEST_F(RaceCheckTest, SameEpochWideFastPathCounts)
{
    write(0, kBase, 8);
    read(0, kBase, 8); // all 8 epochs equal -> wideSameEpoch
    EXPECT_GE(threads_[0].stats.wideSameEpoch, 1u);
}

TEST_F(RaceCheckTest, WideCasUpdatesUsed)
{
    write(0, kBase, 16); // 4-aligned, 16 bytes: 128-bit CAS path
    EXPECT_GE(threads_[0].stats.wideCasUpdates, 1u);
}

TEST_F(RaceCheckTest, UnalignedWritesStillCorrect)
{
    write(0, kBase + 1, 7);
    syncEdge(0, 1);
    EXPECT_NO_THROW(write(1, kBase + 1, 7));
    EXPECT_THROW(write(2, kBase + 3, 2), RaceException);
}

TEST_F(RaceCheckTest, MixedEpochWideAccessFallsBackToBytes)
{
    write(0, kBase, 2);
    syncEdge(0, 1);
    write(1, kBase + 2, 2); // epochs now differ within the 4-byte word
    syncEdge(1, 2);
    EXPECT_NO_THROW(read(2, kBase, 4));
    // And an unordered thread still races on either half.
    EXPECT_THROW(read(3, kBase, 4), RaceException);
}

TEST_F(RaceCheckTest, VectorizedOffMatchesOn)
{
    // Same scenario with vectorization disabled must detect the same
    // races.
    CheckerConfig config;
    config.vectorized = false;
    reset(config);
    write(0, kBase, 8);
    EXPECT_THROW(write(1, kBase, 8), RaceException);
    reset(config);
    write(0, kBase, 8);
    syncEdge(0, 1);
    EXPECT_NO_THROW(write(1, kBase, 8));
}

TEST_F(RaceCheckTest, LockedAtomicityModeDetectsSameRaces)
{
    CheckerConfig config;
    config.atomicity = AtomicityMode::Locked;
    reset(config);
    write(0, kBase, 8);
    EXPECT_THROW(write(1, kBase, 8), RaceException);
    reset(config);
    write(0, kBase, 8);
    syncEdge(0, 1);
    EXPECT_NO_THROW(write(1, kBase, 8));
    EXPECT_NO_THROW(read(1, kBase, 8));
}

TEST_F(RaceCheckTest, ThrowingWriteDoesNotCorruptMetadataForOthers)
{
    write(0, kBase, 4);
    EXPECT_THROW(write(1, kBase, 4), RaceException);
    // Thread 0 can continue on its own data (abort handling is the
    // runtime's job; the checker itself stays consistent).
    EXPECT_NO_THROW(write(0, kBase, 4));
}

/**
 * Property: vectorized and byte-by-byte checkers agree on arbitrary
 * random access patterns with happens-before edges sprinkled in.
 */
class VectorizedEquivalence : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(VectorizedEquivalence, SameOutcomeOnRandomPrograms)
{
    const unsigned seed = GetParam();
    for (int vectorized = 0; vectorized < 2; ++vectorized) {
        // Two identical runs, only the vectorization flag differs; the
        // first exception (if any) must occur at the same step.
        static int firstFailStep[2];
        LinearShadow shadow(kBase, 1 << 16);
        CheckerConfig config;
        config.vectorized = vectorized == 1;
        RaceChecker<LinearShadow> checker(config, shadow);
        std::vector<ThreadState> threads;
        for (ThreadId t = 0; t < 4; ++t) {
            threads.emplace_back(config.epoch, t, 4);
            threads[t].vc.setClock(t, 1);
            threads[t].refreshOwnEpoch();
        }
        Prng rng(seed);
        int failAt = -1;
        for (int step = 0; step < 400; ++step) {
            const ThreadId t = rng.nextBelow(4);
            const Addr addr = kBase + rng.nextBelow(64);
            const std::size_t size = 1 + rng.nextBelow(16);
            const int op = static_cast<int>(rng.nextBelow(10));
            try {
                if (op < 4) {
                    checker.beforeWrite(threads[t], addr, size);
                } else if (op < 8) {
                    checker.afterRead(threads[t], addr, size);
                } else {
                    const ThreadId u = rng.nextBelow(4);
                    if (u != t) {
                        threads[u].vc.joinFrom(threads[t].vc);
                        threads[t].vc.tick(t);
                        threads[t].refreshOwnEpoch();
                    }
                }
            } catch (const RaceException &) {
                failAt = step;
                break;
            }
        }
        firstFailStep[vectorized] = failAt;
        if (vectorized == 1) {
            EXPECT_EQ(firstFailStep[0], firstFailStep[1])
                << "vectorization changed detection (seed " << seed
                << ")";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorizedEquivalence,
                         ::testing::Range(0u, 24u));

/** Concurrency: two threads hammer one word; exactly the §4.3 outcome —
 *  either a WAW exception in at least one thread, never a silent torn
 *  metadata state. */
TEST(RaceCheckConcurrency, ConcurrentConflictingWritesRaiseWaw)
{
    for (int round = 0; round < 20; ++round) {
        LinearShadow shadow(kBase, 4096);
        CheckerConfig config;
        RaceChecker<LinearShadow> checker(config, shadow);
        ThreadState a(config.epoch, 0, 2), b(config.epoch, 1, 2);
        a.vc.setClock(0, 1);
        b.vc.setClock(1, 1);
        a.refreshOwnEpoch();
        b.refreshOwnEpoch();

        std::atomic<int> exceptions{0};
        auto body = [&](ThreadState *ts) {
            try {
                for (int i = 0; i < 50; ++i)
                    checker.beforeWrite(*ts, kBase + (i % 8), 4);
            } catch (const RaceException &e) {
                EXPECT_EQ(e.kind(), RaceKind::Waw);
                exceptions.fetch_add(1);
            }
        };
        std::thread t1(body, &a), t2(body, &b);
        t1.join();
        t2.join();
        // Both threads write the same unsynchronized bytes: at least
        // one must observe the WAW.
        EXPECT_GE(exceptions.load(), 1);
    }
}

/** Concurrent readers of one writer's published data never misfire. */
TEST(RaceCheckConcurrency, OrderedReadersNeverFalsePositive)
{
    LinearShadow shadow(kBase, 4096);
    CheckerConfig config;
    RaceChecker<LinearShadow> checker(config, shadow);
    ThreadState writer(config.epoch, 0, 4);
    writer.vc.setClock(0, 1);
    writer.refreshOwnEpoch();
    checker.beforeWrite(writer, kBase, 64);

    std::atomic<int> failures{0};
    std::vector<std::thread> readers;
    for (ThreadId t = 1; t < 4; ++t) {
        readers.emplace_back([&, t] {
            ThreadState ts(config.epoch, t, 4);
            ts.vc.setClock(t, 1);
            ts.vc.joinFrom(writer.vc); // acquired the writer's clock
            ts.refreshOwnEpoch();
            try {
                for (int i = 0; i < 1000; ++i)
                    checker.afterRead(ts, kBase + (i % 64), 1);
            } catch (const RaceException &) {
                failures.fetch_add(1);
            }
        });
    }
    for (auto &r : readers)
        r.join();
    EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------
// Word-granularity mode (§3.2's type-safe specialization)
// ---------------------------------------------------------------------

TEST_F(RaceCheckTest, WordGranularityDetectsWordRaces)
{
    CheckerConfig config;
    config.granuleLog2 = 2;
    reset(config);
    write(0, kBase, 4);
    EXPECT_THROW(write(1, kBase, 4), RaceException);
}

TEST_F(RaceCheckTest, WordGranularitySyncOrderedIsClean)
{
    CheckerConfig config;
    config.granuleLog2 = 2;
    reset(config);
    write(0, kBase, 8);
    syncEdge(0, 1);
    EXPECT_NO_THROW(write(1, kBase, 8));
    EXPECT_NO_THROW(read(1, kBase, 8));
}

TEST_F(RaceCheckTest, WordGranularityConflatesSubWordBytes)
{
    // The documented imprecision: distinct bytes of one 4-byte word are
    // indistinguishable, so this (byte-disjoint, race-free for C/C++)
    // schedule is reported — the reason the paper checks per byte.
    CheckerConfig config;
    config.granuleLog2 = 2;
    reset(config);
    write(0, kBase + 0, 1);
    EXPECT_THROW(write(1, kBase + 2, 1), RaceException);
    // Byte granularity accepts the same schedule.
    reset();
    write(0, kBase + 0, 1);
    EXPECT_NO_THROW(write(1, kBase + 2, 1));
}

TEST_F(RaceCheckTest, WordGranularityDistinctWordsStayIndependent)
{
    CheckerConfig config;
    config.granuleLog2 = 2;
    reset(config);
    write(0, kBase, 4);
    EXPECT_NO_THROW(write(1, kBase + 4, 4));
}

TEST_F(RaceCheckTest, WordGranularityUsesQuarterTheChecks)
{
    CheckerConfig config;
    config.granuleLog2 = 2;
    reset(config);
    // A 16-byte write touches 4 granules; one epoch per granule is
    // published (at each granule's base-byte slot), and only 4 updates
    // happen instead of 16.
    write(0, kBase, 16);
    EXPECT_EQ(threads_[0].stats.epochUpdates, 4u);
    EXPECT_EQ(*shadow_.slots(kBase), threads_[0].ownEpoch);
    EXPECT_EQ(*shadow_.slots(kBase + 12), threads_[0].ownEpoch);
    // Non-base-byte slots stay untouched.
    EXPECT_EQ(*shadow_.slots(kBase + 1), 0u);
}

TEST_F(RaceCheckTest, WordGranularityUnalignedAccessCoversBothWords)
{
    CheckerConfig config;
    config.granuleLog2 = 2;
    reset(config);
    write(0, kBase + 2, 4); // straddles two words
    EXPECT_THROW(read(1, kBase + 0, 1), RaceException);
    reset(config);
    write(0, kBase + 2, 4);
    EXPECT_THROW(read(1, kBase + 7, 1), RaceException);
}

/** SparseShadow behaves identically for the core scenarios. */
TEST(RaceCheckSparse, DetectsWawAndRawAllowsWar)
{
    SparseShadow shadow;
    CheckerConfig config;
    RaceChecker<SparseShadow> checker(config, shadow);
    std::vector<ThreadState> threads;
    for (ThreadId t = 0; t < 2; ++t) {
        threads.emplace_back(config.epoch, t, 2);
        threads[t].vc.setClock(t, 1);
        threads[t].refreshOwnEpoch();
    }
    checker.afterRead(threads[1], 0x5000, 4); // later WAR: allowed
    checker.beforeWrite(threads[0], 0x5000, 4);
    EXPECT_THROW(checker.beforeWrite(threads[1], 0x5000, 4),
                 RaceException);
}

TEST(RaceCheckSparse, ChunkBoundarySpanningAccess)
{
    SparseShadow shadow;
    CheckerConfig config;
    RaceChecker<SparseShadow> checker(config, shadow);
    ThreadState a(config.epoch, 0, 2), b(config.epoch, 1, 2);
    a.vc.setClock(0, 1);
    b.vc.setClock(1, 1);
    a.refreshOwnEpoch();
    b.refreshOwnEpoch();
    const Addr boundary = SparseShadow::kChunkBytes - 4;
    checker.beforeWrite(a, boundary, 8); // spans two chunks
    EXPECT_THROW(checker.afterRead(b, boundary + 6, 1), RaceException);
}

} // namespace
} // namespace clean
