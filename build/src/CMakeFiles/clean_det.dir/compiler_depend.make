# Empty compiler generated dependencies file for clean_det.
# This may be replaced when dependencies are built.
