/**
 * @file
 * Wall-clock and cpu-time timing helpers for the software-overhead
 * benches.
 */

#ifndef CLEAN_SUPPORT_TIMER_H
#define CLEAN_SUPPORT_TIMER_H

#include <chrono>

#if defined(__linux__) || defined(__APPLE__)
#include <time.h>
#endif

namespace clean
{

/** Monotonic stopwatch. */
class Timer
{
  public:
    Timer() : start_(Clock::now()) {}

    /** Restarts the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds since construction or the last reset(). */
    double
    elapsedSeconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Nanoseconds since construction or the last reset(). */
    std::uint64_t
    elapsedNanos() const
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - start_).count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/** Process CPU seconds (all threads), or -1 where unsupported. Unlike
 *  wall time this is immune to descheduling on oversubscribed hosts,
 *  which makes it the stable numerator for overhead ratios. */
inline double
processCpuSeconds()
{
#if defined(__linux__) || defined(__APPLE__)
    timespec ts;
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0)
        return -1.0;
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
#else
    return -1.0;
#endif
}

/** Stopwatch over processCpuSeconds(). */
class CpuTimer
{
  public:
    CpuTimer() : start_(processCpuSeconds()) {}

    void reset() { start_ = processCpuSeconds(); }

    /** CPU seconds since construction/reset; -1 where unsupported. */
    double
    elapsedSeconds() const
    {
        if (start_ < 0)
            return -1.0;
        return processCpuSeconds() - start_;
    }

  private:
    double start_;
};

} // namespace clean

#endif // CLEAN_SUPPORT_TIMER_H
