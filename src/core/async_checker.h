/**
 * @file
 * Dedicated checker thread for batched SFR-boundary drains
 * (`--async-check`, DESIGN.md §16).
 *
 * With batching on (§14), an app thread's deferred read checks retire
 * at its SFR boundaries via RaceChecker::drainBatch. This service moves
 * that drain onto one dedicated checker thread: the boundary hands the
 * full BatchBuffer over a bounded per-thread SPSC ring and blocks until
 * the checker thread has retired every run, then proceeds into the
 * turn wait. Completion therefore still happens strictly before the
 * draining thread's acquireTurn completes — the §5.2/§14 soundness
 * window (races fire before the SFR's effects escape) is unchanged, and
 * reports are deterministic: runs carry their buffered site + SFR
 * ordinal, so a race surfaces with exactly the identity the inline
 * drain would give it. What the handoff buys is locality and overlap:
 * the shadow walk and wide-SIMD epoch scans run on one core whose
 * caches stay hot with shadow data, instead of evicting every app
 * thread's working set at every boundary.
 *
 * Threading contract:
 *  - Each app thread posts at most one outstanding request and blocks
 *    until it retires, so the per-thread ring is single-producer by
 *    construction and the owner's ThreadState/BatchBuffer are quiesced
 *    for the whole time the checker thread touches them (same rule the
 *    flight recorder uses for lane reads). The debug-only
 *    CheckerStats single-writer latch is exchanged around the handoff
 *    (ThreadState::exchangeStatsOwner) so it keeps catching genuine
 *    unsynchronized bumps.
 *  - Races found by the checker thread go through the same
 *    CleanRuntime::recordRace funnel (mutex + atomics). Under
 *    Report/Count it parks the cursor and keeps draining; under Throw
 *    it stops, raises the abort flag, and the stored RaceException is
 *    rethrown on the posting thread — byte-identical unwind semantics
 *    to the inline drain.
 *  - Rollover cannot race a drain: the resetter waits until every app
 *    thread is parked, and a thread with an outstanding drain is not
 *    parked yet — it parks only after its drain retires (acquireTurn
 *    order: drainBatch, then pollRollover).
 */

#ifndef CLEAN_CORE_ASYNC_CHECKER_H
#define CLEAN_CORE_ASYNC_CHECKER_H

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <thread>

#include "support/common.h"

namespace clean
{

class CleanRuntime;
struct ThreadState;

/** The dedicated drain thread plus one SPSC handoff ring per app
 *  thread slot. Constructed by CleanRuntime when `--async-check` is on
 *  and batching survived its config gates. */
class AsyncChecker
{
  public:
    AsyncChecker(CleanRuntime &rt, ThreadId slots);
    ~AsyncChecker();

    AsyncChecker(const AsyncChecker &) = delete;
    AsyncChecker &operator=(const AsyncChecker &) = delete;

    /**
     * Retires every deferred check in @p ts's batch buffer on the
     * checker thread; called from the owning app thread, which blocks
     * here until the drain completes. Throws exactly what the inline
     * ThreadContext::drainBatch would: RaceException under Throw (after
     * recording), nothing under Report/Count.
     */
    void drain(ThreadState &ts);

    /** Completed handoffs (all threads). Test/diagnostic only — kept
     *  out of CheckerStats so async on/off metrics stay identical. */
    std::uint64_t
    drains() const
    {
        return drains_.load(std::memory_order_acquire);
    }

  private:
    /** One app thread's handoff ring. Bounded SPSC: the producer is
     *  the slot's app thread, the consumer is the checker thread.
     *  Depth covers protocol evolution (e.g. fire-and-forget posts at
     *  non-final boundaries); today's block-until-retired protocol
     *  keeps at most one request in flight. */
    struct alignas(kCacheLineBytes) Lane
    {
        static constexpr std::size_t kDepth = 4;

        ThreadState *requests[kDepth] = {};
        /** Producer cursor (app thread). */
        std::atomic<std::uint64_t> posted{0};
        /** Consumer cursor (checker thread), own line so the producer's
         *  completion spin does not fight the producer's own writes. */
        alignas(kCacheLineBytes) std::atomic<std::uint64_t> retired{0};
        /** Set by the checker thread before bumping `retired`; consumed
         *  (and cleared) by the producer after observing the bump. */
        std::exception_ptr error;
    };

    void run();
    void process(Lane &lane, ThreadState &ts);

    CleanRuntime &rt_;
    const ThreadId slots_;
    std::unique_ptr<Lane[]> lanes_;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> drains_{0};
    std::thread thread_;
};

} // namespace clean

#endif // CLEAN_CORE_ASYNC_CHECKER_H
