#include "obs/flight_recorder.h"

#include <algorithm>

namespace clean::obs
{

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::SfrBegin: return "sfr_begin";
      case EventKind::SfrEnd: return "sfr_end";
      case EventKind::SyncAcquire: return "sync_acquire";
      case EventKind::SyncRelease: return "sync_release";
      case EventKind::RaceDetected: return "race_detected";
      case EventKind::RecoveryBegin: return "recovery_begin";
      case EventKind::RecoveryRollback: return "recovery_rollback";
      case EventKind::RecoveryReplay: return "recovery_replay";
      case EventKind::RecoveryEnd: return "recovery_end";
      case EventKind::Quarantine: return "quarantine";
      case EventKind::Rollover: return "rollover";
      case EventKind::InjectionFired: return "injection_fired";
      case EventKind::WatchdogTrip: return "watchdog_trip";
      case EventKind::ThreadStart: return "thread_start";
      case EventKind::ThreadFinish: return "thread_finish";
      case EventKind::TurnGrant: return "turn_grant";
      case EventKind::SampleLevel: return "sample_level";
      case EventKind::SampleShed: return "sample_shed";
      case EventKind::SampleQuarantine: return "sample_quarantine";
    }
    return "?";
}

int
eventKindFromName(std::string_view name)
{
    for (std::size_t i = 0; i < kEventKindCount; ++i) {
        if (name == eventKindName(static_cast<EventKind>(i)))
            return static_cast<int>(i);
    }
    return -1;
}

namespace
{

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

ThreadLane::ThreadLane(ThreadId tid, std::size_t capacity)
    : tid_(tid), mask_(roundUpPow2(std::max<std::size_t>(capacity, 2)) - 1),
      ring_(mask_ + 1)
{
}

std::vector<Event>
ThreadLane::events(std::size_t lastN) const
{
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t retained =
        std::min<std::uint64_t>(head, ring_.size());
    std::uint64_t take = retained;
    if (lastN > 0)
        take = std::min<std::uint64_t>(take, lastN);
    std::vector<Event> out;
    out.reserve(take);
    for (std::uint64_t seq = head - take; seq < head; ++seq)
        out.push_back(ring_[seq & mask_]);
    return out;
}

FlightRecorder::FlightRecorder(const ObsConfig &config, ThreadId maxThreads)
    : config_(config), maxThreads_(maxThreads)
{
    lanes_.reserve(static_cast<std::size_t>(maxThreads_) + 1);
    for (ThreadId tid = 0; tid <= maxThreads_; ++tid)
        lanes_.push_back(
            std::make_unique<ThreadLane>(tid, config_.ringEvents));
}

void
FlightRecorder::recordGlobal(EventKind kind, std::uint64_t det,
                             std::uint64_t arg0, std::uint64_t arg1)
{
    std::lock_guard<std::mutex> guard(globalMutex_);
    lanes_[maxThreads_]->record(kind, det, arg0, arg1);
}

void
FlightRecorder::setHook(EventHook *hook)
{
    for (auto &lane : lanes_)
        lane->setHook(hook);
}

std::vector<Event>
FlightRecorder::merged(std::size_t perThreadTail) const
{
    std::vector<Event> all;
    for (const auto &lane : lanes_) {
        const std::vector<Event> events = lane->events(perThreadTail);
        all.insert(all.end(), events.begin(), events.end());
    }
    std::sort(all.begin(), all.end(), [](const Event &a, const Event &b) {
        if (a.det != b.det)
            return a.det < b.det;
        if (a.tid != b.tid)
            return a.tid < b.tid;
        return a.seq < b.seq;
    });
    return all;
}

std::uint64_t
FlightRecorder::totalRecorded() const
{
    std::uint64_t total = 0;
    for (const auto &lane : lanes_)
        total += lane->recorded();
    return total;
}

std::vector<std::uint64_t>
FlightRecorder::retainedByKind() const
{
    std::vector<std::uint64_t> counts(kEventKindCount, 0);
    for (const auto &lane : lanes_) {
        for (const Event &e : lane->events())
            counts[static_cast<std::size_t>(e.kind)]++;
    }
    return counts;
}

Histogram
FlightRecorder::mergedSfrLength() const
{
    Histogram h;
    for (const auto &lane : lanes_)
        h.merge(lane->sfrLength);
    return h;
}

Histogram
FlightRecorder::mergedCheckLatency() const
{
    Histogram h;
    for (const auto &lane : lanes_)
        h.merge(lane->checkLatencyNs);
    return h;
}

} // namespace clean::obs
