/**
 * @file
 * The paper's shadow organization (§4.2): a fixed-layout epoch region.
 *
 * One 4-byte epoch per data byte at address shadowBase + 4 * (addr -
 * dataBase). The whole region is reserved with MAP_NORESERVE, so physical
 * memory is consumed only for epochs of data actually accessed. Reset
 * (used by the deterministic rollover, §4.5) is a single
 * madvise(MADV_DONTNEED), which re-points the pages at the kernel's
 * copied-on-write zero page — the exact mechanism the paper describes.
 */

#ifndef CLEAN_CORE_LINEAR_SHADOW_H
#define CLEAN_CORE_LINEAR_SHADOW_H

#include <cstddef>

#include "support/common.h"

namespace clean
{

/** mmap-backed fixed-arithmetic epoch store covering one data region. */
class LinearShadow
{
  public:
    /** Covers data addresses [dataBase, dataBase + dataSpan). */
    LinearShadow(Addr dataBase, std::size_t dataSpan);
    ~LinearShadow();

    LinearShadow(const LinearShadow &) = delete;
    LinearShadow &operator=(const LinearShadow &) = delete;

    /** Epoch slot of the data byte at @p addr (the EPOCH_ADDRESS macro). */
    CLEAN_ALWAYS_INLINE EpochValue *
    slots(Addr addr)
    {
        return base_ + (addr - dataBase_);
    }

    /** Slots are contiguous across the whole covered region. */
    CLEAN_ALWAYS_INLINE std::size_t
    contiguousSlots(Addr addr) const
    {
        return dataSpan_ - static_cast<std::size_t>(addr - dataBase_);
    }

    /** True iff @p addr has a slot in this shadow. */
    bool
    covers(Addr addr) const
    {
        return addr >= dataBase_ && addr < dataBase_ + dataSpan_;
    }

    /** O(1) bulk zeroing of every epoch (rollover reset). */
    void reset();

    Addr dataBase() const { return dataBase_; }
    std::size_t dataSpan() const { return dataSpan_; }

  private:
    Addr dataBase_;
    std::size_t dataSpan_;
    EpochValue *base_ = nullptr;
};

} // namespace clean

#endif // CLEAN_CORE_LINEAR_SHADOW_H
