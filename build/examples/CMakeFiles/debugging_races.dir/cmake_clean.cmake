file(REMOVE_RECURSE
  "CMakeFiles/debugging_races.dir/debugging_races.cpp.o"
  "CMakeFiles/debugging_races.dir/debugging_races.cpp.o.d"
  "debugging_races"
  "debugging_races.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debugging_races.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
