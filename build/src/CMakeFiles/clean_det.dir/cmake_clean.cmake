file(REMOVE_RECURSE
  "CMakeFiles/clean_det.dir/det/kendo.cc.o"
  "CMakeFiles/clean_det.dir/det/kendo.cc.o.d"
  "libclean_det.a"
  "libclean_det.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clean_det.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
