/**
 * @file
 * Power-of-two histograms for the --metrics-json snapshot.
 *
 * Buckets are log2-sized: bucket 0 holds value 0, bucket k (k >= 1)
 * holds values in [2^(k-1), 2^k). That is coarse on purpose — the
 * snapshot answers "what order of magnitude" questions (SFR lengths,
 * check latencies) without per-sample storage or floating point.
 */

#ifndef CLEAN_OBS_METRICS_H
#define CLEAN_OBS_METRICS_H

#include <cstdint>
#include <limits>

#include "support/json.h"

namespace clean::obs
{

/** Fixed-footprint log2 histogram of 64-bit samples. */
class Histogram
{
  public:
    static constexpr std::size_t kBuckets = 65;

    void
    add(std::uint64_t value)
    {
        buckets_[bucketOf(value)]++;
        count_++;
        sum_ += value;
        if (value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
    }

    void
    merge(const Histogram &other)
    {
        for (std::size_t i = 0; i < kBuckets; ++i)
            buckets_[i] += other.buckets_[i];
        count_ += other.count_;
        sum_ += other.sum_;
        if (other.count_ > 0) {
            if (other.min_ < min_)
                min_ = other.min_;
            if (other.max_ > max_)
                max_ = other.max_;
        }
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }

    /** Bucket index of @p value: 0 for 0, else floor(log2(v)) + 1. */
    static std::size_t
    bucketOf(std::uint64_t value)
    {
        if (value == 0)
            return 0;
        return static_cast<std::size_t>(64 - __builtin_clzll(value));
    }

    /** Emits {"count":..,"sum":..,"min":..,"max":..,"buckets":[...]}
     *  with one {"lo","hi","n"} entry per non-empty bucket ("hi" is
     *  exclusive; omitted for the open top bucket). */
    void
    writeTo(JsonWriter &w) const
    {
        w.beginObject();
        w.field("count", count_);
        w.field("sum", sum_);
        if (count_ > 0) {
            w.field("min", min_);
            w.field("max", max_);
        }
        w.key("buckets").beginArray();
        for (std::size_t i = 0; i < kBuckets; ++i) {
            if (buckets_[i] == 0)
                continue;
            w.beginObject();
            w.field("lo", i == 0 ? std::uint64_t{0}
                                 : std::uint64_t{1} << (i - 1));
            if (i < kBuckets - 1)
                w.field("hi", i == 0 ? std::uint64_t{1}
                                     : std::uint64_t{1} << i);
            w.field("n", buckets_[i]);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }

  private:
    std::uint64_t buckets_[kBuckets] = {};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_ = 0;
};

} // namespace clean::obs

#endif // CLEAN_OBS_METRICS_H
