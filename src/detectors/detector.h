/**
 * @file
 * Common interface and vector-clock plumbing for baseline race
 * detectors (§2.3, §7).
 *
 * Baselines exist to quantify what CLEAN buys by *not* detecting WAR
 * races:
 *   FastTrackDetector — full precise WAW/RAW/WAR detection with adaptive
 *       read metadata (epoch or promoted read vector clock) and sharded
 *       locking for check atomicity;
 *   TsanLiteDetector  — ThreadSanitizer-style imprecise detection with
 *       k last-access records per 8-byte cell and no check atomicity.
 *
 * Unlike the CLEAN runtime, detectors never throw by default: they
 * collect race reports so experiments can enumerate every race in a
 * schedule (the workflow the paper suggests for debugging after a CLEAN
 * exception). A stopOnFirst mode turns the first report into the return
 * value of the access hook.
 */

#ifndef CLEAN_DETECTORS_DETECTOR_H
#define CLEAN_DETECTORS_DETECTOR_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/epoch.h"
#include "core/race_exception.h"
#include "core/vector_clock.h"
#include "support/common.h"

namespace clean::detectors
{

/** Identifier of a synchronization object (lock address or index). */
using SyncId = std::uint64_t;

/** One detected race. */
struct RaceReport
{
    RaceKind kind;
    Addr addr;
    ThreadId current;
    ThreadId previous;

    bool
    operator==(const RaceReport &other) const
    {
        return kind == other.kind && addr == other.addr &&
               current == other.current && previous == other.previous;
    }
};

/** Abstract dynamic race detector fed by access/sync hooks. */
class Detector
{
  public:
    explicit Detector(const EpochConfig &config, ThreadId maxThreads)
        : config_(config), maxThreads_(maxThreads)
    {
        threads_.reserve(maxThreads);
        for (ThreadId t = 0; t < maxThreads; ++t)
            threads_.emplace_back(config, maxThreads);
        // Reserve clock 0 for "no access yet"; threads start at 1.
        for (ThreadId t = 0; t < maxThreads; ++t)
            threads_[t].setClock(t, 1);
    }

    virtual ~Detector() = default;

    virtual const char *name() const = 0;

    /** True for detectors that can detect WAR races. */
    virtual bool detectsWar() const = 0;

    virtual void onRead(ThreadId t, Addr addr, std::size_t size) = 0;
    virtual void onWrite(ThreadId t, Addr addr, std::size_t size) = 0;

    /** Acquire: thread joins the sync object's clock. */
    virtual void
    onAcquire(ThreadId t, SyncId sync)
    {
        std::lock_guard<std::mutex> guard(syncMutex_);
        auto it = syncClocks_.find(sync);
        if (it != syncClocks_.end())
            threads_[t].joinFrom(it->second);
    }

    /** Release: sync object joins the thread's clock; thread ticks. */
    virtual void
    onRelease(ThreadId t, SyncId sync)
    {
        std::lock_guard<std::mutex> guard(syncMutex_);
        auto [it, fresh] = syncClocks_.try_emplace(
            sync, VectorClock(config_, maxThreads_));
        it->second.joinFrom(threads_[t]);
        // Saturating: the baselines have no rollover (§4.5 is CLEAN's
        // machinery), and sync-heavy workloads can out-tick maxClock.
        threads_[t].tickSaturating(t);
    }

    /** Fork: child inherits parent's clock; both tick. */
    virtual void
    onFork(ThreadId parent, ThreadId child)
    {
        std::lock_guard<std::mutex> guard(syncMutex_);
        threads_[child].joinFrom(threads_[parent]);
        threads_[child].tickSaturating(child);
        threads_[parent].tickSaturating(parent);
    }

    /** Join: parent absorbs child's clock. */
    virtual void
    onJoin(ThreadId parent, ThreadId child)
    {
        std::lock_guard<std::mutex> guard(syncMutex_);
        threads_[parent].joinFrom(threads_[child]);
    }

    /** All races reported so far. */
    std::vector<RaceReport>
    reports() const
    {
        std::lock_guard<std::mutex> guard(reportMutex_);
        return reports_;
    }

    /** Total races reported (cheap, lock-free). */
    std::size_t
    reportCount() const
    {
        return reportCountAtomic_.load(std::memory_order_relaxed);
    }

    bool hasReports() const { return reportCount() > 0; }

    const EpochConfig &config() const { return config_; }

    /** Stored reports are capped to bound memory on very racy runs;
     *  reportCount() keeps the true total. */
    static constexpr std::size_t kMaxStoredReports = 100000;

  protected:
    void
    report(RaceKind kind, Addr addr, ThreadId current, ThreadId previous)
    {
        reportCountAtomic_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> guard(reportMutex_);
        if (reports_.size() < kMaxStoredReports)
            reports_.push_back({kind, addr, current, previous});
    }

    EpochConfig config_;
    ThreadId maxThreads_;
    std::vector<VectorClock> threads_;
    std::mutex syncMutex_;
    std::unordered_map<SyncId, VectorClock> syncClocks_;

  private:
    mutable std::mutex reportMutex_;
    std::vector<RaceReport> reports_;
    std::atomic<std::size_t> reportCountAtomic_{0};
};

} // namespace clean::detectors

#endif // CLEAN_DETECTORS_DETECTOR_H
