/**
 * @file
 * Workload interface for the benchmark suite (§6.1).
 *
 * The paper evaluates on the SPLASH-2 and PARSEC Pthread benchmarks.
 * This reproduction supplies 26 synthetic kernels, each named after and
 * algorithmically modeled on its namesake (see DESIGN.md for the
 * substitution argument): same qualitative shared-access frequency,
 * access widths, sharing pattern and synchronization style.
 *
 * Every workload has a race-free variant and, for the 17 benchmarks the
 * paper found racy under ThreadSanitizer, a racy variant that reproduces
 * a realistic race of the right flavor (unlocked reduction, missing
 * barrier edge, unprotected flag, ...). canneal is special: its racy
 * (lock-free) form is the canonical one and the paper omits it from the
 * modified, race-free set — excludedFromModified() mirrors that.
 */

#ifndef CLEAN_WORKLOADS_WORKLOAD_H
#define CLEAN_WORKLOADS_WORKLOAD_H

#include <cstdint>
#include <memory>
#include <string>

#include "support/common.h"

namespace clean::wl
{

class Env;

/** Problem-size class; analogous to PARSEC's input sets. */
enum class Scale
{
    Test,  ///< seconds-long unit-test size
    Small, ///< "simsmall": hardware-simulation size
    Large, ///< "simlarge"/"native" stand-in: software benches
};

/** Run-shaping parameters. */
struct WorkloadParams
{
    unsigned threads = 8;
    Scale scale = Scale::Test;
    bool racy = false;
    std::uint64_t seed = 0xc0ffee;
};

/** One benchmark kernel. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Benchmark name as it appears in the paper's figures. */
    virtual const char *name() const = 0;

    /** "splash2" or "parsec". */
    virtual const char *suite() const = 0;

    /** True iff the paper's unmodified benchmark is racy (17 of 26). */
    virtual bool hasRacyVariant() const = 0;

    /** True only for canneal: no manual race-free version exists in the
     *  paper's modified suite. */
    virtual bool excludedFromModified() const { return false; }

    /**
     * Executes the kernel against @p env. Allocation, synchronization
     * and every potentially-shared access go through the Env/Worker
     * shim so any backend (native, CLEAN, baseline detector, tracer)
     * can observe it.
     */
    virtual void run(Env &env, const WorkloadParams &params) = 0;
};

} // namespace clean::wl

#endif // CLEAN_WORKLOADS_WORKLOAD_H
