/**
 * @file
 * Ablation — CAS-based vs locked check atomicity (§3.2, §4.3).
 *
 * The paper motivates its lock-free design with prior measurements
 * attributing more than 40% of precise-detection cost to locking. This
 * bench runs race detection (no det-sync) with CLEAN's CAS scheme and
 * with classic sharded per-line locking, on a write-heavy subset.
 */

#include "bench/common.h"

using namespace clean;
using namespace clean::bench;
using namespace clean::wl;

int
main(int argc, char **argv)
{
    BenchConfig config = parseBench(argc, argv, "small");
    if (!config.options.has("workloads")) {
        // Write-heavy / access-heavy defaults.
        config.workloads = {"lu_cb",  "lu_ncb",       "ocean_cp",
                            "radix",  "water_nsq",    "fft",
                            "barnes", "streamcluster"};
    }

    std::printf("=== Ablation: check atomicity, CAS vs locking "
                "(threads=%u, scale=%s) ===\n\n",
                config.threads,
                config.options.getString("scale", "small").c_str());
    std::printf("%-14s %12s %12s %12s %14s\n", "benchmark", "native[s]",
                "cas[s]", "locked[s]", "locking-cost*");

    std::vector<double> lockShare;
    for (const auto &name : config.workloads) {
        const double native = timedSeconds(
            baseSpec(config, name, BackendKind::Native), config.repeats);
        auto casSpec = baseSpec(config, name, BackendKind::DetectOnly);
        auto lockedSpec = casSpec;
        lockedSpec.runtime.atomicity = AtomicityMode::Locked;
        const double cas = timedSeconds(casSpec, config.repeats);
        const double locked = timedSeconds(lockedSpec, config.repeats);
        if (native <= 0 || cas <= 0 || locked <= 0) {
            std::printf("%-14s %12s\n", name.c_str(), "FAILED");
            continue;
        }
        // Locking's share of total detection overhead.
        const double share =
            100.0 * (locked - cas) / std::max(1e-12, locked - native);
        lockShare.push_back(share);
        std::printf("%-14s %12.4f %12.4f %12.4f %13.1f%%\n",
                    name.c_str(), native, cas, locked, share);
    }

    std::printf("\n*share of detection overhead attributable to "
                "locking: mean %.1f%%\n",
                mean(lockShare));
    std::printf(
        "paper context: prior precise detectors attribute > 40%% of "
        "cost to locking, which\nCLEAN's CAS publication avoids. NOTE: "
        "locking's cost is a *contention* cost — on a\nhost with fewer "
        "cores than workers the locks are rarely contended and the "
        "share can\ncome out near zero or negative; "
        "bench_micro_check's BM_LockedAtomicityWrite8B vs\n"
        "BM_WriteCheckSameEpoch8B shows the per-access gap (~2x) even "
        "uncontended.\n");
    return 0;
}
