/**
 * @file
 * fft — radix-2 complex FFT with per-stage barriers (SPLASH-2).
 *
 * A power-of-two signal is transformed in log2(n) butterfly stages;
 * every stage partitions the butterflies contiguously over threads and
 * ends in a barrier (SPLASH's six-step FFT has the same
 * compute/transpose/barrier rhythm). All writes in a stage are disjoint
 * and the stage barrier orders them against the next stage's reads, so
 * fft is race-free — it is one of the 9 benchmarks the paper found clean
 * under ThreadSanitizer. Accesses are 8-byte doubles, so nearly every
 * shared access is wide (Figure 8's >= 91.9% statistic).
 */

#include "workloads/suite/factories.h"
#include "workloads/suite/kernel_common.h"

namespace clean::wl::suite
{

namespace
{

class Fft : public KernelBase
{
  public:
    Fft() : KernelBase("fft", "splash2", false) {}

    void
    run(Env &env, const WorkloadParams &p) override
    {
        const std::uint64_t logN = scaled(p.scale, 10, 13, 16);
        const std::uint64_t n = std::uint64_t{1} << logN;

        auto *re = env.allocShared<double>(n);
        auto *im = env.allocShared<double>(n);
        const unsigned phase = env.createBarrier(p.threads);

        {
            Prng init(p.seed);
            for (std::uint64_t i = 0; i < n; ++i) {
                re[i] = init.nextDouble() * 2.0 - 1.0;
                im[i] = 0.0;
            }
        }

        env.parallel(p.threads, [&](Worker &w) {
            // Private twiddle-factor table, recomputed per stage — the
            // SPLASH FFT keeps the same table in per-process memory.
            auto *twiddle = env.allocPrivate<double>(n);
            // Bit-reversal permutation: each worker swaps pairs whose
            // smaller index falls in its slice (each pair touched once).
            const Slice slice = sliceOf(n, w.index(), w.count());
            for (std::uint64_t i = slice.begin; i < slice.end; ++i) {
                std::uint64_t j = 0;
                for (std::uint64_t bit = 0; bit < logN; ++bit)
                    j |= ((i >> bit) & 1) << (logN - 1 - bit);
                if (j > i) {
                    const double tr = w.read(&re[i]);
                    const double ti = w.read(&im[i]);
                    w.write(&re[i], w.read(&re[j]));
                    w.write(&im[i], w.read(&im[j]));
                    w.write(&re[j], tr);
                    w.write(&im[j], ti);
                }
                w.compute(logN);
            }
            w.barrier(phase);

            for (std::uint64_t s = 1; s <= logN; ++s) {
                const std::uint64_t m = std::uint64_t{1} << s;
                const std::uint64_t half = m >> 1;
                // Stage twiddles into private memory.
                for (std::uint64_t k = 0; k < half; ++k) {
                    const double angle =
                        -2.0 * 3.14159265358979323846 *
                        static_cast<double>(k) / static_cast<double>(m);
                    w.writePrivate(&twiddle[2 * k], std::cos(angle));
                    w.writePrivate(&twiddle[2 * k + 1], std::sin(angle));
                    w.compute(8);
                }
                const std::uint64_t butterflies = n >> 1;
                const Slice bf = sliceOf(butterflies, w.index(), w.count());
                for (std::uint64_t t = bf.begin; t < bf.end; ++t) {
                    const std::uint64_t group = t / half;
                    const std::uint64_t k = t % half;
                    const std::uint64_t top = group * m + k;
                    const std::uint64_t bot = top + half;
                    const double wr = w.readPrivate(&twiddle[2 * k]);
                    const double wi = w.readPrivate(&twiddle[2 * k + 1]);
                    const double br = w.read(&re[bot]);
                    const double bi = w.read(&im[bot]);
                    const double tr = wr * br - wi * bi;
                    const double ti = wr * bi + wi * br;
                    const double ar = w.read(&re[top]);
                    const double ai = w.read(&im[top]);
                    w.write(&re[bot], ar - tr);
                    w.write(&im[bot], ai - ti);
                    w.write(&re[top], ar + tr);
                    w.write(&im[top], ai + ti);
                    w.compute(12);
                }
                w.barrier(phase);
            }

            std::uint64_t h = 0;
            for (std::uint64_t i = slice.begin; i < slice.end;
                 i += 1 + (slice.end - slice.begin) / 64) {
                h = h * 31 + static_cast<std::uint64_t>(
                                 std::fabs(w.read(&re[i])) * 1e6);
            }
            w.sink(h);
        });

        env.declareOutput(re, n * sizeof(double));
    }
};

} // namespace

std::unique_ptr<Workload>
makeFft()
{
    return std::make_unique<Fft>();
}

} // namespace clean::wl::suite
