# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cleanrun_list "/root/repo/build/tools/cleanrun" "--list")
set_tests_properties(cleanrun_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cleanrun_clean_run "/root/repo/build/tools/cleanrun" "--workload=fft" "--backend=clean" "--threads=4")
set_tests_properties(cleanrun_clean_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cleanrun_racy_run "/root/repo/build/tools/cleanrun" "--workload=raytrace" "--backend=clean" "--racy" "--threads=4")
set_tests_properties(cleanrun_racy_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
