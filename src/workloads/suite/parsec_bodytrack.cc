/**
 * @file
 * bodytrack — particle-filter body tracking (PARSEC).
 *
 * Per frame: threads score a disjoint slice of particles against a
 * shared observation model (read-heavy), the particle weights are
 * normalized via a lock-protected global sum, and the filter resamples
 * into a new particle set (disjoint writes), with barriers between the
 * stages.
 *
 * Racy variant: the weight-sum reduction is accumulated into the shared
 * total without the lock — unsynchronized RMW (WAW), and the normalizing
 * readers race with late adders (RAW).
 */

#include "workloads/suite/factories.h"
#include "workloads/suite/kernel_common.h"

namespace clean::wl::suite
{

namespace
{

class Bodytrack : public KernelBase
{
  public:
    Bodytrack() : KernelBase("bodytrack", "parsec", true) {}

    void
    run(Env &env, const WorkloadParams &p) override
    {
        const std::uint64_t nParticles = scaled(p.scale, 512, 2048, 8192);
        const std::uint64_t nFrames = scaled(p.scale, 2, 4, 8);
        const std::uint64_t modelSize = 512;

        auto *pose = env.allocShared<double>(nParticles * 4);
        auto *weight = env.allocShared<double>(nParticles);
        auto *model = env.allocShared<double>(modelSize);
        auto *weightSum = env.allocShared<double>(1);
        auto *newPose = env.allocShared<double>(nParticles * 4);
        const unsigned sumLock = env.createMutex();
        const unsigned phase = env.createBarrier(p.threads);

        {
            Prng init(p.seed);
            for (std::uint64_t i = 0; i < nParticles * 4; ++i)
                pose[i] = init.nextDouble();
            for (std::uint64_t i = 0; i < modelSize; ++i)
                model[i] = init.nextDouble();
            weightSum[0] = 0.0;
        }

        const bool racy = p.racy;
        env.parallel(p.threads, [&](Worker &w) {
            const Slice slice = sliceOf(nParticles, w.index(), w.count());
            // Private observation window (bodytrack's per-thread image
            // patches).
            auto *window = env.allocPrivate<double>(16);
            for (std::uint64_t frame = 0; frame < nFrames; ++frame) {
                if (w.index() == 0)
                    w.write(&weightSum[0], 0.0);
                w.barrier(phase);

                // Score particles against the observation model.
                double localSum = 0.0;
                for (std::uint64_t i = slice.begin; i < slice.end; ++i) {
                    // Stage the observation window privately, then
                    // score against it.
                    for (std::uint64_t m = 0; m < 16; ++m) {
                        const std::uint64_t idx =
                            (i * 16 + m + frame) % modelSize;
                        w.writePrivate(&window[m], w.read(&model[idx]));
                    }
                    double score = 0.0;
                    for (std::uint64_t m = 0; m < 16; ++m) {
                        const double obs = w.readPrivate(&window[m]);
                        const double q =
                            w.read(&pose[i * 4 + (m & 3)]);
                        score += std::exp(-(obs - q) * (obs - q));
                        w.compute(8);
                    }
                    w.write(&weight[i], score);
                    localSum += score;
                }
                if (racy) {
                    // Unlocked reduction into the shared total.
                    w.update(&weightSum[0], [localSum](double v) {
                        return v + localSum;
                    });
                } else {
                    w.lock(sumLock);
                    w.update(&weightSum[0], [localSum](double v) {
                        return v + localSum;
                    });
                    w.unlock(sumLock);
                }
                w.barrier(phase);

                // Resample: systematic pick proportional to weight.
                const double total = w.read(&weightSum[0]);
                for (std::uint64_t i = slice.begin; i < slice.end; ++i) {
                    const double wi = w.read(&weight[i]) /
                                      std::max(1e-12, total);
                    const std::uint64_t srcIdx =
                        (i + static_cast<std::uint64_t>(
                                 wi * nParticles)) %
                        nParticles;
                    for (unsigned d = 0; d < 4; ++d) {
                        const double v =
                            w.read(&pose[srcIdx * 4 + d]) * 0.9 +
                            0.1 * wi;
                        w.write(&newPose[i * 4 + d], v);
                    }
                    w.compute(10);
                }
                w.barrier(phase);
                for (std::uint64_t i = slice.begin; i < slice.end; ++i) {
                    for (unsigned d = 0; d < 4; ++d)
                        w.write(&pose[i * 4 + d],
                                w.read(&newPose[i * 4 + d]));
                }
                w.barrier(phase);
            }
            std::uint64_t h = 0;
            for (std::uint64_t i = slice.begin; i < slice.end; ++i)
                h = h * 31 + static_cast<std::uint64_t>(
                                 w.read(&weight[i]) * 1e6);
            w.sink(h);
        });

        env.declareOutput(pose, nParticles * 4 * sizeof(double));
    }
};

} // namespace

std::unique_ptr<Workload>
makeBodytrack()
{
    return std::make_unique<Bodytrack>();
}

} // namespace clean::wl::suite
