#include "det/kendo.h"

#include <thread>

#include "support/backoff.h"
#include "support/deadlock_error.h"
#include "support/logging.h"

namespace clean::det
{

Kendo::Kendo(bool enabled, ThreadId maxSlots)
    : enabled_(enabled), maxSlots_(maxSlots)
{
    CLEAN_ASSERT(maxSlots > 0);
    slots_ = new Slot[maxSlots];
}

Kendo::~Kendo()
{
    delete[] slots_;
}

void
Kendo::activate(ThreadId slot, DetCount start)
{
    CLEAN_ASSERT(slot < maxSlots_);
    Slot &s = slots_[slot];
    DetCount current = s.count.load(std::memory_order_relaxed);
    if (start > current)
        s.count.store(start, std::memory_order_relaxed);
    s.status.store(Status::Active, std::memory_order_release);
}

void
Kendo::finish(ThreadId slot)
{
    slots_[slot].status.store(Status::Inactive, std::memory_order_release);
}

bool
Kendo::tryTurn(ThreadId slot)
{
    if (!enabled_)
        return true;
    const Slot &self = slots_[slot];
    const DetCount mine = self.count.load(std::memory_order_relaxed);
    for (ThreadId j = 0; j < maxSlots_; ++j) {
        if (j == slot)
            continue;
        const Slot &other = slots_[j];
        if (other.status.load(std::memory_order_acquire) != Status::Active)
            continue;
        const DetCount theirs = other.count.load(std::memory_order_relaxed);
        // Strict (count, tid) order; ties go to the smaller tid.
        if (theirs < mine || (theirs == mine && j < slot))
            return false;
    }
    return true;
}

void
Kendo::waitForTurn(ThreadId slot)
{
    if (!enabled_)
        return;
    // This host may have fewer cores than simulated threads; the backoff
    // yields (then sleeps) so the thread we are waiting on can actually
    // run instead of us burning its core.
    SpinWait spin(watchdogMs_);
    while (!tryTurn(slot)) {
        if (CLEAN_UNLIKELY(spin.expired()))
            throwDeadlock(slot, "waitForTurn", spin.elapsedMs());
        spin.pause();
    }
    spins_.fetch_add(spin.iterations(), std::memory_order_relaxed);
}

void
Kendo::block(ThreadId slot)
{
    if (!enabled_)
        return;
    slots_[slot].status.store(Status::Blocked, std::memory_order_release);
}

void
Kendo::unblock(ThreadId slot, DetCount resumeAt)
{
    if (!enabled_)
        return;
    Slot &s = slots_[slot];
    CLEAN_ASSERT(s.status.load() == Status::Blocked,
                 "unblock of non-blocked slot %u", slot);
    const DetCount current = s.count.load(std::memory_order_relaxed);
    if (resumeAt > current)
        s.count.store(resumeAt, std::memory_order_relaxed);
    s.status.store(Status::Active, std::memory_order_release);
}

void
Kendo::waitWhileBlocked(ThreadId slot)
{
    if (!enabled_)
        return;
    const Slot &s = slots_[slot];
    SpinWait spin(watchdogMs_);
    while (s.status.load(std::memory_order_acquire) == Status::Blocked) {
        if (CLEAN_UNLIKELY(spin.expired()))
            throwDeadlock(slot, "waitWhileBlocked", spin.elapsedMs());
        spin.pause();
    }
}

bool
Kendo::isActive(ThreadId slot) const
{
    return slots_[slot].status.load(std::memory_order_acquire) ==
           Status::Active;
}

const char *
Kendo::statusName(ThreadId slot) const
{
    switch (slots_[slot].status.load(std::memory_order_acquire)) {
      case Status::Inactive: return "inactive";
      case Status::Active: return "active";
      case Status::Blocked: return "blocked";
    }
    return "?";
}

ThreadId
Kendo::minActiveSlot() const
{
    ThreadId best = maxSlots_;
    DetCount bestCount = 0;
    for (ThreadId j = 0; j < maxSlots_; ++j) {
        if (slots_[j].status.load(std::memory_order_acquire) !=
            Status::Active) {
            continue;
        }
        const DetCount c = slots_[j].count.load(std::memory_order_relaxed);
        if (best == maxSlots_ || c < bestCount) {
            best = j;
            bestCount = c;
        }
    }
    return best;
}

std::string
Kendo::snapshot() const
{
    std::string out;
    for (ThreadId j = 0; j < maxSlots_; ++j) {
        if (slots_[j].status.load(std::memory_order_acquire) ==
            Status::Inactive) {
            continue;
        }
        if (!out.empty())
            out += " | ";
        out += "slot " + std::to_string(j) + ": det=" +
               std::to_string(
                   slots_[j].count.load(std::memory_order_relaxed)) +
               " " + statusName(j);
    }
    return out.empty() ? std::string("no runnable slots") : out;
}

void
Kendo::throwDeadlock(ThreadId slot, const char *where,
                     std::uint64_t waitedMs) const
{
    const ThreadId stuck = minActiveSlot();
    throw DeadlockError(
        "watchdog: slot " + std::to_string(slot) + " waited " +
            std::to_string(waitedMs) + " ms in Kendo::" + where +
            "; suspected stuck slot " +
            (stuck < maxSlots_ ? std::to_string(stuck)
                               : std::string("<none>")) +
            " [" + snapshot() + "]",
        slot, stuck < maxSlots_ ? stuck : slot, waitedMs);
}

} // namespace clean::det
