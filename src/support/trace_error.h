/**
 * @file
 * Structured errors of the record/replay trace subsystem (ISSUE 6).
 *
 * Every way a recorded trace can fail to drive a replay maps to one
 * TraceFault value, and every fault surfaces as a TraceError carrying
 * the machine-readable kind, the replay step index where it was
 * detected (when one exists) and a human-readable message naming the
 * expected and actual events. The cleanrun driver maps any TraceError
 * to the dedicated exit code (support/exit_codes.h: TraceError = 6) —
 * a bad trace must never hang, crash, or silently diverge.
 */

#ifndef CLEAN_SUPPORT_TRACE_ERROR_H
#define CLEAN_SUPPORT_TRACE_ERROR_H

#include <cstdint>
#include <stdexcept>
#include <string>

namespace clean
{

/** Machine-readable classification of a trace failure. */
enum class TraceFault
{
    /** File missing / unreadable / unwritable. */
    BadFile,
    /** Not a CLEAN trace (magic mismatch). */
    BadMagic,
    /** Schema version this binary does not speak. */
    BadVersion,
    /** Malformed metadata header (missing or unparsable keys). */
    BadMeta,
    /** Trace was recorded under a different configuration (thread
     *  count, workload, runtime knobs, injection plan, ...). */
    ConfigMismatch,
    /** Trace ends before the execution does (crashed recorder): the
     *  prefix replayed cleanly, the remainder is unavailable. */
    Truncated,
    /** Mid-replay divergence: the program performed an event the trace
     *  does not predict at that step. */
    Divergence,
    /** Record/replay requested in a mode that cannot support it
     *  (non-deterministic backend, observability compiled out). */
    Unsupported,
};

inline const char *
traceFaultName(TraceFault fault)
{
    switch (fault) {
      case TraceFault::BadFile: return "bad_file";
      case TraceFault::BadMagic: return "bad_magic";
      case TraceFault::BadVersion: return "bad_version";
      case TraceFault::BadMeta: return "bad_meta";
      case TraceFault::ConfigMismatch: return "config_mismatch";
      case TraceFault::Truncated: return "truncated";
      case TraceFault::Divergence: return "divergence";
      case TraceFault::Unsupported: return "unsupported";
    }
    return "?";
}

/** Thrown (and recorded by the runtime) on any trace fault. */
class TraceError : public std::runtime_error
{
  public:
    /** @p step is the replay step index the fault was detected at
     *  (the position in the deterministic event order), or kNoStep for
     *  faults outside a replay (load/config errors). */
    TraceError(TraceFault fault, const std::string &message,
               std::uint64_t step = kNoStep)
        : std::runtime_error(std::string("trace ") + traceFaultName(fault) +
                             (step == kNoStep
                                  ? std::string()
                                  : " at step " + std::to_string(step)) +
                             ": " + message),
          fault_(fault), step_(step)
    {
    }

    static constexpr std::uint64_t kNoStep = ~std::uint64_t{0};

    TraceFault fault() const { return fault_; }
    const char *faultName() const { return traceFaultName(fault_); }
    bool hasStep() const { return step_ != kNoStep; }
    std::uint64_t step() const { return step_; }

  private:
    TraceFault fault_;
    std::uint64_t step_;
};

} // namespace clean

#endif // CLEAN_SUPPORT_TRACE_ERROR_H
