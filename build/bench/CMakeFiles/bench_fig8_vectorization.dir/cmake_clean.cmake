file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_vectorization.dir/bench_fig8_vectorization.cc.o"
  "CMakeFiles/bench_fig8_vectorization.dir/bench_fig8_vectorization.cc.o.d"
  "bench_fig8_vectorization"
  "bench_fig8_vectorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_vectorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
