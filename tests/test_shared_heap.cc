/**
 * @file
 * SharedHeap tests (§4.2's fixed-region allocation model).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "core/shared_heap.h"

namespace clean
{
namespace
{

SharedHeapConfig
tiny()
{
    SharedHeapConfig config;
    config.sharedBytes = 1 << 20;
    config.privateBytes = 1 << 20;
    return config;
}

TEST(SharedHeap, AllocationsAreZeroed)
{
    SharedHeap heap(tiny());
    auto *p = heap.allocSharedArray<std::uint64_t>(128);
    for (int i = 0; i < 128; ++i)
        EXPECT_EQ(p[i], 0u);
}

TEST(SharedHeap, AllocationsAre16ByteAligned)
{
    SharedHeap heap(tiny());
    for (std::size_t sz : {1, 3, 17, 100}) {
        void *p = heap.allocShared(sz);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
        void *q = heap.allocPrivate(sz);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % 16, 0u);
    }
}

TEST(SharedHeap, AllocationsAreDisjoint)
{
    SharedHeap heap(tiny());
    auto *a = heap.allocSharedArray<char>(100);
    auto *b = heap.allocSharedArray<char>(100);
    std::memset(a, 1, 100);
    std::memset(b, 2, 100);
    EXPECT_EQ(a[99], 1);
    EXPECT_EQ(b[0], 2);
    EXPECT_GE(b, a + 100);
}

TEST(SharedHeap, SharedAndPrivateHalvesAreClassified)
{
    SharedHeap heap(tiny());
    auto *s = heap.allocShared(64);
    auto *p = heap.allocPrivate(64);
    EXPECT_FALSE(heap.isPrivate(reinterpret_cast<Addr>(s)));
    EXPECT_TRUE(heap.isPrivate(reinterpret_cast<Addr>(p)));
    EXPECT_TRUE(heap.contains(reinterpret_cast<Addr>(s)));
    EXPECT_TRUE(heap.contains(reinterpret_cast<Addr>(p)));
    EXPECT_FALSE(heap.contains(0x10));
}

TEST(SharedHeap, SharedRegionIsContiguousFromBase)
{
    SharedHeap heap(tiny());
    auto *first = heap.allocShared(16);
    EXPECT_EQ(reinterpret_cast<Addr>(first), heap.sharedBase());
}

TEST(SharedHeap, UsageAccounting)
{
    SharedHeap heap(tiny());
    EXPECT_EQ(heap.sharedUsed(), 0u);
    heap.allocShared(10); // rounds to 16
    heap.allocShared(16);
    EXPECT_EQ(heap.sharedUsed(), 32u);
    heap.allocPrivate(1);
    EXPECT_EQ(heap.privateUsed(), 16u);
}

TEST(SharedHeap, ConcurrentAllocationsDoNotOverlap)
{
    SharedHeap heap(tiny());
    constexpr int kThreads = 4, kPerThread = 200;
    std::vector<void *> results[kThreads];
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i)
                results[t].push_back(heap.allocShared(32));
        });
    }
    for (auto &thread : threads)
        thread.join();
    std::vector<void *> all;
    for (auto &r : results)
        all.insert(all.end(), r.begin(), r.end());
    std::sort(all.begin(), all.end());
    for (std::size_t i = 1; i < all.size(); ++i) {
        EXPECT_GE(static_cast<char *>(all[i]),
                  static_cast<char *>(all[i - 1]) + 32);
    }
}

TEST(SharedHeapDeath, ExhaustionIsFatal)
{
    SharedHeapConfig config;
    config.sharedBytes = 4096;
    config.privateBytes = 4096;
    SharedHeap heap(config);
    EXPECT_EXIT(
        {
            for (int i = 0; i < 1000; ++i)
                heap.allocShared(64);
        },
        ::testing::ExitedWithCode(1), "out of space");
}

} // namespace
} // namespace clean
