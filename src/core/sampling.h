/**
 * @file
 * Deterministic sampling tier for the --overhead-budget SLO mode.
 *
 * Sits *above* the ownership cache and batch buffer: before any check
 * machinery runs, a per-thread gate decides whether a read check is
 * admitted or shed. Decisions are pure functions of
 *
 *     (seed, region, window, level, per-region burst/backoff state)
 *
 * where `region` is a heap-relative 2^regionLog2-byte address range and
 * `window` is the thread's shared-read count divided by 2^windowLog2 —
 * a deterministic per-thread clock that advances with the program, not
 * with wall time. Physical time influences shedding only through the
 * admission *level*, which the runtime adopts exclusively at SFR
 * boundaries and records as a SampleLevel event in the .cleantrace
 * lane; replay adopts the recorded levels instead of consulting the
 * governor, which makes every decision below bit-reproducible.
 *
 * Soundness (DESIGN.md §15): only READ checks are ever shed. Reads
 * never update shadow metadata, so a shed read leaves the detector
 * state byte-identical to the unbudgeted run — shedding can miss a RAW
 * race (the SLO trade) but can never manufacture one, and WAW coverage
 * stays complete because write checks are never gated.
 *
 * Per-region policy (LiteRace-style cold-region bursts + exponential
 * backoff on hot regions):
 *  - a region's first `burstWindows` decision windows are fully
 *    admitted (cold regions — where unsynchronized handoffs typically
 *    surface — get checked at full rate). A burst is granted only on
 *    an entry's first claim, never on evict-and-return (a working set
 *    that outgrows the table must not re-burst wholesale every pass),
 *    and not when the admission level has climbed into the deep-shed
 *    regime (>= kBurstSuppressLevel):
 *    a governor that far over budget cannot afford full-rate bursts
 *    on every fresh region — on streaming workloads the cold-region
 *    frontier *is* the workload, and bursts would hold the overhead
 *    above the budget no matter how deep the ladder goes. The unspent
 *    burst survives, so regions touched while suppressed still get
 *    their burst if the level recovers;
 *  - after the burst, admission is `hash(seed, region, window) <
 *    admitP(level) >> backoff`; the backoff deepens while the region
 *    stays hot across consecutive windows under an active level and
 *    decays when it goes cold;
 *  - a region whose backoff is saturated and that *keeps* re-heating
 *    accrues strikes; `maxStrikes` strikes quarantine it locally
 *    (always shed) and report it to the governor's recovery ledger.
 */

#ifndef CLEAN_CORE_SAMPLING_H
#define CLEAN_CORE_SAMPLING_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "support/common.h"

namespace clean
{

/** Checker-level tunables for the sampling gate. */
struct SampleParams
{
    /** log2 of the decision window in shared reads (default 4096). A
     *  window — not the raw SFR ordinal — keys decisions so that very
     *  long SFRs still re-randomize admission as they progress. */
    unsigned windowLog2 = 12;
    /** Fully-admitted decision windows for a cold region. */
    std::uint32_t burstWindows = 4;
    /** log2 of the admission-region size in bytes (default 256). */
    unsigned regionLog2 = 8;
    /** Strikes (saturated-backoff re-heats) before local quarantine. */
    std::uint32_t maxStrikes = 8;
    /** Hash seed; recorded in the trace header (schema v3). */
    std::uint64_t seed = 0x5eedbead;
    /** Initial admission level (tests pin a fixed level with this plus
     *  RuntimeConfig::sampleForceLevel, which disables adoption). */
    std::uint32_t initialLevel = 0;
    /** Region-space anchor (the shared heap base), so regions are
     *  heap-relative and stable across runs/replays. */
    Addr base = 0;
};

/** Deterministic counters the gate accrues; merged after a run. */
struct SampleTelemetry
{
    /** Decision-window (re-)decisions taken by the slow path. */
    std::uint64_t windows = 0;
    /** Windows admitted via a cold-region burst. */
    std::uint64_t bursts = 0;
    /** Saturated-backoff strikes accrued. */
    std::uint64_t strikes = 0;
    /** Regions locally quarantined (shed permanently). */
    std::uint64_t quarantines = 0;
    /** SampleLevel adoptions performed at SFR boundaries. */
    std::uint64_t levelAdoptions = 0;
    /** Calibration SFRs (all reads shed to sample the floor cost). */
    std::uint64_t calibSfrs = 0;
    /** log2 histogram of reads shed per SFR-boundary interval. */
    obs::Histogram shedPerBoundary;

    void
    merge(const SampleTelemetry &other)
    {
        windows += other.windows;
        bursts += other.bursts;
        strikes += other.strikes;
        quarantines += other.quarantines;
        levelAdoptions += other.levelAdoptions;
        calibSfrs += other.calibSfrs;
        shedPerBoundary.merge(other.shedPerBoundary);
    }
};

/**
 * Per-thread admission gate. Modeled on OwnershipCache: a small
 * direct-mapped table memoizes the (region, window) decision so the hot
 * path is one compare-and-branch; the out-of-line slow path re-decides
 * once per region per window.
 *
 * Cache-line aligned: the gate is embedded in ThreadState and consulted
 * per shared read, so its head fields must not share a line with a
 * neighboring thread's hot state.
 */
class alignas(kCacheLineBytes) SampleGate
{
  public:
    static constexpr std::uint32_t kEntries = 512;
    /** Deepest admission level; admitP decays geometrically (~x0.75
     *  per level) from 65536 (admit all) to a floor that still admits
     *  a trickle (never 0 — every region keeps residual coverage). */
    static constexpr std::uint32_t kMaxLevel = 23;
    /** Levels at or past this suppress cold-region bursts (~3%
     *  admission: the governor is deeply over budget and the burst
     *  frontier would otherwise defeat the ladder entirely). */
    static constexpr std::uint32_t kBurstSuppressLevel = 12;
    static constexpr std::uint32_t kMaxBackoff = 8;
    /** Local quarantine capacity; past it, strikes stop quarantining. */
    static constexpr std::size_t kMaxQuarantined = 64;

    /** 16-bit admission probability for a level (no backoff). */
    static std::uint32_t
    admitPForLevel(std::uint32_t level)
    {
        std::uint32_t p = 65536;
        for (std::uint32_t l = 0; l < std::min(level, kMaxLevel); ++l)
            p = std::max<std::uint32_t>(1, p - p / 4);
        return p;
    }

    /** Fail-safe cold-start level for an overhead budget: the
     *  shallowest level whose admission fraction is within budgetPct
     *  percent. A governed run starts here — the worst-case prior that
     *  the entire check cost is overhead, so admission == budget keeps
     *  the SLO honored from the first read; measurements then earn
     *  admission back down (or shed further). Budgets >= 100 start at
     *  0 (admit everything). */
    static std::uint32_t
    levelForBudget(std::uint32_t budgetPct)
    {
        std::uint32_t level = 0;
        while (level < kMaxLevel &&
               static_cast<std::uint64_t>(admitPForLevel(level)) * 100 >
                   static_cast<std::uint64_t>(budgetPct) * 65536)
            ++level;
        return level;
    }

    void
    configure(const SampleParams &params)
    {
        params_ = params;
        level_ = std::min(params.initialLevel, kMaxLevel);
        admitP_ = admitPForLevel(level_);
    }

    const SampleParams &params() const { return params_; }

    /**
     * Admission decision for a read at @p addr with @p sharedReads
     * prior shared reads on this thread. Hot path: during a
     * calibration SFR everything sheds; at level 0 outside a burst
     * everything admits without touching the table; otherwise one
     * direct-mapped probe.
     */
    CLEAN_ALWAYS_INLINE bool
    admit(Addr addr, std::uint64_t sharedReads)
    {
        if (CLEAN_UNLIKELY(calibSfr_))
            return false;
        const std::uint64_t w = sharedReads >> params_.windowLog2;
        const std::uint64_t region =
            (addr - params_.base) >> params_.regionLog2;
        Entry &e = entries_[region & (kEntries - 1)];
        if (CLEAN_LIKELY(e.key == region + 1 && e.window == w))
            return e.admit;
        return decide(e, region, w);
    }

    /** Adopt a governor- (or replay-) supplied admission level. Only
     *  the runtime calls this, only at SFR boundaries. */
    void
    adoptLevel(std::uint32_t level)
    {
        level_ = std::min(level, kMaxLevel);
        admitP_ = admitPForLevel(level_);
        telemetry_.levelAdoptions++;
    }

    std::uint32_t level() const { return level_; }

    /** Marks the current SFR as a calibration interval (all reads
     *  shed, no per-region state updates) or a normal one. */
    void
    setCalibSfr(bool calib)
    {
        calibSfr_ = calib;
        if (calib)
            telemetry_.calibSfrs++;
    }

    bool calibSfr() const { return calibSfr_; }

    /** A region newly quarantined since the last boundary drain. */
    struct PendingQuarantine
    {
        std::uint64_t region;
        std::uint32_t strikes;
    };

    /** Drains regions quarantined since the last call (SFR-boundary
     *  funnel: the runtime turns these into SampleQuarantine events
     *  and governor-ledger episodes). */
    std::vector<PendingQuarantine>
    takePendingQuarantines()
    {
        std::vector<PendingQuarantine> out;
        out.swap(pendingQuarantines_);
        return out;
    }

    bool hasPendingQuarantines() const
    {
        return !pendingQuarantines_.empty();
    }

    /** Locally quarantined regions, sorted (deterministic). */
    const std::vector<std::uint64_t> &
    quarantinedRegions() const
    {
        return quarantined_;
    }

    SampleTelemetry &telemetry() { return telemetry_; }
    const SampleTelemetry &telemetry() const { return telemetry_; }

  private:
    struct Entry
    {
        /** region + 1 (0 = empty). */
        std::uint64_t key = 0;
        /** Decision window the memoized verdict applies to. */
        std::uint64_t window = 0;
        std::uint32_t burstLeft = 0;
        std::uint32_t strikes = 0;
        std::uint8_t backoff = 0;
        bool admit = false;
    };

    /** splitmix64-style avalanche of (seed, region, window). */
    static std::uint64_t
    mix(std::uint64_t seed, std::uint64_t region, std::uint64_t window)
    {
        std::uint64_t x = seed ^ (region * 0x9e3779b97f4a7c15ULL) ^
                          (window * 0xbf58476d1ce4e5b9ULL);
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        return x;
    }

    bool
    isQuarantined(std::uint64_t region) const
    {
        return std::binary_search(quarantined_.begin(),
                                  quarantined_.end(), region);
    }

    /** One (region, window) re-decision; memoized into @p e. */
    CLEAN_NOINLINE bool
    decide(Entry &e, std::uint64_t region, std::uint64_t w)
    {
        telemetry_.windows++;
        bool consecutive = false;
        if (e.key != region + 1) {
            // A burst is granted only when the entry has never been
            // claimed — an evicted-and-returning region re-enters with
            // no burst. Restarting the burst on every eviction would
            // re-admit the whole working set at full rate once it
            // outgrows the table (each streaming pass evicts every
            // entry), making admission levels unenforceable exactly
            // when the budget needs them.
            e.burstLeft = e.key == 0 ? params_.burstWindows : 0;
            e.key = region + 1;
            e.strikes = 0;
            e.backoff = 0;
        } else {
            consecutive = (w == e.window + 1);
        }
        e.window = w;
        if (CLEAN_UNLIKELY(isQuarantined(region))) {
            e.burstLeft = 0;
            e.admit = false;
            return false;
        }
        if (e.burstLeft > 0 && level_ < kBurstSuppressLevel) {
            e.burstLeft--;
            telemetry_.bursts++;
            e.admit = true;
            return true;
        }
        // Backoff bookkeeping: a region re-deciding in *consecutive*
        // windows while the governor sheds (level > 0) is hot — deepen
        // its personal backoff; once saturated, further re-heats are
        // strikes toward quarantine. A gap in windows cools it down.
        if (level_ > 0 && consecutive) {
            if (e.backoff < kMaxBackoff) {
                e.backoff++;
            } else {
                telemetry_.strikes++;
                if (++e.strikes >= params_.maxStrikes) {
                    quarantine(region, e.strikes);
                    e.admit = false;
                    return false;
                }
            }
        } else if (!consecutive && e.backoff > 0) {
            e.backoff--;
        }
        const std::uint32_t p =
            level_ == 0 ? 65536u
                        : std::max<std::uint32_t>(1, admitP_ >> e.backoff);
        e.admit = (mix(params_.seed, region, w) & 0xffff) < p;
        return e.admit;
    }

    void
    quarantine(std::uint64_t region, std::uint32_t strikes)
    {
        if (quarantined_.size() >= kMaxQuarantined)
            return;
        const auto it = std::lower_bound(quarantined_.begin(),
                                         quarantined_.end(), region);
        if (it != quarantined_.end() && *it == region)
            return;
        quarantined_.insert(it, region);
        pendingQuarantines_.push_back({region, strikes});
        telemetry_.quarantines++;
    }

    SampleParams params_;
    std::uint32_t level_ = 0;
    std::uint32_t admitP_ = 65536;
    bool calibSfr_ = false;
    Entry entries_[kEntries];
    std::vector<std::uint64_t> quarantined_;
    std::vector<PendingQuarantine> pendingQuarantines_;
    SampleTelemetry telemetry_;
};
static_assert(alignof(SampleGate) == kCacheLineBytes,
              "per-thread gate heads must not false-share");

} // namespace clean

#endif // CLEAN_CORE_SAMPLING_H
