#include "obs/trace_schema.h"

#include <cerrno>
#include <cstring>
#include <map>
#include <sstream>

namespace clean::obs
{

namespace
{

constexpr const char *kMagic = "CLEANTRACE";
constexpr const char *kSeparator = "%%";
constexpr const char *kFooterMagic = "CLEANEND";
constexpr std::size_t kFooterBytes = 16; // 8 magic + 8 count

void
putU32(unsigned char *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

void
putU64(unsigned char *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint32_t
getU32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

/** The meta fields in serialization order. Listing them once keeps the
 *  writer, the parser and operator== in lockstep. */
struct FieldRef
{
    const char *key;
    enum class Type { U32, U64, Bool, Str } type;
    void *ptr;
};

std::vector<FieldRef>
metaFields(TraceMeta &m)
{
    using T = FieldRef::Type;
    return {
        {"workload", T::Str, &m.workload},
        {"scale", T::U32, &m.scale},
        {"threads", T::U32, &m.threads},
        {"racy", T::Bool, &m.racy},
        {"seed", T::U64, &m.seed},
        {"backend", T::U32, &m.backend},
        {"clock_bits", T::U32, &m.clockBits},
        {"tid_bits", T::U32, &m.tidBits},
        {"max_threads", T::U32, &m.maxThreads},
        {"on_race", T::U32, &m.onRace},
        {"vectorized", T::Bool, &m.vectorized},
        {"fast_path", T::Bool, &m.fastPath},
        {"own_cache", T::Bool, &m.ownCache},
        {"batch", T::Bool, &m.batch},
        {"batch_bytes", T::U64, &m.batchBytes},
        {"atomicity", T::U32, &m.atomicity},
        {"shadow", T::U32, &m.shadow},
        {"granule_log2", T::U32, &m.granuleLog2},
        {"det_chunk", T::U32, &m.detChunk},
        {"rollover_margin", T::U64, &m.rolloverMargin},
        {"watchdog_ms", T::U64, &m.watchdogMs},
        {"max_recoveries", T::U32, &m.maxRecoveries},
        {"undo_log_entries", T::U64, &m.undoLogEntries},
        {"heap_shared_bytes", T::U64, &m.heapSharedBytes},
        {"heap_private_bytes", T::U64, &m.heapPrivateBytes},
        {"obs_ring_events", T::U64, &m.obsRingEvents},
        {"obs_failure_tail", T::U64, &m.obsFailureTail},
        {"overhead_budget", T::U32, &m.overheadBudget},
        {"sample_window_log2", T::U32, &m.sampleWindowLog2},
        {"sample_burst", T::U32, &m.sampleBurst},
        {"sample_region_log2", T::U32, &m.sampleRegionLog2},
        {"sample_strikes", T::U32, &m.sampleStrikes},
        {"sample_seed", T::U64, &m.sampleSeed},
        {"sample_calib_log2", T::U32, &m.sampleCalibLog2},
        {"sample_force_level_p1", T::U32, &m.sampleForceLevelP1},
        {"inject_enabled", T::Bool, &m.injectEnabled},
        {"inject_seed", T::U64, &m.injectSeed},
        {"skip_check_rate_bits", T::U64, &m.skipCheckRateBits},
        {"skip_acquire_rate_bits", T::U64, &m.skipAcquireRateBits},
        {"delay_rate_bits", T::U64, &m.delayRateBits},
        {"rollover_rate_bits", T::U64, &m.rolloverRateBits},
        {"kill_rate_bits", T::U64, &m.killRateBits},
        {"delay_micros", T::U32, &m.delayMicros},
    };
}

std::uint64_t
parseU64(const std::string &key, const std::string &value)
{
    if (value.empty())
        throw TraceError(TraceFault::BadMeta, "empty value for '" + key + "'");
    std::uint64_t v = 0;
    for (char c : value) {
        if (c < '0' || c > '9')
            throw TraceError(TraceFault::BadMeta,
                             "non-numeric value for '" + key + "': " + value);
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return v;
}

} // namespace

bool
TraceMeta::operator==(const TraceMeta &o) const
{
    auto &self = const_cast<TraceMeta &>(*this);
    auto &other = const_cast<TraceMeta &>(o);
    const auto a = metaFields(self);
    const auto b = metaFields(other);
    if (schemaVersion != o.schemaVersion)
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        switch (a[i].type) {
          case FieldRef::Type::U32:
            if (*static_cast<std::uint32_t *>(a[i].ptr) !=
                *static_cast<std::uint32_t *>(b[i].ptr))
                return false;
            break;
          case FieldRef::Type::U64:
            if (*static_cast<std::uint64_t *>(a[i].ptr) !=
                *static_cast<std::uint64_t *>(b[i].ptr))
                return false;
            break;
          case FieldRef::Type::Bool:
            if (*static_cast<bool *>(a[i].ptr) !=
                *static_cast<bool *>(b[i].ptr))
                return false;
            break;
          case FieldRef::Type::Str:
            if (*static_cast<std::string *>(a[i].ptr) !=
                *static_cast<std::string *>(b[i].ptr))
                return false;
            break;
        }
    }
    return true;
}

std::uint64_t
rateToBits(double rate)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(rate));
    std::memcpy(&bits, &rate, sizeof(bits));
    return bits;
}

double
rateFromBits(std::uint64_t bits)
{
    double rate = 0;
    std::memcpy(&rate, &bits, sizeof(rate));
    return rate;
}

std::string
serializeTraceMeta(const TraceMeta &meta)
{
    auto &m = const_cast<TraceMeta &>(meta);
    std::ostringstream out;
    out << kMagic << ' ' << meta.schemaVersion << '\n';
    for (const FieldRef &f : metaFields(m)) {
        out << f.key << '=';
        switch (f.type) {
          case FieldRef::Type::U32:
            out << *static_cast<std::uint32_t *>(f.ptr);
            break;
          case FieldRef::Type::U64:
            out << *static_cast<std::uint64_t *>(f.ptr);
            break;
          case FieldRef::Type::Bool:
            out << (*static_cast<bool *>(f.ptr) ? 1 : 0);
            break;
          case FieldRef::Type::Str:
            out << *static_cast<std::string *>(f.ptr);
            break;
        }
        out << '\n';
    }
    out << kSeparator << '\n';
    return out.str();
}

void
encodeTraceRecord(const Event &e, unsigned char out[kTraceRecordBytes])
{
    putU64(out + 0, e.det);
    putU64(out + 8, e.seq);
    putU64(out + 16, e.arg0);
    putU64(out + 24, e.arg1);
    putU32(out + 32, e.tid);
    out[36] = static_cast<unsigned char>(e.kind);
    out[37] = out[38] = out[39] = 0;
}

Event
decodeTraceRecord(const unsigned char in[kTraceRecordBytes])
{
    Event e;
    e.det = getU64(in + 0);
    e.seq = getU64(in + 8);
    e.arg0 = getU64(in + 16);
    e.arg1 = getU64(in + 24);
    e.tid = getU32(in + 32);
    e.kind = static_cast<EventKind>(in[36]);
    return e;
}

TraceFile
readTraceFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw TraceError(TraceFault::BadFile, "cannot open trace '" + path +
                                                  "': " +
                                                  std::strerror(errno));
    std::string raw;
    {
        char chunk[65536];
        std::size_t n;
        while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
            raw.append(chunk, n);
        const bool readError = std::ferror(f) != 0;
        std::fclose(f);
        if (readError)
            throw TraceError(TraceFault::BadFile,
                             "read error on trace '" + path + "'");
    }

    // --- header: magic + version line ---
    std::size_t pos = raw.find('\n');
    if (pos == std::string::npos)
        throw TraceError(TraceFault::BadMagic,
                         "'" + path + "' is not a CLEAN trace (no header)");
    const std::string firstLine = raw.substr(0, pos);
    const std::string magicPrefix = std::string(kMagic) + ' ';
    if (firstLine.compare(0, magicPrefix.size(), magicPrefix) != 0)
        throw TraceError(TraceFault::BadMagic,
                         "'" + path + "' is not a CLEAN trace (magic '" +
                             firstLine.substr(0, magicPrefix.size()) + "')");
    const std::uint64_t version =
        parseU64("version", firstLine.substr(magicPrefix.size()));
    if (version != kTraceSchemaVersion)
        throw TraceError(TraceFault::BadVersion,
                         "trace schema version " + std::to_string(version) +
                             " (this binary speaks version " +
                             std::to_string(kTraceSchemaVersion) + ")");

    // --- header: key=value lines until the separator ---
    TraceFile out;
    out.meta.schemaVersion = static_cast<std::uint32_t>(version);
    std::map<std::string, std::string> kv;
    std::size_t bodyStart = std::string::npos;
    std::size_t lineStart = pos + 1;
    while (lineStart < raw.size()) {
        const std::size_t lineEnd = raw.find('\n', lineStart);
        if (lineEnd == std::string::npos)
            break;
        const std::string line = raw.substr(lineStart, lineEnd - lineStart);
        lineStart = lineEnd + 1;
        if (line == kSeparator) {
            bodyStart = lineStart;
            break;
        }
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            throw TraceError(TraceFault::BadMeta,
                             "malformed header line '" + line + "'");
        kv[line.substr(0, eq)] = line.substr(eq + 1);
    }
    if (bodyStart == std::string::npos)
        throw TraceError(TraceFault::BadMeta,
                         "header separator missing (truncated header)");

    for (const FieldRef &f : metaFields(out.meta)) {
        const auto it = kv.find(f.key);
        if (it == kv.end())
            throw TraceError(TraceFault::BadMeta,
                             std::string("missing header key '") + f.key +
                                 "'");
        switch (f.type) {
          case FieldRef::Type::U32:
            *static_cast<std::uint32_t *>(f.ptr) =
                static_cast<std::uint32_t>(parseU64(f.key, it->second));
            break;
          case FieldRef::Type::U64:
            *static_cast<std::uint64_t *>(f.ptr) =
                parseU64(f.key, it->second);
            break;
          case FieldRef::Type::Bool:
            *static_cast<bool *>(f.ptr) = parseU64(f.key, it->second) != 0;
            break;
          case FieldRef::Type::Str:
            *static_cast<std::string *>(f.ptr) = it->second;
            break;
        }
    }

    // --- body: records, then (iff the recorder shut down cleanly) the
    // footer. Anything that does not parse as a clean footer is treated
    // as truncation: keep every full record, drop the partial tail. ---
    const unsigned char *body =
        reinterpret_cast<const unsigned char *>(raw.data()) + bodyStart;
    std::size_t bodyBytes = raw.size() - bodyStart;

    if (bodyBytes >= kFooterBytes) {
        const unsigned char *footer = body + bodyBytes - kFooterBytes;
        if (std::memcmp(footer, kFooterMagic, 8) == 0) {
            const std::uint64_t count = getU64(footer + 8);
            if (count * kTraceRecordBytes + kFooterBytes == bodyBytes) {
                out.complete = true;
                bodyBytes -= kFooterBytes;
            }
        }
    }

    const std::size_t records = bodyBytes / kTraceRecordBytes;
    out.events.reserve(records);
    for (std::size_t i = 0; i < records; ++i) {
        Event e = decodeTraceRecord(body + i * kTraceRecordBytes);
        if (static_cast<std::size_t>(e.kind) >= kEventKindCount) {
            // A corrupt record invalidates everything after it; treat
            // the clean prefix as the trace (same as truncation).
            out.events.resize(i);
            out.complete = false;
            return out;
        }
        out.events.push_back(e);
    }
    return out;
}

RecordSink::RecordSink(const std::string &path, const TraceMeta &meta)
    : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr)
        throw TraceError(TraceFault::BadFile,
                         "cannot create trace '" + path +
                             "': " + std::strerror(errno));
    const std::string header = serializeTraceMeta(meta);
    if (std::fwrite(header.data(), 1, header.size(), file_) !=
        header.size()) {
        std::fclose(file_);
        file_ = nullptr;
        throw TraceError(TraceFault::BadFile,
                         "cannot write trace header to '" + path + "'");
    }
    std::fflush(file_);
    buffer_.reserve(kFlushEvery * kTraceRecordBytes);
}

RecordSink::~RecordSink()
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (file_ != nullptr) {
        flushLocked();
        std::fclose(file_);
        file_ = nullptr;
    }
}

void
RecordSink::onEvent(const Event &e)
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (file_ == nullptr || finalized_)
        return;
    unsigned char record[kTraceRecordBytes];
    encodeTraceRecord(e, record);
    buffer_.insert(buffer_.end(), record, record + kTraceRecordBytes);
    ++count_;
    if (count_ % kFlushEvery == 0)
        flushLocked();
}

void
RecordSink::finalize()
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (file_ == nullptr || finalized_)
        return;
    flushLocked();
    unsigned char footer[16];
    std::memcpy(footer, "CLEANEND", 8);
    putU64(footer + 8, count_);
    std::fwrite(footer, 1, sizeof(footer), file_);
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
    finalized_ = true;
}

std::uint64_t
RecordSink::recorded() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return count_;
}

void
RecordSink::flushLocked()
{
    if (!buffer_.empty()) {
        std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
        buffer_.clear();
    }
    std::fflush(file_);
}

} // namespace clean::obs
