#include "core/runtime.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/sync_objects.h"
#include "det/replay.h"
#include "obs/governor.h"
#include "obs/trace_export.h"
#include "obs/trace_schema.h"
#include "recover/recovery.h"
#include "support/backoff.h"
#include "support/json.h"
#include "support/trace_error.h"

namespace clean
{

const char *
onRacePolicyName(OnRacePolicy policy)
{
    switch (policy) {
      case OnRacePolicy::Throw: return "throw";
      case OnRacePolicy::Report: return "report";
      case OnRacePolicy::Count: return "count";
      case OnRacePolicy::Recover: return "recover";
    }
    return "?";
}

namespace
{

const char *
phaseName(ThreadRecord::Phase phase)
{
    switch (phase) {
      case ThreadRecord::Phase::Unused: return "unused";
      case ThreadRecord::Phase::Running: return "running";
      case ThreadRecord::Phase::Parked: return "parked";
      case ThreadRecord::Phase::Blocked: return "blocked";
      case ThreadRecord::Phase::Finished: return "finished";
    }
    return "?";
}

} // namespace

// ---------------------------------------------------------------------
// ThreadContext
// ---------------------------------------------------------------------

ThreadContext::ThreadContext(CleanRuntime &rt, ThreadId tid,
                             std::uint32_t record)
    : rt_(rt), record_(record)
{
    state_ = rt.recordAt(record).state.get();
    CLEAN_ASSERT(state_ && state_->tid == tid);
    detChunk_ = std::max<std::uint32_t>(1, rt.config().detChunk);
    plan_ = rt.injectionPlan();
    log_ = rt.recordAt(record).sfrLog.get();
    slowAccess_ = plan_ != nullptr || log_ != nullptr;
    if (obs::FlightRecorder *recorder = rt.recorder()) {
        obsLane_ = recorder->lane(tid);
        obsSampleCountdown_ = recorder->config().latencySampleEvery;
        if (obsLane_ != nullptr) {
            obsSfrStartDet_ = obsDetNow();
            obsEvent(obs::EventKind::ThreadStart, record_);
            obsEvent(obs::EventKind::SfrBegin, state_->sfrOrdinal);
        }
    }
    sampling_ = rt.samplingEnabled();
    if (CLEAN_UNLIKELY(sampling_)) {
        sampleMeasure_ = rt.config().replayDriver == nullptr &&
                         rt.config().sampleForceLevel < 0;
        state_->sample.setCalibSfr(rt.isCalibSfr(state_->sfrOrdinal));
        sampleLastReads_ = state_->stats.sharedReads;
        sampleLastSheds_ = state_->stats.shedReads;
        if (sampleMeasure_)
            sampleSfrStart_ = std::chrono::steady_clock::now();
    }
}

std::uint64_t
ThreadContext::obsDetNow() const
{
    return rt_.kendo().count(state_->tid);
}

void
ThreadContext::obsEvent(obs::EventKind kind, std::uint64_t arg0,
                        std::uint64_t arg1)
{
    obsLane_->record(kind, obsDetNow(), arg0, arg1);
}

void
ThreadContext::obsSfrBoundary()
{
    const std::uint64_t now = obsDetNow();
    const std::uint64_t length = now - obsSfrStartDet_;
    obsLane_->sfrLength.add(length);
    obsLane_->record(obs::EventKind::SfrEnd, now, state_->sfrOrdinal - 1,
                     length);
    obsLane_->record(obs::EventKind::SfrBegin, now, state_->sfrOrdinal);
    obsSfrStartDet_ = now;
}

void
ThreadContext::obsSyncAcquire()
{
    if (CLEAN_LIKELY(obsLane_ == nullptr))
        return;
    const std::uint64_t now = obsDetNow();
    obsLane_->record(obs::EventKind::SyncAcquire, now, now,
                     state_->sfrOrdinal);
}

void
ThreadContext::obsSyncRelease()
{
    if (CLEAN_LIKELY(obsLane_ == nullptr))
        return;
    const std::uint64_t now = obsDetNow();
    obsLane_->record(obs::EventKind::SyncRelease, now, now,
                     state_->sfrOrdinal);
}

void
ThreadContext::onReadObs(Addr addr, std::size_t size)
{
    // Same check semantics as the inline body in runtime.h, plus the
    // sampled check-latency histogram. Which accesses get timed is a
    // function of the deterministic access stream; the measured
    // nanoseconds are physical (metrics only, never in the trace).
    const bool sample =
        obsSampleCountdown_ > 0 && --obsSampleCountdown_ == 0;
    if (sample) {
        obsSampleCountdown_ =
            rt_.recorder()->config().latencySampleEvery;
        const auto t0 = std::chrono::steady_clock::now();
        try {
            rt_.checkRead(*state_, addr, size);
        } catch (const RaceException &race) {
            if (rt_.recordRace(race))
                throw;
        }
        const auto t1 = std::chrono::steady_clock::now();
        obsLane_->checkLatencyNs.add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
    } else {
        try {
            rt_.checkRead(*state_, addr, size);
        } catch (const RaceException &race) {
            if (rt_.recordRace(race))
                throw;
        }
    }
    if (++pendingDetEvents_ >= detChunk_)
        flushDetEvents();
}

void
ThreadContext::onWriteObs(Addr addr, std::size_t size)
{
    const bool sample =
        obsSampleCountdown_ > 0 && --obsSampleCountdown_ == 0;
    if (sample) {
        obsSampleCountdown_ =
            rt_.recorder()->config().latencySampleEvery;
        const auto t0 = std::chrono::steady_clock::now();
        try {
            rt_.checkWrite(*state_, addr, size);
        } catch (const RaceException &race) {
            if (rt_.recordRace(race))
                throw;
        }
        const auto t1 = std::chrono::steady_clock::now();
        obsLane_->checkLatencyNs.add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
    } else {
        try {
            rt_.checkWrite(*state_, addr, size);
        } catch (const RaceException &race) {
            if (rt_.recordRace(race))
                throw;
        }
    }
    if (++pendingDetEvents_ >= detChunk_)
        flushDetEvents();
}

void
ThreadContext::flushDetEvents()
{
    if (pendingDetEvents_ > 0) {
        rt_.kendo().increment(state_->tid, pendingDetEvents_);
        pendingDetEvents_ = 0;
    }
}

det::DetCount
ThreadContext::detCount() const
{
    return rt_.kendo().count(state_->tid);
}

void
ThreadContext::onReadSlow(Addr addr, std::size_t size)
{
    if (plan_ != nullptr && injectAtAccess()) {
        // Check skipped; the access still counts as a deterministic
        // event so the Kendo schedule is unchanged by the fault.
        if (++pendingDetEvents_ >= detChunk_)
            flushDetEvents();
        return;
    }
    try {
        rt_.checkRead(*state_, addr, size);
    } catch (const RaceException &race) {
        if (rt_.recordRace(race))
            throw;
    }
    if (++pendingDetEvents_ >= detChunk_)
        flushDetEvents();
}

void
ThreadContext::onWriteSlow(Addr addr, std::size_t size)
{
    // Bulk writes announce the range but not the data, so the undo log
    // cannot snapshot what the caller is about to store: the SFR becomes
    // ineligible for rollback.
    if (log_ != nullptr && rt_.checkable(addr))
        log_->poison();
    if (plan_ != nullptr && injectAtAccess()) {
        if (++pendingDetEvents_ >= detChunk_)
            flushDetEvents();
        return;
    }
    try {
        rt_.checkWrite(*state_, addr, size);
    } catch (const RaceException &race) {
        if (rt_.recordRace(race))
            throw;
    }
    if (++pendingDetEvents_ >= detChunk_)
        flushDetEvents();
}

void
ThreadContext::logRead(Addr addr, const void *bytes, std::size_t size)
{
    // Unrepresentable reads are simply not logged: a missing read entry
    // only weakens replay validation, it never makes rollback unsound.
    if (log_ == nullptr || !rt_.checkable(addr) ||
        size > recover::SfrLog::kMaxAccessBytes)
        return;
    recover::SfrLog::Entry *entry = log_->append();
    if (entry == nullptr)
        return;
    entry->addr = addr;
    entry->size = static_cast<std::uint8_t>(size);
    entry->isWrite = false;
    std::memcpy(entry->newBytes, bytes, size);
}

void
ThreadContext::readSlow(Addr addr, void *bytes, std::size_t size)
{
    rt_.throwIfAborted();
    if (plan_ != nullptr && injectAtAccess()) {
        std::memcpy(bytes, reinterpret_cast<const void *>(addr), size);
        if (++pendingDetEvents_ >= detChunk_)
            flushDetEvents();
        return;
    }
    std::memcpy(bytes, reinterpret_cast<const void *>(addr), size);
    asm volatile("" ::: "memory");
    try {
        rt_.checkRead(*state_, addr, size);
        logRead(addr, bytes, size);
    } catch (const RaceException &race) {
        if (recoverAccess(race, addr, bytes, size, /*isWrite=*/false)) {
            // recoverAccess re-loaded the now-ordered value into bytes
            // and appended the read entry itself.
        } else {
            if (rt_.recordRace(race))
                throw;
            // Degraded: the racy value stands (Report semantics); log it
            // so a later recovery in this SFR replays what we saw.
            logRead(addr, bytes, size);
        }
    }
    if (++pendingDetEvents_ >= detChunk_)
        flushDetEvents();
}

void
ThreadContext::writeSlow(Addr addr, const void *bytes, std::size_t size)
{
    rt_.throwIfAborted();
    if (plan_ != nullptr && injectAtAccess()) {
        // The check (and its epoch publish) is dropped but the store
        // happens: the log can no longer retract this SFR faithfully.
        if (log_ != nullptr && rt_.checkable(addr))
            log_->poison();
        std::memcpy(reinterpret_cast<void *>(addr), bytes, size);
        if (++pendingDetEvents_ >= detChunk_)
            flushDetEvents();
        return;
    }
    // Log the write *before* its check: publishBytes CASes per byte and
    // can throw mid-access, so the rollback must already cover the
    // triggering access's partial epoch publish.
    recover::SfrLog::Entry *entry = nullptr;
    if (log_ != nullptr && rt_.checkable(addr)) {
        if (size <= recover::SfrLog::kMaxAccessBytes)
            entry = log_->append();
        else
            log_->poison();
        if (entry != nullptr) {
            entry->addr = addr;
            entry->size = static_cast<std::uint8_t>(size);
            entry->isWrite = true;
            std::memcpy(entry->oldBytes,
                        reinterpret_cast<const void *>(addr), size);
            std::memcpy(entry->newBytes, bytes, size);
            for (std::size_t i = 0; i < size; ++i) {
                const EpochValue *slot = rt_.shadowSlotFor(addr + i);
                entry->oldEpochs[i] =
                    slot ? __atomic_load_n(slot, __ATOMIC_RELAXED) : 0;
            }
        }
    }
    bool stored = false;
    try {
        rt_.checkWrite(*state_, addr, size);
    } catch (const RaceException &race) {
        if (entry != nullptr &&
            recoverAccess(race, addr, nullptr, size, /*isWrite=*/true)) {
            // The replay applied the pending write as the log's last
            // entry; storing again would be redundant.
            stored = true;
        } else if (rt_.recordRace(race)) {
            throw;
        }
    }
    if (!stored) {
        asm volatile("" ::: "memory");
        std::memcpy(reinterpret_cast<void *>(addr), bytes, size);
    }
    if (++pendingDetEvents_ >= detChunk_)
        flushDetEvents();
}

bool
ThreadContext::injectAtAccess()
{
    const std::uint64_t coord = injectCoord_++;
    if (plan_->killThread(state_->tid, coord)) {
        if (CLEAN_UNLIKELY(obsLane_ != nullptr))
            obsEvent(obs::EventKind::InjectionFired,
                     static_cast<std::uint64_t>(
                         inject::FaultKind::KillThread),
                     coord);
        throw inject::ThreadKilled(state_->tid, coord);
    }
    const bool skip = plan_->skipCheck(state_->tid, coord);
    if (CLEAN_UNLIKELY(skip && obsLane_ != nullptr))
        obsEvent(obs::EventKind::InjectionFired,
                 static_cast<std::uint64_t>(inject::FaultKind::SkipCheck),
                 coord);
    return skip;
}

void
ThreadContext::injectAtSync()
{
    const std::uint64_t coord = injectCoord_++;
    if (plan_->killThread(state_->tid, coord)) {
        if (CLEAN_UNLIKELY(obsLane_ != nullptr))
            obsEvent(obs::EventKind::InjectionFired,
                     static_cast<std::uint64_t>(
                         inject::FaultKind::KillThread),
                     coord);
        throw inject::ThreadKilled(state_->tid, coord);
    }
    if (const std::uint32_t us = plan_->delayMicros(state_->tid, coord)) {
        if (CLEAN_UNLIKELY(obsLane_ != nullptr))
            obsEvent(obs::EventKind::InjectionFired,
                     static_cast<std::uint64_t>(inject::FaultKind::Delay),
                     coord);
        std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
    if (plan_->forceRollover(state_->tid, coord)) {
        if (CLEAN_UNLIKELY(obsLane_ != nullptr))
            obsEvent(obs::EventKind::InjectionFired,
                     static_cast<std::uint64_t>(
                         inject::FaultKind::ForceRollover),
                     coord);
        rt_.rollover().request();
        pollRollover();
    }
}

bool
ThreadContext::injectSkipAcquire()
{
    if (CLEAN_LIKELY(plan_ == nullptr))
        return false;
    const std::uint64_t coord = injectCoord_++;
    const bool skip = plan_->skipAcquire(state_->tid, coord);
    if (CLEAN_UNLIKELY(skip && obsLane_ != nullptr))
        obsEvent(obs::EventKind::InjectionFired,
                 static_cast<std::uint64_t>(
                     inject::FaultKind::SkipAcquire),
                 coord);
    return skip;
}

void
ThreadContext::detTick(std::uint64_t n)
{
    pendingDetEvents_ += n;
    if (pendingDetEvents_ >= detChunk_)
        flushDetEvents();
}

void
ThreadContext::drainBatch()
{
    if (CLEAN_LIKELY(state_->batch.empty()))
        return;
    // --async-check: hand the buffer to the dedicated checker thread
    // and block until it retires every run. The service applies the
    // same record-and-continue policy loop as below and rethrows a
    // Throw-policy race here, so both paths unwind identically.
    if (CLEAN_UNLIKELY(rt_.asyncChecker() != nullptr)) {
        rt_.asyncChecker()->drain(*state_);
        return;
    }
    for (;;) {
        try {
            rt_.drainBatch(*state_);
            return;
        } catch (const RaceException &race) {
            if (rt_.recordRace(race))
                throw;
            // Non-aborting policy (Report/Count): the checker parked
            // the cursor past the racy access; keep draining so every
            // deferred check of this SFR still runs.
        }
    }
}

void
ThreadContext::pollRollover()
{
    if (!rt_.rollover().pending())
        return;
    // The reset wipes the shadow — the evidence every buffered read
    // check needs. Retire them before parking (a parked thread can
    // otherwise only have an empty buffer: every parking site is
    // inside a sync-op path that drained on entry).
    drainBatch();
    rt_.setPhase(record_, ThreadRecord::Phase::Parked);
    try {
        rt_.rollover().parkAndMaybeReset(
            state_->tid, [this] { return rt_.aborted(); });
    } catch (const RolloverController::AbortedWait &) {
        rt_.setPhase(record_, ThreadRecord::Phase::Running);
        throw ExecutionAborted();
    }
    rt_.setPhase(record_, ThreadRecord::Phase::Running);
}

void
ThreadContext::turnWait(const char *where)
{
    auto &kendo = rt_.kendo();
    if (!kendo.enabled())
        return;
    det::ReplayDriver *driver = rt_.replayDriver();
    SpinWait spin(rt_.config().watchdogMs);
    for (;;) {
        const bool kendoReady = kendo.tryTurn(state_->tid);
        if (CLEAN_LIKELY(driver == nullptr)) {
            if (kendoReady)
                break;
        } else if (driver->tryGrant(state_->tid, kendo.count(state_->tid),
                                    kendoReady) ==
                   det::GrantStatus::Granted) {
            break;
        }
        rt_.throwIfAborted();
        pollRollover();
        if (CLEAN_UNLIKELY(spin.expired())) {
            // A complete trace deadlocks exactly like the recorded run;
            // an incomplete one starved because the rest of the
            // schedule was never written — report the truncation.
            if (driver != nullptr && !driver->traceComplete())
                driver->raiseTruncatedWait(state_->tid,
                                           kendo.count(state_->tid));
            rt_.raiseDeadlock(where, state_->tid, spin.elapsedMs());
        }
        spin.pause();
    }
    if (CLEAN_UNLIKELY(obsLane_ != nullptr))
        obsEvent(obs::EventKind::TurnGrant, state_->sfrOrdinal);
}

void
ThreadContext::acquireTurn()
{
    rt_.throwIfAborted();
    // This sync op ends the SFR: deferred read checks must raise their
    // races before the boundary completes (§14) — before the release
    // ticks our clock / the acquire adds order, and before sfrOrdinal
    // moves on. Draining here covers every sync path (locks, condvars,
    // barriers, spawn, join, thread end), mirroring the ownership
    // cache's flush-on-refreshOwnEpoch funnel.
    drainBatch();
    // Synchronization is turn-ordered by the counter, so any batched
    // events must be visible before the turn predicate is evaluated.
    flushDetEvents();
    pollRollover();
    if (CLEAN_UNLIKELY(plan_ != nullptr))
        injectAtSync();
    // Sampling tier (§15): the ended SFR's work interval is measured
    // *before* the turn wait, so governor estimates never include wait
    // time (the batch drain above is check work and is included).
    if (CLEAN_UNLIKELY(sampling_))
        sampleReport();
    turnWait("acquireTurn");
    // Every sync op ends the current SFR: its effects are (about to be)
    // released, so the undo records covering them are dead and a new
    // recovery unit begins.
    state_->sfrOrdinal++;
    if (CLEAN_UNLIKELY(log_ != nullptr))
        log_->beginSfr();
    if (CLEAN_UNLIKELY(obsLane_ != nullptr))
        obsSfrBoundary();
    // Sampling boundary bookkeeping runs after the SfrEnd/SfrBegin
    // pair so the Sample* lane records land at deterministic positions
    // the replay validator can hold them to.
    if (CLEAN_UNLIKELY(sampling_))
        sampleAdopt();
}

void
ThreadContext::sampleReport()
{
    if (!sampleMeasure_)
        return;
    const auto now = std::chrono::steady_clock::now();
    const std::uint64_t ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now - sampleSfrStart_)
            .count());
    const std::uint64_t reads =
        state_->stats.sharedReads - sampleLastReads_;
    rt_.samplingGovernor()->report(reads, ns, state_->sample.calibSfr());
}

void
ThreadContext::sampleAdopt()
{
    SampleGate &gate = state_->sample;
    // (1) Shed telemetry of the interval that just ended. The delta
    // (and therefore the SampleShed record) is a function of the
    // deterministic decisions alone, so replay validates it
    // byte-for-byte — a budgeted trace proves which checks were shed.
    const std::uint64_t sheds = state_->stats.shedReads - sampleLastSheds_;
    sampleLastSheds_ = state_->stats.shedReads;
    sampleLastReads_ = state_->stats.sharedReads;
    gate.telemetry().shedPerBoundary.add(sheds);
    const std::uint64_t window =
        state_->stats.sharedReads >> gate.params().windowLog2;
    if (CLEAN_UNLIKELY(obsLane_ != nullptr) && sheds > 0)
        obsEvent(obs::EventKind::SampleShed, sheds, window);
    // (2) Regions the gate struck out since the last boundary become
    // lane events and governor-ledger episodes. Both consume only
    // deterministic inputs, so the ledger matches on replay too.
    if (CLEAN_UNLIKELY(gate.hasPendingQuarantines())) {
        for (const SampleGate::PendingQuarantine &q :
             gate.takePendingQuarantines()) {
            const Addr offset = static_cast<Addr>(q.region)
                                << gate.params().regionLog2;
            if (obsLane_ != nullptr)
                obsEvent(obs::EventKind::SampleQuarantine, offset,
                         q.strikes);
            rt_.samplingGovernor()->noteQuarantine(offset);
        }
    }
    // (3) Level adoption — the single point where physical measurement
    // feeds back into decisions. Recording/normal runs adopt the
    // governor's published level (emitting SampleLevel); replays peek
    // the recorded lane and re-adopt exactly the recorded levels at
    // exactly the recorded boundaries. Forced-level runs never adapt.
    if (sampleMeasure_) {
        const std::uint32_t level = rt_.samplingGovernor()->level();
        if (level != gate.level()) {
            gate.adoptLevel(level);
            if (obsLane_ != nullptr)
                obsEvent(obs::EventKind::SampleLevel, level, window);
        }
    } else if (det::ReplayDriver *driver = rt_.replayDriver()) {
        const std::int64_t level =
            driver->peekSampleLevel(state_->tid, obsDetNow());
        if (level >= 0) {
            gate.adoptLevel(static_cast<std::uint32_t>(level));
            if (obsLane_ != nullptr)
                obsEvent(obs::EventKind::SampleLevel,
                         static_cast<std::uint64_t>(level), window);
        }
    }
    // (4) Arm the new SFR: calibration flag, then the work timer.
    gate.setCalibSfr(rt_.isCalibSfr(state_->sfrOrdinal));
    if (sampleMeasure_)
        sampleSfrStart_ = std::chrono::steady_clock::now();
}

// ---------------------------------------------------------------------
// SFR rollback & deterministic re-execution (OnRacePolicy::Recover)
// ---------------------------------------------------------------------

void
ThreadContext::absorbRaceEpoch(const RaceException &race)
{
    // Recovery *orders* the race: the victim SFR re-executes after the
    // conflicting write, so that write's epoch must enter our vector
    // clock or the re-executed check would fire on the same epoch again.
    const ThreadId writer = race.previousWriter();
    if (writer == state_->tid)
        return;
    if (race.previousClock() > state_->vc.clockOf(writer))
        state_->vc.setClock(writer, race.previousClock());
}

void
ThreadContext::rollbackWrites(std::size_t count)
{
    if (log_ == nullptr)
        return;
    // Undo logs only arm under Recover, which forces batching off (the
    // runtime constructor gate), so no deferred check can straddle a
    // rollback — rolling back epochs under buffered-but-unchecked reads
    // would destroy their race evidence. Drain defensively and pin the
    // invariant in debug builds.
    drainBatch();
    CLEAN_ASSERT(state_->batch.empty(),
                 "batched checks pending across a rollback (tid %u)",
                 state_->tid);
    std::uint64_t restored = 0, skipped = 0;
    // Reverse order so multiple writes to one byte unwind to the
    // pre-SFR value and epoch.
    for (std::size_t i = count; i-- > 0;) {
        const recover::SfrLog::Entry &e = log_->at(i);
        if (!e.isWrite)
            continue;
        for (std::size_t j = 0; j < e.size; ++j) {
            EpochValue *slot = rt_.shadowSlotFor(e.addr + j);
            if (slot == nullptr)
                continue;
            EpochValue cur = __atomic_load_n(slot, __ATOMIC_RELAXED);
            // Retract only bytes we still own (our epoch, or 0 after a
            // rollover reset). A byte a later writer republished is that
            // writer's to keep — retracting it would corrupt *their*
            // SFR. Note the displaced epoch can equal ownEpoch across
            // consecutive SFRs (lock acquires tick the lock's clock, not
            // ours), which this guard handles: the CAS is a no-op swap.
            if (cur != state_->ownEpoch && cur != 0) {
                skipped++;
                continue;
            }
            // Data before epoch: a concurrent reader that observes the
            // retracted value still observes our unordered epoch and
            // therefore races (and recovers) itself.
            std::memcpy(reinterpret_cast<void *>(e.addr + j),
                        &e.oldBytes[j], 1);
            asm volatile("" ::: "memory");
            __atomic_compare_exchange_n(slot, &cur, e.oldEpochs[j], false,
                                        __ATOMIC_RELAXED, __ATOMIC_RELAXED);
        }
        restored++;
    }
    // The retractions above undo epochs the ownership cache may have
    // recorded as "still ours" — ownEpoch itself is unchanged, so
    // refreshOwnEpoch never runs here and the flush must be explicit.
    // Without it, a stale hit during the replay (or in the resumed SFR)
    // would skip the very check whose race triggered this rollback.
    state_->ownCache.flush(state_->stats);
    if (auto *mgr = rt_.recoveryManager())
        mgr->noteRollback(restored, skipped);
    if (CLEAN_UNLIKELY(obsLane_ != nullptr))
        obsEvent(obs::EventKind::RecoveryRollback, restored, skipped);
}

bool
ThreadContext::replaySfr(bool forced)
{
    for (std::size_t i = 0; i < log_->size(); ++i) {
        const recover::SfrLog::Entry &e = log_->at(i);
        if (e.isWrite) {
            try {
                if (forced) {
                    // Unchecked re-publication: last-resort forward
                    // progress, counted as a forced (degraded) replay.
                    for (std::size_t j = 0; j < e.size; ++j) {
                        if (EpochValue *slot = rt_.shadowSlotFor(e.addr + j))
                            __atomic_store_n(slot, state_->ownEpoch,
                                             __ATOMIC_RELAXED);
                    }
                } else {
                    rt_.checkWrite(*state_, e.addr, e.size);
                }
            } catch (...) {
                // The failed check may have partially published; entry i
                // is covered by its own oldEpochs, so unwind through it.
                rollbackWrites(i + 1);
                throw;
            }
            std::memcpy(reinterpret_cast<void *>(e.addr), e.newBytes,
                        e.size);
        } else {
            std::uint8_t cur[recover::SfrLog::kMaxAccessBytes];
            std::memcpy(cur, reinterpret_cast<const void *>(e.addr),
                        e.size);
            asm volatile("" ::: "memory");
            if (forced)
                continue;
            try {
                rt_.checkRead(*state_, e.addr, e.size);
            } catch (...) {
                rollbackWrites(i);
                throw;
            }
            if (std::memcmp(cur, e.newBytes, e.size) != 0) {
                // A concurrent (ordered) writer changed an input of the
                // SFR since the original execution: re-applying the
                // logged writes would not be a faithful re-execution.
                rollbackWrites(i);
                return false;
            }
        }
    }
    return true;
}

namespace
{

/**
 * Satellite bugfix (ISSUE 4): replay re-executes SFR accesses through
 * the regular checker, which bumps CheckerStats a second time for
 * accesses the program only performed once. This scope snapshots the
 * base counters and, on exit, moves everything the episode added into
 * the .replayed* counters — Fig. 7/10 numbers keep counting each
 * program access exactly once, and the replay cost stays visible.
 * Wide-access shape counters (wideAccesses/wideSameEpoch/
 * wideCasUpdates) are restored without a replayed twin: replays repeat
 * the original shapes, so keeping their deltas would say nothing new.
 */
struct ReplayedStatsScope
{
    explicit ReplayedStatsScope(CheckerStats &stats)
        : stats(stats), base(stats)
    {
    }

    ~ReplayedStatsScope()
    {
        stats.replayedReads += stats.sharedReads - base.sharedReads;
        stats.replayedWrites += stats.sharedWrites - base.sharedWrites;
        stats.replayedBytes += stats.accessedBytes - base.accessedBytes;
        stats.replayedEpochUpdates +=
            stats.epochUpdates - base.epochUpdates;
        stats.sharedReads = base.sharedReads;
        stats.sharedWrites = base.sharedWrites;
        stats.accessedBytes = base.accessedBytes;
        stats.epochUpdates = base.epochUpdates;
        stats.wideAccesses = base.wideAccesses;
        stats.wideSameEpoch = base.wideSameEpoch;
        stats.wideCasUpdates = base.wideCasUpdates;
    }

    CheckerStats &stats;
    CheckerStats base;
};

} // namespace

bool
ThreadContext::recoverAccess(const RaceException &race, Addr addr,
                             void *bytes, std::size_t size, bool isWrite)
{
    recover::RecoveryManager *mgr = rt_.recoveryManager();
    RecoveryToken *token = rt_.recoveryToken();
    if (mgr == nullptr || token == nullptr || log_ == nullptr ||
        log_->poisoned())
        return false;
    if (!mgr->admitEpisode(rt_.heapOffset(race.addr()))) {
        if (CLEAN_UNLIKELY(obsLane_ != nullptr))
            obsEvent(obs::EventKind::Quarantine,
                     rt_.heapOffset(race.addr()));
        return false; // quarantined: caller degrades to recordRace
    }
    rt_.noteRace(race);
    absorbRaceEpoch(race);
    if (CLEAN_UNLIKELY(obsLane_ != nullptr))
        obsEvent(obs::EventKind::RecoveryBegin,
                 rt_.heapOffset(race.addr()), state_->sfrOrdinal);

    // Everything from here on re-executes already-counted accesses;
    // route the checker-stat deltas into the .replayed* counters.
    ReplayedStatsScope replayedStats(state_->stats);

    const std::uint32_t attempts =
        std::max<std::uint32_t>(1, mgr->config().attemptsPerEpisode);
    for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
        const bool forced = attempt + 1 == attempts;
        mgr->noteAttempt();
        if (CLEAN_UNLIKELY(obsLane_ != nullptr))
            obsEvent(obs::EventKind::RecoveryReplay, attempt,
                     forced ? 1 : 0);
        rollbackWrites(log_->size());
        // Serialize the re-execution: token grant order is fixed by the
        // Kendo clock, so competing recoveries replay in the same order
        // on every run. Publish batched events first — the count *is*
        // the priority.
        flushDetEvents();
        token->acquire(state_->tid, rt_.kendo().count(state_->tid));
        bool ok = false;
        try {
            ok = replaySfr(forced);
            if (ok && !isWrite) {
                // Complete the pending read under the token: re-load the
                // now-ordered value and re-check it.
                std::memcpy(bytes, reinterpret_cast<const void *>(addr),
                            size);
                asm volatile("" ::: "memory");
                if (!forced)
                    rt_.checkRead(*state_, addr, size);
            }
        } catch (const RaceException &nested) {
            // replaySfr already rolled back its applied prefix (a failed
            // pending-read check left only fully-replayed writes, undone
            // at the top of the next attempt... see below).
            token->release();
            mgr->noteReplayRace();
            absorbRaceEpoch(nested);
            // Deterministic backoff: one deterministic event, plus a
            // short physical pause to let the conflicting SFR drain.
            detTick(1);
            std::this_thread::yield();
            continue;
        } catch (...) {
            token->release();
            throw;
        }
        token->release();
        if (ok) {
            if (!isWrite)
                logRead(addr, bytes, size);
            mgr->noteRecovered(forced);
            if (CLEAN_UNLIKELY(obsLane_ != nullptr))
                obsEvent(obs::EventKind::RecoveryEnd, 1, forced ? 1 : 0);
            return true;
        }
        mgr->noteReplayMismatch();
        detTick(1);
        std::this_thread::yield();
    }
    return false; // unreachable: the forced attempt cannot fail
}

void
ThreadContext::retireAfterKill()
{
    // Supervised crash (OnRacePolicy::Recover): the dying thread's open
    // SFR is retracted — its writes were never released by a sync op, so
    // after rollback the crash is invisible to the data. Then retire the
    // Kendo slot cleanly instead of wedging the turn order.
    //
    // Recover forces batching off, so no deferred check can be pending
    // here; drain defensively so a future policy that mixes kill paths
    // with batching cannot silently discard evidence.
    drainBatch();
    if (log_ != nullptr) {
        rollbackWrites(log_->size());
        log_->beginSfr();
    }
    if (auto *mgr = rt_.recoveryManager())
        mgr->noteRecoveredKill();
    rt_.retireFromBarriers(*this);
    // Final turn without injection (the plan already killed this thread)
    // so the finish handshake below runs at a deterministic count. An
    // abort or watchdog during the wait just ends the retirement early.
    try {
        flushDetEvents();
        pollRollover();
        turnWait("retireAfterKill");
        state_->sfrOrdinal++;
    } catch (const ExecutionAborted &) {
    } catch (const DeadlockError &) {
    } catch (const TraceError &) {
        // The replay fault is latched in the driver; letting it escape
        // here would terminate (we are inside threadMain's handler).
    }
}

// ---------------------------------------------------------------------
// CleanRuntime
// ---------------------------------------------------------------------

CleanRuntime::CleanRuntime(const RuntimeConfig &config)
    : config_(config), detection_(config.detection), rollover_(*this)
{
    CLEAN_ASSERT(config_.epoch.valid(), "invalid epoch layout");
    CLEAN_ASSERT(config_.maxThreads <= config_.epoch.maxThreads(),
                 "maxThreads exceeds the epoch tid width");

    heap_ = std::make_unique<SharedHeap>(config_.heap);
    checkBase_ = heap_->sharedBase();
    checkEnd_ = checkBase_ + heap_->sharedSpan();

    // Overhead-budget sampling tier (§15). 100 means "spend the whole
    // check cost" — no budget — and normalizes to off, so budget=100
    // is bit-identical to an unbudgeted run by construction. Unlike
    // batching, sampling stays on under Recover and fault injection:
    // a shed read performs no check at all, so neither rollback
    // precision nor injected skip/kill coordinates are disturbed.
    if (config_.overheadBudget >= 100)
        config_.overheadBudget = 0;
    sampling_ = config_.overheadBudget > 0 && detection_;
    if (sampling_) {
        sampleParams_ = config_.sample;
        sampleParams_.base = checkBase_;
        if (config_.sampleForceLevel >= 0) {
            // Pinned level (tests, floor benches): no governor
            // adoption, no calibration intervals — the gate becomes a
            // pure function of the deterministic inputs.
            sampleParams_.initialLevel = static_cast<std::uint32_t>(
                std::min<std::int32_t>(config_.sampleForceLevel,
                                       SampleGate::kMaxLevel));
        } else {
            if (config_.sampleCalibLog2 > 0)
                sampleCalibMask_ =
                    (std::uint64_t{1} << config_.sampleCalibLog2) - 1;
            // Fail-safe cold start: a governed run begins at the level
            // whose admission fraction equals the budget — the
            // worst-case prior that every admitted check is pure
            // overhead — and the governor's measurements earn
            // admission back down. Starting at 0 instead would spend
            // the whole cold-start transient over budget on workloads
            // whose hot phase comes early, and a workload too short to
            // prime the calibration floor would never be throttled at
            // all. Replay recomputes the same level from the same
            // recorded config, so the pre-first-adoption gate state
            // matches the recording bit for bit.
            sampleParams_.initialLevel =
                std::max(sampleParams_.initialLevel,
                         SampleGate::levelForBudget(config_.overheadBudget));
        }
        obs::GovernorConfig governorConfig;
        governorConfig.budgetPct = config_.overheadBudget;
        governorConfig.initialLevel = sampleParams_.initialLevel;
        governorConfig.active = config_.replayDriver == nullptr &&
                                config_.sampleForceLevel < 0;
        governor_ = std::make_unique<obs::SamplingGovernor>(governorConfig);
    }

    CheckerConfig checkerConfig;
    checkerConfig.epoch = config_.epoch;
    checkerConfig.vectorized = config_.vectorized;
    checkerConfig.fastPath = config_.fastPath;
    checkerConfig.ownCache = config_.ownCache;
    // Batched read checking is off under Recover — rollback re-executes
    // the SFR from the faulting access, which requires the race to be
    // raised *at* that access, not at the boundary — and whenever fault
    // injection is armed, whose skip/kill decisions are specified
    // against inline per-access checks (a killed thread must not take
    // unretired deferred checks with it).
    checkerConfig.batch = config_.batch &&
                          config_.onRace != OnRacePolicy::Recover &&
                          !config_.inject.any();
    checkerConfig.batchBytes = config_.batchBytes;
    checkerConfig.sampling = sampling_;
    checkerConfig.sample = sampleParams_;
    checkerConfig.atomicity = config_.atomicity;
    checkerConfig.granuleLog2 = config_.granuleLog2;
    if (config_.shadow == ShadowKind::Linear) {
        linearShadow_ = std::make_unique<LinearShadow>(heap_->sharedBase(),
                                                       heap_->sharedSpan());
        linearChecker_ = std::make_unique<RaceChecker<LinearShadow>>(
            checkerConfig, *linearShadow_);
    } else {
        sparseShadow_ = std::make_unique<SparseShadow>();
        sparseChecker_ = std::make_unique<RaceChecker<SparseShadow>>(
            checkerConfig, *sparseShadow_);
    }

    // Async drains require batching to have survived its own gates
    // (vectorized byte-granule CAS checking, no Recover, no injection):
    // with batching inert the buffer is always empty and a checker
    // thread would only idle-spin.
    if (config_.asyncCheck && batchChecking())
        asyncChecker_ =
            std::make_unique<AsyncChecker>(*this, config_.maxThreads);

    kendo_ = std::make_unique<det::Kendo>(config_.deterministic,
                                          config_.maxThreads);
    kendo_->setWatchdogMs(config_.watchdogMs);
    lastClock_.resize(config_.maxThreads, 0);

    if (config_.inject.any())
        injectPlan_ = std::make_unique<inject::InjectionPlan>(config_.inject);

    // Record/replay (ISSUE 6) rides on the flight recorder: the hook on
    // the record funnel is the sink (recording) or the validator
    // (replaying). Force the recorder on and latency sampling off —
    // the sampled histogram holds physical nanoseconds, which would
    // break byte-identical metrics across record and replay.
    if (config_.recordSink != nullptr || config_.replayDriver != nullptr) {
        if (!obs::kCompiledIn)
            throw TraceError(TraceFault::Unsupported,
                             "record/replay requires the observability "
                             "layer (rebuild with -DCLEAN_OBS=ON)");
        if (config_.recordSink != nullptr &&
            config_.replayDriver != nullptr)
            throw TraceError(TraceFault::Unsupported,
                             "cannot record and replay in the same run");
        if (!config_.deterministic)
            throw TraceError(TraceFault::Unsupported,
                             "record/replay requires deterministic "
                             "synchronization (the Kendo turn order is "
                             "the trace)");
        config_.obs.enabled = true;
        config_.obs.latencySampleEvery = 0;
    }

    // Before the main ThreadContext below: its constructor binds the
    // thread's lane.
    if (obs::kCompiledIn && config_.obs.enabled) {
        recorder_ = std::make_unique<obs::FlightRecorder>(
            config_.obs, config_.maxThreads);
        if (config_.recordSink != nullptr)
            recorder_->setHook(config_.recordSink);
        else if (config_.replayDriver != nullptr) {
            recorder_->setHook(config_.replayDriver);
            config_.replayDriver->setFaultHandler(
                [this] { raiseAbortFlag(); });
        }
    }

    if (config_.onRace == OnRacePolicy::Recover) {
        recover::RecoveryConfig rc;
        rc.maxRecoveries = config_.maxRecoveries;
        recovery_ = std::make_unique<recover::RecoveryManager>(rc);
        recoveryToken_ = std::make_unique<RecoveryToken>(*this);
        if (config_.granuleLog2 != 0)
            warn("recover policy: granuleLog2 != 0 — undo logging needs "
                 "per-byte epochs, races will degrade to report");
        if (!detection_)
            warn("recover policy with detection off: nothing to recover");
    }

    // Register the main thread as tid 0, clock 1 (clock 0 is reserved so
    // a zero epoch always reads as "no previous write").
    const std::uint32_t rec = allocateRecord(0);
    ThreadRecord &r = recordAt(rec);
    r.state = std::make_unique<ThreadState>(config_.epoch, 0,
                                            config_.maxThreads);
    r.state->vc.setClock(0, 1);
    r.state->refreshOwnEpoch();
    if (sampling_)
        r.state->sample.configure(sampleParams_);
    if (recovery_ && detection_ && config_.granuleLog2 == 0)
        r.sfrLog = std::make_unique<recover::SfrLog>(config_.undoLogEntries);
    r.phase.store(ThreadRecord::Phase::Running);
    kendo_->activate(0, 0);
    mainCtx_ = std::make_unique<ThreadContext>(*this, 0, rec);
}

CleanRuntime::~CleanRuntime()
{
    // Stop the async checker thread first: it dereferences the
    // checkers, shadow and thread states torn down below. Any app
    // thread still blocked on a drain is released first (the checker
    // finishes posted work before honoring stop).
    asyncChecker_.reset();

    // Joining every spawned thread is the user's job; salvage what we
    // can so the process does not std::terminate on a joinable thread.
    bool leaked = false;
    for (auto &record : records_) {
        if (record->osThread && record->osThread->joinable()) {
            leaked = true;
            raiseAbortFlag();
            record->osThread->join();
        }
    }
    if (leaked)
        warn("CleanRuntime destroyed with unjoined threads");
}

std::uint32_t
CleanRuntime::allocateRecord(ThreadId tid)
{
    auto record = std::make_unique<ThreadRecord>();
    record->tid = tid;
    records_.push_back(std::move(record));
    return static_cast<std::uint32_t>(records_.size() - 1);
}

ThreadId
CleanRuntime::allocateTid(ThreadState &parentView)
{
    (void)parentView;
    if (!freeTids_.empty()) {
        // Smallest free id first: deterministic under the deterministic
        // join order that produced the free list.
        auto it = std::min_element(freeTids_.begin(), freeTids_.end());
        const ThreadId tid = *it;
        freeTids_.erase(it);
        return tid;
    }
    const ThreadId tid = nextFreshTid_++;
    if (tid >= config_.maxThreads)
        fatal("thread limit exceeded: %u live threads (maxThreads=%u)",
              tid + 1, config_.maxThreads);
    return tid;
}

void
CleanRuntime::releaseTid(ThreadId tid, ClockValue finalClock)
{
    lastClock_[tid] = std::max(lastClock_[tid], finalClock);
    freeTids_.push_back(tid);
}

ThreadHandle
CleanRuntime::spawn(ThreadContext &parent,
                    std::function<void(ThreadContext &)> body)
{
    // Thread creation is a synchronization operation: deterministic turn,
    // deterministic tid (§3.3), vector-clock fork semantics.
    parent.acquireTurn();

    std::uint32_t rec;
    ThreadId childTid;
    {
        std::lock_guard<std::mutex> guard(registryMutex_);
        childTid = allocateTid(parent.state());
        rec = allocateRecord(childTid);
    }

    ThreadRecord &r = recordAt(rec);
    r.state = std::make_unique<ThreadState>(config_.epoch, childTid,
                                            config_.maxThreads);
    // Fork: child inherits the parent's clock view...
    r.state->vc.assign(parent.state().vc);
    // ...but its own component must stay above any clock a previous
    // holder of this tid ever published (epoch monotonicity on reuse).
    const ClockValue resume = std::max(r.state->vc.clockOf(childTid),
                                       lastClock_[childTid]);
    r.state->vc.setClock(childTid, resume);
    r.state->vc.tick(childTid);
    r.state->refreshOwnEpoch();
    if (sampling_)
        r.state->sample.configure(sampleParams_);
    if (recovery_ && detection_ && config_.granuleLog2 == 0)
        r.sfrLog = std::make_unique<recover::SfrLog>(config_.undoLogEntries);

    // ...and the parent ticks so later parent writes do not appear
    // ordered before the child's view.
    tickClock(parent.state());

    const det::DetCount childStart =
        kendo_->count(parent.state().tid) + 1;
    r.phase.store(ThreadRecord::Phase::Running, std::memory_order_release);
    kendo_->activate(childTid, childStart);
    kendo_->increment(parent.state().tid);

    r.osThread = std::make_unique<std::thread>(
        [this, rec, fn = std::move(body)]() mutable {
            threadMain(rec, std::move(fn));
        });
    return ThreadHandle(rec);
}

void
CleanRuntime::threadMain(std::uint32_t record,
                         std::function<void(ThreadContext &)> body)
{
    ThreadRecord &r = recordAt(record);
    ThreadContext ctx(*this, r.tid, record);
    const auto obsFinish = [this, &r, record] {
        if (CLEAN_LIKELY(recorder_ == nullptr))
            return;
        if (obs::ThreadLane *lane = recorder_->lane(r.tid))
            lane->record(obs::EventKind::ThreadFinish,
                         kendo_->count(r.tid), record);
    };
    try {
        body(ctx);
        // Normal thread end is a synchronization point (§2.2): take the
        // deterministic turn so the final clock/counter are reproducible.
        ctx.acquireTurn();
    } catch (const inject::ThreadKilled &) {
        r.error = std::current_exception();
        if (config_.onRace == OnRacePolicy::Recover) {
            // Supervised crash: roll the open SFR back and retire the
            // Kendo slot cleanly, then fall through to the normal finish
            // handshake so joiners and barriers keep making progress.
            ctx.retireAfterKill();
        } else {
            // Simulated crash: the thread vanishes with no finish
            // handshake and no Kendo finish, so its slot stays Active at
            // a frozen count. Siblings that wait on it are rescued by
            // the watchdog (DeadlockError naming this slot) — which is
            // the point of the fault.
            obsFinish();
            r.phase.store(ThreadRecord::Phase::Finished,
                          std::memory_order_release);
            return;
        }
    } catch (const RaceException &) {
        // recordRace already ran at the throw site.
        r.error = std::current_exception();
    } catch (const ExecutionAborted &) {
        r.error = std::current_exception();
    } catch (const DeadlockError &) {
        // recordDeadlock already ran where the watchdog fired.
        r.error = std::current_exception();
    } catch (...) {
        // Incl. TraceError: a replay fault aborts the whole execution
        // (the driver latched it; the runner surfaces it after the run).
        r.error = std::current_exception();
        raiseAbortFlag();
    }

    obsFinish();
    {
        std::lock_guard<std::mutex> guard(r.joinMutex);
        r.finalDetCount = kendo_->count(r.tid);
        r.done = true;
        if (r.joinerTid >= 0) {
            kendo_->unblock(static_cast<ThreadId>(r.joinerTid),
                            r.finalDetCount + 1);
            r.joinFlag.store(true, std::memory_order_release);
        }
    }
    kendo_->increment(r.tid);
    kendo_->finish(r.tid);
    r.phase.store(ThreadRecord::Phase::Finished, std::memory_order_release);
}

void
CleanRuntime::join(ThreadContext &parent, ThreadHandle handle)
{
    CLEAN_ASSERT(handle.valid());
    ThreadRecord &r = recordAt(handle.record());
    CLEAN_ASSERT(r.osThread, "join of a non-spawned record");

    bool mustWait = false;
    // Whatever goes wrong, the OS thread is physically reaped below
    // before the error propagates (no leaked joinable threads, no
    // use-after-free of state the child still touches while unwinding).
    std::exception_ptr pending;
    // Join is a synchronization operation.
    try {
        parent.acquireTurn();
        {
            std::lock_guard<std::mutex> guard(r.joinMutex);
            if (!r.done) {
                kendo_->block(parent.state().tid);
                r.joinerTid = static_cast<std::int32_t>(parent.state().tid);
                mustWait = true;
            } else {
                kendo_->raiseTo(parent.state().tid, r.finalDetCount + 1);
            }
        }
        kendo_->increment(parent.state().tid);
    } catch (const ExecutionAborted &) {
        // Aborted runs still physically reap the thread below.
    } catch (const DeadlockError &) {
        pending = std::current_exception();
    } catch (const TraceError &) {
        // A replay fault: the driver latched it and raised the abort
        // flag, so the child unwinds promptly and the join below is
        // bounded.
        pending = std::current_exception();
    }

    if (mustWait) {
        setPhase(parent.record(), ThreadRecord::Phase::Blocked);
        // The handshake never comes if the child was killed mid-SFR:
        // poll the abort flag and bound the wait with the watchdog.
        SpinWait spin(config_.watchdogMs);
        while (!r.joinFlag.load(std::memory_order_acquire)) {
            if (CLEAN_UNLIKELY(aborted()))
                break;
            if (CLEAN_UNLIKELY(spin.expired())) {
                try {
                    raiseDeadlock("join", parent.state().tid,
                                  spin.elapsedMs());
                } catch (const DeadlockError &) {
                    if (!pending)
                        pending = std::current_exception();
                }
                break;
            }
            spin.pause();
        }
        try {
            resumeFromBlocked(parent.record());
        } catch (const ExecutionAborted &) {
            if (!pending)
                pending = std::current_exception();
        } catch (const TraceError &) {
            if (!pending)
                pending = std::current_exception();
        }
    }
    r.osThread->join();

    // Absorb the child's happens-before knowledge and recycle its tid.
    parent.state().vc.joinFrom(r.state->vc);
    {
        std::lock_guard<std::mutex> guard(registryMutex_);
        releaseTid(r.tid, r.state->vc.clockOf(r.tid));
        retiredDetCounts_.push_back(r.finalDetCount);
    }
    if (pending)
        std::rethrow_exception(pending);
}

void
CleanRuntime::obsRaceDetected(const RaceException &race)
{
    // recordRace and noteRace run on the accessing thread — or, under
    // --async-check, on the checker thread while the accessor blocks on
    // its drain completion — so the accessor's lane keeps its
    // single-producer contract here either way.
    if (CLEAN_LIKELY(recorder_ == nullptr))
        return;
    if (obs::ThreadLane *lane = recorder_->lane(race.accessor()))
        lane->record(obs::EventKind::RaceDetected,
                     kendo_->count(race.accessor()),
                     heapOffset(race.addr()),
                     static_cast<std::uint64_t>(race.kind()));
}

bool
CleanRuntime::recordRace(const RaceException &race)
{
    {
        std::lock_guard<std::mutex> guard(raceMutex_);
        if (races_.size() < kMaxReportedRaces)
            races_.push_back(race);
    }
    raceCount_.fetch_add(1, std::memory_order_acq_rel);
    obsRaceDetected(race);
    switch (config_.onRace) {
      case OnRacePolicy::Throw:
        raiseAbortFlag();
        return true;
      case OnRacePolicy::Report:
        warn("race reported (degraded mode, continuing): %s", race.what());
        return false;
      case OnRacePolicy::Count:
        return false;
      case OnRacePolicy::Recover:
        // Reached only when a recovery episode was inadmissible (no or
        // poisoned undo log, quarantined site): Report-style degrade.
        warn("race degraded (recovery unavailable, continuing): %s",
             race.what());
        return false;
    }
    return true;
}

void
CleanRuntime::noteRace(const RaceException &race)
{
    {
        std::lock_guard<std::mutex> guard(raceMutex_);
        if (races_.size() < kMaxReportedRaces)
            races_.push_back(race);
    }
    raceCount_.fetch_add(1, std::memory_order_acq_rel);
    obsRaceDetected(race);
}

void
CleanRuntime::registerBarrier(CleanBarrier *barrier)
{
    if (!recovery_)
        return;
    std::lock_guard<std::mutex> guard(barrierMutex_);
    barriers_.push_back(barrier);
}

void
CleanRuntime::unregisterBarrier(CleanBarrier *barrier)
{
    if (!recovery_)
        return;
    std::lock_guard<std::mutex> guard(barrierMutex_);
    std::erase(barriers_, barrier);
}

const RaceException *
CleanRuntime::firstRace() const
{
    std::lock_guard<std::mutex> guard(raceMutex_);
    return races_.empty() ? nullptr : &races_.front();
}

void
CleanRuntime::recordDeadlock(const DeadlockError &deadlock)
{
    {
        std::lock_guard<std::mutex> guard(raceMutex_);
        if (!firstDeadlock_)
            firstDeadlock_ = std::make_unique<DeadlockError>(deadlock);
    }
    raiseAbortFlag();
    warn("%s", deadlock.what());
}

void
CleanRuntime::raiseAbortFlag()
{
    abortFlag_.store(true, std::memory_order_release);
    if (CLEAN_UNLIKELY(config_.replayDriver != nullptr))
        config_.replayDriver->disarm();
}

void
CleanRuntime::raiseDeadlock(const char *where, ThreadId waiter,
                            std::uint64_t waitedMs)
{
    const ThreadId stuck = kendo_->minActiveSlot();
    std::string phases;
    {
        std::lock_guard<std::mutex> guard(registryMutex_);
        for (const auto &record : records_) {
            if (!phases.empty())
                phases += ", ";
            phases += "tid " + std::to_string(record->tid) + "=" +
                      phaseName(record->phase.load(
                          std::memory_order_acquire));
        }
    }
    DeadlockError deadlock(
        "watchdog: thread " + std::to_string(waiter) + " waited " +
            std::to_string(waitedMs) + " ms in " + where +
            "; suspected stuck slot " +
            (stuck < kendo_->maxSlots() ? std::to_string(stuck)
                                        : std::string("<none>")) +
            " [" + kendo_->snapshot() + "] [phases: " + phases + "]",
        waiter, stuck < kendo_->maxSlots() ? stuck : waiter, waitedMs);
    if (CLEAN_UNLIKELY(recorder_ != nullptr)) {
        // raiseDeadlock throws on the waiting thread itself.
        if (obs::ThreadLane *lane = recorder_->lane(waiter))
            lane->record(obs::EventKind::WatchdogTrip,
                         kendo_->count(waiter), waitedMs,
                         stuck < kendo_->maxSlots() ? stuck : waiter);
    }
    recordDeadlock(deadlock);
    throw deadlock;
}

bool
CleanRuntime::deadlockOccurred() const
{
    std::lock_guard<std::mutex> guard(raceMutex_);
    return firstDeadlock_ != nullptr;
}

const DeadlockError *
CleanRuntime::firstDeadlock() const
{
    std::lock_guard<std::mutex> guard(raceMutex_);
    return firstDeadlock_.get();
}

void
CleanRuntime::tickClock(ThreadState &ts)
{
    ts.vc.tick(ts.tid);
    ts.refreshOwnEpoch();
    if (ts.vc.clockOf(ts.tid) + config_.rolloverMargin >=
        config_.epoch.maxClock()) {
        rollover_.request();
    }
}

void
CleanRuntime::registerSyncClock(VectorClock *vc)
{
    std::lock_guard<std::mutex> guard(registryMutex_);
    syncClocks_.push_back(vc);
}

void
CleanRuntime::unregisterSyncClock(VectorClock *vc)
{
    std::lock_guard<std::mutex> guard(registryMutex_);
    std::erase(syncClocks_, vc);
}

void
CleanRuntime::setPhase(std::uint32_t record, ThreadRecord::Phase phase)
{
    recordAt(record).phase.store(phase); // seq_cst, see resumeFromBlocked
}

void
CleanRuntime::resumeFromBlocked(std::uint32_t record)
{
    ThreadRecord &r = recordAt(record);
    for (;;) {
        r.phase.store(ThreadRecord::Phase::Running); // seq_cst
        if (!rollover_.pending())
            return;
        // A reset is pending or in progress; park until it completes.
        r.phase.store(ThreadRecord::Phase::Parked);
        try {
            rollover_.parkAndMaybeReset(r.tid,
                                        [this] { return aborted(); });
        } catch (const RolloverController::AbortedWait &) {
            r.phase.store(ThreadRecord::Phase::Running);
            throw ExecutionAborted();
        }
    }
}

bool
CleanRuntime::allOthersQuiescent(ThreadId)
{
    std::lock_guard<std::mutex> guard(registryMutex_);
    for (const auto &record : records_) {
        if (record->phase.load(std::memory_order_acquire) ==
            ThreadRecord::Phase::Running) {
            return false;
        }
    }
    return true;
}

void
CleanRuntime::performReset()
{
    std::lock_guard<std::mutex> guard(registryMutex_);
    if (linearShadow_) {
        linearShadow_->reset();
    } else {
        sparseShadow_->reset();
        // Every other thread is parked and will synchronize through the
        // rollover unpark before touching the shadow again — exactly
        // the quiescent point the deferred-reclamation contract needs.
        sparseShadow_->reclaim();
    }
    for (auto &record : records_) {
        if (!record->state)
            continue;
        record->state->vc.clearClocks();
        record->state->vc.setClock(record->state->tid, 1);
        record->state->refreshOwnEpoch();
        // The reset just rewrote every shadow slot to 0, so ownership
        // claims are stale even when the re-derived element happens to
        // equal the pre-reset one (a thread that never ticked restarts
        // at the same clock) — refreshOwnEpoch's change-detection flush
        // is not sufficient here; retract the cache unconditionally.
        record->state->ownCache.flush(record->state->stats);
        // Undo logs must survive the reset (ISSUE 3): every live shadow
        // epoch was just rewritten to the reset value 0, so the epochs a
        // later rollback would restore must follow. Owners are parked,
        // so this cross-thread rewrite is quiescent.
        if (record->sfrLog)
            record->sfrLog->rewriteEpochsOnReset();
    }
    for (VectorClock *vc : syncClocks_)
        vc->clearClocks();
    std::fill(lastClock_.begin(), lastClock_.end(), 0);

    if (recorder_ != nullptr) {
        // Any thread can be the resetter, so this goes to the global
        // lane. The stamp sums the per-slot counters: each resumes
        // monotonically after the reset, so the sum orders successive
        // rollovers deterministically. performReset runs before the
        // controller bumps resets(), hence the +1 for the ordinal.
        std::uint64_t det = 0;
        for (ThreadId tid = 0; tid < config_.maxThreads; ++tid)
            det += kendo_->count(tid);
        recorder_->recordGlobal(obs::EventKind::Rollover, det,
                                rollover_.resets() + 1);
    }
}

CheckerStats
CleanRuntime::aggregatedCheckerStats() const
{
    std::lock_guard<std::mutex> guard(registryMutex_);
    CheckerStats total;
    for (const auto &record : records_) {
        if (record->state)
            total.merge(record->state->stats);
    }
    return total;
}

SampleTelemetry
CleanRuntime::aggregatedSampleTelemetry() const
{
    std::lock_guard<std::mutex> guard(registryMutex_);
    SampleTelemetry total;
    for (const auto &record : records_) {
        if (record->state)
            total.merge(record->state->sample.telemetry());
    }
    return total;
}

std::vector<det::DetCount>
CleanRuntime::finalDetCounts() const
{
    std::lock_guard<std::mutex> guard(registryMutex_);
    std::vector<det::DetCount> counts = retiredDetCounts_;
    counts.push_back(kendo_->count(0)); // main thread
    return counts;
}

std::string
CleanRuntime::failureReportJson() const
{
    JsonWriter w;
    w.beginObject();
    w.field("version", std::uint64_t{1});
    w.field("policy", onRacePolicyName(config_.onRace));
    const bool deadlocked = deadlockOccurred();
    const recover::RecoveryStats recoveryStats =
        recovery_ ? recovery_->stats() : recover::RecoveryStats{};
    const char *outcome;
    if (deadlocked) {
        outcome = "deadlock";
    } else if (config_.onRace == OnRacePolicy::Recover && raceOccurred()) {
        // "recovered": every race was rolled back and cleanly
        // re-executed. Quarantines, forced replays and episodes that
        // never got a log are honest degradations.
        const bool degraded = recoveryStats.quarantinedSites > 0 ||
                              recoveryStats.forcedReplays > 0 ||
                              raceCount() > recoveryStats.recovered;
        outcome = degraded ? "degraded" : "recovered";
    } else {
        outcome = raceOccurred() ? "race" : "clean";
    }
    w.field("outcome", outcome);

    w.key("races").beginObject();
    w.field("count", raceCount());
    w.key("reported").beginArray();
    {
        std::lock_guard<std::mutex> guard(raceMutex_);
        for (const RaceException &race : races_) {
            w.beginObject();
            w.field("kind", raceKindName(race.kind()));
            // Heap-relative: byte-identical across runs in spite of ASLR.
            w.field("addrOffset",
                    static_cast<std::uint64_t>(race.addr() - checkBase_));
            w.field("accessor",
                    static_cast<std::uint64_t>(race.accessor()));
            w.field("previousWriter",
                    static_cast<std::uint64_t>(race.previousWriter()));
            w.field("previousClock",
                    static_cast<std::uint64_t>(race.previousClock()));
            w.field("site", race.siteIndex());
            w.field("sfr", race.sfrOrdinal());
            w.endObject();
        }
    }
    w.endArray();
    w.endObject();

    if (recovery_) {
        w.key("recovery").beginObject();
        w.field("episodes", recoveryStats.episodes);
        w.field("attempts", recoveryStats.attempts);
        w.field("recovered", recoveryStats.recovered);
        w.field("forcedReplays", recoveryStats.forcedReplays);
        w.field("replayRaces", recoveryStats.replayRaces);
        w.field("replayMismatches", recoveryStats.replayMismatches);
        w.field("rolledBackWrites", recoveryStats.rolledBackWrites);
        w.field("skippedRollbacks", recoveryStats.skippedRollbacks);
        w.field("recoveredKills", recoveryStats.recoveredKills);
        w.key("quarantinedSites").beginArray();
        for (const Addr site : recovery_->quarantinedSites())
            w.value(static_cast<std::uint64_t>(site));
        w.endArray();
        w.endObject();
    }

    {
        std::lock_guard<std::mutex> guard(raceMutex_);
        if (firstDeadlock_) {
            w.key("deadlock").beginObject();
            w.field("waiter",
                    static_cast<std::uint64_t>(firstDeadlock_->waiter()));
            w.field("stuckSlot", static_cast<std::uint64_t>(
                                     firstDeadlock_->stuckSlot()));
            w.field("waitedMs", firstDeadlock_->waitedMs());
            w.field("message", firstDeadlock_->what());
            w.endObject();
        }
    }

    w.key("detCounts").beginArray();
    {
        std::lock_guard<std::mutex> guard(registryMutex_);
        for (ThreadId tid = 0; tid < nextFreshTid_; ++tid)
            w.value(static_cast<std::uint64_t>(kendo_->count(tid)));
    }
    w.endArray();

    const CheckerStats stats = aggregatedCheckerStats();
    w.key("checker").beginObject();
    w.field("sharedReads", stats.sharedReads);
    w.field("sharedWrites", stats.sharedWrites);
    w.field("accessedBytes", stats.accessedBytes);
    w.field("epochUpdates", stats.epochUpdates);
    w.field("replayedReads", stats.replayedReads);
    w.field("replayedWrites", stats.replayedWrites);
    w.field("replayedBytes", stats.replayedBytes);
    w.field("replayedEpochUpdates", stats.replayedEpochUpdates);
    w.field("ownCacheHits", stats.ownCacheHits());
    w.field("ownCacheMisses", stats.ownCacheMisses);
    w.field("ownCacheFlushes", stats.ownCacheFlushes);
    w.field("batchRuns", stats.batchRuns);
    w.field("batchDrains", stats.batchDrains);
    w.field("batchOverflowDrains", stats.batchOverflowDrains);
    w.field("batchDrainedBytes", stats.batchDrainedBytes);
    w.field("shedReads", stats.shedReads);
    w.endObject();

    if (sampling_) {
        // Everything here is a function of the deterministic execution
        // (gate decisions, not wall-clock measurements), so budgeted
        // record/replay pairs produce byte-identical reports.
        const SampleTelemetry st = aggregatedSampleTelemetry();
        w.key("sampling").beginObject();
        w.field("budget", std::uint64_t{config_.overheadBudget});
        w.field("shedReads", stats.shedReads);
        w.field("windows", st.windows);
        w.field("bursts", st.bursts);
        w.field("strikes", st.strikes);
        w.field("quarantines", st.quarantines);
        w.field("levelAdoptions", st.levelAdoptions);
        w.field("calibSfrs", st.calibSfrs);
        w.key("quarantinedRegions").beginArray();
        {
            std::vector<Addr> regions = governor_->quarantinedRegions();
            std::sort(regions.begin(), regions.end());
            for (const Addr offset : regions)
                w.value(static_cast<std::uint64_t>(offset));
        }
        w.endArray();
        w.endObject();
    }

    w.field("rollovers", rollover_.resets());

    if (injectPlan_) {
        const inject::InjectionStats fired = injectPlan_->stats();
        w.key("injection").beginObject();
        w.field("seed", injectPlan_->config().seed);
        w.field("skippedChecks", fired.skippedChecks);
        w.field("skippedAcquires", fired.skippedAcquires);
        w.field("delays", fired.delays);
        w.field("rollovers", fired.rollovers);
        w.field("kills", fired.kills);
        w.endObject();
    }

    if (recorder_ != nullptr) {
        // "Last words": the tail of each thread's flight-recorder lane,
        // in the deterministic merge order, so a failing run's report
        // shows what every thread was doing when it died.
        w.key("events").beginObject();
        w.field("perThreadTail",
                static_cast<std::uint64_t>(recorder_->config().failureTail));
        w.key("tail").beginArray();
        for (const obs::Event &e :
             recorder_->merged(recorder_->config().failureTail)) {
            w.beginObject();
            w.field("kind", eventKindName(e.kind));
            w.field("tid", static_cast<std::uint64_t>(e.tid));
            w.field("det", e.det);
            w.field("seq", e.seq);
            w.field("arg0", e.arg0);
            w.field("arg1", e.arg1);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
    return w.str();
}

std::string
CleanRuntime::obsTraceJson() const
{
    if (recorder_ == nullptr)
        return std::string();
    return obs::chromeTraceJson(recorder_->merged(),
                                recorder_->globalTid());
}

std::string
CleanRuntime::metricsJson() const
{
    JsonWriter w;
    w.beginObject();
    w.field("version", std::uint64_t{1});
    w.field("policy", onRacePolicyName(config_.onRace));

    w.key("counters").beginObject();
    w.field("races", raceCount());
    w.field("rollovers", rollover_.resets());
    const CheckerStats stats = aggregatedCheckerStats();
    w.field("sharedReads", stats.sharedReads);
    w.field("sharedWrites", stats.sharedWrites);
    w.field("accessedBytes", stats.accessedBytes);
    w.field("epochUpdates", stats.epochUpdates);
    w.field("wideAccesses", stats.wideAccesses);
    w.field("wideSameEpoch", stats.wideSameEpoch);
    w.field("wideCasUpdates", stats.wideCasUpdates);
    w.field("replayedReads", stats.replayedReads);
    w.field("replayedWrites", stats.replayedWrites);
    w.field("replayedBytes", stats.replayedBytes);
    w.field("replayedEpochUpdates", stats.replayedEpochUpdates);
    w.field("ownCacheHits", stats.ownCacheHits());
    w.field("ownCacheMisses", stats.ownCacheMisses);
    w.field("ownCacheFlushes", stats.ownCacheFlushes);
    w.field("batchRuns", stats.batchRuns);
    w.field("batchDrains", stats.batchDrains);
    w.field("batchOverflowDrains", stats.batchOverflowDrains);
    w.field("batchDrainedBytes", stats.batchDrainedBytes);
    w.field("shedReads", stats.shedReads);
    if (sampling_) {
        const SampleTelemetry st = aggregatedSampleTelemetry();
        w.field("sampleBudget", std::uint64_t{config_.overheadBudget});
        w.field("sampleWindows", st.windows);
        w.field("sampleBursts", st.bursts);
        w.field("sampleStrikes", st.strikes);
        w.field("sampleQuarantines", st.quarantines);
        w.field("sampleLevelAdoptions", st.levelAdoptions);
        w.field("sampleCalibSfrs", st.calibSfrs);
        w.field("sampleQuarantinedRegions",
                static_cast<std::uint64_t>(governor_->quarantinedCount()));
        // Deliberately no physical overhead figure here: `cleanrun
        // --record` makes metrics part of the round-trip contract, and
        // wall-clock numbers would break byte-identical replays. The
        // measured overhead prints in cleanrun's human summary instead.
    }
    if (recovery_) {
        const recover::RecoveryStats rs = recovery_->stats();
        w.field("recoveryEpisodes", rs.episodes);
        w.field("recoveryAttempts", rs.attempts);
        w.field("recovered", rs.recovered);
        w.field("forcedReplays", rs.forcedReplays);
        w.field("replayRaces", rs.replayRaces);
        w.field("replayMismatches", rs.replayMismatches);
        w.field("quarantinedSites", rs.quarantinedSites);
        w.field("recoveredKills", rs.recoveredKills);
    }
    if (injectPlan_) {
        const inject::InjectionStats fired = injectPlan_->stats();
        w.field("injectedSkippedChecks", fired.skippedChecks);
        w.field("injectedSkippedAcquires", fired.skippedAcquires);
        w.field("injectedDelays", fired.delays);
        w.field("injectedRollovers", fired.rollovers);
        w.field("injectedKills", fired.kills);
    }
    w.endObject();

    if (recorder_ != nullptr) {
        w.key("events").beginObject();
        w.field("recorded", recorder_->totalRecorded());
        w.key("retainedByKind").beginObject();
        const std::vector<std::uint64_t> byKind =
            recorder_->retainedByKind();
        for (std::size_t k = 0; k < byKind.size(); ++k) {
            if (byKind[k] > 0)
                w.field(
                    obs::eventKindName(static_cast<obs::EventKind>(k)),
                    byKind[k]);
        }
        w.endObject();
        w.endObject();
    }

    // Always present: the ownership-cache hit-run histogram comes from
    // the checker itself, not the flight recorder. The recorder's
    // histograms join it when observability is on; note the latency
    // histogram holds physical nanoseconds, so the metrics snapshot is
    // *not* byte-stable run-to-run — only the event trace is.
    w.key("histograms").beginObject();
    w.key("ownCacheHitRuns");
    stats.ownCacheHitRuns.writeTo(w);
    w.key("batchRunBytes");
    stats.batchRunBytes.writeTo(w);
    if (sampling_) {
        w.key("shedPerBoundary");
        aggregatedSampleTelemetry().shedPerBoundary.writeTo(w);
    }
    if (recorder_ != nullptr) {
        w.key("sfrLengthDetEvents");
        recorder_->mergedSfrLength().writeTo(w);
        w.key("checkLatencyNs");
        recorder_->mergedCheckLatency().writeTo(w);
    }
    w.endObject();
    w.endObject();
    return w.str();
}

} // namespace clean
