/**
 * @file
 * Portable chunked epoch store with a lock-free chunk index.
 *
 * Maps arbitrary 64-bit data addresses to epoch slots through an
 * open-addressed table of fixed-size chunks (64 KiB of data per chunk).
 * Slots for adjacent bytes are contiguous within a chunk, so the
 * vectorized multi-byte check still applies to accesses that do not
 * straddle a chunk boundary.
 *
 * The index is a flat array of (key, chunk*) atomic pairs probed
 * linearly from a Fibonacci-hashed start. Lookups of materialized
 * chunks are wait-free: a bounded probe sequence of acquire loads with
 * no stores and no retries. Inserts are lock-free: one thread's CAS
 * claims the key; concurrently inserting threads either claim a
 * different slot or (same key) wait for the winner's single
 * allocate-and-publish — the only bounded wait in the structure.
 * Compare the 16 mutex+map shards this replaces, where a parallel
 * first-touch sweep serialized 1/16th of all threads per shard and
 * every miss paid a lock round-trip (DESIGN.md §16).
 *
 * This backend exists (a) to support checking data outside the
 * SharedHeap and (b) as the comparison point for the
 * bench_ablation_shadow / bench_scale experiments: the paper's
 * fixed-arithmetic layout (LinearShadow) wins precisely because it
 * avoids this lookup.
 */

#ifndef CLEAN_CORE_SPARSE_SHADOW_H
#define CLEAN_CORE_SPARSE_SHADOW_H

#include <atomic>
#include <cstdint>
#include <memory>

#include "support/common.h"

namespace clean
{

/** Hash-of-chunks epoch store for arbitrary addresses. */
class SparseShadow
{
  public:
    /** Data bytes covered by one chunk (must be a power of two). */
    static constexpr std::size_t kChunkBytes = std::size_t{1} << 16;

    /** Default index capacity: 2^16 slots = 4 GiB of distinct data
     *  covered before the index fills (each slot names one 64 KiB
     *  chunk). The table is fixed-capacity by design: growing a
     *  lock-free index while writers race to insert the same key in
     *  two generations of the table risks double-materializing a chunk
     *  and silently splitting its epoch history. */
    static constexpr unsigned kDefaultCapacityLog2 = 16;

    explicit SparseShadow(unsigned capacityLog2 = kDefaultCapacityLog2);
    ~SparseShadow();

    SparseShadow(const SparseShadow &) = delete;
    SparseShadow &operator=(const SparseShadow &) = delete;

    /** Epoch slot of the data byte at @p addr; creates the chunk lazily. */
    CLEAN_ALWAYS_INLINE EpochValue *
    slots(Addr addr)
    {
        const Addr key = addr >> kChunkShift;
        if (CLEAN_LIKELY(key == cachedKey_ &&
                         cachedGen_ ==
                             generation_.load(std::memory_order_relaxed)))
            return cachedChunk_ + (addr & kChunkMask);
        return slotsSlow(addr, key);
    }

    /** Contiguity holds to the end of the 64 KiB chunk. */
    CLEAN_ALWAYS_INLINE std::size_t
    contiguousSlots(Addr addr) const
    {
        return kChunkBytes - static_cast<std::size_t>(addr & kChunkMask);
    }

    /**
     * Rollover reset: swaps in an empty index instead of zeroing chunks
     * in place (the sparse analogue of LinearShadow's O(1) madvise
     * reset) — the next access lazily reallocates a zeroed chunk, so no
     * thread spends O(shadow) memset time inside the stop-the-world
     * reset window. The retired table and its chunks are NOT freed
     * here: they move to a deferred-reclamation list so a reader racing
     * this call (which the production rollover protocol forbids, but
     * the structure tolerates) can still dereference a just-retired
     * chunk safely. Bumping the instance generation afterwards
     * invalidates every thread-local chunk-cache entry: once the bump
     * is visible (immediately, for any thread that synchronizes with
     * the resetter — the rollover park/unpark does) a stale cache entry
     * can only miss.
     */
    void reset();

    /**
     * Frees every table retired by reset(). Callers must guarantee
     * quiescence: no thread may be inside slots()/slotsSlow() nor run
     * again without synchronizing with this call (the rollover window,
     * with every other thread parked, qualifies; so does a
     * single-threaded test). This is the "epoch-style" half of the
     * reclamation scheme: retirement is immediate and lock-free,
     * reclamation waits for a full quiescent point.
     */
    void reclaim();

    /** Number of chunks materialized so far (current index only). */
    std::size_t chunkCount() const;

    /** Index slots (inserting more distinct chunks than this panics). */
    std::size_t
    capacity() const
    {
        return table_.load(std::memory_order_acquire)->mask + 1;
    }

  private:
    static constexpr unsigned kChunkShift = 16;
    static constexpr Addr kChunkMask = kChunkBytes - 1;

    /** One index entry. key holds (chunk index + 1) so 0 can mean
     *  empty — data address 0 has chunk index 0. chunk is published
     *  with a release store strictly after the claiming CAS, so any
     *  thread that observes the key also observes a fully zeroed chunk
     *  (or spins briefly for the publish). */
    struct Slot
    {
        std::atomic<std::uint64_t> key{0};
        std::atomic<EpochValue *> chunk{nullptr};
    };

    struct Table
    {
        explicit Table(unsigned capacityLog2);
        ~Table();

        Table(const Table &) = delete;
        Table &operator=(const Table &) = delete;

        const std::size_t mask;   ///< capacity - 1
        const unsigned shift;     ///< 64 - capacityLog2 (hash -> start)
        std::unique_ptr<Slot[]> slots;
        Table *nextRetired = nullptr;
    };

    EpochValue *slotsSlow(Addr addr, Addr key);
    EpochValue *findOrCreate(Table &table, Addr key);

    const unsigned capacityLog2_;

    /** Current index. Swapped wholesale by reset(); readers take an
     *  acquire snapshot and work entirely within that snapshot. */
    std::atomic<Table *> table_;

    /** Treiber stack of tables retired by reset(), freed by reclaim(). */
    std::atomic<Table *> retired_{nullptr};

    // Per-thread single-entry chunk cache keyed by (instance generation,
    // chunk index). Chunks are immortal until the owning instance is
    // reset or destroyed, and both events retire the generation, so a
    // hit can never yield a stale pointer to any thread that has
    // synchronized with the retirement (reset runs inside the rollover
    // stop-the-world window, whose park/unpark is that
    // synchronization). The key must be a generation id, not the
    // instance address: a new instance allocated where a destroyed one
    // lived would otherwise satisfy an `owner == this` check and hand
    // out a freed chunk (use-after-free). Generations start at 1 so the
    // empty cache (gen 0) never hits.
    //
    // The fast-path generation load is relaxed on purpose: if it races
    // reset() and wins, the cached chunk belongs to a retired-but-not-
    // reclaimed table, which is still dereferenceable (reclaim()
    // requires quiescence). Strict freshness starts at the first
    // synchronization with the resetter, exactly when the protocol
    // needs it. slotsSlow() loads the generation (acquire) BEFORE the
    // table: reset() publishes the new table BEFORE the new generation,
    // so a reader that caches the new generation provably caches a
    // chunk from the new (or a newer) table, never a retired one.
    std::atomic<std::uint64_t> generation_;
    static std::atomic<std::uint64_t> nextGeneration_;
    static thread_local std::uint64_t cachedGen_;
    static thread_local Addr cachedKey_;
    static thread_local EpochValue *cachedChunk_;
};

} // namespace clean

#endif // CLEAN_CORE_SPARSE_SHADOW_H
