/**
 * @file
 * fmm — fast-multipole-style particle interaction (SPLASH-2).
 *
 * Particles live in a grid of cells; each timestep builds per-cell
 * multipole coefficients (P2M: scatter-add under per-cell locks — many
 * short critical sections, which is why fmm is one of the paper's
 * frequent-synchronization / clock-rollover benchmarks, Table 1), then
 * evaluates far-field interactions from the coefficients (M2P,
 * read-heavy) and near-field interactions within the home cell.
 *
 * Racy variant: P2M accumulates into the shared coefficients without
 * the cell lock — unsynchronized WAW on coefficient words.
 */

#include "workloads/suite/factories.h"
#include "workloads/suite/kernel_common.h"

namespace clean::wl::suite
{

namespace
{

constexpr unsigned kTerms = 4;

struct FmmCell
{
    double coeff[kTerms * 2]; // multipole terms, re/im interleaved
    std::uint32_t count;
    std::uint32_t pad;
};

class Fmm : public KernelBase
{
  public:
    Fmm() : KernelBase("fmm", "splash2", true) {}

    void
    run(Env &env, const WorkloadParams &p) override
    {
        const std::uint64_t nParticles = scaled(p.scale, 256, 1536, 6144);
        const std::uint64_t steps = scaled(p.scale, 2, 3, 5);
        const unsigned gridDim = 8;
        const unsigned nCells = gridDim * gridDim;

        auto *px = env.allocShared<double>(nParticles);
        auto *py = env.allocShared<double>(nParticles);
        auto *pq = env.allocShared<double>(nParticles);
        auto *potential = env.allocShared<double>(nParticles);
        auto *cells = env.allocShared<FmmCell>(nCells);
        auto *home = env.allocShared<std::uint32_t>(nParticles);

        std::vector<unsigned> cellLocks;
        for (unsigned c = 0; c < nCells; ++c)
            cellLocks.push_back(env.createMutex());
        const unsigned phase = env.createBarrier(p.threads);

        {
            Prng init(p.seed);
            for (std::uint64_t i = 0; i < nParticles; ++i) {
                px[i] = init.nextDouble();
                py[i] = init.nextDouble();
                pq[i] = init.nextDouble() + 0.1;
                potential[i] = 0.0;
            }
        }

        const bool racy = p.racy;
        env.parallel(p.threads, [&](Worker &w) {
            const Slice slice = sliceOf(nParticles, w.index(), w.count());
            const Slice cellSlice = sliceOf(nCells, w.index(), w.count());
            for (std::uint64_t step = 0; step < steps; ++step) {
                // Reset the cells this worker owns.
                for (std::uint64_t c = cellSlice.begin; c < cellSlice.end;
                     ++c) {
                    for (unsigned t = 0; t < kTerms * 2; ++t)
                        w.write(&cells[c].coeff[t], 0.0);
                    w.write(&cells[c].count, std::uint32_t{0});
                }
                w.barrier(phase);

                // P2M: scatter particle charges into cell multipoles.
                for (std::uint64_t i = slice.begin; i < slice.end; ++i) {
                    const double x = w.read(&px[i]);
                    const double y = w.read(&py[i]);
                    const double q = w.read(&pq[i]);
                    const unsigned gx = std::min<unsigned>(
                        gridDim - 1, static_cast<unsigned>(x * gridDim));
                    const unsigned gy = std::min<unsigned>(
                        gridDim - 1, static_cast<unsigned>(y * gridDim));
                    const unsigned c = gy * gridDim + gx;
                    w.write(&home[i], c);
                    double terms[kTerms * 2];
                    double zr = 1.0, zi = 0.0;
                    for (unsigned t = 0; t < kTerms; ++t) {
                        terms[2 * t] = q * zr;
                        terms[2 * t + 1] = q * zi;
                        const double nr = zr * x - zi * y;
                        const double ni = zr * y + zi * x;
                        zr = nr;
                        zi = ni;
                        w.compute(6);
                    }
                    if (!racy)
                        w.lock(cellLocks[c]);
                    for (unsigned t = 0; t < kTerms * 2; ++t) {
                        w.update(&cells[c].coeff[t], [&](double v) {
                            return v + terms[t];
                        });
                    }
                    w.update(&cells[c].count,
                             [](std::uint32_t v) { return v + 1; });
                    if (!racy)
                        w.unlock(cellLocks[c]);
                }
                w.barrier(phase);

                // M2P + near field: evaluate potential at each particle.
                for (std::uint64_t i = slice.begin; i < slice.end; ++i) {
                    const double x = w.read(&px[i]);
                    const double y = w.read(&py[i]);
                    double phi = 0.0;
                    for (unsigned c = 0; c < nCells; ++c) {
                        const double c0 = w.read(&cells[c].coeff[0]);
                        const double c2 = w.read(&cells[c].coeff[2]);
                        const double c3 = w.read(&cells[c].coeff[3]);
                        const double cx =
                            (static_cast<double>(c % gridDim) + 0.5) /
                            gridDim;
                        const double cy =
                            (static_cast<double>(c / gridDim) + 0.5) /
                            gridDim;
                        const double dx = x - cx;
                        const double dy = y - cy;
                        const double r2 = dx * dx + dy * dy + 0.01;
                        phi += c0 / std::sqrt(r2) +
                               (c2 * dx + c3 * dy) / r2;
                        w.compute(10);
                    }
                    w.write(&potential[i], phi);
                }
                w.barrier(phase);
            }
            std::uint64_t h = 0;
            for (std::uint64_t i = slice.begin; i < slice.end; ++i)
                h = h * 31 + static_cast<std::uint64_t>(
                                 w.read(&potential[i]) * 1e3);
            w.sink(h);
        });

        env.declareOutput(potential, nParticles * sizeof(double));
    }
};

} // namespace

std::unique_ptr<Workload>
makeFmm()
{
    return std::make_unique<Fmm>();
}

} // namespace clean::wl::suite
