/**
 * @file
 * Abort-propagation tests: a thread raises a RaceException while its
 * siblings are blocked in every kind of blocking wait the runtime has
 * (condition wait, barrier, join handshake). All of them must unwind
 * with ExecutionAborted on their own — i.e. before the watchdog would
 * have had to rescue them — so the §3.1 "the execution stops" semantics
 * hold even for threads that were asleep when the race fired.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/clean.h"
#include "support/timer.h"

namespace clean
{
namespace
{

constexpr std::uint64_t kWatchdogMs = 8000;

RuntimeConfig
abortConfig()
{
    RuntimeConfig config;
    config.maxThreads = 16;
    config.heap.sharedBytes = std::size_t{64} << 20;
    config.heap.privateBytes = std::size_t{16} << 20;
    config.watchdogMs = kWatchdogMs;
    return config;
}

/**
 * Jumps main far into the deterministic future. Main spends these tests
 * spinning on plain atomics (it does not advance deterministic time),
 * and a freshly spawned child ties with its parent's count — ties go to
 * tid 0 — so without this the children would stall on main's turn
 * instead of reaching the waits under test. Must be called AFTER the
 * waiters are spawned (a child spawned later would tie at the new, huge
 * count and stall all the same).
 */
void
parkMain(CleanRuntime &rt)
{
    rt.mainContext().detTick(1000000);
    rt.mainContext().acquireTurn();
}

/**
 * Spawns two threads whose unsynchronized writes to @p x WAW-race after
 * @p delayMs. Exactly one of them throws RaceException (the CAS epoch
 * publish arbitrates); the other either races too or unwinds aborted.
 */
std::pair<ThreadHandle, ThreadHandle>
spawnRacerPair(CleanRuntime &rt, int *x, unsigned delayMs)
{
    auto racer = [&rt, x, delayMs](ThreadContext &ctx) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delayMs));
        ctx.write(x, static_cast<int>(ctx.tid()));
    };
    auto a = rt.spawn(rt.mainContext(), racer);
    auto b = rt.spawn(rt.mainContext(), racer);
    return {a, b};
}

TEST(AbortPropagation, CondVarWaiterUnwindsWhenSiblingRaces)
{
    CleanRuntime rt(abortConfig());
    CleanMutex m(rt);
    CleanCondVar cv(rt);
    auto *x = rt.heap().allocSharedArray<int>(1);
    std::atomic<bool> waiterAborted{false};
    std::atomic<bool> entered{false};

    Timer timer;
    auto waiter = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        try {
            m.lock(ctx);
            entered.store(true, std::memory_order_release);
            cv.wait(ctx, m); // nobody signals; only the abort can end this
            m.unlock(ctx);
        } catch (const ExecutionAborted &) {
            waiterAborted.store(true, std::memory_order_release);
            throw;
        }
    });
    parkMain(rt);
    while (!entered.load(std::memory_order_acquire))
        std::this_thread::yield();

    auto [a, b] = spawnRacerPair(rt, x, 50);
    rt.join(rt.mainContext(), a);
    rt.join(rt.mainContext(), b);
    rt.join(rt.mainContext(), waiter);

    EXPECT_TRUE(rt.raceOccurred());
    EXPECT_TRUE(rt.aborted());
    EXPECT_TRUE(waiterAborted.load());
    // The abort flag reached the wait directly; the watchdog never had
    // to diagnose a deadlock, and the unwind beat the watchdog bound.
    EXPECT_FALSE(rt.deadlockOccurred());
    EXPECT_LT(timer.elapsedSeconds(), kWatchdogMs / 1000.0);
}

TEST(AbortPropagation, BarrierWaiterUnwindsWhenSiblingRaces)
{
    CleanRuntime rt(abortConfig());
    // Three parties but only one thread ever arrives: without the abort
    // the arrival would wait forever for the missing parties.
    CleanBarrier barrier(rt, 3);
    auto *x = rt.heap().allocSharedArray<int>(1);
    std::atomic<bool> waiterAborted{false};
    std::atomic<bool> entered{false};

    Timer timer;
    auto waiter = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        try {
            entered.store(true, std::memory_order_release);
            barrier.arrive(ctx);
        } catch (const ExecutionAborted &) {
            waiterAborted.store(true, std::memory_order_release);
            throw;
        }
    });
    parkMain(rt);
    while (!entered.load(std::memory_order_acquire))
        std::this_thread::yield();

    auto [a, b] = spawnRacerPair(rt, x, 50);
    rt.join(rt.mainContext(), a);
    rt.join(rt.mainContext(), b);
    rt.join(rt.mainContext(), waiter);

    EXPECT_TRUE(rt.raceOccurred());
    EXPECT_TRUE(waiterAborted.load());
    EXPECT_FALSE(rt.deadlockOccurred());
    EXPECT_LT(timer.elapsedSeconds(), kWatchdogMs / 1000.0);
}

TEST(AbortPropagation, JoinerUnblocksWhenSiblingRaces)
{
    CleanRuntime rt(abortConfig());
    auto *x = rt.heap().allocSharedArray<int>(1);

    // The child keeps advancing (and publishing) deterministic time
    // until the abort, so the joining main thread is parked in the join
    // handshake (not in a turn wait) when the race fires.
    auto child = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        while (!ctx.runtime().aborted()) {
            ctx.detTick(1);
            ctx.acquireTurn();
        }
    });
    auto [a, b] = spawnRacerPair(rt, x, 100);

    Timer timer;
    // The handshake never completes normally; the abort must release it.
    // join() absorbs child errors, so no throw is expected here.
    rt.join(rt.mainContext(), child);
    rt.join(rt.mainContext(), a);
    rt.join(rt.mainContext(), b);

    EXPECT_TRUE(rt.raceOccurred());
    EXPECT_TRUE(rt.aborted());
    EXPECT_FALSE(rt.deadlockOccurred());
    EXPECT_LT(timer.elapsedSeconds(), kWatchdogMs / 1000.0);
}

TEST(AbortPropagation, AllThreeWaitKindsUnwindFromOneRace)
{
    // The full scenario from the issue: one racy pair while one sibling
    // sits in a condition wait, one in a barrier and one being joined.
    CleanRuntime rt(abortConfig());
    CleanMutex m(rt);
    CleanCondVar cv(rt);
    CleanBarrier barrier(rt, 2);
    auto *x = rt.heap().allocSharedArray<int>(1);
    std::atomic<int> unwound{0};
    std::atomic<int> entered{0};

    auto trackAbort = [&unwound](auto body) {
        return [&unwound, body](ThreadContext &ctx) {
            try {
                body(ctx);
            } catch (const ExecutionAborted &) {
                unwound.fetch_add(1, std::memory_order_acq_rel);
                throw;
            }
        };
    };

    Timer timer;
    auto condWaiter =
        rt.spawn(rt.mainContext(), trackAbort([&](ThreadContext &ctx) {
                     m.lock(ctx);
                     entered.fetch_add(1, std::memory_order_acq_rel);
                     cv.wait(ctx, m);
                     m.unlock(ctx);
                 }));
    auto barrierWaiter =
        rt.spawn(rt.mainContext(), trackAbort([&](ThreadContext &ctx) {
                     entered.fetch_add(1, std::memory_order_acq_rel);
                     barrier.arrive(ctx);
                 }));
    auto spinner = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        entered.fetch_add(1, std::memory_order_acq_rel);
        while (!ctx.runtime().aborted()) {
            // Coarse ticks so the spinner catches up with the parked
            // main in few turns.
            ctx.detTick(1000);
            ctx.acquireTurn();
        }
    });
    parkMain(rt);
    while (entered.load(std::memory_order_acquire) < 3)
        std::this_thread::yield();

    auto [a, b] = spawnRacerPair(rt, x, 100);
    rt.join(rt.mainContext(), spinner);
    rt.join(rt.mainContext(), condWaiter);
    rt.join(rt.mainContext(), barrierWaiter);
    rt.join(rt.mainContext(), a);
    rt.join(rt.mainContext(), b);

    EXPECT_TRUE(rt.raceOccurred());
    EXPECT_EQ(unwound.load(), 2); // cond + barrier; spinner exits cleanly
    EXPECT_FALSE(rt.deadlockOccurred());
    EXPECT_LT(timer.elapsedSeconds(), kWatchdogMs / 1000.0);
}

} // namespace
} // namespace clean
