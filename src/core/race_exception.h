/**
 * @file
 * The race exception CLEAN throws when a WAW or RAW race occurs (§3.1).
 */

#ifndef CLEAN_CORE_RACE_EXCEPTION_H
#define CLEAN_CORE_RACE_EXCEPTION_H

#include <exception>
#include <string>

#include "support/common.h"

namespace clean
{

/** Kind of data race. CLEAN throws only for Waw and Raw; War is the kind
 *  deliberately left undetected (full precise detectors report it too). */
enum class RaceKind { Waw, Raw, War };

/** Human-readable name of a RaceKind. */
inline const char *
raceKindName(RaceKind kind)
{
    switch (kind) {
      case RaceKind::Waw: return "write-after-write";
      case RaceKind::Raw: return "read-after-write";
      case RaceKind::War: return "write-after-read";
    }
    return "?";
}

/**
 * Thrown by the CLEAN runtime the moment a WAW or RAW race occurs; the
 * racy access has not yet taken effect (write checks precede the write),
 * so the exception stops the execution before any out-of-thin-air value
 * can be produced or observed.
 */
class RaceException : public std::exception
{
  public:
    /** `siteIndex` is the accessor's dynamic access ordinal at the time
     *  of the race and `sfrOrdinal` the index of its current
     *  synchronization-free region (both 1-based, 0 = unknown); they let
     *  reports and the recovery quarantine name the racy *site*, not
     *  just a raw address. */
    RaceException(RaceKind kind, Addr addr, ThreadId accessor,
                  ThreadId previousWriter, ClockValue previousClock,
                  std::uint64_t siteIndex = 0, std::uint64_t sfrOrdinal = 0)
        : kind_(kind), addr_(addr), accessor_(accessor),
          previousWriter_(previousWriter), previousClock_(previousClock),
          siteIndex_(siteIndex), sfrOrdinal_(sfrOrdinal)
    {
        message_ = std::string(raceKindName(kind_)) + " race at address " +
                   std::to_string(addr_) + ": thread " +
                   std::to_string(accessor_) +
                   " conflicts with write by thread " +
                   std::to_string(previousWriter_) + " @ clock " +
                   std::to_string(previousClock_) + " at site " +
                   std::to_string(siteIndex_) + " in SFR " +
                   std::to_string(sfrOrdinal_);
    }

    const char *what() const noexcept override { return message_.c_str(); }

    RaceKind kind() const { return kind_; }
    Addr addr() const { return addr_; }
    ThreadId accessor() const { return accessor_; }
    ThreadId previousWriter() const { return previousWriter_; }
    ClockValue previousClock() const { return previousClock_; }
    std::uint64_t siteIndex() const { return siteIndex_; }
    std::uint64_t sfrOrdinal() const { return sfrOrdinal_; }

  private:
    RaceKind kind_;
    Addr addr_;
    ThreadId accessor_;
    ThreadId previousWriter_;
    ClockValue previousClock_;
    std::uint64_t siteIndex_;
    std::uint64_t sfrOrdinal_;
    std::string message_;
};

} // namespace clean

#endif // CLEAN_CORE_RACE_EXCEPTION_H
