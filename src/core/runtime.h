/**
 * @file
 * CleanRuntime — the software-only CLEAN system (§3, §4).
 *
 * The runtime combines:
 *   - precise WAW/RAW race detection (RaceChecker over a shadow backend),
 *   - Kendo deterministic synchronization (det::Kendo),
 *   - deterministic clock-rollover resets (RolloverController),
 *   - thread lifecycle with deterministic, reusable thread ids.
 *
 * Application code runs inside runtime-managed threads and performs all
 * potentially-shared accesses through its ThreadContext — the library
 * analogue of the paper's compiler instrumentation. Synchronization goes
 * through CleanMutex / CleanCondVar / CleanBarrier (sync_objects.h).
 *
 * When any thread detects a WAW or RAW race it throws RaceException and
 * the runtime raises a global abort flag so sibling threads unwind
 * promptly (ExecutionAborted) instead of waiting on the dead thread —
 * the library form of "the execution stops" (§3.1).
 */

#ifndef CLEAN_CORE_RUNTIME_H
#define CLEAN_CORE_RUNTIME_H

#include <atomic>
#include <chrono>
#include <cstring>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/async_checker.h"
#include "core/epoch.h"
#include "core/linear_shadow.h"
#include "core/race_check.h"
#include "core/race_exception.h"
#include "core/rollover.h"
#include "core/shared_heap.h"
#include "core/sparse_shadow.h"
#include "core/thread_state.h"
#include "det/kendo.h"
#include "inject/injection.h"
#include "obs/flight_recorder.h"
#include "recover/undo_log.h"
#include "support/common.h"
#include "support/deadlock_error.h"
#include "support/logging.h"
#include "support/stats.h"

namespace clean
{

class CleanRuntime;
class ThreadContext;
class CleanBarrier;
class RecoveryToken;

namespace recover
{
class RecoveryManager;
}

namespace obs
{
class RecordSink;
class SamplingGovernor;
}

namespace det
{
class ReplayDriver;
}

/** Shadow backend selection. */
enum class ShadowKind { Linear, Sparse };

/**
 * What happens when a WAW/RAW race is detected (§3.1 vs degraded modes).
 *
 *   Throw  — the paper's semantics: the racing thread throws
 *            RaceException before the racy write takes effect and the
 *            whole execution aborts.
 *   Report — TSan-style degraded mode: every race is logged and counted,
 *            execution continues. Detection keeps running, so later racy
 *            accesses are reported too.
 *   Count  — like Report without the per-race log line; only the counter
 *            and the failure report record the races.
 *
 * In Report/Count the racy write does take effect (its epoch publish is
 * skipped, exactly as if the check had not fired), so the "no out-of-
 * thin-air values" guarantee is deliberately given up — that is the
 * degradation.
 *
 *   Recover — SFR rollback + deterministic re-execution (ISSUE 3): the
 *            victim SFR's data writes and republished epochs are rolled
 *            back from a per-thread undo log, then re-executed serialized
 *            under a Kendo-ordered recovery token. Sites racing more than
 *            RuntimeConfig::maxRecoveries times are quarantined and
 *            degrade to Report semantics (named in failureReportJson).
 */
enum class OnRacePolicy { Throw, Report, Count, Recover };

const char *onRacePolicyName(OnRacePolicy policy);

/** Top-level configuration of a CleanRuntime. */
struct RuntimeConfig
{
    EpochConfig epoch;
    /** Slot-table capacity; live threads never exceed this. */
    ThreadId maxThreads = 64;
    /** Enable WAW/RAW race detection. */
    bool detection = true;
    /** Enable Kendo deterministic synchronization. */
    bool deterministic = true;
    /** Enable the §4.4 multi-byte vectorized check. */
    bool vectorized = true;
    /** Enable the software fast path for the Fig. 2 check (same-epoch
     *  SIMD scan + skip-republish; see CheckerConfig::fastPath). */
    bool fastPath = true;
    /** Enable the per-thread ownership cache above the fast path
     *  (zero-shadow-traffic owned-line hits; see
     *  CheckerConfig::ownCache and OwnershipCache). */
    bool ownCache = true;
    /**
     * Batched SFR-boundary read checking (§14; CheckerConfig::batch,
     * `--no-batch`): read checks append to a per-thread run buffer the
     * runtime drains at every SFR boundary (and on overflow), turning
     * per-access shadow probes into one prefetched wide-SIMD walk per
     * coalesced run. The runtime disables it automatically under
     * `--on-race=recover` (recovery re-executes from the faulting
     * access, which requires race-at-access precision) and whenever
     * fault injection is armed (injected skips/kills are defined
     * against inline checks).
     */
    bool batch = true;
    /** Buffered data bytes that force an in-place overflow drain
     *  (`--batch-bytes`; CheckerConfig::batchBytes). */
    std::size_t batchBytes = std::size_t{1} << 16;
    /**
     * Retire batched drains on a dedicated checker thread
     * (`--async-check`, DESIGN.md §16): SFR boundaries hand the full
     * run buffer to an AsyncChecker over a per-thread SPSC ring and
     * block until it completes — still strictly before the boundary's
     * turn wait, so soundness, report identity (site + SFR ordinal)
     * and record/replay byte-identity are unchanged (the flag is
     * deliberately absent from the .cleantrace header). Requires
     * batching to survive its own gates (off under Recover/injection);
     * off by default.
     */
    bool asyncCheck = false;
    AtomicityMode atomicity = AtomicityMode::Cas;
    ShadowKind shadow = ShadowKind::Linear;
    /** Checking granule (log2 bytes): 0 = per byte (sound for C/C++),
     *  2 = per 4-byte word (the §3.2 type-safe specialization). */
    unsigned granuleLog2 = 0;
    /**
     * Deterministic events per Kendo counter publication. The paper's
     * implementation increments counters per instrumented basic block
     * above a size cutoff (§6.2.1); larger chunks cost less but track
     * thread progress less precisely, lengthening turn waits for
     * imbalanced threads.
     */
    std::uint32_t detChunk = 1;
    SharedHeapConfig heap;
    /**
     * Clocks at or above maxClock() - rolloverMargin trigger a reset at
     * the next sync point. The margin covers the handful of ticks a
     * single synchronization operation can perform.
     */
    ClockValue rolloverMargin = 8;
    /**
     * Watchdog bound on every blocking wait (Kendo turn waits, condition
     * and barrier waits, the join handshake, lock retry loops): a wait
     * longer than this throws a structured DeadlockError instead of
     * spinning forever. Must exceed the longest legitimate wait — i.e.
     * the longest SFR / compute phase of the workload. 0 disables the
     * watchdog (pre-hardening behaviour).
     */
    std::uint64_t watchdogMs = 10000;
    /** Race response policy; see OnRacePolicy. */
    OnRacePolicy onRace = OnRacePolicy::Throw;
    /** Recover policy: admitted recovery episodes per racy site before
     *  the site is quarantined (further races there degrade to Report).
     *  0 quarantines on first contact. */
    std::uint32_t maxRecoveries = 8;
    /** Recover policy: per-thread SFR undo log capacity in entries; an
     *  SFR that outgrows it becomes ineligible for rollback. */
    std::size_t undoLogEntries = std::size_t{1} << 16;
    /**
     * Overhead-budget SLO mode (§15, `--overhead-budget`): target
     * percentage of *controllable* checking overhead. 0 disables the
     * sampling tier entirely; 100 means "no budget" and is normalized
     * to off as well, so `--overhead-budget=100` is bit-identical to an
     * unbudgeted run by construction. In between, a per-thread
     * deterministic gate (core/sampling.h) sheds read checks and an
     * adaptive governor (obs/governor.h) steers the shed rate so the
     * measured overhead tracks the budget. Write checks are never shed
     * — shedding stays sound (reads never update metadata), it only
     * trades RAW detection probability for speed.
     */
    std::uint32_t overheadBudget = 0;
    /** Sampling-gate tunables (seed, window, burst, region, strikes).
     *  `base` and `initialLevel` are derived by the runtime (shared-heap
     *  base; sampleForceLevel). */
    SampleParams sample;
    /** Calibration cadence: every 2^sampleCalibLog2-th SFR of a thread
     *  sheds all reads, giving the governor its floor-cost samples.
     *  0 disables calibration (the governor then never engages). */
    unsigned sampleCalibLog2 = 6;
    /** Test/bench knob: pin the admission level (0..SampleGate::
     *  kMaxLevel) and disable governor adoption and calibration;
     *  -1 = governed (the production mode). */
    std::int32_t sampleForceLevel = -1;
    /** Deterministic fault injection (chaos harness); disabled unless
     *  inject.any(). */
    inject::InjectionConfig inject;
    /** Flight-recorder observability layer (ISSUE 4); off by default —
     *  no recorder is built and the hot path keeps one never-taken
     *  branch. Ignored when compiled out (CMake -DCLEAN_OBS=OFF). */
    obs::ObsConfig obs;
    /**
     * Record sink (ISSUE 6): when set, the runtime forces the flight
     * recorder on (with latency sampling off — physical time would
     * break byte-identical metrics) and streams every event into the
     * sink. Not owned; must outlive the runtime. Requires
     * `deterministic` — the recorded turn order IS the trace.
     */
    obs::RecordSink *recordSink = nullptr;
    /**
     * Replay driver (ISSUE 6): when set, Kendo turn grants are
     * re-driven from the loaded trace and the event stream is validated
     * against it; any disagreement raises a structured TraceError
     * (support/trace_error.h) instead of hanging or silently diverging.
     * Not owned. Mutually exclusive with `recordSink`.
     */
    det::ReplayDriver *replayDriver = nullptr;
};

/** Thrown in sibling threads after some thread raised a RaceException. */
class ExecutionAborted : public std::exception
{
  public:
    const char *
    what() const noexcept override
    {
        return "execution aborted: a race exception occurred in another "
               "thread";
    }
};

/** Handle to a runtime-spawned thread; join through the spawning ctx. */
class ThreadHandle
{
  public:
    ThreadHandle() = default;
    explicit ThreadHandle(std::uint32_t record) : record_(record) {}

    bool valid() const { return record_ != kInvalid; }
    std::uint32_t record() const { return record_; }

  private:
    static constexpr std::uint32_t kInvalid = ~std::uint32_t{0};
    std::uint32_t record_ = kInvalid;
};

/**
 * Per-thread façade through which application code touches shared
 * memory. read()/write() implement the §4.3 ordering: the write check
 * (with its CAS epoch publish) runs *before* the store; the read check
 * runs immediately *after* the load.
 */
class ThreadContext
{
  public:
    ThreadContext(CleanRuntime &rt, ThreadId tid, std::uint32_t record);

    ThreadContext(const ThreadContext &) = delete;
    ThreadContext &operator=(const ThreadContext &) = delete;

    ThreadId tid() const { return state_->tid; }
    ThreadState &state() { return *state_; }
    const ThreadState &state() const { return *state_; }
    CleanRuntime &runtime() { return rt_; }
    std::uint32_t record() const { return record_; }

    /** Deterministic counter of this thread (Kendo). */
    det::DetCount detCount() const;

    /** Instrumented load of a shared scalar. The slow branch covers
     *  both fault injection and the Recover undo log; with neither
     *  armed the path is branch-for-branch identical to the PR-2 fast
     *  path (one abort poll + one unlikely slow-access branch). */
    template <typename T>
    T
    read(const T *p)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value;
        if (CLEAN_UNLIKELY(slowAccess_)) {
            readSlow(reinterpret_cast<Addr>(p), &value, sizeof(T));
            return value;
        }
        std::memcpy(&value, p, sizeof(T));
        // Compiler barrier: the check must observe metadata no older
        // than the data load (x86-TSO gives the hardware ordering).
        asm volatile("" ::: "memory");
        onReadChecked(reinterpret_cast<Addr>(p), sizeof(T));
        return value;
    }

    /** Instrumented store of a shared scalar. */
    template <typename T>
    void
    write(T *p, T value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        if (CLEAN_UNLIKELY(slowAccess_)) {
            writeSlow(reinterpret_cast<Addr>(p), &value, sizeof(T));
            return;
        }
        onWriteChecked(reinterpret_cast<Addr>(p), sizeof(T));
        asm volatile("" ::: "memory");
        std::memcpy(p, &value, sizeof(T));
    }

    /** Instrumented read-modify-write convenience (load, f, store). */
    template <typename T, typename F>
    void
    update(T *p, F f)
    {
        write(p, f(read(p)));
    }

    /** Range check for bulk reads (memcpy-in); call after copying.
     *  Defined inline below CleanRuntime so the whole per-access chain
     *  (Worker::read -> ThreadContext::read -> onRead -> checkRead ->
     *  RaceChecker fast path) collapses into one direct inlined call
     *  with no out-of-line hop. */
    void onRead(Addr addr, std::size_t size);

    /** Range check for bulk writes (memcpy-out); call before writing.
     *  Inline; see onRead. */
    void onWrite(Addr addr, std::size_t size);

    /** Counts @p n deterministic events (compute not visible as access). */
    void detTick(std::uint64_t n = 1);

    /**
     * Acquires this thread's deterministic turn: polls rollover parking
     * and spins until (detCount, tid) is the global minimum. Called by
     * sync objects; public so custom synchronization can be built on it.
     */
    void acquireTurn();

    /** Rollover poll only (used inside blocking retries). */
    void pollRollover();

    /**
     * Retires this thread's deferred read checks (§14 batched
     * checking), applying the runtime's on-race policy to every race
     * found: under Throw the first race propagates (after recording);
     * under Report/Count all races are recorded and the drain runs to
     * completion. No-op when batching is off or nothing is buffered.
     * Runs automatically at every SFR boundary (acquireTurn) and
     * before rollover parking; public so tests and custom sync can
     * force a boundary.
     */
    void drainBatch();

    /**
     * Injection hook for lock acquisitions: true when the configured
     * plan drops this acquire's happens-before join (a simulated
     * missed-instrumentation fault). Always false without injection.
     */
    bool injectSkipAcquire();

    /** Flight-recorder hooks for sync objects (no-ops unless the
     *  observability layer is enabled): lock acquired / released. */
    void obsSyncAcquire();
    void obsSyncRelease();

  private:
    friend class CleanRuntime;

    /** Out-of-line bulk access paths (injection and/or recovery). */
    void onReadSlow(Addr addr, std::size_t size);
    void onWriteSlow(Addr addr, std::size_t size);

    /** Checked scalar access bodies shared by the fast path; inline
     *  below CleanRuntime. */
    void onReadChecked(Addr addr, std::size_t size);
    void onWriteChecked(Addr addr, std::size_t size);

    /** Out-of-line scalar access paths, taken when injection or the
     *  Recover undo log is armed (slowAccess_). They perform the data
     *  movement themselves: the write path must be able to complete the
     *  pending store via replay instead of the caller's memcpy, and the
     *  read path must be able to re-load after a recovery. */
    void readSlow(Addr addr, void *bytes, std::size_t size);
    void writeSlow(Addr addr, const void *bytes, std::size_t size);

    /** Appends a read entry to the undo log (replay validation). */
    void logRead(Addr addr, const void *bytes, std::size_t size);

    /**
     * One recovery episode (ISSUE 3): roll the current SFR back,
     * acquire the Kendo-ordered recovery token, re-execute the SFR from
     * the log, bounded retries, forced final attempt. Returns false when
     * the episode is inadmissible (no log, poisoned log, quarantined
     * site) — the caller then degrades to recordRace.
     */
    bool recoverAccess(const RaceException &race, Addr addr, void *bytes,
                       std::size_t size, bool isWrite);

    /** Joins the conflicting epoch into our vector clock so the replay
     *  orders the victim SFR after the racing write. */
    void absorbRaceEpoch(const RaceException &race);

    /** Retracts the first @p count log entries' writes (reverse order):
     *  restore data bytes, then CAS our republished epochs back. */
    void rollbackWrites(std::size_t count);

    /** Re-applies the logged SFR under the recovery token. Returns false
     *  on read-validation mismatch (a concurrent writer changed an SFR
     *  input); throws RaceException on a nested race. Both roll back the
     *  applied prefix first. @p forced skips checks and validation. */
    bool replaySfr(bool forced);

    /** Kill-thread supervision (Recover): rolls back the open SFR,
     *  retires this thread from barriers and takes a final no-injection
     *  turn so the Kendo order is not wedged by the dead slot. */
    void retireAfterKill();

    /** Publishes batched deterministic events to the Kendo counter. */
    void flushDetEvents();

    /** The Kendo turn wait shared by acquireTurn and retireAfterKill:
     *  spins on the turn predicate (schedule-checked under replay) with
     *  abort polling, rollover parking and the watchdog, and records
     *  the TurnGrant event once granted. */
    void turnWait(const char *where);

    /** Injection checks at a shared-access site; throws ThreadKilled on
     *  a kill coordinate, returns true when the race check is skipped. */
    bool injectAtAccess();

    /** Injection checks at a synchronization site (delay / rollover /
     *  kill). */
    void injectAtSync();

    /** Out-of-line bodies of onReadChecked/onWriteChecked when the
     *  flight recorder is enabled: identical check semantics plus
     *  sampled check-latency timing (ObsConfig::latencySampleEvery). */
    void onReadObs(Addr addr, std::size_t size);
    void onWriteObs(Addr addr, std::size_t size);

    /** This thread's Kendo counter — the deterministic event stamp. */
    std::uint64_t obsDetNow() const;

    /** Appends one event to this thread's lane (caller checks
     *  obsLane_). */
    void obsEvent(obs::EventKind kind, std::uint64_t arg0 = 0,
                  std::uint64_t arg1 = 0);

    /** SFR boundary bookkeeping at a sync point: SfrEnd + SfrBegin
     *  events and the SFR-length histogram. */
    void obsSfrBoundary();

    /** Sampling tier (§15): reports the ended SFR's work interval
     *  (reads retired, wall ns, calibration flag) to the governor.
     *  Runs *before* the turn wait so estimates never include wait
     *  time. No-op on replay and under a forced level. */
    void sampleReport();

    /** Sampling tier boundary bookkeeping, after the SFR boundary
     *  completed: emits SampleShed / SampleQuarantine lane events,
     *  adopts the admission level (governor-published when recording,
     *  peeked from the trace when replaying), and arms the new SFR's
     *  calibration flag and work timer. */
    void sampleAdopt();

    CleanRuntime &rt_;
    std::uint32_t record_;
    ThreadState *state_;
    /** Deterministic events not yet published (see detChunk). */
    std::uint64_t pendingDetEvents_ = 0;
    std::uint32_t detChunk_ = 1;
    /** Fault plan (null when injection is off) and this thread's
     *  injection-site counter — the coordinate stream. */
    inject::InjectionPlan *plan_ = nullptr;
    std::uint64_t injectCoord_ = 0;
    /** This thread's SFR undo log (null unless OnRacePolicy::Recover
     *  with byte granularity); owned by the ThreadRecord. */
    recover::SfrLog *log_ = nullptr;
    /** Cached `plan_ != nullptr || log_ != nullptr`: the single
     *  fast-path branch covering both out-of-line access reasons. */
    bool slowAccess_ = false;
    /** This thread's flight-recorder lane; null unless the runtime
     *  built a recorder (RuntimeConfig::obs.enabled with CLEAN_OBS
     *  compiled in). The tracing-off hot path costs exactly this one
     *  never-taken null check. */
    obs::ThreadLane *obsLane_ = nullptr;
    /** Kendo stamp of the current SFR's begin (SFR-length histogram). */
    std::uint64_t obsSfrStartDet_ = 0;
    /** Countdown to the next sampled check latency. */
    std::uint32_t obsSampleCountdown_ = 0;
    /** --overhead-budget sampling tier armed (cached; §15). */
    bool sampling_ = false;
    /** True when the governor consumes this thread's measurements —
     *  recording/normal governed runs only; replays adopt recorded
     *  levels and forced-level runs never adapt. */
    bool sampleMeasure_ = false;
    /** stats.sharedReads / stats.shedReads at the last SFR boundary
     *  (per-interval deltas for governor reports and SampleShed). */
    std::uint64_t sampleLastReads_ = 0;
    std::uint64_t sampleLastSheds_ = 0;
    /** Wall stamp of the current SFR's work start (re-stamped after
     *  every turn wait, so intervals exclude waiting). */
    std::chrono::steady_clock::time_point sampleSfrStart_{};
};

/** Final record of a spawned thread, consumed at join. */
struct ThreadRecord
{
    enum class Phase : int { Unused, Running, Parked, Blocked, Finished };

    std::atomic<Phase> phase{Phase::Unused};
    ThreadId tid = 0;
    std::unique_ptr<ThreadState> state;
    std::unique_ptr<std::thread> osThread;
    std::exception_ptr error;
    det::DetCount finalDetCount = 0;
    /** Serializes the finish/join handshake (no unblock window). */
    std::mutex joinMutex;
    /** Set under joinMutex once the body finished. */
    bool done = false;
    /** Tid of a joiner blocked on this record, -1 if none. */
    std::int32_t joinerTid = -1;
    /** Raised (release) when the joiner may resume. */
    std::atomic<bool> joinFlag{false};
    /** SFR undo log (OnRacePolicy::Recover only; see recover/). */
    std::unique_ptr<recover::SfrLog> sfrLog;
};

/** The software-only CLEAN system. */
class CleanRuntime : private RolloverHost
{
  public:
    explicit CleanRuntime(const RuntimeConfig &config = {});
    ~CleanRuntime() override;

    CleanRuntime(const CleanRuntime &) = delete;
    CleanRuntime &operator=(const CleanRuntime &) = delete;

    const RuntimeConfig &config() const { return config_; }
    SharedHeap &heap() { return *heap_; }
    det::Kendo &kendo() { return *kendo_; }
    RolloverController &rollover() { return rollover_; }

    /** The implicitly-registered main thread's context (tid 0). */
    ThreadContext &mainContext() { return *mainCtx_; }

    /**
     * Spawns a thread running @p body. A synchronization (fork) event:
     * deterministic turn, deterministic tid assignment, vector-clock
     * fork semantics.
     */
    ThreadHandle spawn(ThreadContext &parent,
                       std::function<void(ThreadContext &)> body);

    /**
     * Joins a spawned thread: blocks deterministically, absorbs the
     * child's vector clock, recycles its tid. Rethrows nothing — a
     * child's RaceException is recorded; query via takeError() or
     * raceOccurred().
     */
    void join(ThreadContext &parent, ThreadHandle handle);

    /** True once any thread raised (or, in degraded modes, reported) a
     *  RaceException. */
    bool
    raceOccurred() const
    {
        return raceCount_.load(std::memory_order_acquire) > 0;
    }

    /** True once the execution is unwinding: a race under the Throw
     *  policy, a watchdog deadlock, or an unexpected exception. */
    bool
    aborted() const
    {
        return abortFlag_.load(std::memory_order_acquire);
    }

    /** Number of races recorded so far (equals 1 under Throw). */
    std::uint64_t
    raceCount() const
    {
        return raceCount_.load(std::memory_order_acquire);
    }

    /** First recorded race, if any (valid when raceOccurred()). */
    const RaceException *firstRace() const;

    /** True once a watchdog converted a stuck wait into DeadlockError. */
    bool deadlockOccurred() const;

    /** First recorded deadlock, if any. */
    const DeadlockError *firstDeadlock() const;

    /** Fault plan of this run, null when injection is off. */
    inject::InjectionPlan *injectionPlan() { return injectPlan_.get(); }

    /** Flight recorder; null unless RuntimeConfig::obs.enabled (and
     *  CLEAN_OBS compiled in). */
    obs::FlightRecorder *recorder() const { return recorder_.get(); }

    /** Replay driver of this run; null outside a replay. */
    det::ReplayDriver *replayDriver() const { return config_.replayDriver; }

    /**
     * Full merged event stream as Chrome trace-event JSON (Perfetto /
     * chrome://tracing). Timestamps are Kendo counters, so the trace of
     * a deterministic run is byte-identical run-to-run. Empty without a
     * recorder.
     */
    std::string obsTraceJson() const;

    /**
     * Structured metrics snapshot: counters (checker incl. replayed,
     * races, recovery, injection, rollovers) plus histograms (SFR
     * length in det events, sampled check latency in ns, retained
     * events by kind). The latency histogram is physical time — unlike
     * the event trace this snapshot is NOT byte-stable. Empty without a
     * recorder.
     */
    std::string metricsJson() const;

    /**
     * Machine-readable failure report: races (heap-relative offsets so
     * reports are byte-identical across runs in spite of ASLR), deadlock
     * diagnosis, per-slot deterministic counters, checker stats and
     * injection telemetry. Byte-identical across runs whenever the
     * execution itself is deterministic (any completed Kendo run,
     * including degraded Report/Count runs that continued past races).
     */
    std::string failureReportJson() const;

    /** Number of deterministic metadata resets performed (§4.5). */
    std::uint64_t rolloverResets() const { return rollover_.resets(); }

    /** Merged checker statistics of all threads seen so far. */
    CheckerStats aggregatedCheckerStats() const;

    /** Merged sampling-gate telemetry of all threads (zeros unless the
     *  sampling tier is armed). */
    SampleTelemetry aggregatedSampleTelemetry() const;

    /** Kendo counters of all ever-used slots (determinism experiment). */
    std::vector<det::DetCount> finalDetCounts() const;

    // --- internal API used by ThreadContext and sync objects ---

    /** Performs the read-side race check if addr is checked data. */
    CLEAN_ALWAYS_INLINE void
    checkRead(ThreadState &ts, Addr addr, std::size_t size)
    {
        if (!checkable(addr))
            return;
        if (linearChecker_)
            linearChecker_->afterRead(ts, addr, size);
        else
            sparseChecker_->afterRead(ts, addr, size);
    }

    /** Performs the write-side race check if addr is checked data. */
    CLEAN_ALWAYS_INLINE void
    checkWrite(ThreadState &ts, Addr addr, std::size_t size)
    {
        if (!checkable(addr))
            return;
        if (linearChecker_)
            linearChecker_->beforeWrite(ts, addr, size);
        else
            sparseChecker_->beforeWrite(ts, addr, size);
    }

    /** True iff detection is on and addr is in the checked region. */
    CLEAN_ALWAYS_INLINE bool
    checkable(Addr addr) const
    {
        return detection_ && addr >= checkBase_ && addr < checkEnd_;
    }

    /** Retires every deferred read check in @p ts's batch buffer
     *  (RaceChecker::drainBatch through the active shadow backend).
     *  Throws the first race found; ThreadContext::drainBatch is the
     *  policy-applying wrapper. */
    void
    drainBatch(ThreadState &ts)
    {
        if (linearChecker_)
            linearChecker_->drainBatch(ts);
        else
            sparseChecker_->drainBatch(ts);
    }

    /** True iff the checker is deferring read checks (config gates
     *  applied — see RuntimeConfig::batch). */
    bool
    batchChecking() const
    {
        return linearChecker_ ? linearChecker_->batchEnabled()
                              : sparseChecker_->batchEnabled();
    }

    /** Dedicated drain thread (`--async-check`); null when off (or when
     *  batching lost its config gates, which async inherits). */
    AsyncChecker *asyncChecker() { return asyncChecker_.get(); }

    /** Completed async drain handoffs; 0 when `--async-check` is off.
     *  Diagnostic only — deliberately not part of CheckerStats so async
     *  on/off metrics stay byte-identical. */
    std::uint64_t
    asyncDrains() const
    {
        return asyncChecker_ ? asyncChecker_->drains() : 0;
    }

    /**
     * Records a detected race. Returns true when the caller must
     * propagate the exception (OnRacePolicy::Throw — the abort flag is
     * raised); in the degraded Report/Count modes the race is
     * logged/counted and false tells the caller to continue. Under
     * Recover this is reached only for inadmissible episodes (poisoned
     * log, quarantined site) and behaves like Report.
     */
    bool recordRace(const RaceException &race);

    /** Records a race that is being *recovered* (log + counter only, no
     *  policy action — recordRace would double-report it). */
    void noteRace(const RaceException &race);

    /** True iff the --overhead-budget sampling tier is armed. */
    bool samplingEnabled() const { return sampling_; }

    /** Sampling governor; null unless samplingEnabled(). */
    obs::SamplingGovernor *samplingGovernor() const
    {
        return governor_.get();
    }

    /** True iff @p sfrOrdinal is a calibration SFR (all reads shed to
     *  sample the instrumentation floor; see sampleCalibLog2). */
    bool
    isCalibSfr(std::uint64_t sfrOrdinal) const
    {
        return sampleCalibMask_ != 0 &&
               ((sfrOrdinal + 1) & sampleCalibMask_) == 0;
    }

    /** Recovery ledger; null unless OnRacePolicy::Recover. */
    recover::RecoveryManager *recoveryManager() { return recovery_.get(); }

    /** Global recovery token; null unless OnRacePolicy::Recover. */
    RecoveryToken *recoveryToken() { return recoveryToken_.get(); }

    /** Heap-relative byte offset of @p addr (stable race-site key). */
    Addr heapOffset(Addr addr) const { return addr - checkBase_; }

    /** Shadow slot of one checked byte (byte granularity only); null
     *  when @p addr is not checkable. Used by rollback/replay. */
    EpochValue *
    shadowSlotFor(Addr addr)
    {
        if (!checkable(addr))
            return nullptr;
        if (linearShadow_)
            return linearShadow_->slots(addr);
        return sparseShadow_->slots(addr);
    }

    /** Barrier registry for kill supervision: a supervised dead thread
     *  must retire from every barrier so live parties stop waiting on
     *  its slot. Registration is a no-op outside Recover. */
    void registerBarrier(CleanBarrier *barrier);
    void unregisterBarrier(CleanBarrier *barrier);
    void retireFromBarriers(ThreadContext &ctx);

    /** Records a watchdog deadlock and raises the abort flag so every
     *  sibling wait loop unwinds. */
    void recordDeadlock(const DeadlockError &deadlock);

    /**
     * Builds, records and throws the DeadlockError for a watchdog that
     * fired in @p where after @p waitedMs on thread @p waiter.
     */
    [[noreturn]] void raiseDeadlock(const char *where, ThreadId waiter,
                                    std::uint64_t waitedMs);

    /** Throws ExecutionAborted if another thread raced. */
    CLEAN_ALWAYS_INLINE void
    throwIfAborted() const
    {
        if (CLEAN_UNLIKELY(abortFlag_.load(std::memory_order_relaxed)))
            throw ExecutionAborted();
    }

    /** Ticks @p ts's own clock, refreshing the cached epoch and arming a
     *  rollover when the clock nears its width (§4.5). */
    void tickClock(ThreadState &ts);

    /** Registers a sync object's vector clock for rollover resets. */
    void registerSyncClock(VectorClock *vc);
    void unregisterSyncClock(VectorClock *vc);

    /** Marks the phase of a record (Parked/Blocked/Running). */
    void setPhase(std::uint32_t record, ThreadRecord::Phase phase);

    /**
     * Transition a record from Blocked back to Running. Unlike a plain
     * setPhase this re-checks the rollover flag with seq_cst store-load
     * ordering so a waking thread can never slip past an in-progress
     * metadata reset (the resetter does not wait for Blocked threads).
     */
    void resumeFromBlocked(std::uint32_t record);

    /** Records are append-only and stable behind unique_ptr, but a
     *  concurrent spawn's push_back may reallocate the pointer array
     *  itself — take the registry lock for the lookup. Callers hold
     *  plain references across the call; those stay valid. */
    ThreadRecord &
    recordAt(std::uint32_t idx)
    {
        std::lock_guard<std::mutex> guard(registryMutex_);
        return *records_[idx];
    }

  private:
    // RolloverHost
    bool allOthersQuiescent(ThreadId selfTid) override;
    void performReset() override;

    std::uint32_t allocateRecord(ThreadId tid);
    ThreadId allocateTid(ThreadState &parentView);
    void releaseTid(ThreadId tid, ClockValue finalClock);

    /** Raises the abort flag; under replay also disarms the driver
     *  (post-abort unwind tails are physically timed, not validated). */
    void raiseAbortFlag();

    void threadMain(std::uint32_t record,
                    std::function<void(ThreadContext &)> body);

    /** Records a RaceDetected event on the accessor's lane. */
    void obsRaceDetected(const RaceException &race);

    RuntimeConfig config_;
    bool detection_;
    Addr checkBase_ = 0;
    Addr checkEnd_ = 0;

    std::unique_ptr<SharedHeap> heap_;
    std::unique_ptr<LinearShadow> linearShadow_;
    std::unique_ptr<SparseShadow> sparseShadow_;
    std::unique_ptr<RaceChecker<LinearShadow>> linearChecker_;
    std::unique_ptr<RaceChecker<SparseShadow>> sparseChecker_;
    std::unique_ptr<det::Kendo> kendo_;
    RolloverController rollover_;

    mutable std::mutex registryMutex_;
    std::vector<std::unique_ptr<ThreadRecord>> records_;
    std::vector<ThreadId> freeTids_;
    /** Next never-used tid (0 is the main thread). */
    ThreadId nextFreshTid_ = 1;
    /** Highest clock a previous holder of each tid reached (reuse). */
    std::vector<ClockValue> lastClock_;
    std::vector<VectorClock *> syncClocks_;
    std::vector<det::DetCount> retiredDetCounts_;

    /** --overhead-budget sampling tier (§15): armed flag, the params
     *  every gate is configured with (base = shared-heap base), the
     *  calibration-SFR mask (0 = calibration off) and the governor. */
    bool sampling_ = false;
    SampleParams sampleParams_;
    std::uint64_t sampleCalibMask_ = 0;
    std::unique_ptr<obs::SamplingGovernor> governor_;

    /** Dedicated drain thread (`--async-check`); null when off. Stopped
     *  explicitly at the top of ~CleanRuntime, before anything it
     *  touches (checkers, shadow, records) is torn down. */
    std::unique_ptr<AsyncChecker> asyncChecker_;
    std::unique_ptr<ThreadContext> mainCtx_;
    std::unique_ptr<inject::InjectionPlan> injectPlan_;
    std::unique_ptr<obs::FlightRecorder> recorder_;
    std::unique_ptr<recover::RecoveryManager> recovery_;
    std::unique_ptr<RecoveryToken> recoveryToken_;
    mutable std::mutex barrierMutex_;
    std::vector<CleanBarrier *> barriers_;

    std::atomic<bool> abortFlag_{false};
    std::atomic<std::uint64_t> raceCount_{0};
    mutable std::mutex raceMutex_;
    /** First kMaxReportedRaces races, in recording order (report cap). */
    std::vector<RaceException> races_;
    std::unique_ptr<DeadlockError> firstDeadlock_;

    static constexpr std::size_t kMaxReportedRaces = 64;
};

// ---------------------------------------------------------------------
// ThreadContext hot-path access hooks.
//
// Defined here (after CleanRuntime) so the common no-injection case is a
// direct inlined call into the checker's fast path; only the injection
// branch leaves the header (onReadSlow/onWriteSlow in runtime.cc).
// ---------------------------------------------------------------------

inline void
ThreadContext::onReadChecked(Addr addr, std::size_t size)
{
    rt_.throwIfAborted();
    // The whole observability layer hangs off this one never-taken
    // branch on a cached member: with tracing off, the path below is
    // byte-for-byte the PR-2 fast path.
    if (CLEAN_UNLIKELY(obsLane_ != nullptr)) {
        onReadObs(addr, size);
        return;
    }
    try {
        rt_.checkRead(*state_, addr, size);
    } catch (const RaceException &race) {
        if (rt_.recordRace(race))
            throw;
    }
    if (++pendingDetEvents_ >= detChunk_)
        flushDetEvents();
}

inline void
ThreadContext::onWriteChecked(Addr addr, std::size_t size)
{
    rt_.throwIfAborted();
    if (CLEAN_UNLIKELY(obsLane_ != nullptr)) {
        onWriteObs(addr, size);
        return;
    }
    try {
        rt_.checkWrite(*state_, addr, size);
    } catch (const RaceException &race) {
        if (rt_.recordRace(race))
            throw;
    }
    if (++pendingDetEvents_ >= detChunk_)
        flushDetEvents();
}

inline void
ThreadContext::onRead(Addr addr, std::size_t size)
{
    if (CLEAN_UNLIKELY(slowAccess_)) {
        rt_.throwIfAborted();
        onReadSlow(addr, size);
        return;
    }
    onReadChecked(addr, size);
}

inline void
ThreadContext::onWrite(Addr addr, std::size_t size)
{
    if (CLEAN_UNLIKELY(slowAccess_)) {
        rt_.throwIfAborted();
        onWriteSlow(addr, size);
        return;
    }
    onWriteChecked(addr, size);
}

} // namespace clean

#endif // CLEAN_CORE_RUNTIME_H
