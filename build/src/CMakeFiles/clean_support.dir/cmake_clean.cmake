file(REMOVE_RECURSE
  "CMakeFiles/clean_support.dir/support/logging.cc.o"
  "CMakeFiles/clean_support.dir/support/logging.cc.o.d"
  "CMakeFiles/clean_support.dir/support/options.cc.o"
  "CMakeFiles/clean_support.dir/support/options.cc.o.d"
  "CMakeFiles/clean_support.dir/support/stats.cc.o"
  "CMakeFiles/clean_support.dir/support/stats.cc.o.d"
  "libclean_support.a"
  "libclean_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clean_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
