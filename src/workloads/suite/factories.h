/**
 * @file
 * Factory declarations for every workload kernel in the suite.
 *
 * Registration is explicit (registry.cc lists these) rather than via
 * static initializers, which archive linking would silently drop.
 */

#ifndef CLEAN_WORKLOADS_SUITE_FACTORIES_H
#define CLEAN_WORKLOADS_SUITE_FACTORIES_H

#include <memory>

#include "workloads/workload.h"

namespace clean::wl::suite
{

// SPLASH-2
std::unique_ptr<Workload> makeBarnes();
std::unique_ptr<Workload> makeCholesky();
std::unique_ptr<Workload> makeFft();
std::unique_ptr<Workload> makeFmm();
std::unique_ptr<Workload> makeLuCb();
std::unique_ptr<Workload> makeLuNcb();
std::unique_ptr<Workload> makeOceanCp();
std::unique_ptr<Workload> makeOceanNcp();
std::unique_ptr<Workload> makeRadiosity();
std::unique_ptr<Workload> makeRadix();
std::unique_ptr<Workload> makeRaytrace();
std::unique_ptr<Workload> makeVolrend();
std::unique_ptr<Workload> makeWaterNsq();
std::unique_ptr<Workload> makeWaterSp();

// PARSEC
std::unique_ptr<Workload> makeBlackscholes();
std::unique_ptr<Workload> makeBodytrack();
std::unique_ptr<Workload> makeCanneal();
std::unique_ptr<Workload> makeDedup();
std::unique_ptr<Workload> makeFacesim();
std::unique_ptr<Workload> makeFerret();
std::unique_ptr<Workload> makeFluidanimate();
std::unique_ptr<Workload> makeRaytraceP();
std::unique_ptr<Workload> makeStreamcluster();
std::unique_ptr<Workload> makeSwaptions();
std::unique_ptr<Workload> makeVips();
std::unique_ptr<Workload> makeX264();

} // namespace clean::wl::suite

#endif // CLEAN_WORKLOADS_SUITE_FACTORIES_H
