file(REMOVE_RECURSE
  "libclean_sim.a"
)
