/**
 * @file
 * Suite-wide workload tests, parameterized over all 26 benchmarks:
 * the library form of the paper's §6.2.2 experiment.
 *
 *   - race-free variants run to completion under full CLEAN (no
 *     exception) and give identical results across repeated runs;
 *   - racy variants (the 17 benchmarks the paper found racy) always end
 *     with a race exception;
 *   - native execution works for every kernel.
 */

#include <gtest/gtest.h>

#include "workloads/registry.h"
#include "workloads/runner.h"

namespace clean::wl
{
namespace
{

RunSpec
baseSpec(const std::string &name, BackendKind backend, bool racy = false)
{
    RunSpec spec;
    spec.workload = name;
    spec.backend = backend;
    spec.params.threads = 4;
    spec.params.scale = Scale::Test;
    spec.params.racy = racy;
    spec.params.seed = 12345;
    spec.runtime.maxThreads = 32;
    spec.runtime.heap.sharedBytes = std::size_t{256} << 20;
    spec.runtime.heap.privateBytes = std::size_t{64} << 20;
    return spec;
}

class AllWorkloads : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AllWorkloads, RegisteredWithMetadata)
{
    Workload &w = findWorkload(GetParam());
    EXPECT_STREQ(w.name(), GetParam().c_str());
    EXPECT_TRUE(std::string(w.suite()) == "splash2" ||
                std::string(w.suite()) == "parsec");
}

TEST_P(AllWorkloads, RunsNatively)
{
    const auto result =
        runWorkload(baseSpec(GetParam(), BackendKind::Native));
    EXPECT_FALSE(result.raceException);
    EXPECT_GT(result.reads + result.writes, 0u);
}

TEST_P(AllWorkloads, RaceFreeVariantCompletesUnderClean)
{
    const auto result =
        runWorkload(baseSpec(GetParam(), BackendKind::Clean));
    EXPECT_FALSE(result.raceException)
        << "false positive: " << result.raceMessage;
    EXPECT_GT(result.reads + result.writes, 0u);
}

TEST_P(AllWorkloads, CleanRunsAreDeterministic)
{
    const auto a = runWorkload(baseSpec(GetParam(), BackendKind::Clean));
    const auto b = runWorkload(baseSpec(GetParam(), BackendKind::Clean));
    ASSERT_FALSE(a.raceException);
    ASSERT_FALSE(b.raceException);
    EXPECT_TRUE(a.fingerprint() == b.fingerprint())
        << "output " << a.outputHash << " vs " << b.outputHash
        << ", accesses " << (a.reads + a.writes) << " vs "
        << (b.reads + b.writes);
}

TEST_P(AllWorkloads, DetectOnlyCompletesRaceFree)
{
    const auto result =
        runWorkload(baseSpec(GetParam(), BackendKind::DetectOnly));
    EXPECT_FALSE(result.raceException)
        << "false positive: " << result.raceMessage;
}

TEST_P(AllWorkloads, TraceBackendProducesReplayableTrace)
{
    auto spec = baseSpec(GetParam(), BackendKind::Trace);
    const auto result = runWorkload(spec);
    EXPECT_GT(result.trace.totalEvents(), 0u);
    EXPECT_GE(result.trace.perThread.size(), spec.params.threads);
}

INSTANTIATE_TEST_SUITE_P(Suite, AllWorkloads,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) { return info.param; });

class RacyWorkloads : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RacyWorkloads, RacyVariantAlwaysThrows)
{
    Workload &w = findWorkload(GetParam());
    ASSERT_TRUE(w.hasRacyVariant());
    const auto result =
        runWorkload(baseSpec(GetParam(), BackendKind::Clean, true));
    EXPECT_TRUE(result.raceException)
        << GetParam() << " racy variant completed without an exception";
}

TEST_P(RacyWorkloads, RacyVariantRunsToCompletionNatively)
{
    const auto result =
        runWorkload(baseSpec(GetParam(), BackendKind::Native, true));
    EXPECT_FALSE(result.raceException);
}

TEST_P(RacyWorkloads, FastTrackConfirmsTheRaces)
{
    const auto result =
        runWorkload(baseSpec(GetParam(), BackendKind::FastTrack, true));
    EXPECT_GT(result.detectorReports, 0u)
        << GetParam() << ": FastTrack found no races in the racy variant";
}

INSTANTIATE_TEST_SUITE_P(Suite, RacyWorkloads,
                         ::testing::ValuesIn(racyWorkloadNames()),
                         [](const auto &info) { return info.param; });

TEST(SuiteComposition, MatchesThePaper)
{
    // 26 benchmarks (freqmine excluded), 17 with races, canneal is the
    // only one without a hand-made race-free version.
    EXPECT_EQ(workloadNames().size(), 26u);
    EXPECT_EQ(racyWorkloadNames().size(), 17u);
    unsigned excluded = 0;
    for (const auto &name : workloadNames())
        excluded += findWorkload(name).excludedFromModified();
    EXPECT_EQ(excluded, 1u);
    EXPECT_TRUE(findWorkload("canneal").excludedFromModified());
}

TEST(SuiteComposition, RaceFreeBenchmarksHaveNoRacyVariant)
{
    for (const char *name : {"fft", "lu_cb", "ocean_cp", "water_sp",
                             "blackscholes", "facesim", "raytrace_p",
                             "streamcluster", "swaptions"}) {
        EXPECT_FALSE(findWorkload(name).hasRacyVariant()) << name;
    }
}

} // namespace
} // namespace clean::wl
