/**
 * @file
 * fluidanimate — smoothed-particle hydrodynamics (PARSEC).
 *
 * Particles in a 2D cell grid; per frame: rebin (per-cell locks),
 * density from neighbors (scatter-add under cell locks — *very*
 * frequent, tiny critical sections: fluidanimate has the paper's
 * highest rollover rate, Table 1: 34.8/second, and one of the largest
 * deterministic-synchronization overheads in Figure 6), then force +
 * integrate. Barriers between phases.
 *
 * Racy variant: density accumulation skips the cell locks (WAW), the
 * canonical SPH reduction race.
 */

#include "workloads/suite/factories.h"
#include "workloads/suite/kernel_common.h"

namespace clean::wl::suite
{

namespace
{

class Fluidanimate : public KernelBase
{
  public:
    Fluidanimate() : KernelBase("fluidanimate", "parsec", true) {}

    void
    run(Env &env, const WorkloadParams &p) override
    {
        const std::uint64_t nParticles = scaled(p.scale, 384, 1536, 6144);
        const std::uint64_t frames = scaled(p.scale, 2, 3, 5);
        const unsigned g = 8; // cells per side
        const unsigned nCells = g * g;
        const std::uint64_t cellCap = 8 * (nParticles / nCells + 8);

        auto *px = env.allocShared<double>(nParticles);
        auto *py = env.allocShared<double>(nParticles);
        auto *vx = env.allocShared<double>(nParticles);
        auto *vy = env.allocShared<double>(nParticles);
        auto *density = env.allocShared<double>(nParticles);
        auto *cellCount = env.allocShared<std::uint32_t>(nCells);
        auto *cellList = env.allocShared<std::uint32_t>(nCells * cellCap);

        std::vector<unsigned> cellLocks;
        for (unsigned c = 0; c < nCells; ++c)
            cellLocks.push_back(env.createMutex());
        std::vector<unsigned> particleLocks;
        for (unsigned i = 0; i < 64; ++i)
            particleLocks.push_back(env.createMutex());
        const unsigned phase = env.createBarrier(p.threads);

        {
            Prng init(p.seed);
            for (std::uint64_t i = 0; i < nParticles; ++i) {
                px[i] = init.nextDouble();
                py[i] = init.nextDouble();
                vx[i] = (init.nextDouble() - 0.5) * 0.1;
                vy[i] = (init.nextDouble() - 0.5) * 0.1;
                density[i] = 0.0;
            }
        }

        const bool racy = p.racy;
        env.parallel(p.threads, [&](Worker &w) {
            const Slice s = sliceOf(nParticles, w.index(), w.count());
            const Slice cs = sliceOf(nCells, w.index(), w.count());
            auto cellOf = [&](std::uint64_t i) -> unsigned {
                auto clampDim = [&](double v) {
                    return std::min<unsigned>(
                        g - 1, static_cast<unsigned>(
                                   std::max(0.0, v * g)));
                };
                return clampDim(w.read(&py[i])) * g +
                       clampDim(w.read(&px[i]));
            };
            auto pLockOf = [&](std::uint64_t i) {
                return particleLocks[i % particleLocks.size()];
            };

            for (std::uint64_t frame = 0; frame < frames; ++frame) {
                // Rebin.
                for (std::uint64_t c = cs.begin; c < cs.end; ++c)
                    w.write(&cellCount[c], std::uint32_t{0});
                w.barrier(phase);
                for (std::uint64_t i = s.begin; i < s.end; ++i) {
                    const unsigned c = cellOf(i);
                    w.lock(cellLocks[c]);
                    const std::uint32_t k = w.read(&cellCount[c]);
                    if (k < cellCap) {
                        w.write(&cellList[c * cellCap + k],
                                static_cast<std::uint32_t>(i));
                        w.write(&cellCount[c], k + 1);
                    }
                    w.unlock(cellLocks[c]);
                    w.write(&density[i], 0.0);
                }
                w.barrier(phase);

                // Density: each owned cell scatters into its particles
                // and its right/down neighbors' particles.
                for (std::uint64_t c = cs.begin; c < cs.end; ++c) {
                    const std::uint32_t cnt = w.read(&cellCount[c]);
                    for (std::uint32_t a = 0; a < cnt; ++a) {
                        const std::uint32_t i =
                            w.read(&cellList[c * cellCap + a]);
                        const double xi = w.read(&px[i]);
                        const double yi = w.read(&py[i]);
                        // neighbor cells: self, +1 col, +1 row
                        const unsigned neigh[3] = {
                            static_cast<unsigned>(c),
                            static_cast<unsigned>((c + 1) % nCells),
                            static_cast<unsigned>((c + g) % nCells)};
                        for (unsigned nIdx = 0; nIdx < 3; ++nIdx) {
                            const unsigned nc = neigh[nIdx];
                            const std::uint32_t ncnt =
                                w.read(&cellCount[nc]);
                            for (std::uint32_t b = 0; b < ncnt; ++b) {
                                const std::uint32_t j = w.read(
                                    &cellList[nc * cellCap + b]);
                                if (j == i)
                                    continue;
                                const double dx = xi - w.read(&px[j]);
                                const double dy = yi - w.read(&py[j]);
                                const double r2 = dx * dx + dy * dy;
                                const double h2 = 0.02;
                                if (r2 >= h2)
                                    continue;
                                const double term =
                                    (h2 - r2) * (h2 - r2);
                                if (racy) {
                                    // Unlocked scatter-add: WAW.
                                    w.update(&density[j],
                                             [term](double v) {
                                                 return v + term;
                                             });
                                } else {
                                    w.lock(pLockOf(j));
                                    w.update(&density[j],
                                             [term](double v) {
                                                 return v + term;
                                             });
                                    w.unlock(pLockOf(j));
                                }
                                w.compute(10);
                            }
                        }
                    }
                }
                w.barrier(phase);

                // Integrate own slice with a density-based pressure.
                for (std::uint64_t i = s.begin; i < s.end; ++i) {
                    const double d = w.read(&density[i]);
                    const double press = 0.5 * d;
                    const double nvx =
                        (w.read(&vx[i]) - press * 0.01) * 0.99;
                    const double nvy =
                        (w.read(&vy[i]) + 0.001 - press * 0.01) * 0.99;
                    w.write(&vx[i], nvx);
                    w.write(&vy[i], nvy);
                    auto wrap = [](double v) {
                        if (v < 0.0)
                            return v + 1.0;
                        if (v >= 1.0)
                            return v - 1.0;
                        return v;
                    };
                    w.write(&px[i], wrap(w.read(&px[i]) + 0.02 * nvx));
                    w.write(&py[i], wrap(w.read(&py[i]) + 0.02 * nvy));
                    w.compute(8);
                }
                w.barrier(phase);
            }

            std::uint64_t h = 0;
            for (std::uint64_t i = s.begin; i < s.end; ++i)
                h = h * 31 + static_cast<std::uint64_t>(
                                 w.read(&density[i]) * 1e9);
            w.sink(h);
        });

        env.declareOutput(density, nParticles * sizeof(double));
    }
};

} // namespace

std::unique_ptr<Workload>
makeFluidanimate()
{
    return std::make_unique<Fluidanimate>();
}

} // namespace clean::wl::suite
