/**
 * @file
 * The CLEAN software race check (Figure 2 + §4.3/§4.4).
 *
 * Per checked byte, exactly one 32-bit epoch records the last write. The
 * check is:
 *
 *     race  <=>  CLOCK(epoch) > thread.vc[TID(epoch)]
 *
 * which, with tid bits replicated into vector-clock elements (§4.1),
 * collapses to a single raw integer comparison `epoch > vc.element(tid)`.
 *
 * Atomicity without locks (§4.3):
 *  - a WRITE is checked *before* the store and publishes its epoch with a
 *    compare-and-swap against the previously loaded value; a CAS failure
 *    means another write raced in between — a WAW race, and an exception
 *    is raised;
 *  - a READ is checked immediately *after* the load, so a write racing
 *    with the read is observed as RAW (its epoch is already visible),
 *    never misclassified as WAR. On x86-TSO no fences are required for
 *    this ordering (only later loads pass earlier stores); we use relaxed
 *    atomics accordingly.
 *
 * Multi-byte accesses (§4.4): in the common case all bytes of an access
 * carry the same epoch (paper: >= 99.7% of wide accesses), so one check
 * covers the access, and updates use 64/128-bit wide CAS to publish 2 or
 * 4 epochs per instruction.
 *
 * The checker is a template over the shadow backend (LinearShadow — the
 * paper's design — or SparseShadow); explicit instantiations live in
 * race_check.cc.
 */

#ifndef CLEAN_CORE_RACE_CHECK_H
#define CLEAN_CORE_RACE_CHECK_H

#include <cstddef>
#include <mutex>

#include "core/epoch.h"
#include "core/race_exception.h"
#include "core/thread_state.h"
#include "support/common.h"
#include "support/logging.h"

// SIMD backend for the all-epochs-equal scan (§4.4), selected at
// configure time: the arch macros come from the compiler's target flags
// and -DCLEAN_SIMD_CHECK=OFF (-> CLEAN_DISABLE_SIMD_CHECK) forces the
// portable scalar loop on any architecture.
#if !defined(CLEAN_DISABLE_SIMD_CHECK) && defined(__SSE2__)
#define CLEAN_SIMD_CHECK_SSE2 1
#include <emmintrin.h>
#elif !defined(CLEAN_DISABLE_SIMD_CHECK) && defined(__ARM_NEON)
#define CLEAN_SIMD_CHECK_NEON 1
#include <arm_neon.h>
#endif

namespace clean
{

class LinearShadow;
class SparseShadow;

/** How concurrent checks on the same data are kept correct. */
enum class AtomicityMode
{
    /** Paper's design: lock-free CAS epoch updates + check ordering. */
    Cas,
    /** Ablation: classic sharded per-line locking around each check. */
    Locked,
};

/** Tunables for a RaceChecker. */
struct CheckerConfig
{
    EpochConfig epoch;
    /** Enable the §4.4 multi-byte fast path (Figure 8 toggles this). */
    bool vectorized = true;
    /**
     * Enable the software fast path for the Fig. 2 check — the runtime
     * analogue of the §5.2 per-core hardware fast path: an access whose
     * covered epochs all equal the thread's own current epoch is retired
     * with a pure (SIMD-assisted) load+compare scan — no epoch masking,
     * no vector-clock lookup, and for writes no CAS republish (see
     * beforeWrite for the soundness argument). Only meaningful together
     * with `vectorized` (it *is* the vectorized same-epoch check,
     * hoisted); off reproduces the plain Figure 2 sequence for A/B
     * comparison.
     */
    bool fastPath = true;
    /**
     * Enable the per-thread ownership cache (§5.2 software analogue,
     * see OwnershipCache in thread_state.h): after a write run
     * publishes — or a fast-path scan verifies — the thread's own epoch
     * over some bytes, those bytes are recorded, and subsequent
     * accesses that hit retire with zero shadow traffic. Strictly a
     * second stage above `fastPath` (it caches that path's positive
     * outcome), so it inherits all of its gates and is inert when
     * `fastPath` is off; off reproduces PR 2 behaviour bit-for-bit.
     */
    bool ownCache = true;
    /**
     * Defer *read* checks into the per-thread BatchBuffer and retire
     * them in coalesced runs at SFR boundaries / on overflow
     * (drainBatch; §14 batched checking). Sound by the §5.2 argument:
     * the conflicting writer's epoch is still in the shadow when the
     * drain runs, and the drain completes before the reader's SFR
     * effects can escape. Write checks are never deferred — their
     * check-then-CAS-publish must precede the data store (§4.3), which
     * is also what keeps buffered read evidence alive: an unordered
     * writer publishing over a buffered byte is detected at the writer.
     * Requires the vectorized byte-granular CAS configuration (same
     * gates as the fast path); ignored otherwise.
     */
    bool batch = false;
    /**
     * Buffered-data budget in bytes: once the pending runs cover this
     * many data bytes (or the run table fills), the append path drains
     * in place instead of waiting for the next SFR boundary.
     */
    std::size_t batchBytes = std::size_t{1} << 16;
    /**
     * Enable the --overhead-budget sampling tier (§15, sampling.h): a
     * per-thread deterministic gate sheds *read* checks per
     * (region, window) before any check machinery runs. Orthogonal to
     * every other knob (it sits above the ownership cache and the
     * batch buffer and composes with granular/locked configurations).
     * Each ThreadState's gate must be configured with the same
     * `sample` params (SampleGate::configure) by whoever creates it.
     */
    bool sampling = false;
    /** Gate tunables; also recorded in the trace header (schema v3). */
    SampleParams sample;
    AtomicityMode atomicity = AtomicityMode::Cas;
    /**
     * log2 of the checking granule in bytes. 0 = per byte, the paper's
     * sound default for C/C++ (§3.2). 2 = per 4-byte word: the
     * "type-safe language" specialization the paper mentions but does
     * not explore — 4x less metadata and fewer checks, but accesses to
     * *distinct bytes* of one granule are indistinguishable, so it can
     * report races byte-granular CLEAN would not (false positives for
     * C/C++, sound for languages whose smallest shared unit is a word).
     */
    unsigned granuleLog2 = 0;
};

namespace detail
{

/**
 * True iff all @p n epoch slots hold exactly @p value.
 *
 * SSE2/NEON compare 4 epochs per instruction (8 per unrolled iteration
 * on SSE2); the scalar tail/fallback matches the pre-SIMD loop. Epoch
 * slots are written with relaxed 32-bit atomics; the vector loads read
 * each 4-byte-aligned lane in one piece, which on x86/ARM is exactly as
 * atomic per epoch as the scalar relaxed loads they replace — and like
 * them carries no ordering between lanes, which the §4.3 argument never
 * needs (any torn *set* of epochs simply fails the all-equal test and
 * falls back to per-byte checks).
 */
CLEAN_ALWAYS_INLINE bool
allSlotsEqual(const EpochValue *slots, std::size_t n, EpochValue value)
{
    std::size_t i = 0;
#if CLEAN_SIMD_CHECK_SSE2
    const __m128i needle = _mm_set1_epi32(static_cast<int>(value));
    for (; i + 8 <= n; i += 8) {
        const __m128i a = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(slots + i));
        const __m128i b = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(slots + i + 4));
        const __m128i eq = _mm_and_si128(_mm_cmpeq_epi32(a, needle),
                                         _mm_cmpeq_epi32(b, needle));
        if (_mm_movemask_epi8(eq) != 0xffff)
            return false;
    }
    for (; i + 4 <= n; i += 4) {
        const __m128i a = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(slots + i));
        if (_mm_movemask_epi8(_mm_cmpeq_epi32(a, needle)) != 0xffff)
            return false;
    }
#elif CLEAN_SIMD_CHECK_NEON
    const uint32x4_t needle = vdupq_n_u32(value);
    for (; i + 4 <= n; i += 4) {
        const uint32x4_t eq = vceqq_u32(vld1q_u32(slots + i), needle);
        if (vminvq_u32(eq) != ~0u)
            return false;
    }
#endif
    for (; i < n; ++i) {
        if (__atomic_load_n(slots + i, __ATOMIC_RELAXED) != value)
            return false;
    }
    return true;
}

/** Shard lock table for AtomicityMode::Locked (one per 64B line hash). */
class ShardLocks
{
  public:
    static constexpr std::size_t kShards = 1024;

    std::mutex &
    forAddr(Addr addr)
    {
        return locks_[(addr >> 6) & (kShards - 1)];
    }

  private:
    std::mutex locks_[kShards];
};

} // namespace detail

/**
 * WAW/RAW race checker over a shadow backend.
 *
 * Thread-safe: any number of threads may call beforeWrite/afterRead
 * concurrently (that is the whole point).
 */
template <class ShadowT>
class RaceChecker
{
  public:
    RaceChecker(const CheckerConfig &config, ShadowT &shadow)
        : config_(config), shadow_(shadow),
          epochMask_(~EpochConfig::expandedBit()),
          // The fast path is the vectorized same-epoch check hoisted to
          // the entry, so it follows the §4.4 toggle; per-byte granules
          // and the Locked ablation (which must serialize every write)
          // take the plain path.
          fastPath_(config.fastPath && config.vectorized &&
                    config.granuleLog2 == 0 &&
                    config.atomicity == AtomicityMode::Cas),
          // The ownership cache memoizes the fast path's same-epoch
          // verdict, so it requires the fast path (and thereby Cas
          // atomicity + byte granules + vectorized scans).
          ownCache_(config.ownCache && fastPath_),
          // Batched read checking shares the fast path's gates (wide
          // scans only make sense vectorized, per-byte granules, and
          // the §4.3 CAS write ordering is what keeps buffered
          // evidence alive) but not the fastPath flag itself — the
          // drain has its own segment scan.
          batch_(config.batch && config.vectorized &&
                 config.granuleLog2 == 0 &&
                 config.atomicity == AtomicityMode::Cas),
          // The sampling gate has no configuration gates of its own:
          // it decides before any check machinery runs, so it composes
          // with every path below (inline, batched, granular, locked).
          sampling_(config.sampling)
    {
        CLEAN_ASSERT(config.epoch.valid());
    }

    const CheckerConfig &config() const { return config_; }

    /**
     * Check a write of @p size bytes at @p addr and publish the writing
     * thread's epoch. MUST run before the data store (§4.3).
     * @throws RaceException on a WAW race.
     */
    void
    beforeWrite(ThreadState &ts, Addr addr, std::size_t size)
    {
        ts.assertStatsOwner();
        // Batched mode: a write advances the access ordinal without
        // appending, so the open read run would no longer be
        // consecutive-site — close it (appendRead's coalescing
        // invariant). The checks themselves stay inline: deferring a
        // write's check-and-publish past its store would break §4.3.
        if (batch_)
            ts.batch.closeOpenRun();
        ts.stats.sharedWrites++;
        ts.stats.accessedBytes += size;
        // Ownership-cache hit: every byte of the access is cached as
        // still holding ownEpoch, so the same-epoch fast path below
        // would succeed — skip it wholesale: no shadow lookup, no scan,
        // no publish (the plain path also skips the republish when all
        // epochs already equal ownEpoch, so eliding it changes
        // nothing). Soundness of trusting the cache is argued at
        // OwnershipCache in thread_state.h: a concurrent unordered
        // writer is detected by its *own* pre-CAS check, and every
        // event that could invalidate an entry flushes the cache.
        // (The wideAccesses bump is folded into each branch so the hit
        // path pays a single size>=4 test.)
        if (CLEAN_LIKELY(ownCache_)) {
            if (CLEAN_LIKELY(ts.ownCache.covered(addr, size))) {
                ts.stats.ownCacheHitRun++;
                if (size >= 4) {
                    ts.stats.wideAccesses++;
                    ts.stats.wideSameEpoch++;
                }
                return;
            }
            ts.stats.closeOwnCacheRun();
            ts.stats.ownCacheMisses++;
        }
        if (size >= 4)
            ts.stats.wideAccesses++;
        if (CLEAN_UNLIKELY(config_.granuleLog2 != 0)) {
            writeGranular(ts, addr, size);
            return;
        }
        while (size > 0) {
            const std::size_t run =
                std::min(size, shadow_.contiguousSlots(addr));
            EpochValue *slots = shadow_.slots(addr);
            // Skip-republish fast path: when every epoch covered by the
            // run already equals this thread's own current epoch, the
            // access retires on a pure load+compare — no CAS, no RMW,
            // no exclusive cache-line transition. Soundness:
            //   (a) no missed race on our side — ownEpoch caches
            //       vc.element(tid), so for each slot the Figure 2
            //       check `epoch > vc.element(TID(epoch))` reads
            //       `ownEpoch > ownEpoch`, which is false; and
            //   (b) the publish is a no-op — the CAS would store the
            //       value already present, leaving the shadow
            //       byte-identical.
            // Concurrent writers lose nothing: the plain path also
            // refrains from CASing when seen == newEpoch
            // (publishBytes/writeRunCas), so a racing writer W is
            // detected exactly as before — either W's own check
            // observes our unordered epoch and throws, or W publishes
            // after our scan and the next check of this location
            // observes W's epoch.
            // The scalar first-slot guard keeps misses cheap: on a
            // location last written in another epoch the first slot
            // differs almost always, so a miss costs one relaxed load
            // (of a line writeRun needs anyway), not a vector scan
            // whose result is thrown away.
            if (CLEAN_LIKELY(fastPath_) &&
                __atomic_load_n(slots, __ATOMIC_RELAXED) == ts.ownEpoch &&
                detail::allSlotsEqual(slots, run, ts.ownEpoch)) {
                if (run >= 4)
                    ts.stats.wideSameEpoch++;
            } else {
                writeRun(ts, addr, slots, run);
            }
            // Either branch leaves every slot of the run holding
            // ownEpoch (the scan verified it; a writeRun that returned
            // published it — on a race it throws before reaching here),
            // which is exactly the ownership-cache claim condition.
            if (ownCache_)
                ts.ownCache.claim(addr, run);
            addr += run;
            size -= run;
        }
    }

    /**
     * Check a read of @p size bytes at @p addr. MUST run immediately
     * after the data load (§4.3). Reads never update metadata.
     * @throws RaceException on a RAW race.
     */
    void
    afterRead(ThreadState &ts, Addr addr, std::size_t size)
    {
        ts.assertStatsOwner();
        // Sampling tier (--overhead-budget, §15): admission is decided
        // before any check machinery runs. A shed read performs no
        // check at all but still advances the access ordinal and byte
        // totals — site indices in budgeted and unbudgeted runs must
        // be identical, which is what makes the budgeted report a
        // verifiable subset. With batching on, the open run closes:
        // coalesced runs must cover exactly the *admitted* reads, or
        // the drain would silently re-check what the gate shed.
        if (CLEAN_UNLIKELY(sampling_) &&
            !ts.sample.admit(addr, ts.stats.sharedReads)) {
            ts.stats.accessedBytes += size;
            ts.stats.sharedReads++;
            ts.stats.shedReads++;
            if (batch_)
                ts.batch.closeOpenRun();
            return;
        }
        // Batched mode: append the access to the per-thread run buffer
        // and return — no shadow traffic at all on the hot path. The
        // deferred Figure 2 checks run at the next drain (SFR boundary
        // or overflow), against the same vector clock (it cannot change
        // before the boundary) and over epochs an unordered overwrite
        // of which would itself have raised at the writer.
        if (batch_) {
            appendRead(ts, addr, size);
            return;
        }
        ts.stats.sharedReads++;
        ts.stats.accessedBytes += size;
        // Ownership-cache hit — the read-back-own-writes case: the
        // bytes are known to hold ownEpoch, the Figure 2 check would
        // reduce to `ownEpoch > ownEpoch` (false), and reads never
        // update metadata, so nothing at all remains to do.
        if (CLEAN_LIKELY(ownCache_)) {
            if (CLEAN_LIKELY(ts.ownCache.covered(addr, size))) {
                ts.stats.ownCacheHitRun++;
                if (size >= 4) {
                    ts.stats.wideAccesses++;
                    ts.stats.wideSameEpoch++;
                }
                return;
            }
            ts.stats.closeOwnCacheRun();
            ts.stats.ownCacheMisses++;
        }
        if (size >= 4)
            ts.stats.wideAccesses++;
        if (CLEAN_UNLIKELY(config_.granuleLog2 != 0)) {
            readGranular(ts, addr, size);
            return;
        }
        while (size > 0) {
            const std::size_t run =
                std::min(size, shadow_.contiguousSlots(addr));
            EpochValue *slots = shadow_.slots(addr);
            // Same-epoch read fast path: every covered epoch equals our
            // own current epoch, i.e. we are reading back our latest
            // writes. The Figure 2 check `epoch > vc.element(TID(epoch))`
            // reduces to `ownEpoch > ownEpoch` for each slot — false —
            // and reads never update metadata, so nothing else is
            // skipped. Same scalar first-slot guard as beforeWrite:
            // misses must stay cheap.
            if (CLEAN_LIKELY(fastPath_) &&
                __atomic_load_n(slots, __ATOMIC_RELAXED) == ts.ownEpoch &&
                detail::allSlotsEqual(slots, run, ts.ownEpoch)) {
                if (run >= 4)
                    ts.stats.wideSameEpoch++;
                // The scan just proved these slots hold ownEpoch —
                // claimable. (readRun proves only ordering, not
                // equality with ownEpoch, so no claim on that branch.)
                if (ownCache_)
                    ts.ownCache.claim(addr, run);
            } else {
                readRun(ts, addr, slots, run);
            }
            addr += run;
            size -= run;
        }
    }

    /** True iff read checks are being deferred (config gates applied). */
    bool batchEnabled() const { return batch_; }

    /**
     * Retires every deferred read check in @p ts's batch buffer: one
     * prefetched shadow walk per coalesced run, segmented into maximal
     * uniform-epoch stretches by a wide (AVX2 where available, else the
     * CLEAN_SIMD_CHECK 16B scan) compare — one Figure 2 check per
     * stretch. MUST run before the thread's SFR boundary completes
     * (before the release ticks / the acquire adds order / the shadow
     * resets) — every drain site is inventoried in DESIGN.md §14.
     *
     * On a race, throws RaceException carrying the *buffered* access's
     * site index and the run's SFR ordinal, with the buffer cursor
     * advanced past the racy access: a caller that records the race
     * and continues (Report/Count policies) simply calls drainBatch
     * again to finish the remaining checks.
     */
    void drainBatch(ThreadState &ts);

  private:
    /**
     * Batched-mode read path: bump the per-access stats (so site
     * indices stay exact) and append to the run buffer, extending the
     * open run when the access is address-contiguous, same-width and
     * uninterrupted in site order — the coalescing that lets the drain
     * check a whole streamed span in one walk. Overflow (run table
     * full or batchBytes of data pending) drains in place, *after*
     * appending, so the triggering access's own check is part of the
     * drain.
     */
    CLEAN_ALWAYS_INLINE void
    appendRead(ThreadState &ts, Addr addr, std::size_t size)
    {
        ts.stats.sharedReads++;
        BatchBuffer &b = ts.batch;
        BatchBuffer::Run *last = b.open;
        // Extend the open run when the access is address-contiguous and
        // same-width. Consecutive-site-order needs no check here: only
        // reads and writes advance the access ordinal, reads under
        // batching always land here, and beforeWrite closes the open
        // run — so an extendable run is uninterrupted by construction.
        // Per-access byte/width stats are settled at run retirement
        // (drainBatch); only the ordinal counter must advance per
        // access, for exact race siting.
        if (CLEAN_LIKELY(last != nullptr && last->addr + last->bytes == addr &&
                         last->sizeEach == size)) {
            last->bytes += static_cast<std::uint32_t>(size);
            if (CLEAN_UNLIKELY(last->bytes >= b.openLimit))
                overflowDrain(ts);
            return;
        }
        pushRun(ts, addr, size);
    }

    /** Opens a new run (allocating the table on first use, draining
     *  when it is full). Out of line: the extend path above is the
     *  streaming common case. */
    CLEAN_NOINLINE void
    pushRun(ThreadState &ts, Addr addr, std::size_t size)
    {
        BatchBuffer &b = ts.batch;
        if (CLEAN_UNLIKELY(b.runs == nullptr)) {
            const std::size_t cap = std::max<std::size_t>(
                64, config_.batchBytes / sizeof(BatchBuffer::Run));
            // First append comes from the owning thread, so the table
            // lands on its NUMA node (explicitly under libnuma,
            // first-touch otherwise).
            b.runs.allocate(cap);
            b.capacity = static_cast<std::uint32_t>(cap);
        } else if (CLEAN_UNLIKELY(b.count == b.capacity)) {
            // Non-coalescable access pattern filled the table; a race
            // thrown here unwinds before the current access is buffered
            // (its check re-runs only if the caller retries) — the
            // documented Report-mode corner in §14.
            overflowDrain(ts);
        }
        b.closeOpenRun();
        BatchBuffer::Run &r = b.runs[b.count++];
        r.addr = addr;
        r.firstSite = ts.stats.accesses();
        r.sfrOrdinal = ts.sfrOrdinal;
        r.bytes = static_cast<std::uint32_t>(size);
        r.sizeEach = static_cast<std::uint32_t>(size);
        ts.stats.batchRuns++;
        if (CLEAN_UNLIKELY(b.closedBytes + size >= config_.batchBytes)) {
            overflowDrain(ts);
            return;
        }
        // Precompute the open run's overflow point so the extend path
        // compares the run's own length against one cached limit
        // instead of maintaining a buffer-wide byte total per access.
        b.open = &r;
        b.openLimit =
            static_cast<std::uint32_t>(config_.batchBytes - b.closedBytes);
    }

    /** Capacity-forced drain (counts separately from boundary drains). */
    void
    overflowDrain(ThreadState &ts)
    {
        ts.stats.batchOverflowDrains++;
        drainBatch(ts);
    }

    /** Walks one buffered run from the resume offset; throws on race
     *  with the cursor advanced past the racy access. */
    void drainRun(ThreadState &ts, const BatchBuffer::Run &r);

    /** Number of granules covered by [addr, addr + size). */
    CLEAN_ALWAYS_INLINE std::size_t
    granules(Addr addr, std::size_t size) const
    {
        if (size == 0)
            return 0;
        const Addr first = addr >> config_.granuleLog2;
        const Addr last = (addr + size - 1) >> config_.granuleLog2;
        return static_cast<std::size_t>(last - first + 1);
    }

    CLEAN_ALWAYS_INLINE static EpochValue
    loadEpoch(const EpochValue *slot)
    {
        return __atomic_load_n(slot, __ATOMIC_RELAXED);
    }

    /** Outlined cold half of checkEpoch: building the exception (site
     *  index, SFR ordinal, address arithmetic) must not be inlined into
     *  the hot check loops — it only runs when the program is already
     *  doomed, and keeping it out preserves the fast-path code size. */
    [[noreturn]] CLEAN_NOINLINE void
    throwRace(ThreadState &ts, Addr unit, EpochValue epoch,
              RaceKind kind) const
    {
        throw RaceException(kind, unit << config_.granuleLog2, ts.tid,
                            config_.epoch.tidOf(epoch),
                            config_.epoch.clockOf(epoch),
                            ts.stats.accesses(), ts.sfrOrdinal);
    }

    /** Drain-time variant of throwRace: the racy access's site index
     *  and SFR ordinal come from the buffered run, not from the
     *  thread's current counters (other accesses may have retired
     *  between the buffered read and this drain). */
    [[noreturn]] CLEAN_NOINLINE void
    throwRaceAt(ThreadState &ts, Addr addr, EpochValue epoch, RaceKind kind,
                std::uint64_t site, std::uint64_t sfr) const
    {
        throw RaceException(kind, addr, ts.tid, config_.epoch.tidOf(epoch),
                            config_.epoch.clockOf(epoch), site, sfr);
    }

    /** The Figure 2 line-3 check. @p unit is a granule index; the
     *  exception reports the granule's base byte address. */
    CLEAN_ALWAYS_INLINE void
    checkEpoch(ThreadState &ts, Addr unit, EpochValue rawEpoch,
               RaceKind kind) const
    {
        const EpochValue epoch = rawEpoch & epochMask_;
        const ThreadId writer = config_.epoch.tidOf(epoch);
        if (CLEAN_UNLIKELY(epoch > ts.vc.element(writer)))
            throwRace(ts, unit, epoch, kind);
    }

    /** True iff all @p n slots hold the same value as slots[0]. */
    CLEAN_ALWAYS_INLINE static bool
    allEqual(const EpochValue *slots, std::size_t n)
    {
        return detail::allSlotsEqual(slots, n, loadEpoch(slots));
    }

    void readRun(ThreadState &ts, Addr addr, EpochValue *slots,
                 std::size_t n);
    void writeRun(ThreadState &ts, Addr addr, EpochValue *slots,
                  std::size_t n);

    /** Coarse-granule paths: one epoch per granule, stored at the slot
     *  of the granule's base byte (stride granule-size in the shadow);
     *  one check/update per granule, no wide vectorization. */
    void readGranular(ThreadState &ts, Addr addr, std::size_t size);
    void writeGranular(ThreadState &ts, Addr addr, std::size_t size);
    void writeRunCas(ThreadState &ts, Addr addr, EpochValue *slots,
                     std::size_t n);
    void writeRunLocked(ThreadState &ts, Addr addr, EpochValue *slots,
                        std::size_t n);

    /** Publishes newEpoch over n slots previously observed all == seen,
     *  using the widest CAS available. @throws RaceException on WAW. */
    void publishWide(ThreadState &ts, Addr addr, EpochValue *slots,
                     std::size_t n, EpochValue seen, EpochValue newEpoch);

    /** Per-byte CAS publish fallback. @throws RaceException on WAW. */
    void publishBytes(ThreadState &ts, Addr addr, EpochValue *slots,
                      std::size_t n, EpochValue newEpoch);

    CheckerConfig config_;
    ShadowT &shadow_;
    EpochValue epochMask_;
    /** Precomputed "fast path applies" flag (see constructor). */
    bool fastPath_;
    /** Precomputed "ownership cache applies" flag (see constructor). */
    bool ownCache_;
    /** Precomputed "read checks are deferred" flag (see constructor). */
    bool batch_;
    /** Precomputed "sampling gate applies" flag (see constructor). */
    bool sampling_;
    detail::ShardLocks shardLocks_;
};

extern template class RaceChecker<LinearShadow>;
extern template class RaceChecker<SparseShadow>;

} // namespace clean

#endif // CLEAN_CORE_RACE_CHECK_H
