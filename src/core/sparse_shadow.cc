#include "core/sparse_shadow.h"

#include <cstring>

namespace clean
{

std::atomic<std::uint64_t> SparseShadow::nextGeneration_{1};
thread_local std::uint64_t SparseShadow::cachedGen_ = 0;
thread_local Addr SparseShadow::cachedKey_ = ~Addr{0};
thread_local EpochValue *SparseShadow::cachedChunk_ = nullptr;

EpochValue *
SparseShadow::slotsSlow(Addr addr, Addr key)
{
    EpochValue *chunk = nullptr;
    {
        std::lock_guard<std::mutex> guard(mutex_);
        auto &slot = chunks_[key];
        if (!slot) {
            slot = std::make_unique<EpochValue[]>(kChunkBytes);
            std::memset(slot.get(), 0, kChunkBytes * sizeof(EpochValue));
        }
        chunk = slot.get();
    }
    cachedGen_ = generation_;
    cachedKey_ = key;
    cachedChunk_ = chunk;
    return chunk + (addr & kChunkMask);
}

void
SparseShadow::reset()
{
    std::lock_guard<std::mutex> guard(mutex_);
    for (auto &[key, chunk] : chunks_)
        std::memset(chunk.get(), 0, kChunkBytes * sizeof(EpochValue));
}

std::size_t
SparseShadow::chunkCount() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return chunks_.size();
}

} // namespace clean
