/**
 * @file
 * Chrome trace-event JSON export of a merged flight-recorder stream
 * (loadable in Perfetto / chrome://tracing).
 */

#ifndef CLEAN_OBS_TRACE_EXPORT_H
#define CLEAN_OBS_TRACE_EXPORT_H

#include <string>
#include <vector>

#include "obs/events.h"

namespace clean::obs
{

/**
 * Renders @p events (a FlightRecorder::merged() stream) as Chrome
 * trace-event JSON: SFR and recovery episodes become duration ("B"/"E")
 * slices, everything else instant ("i") events; `ts` carries the
 * deterministic Kendo timestamp (microsecond *units* in the viewer, but
 * logical time — no wall clock enters the output, so deterministic runs
 * export byte-identical traces). @p globalTid labels the synthetic
 * rollover lane. Unbalanced slices (ring overwrite can drop a begin, a
 * failure can drop an end) are repaired so the JSON always loads: an
 * orphan end downgrades to an instant, open begins are closed at the
 * final timestamp.
 */
std::string chromeTraceJson(const std::vector<Event> &events,
                            ThreadId globalTid);

} // namespace clean::obs

#endif // CLEAN_OBS_TRACE_EXPORT_H
