/**
 * @file
 * raytrace — sphere-scene ray tracer (SPLASH-2).
 *
 * Threads trace image tiles against a read-only sphere scene; pixel
 * writes are disjoint per tile. Tiles are handed out through a global
 * work counter protected by a lock.
 *
 * Racy variant: the global RayID/tile counter is incremented without
 * the lock — the *actual* well-known data race in SPLASH-2 raytrace
 * (its global RayID counter), an unsynchronized RMW (WAW) that also
 * duplicates tiles.
 */

#include "workloads/suite/factories.h"
#include "workloads/suite/kernel_common.h"

namespace clean::wl::suite
{

namespace
{

struct Sphere
{
    double x, y, z, r;
    double shade;
    double pad[3];
};

class Raytrace : public KernelBase
{
  public:
    Raytrace() : KernelBase("raytrace", "splash2", true) {}

    void
    run(Env &env, const WorkloadParams &p) override
    {
        const std::uint64_t dim = scaled(p.scale, 48, 96, 256);
        const std::uint64_t nSpheres = scaled(p.scale, 16, 32, 64);
        const std::uint64_t tile = 8;
        const std::uint64_t tilesPerSide = dim / tile;
        const std::uint64_t nTiles = tilesPerSide * tilesPerSide;

        auto *scene = env.allocShared<Sphere>(nSpheres);
        auto *image = env.allocShared<float>(dim * dim);
        auto *tileCounter = env.allocShared<std::uint64_t>(1);
        const unsigned counterLock = env.createMutex();

        {
            Prng init(p.seed);
            for (std::uint64_t s = 0; s < nSpheres; ++s) {
                scene[s].x = init.nextDouble() * 2.0 - 1.0;
                scene[s].y = init.nextDouble() * 2.0 - 1.0;
                scene[s].z = 2.0 + init.nextDouble() * 4.0;
                scene[s].r = 0.1 + init.nextDouble() * 0.3;
                scene[s].shade = init.nextDouble();
            }
            tileCounter[0] = 0;
        }

        const bool racy = p.racy;
        env.parallel(p.threads, [&](Worker &w) {
            double localSum = 0.0;
            for (;;) {
                std::uint64_t t;
                if (racy) {
                    // The classic raytrace bug: unlocked RayID counter.
                    t = w.read(&tileCounter[0]);
                    w.write(&tileCounter[0], t + 1);
                } else {
                    w.lock(counterLock);
                    t = w.read(&tileCounter[0]);
                    w.write(&tileCounter[0], t + 1);
                    w.unlock(counterLock);
                }
                if (t >= nTiles)
                    break;
                const std::uint64_t ty = (t / tilesPerSide) * tile;
                const std::uint64_t tx = (t % tilesPerSide) * tile;
                for (std::uint64_t py = ty; py < ty + tile; ++py) {
                    for (std::uint64_t px = tx; px < tx + tile; ++px) {
                        // Primary ray through the pixel.
                        const double dx =
                            (2.0 * px) / dim - 1.0;
                        const double dy =
                            (2.0 * py) / dim - 1.0;
                        double best = 1e30;
                        double shade = 0.0;
                        for (std::uint64_t s = 0; s < nSpheres; ++s) {
                            const double cx = w.read(&scene[s].x) - dx;
                            const double cy = w.read(&scene[s].y) - dy;
                            const double cz = w.read(&scene[s].z);
                            const double r = w.read(&scene[s].r);
                            // Ray dir ~ (dx, dy, 1); closest approach.
                            const double tca =
                                cx * dx + cy * dy + cz;
                            const double d2 = cx * cx + cy * cy +
                                              cz * cz - tca * tca /
                                                  (dx * dx + dy * dy + 1);
                            if (d2 < r * r && tca < best) {
                                best = tca;
                                shade = w.read(&scene[s].shade) /
                                        (1.0 + 0.1 * tca);
                            }
                            w.compute(12);
                        }
                        w.write(&image[py * dim + px],
                                static_cast<float>(shade));
                        localSum += shade;
                    }
                }
            }
            w.sink(static_cast<std::uint64_t>(localSum * 1e6));
        });

        env.declareOutput(image, dim * dim * sizeof(float));
    }
};

} // namespace

std::unique_ptr<Workload>
makeRaytrace()
{
    return std::make_unique<Raytrace>();
}

} // namespace clean::wl::suite
