#include "workloads/backend.h"

#include <algorithm>

#include "support/logging.h"
#include "support/prng.h"
#include "support/trace_error.h"

namespace clean::wl
{

namespace
{

std::uint64_t
mix64(std::uint64_t h, std::uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
}

std::uint64_t
workerSeed(std::uint64_t base, unsigned index)
{
    SplitMix64 sm(base + 0x1000 + index);
    return sm.next();
}

} // namespace

std::uint64_t
hashOutput(const void *data, std::size_t bytes,
           const std::vector<std::uint64_t> &sinks)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < bytes; ++i)
        h = (h ^ p[i]) * 0x100000001b3ULL;
    for (std::uint64_t s : sinks)
        h = mix64(h, s);
    return h;
}

// ---------------------------------------------------------------------
// PlainEnv
// ---------------------------------------------------------------------

PlainEnv::PlainEnv(Worker::Mode mode, std::uint64_t seed,
                   const SharedHeapConfig &heapConfig)
    : heap_(heapConfig), seed_(seed), mode_(mode)
{
}

PlainEnv::~PlainEnv() = default;

void *
PlainEnv::allocSharedRaw(std::size_t bytes)
{
    return heap_.allocShared(bytes);
}

void *
PlainEnv::allocPrivateRaw(std::size_t bytes)
{
    return heap_.allocPrivate(bytes);
}

unsigned
PlainEnv::createMutex()
{
    mutexes_.emplace_back();
    return static_cast<unsigned>(mutexes_.size() - 1);
}

unsigned
PlainEnv::createBarrier(unsigned parties)
{
    barriers_.emplace_back(parties);
    return static_cast<unsigned>(barriers_.size() - 1);
}

unsigned
PlainEnv::createCond()
{
    conds_.emplace_back();
    return static_cast<unsigned>(conds_.size() - 1);
}

void
PlainEnv::parallel(unsigned n, const std::function<void(Worker &)> &fn)
{
    std::vector<std::thread> threads;
    threads.reserve(n);
    {
        std::lock_guard<std::mutex> guard(totalsMutex_);
        if (sinkHashes_.size() < n)
            sinkHashes_.resize(n, 0);
    }
    for (unsigned i = 0; i < n; ++i) {
        threads.emplace_back([this, i, n, &fn] {
            Worker worker(*this, mode_, i, n, workerSeed(seed_, i));
            fn(worker);
            std::lock_guard<std::mutex> guard(totalsMutex_);
            totals_.reads += worker.nativeReads();
            totals_.writes += worker.nativeWrites();
            totals_.bytes += worker.nativeBytes();
            sinkHashes_[i] = mix64(sinkHashes_[i], worker.sinkHash());
        });
    }
    for (auto &t : threads)
        t.join();
}

void
PlainEnv::declareOutput(const void *data, std::size_t bytes)
{
    outputData_ = data;
    outputBytes_ = bytes;
}

void
PlainEnv::lockOp(Worker &w, unsigned id)
{
    mutexes_[id].lock();
    onAcquired(w, id);
}

void
PlainEnv::unlockOp(Worker &w, unsigned id)
{
    onReleasing(w, id);
    mutexes_[id].unlock();
}

void
PlainEnv::barrierOp(Worker &w, unsigned id)
{
    const std::uint64_t gen = barriers_[id].arrive(
        [&](std::uint64_t g) { onBarrierArrive(w, id, g); });
    onBarrierLeave(w, id, gen);
}

void
PlainEnv::condWaitOp(Worker &w, unsigned cond, unsigned mutex)
{
    onReleasing(w, mutex);
    {
        std::unique_lock<std::mutex> lock(mutexes_[mutex], std::adopt_lock);
        conds_[cond].cv.wait(lock);
        lock.release(); // stays held; caller unlocks via unlockOp
    }
    onCondWoke(w, cond);
    onAcquired(w, mutex);
}

void
PlainEnv::condSignalOp(Worker &w, unsigned cond)
{
    onCondNotify(w, cond, false);
    conds_[cond].cv.notify_one();
}

void
PlainEnv::condBroadcastOp(Worker &w, unsigned cond)
{
    onCondNotify(w, cond, true);
    conds_[cond].cv.notify_all();
}

EnvTotals
PlainEnv::totals() const
{
    std::lock_guard<std::mutex> guard(totalsMutex_);
    EnvTotals t = totals_;
    t.outputHash = hashOutput(outputData_, outputBytes_, sinkHashes_);
    return t;
}

// ---------------------------------------------------------------------
// DetectorEnv
// ---------------------------------------------------------------------

DetectorEnv::DetectorEnv(detectors::Detector &detector, std::uint64_t seed)
    : PlainEnv(Worker::Mode::Hooked, seed), detector_(detector)
{
}

void
DetectorEnv::readHook(Worker &w, Addr addr, std::size_t size)
{
    detector_.onRead(workerTid(w), addr, size);
}

void
DetectorEnv::writeHook(Worker &w, Addr addr, std::size_t size)
{
    detector_.onWrite(workerTid(w), addr, size);
}

void
DetectorEnv::onAcquired(Worker &w, unsigned id)
{
    detector_.onAcquire(workerTid(w), mutexSync(id));
}

void
DetectorEnv::onReleasing(Worker &w, unsigned id)
{
    detector_.onRelease(workerTid(w), mutexSync(id));
}

void
DetectorEnv::onBarrierArrive(Worker &w, unsigned id,
                             std::uint64_t generation)
{
    // A barrier is a release on arrival...
    detector_.onRelease(workerTid(w), barrierSync(id, generation));
}

void
DetectorEnv::onBarrierLeave(Worker &w, unsigned id,
                            std::uint64_t generation)
{
    // ...and an acquire of *this generation's* releases once it
    // completed. Using a per-generation sync id keeps a late-waking
    // waiter from absorbing releases of later generations.
    detector_.onAcquire(workerTid(w), barrierSync(id, generation));
}

void
DetectorEnv::onCondWoke(Worker &w, unsigned id)
{
    detector_.onAcquire(workerTid(w), condSync(id));
}

void
DetectorEnv::onCondNotify(Worker &w, unsigned id, bool)
{
    detector_.onRelease(workerTid(w), condSync(id));
}

void
DetectorEnv::parallel(unsigned n, const std::function<void(Worker &)> &fn)
{
    // Fork edges for every worker before any of them runs: on a host
    // with fewer cores than workers they may physically serialize, and
    // in-thread fork hooks would then fabricate happens-before edges
    // between siblings.
    for (unsigned i = 0; i < n; ++i)
        detector_.onFork(0, i + 1);
    PlainEnv::parallel(n, fn);
    for (unsigned i = 0; i < n; ++i)
        detector_.onJoin(0, i + 1);
}

// ---------------------------------------------------------------------
// TraceEnv
// ---------------------------------------------------------------------

TraceEnv::TraceEnv(std::uint64_t seed)
    : PlainEnv(Worker::Mode::Hooked, seed)
{
}

unsigned
TraceEnv::createMutex()
{
    const unsigned id = PlainEnv::createMutex();
    auto meta = std::make_unique<ObjectMeta>();
    meta->kind = TraceSyncObject::Kind::Mutex;
    objects_.push_back(std::move(meta));
    mutexObject_.push_back(static_cast<unsigned>(objects_.size() - 1));
    return id;
}

unsigned
TraceEnv::createBarrier(unsigned parties)
{
    const unsigned id = PlainEnv::createBarrier(parties);
    auto meta = std::make_unique<ObjectMeta>();
    meta->kind = TraceSyncObject::Kind::Barrier;
    meta->parties = parties;
    objects_.push_back(std::move(meta));
    barrierObject_.push_back(static_cast<unsigned>(objects_.size() - 1));
    return id;
}

unsigned
TraceEnv::createCond()
{
    const unsigned id = PlainEnv::createCond();
    auto meta = std::make_unique<ObjectMeta>();
    meta->kind = TraceSyncObject::Kind::Cond;
    objects_.push_back(std::move(meta));
    condObject_.push_back(static_cast<unsigned>(objects_.size() - 1));
    return id;
}

std::vector<TraceEvent> *
TraceEnv::eventsOf(Worker &w)
{
    return &buffers_[w.index()];
}

void
TraceEnv::recordAccess(Worker &w, Addr addr, std::size_t size, bool write)
{
    TraceEvent e;
    e.kind = write ? TraceEvent::Kind::Write : TraceEvent::Kind::Read;
    e.addr = addr;
    e.size = static_cast<std::uint8_t>(size);
    e.isPrivate = heap_.isPrivate(addr);
    eventsOf(w)->push_back(e);
}

void
TraceEnv::recordSync(Worker &w, TraceEvent::Kind kind, unsigned object)
{
    TraceEvent e;
    e.kind = kind;
    e.object = object;
    e.seq = objects_[object]->nextSeq.fetch_add(1,
                                                std::memory_order_relaxed);
    eventsOf(w)->push_back(e);
}

void
TraceEnv::readHook(Worker &w, Addr addr, std::size_t size)
{
    recordAccess(w, addr, size, false);
}

void
TraceEnv::writeHook(Worker &w, Addr addr, std::size_t size)
{
    recordAccess(w, addr, size, true);
}

void
TraceEnv::privateReadHook(Worker &w, Addr addr, std::size_t size)
{
    TraceEvent e;
    e.kind = TraceEvent::Kind::Read;
    e.addr = addr;
    e.size = static_cast<std::uint8_t>(size);
    e.isPrivate = true;
    eventsOf(w)->push_back(e);
}

void
TraceEnv::privateWriteHook(Worker &w, Addr addr, std::size_t size)
{
    TraceEvent e;
    e.kind = TraceEvent::Kind::Write;
    e.addr = addr;
    e.size = static_cast<std::uint8_t>(size);
    e.isPrivate = true;
    eventsOf(w)->push_back(e);
}

void
TraceEnv::computeHook(Worker &w, std::uint64_t n)
{
    auto *events = eventsOf(w);
    // Merge adjacent compute chunks to keep traces compact.
    if (!events->empty() &&
        events->back().kind == TraceEvent::Kind::Compute) {
        events->back().addr += n;
        return;
    }
    TraceEvent e;
    e.kind = TraceEvent::Kind::Compute;
    e.addr = n;
    events->push_back(e);
}

void
TraceEnv::onAcquired(Worker &w, unsigned id)
{
    recordSync(w, TraceEvent::Kind::Acquire, mutexObject_[id]);
}

void
TraceEnv::onReleasing(Worker &w, unsigned id)
{
    recordSync(w, TraceEvent::Kind::Release, mutexObject_[id]);
}

void
TraceEnv::onBarrierArrive(Worker &w, unsigned id, std::uint64_t)
{
    // Runs under the barrier's internal lock, so the per-object
    // sequence numbers reflect the true arrival order.
    recordSync(w, TraceEvent::Kind::BarrierArrive, barrierObject_[id]);
}

void
TraceEnv::onCondWoke(Worker &w, unsigned id)
{
    recordSync(w, TraceEvent::Kind::Acquire, condObject_[id]);
}

void
TraceEnv::onCondNotify(Worker &w, unsigned id, bool)
{
    recordSync(w, TraceEvent::Kind::Release, condObject_[id]);
}

void
TraceEnv::parallel(unsigned n, const std::function<void(Worker &)> &fn)
{
    {
        std::lock_guard<std::mutex> guard(traceMutex_);
        buffers_.clear();
        buffers_.resize(n);
    }
    PlainEnv::parallel(n, fn);
    std::lock_guard<std::mutex> guard(traceMutex_);
    if (trace_.perThread.size() < n)
        trace_.perThread.resize(n);
    for (unsigned i = 0; i < n; ++i) {
        auto &dst = trace_.perThread[i];
        auto &src = buffers_[i];
        dst.insert(dst.end(), src.begin(), src.end());
        src.clear();
        src.shrink_to_fit();
    }
}

Trace
TraceEnv::takeTrace()
{
    std::lock_guard<std::mutex> guard(traceMutex_);
    trace_.objects.clear();
    for (const auto &meta : objects_) {
        TraceSyncObject obj;
        obj.kind = meta->kind;
        obj.parties = meta->parties;
        obj.eventCount = meta->nextSeq.load(std::memory_order_relaxed);
        trace_.objects.push_back(obj);
    }
    trace_.minAddr = ~Addr{0};
    trace_.maxAddr = 0;
    for (const auto &thread : trace_.perThread) {
        for (const auto &e : thread) {
            if (e.kind != TraceEvent::Kind::Read &&
                e.kind != TraceEvent::Kind::Write) {
                continue;
            }
            trace_.minAddr = std::min(trace_.minAddr, e.addr);
            trace_.maxAddr = std::max(trace_.maxAddr, e.addr + e.size);
        }
    }
    return std::move(trace_);
}

// ---------------------------------------------------------------------
// CleanEnv
// ---------------------------------------------------------------------

CleanEnv::CleanEnv(CleanRuntime &rt, std::uint64_t seed)
    : rt_(rt), seed_(seed)
{
}

CleanEnv::~CleanEnv() = default;

void *
CleanEnv::allocSharedRaw(std::size_t bytes)
{
    return rt_.heap().allocShared(bytes);
}

void *
CleanEnv::allocPrivateRaw(std::size_t bytes)
{
    return rt_.heap().allocPrivate(bytes);
}

unsigned
CleanEnv::createMutex()
{
    mutexes_.emplace_back(rt_);
    return static_cast<unsigned>(mutexes_.size() - 1);
}

unsigned
CleanEnv::createBarrier(unsigned parties)
{
    barriers_.emplace_back(rt_, parties);
    return static_cast<unsigned>(barriers_.size() - 1);
}

unsigned
CleanEnv::createCond()
{
    conds_.emplace_back(rt_);
    return static_cast<unsigned>(conds_.size() - 1);
}

void
CleanEnv::parallel(unsigned n, const std::function<void(Worker &)> &fn)
{
    {
        std::lock_guard<std::mutex> guard(totalsMutex_);
        if (sinkHashes_.size() < n)
            sinkHashes_.resize(n, 0);
    }
    std::vector<ThreadHandle> handles;
    handles.reserve(n);
    std::exception_ptr pending;
    // If a worker races while we are still spawning, spawn() throws
    // ExecutionAborted. Every already-spawned worker still references
    // fn and the workload's stack frame, so all of them MUST be joined
    // before the exception is allowed to unwind the caller.
    try {
        for (unsigned i = 0; i < n; ++i) {
            handles.push_back(rt_.spawn(
                rt_.mainContext(), [this, i, n, &fn](ThreadContext &ctx) {
                    Worker worker(*this, Worker::Mode::Clean, i, n,
                                  workerSeed(seed_, i));
                    worker.bindContext(&ctx);
                    fn(worker);
                    std::lock_guard<std::mutex> guard(totalsMutex_);
                    sinkHashes_[i] =
                        mix64(sinkHashes_[i], worker.sinkHash());
                }));
        }
    } catch (const ExecutionAborted &) {
        // fall through to the joins below and rethrow afterwards
    } catch (const DeadlockError &) {
        pending = std::current_exception();
    } catch (const TraceError &) {
        // A replay fault mid-spawn (the schedule ran out or diverged):
        // the driver latched it and raised the abort flag, so the
        // workers spawned so far unwind promptly and the joins below
        // reap them before the fault leaves this frame.
        pending = std::current_exception();
    }
    // Join every spawned worker even when a join itself fails — the
    // first error is deferred, never allowed to leave workers unreaped.
    for (const ThreadHandle &h : handles) {
        try {
            rt_.join(rt_.mainContext(), h);
        } catch (...) {
            if (!pending)
                pending = std::current_exception();
        }
    }
    if (pending)
        std::rethrow_exception(pending);
    // aborted(), not raceOccurred(): under the degraded Report/Count
    // policies recorded races do not stop the run.
    if (rt_.aborted())
        throw ExecutionAborted();
}

void
CleanEnv::declareOutput(const void *data, std::size_t bytes)
{
    outputData_ = data;
    outputBytes_ = bytes;
}

void
CleanEnv::lockOp(Worker &w, unsigned id)
{
    mutexes_[id].lock(*w.context());
}

void
CleanEnv::unlockOp(Worker &w, unsigned id)
{
    mutexes_[id].unlock(*w.context());
}

void
CleanEnv::barrierOp(Worker &w, unsigned id)
{
    barriers_[id].arrive(*w.context());
}

void
CleanEnv::condWaitOp(Worker &w, unsigned cond, unsigned mutex)
{
    conds_[cond].wait(*w.context(), mutexes_[mutex]);
}

void
CleanEnv::condSignalOp(Worker &w, unsigned cond)
{
    conds_[cond].signal(*w.context());
}

void
CleanEnv::condBroadcastOp(Worker &w, unsigned cond)
{
    conds_[cond].broadcast(*w.context());
}

EnvTotals
CleanEnv::totals() const
{
    std::lock_guard<std::mutex> guard(totalsMutex_);
    EnvTotals t;
    const CheckerStats stats = rt_.aggregatedCheckerStats();
    t.reads = stats.sharedReads;
    t.writes = stats.sharedWrites;
    t.bytes = stats.accessedBytes;
    t.outputHash = hashOutput(outputData_, outputBytes_, sinkHashes_);
    return t;
}

} // namespace clean::wl
