#include "sim/clean_hw.h"

#include <algorithm>

#include "support/logging.h"

namespace clean::sim
{

const char *
epochModeName(EpochMode mode)
{
    switch (mode) {
      case EpochMode::Clean: return "clean";
      case EpochMode::Byte1: return "1B-epoch";
      case EpochMode::Byte4: return "4B-epoch";
    }
    return "?";
}

void
HwStats::exportTo(StatSet &stats, const std::string &prefix) const
{
    stats.counter(prefix + ".private") += privateAccesses;
    stats.counter(prefix + ".fast") += fastAccesses;
    stats.counter(prefix + ".vcLoad") += vcLoadAccesses;
    stats.counter(prefix + ".update") += updateAccesses;
    stats.counter(prefix + ".vcLoadUpdate") += vcLoadUpdateAccesses;
    stats.counter(prefix + ".expand") += expandAccesses;
    stats.counter(prefix + ".compactLineAccesses") += compactLineAccesses;
    stats.counter(prefix + ".expandedLineAccesses") +=
        expandedLineAccesses;
    stats.counter(prefix + ".lineExpansions") += lineExpansions;
    stats.counter(prefix + ".miscalcPenalties") += miscalcPenalties;
    stats.counter(prefix + ".racesDetected") += racesDetected;
}

CleanHwUnit::CleanHwUnit(MemoryHierarchy &mem, unsigned cores,
                         EpochMode mode, const EpochConfig &config)
    : mem_(mem), mode_(mode), config_(config)
{
    (void)cores;
}

EpochValue *
CleanHwUnit::epochPage(Addr addr)
{
    const Addr key = addr / kPageBytes;
    auto &slot = pages_[key];
    if (!slot)
        slot = std::make_unique<EpochValue[]>(kPageBytes);
    return slot.get();
}

EpochValue
CleanHwUnit::epochAt(Addr addr)
{
    return epochPage(addr)[addr % kPageBytes];
}

void
CleanHwUnit::setEpoch(Addr addr, EpochValue e)
{
    epochPage(addr)[addr % kPageBytes] = e;
}

Cycles
CleanHwUnit::checkAccess(unsigned core, const VectorClock &vc, Addr addr,
                         std::size_t size, bool isWrite, ThreadId tid)
{
    if (tid == kTidFromCore)
        tid = static_cast<ThreadId>(core);
    if (mode_ == EpochMode::Clean)
        return checkClean(core, tid, vc, addr, size, isWrite);
    return checkFlat(core, tid, vc, addr, size, isWrite,
                     mode_ == EpochMode::Byte1 ? 1 : 4);
}

Cycles
CleanHwUnit::checkClean(unsigned core, ThreadId myTid,
                        const VectorClock &vc, Addr addr,
                        std::size_t size, bool isWrite)
{
    const EpochValue myEpoch = vc.element(myTid);

    Cycles latency = 0;
    bool needVcLoad = false;
    bool needUpdate = false;
    bool didExpand = false;

    Addr pos = addr;
    std::size_t remaining = size;
    while (remaining > 0) {
        const Addr dataLine = pos / kCacheLineBytes;
        const Addr lineEnd = (dataLine + 1) * kCacheLineBytes;
        const std::size_t span =
            std::min<std::size_t>(remaining, lineEnd - pos);
        auto expIt = expandedLines_.find(dataLine);
        const bool expanded =
            expIt != expandedLines_.end() && expIt->second;

        if (expanded)
            stats_.expandedLineAccesses++;
        else
            stats_.compactLineAccesses++;

        // 1. Hardware always assumes compact layout first.
        latency += mem_.accessLine(core, compactMetaLine(dataLine), false);

        if (expanded) {
            // Address miscalculation (§5.3): at least 1 extra cycle;
            // epochs for bytes at line offset >= 16 live in additional
            // epoch lines that must now be fetched.
            latency += 1;
            stats_.miscalcPenalties++;
            const std::size_t off0 = pos % kCacheLineBytes;
            const std::size_t off1 = off0 + span - 1;
            for (unsigned s = off0 / 16 ? off0 / 16 : 1;
                 s <= off1 / 16 && s <= 3; ++s) {
                if (s >= 1)
                    latency += mem_.accessLine(
                        core, expandedMetaLine(dataLine, s), false);
            }
        }

        // 2. Functional per-byte check + fast-path evaluation.
        for (std::size_t i = 0; i < span; ++i) {
            const EpochValue raw = epochAt(pos + i);
            const EpochValue epoch = raw & ~EpochConfig::expandedBit();
            const ThreadId writer = config_.tidOf(epoch);
            if (writer != myTid && epoch != 0)
                needVcLoad = true;
            if (isWrite && epoch != (myEpoch & ~EpochConfig::expandedBit()))
                needUpdate = true;
            if (config_.clockOf(epoch) > vc.clockOf(writer))
                stats_.racesDetected++;
        }
        // Without the Figure 4b comparator there is no sameThread /
        // sameEpoch shortcut: the VC element is always fetched.
        if (!fastPath_)
            needVcLoad = true;

        if (needVcLoad) {
            // 3. Load the vector-clock element from memory and compare.
            latency += mem_.accessLine(core, vcLine(core), false);
        }

        if (isWrite && needUpdate) {
            bool expandNow = false;
            if (!expanded) {
                // Expansion test: a partially-covered 4-byte group that
                // must change epoch forces the expanded layout.
                const Addr firstGroup = pos / 4;
                const Addr lastGroup = (pos + span - 1) / 4;
                for (Addr g = firstGroup; g <= lastGroup && !expandNow;
                     ++g) {
                    const Addr gBegin = g * 4;
                    const bool fullyCovered =
                        gBegin >= pos && gBegin + 4 <= pos + span;
                    if (fullyCovered)
                        continue;
                    const EpochValue groupEpoch =
                        epochAt(gBegin) & ~EpochConfig::expandedBit();
                    if (groupEpoch !=
                        (myEpoch & ~EpochConfig::expandedBit())) {
                        expandNow = true;
                    }
                }
            }
            if (expandNow) {
                // Stretch: 1 cycle + write all 4 epoch lines (§5.3).
                latency += 1;
                latency +=
                    mem_.accessLine(core, compactMetaLine(dataLine), true);
                for (unsigned s = 1; s <= 3; ++s)
                    latency += mem_.accessLine(
                        core, expandedMetaLine(dataLine, s), true);
                expandedLines_[dataLine] = true;
                stats_.lineExpansions++;
                didExpand = true;
                // Functionally the per-byte store below still applies.
                for (std::size_t i = 0; i < span; ++i)
                    setEpoch(pos + i, myEpoch);
            } else if (!expanded) {
                // Compact update: whole groups adopt the new epoch.
                latency +=
                    mem_.accessLine(core, compactMetaLine(dataLine), true);
                const Addr firstGroup = pos / 4;
                const Addr lastGroup = (pos + span - 1) / 4;
                for (Addr g = firstGroup; g <= lastGroup; ++g) {
                    const Addr gBegin = g * 4;
                    const bool fullyCovered =
                        gBegin >= pos && gBegin + 4 <= pos + span;
                    if (fullyCovered ||
                        (epochAt(gBegin) & ~EpochConfig::expandedBit()) ==
                            (myEpoch & ~EpochConfig::expandedBit())) {
                        for (Addr b = gBegin; b < gBegin + 4; ++b)
                            setEpoch(b, myEpoch);
                    }
                }
            } else {
                // Expanded update: write the epoch lines covering the
                // accessed bytes.
                const std::size_t off0 = pos % kCacheLineBytes;
                const std::size_t off1 = off0 + span - 1;
                for (unsigned s = off0 / 16; s <= off1 / 16 && s <= 3;
                     ++s) {
                    const Addr metaLine =
                        s == 0 ? compactMetaLine(dataLine)
                               : expandedMetaLine(dataLine, s);
                    latency += mem_.accessLine(core, metaLine, true);
                }
                for (std::size_t i = 0; i < span; ++i)
                    setEpoch(pos + i, myEpoch);
            }
        }

        pos += span;
        remaining -= span;
    }

    // Per-access classification (Figure 10 left bars).
    if (didExpand)
        stats_.expandAccesses++;
    else if (needVcLoad && isWrite && needUpdate)
        stats_.vcLoadUpdateAccesses++;
    else if (needVcLoad)
        stats_.vcLoadAccesses++;
    else if (isWrite && needUpdate)
        stats_.updateAccesses++;
    else
        stats_.fastAccesses++;

    return latency;
}

Cycles
CleanHwUnit::checkFlat(unsigned core, ThreadId myTid,
                       const VectorClock &vc, Addr addr,
                       std::size_t size, bool isWrite,
                       unsigned bytesPerEpoch)
{
    const EpochValue myEpoch = vc.element(myTid);

    Cycles latency = 0;
    bool needVcLoad = false;
    bool needUpdate = false;

    // Metadata occupies bytesPerEpoch bytes per data byte at a flat
    // offset; compute the metadata line range for the access.
    const Addr metaStart =
        kCompactBase + addr * bytesPerEpoch;
    const Addr metaEnd = metaStart + size * bytesPerEpoch;
    for (Addr line = metaStart / kCacheLineBytes;
         line <= (metaEnd - 1) / kCacheLineBytes; ++line) {
        latency += mem_.accessLine(core, line, false);
    }

    for (std::size_t i = 0; i < size; ++i) {
        const EpochValue epoch =
            epochAt(addr + i) & ~EpochConfig::expandedBit();
        const ThreadId writer = config_.tidOf(epoch);
        if (writer != myTid && epoch != 0)
            needVcLoad = true;
        if (isWrite && epoch != (myEpoch & ~EpochConfig::expandedBit()))
            needUpdate = true;
        if (config_.clockOf(epoch) > vc.clockOf(writer))
            stats_.racesDetected++;
    }

    if (needVcLoad)
        latency += mem_.accessLine(core, vcLine(core), false);
    if (isWrite && needUpdate) {
        for (Addr line = metaStart / kCacheLineBytes;
             line <= (metaEnd - 1) / kCacheLineBytes; ++line) {
            latency += mem_.accessLine(core, line, true);
        }
        for (std::size_t i = 0; i < size; ++i)
            setEpoch(addr + i, myEpoch);
    }

    if (needVcLoad && isWrite && needUpdate)
        stats_.vcLoadUpdateAccesses++;
    else if (needVcLoad)
        stats_.vcLoadAccesses++;
    else if (isWrite && needUpdate)
        stats_.updateAccesses++;
    else
        stats_.fastAccesses++;

    return latency;
}

} // namespace clean::sim
