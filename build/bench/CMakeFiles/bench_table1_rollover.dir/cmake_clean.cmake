file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_rollover.dir/bench_table1_rollover.cc.o"
  "CMakeFiles/bench_table1_rollover.dir/bench_table1_rollover.cc.o.d"
  "bench_table1_rollover"
  "bench_table1_rollover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_rollover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
