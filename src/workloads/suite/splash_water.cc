/**
 * @file
 * water_nsq / water_sp — molecular dynamics (SPLASH-2).
 *
 * water_nsq: O(n^2) pairwise forces; each thread computes the pairs of
 * its molecule slice and scatter-adds into *both* molecules' force
 * accumulators under per-molecule locks (the SPLASH original does the
 * same with per-molecule locks), then integrates its own slice after a
 * barrier.
 *
 * water_sp: spatial decomposition — molecules binned into a 3D cell
 * grid (per-cell locks), forces only from the home and neighbor cells;
 * much fewer pair interactions, same integrate phase. Race-free.
 *
 * Racy variant (water_nsq): the force scatter-add skips the molecule
 * locks — unsynchronized accumulate (WAW), the textbook MD reduction
 * race.
 */

#include "workloads/suite/factories.h"
#include "workloads/suite/kernel_common.h"

namespace clean::wl::suite
{

namespace
{

struct Molecule
{
    double x, y, z;
    double vx, vy, vz;
    double fx, fy, fz;
    double pad[3];
};

class Water : public KernelBase
{
  public:
    Water(const char *name, bool spatial, bool racySupported)
        : KernelBase(name, "splash2", racySupported), spatial_(spatial)
    {
    }

    void
    run(Env &env, const WorkloadParams &p) override
    {
        const std::uint64_t n =
            spatial_ ? scaled(p.scale, 256, 1024, 4096)
                     : scaled(p.scale, 96, 256, 768);
        const std::uint64_t steps = scaled(p.scale, 2, 3, 5);
        const unsigned cellsPerSide = 4;
        const unsigned nCells =
            cellsPerSide * cellsPerSide * cellsPerSide;
        const std::uint64_t cellCap = 4 * (n / nCells + 8);

        auto *mol = env.allocShared<Molecule>(n);
        auto *cellCount = env.allocShared<std::uint32_t>(nCells);
        auto *cellList = env.allocShared<std::uint32_t>(nCells * cellCap);

        std::vector<unsigned> molLocks;
        for (unsigned i = 0; i < 64; ++i)
            molLocks.push_back(env.createMutex());
        std::vector<unsigned> cellLocks;
        for (unsigned c = 0; c < nCells; ++c)
            cellLocks.push_back(env.createMutex());
        const unsigned phase = env.createBarrier(p.threads);

        {
            Prng init(p.seed);
            for (std::uint64_t i = 0; i < n; ++i) {
                mol[i].x = init.nextDouble();
                mol[i].y = init.nextDouble();
                mol[i].z = init.nextDouble();
                mol[i].vx = init.nextDouble() - 0.5;
                mol[i].vy = init.nextDouble() - 0.5;
                mol[i].vz = init.nextDouble() - 0.5;
                mol[i].fx = mol[i].fy = mol[i].fz = 0.0;
            }
        }

        const bool spatial = spatial_;
        const bool racy = p.racy && hasRacyVariant();
        env.parallel(p.threads, [&](Worker &w) {
            const Slice slice = sliceOf(n, w.index(), w.count());
            auto lockOf = [&](std::uint64_t m) {
                return molLocks[m % molLocks.size()];
            };
            auto addForce = [&](std::uint64_t m, double fx, double fy,
                                double fz) {
                if (!racy)
                    w.lock(lockOf(m));
                w.update(&mol[m].fx, [fx](double v) { return v + fx; });
                w.update(&mol[m].fy, [fy](double v) { return v + fy; });
                w.update(&mol[m].fz, [fz](double v) { return v + fz; });
                if (!racy)
                    w.unlock(lockOf(m));
            };
            auto pairForce = [&](std::uint64_t i, std::uint64_t j) {
                const double dx = w.read(&mol[i].x) - w.read(&mol[j].x);
                const double dy = w.read(&mol[i].y) - w.read(&mol[j].y);
                const double dz = w.read(&mol[i].z) - w.read(&mol[j].z);
                const double r2 = dx * dx + dy * dy + dz * dz + 0.01;
                if (r2 > 0.09)
                    return; // cutoff
                const double inv = 1.0 / (r2 * r2 * r2);
                const double f = 24.0 * inv * (2.0 * inv - 1.0) / r2;
                addForce(i, f * dx, f * dy, f * dz);
                addForce(j, -f * dx, -f * dy, -f * dz);
                w.compute(20);
            };
            auto cellOf = [&](std::uint64_t i) -> unsigned {
                auto clampDim = [&](double v) {
                    return std::min<unsigned>(
                        cellsPerSide - 1,
                        static_cast<unsigned>(
                            std::max(0.0, v * cellsPerSide)));
                };
                const unsigned cx = clampDim(w.read(&mol[i].x));
                const unsigned cy = clampDim(w.read(&mol[i].y));
                const unsigned cz = clampDim(w.read(&mol[i].z));
                return (cz * cellsPerSide + cy) * cellsPerSide + cx;
            };

            for (std::uint64_t step = 0; step < steps; ++step) {
                // Zero own forces.
                for (std::uint64_t i = slice.begin; i < slice.end; ++i) {
                    w.write(&mol[i].fx, 0.0);
                    w.write(&mol[i].fy, 0.0);
                    w.write(&mol[i].fz, 0.0);
                }
                if (spatial) {
                    // Rebin.
                    const Slice cells =
                        sliceOf(nCells, w.index(), w.count());
                    for (std::uint64_t c = cells.begin; c < cells.end;
                         ++c) {
                        w.write(&cellCount[c], std::uint32_t{0});
                    }
                    w.barrier(phase);
                    for (std::uint64_t i = slice.begin; i < slice.end;
                         ++i) {
                        const unsigned c = cellOf(i);
                        w.lock(cellLocks[c]);
                        const std::uint32_t k = w.read(&cellCount[c]);
                        if (k < cellCap) {
                            w.write(&cellList[c * cellCap + k],
                                    static_cast<std::uint32_t>(i));
                            w.write(&cellCount[c], k + 1);
                        }
                        w.unlock(cellLocks[c]);
                    }
                }
                w.barrier(phase);

                if (!spatial) {
                    // O(n^2): thread owns pairs (i, j) with i in slice,
                    // j > i.
                    for (std::uint64_t i = slice.begin; i < slice.end;
                         ++i) {
                        for (std::uint64_t j = i + 1; j < n; ++j)
                            pairForce(i, j);
                    }
                } else {
                    // Home + forward-neighbor cells (half shell to avoid
                    // double counting).
                    const Slice cells =
                        sliceOf(nCells, w.index(), w.count());
                    for (std::uint64_t c = cells.begin; c < cells.end;
                         ++c) {
                        const std::uint32_t cnt = w.read(&cellCount[c]);
                        for (std::uint32_t a = 0; a < cnt; ++a) {
                            const std::uint32_t i =
                                w.read(&cellList[c * cellCap + a]);
                            // within cell
                            for (std::uint32_t b2 = a + 1; b2 < cnt;
                                 ++b2) {
                                const std::uint32_t j = w.read(
                                    &cellList[c * cellCap + b2]);
                                pairForce(i, j);
                            }
                            // one forward neighbor (linearized)
                            const unsigned nc =
                                (static_cast<unsigned>(c) + 1) % nCells;
                            const std::uint32_t ncnt =
                                w.read(&cellCount[nc]);
                            for (std::uint32_t b2 = 0; b2 < ncnt; ++b2) {
                                const std::uint32_t j = w.read(
                                    &cellList[nc * cellCap + b2]);
                                if (j != i)
                                    pairForce(i, j);
                            }
                        }
                    }
                }
                w.barrier(phase);

                // Integrate own slice.
                for (std::uint64_t i = slice.begin; i < slice.end; ++i) {
                    const double dt = 0.001;
                    const double vx =
                        w.read(&mol[i].vx) + dt * w.read(&mol[i].fx);
                    const double vy =
                        w.read(&mol[i].vy) + dt * w.read(&mol[i].fy);
                    const double vz =
                        w.read(&mol[i].vz) + dt * w.read(&mol[i].fz);
                    w.write(&mol[i].vx, vx);
                    w.write(&mol[i].vy, vy);
                    w.write(&mol[i].vz, vz);
                    auto wrap = [](double v) {
                        if (v < 0.0)
                            return v + 1.0;
                        if (v >= 1.0)
                            return v - 1.0;
                        return v;
                    };
                    w.write(&mol[i].x, wrap(w.read(&mol[i].x) + dt * vx));
                    w.write(&mol[i].y, wrap(w.read(&mol[i].y) + dt * vy));
                    w.write(&mol[i].z, wrap(w.read(&mol[i].z) + dt * vz));
                    w.compute(10);
                }
                w.barrier(phase);
            }

            std::uint64_t h = 0;
            for (std::uint64_t i = slice.begin; i < slice.end; ++i)
                h = h * 31 + static_cast<std::uint64_t>(
                                 (w.read(&mol[i].x) + w.read(&mol[i].y)) *
                                 1e6);
            w.sink(h);
        });

        env.declareOutput(mol, n * sizeof(Molecule));
    }

  private:
    bool spatial_;
};

} // namespace

std::unique_ptr<Workload>
makeWaterNsq()
{
    return std::make_unique<Water>("water_nsq", false, true);
}

std::unique_ptr<Workload>
makeWaterSp()
{
    return std::make_unique<Water>("water_sp", true, false);
}

} // namespace clean::wl::suite
