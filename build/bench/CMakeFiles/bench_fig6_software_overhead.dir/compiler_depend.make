# Empty compiler generated dependencies file for bench_fig6_software_overhead.
# This may be replaced when dependencies are built.
