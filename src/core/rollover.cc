#include "core/rollover.h"

#include "support/backoff.h"

namespace clean
{

void
RolloverController::parkAndMaybeReset(ThreadId self,
                                      const std::function<bool()> &aborted)
{
    if (!pending())
        return;
    bool expected = false;
    if (resetterClaimed_.compare_exchange_strong(expected, true)) {
        // Elected: wait until the rest of the world is quiescent, reset,
        // then release everyone.
        SpinWait spin;
        while (!host_.allOthersQuiescent(self)) {
            if (aborted && aborted()) {
                // The run is unwinding; un-claim so the controller stays
                // usable and let the caller convert this into its abort
                // exception. pending_ stays set — nobody will park on it
                // again because every parker polls the same abort flag.
                resetterClaimed_.store(false);
                throw AbortedWait{};
            }
            spin.pause();
        }
        host_.performReset();
        resets_.fetch_add(1, std::memory_order_relaxed);
        pending_.store(false);
        resetterClaimed_.store(false);
        return;
    }
    // Someone else is resetting; stay parked until they finish.
    SpinWait spin;
    while (pending()) {
        if (aborted && aborted())
            throw AbortedWait{};
        spin.pause();
    }
}

} // namespace clean
