#include "recover/recovery.h"

namespace clean::recover
{

std::vector<Addr>
RecoveryManager::quarantinedSites() const
{
    std::lock_guard<std::mutex> guard(m_);
    return std::vector<Addr>(quarantined_.begin(), quarantined_.end());
}

} // namespace clean::recover
