/**
 * @file
 * lu_cb / lu_ncb — dense LU factorization without pivoting (SPLASH-2).
 *
 * The canonical shared-access-frequency stress test: the inner loops
 * touch matrix elements almost exclusively, so the per-access
 * instrumentation cost dominates. In the paper, lu_cb and lu_ncb have
 * the highest shared-access frequency (Figure 7) and the worst
 * software-CLEAN slowdowns (Figure 6); this kernel keeps that profile by
 * performing essentially no work outside shim accesses.
 *
 * lu_cb ("contiguous blocks") owns 2D blocks laid out contiguously in
 * memory; lu_ncb works on the plain row-major matrix so a thread's
 * blocks are strided across it (worse locality, more epoch lines).
 *
 * Racy variant (lu_ncb only, per our 17-racy assignment): the k-step's
 * pivot-row broadcast skips the barrier that separates it from the
 * trailing update — updaters can read pivot entries the owner is still
 * writing (a RAW race) and can observe WAW on re-use of the scratch
 * pivot buffer.
 */

#include "workloads/suite/factories.h"
#include "workloads/suite/kernel_common.h"

namespace clean::wl::suite
{

namespace
{

class Lu : public KernelBase
{
  public:
    Lu(const char *name, bool contiguous, bool racySupported)
        : KernelBase(name, "splash2", racySupported),
          contiguous_(contiguous)
    {
    }

    void
    run(Env &env, const WorkloadParams &p) override
    {
        const std::uint64_t n = scaled(p.scale, 48, 96, 192);
        const std::uint64_t blockSide = 8;
        const std::uint64_t nb = (n + blockSide - 1) / blockSide;

        auto *matrix = env.allocShared<double>(n * n);
        auto *pivotRow = env.allocShared<double>(n);
        const unsigned phase = env.createBarrier(p.threads);

        {
            Prng init(p.seed);
            for (std::uint64_t i = 0; i < n; ++i)
                for (std::uint64_t j = 0; j < n; ++j)
                    matrix[i * n + j] =
                        (i == j ? n * 2.0 : 0.0) + init.nextDouble();
        }

        const bool contiguous = contiguous_;
        const bool racy = p.racy && hasRacyVariant();
        env.parallel(p.threads, [&](Worker &w) {
            // Private pivot-row copy (SPLASH LU does the same): each
            // worker snapshots the shared pivot row once per k-step and
            // streams the inner loop from stack-like private memory.
            auto *privPivot = env.allocPrivate<double>(n);
            // Element addressing: cb remaps blocks contiguously so one
            // thread's working set is dense; ncb uses row-major directly.
            auto at = [&](std::uint64_t i, std::uint64_t j) -> double * {
                if (!contiguous)
                    return &matrix[i * n + j];
                const std::uint64_t bi = i / blockSide,
                                    bj = j / blockSide;
                const std::uint64_t ii = i % blockSide,
                                    jj = j % blockSide;
                const std::uint64_t blockIndex = bi * nb + bj;
                return &matrix[blockIndex * blockSide * blockSide +
                               ii * blockSide + jj];
            };
            auto ownsBlock = [&](std::uint64_t bi, std::uint64_t bj) {
                return (bi * nb + bj) % w.count() == w.index();
            };

            for (std::uint64_t k = 0; k < n; ++k) {
                const std::uint64_t kb = k / blockSide;
                // Column owner scales the k-th column and publishes the
                // pivot row for the trailing update.
                if (kb % w.count() == w.index()) {
                    const double pivot = w.read(at(k, k));
                    for (std::uint64_t i = k + 1; i < n; ++i)
                        w.update(at(i, k),
                                 [pivot](double v) { return v / pivot; });
                    for (std::uint64_t j = k; j < n; ++j)
                        w.write(&pivotRow[j], w.read(at(k, j)));
                }
                if (!racy)
                    w.barrier(phase);

                // Snapshot the pivot row into private memory.
                for (std::uint64_t j = k + 1; j < n; ++j)
                    w.writePrivate(&privPivot[j], w.read(&pivotRow[j]));

                // Trailing update, partitioned by block ownership.
                for (std::uint64_t bi = kb; bi < nb; ++bi) {
                    for (std::uint64_t bj = kb; bj < nb; ++bj) {
                        if (!ownsBlock(bi, bj))
                            continue;
                        const std::uint64_t i0 =
                            std::max(k + 1, bi * blockSide);
                        const std::uint64_t i1 =
                            std::min(n, (bi + 1) * blockSide);
                        const std::uint64_t j0 =
                            std::max(k + 1, bj * blockSide);
                        const std::uint64_t j1 =
                            std::min(n, (bj + 1) * blockSide);
                        for (std::uint64_t i = i0; i < i1; ++i) {
                            const double lik = w.read(at(i, k));
                            for (std::uint64_t j = j0; j < j1; ++j) {
                                const double u =
                                    w.readPrivate(&privPivot[j]);
                                w.update(at(i, j), [lik, u](double v) {
                                    return v - lik * u;
                                });
                            }
                        }
                    }
                }
                w.barrier(phase);
            }

            std::uint64_t h = 0;
            const Slice slice = sliceOf(n, w.index(), w.count());
            for (std::uint64_t i = slice.begin; i < slice.end; ++i)
                h = h * 31 +
                    static_cast<std::uint64_t>(w.read(at(i, i)) * 256.0);
            w.sink(h);
        });

        env.declareOutput(matrix, n * n * sizeof(double));
    }

  private:
    bool contiguous_;
};

} // namespace

std::unique_ptr<Workload>
makeLuCb()
{
    return std::make_unique<Lu>("lu_cb", true, false);
}

std::unique_ptr<Workload>
makeLuNcb()
{
    return std::make_unique<Lu>("lu_ncb", false, true);
}

} // namespace clean::wl::suite
