/**
 * @file
 * Deterministic replay driver (ISSUE 6 tentpole).
 *
 * A recorded trace's TurnGrant events, sorted by (det, tid, seq), ARE
 * the global Kendo synchronization order of the recorded run: grants go
 * to the strict minimum (count, tid) over runnable slots and counters
 * are monotone per thread, so the grant sequence is lexicographically
 * non-decreasing in (count, tid) and the sort reconstructs it exactly.
 *
 * The driver plays two roles during a replay:
 *
 *   1. Schedule enforcement — the runtime's turn-wait loop consults
 *      tryGrant() instead of trusting Kendo alone. A thread may take
 *      its turn only when BOTH the schedule head names it AND Kendo
 *      agrees (kendoReady); requiring both preserves the turn's mutual
 *      exclusion and turns any disagreement into an immediate, precisely
 *      located Divergence fault instead of a hang.
 *
 *   2. Stream validation — as an EventHook on the flight recorder it
 *      compares every deterministic-critical event the replay produces
 *      against the recorded per-lane stream (kind, det stamp and both
 *      payload args). Physically-timed kinds (SfrBegin/End,
 *      ThreadStart/Finish, WatchdogTrip) are not validated, and neither
 *      is RaceDetected: for genuinely racy data the precise detection
 *      point depends on how the racing threads' unsynchronized accesses
 *      interleave between sync points, which no schedule of sync
 *      operations pins down. (Corollary: a genuinely racy run under
 *      --on-race=recover is not bit-replayable either — its recovery
 *      points move the Kendo counters themselves — and replaying one
 *      reports the resulting schedule divergence honestly. Injected
 *      metadata races on race-free programs, the supported recover
 *      scenario, replay exactly.)
 *
 * Fault semantics (support/trace_error.h):
 *   - The first fault is latched (step index + expected/actual events
 *     named) and thrown as TraceError; the driver disarms itself so
 *     sibling threads stop validating while the abort propagates.
 *   - A truncated trace (no completeness footer) replays its prefix;
 *     the first step beyond it raises Truncated, never a hang.
 *   - Once the runtime raises its abort flag the driver is disarmed
 *     (disarm()): post-abort unwind tails are physically timed in both
 *     the recorded and the replayed run, so they are not compared.
 *   - Traces of runs that aborted mid-flight (a Throw race, a watchdog
 *     deadlock) are replayed in *tolerant* mode past the end of the
 *     schedule: how far sibling threads ran before observing the abort
 *     is physical, so the replay falls back to plain Kendo order for
 *     that tail instead of reporting a spurious divergence. The
 *     deterministic prefix — everything up to the recorded failure —
 *     is still validated strictly.
 */

#ifndef CLEAN_DET_REPLAY_H
#define CLEAN_DET_REPLAY_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "det/kendo.h"
#include "obs/trace_schema.h"
#include "support/common.h"
#include "support/trace_error.h"

namespace clean::det
{

/** Outcome of one tryGrant() poll (faults are thrown, not returned). */
enum class GrantStatus { Granted, NotYet };

class ReplayDriver : public obs::EventHook
{
  public:
    /**
     * @param trace        a loaded trace (obs::readTraceFile)
     * @param policyAborts true when the recorded policy aborts the run
     *                     on a race (OnRacePolicy::Throw) — with a
     *                     RaceDetected event in the trace this enables
     *                     tolerant mode (see file comment)
     *
     * Throws TraceError(BadMeta) when the trace's events are
     * inconsistent with its own header (e.g. a tid beyond maxThreads).
     */
    ReplayDriver(obs::TraceFile trace, bool policyAborts);

    const obs::TraceMeta &meta() const { return meta_; }

    /** True iff the trace carries the completeness footer. Watchdog
     *  expiry during a replay wait consults this: a complete trace
     *  deadlocks exactly like the recorded run (DeadlockError), an
     *  incomplete one raises Truncated instead. */
    bool traceComplete() const { return complete_; }

    /** Recorded turn grants / grants consumed so far. */
    std::uint64_t scheduleSize() const;
    std::uint64_t scheduleCursor() const;

    /**
     * One non-blocking poll of the replay turn predicate for thread
     * @p tid at deterministic count @p count. @p kendoReady is the
     * live Kendo predicate (Kendo::tryTurn). Returns Granted when the
     * thread may take its turn; throws TraceError on divergence,
     * truncation, or a fault another thread latched.
     */
    GrantStatus tryGrant(ThreadId tid, DetCount count, bool kendoReady);

    /** Latches and throws the Truncated fault for a replay wait whose
     *  watchdog expired against an incomplete trace. */
    [[noreturn]] void raiseTruncatedWait(ThreadId tid, DetCount count);

    /**
     * Non-consuming peek at thread @p tid's next recorded lane event:
     * returns the recorded sampling level iff it is a SampleLevel event
     * stamped exactly @p det, else -1. The sampling-governor feedback
     * loop is the one physically-timed input to a budgeted run, so a
     * replay re-adopts the *recorded* levels at the recorded SFR
     * boundaries instead of re-measuring; re-emitting the adoption then
     * validates (and consumes) the record through onEvent as usual. The
     * det stamp disambiguates: it strictly increases between boundaries,
     * so at most one lane event can carry the current stamp.
     */
    std::int64_t peekSampleLevel(ThreadId tid, std::uint64_t det) const;

    /** EventHook: validates one replayed event against the recorded
     *  lane stream. Throws TraceError(Divergence/Truncated) on the
     *  recording thread at the offending record site. */
    void onEvent(const obs::Event &e) override;

    /** Invoked once, when the first fault latches — the runtime hooks
     *  its abort flag here so every thread (not just those polling the
     *  driver) quiesces while the fault propagates. The handler runs
     *  under the driver mutex and must not call back into validation. */
    void setFaultHandler(std::function<void()> handler);

    /** Stops schedule enforcement and validation (abort unwinding is
     *  physically timed; the runtime calls this when the abort flag
     *  raises). Latched faults remain queryable. */
    void disarm();
    bool armed() const { return armed_.load(std::memory_order_acquire); }

    /** First latched fault, if any. */
    bool faulted() const;
    TraceFault faultKind() const;
    std::uint64_t faultStep() const;
    std::string faultMessage() const;

  private:
    [[noreturn]] void raiseFaultLocked(TraceFault kind,
                                       const std::string &message,
                                       std::uint64_t step);
    [[noreturn]] void throwLatchedLocked();
    static bool validatedKind(obs::EventKind kind);
    static std::string describe(const obs::Event &e);

    obs::TraceMeta meta_;
    bool complete_;
    bool tolerant_;
    /** TurnGrant events sorted by (det, tid, seq) — the grant order. */
    std::vector<obs::Event> schedule_;
    /** Per-lane validated events sorted by seq; index maxThreads is the
     *  global lane (rollovers). */
    std::vector<std::vector<obs::Event>> lanes_;
    std::vector<std::size_t> laneCursor_;
    std::size_t cursor_ = 0;
    std::uint64_t validatedSteps_ = 0;

    std::atomic<bool> armed_{true};
    std::function<void()> faultHandler_;
    mutable std::mutex mutex_;
    bool faulted_ = false;
    TraceFault faultKind_ = TraceFault::Divergence;
    std::string faultMessage_;
    std::uint64_t faultStep_ = TraceError::kNoStep;
};

} // namespace clean::det

#endif // CLEAN_DET_REPLAY_H
