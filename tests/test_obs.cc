/**
 * @file
 * Observability-layer tests (ISSUE 4 tentpole): event-kind schema
 * round-trips, ring-buffer retention, deterministic merged traces,
 * failure-report event tails and the metrics snapshot.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/clean.h"
#include "obs/flight_recorder.h"
#include "obs/trace_export.h"

namespace clean
{
namespace
{

std::size_t
countOccurrences(const std::string &haystack, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = haystack.find(needle);
         pos != std::string::npos; pos = haystack.find(needle, pos + 1))
        ++n;
    return n;
}

TEST(ObsEvents, KindNamesRoundTrip)
{
    for (std::size_t k = 0; k < obs::kEventKindCount; ++k) {
        const auto kind = static_cast<obs::EventKind>(k);
        const char *name = obs::eventKindName(kind);
        ASSERT_NE(name, nullptr);
        EXPECT_STRNE(name, "?") << "kind " << k << " has no name";
        EXPECT_EQ(obs::eventKindFromName(name), static_cast<int>(k))
            << name;
    }
    EXPECT_EQ(obs::eventKindFromName("no_such_kind"), -1);
    EXPECT_EQ(obs::eventKindFromName(""), -1);
}

TEST(ObsLane, RingOverwritesOldestKeepsNewest)
{
    obs::ThreadLane lane(3, /*capacity=*/8);
    for (std::uint64_t i = 0; i < 20; ++i)
        lane.record(obs::EventKind::SyncAcquire, /*det=*/100 + i, i);
    EXPECT_EQ(lane.recorded(), 20u);
    const std::vector<obs::Event> events = lane.events();
    ASSERT_EQ(events.size(), lane.capacity());
    // Oldest first, and only the newest `capacity` survive.
    EXPECT_EQ(events.front().arg0, 20u - lane.capacity());
    EXPECT_EQ(events.back().arg0, 19u);
    for (const obs::Event &e : events)
        EXPECT_EQ(e.tid, 3u);
    // The lastN view trims further.
    const std::vector<obs::Event> tail = lane.events(3);
    ASSERT_EQ(tail.size(), 3u);
    EXPECT_EQ(tail.back().arg0, 19u);
    EXPECT_EQ(tail.front().arg0, 17u);
}

TEST(ObsRecorder, MergedSortsByDetThenTidThenSeq)
{
    obs::ObsConfig config;
    config.enabled = true;
    obs::FlightRecorder recorder(config, /*maxThreads=*/4);
    obs::ThreadLane *lanes[3];
    for (ThreadId tid = 0; tid < 3; ++tid) {
        lanes[tid] = recorder.lane(tid);
        ASSERT_NE(lanes[tid], nullptr);
    }
    // Interleave stamps across lanes out of order.
    lanes[1]->record(obs::EventKind::SyncAcquire, 20);
    lanes[0]->record(obs::EventKind::SyncAcquire, 10);
    lanes[0]->record(obs::EventKind::SyncRelease, 30);
    lanes[2]->record(obs::EventKind::SyncAcquire, 10);
    recorder.recordGlobal(obs::EventKind::Rollover, 25, 1);

    const std::vector<obs::Event> merged = recorder.merged();
    ASSERT_EQ(merged.size(), 5u);
    EXPECT_EQ(merged[0].det, 10u);
    EXPECT_EQ(merged[0].tid, 0u); // det tie broken by tid
    EXPECT_EQ(merged[1].det, 10u);
    EXPECT_EQ(merged[1].tid, 2u);
    EXPECT_EQ(merged[2].det, 20u);
    EXPECT_EQ(merged[3].det, 25u);
    EXPECT_EQ(merged[3].tid, recorder.globalTid());
    EXPECT_EQ(merged[4].det, 30u);
}

TEST(ObsMetrics, HistogramBucketsArePowersOfTwo)
{
    EXPECT_EQ(obs::Histogram::bucketOf(0), 0u);
    EXPECT_EQ(obs::Histogram::bucketOf(1), 1u);
    EXPECT_EQ(obs::Histogram::bucketOf(2), 2u);
    EXPECT_EQ(obs::Histogram::bucketOf(3), 2u);
    EXPECT_EQ(obs::Histogram::bucketOf(4), 3u);
    EXPECT_EQ(obs::Histogram::bucketOf(~std::uint64_t{0}), 64u);

    obs::Histogram h;
    h.add(0);
    h.add(5);
    h.add(5);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 10u);
    JsonWriter w;
    h.writeTo(w);
    EXPECT_NE(w.str().find("\"count\":3"), std::string::npos) << w.str();
    EXPECT_NE(w.str().find("\"lo\":4,\"hi\":8,\"n\":2"),
              std::string::npos)
        << w.str();
}

TEST(ObsTraceExport, EveryEventKindRoundTripsThroughChromeJson)
{
    // A synthetic stream holding one event of every kind must surface
    // every kind name in the exported args, stay a structurally valid
    // Chrome trace ({"traceEvents":[...]}), and balance every B with
    // an E.
    std::vector<obs::Event> events;
    for (std::size_t k = 0; k < obs::kEventKindCount; ++k) {
        obs::Event e;
        e.det = k + 1;
        e.seq = k;
        e.arg0 = k;
        e.arg1 = k + 1;
        e.tid = 0;
        e.kind = static_cast<obs::EventKind>(k);
        events.push_back(e);
    }
    const std::string json = obs::chromeTraceJson(events, /*globalTid=*/8);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    for (std::size_t k = 0; k < obs::kEventKindCount; ++k) {
        const std::string needle =
            std::string("\"kind\":\"") +
            obs::eventKindName(static_cast<obs::EventKind>(k)) + "\"";
        EXPECT_NE(json.find(needle), std::string::npos) << needle;
    }
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"B\""),
              countOccurrences(json, "\"ph\":\"E\""));
}

TEST(ObsTraceExport, OrphanEndsAndUnclosedBeginsAreRepaired)
{
    // An SfrEnd with no matching begin (overwritten in the ring) must
    // degrade to an instant; an unclosed begin must be closed at the
    // final timestamp — either way the B/E counts balance.
    std::vector<obs::Event> events;
    obs::Event end;
    end.det = 5;
    end.kind = obs::EventKind::SfrEnd;
    events.push_back(end);
    obs::Event begin;
    begin.det = 7;
    begin.seq = 1;
    begin.kind = obs::EventKind::RecoveryBegin;
    events.push_back(begin);
    const std::string json = obs::chromeTraceJson(events, 8);
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"B\""), 1u);
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"E\""), 1u);
    // The orphan end surfaces as an instant, not a bare E.
    EXPECT_NE(json.find("\"kind\":\"sfr_end\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Runtime integration (needs the compiled-in hooks).
// ---------------------------------------------------------------------

RuntimeConfig
obsConfig()
{
    RuntimeConfig config;
    config.maxThreads = 16;
    config.deterministic = true;
    config.heap.sharedBytes = std::size_t{64} << 20;
    config.heap.privateBytes = std::size_t{16} << 20;
    config.obs.enabled = true;
    config.obs.ringEvents = 1 << 14;
    return config;
}

/** 4 threads × 25 locked increments; returns the merged event trace. */
std::string
tracedLockedCounter(std::string *metrics = nullptr,
                    std::string *report = nullptr)
{
    CleanRuntime rt(obsConfig());
    auto *x = rt.heap().allocSharedArray<int>(1);
    CleanMutex m(rt);
    std::vector<ThreadHandle> handles;
    for (int t = 0; t < 4; ++t) {
        handles.push_back(
            rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
                for (int i = 0; i < 25; ++i) {
                    m.lock(ctx);
                    ctx.write(&x[0], ctx.read(&x[0]) + 1);
                    m.unlock(ctx);
                }
            }));
    }
    for (auto &h : handles)
        rt.join(rt.mainContext(), h);
    EXPECT_EQ(rt.mainContext().read(&x[0]), 100);
    if (metrics != nullptr)
        *metrics = rt.metricsJson();
    if (report != nullptr)
        *report = rt.failureReportJson();
    return rt.obsTraceJson();
}

TEST(ObsRuntime, MergedTraceIsByteIdenticalAcrossRuns)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP() << "built with CLEAN_OBS=OFF";
    // The tentpole determinism property: same program, same seed, same
    // thread count — the merged, Kendo-stamped event stream is
    // byte-identical on every run.
    const std::string first = tracedLockedCounter();
    ASSERT_NE(first.find("\"traceEvents\":["), std::string::npos);
    ASSERT_NE(first.find("\"kind\":\"sync_acquire\""),
              std::string::npos);
    ASSERT_NE(first.find("\"kind\":\"thread_start\""),
              std::string::npos);
    for (int run = 1; run < 5; ++run)
        EXPECT_EQ(tracedLockedCounter(), first) << "run " << run;
}

TEST(ObsRuntime, MetricsSnapshotHasCountersAndHistograms)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP() << "built with CLEAN_OBS=OFF";
    std::string metrics;
    tracedLockedCounter(&metrics);
    for (const char *needle :
         {"\"counters\"", "\"sharedReads\"", "\"sharedWrites\"",
          "\"events\"", "\"recorded\"", "\"retainedByKind\"",
          "\"sync_acquire\"", "\"histograms\"", "\"sfrLengthDetEvents\"",
          "\"checkLatencyNs\"", "\"buckets\""}) {
        EXPECT_NE(metrics.find(needle), std::string::npos)
            << needle << " missing from " << metrics;
    }
}

TEST(ObsRuntime, FailureReportEmbedsEventTail)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP() << "built with CLEAN_OBS=OFF";
    // Two unordered writers on one word: the second publisher detects
    // the WAW race; under Count the run completes and the failure
    // report must carry each thread's last events, race included.
    RuntimeConfig config = obsConfig();
    config.onRace = OnRacePolicy::Count;
    CleanRuntime rt(config);
    auto *x = rt.heap().allocSharedArray<int>(1);
    ThreadHandle a = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        ctx.write(&x[0], 1);
    });
    ThreadHandle b = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        ctx.write(&x[0], 2);
    });
    rt.join(rt.mainContext(), a);
    rt.join(rt.mainContext(), b);
    EXPECT_GE(rt.raceCount(), 1u);

    const std::string report = rt.failureReportJson();
    for (const char *needle :
         {"\"events\"", "\"perThreadTail\"", "\"tail\"",
          "\"kind\":\"race_detected\"", "\"kind\":\"thread_start\"",
          "\"kind\":\"thread_finish\""}) {
        EXPECT_NE(report.find(needle), std::string::npos)
            << needle << " missing from " << report;
    }
}

TEST(ObsRuntime, DisabledRecorderCostsNothingAndEmitsNothing)
{
    // obs off (the default): no recorder, empty exports — this is the
    // configuration the 2%-overhead budget is measured in.
    RuntimeConfig config = obsConfig();
    config.obs.enabled = false;
    CleanRuntime rt(config);
    EXPECT_EQ(rt.recorder(), nullptr);
    EXPECT_TRUE(rt.obsTraceJson().empty());
    auto *x = rt.heap().allocSharedArray<int>(1);
    rt.mainContext().write(&x[0], 7);
    EXPECT_EQ(rt.mainContext().read(&x[0]), 7);
}

} // namespace
} // namespace clean
