file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_atomicity.dir/bench_ablation_atomicity.cc.o"
  "CMakeFiles/bench_ablation_atomicity.dir/bench_ablation_atomicity.cc.o.d"
  "bench_ablation_atomicity"
  "bench_ablation_atomicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_atomicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
