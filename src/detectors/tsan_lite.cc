#include "detectors/tsan_lite.h"

#include <algorithm>

namespace clean::detectors
{

TsanLiteDetector::TsanLiteDetector(const EpochConfig &config,
                                   ThreadId maxThreads)
    : Detector(config, maxThreads)
{
}

TsanLiteDetector::~TsanLiteDetector() = default;

TsanLiteDetector::Cell &
TsanLiteDetector::cellFor(Addr wordAddr)
{
    const Addr key = wordAddr / kCellsPerChunk;
    {
        std::lock_guard<std::mutex> guard(chunkMapMutex_);
        auto &slot = chunks_[key];
        if (!slot)
            slot = std::make_unique<Chunk>();
        return slot->cells[wordAddr % kCellsPerChunk];
    }
}

void
TsanLiteDetector::onRead(ThreadId t, Addr addr, std::size_t size)
{
    access(t, addr, size, false);
}

void
TsanLiteDetector::onWrite(ThreadId t, Addr addr, std::size_t size)
{
    access(t, addr, size, true);
}

void
TsanLiteDetector::access(ThreadId t, Addr addr, std::size_t size,
                         bool isWrite)
{
    const VectorClock &vc = threads_[t];
    const EpochValue myEpoch = vc.element(t);

    Addr pos = addr;
    std::size_t remaining = size;
    while (remaining > 0) {
        const Addr word = pos >> 3;
        const unsigned offset = pos & 7;
        const std::size_t span = std::min<std::size_t>(remaining,
                                                       8 - offset);
        std::uint8_t mask = 0;
        for (std::size_t i = 0; i < span; ++i)
            mask |= static_cast<std::uint8_t>(1u << (offset + i));

        Cell &cell = cellFor(word);
        // Scan the k remembered accesses. Everything here is relaxed and
        // unlocked by design: this is the imprecision the paper calls
        // out in ThreadSanitizer.
        for (unsigned r = 0; r < kRecordsPerCell; ++r) {
            const PackedRecord rec =
                cell.records[r].load(std::memory_order_relaxed);
            if (!(rec >> 41 & 1))
                continue;
            const std::uint8_t recMask =
                static_cast<std::uint8_t>(rec >> 32);
            const bool recWrite = rec >> 40 & 1;
            if (!(recMask & mask) || (!recWrite && !isWrite))
                continue;
            const EpochValue recEpoch = static_cast<EpochValue>(rec);
            const ThreadId recTid = config_.tidOf(recEpoch);
            if (recTid == t)
                continue;
            if (config_.clockOf(recEpoch) > vc.clockOf(recTid)) {
                RaceKind kind;
                if (recWrite && isWrite)
                    kind = RaceKind::Waw;
                else if (recWrite)
                    kind = RaceKind::Raw;
                else
                    kind = RaceKind::War;
                report(kind, pos, t, recTid);
            }
        }
        // Round-robin eviction of one record slot.
        const unsigned slot =
            cell.next.fetch_add(1, std::memory_order_relaxed) %
            kRecordsPerCell;
        cell.records[slot].store(pack(myEpoch, mask, isWrite),
                                 std::memory_order_relaxed);

        pos += span;
        remaining -= span;
    }
}

} // namespace clean::detectors
