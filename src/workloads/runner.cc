#include "workloads/runner.h"

#include "detectors/fasttrack.h"
#include "detectors/tsan_lite.h"
#include "recover/recovery.h"
#include "support/logging.h"
#include "support/timer.h"
#include "workloads/backend.h"
#include "workloads/registry.h"

namespace clean::wl
{

const char *
backendKindName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Native: return "native";
      case BackendKind::Clean: return "clean";
      case BackendKind::DetectOnly: return "detect-only";
      case BackendKind::KendoOnly: return "kendo-only";
      case BackendKind::FastTrack: return "fasttrack";
      case BackendKind::TsanLite: return "tsan-lite";
      case BackendKind::Trace: return "trace";
    }
    return "?";
}

namespace
{

RunResult
runClean(Workload &workload, const RunSpec &spec)
{
    RuntimeConfig config = spec.runtime;
    config.detection = spec.backend != BackendKind::KendoOnly;
    config.deterministic = spec.backend != BackendKind::DetectOnly;

    CleanRuntime rt(config);
    CleanEnv env(rt, spec.params.seed);

    RunResult result;
    Timer timer;
    try {
        workload.run(env, spec.params);
    } catch (const RaceException &race) {
        result.raceException = true;
        result.raceMessage = race.what();
    } catch (const DeadlockError &deadlock) {
        result.deadlock = true;
        result.deadlockMessage = deadlock.what();
    } catch (const ExecutionAborted &) {
        // Classified below from the runtime's recorded state (the abort
        // may stem from a race or from a watchdog deadlock).
    }
    result.seconds = timer.elapsedSeconds();

    result.raceCount = rt.raceCount();
    if (rt.deadlockOccurred() && !result.deadlock) {
        result.deadlock = true;
        result.deadlockMessage = rt.firstDeadlock()->what();
    }
    // Under Throw any recorded race failed the run; under the degraded
    // Report/Count policies the run completed and races are only counted.
    if (config.onRace == OnRacePolicy::Throw && rt.raceOccurred())
        result.raceException = true;
    if (result.raceException && result.raceMessage.empty()) {
        if (const RaceException *race = rt.firstRace())
            result.raceMessage = race->what();
    }
    // Recovery supervision (ISSUE 3): under Recover, races were rolled
    // back and re-executed and injected kill-thread faults were retired
    // cleanly; surface the episode ledger so callers can tell a fully
    // recovered run (exit 0) from a quarantined one (exit 5).
    if (const recover::RecoveryManager *mgr = rt.recoveryManager()) {
        const recover::RecoveryStats stats = mgr->stats();
        result.recoveredRaces = stats.recovered;
        result.recoveryAttempts = stats.attempts;
        result.forcedReplays = stats.forcedReplays;
        result.recoveredKills = stats.recoveredKills;
        result.quarantinedSites = stats.quarantinedSites;
    }
    result.failureReport = rt.failureReportJson();
    if (rt.recorder() != nullptr) {
        result.obsTraceJson = rt.obsTraceJson();
        result.metricsJson = rt.metricsJson();
    }

    const EnvTotals totals = env.totals();
    result.outputHash = totals.outputHash;
    result.checker = rt.aggregatedCheckerStats();
    result.reads = result.checker.sharedReads;
    result.writes = result.checker.sharedWrites;
    result.bytes = result.checker.accessedBytes;
    result.detCounts = rt.finalDetCounts();
    result.rollovers = rt.rolloverResets();
    return result;
}

RunResult
runPlain(Workload &workload, const RunSpec &spec)
{
    RunResult result;

    if (spec.backend == BackendKind::Native) {
        NativeEnv env(spec.params.seed);
        Timer timer;
        workload.run(env, spec.params);
        result.seconds = timer.elapsedSeconds();
        const EnvTotals totals = env.totals();
        result.outputHash = totals.outputHash;
        result.reads = totals.reads;
        result.writes = totals.writes;
        result.bytes = totals.bytes;
        return result;
    }

    if (spec.backend == BackendKind::Trace) {
        TraceEnv env(spec.params.seed);
        Timer timer;
        workload.run(env, spec.params);
        result.seconds = timer.elapsedSeconds();
        const EnvTotals totals = env.totals();
        result.outputHash = totals.outputHash;
        result.reads = totals.reads;
        result.writes = totals.writes;
        result.bytes = totals.bytes;
        result.trace = env.takeTrace();
        return result;
    }

    // Baseline detector backends.
    const ThreadId slots = spec.params.threads + 1;
    std::unique_ptr<detectors::Detector> detector;
    if (spec.backend == BackendKind::FastTrack) {
        detector = std::make_unique<detectors::FastTrackDetector>(
            spec.runtime.epoch, slots);
    } else {
        detector = std::make_unique<detectors::TsanLiteDetector>(
            spec.runtime.epoch, slots);
    }
    DetectorEnv env(*detector, spec.params.seed);
    Timer timer;
    workload.run(env, spec.params);
    result.seconds = timer.elapsedSeconds();

    const EnvTotals totals = env.totals();
    result.outputHash = totals.outputHash;
    result.reads = totals.reads;
    result.writes = totals.writes;
    result.bytes = totals.bytes;
    result.detectorReports = detector->reportCount();
    for (const auto &report : detector->reports()) {
        switch (report.kind) {
          case RaceKind::Waw: ++result.detectorWaw; break;
          case RaceKind::Raw: ++result.detectorRaw; break;
          case RaceKind::War: ++result.detectorWar; break;
        }
    }
    return result;
}

} // namespace

RunResult
runWorkload(const RunSpec &spec)
{
    Workload &workload = findWorkload(spec.workload);
    switch (spec.backend) {
      case BackendKind::Clean:
      case BackendKind::DetectOnly:
      case BackendKind::KendoOnly:
        return runClean(workload, spec);
      default:
        return runPlain(workload, spec);
    }
}

} // namespace clean::wl
