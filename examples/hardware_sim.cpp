/**
 * @file
 * Hardware-supported CLEAN end to end (§5, §6.3).
 *
 * Records an execution trace of one benchmark, replays it on the 8-core
 * timing model with and without the CLEAN race-check unit, and prints
 * the slowdown plus the Figure 10-style access breakdown.
 *
 * Usage: hardware_sim [--workload=NAME] [--threads=N]
 */

#include <cstdio>

#include "sim/machine.h"
#include "support/options.h"
#include "workloads/registry.h"
#include "workloads/runner.h"

using namespace clean;
using namespace clean::wl;

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv);

    RunSpec spec;
    spec.workload = opts.getString("workload", "ocean_cp");
    spec.backend = BackendKind::Trace;
    spec.params.threads =
        static_cast<unsigned>(opts.getInt("threads", 8));
    spec.params.scale = Scale::Test;

    std::printf("== Hardware-supported CLEAN: %s, %u threads ==\n\n",
                spec.workload.c_str(), spec.params.threads);

    std::printf("recording trace...\n");
    auto result = runWorkload(spec);
    std::printf("  %s\n\n", result.trace.summary().c_str());

    sim::MachineConfig off;
    off.raceDetection = false;
    std::printf("simulating without race detection...\n");
    const auto base = sim::simulate(result.trace, off);
    std::printf("  %llu cycles\n\n",
                static_cast<unsigned long long>(base.totalCycles));

    sim::MachineConfig on;
    std::printf("simulating with the CLEAN hardware unit...\n");
    const auto checked = sim::simulate(result.trace, on);
    std::printf("  %llu cycles -> slowdown %.2f%%\n\n",
                static_cast<unsigned long long>(checked.totalCycles),
                100.0 * (static_cast<double>(checked.totalCycles) /
                             static_cast<double>(base.totalCycles) -
                         1.0));

    const auto &hw = checked.hw;
    const double total = static_cast<double>(hw.privateAccesses +
                                             hw.sharedAccesses());
    auto pct = [&](std::uint64_t v) {
        return total > 0 ? 100.0 * static_cast<double>(v) / total : 0.0;
    };
    std::printf("access breakdown (Figure 10 style):\n");
    std::printf("  private          %6.2f%%\n", pct(hw.privateAccesses));
    std::printf("  fast             %6.2f%%\n", pct(hw.fastAccesses));
    std::printf("  VC load          %6.2f%%\n", pct(hw.vcLoadAccesses));
    std::printf("  update           %6.2f%%\n", pct(hw.updateAccesses));
    std::printf("  VC load & update %6.2f%%\n",
                pct(hw.vcLoadUpdateAccesses));
    std::printf("  expand           %6.2f%%\n", pct(hw.expandAccesses));
    const double shared =
        static_cast<double>(hw.compactLineAccesses +
                            hw.expandedLineAccesses);
    if (shared > 0) {
        std::printf("\nline-state breakdown:\n");
        std::printf("  compact lines    %6.2f%%\n",
                    100.0 * hw.compactLineAccesses / shared);
        std::printf("  expanded lines   %6.2f%%\n",
                    100.0 * hw.expandedLineAccesses / shared);
    }
    std::printf("\nraces detected: %llu (race-free input -> 0)\n",
                static_cast<unsigned long long>(hw.racesDetected));
    return 0;
}
