#pragma once

// Process exit codes for the cleanrun driver (ISSUE 3 satellite).
//
// | code | meaning                                                    |
// |------|------------------------------------------------------------|
// |  0   | run completed; no race survived recovery                   |
// |  1   | unexpected internal error                                  |
// |  2   | option / usage error (bad flag value, unknown workload)    |
// |  3   | data race detected (Throw/Report/Count policies)           |
// |  4   | watchdog-declared deadlock                                 |
// |  5   | recovery exhausted: at least one site was quarantined      |
// |  6   | record/replay trace fault (support/trace_error.h): the     |
// |      | trace is unreadable, truncated, from another schema        |
// |      | version, recorded under a different configuration, or the  |
// |      | replay diverged from it mid-run                            |
//
// Precedence when a run hits several: trace fault > deadlock >
// quarantine > race — a replay that diverged tells you nothing reliable
// about races or deadlocks, so the trace fault wins.
// Under --on-race=recover a run whose races were all rolled back and
// re-executed (no quarantine) exits 0 — recovery's whole point is to
// turn exit-3 runs into exit-0 runs.

namespace clean
{

enum class ExitCode : int {
    Ok = 0,
    Error = 1,
    OptionError = 2,
    Race = 3,
    Deadlock = 4,
    Quarantine = 5,
    TraceError = 6,
};

inline int
exitCodeForRun(bool deadlock, bool quarantineExhausted, bool raceFailed,
               bool traceFault = false)
{
    if (traceFault)
        return static_cast<int>(ExitCode::TraceError);
    if (deadlock)
        return static_cast<int>(ExitCode::Deadlock);
    if (quarantineExhausted)
        return static_cast<int>(ExitCode::Quarantine);
    if (raceFailed)
        return static_cast<int>(ExitCode::Race);
    return static_cast<int>(ExitCode::Ok);
}

} // namespace clean
