#pragma once

// Per-thread SFR undo log (ISSUE 3).
//
// CLEAN checks a write *before* it takes effect (Fig. 2: check + epoch
// publish, then the store), so at the moment a RaceException fires the
// current synchronization-free region is still isolated: none of its
// writes have been released by a sync op, and the racy store itself has
// not landed. That makes the SFR a natural recovery unit — if we logged
// every tracked write's old bytes and old shadow epochs since the last
// sync op, we can retract the SFR completely and re-execute it.
//
// The log is armed only under OnRacePolicy::Recover (ThreadContext's
// fast path keeps a single combined "slow access" branch, so a run with
// recovery off pays nothing). Each entry snapshots, per access:
//   - the data bytes about to be overwritten (write entries), and the
//     bytes actually stored, so a replay can re-apply the SFR without
//     re-running user code;
//   - the value observed (read entries), so a replay can detect that a
//     concurrent writer changed an input of the SFR (the re-execution
//     would diverge) and retry instead;
//   - the per-byte shadow epochs displaced by the write's publish, so
//     rollback can retract the epochs CLEAN republished before the race
//     was detected (including a partial publish of the racy access
//     itself — the triggering write is logged *before* its check runs).
//
// Accesses the log cannot represent (wider than kMaxAccessBytes, past
// the entry cap, or whose check was dropped by fault injection) poison
// it: the SFR is then ineligible for rollback and a race in it degrades
// to the Report policy. Reads never poison — an unlogged read only
// weakens replay validation.
//
// Rollover interaction: a shadow reset rewrites every live epoch to the
// reset value 0. performReset() calls rewriteEpochsOnReset() on every
// thread's log while its owner is parked, so a post-rollover rollback
// restores the epoch the slot would have had anyway.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "support/common.h"

namespace clean::recover
{

class SfrLog
{
  public:
    /** Widest single access the log can represent (covers long double). */
    static constexpr std::size_t kMaxAccessBytes = 16;

    struct Entry {
        Addr addr = 0;
        std::uint8_t size = 0;
        bool isWrite = false;
        /** Data bytes displaced by a write (undefined for reads). */
        std::uint8_t oldBytes[kMaxAccessBytes] = {};
        /** Bytes stored by a write / value observed by a read. */
        std::uint8_t newBytes[kMaxAccessBytes] = {};
        /** Per-byte shadow epochs before the write's publish. */
        EpochValue oldEpochs[kMaxAccessBytes] = {};
    };

    explicit SfrLog(std::size_t maxEntries) : maxEntries_(maxEntries)
    {
        entries_.reserve(64);
    }

    /** Called at every sync op: the previous SFR's effects are now
     *  released (or were rolled back), so its records are dead. */
    void
    beginSfr()
    {
        entries_.clear();
        poisoned_ = false;
    }

    /** Appends a fresh entry, or nullptr (and poisons) on overflow. */
    Entry *
    append()
    {
        if (CLEAN_UNLIKELY(poisoned_ || entries_.size() >= maxEntries_)) {
            poisoned_ = true;
            return nullptr;
        }
        entries_.emplace_back();
        return &entries_.back();
    }

    /** Marks the current SFR unrecoverable (untracked write). */
    void
    poison()
    {
        poisoned_ = true;
    }

    bool
    poisoned() const
    {
        return poisoned_;
    }

    std::size_t
    size() const
    {
        return entries_.size();
    }

    Entry &
    at(std::size_t i)
    {
        return entries_[i];
    }

    const Entry &
    at(std::size_t i) const
    {
        return entries_[i];
    }

    /** Shadow reset support: every live epoch in the heap was rewritten
     *  to the reset value 0, so the epochs this log would restore must
     *  follow. Called by the rollover resetter while the owning thread
     *  is parked (quiescent — no concurrent append). */
    void
    rewriteEpochsOnReset()
    {
        for (Entry &e : entries_)
            for (std::size_t i = 0; i < kMaxAccessBytes; ++i)
                e.oldEpochs[i] = 0;
    }

  private:
    std::vector<Entry> entries_;
    std::size_t maxEntries_;
    bool poisoned_ = false;
};

} // namespace clean::recover
