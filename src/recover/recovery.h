#pragma once

// Recovery bookkeeping for OnRacePolicy::Recover (ISSUE 3).
//
// The RecoveryManager is the process-global ledger of recovery
// *episodes* (one per admitted RaceException, however many replay
// attempts it takes) and the per-site quarantine: a site whose races
// keep coming back is eventually not worth re-executing — after
// maxRecoveries admitted episodes the site is quarantined and further
// races there degrade to the Report policy, with the site named in
// failureReportJson. Sites are identified by their heap-relative byte
// offset (stable across runs; raw pointers are not).
//
// The mechanics of an episode — rollback, the Kendo-ordered recovery
// token, serialized replay — live in ThreadContext (runtime.cc) and
// RecoveryToken (sync_objects.h); this class only counts and gates.
//
// Episode contract note: rollback retracts shadow epochs the thread
// published during the open SFR *without* changing its ownEpoch, so it
// must explicitly flush the thread's OwnershipCache (rollbackWrites
// does) — the cache's validity argument assumes claimed bytes keep
// holding ownEpoch until the next refreshOwnEpoch, and a rollback is
// the one event that breaks it from the owner's own side.

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "support/common.h"

namespace clean::recover
{

struct RecoveryConfig {
    /** Admitted episodes per site before it is quarantined. 0 means
     *  quarantine on first contact (recovery effectively disabled, but
     *  with the degradation visible in reports and exit codes). */
    std::uint32_t maxRecoveries = 8;
    /** Replay attempts per episode; the last is forced (unchecked). */
    std::uint32_t attemptsPerEpisode = 3;
};

struct RecoveryStats {
    std::uint64_t episodes = 0;        ///< admitted RaceExceptions
    std::uint64_t attempts = 0;        ///< rollback+replay attempts
    std::uint64_t recovered = 0;       ///< episodes that completed
    std::uint64_t forcedReplays = 0;   ///< episodes ending in a forced replay
    std::uint64_t replayRaces = 0;     ///< nested races during replay
    std::uint64_t replayMismatches = 0;///< read-validation failures
    std::uint64_t rolledBackWrites = 0;///< write entries retracted
    std::uint64_t skippedRollbacks = 0;///< bytes a later writer now owns
    std::uint64_t recoveredKills = 0;  ///< kill-thread faults supervised
    std::uint64_t quarantinedSites = 0;///< sites degraded to Report

    /** Field-wise equality (record/replay and chaos determinism
     *  cross-checks compare whole recovery ledgers). */
    bool
    operator==(const RecoveryStats &o) const
    {
        return episodes == o.episodes && attempts == o.attempts &&
               recovered == o.recovered &&
               forcedReplays == o.forcedReplays &&
               replayRaces == o.replayRaces &&
               replayMismatches == o.replayMismatches &&
               rolledBackWrites == o.rolledBackWrites &&
               skippedRollbacks == o.skippedRollbacks &&
               recoveredKills == o.recoveredKills &&
               quarantinedSites == o.quarantinedSites;
    }
    bool operator!=(const RecoveryStats &o) const { return !(*this == o); }
};

class RecoveryManager
{
  public:
    explicit RecoveryManager(const RecoveryConfig &config)
        : config_(config)
    {
    }

    const RecoveryConfig &
    config() const
    {
        return config_;
    }

    /** Gate for a new episode at the given heap-relative site. Returns
     *  false when the site is (or just became) quarantined; the caller
     *  then degrades to Report semantics. */
    bool
    admitEpisode(Addr siteOffset)
    {
        std::lock_guard<std::mutex> guard(m_);
        if (quarantined_.count(siteOffset) != 0)
            return false;
        const std::uint32_t count = ++episodesBySite_[siteOffset];
        if (count > config_.maxRecoveries) {
            quarantined_.insert(siteOffset);
            stats_.quarantinedSites++;
            return false;
        }
        stats_.episodes++;
        return true;
    }

    void
    noteAttempt()
    {
        std::lock_guard<std::mutex> guard(m_);
        stats_.attempts++;
    }

    void
    noteRecovered(bool forced)
    {
        std::lock_guard<std::mutex> guard(m_);
        stats_.recovered++;
        if (forced)
            stats_.forcedReplays++;
    }

    void
    noteReplayRace()
    {
        std::lock_guard<std::mutex> guard(m_);
        stats_.replayRaces++;
    }

    void
    noteReplayMismatch()
    {
        std::lock_guard<std::mutex> guard(m_);
        stats_.replayMismatches++;
    }

    void
    noteRollback(std::uint64_t restoredWrites, std::uint64_t skippedBytes)
    {
        std::lock_guard<std::mutex> guard(m_);
        stats_.rolledBackWrites += restoredWrites;
        stats_.skippedRollbacks += skippedBytes;
    }

    void
    noteRecoveredKill()
    {
        std::lock_guard<std::mutex> guard(m_);
        stats_.recoveredKills++;
    }

    RecoveryStats
    stats() const
    {
        std::lock_guard<std::mutex> guard(m_);
        return stats_;
    }

    /** Quarantined site offsets, sorted (deterministic report order). */
    std::vector<Addr> quarantinedSites() const;

  private:
    mutable std::mutex m_;
    RecoveryConfig config_;
    RecoveryStats stats_;
    std::map<Addr, std::uint32_t> episodesBySite_;
    std::set<Addr> quarantined_;
};

} // namespace clean::recover
