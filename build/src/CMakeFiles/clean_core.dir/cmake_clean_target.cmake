file(REMOVE_RECURSE
  "libclean_core.a"
)
