/**
 * @file
 * Ablation — core count and context switches (§5.1's context-switch
 * case).
 *
 * Replays 8-thread traces on machines with 8, 4, 2 and 1 cores. With
 * fewer cores, threads time-share: each switch costs cycles plus a
 * memory access to reload the per-core main vector-clock register the
 * CLEAN hardware caches (§5.1). Reported: total cycles (normalized to
 * the 8-core machine) and the number of context switches.
 */

#include "bench/common.h"
#include "sim/machine.h"

using namespace clean;
using namespace clean::bench;
using namespace clean::wl;

int
main(int argc, char **argv)
{
    BenchConfig config = parseBench(argc, argv);
    if (!config.options.has("workloads"))
        config.workloads = {"fft", "barnes", "ocean_cp", "streamcluster"};
    const unsigned coreCounts[] = {8, 4, 2, 1};

    std::printf("=== Ablation: time-shared cores & context switches "
                "(threads=%u, scale=%s) ===\n\n",
                config.threads,
                config.options.getString("scale", "test").c_str());
    std::printf("%-14s", "benchmark");
    for (unsigned c : coreCounts)
        std::printf("  %6u-core", c);
    std::printf("   switches@1-core\n");

    for (const auto &name : config.workloads) {
        auto result =
            runWorkload(baseSpec(config, name, BackendKind::Trace));
        double base = 0;
        std::uint64_t switches1 = 0;
        std::printf("%-14s", name.c_str());
        for (unsigned c : coreCounts) {
            sim::MachineConfig machine;
            machine.cores = c;
            const auto stats = sim::simulate(result.trace, machine);
            if (c == coreCounts[0])
                base = static_cast<double>(stats.totalCycles);
            if (c == 1)
                switches1 = stats.contextSwitches;
            std::printf("  %9.2fx",
                        static_cast<double>(stats.totalCycles) / base);
        }
        std::printf("   %llu\n",
                    static_cast<unsigned long long>(switches1));
    }
    std::printf("\nexpected shape: cycles grow as cores shrink "
                "(serialization) plus the switch tax;\nthe race-check "
                "verdicts are identical at every core count.\n");
    return 0;
}
