/**
 * @file
 * Public façade for the CLEAN race-detection library.
 *
 * Pulling in this single header gives application code the full
 * software-only CLEAN system of the paper:
 *
 *   CleanRuntime rt;                       // detection + determinism on
 *   auto *data = rt.heap().allocSharedArray<int>(1024);
 *   CleanMutex m(rt);
 *   auto h = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
 *       m.lock(ctx);
 *       ctx.write(&data[0], 42);
 *       m.unlock(ctx);
 *   });
 *   rt.join(rt.mainContext(), h);
 *
 * A WAW or RAW race throws RaceException in the racing thread and aborts
 * the rest of the execution (ExecutionAborted); WAR races are allowed by
 * design and exception-free executions are deterministic (§3.1).
 */

#ifndef CLEAN_CORE_CLEAN_H
#define CLEAN_CORE_CLEAN_H

#include "core/epoch.h"             // IWYU pragma: export
#include "core/race_check.h"        // IWYU pragma: export
#include "core/race_exception.h"    // IWYU pragma: export
#include "core/runtime.h"           // IWYU pragma: export
#include "core/shared_heap.h"       // IWYU pragma: export
#include "core/sync_objects.h"      // IWYU pragma: export
#include "core/vector_clock.h"      // IWYU pragma: export

#endif // CLEAN_CORE_CLEAN_H
