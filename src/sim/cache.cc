#include "sim/cache.h"

#include "support/logging.h"

namespace clean::sim
{

Cache::Cache(std::size_t capacityBytes, unsigned assoc,
             std::size_t lineBytes)
    : assoc_(assoc)
{
    const std::size_t lines = capacityBytes / lineBytes;
    CLEAN_ASSERT(lines >= assoc && lines % assoc == 0);
    sets_ = lines / assoc;
    ways_.resize(sets_ * assoc_);
}

Cache::AccessResult
Cache::access(Addr line)
{
    ++tick_;
    Way *set = &ways_[setOf(line) * assoc_];
    Way *victim = &set[0];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (set[w].valid && set[w].line == line) {
            set[w].lastUse = tick_;
            ++hits_;
            return {true, false, 0};
        }
        if (!set[w].valid) {
            victim = &set[w];
        } else if (victim->valid && set[w].lastUse < victim->lastUse) {
            victim = &set[w];
        }
    }
    ++misses_;
    AccessResult result{false, victim->valid, victim->line};
    victim->valid = true;
    victim->line = line;
    victim->lastUse = tick_;
    return result;
}

bool
Cache::contains(Addr line) const
{
    const Way *set = &ways_[setOf(line) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (set[w].valid && set[w].line == line)
            return true;
    }
    return false;
}

void
Cache::invalidate(Addr line)
{
    Way *set = &ways_[setOf(line) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (set[w].valid && set[w].line == line) {
            set[w].valid = false;
            return;
        }
    }
}

void
Cache::reset()
{
    for (Way &way : ways_)
        way.valid = false;
    tick_ = 0;
}

} // namespace clean::sim
