/**
 * @file
 * Project-wide fundamental types and small helper macros.
 *
 * Everything in the CLEAN reproduction lives under the `clean` namespace;
 * subsystems use nested namespaces (clean::core, clean::det, clean::sim,
 * clean::wl).
 */

#ifndef CLEAN_SUPPORT_COMMON_H
#define CLEAN_SUPPORT_COMMON_H

#include <cstddef>
#include <cstdint>

#if defined(__GNUC__)
#define CLEAN_ALWAYS_INLINE inline __attribute__((always_inline))
#define CLEAN_NOINLINE __attribute__((noinline))
#define CLEAN_LIKELY(x) __builtin_expect(!!(x), 1)
#define CLEAN_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define CLEAN_ALWAYS_INLINE inline
#define CLEAN_NOINLINE
#define CLEAN_LIKELY(x) (x)
#define CLEAN_UNLIKELY(x) (x)
#endif

namespace clean
{

/** Application data address, as seen by the race detector. */
using Addr = std::uint64_t;

/** Simulated time in cycles. */
using Cycles = std::uint64_t;

/** Dense thread identifier (reusable after join, see EpochConfig). */
using ThreadId = std::uint32_t;

/** Scalar Lamport-style clock value (low bits of an epoch). */
using ClockValue = std::uint32_t;

/** A packed (threadId, clock) pair; the unit of CLEAN write metadata. */
using EpochValue = std::uint32_t;

/** Number of bytes in one cache line in the simulated hierarchy. */
constexpr std::size_t kCacheLineBytes = 64;

/** Shadow bytes maintained per byte of program data (one 32-bit epoch). */
constexpr std::size_t kShadowBytesPerByte = 4;

} // namespace clean

#endif // CLEAN_SUPPORT_COMMON_H
