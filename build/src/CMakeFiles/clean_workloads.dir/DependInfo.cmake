
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/backend.cc" "src/CMakeFiles/clean_workloads.dir/workloads/backend.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/backend.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/clean_workloads.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/runner.cc" "src/CMakeFiles/clean_workloads.dir/workloads/runner.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/runner.cc.o.d"
  "/root/repo/src/workloads/suite/parsec_blackscholes.cc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/parsec_blackscholes.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/parsec_blackscholes.cc.o.d"
  "/root/repo/src/workloads/suite/parsec_bodytrack.cc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/parsec_bodytrack.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/parsec_bodytrack.cc.o.d"
  "/root/repo/src/workloads/suite/parsec_canneal.cc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/parsec_canneal.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/parsec_canneal.cc.o.d"
  "/root/repo/src/workloads/suite/parsec_dedup.cc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/parsec_dedup.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/parsec_dedup.cc.o.d"
  "/root/repo/src/workloads/suite/parsec_facesim.cc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/parsec_facesim.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/parsec_facesim.cc.o.d"
  "/root/repo/src/workloads/suite/parsec_ferret.cc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/parsec_ferret.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/parsec_ferret.cc.o.d"
  "/root/repo/src/workloads/suite/parsec_fluidanimate.cc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/parsec_fluidanimate.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/parsec_fluidanimate.cc.o.d"
  "/root/repo/src/workloads/suite/parsec_raytrace.cc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/parsec_raytrace.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/parsec_raytrace.cc.o.d"
  "/root/repo/src/workloads/suite/parsec_streamcluster.cc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/parsec_streamcluster.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/parsec_streamcluster.cc.o.d"
  "/root/repo/src/workloads/suite/parsec_swaptions.cc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/parsec_swaptions.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/parsec_swaptions.cc.o.d"
  "/root/repo/src/workloads/suite/parsec_vips.cc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/parsec_vips.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/parsec_vips.cc.o.d"
  "/root/repo/src/workloads/suite/parsec_x264.cc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/parsec_x264.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/parsec_x264.cc.o.d"
  "/root/repo/src/workloads/suite/splash_barnes.cc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/splash_barnes.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/splash_barnes.cc.o.d"
  "/root/repo/src/workloads/suite/splash_cholesky.cc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/splash_cholesky.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/splash_cholesky.cc.o.d"
  "/root/repo/src/workloads/suite/splash_fft.cc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/splash_fft.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/splash_fft.cc.o.d"
  "/root/repo/src/workloads/suite/splash_fmm.cc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/splash_fmm.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/splash_fmm.cc.o.d"
  "/root/repo/src/workloads/suite/splash_lu.cc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/splash_lu.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/splash_lu.cc.o.d"
  "/root/repo/src/workloads/suite/splash_ocean.cc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/splash_ocean.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/splash_ocean.cc.o.d"
  "/root/repo/src/workloads/suite/splash_radiosity.cc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/splash_radiosity.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/splash_radiosity.cc.o.d"
  "/root/repo/src/workloads/suite/splash_radix.cc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/splash_radix.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/splash_radix.cc.o.d"
  "/root/repo/src/workloads/suite/splash_raytrace.cc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/splash_raytrace.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/splash_raytrace.cc.o.d"
  "/root/repo/src/workloads/suite/splash_volrend.cc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/splash_volrend.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/splash_volrend.cc.o.d"
  "/root/repo/src/workloads/suite/splash_water.cc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/splash_water.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/suite/splash_water.cc.o.d"
  "/root/repo/src/workloads/trace.cc" "src/CMakeFiles/clean_workloads.dir/workloads/trace.cc.o" "gcc" "src/CMakeFiles/clean_workloads.dir/workloads/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/clean_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clean_detectors.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clean_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clean_det.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clean_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
