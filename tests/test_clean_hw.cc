/**
 * @file
 * CLEAN hardware race-check unit tests (§5): fast-path classification,
 * VC loads, epoch updates, compact->expanded transitions, penalties,
 * epoch-size modes.
 */

#include <gtest/gtest.h>

#include "sim/clean_hw.h"

namespace clean::sim
{
namespace
{

struct HwFixture : ::testing::Test
{
    HwFixture() : mem(2)
    {
        for (ThreadId t = 0; t < 2; ++t) {
            vcs.emplace_back(kDefaultEpochConfig, 2);
            vcs[t].setClock(t, 1);
        }
    }

    std::unique_ptr<CleanHwUnit>
    makeUnit(EpochMode mode = EpochMode::Clean)
    {
        return std::make_unique<CleanHwUnit>(mem, 2, mode);
    }

    MemoryHierarchy mem;
    std::vector<VectorClock> vcs;
};

TEST_F(HwFixture, FirstWriteIsUpdateNotFast)
{
    auto unit = makeUnit();
    unit->checkAccess(0, vcs[0], 0x100000, 4, true);
    EXPECT_EQ(unit->stats().updateAccesses, 1u);
    EXPECT_EQ(unit->stats().fastAccesses, 0u);
}

TEST_F(HwFixture, RepeatWriteBySameThreadIsFast)
{
    auto unit = makeUnit();
    unit->checkAccess(0, vcs[0], 0x100000, 4, true);
    unit->checkAccess(0, vcs[0], 0x100000, 4, true);
    EXPECT_EQ(unit->stats().fastAccesses, 1u);
}

TEST_F(HwFixture, OwnReadIsFast)
{
    auto unit = makeUnit();
    unit->checkAccess(0, vcs[0], 0x100000, 4, true);
    unit->checkAccess(0, vcs[0], 0x100000, 4, false);
    EXPECT_EQ(unit->stats().fastAccesses, 1u);
}

TEST_F(HwFixture, ReadOfUntouchedDataIsFast)
{
    auto unit = makeUnit();
    unit->checkAccess(1, vcs[1], 0x200000, 8, false);
    EXPECT_EQ(unit->stats().fastAccesses, 1u);
}

TEST_F(HwFixture, CrossThreadReadNeedsVcLoad)
{
    auto unit = makeUnit();
    unit->checkAccess(0, vcs[0], 0x100000, 4, true);
    // Thread 1 synchronized with thread 0 (no race), but the hardware
    // still walks the VC-load path because sameThread is false.
    vcs[1].joinFrom(vcs[0]);
    unit->checkAccess(1, vcs[1], 0x100000, 4, false);
    EXPECT_EQ(unit->stats().vcLoadAccesses, 1u);
    EXPECT_EQ(unit->stats().racesDetected, 0u);
}

TEST_F(HwFixture, CrossThreadWriteIsVcLoadAndUpdate)
{
    auto unit = makeUnit();
    unit->checkAccess(0, vcs[0], 0x100000, 4, true);
    vcs[1].joinFrom(vcs[0]);
    unit->checkAccess(1, vcs[1], 0x100000, 4, true);
    EXPECT_EQ(unit->stats().vcLoadUpdateAccesses, 1u);
}

TEST_F(HwFixture, UnorderedConflictCountsRace)
{
    auto unit = makeUnit();
    unit->checkAccess(0, vcs[0], 0x100000, 4, true);
    // No join: thread 1's view of thread 0 is stale -> race.
    unit->checkAccess(1, vcs[1], 0x100000, 4, false);
    EXPECT_GE(unit->stats().racesDetected, 1u);
}

TEST_F(HwFixture, AlignedWritesKeepLineCompact)
{
    auto unit = makeUnit();
    for (Addr a = 0x100000; a < 0x100040; a += 4)
        unit->checkAccess(0, vcs[0], a, 4, true);
    EXPECT_EQ(unit->stats().lineExpansions, 0u);
    EXPECT_EQ(unit->stats().expandedLineAccesses, 0u);
}

TEST_F(HwFixture, PartialGroupWriteByOtherThreadExpands)
{
    auto unit = makeUnit();
    unit->checkAccess(0, vcs[0], 0x100000, 4, true);
    vcs[1].joinFrom(vcs[0]);
    // Single-byte write inside the 4-byte group by another thread: the
    // group would need two different epochs -> expansion (§5.3).
    unit->checkAccess(1, vcs[1], 0x100001, 1, true);
    EXPECT_EQ(unit->stats().lineExpansions, 1u);
    EXPECT_EQ(unit->stats().expandAccesses, 1u);
}

TEST_F(HwFixture, PartialGroupWriteSameEpochDoesNotExpand)
{
    auto unit = makeUnit();
    unit->checkAccess(0, vcs[0], 0x100000, 4, true);
    // Same thread, same epoch: the group keeps one epoch value.
    unit->checkAccess(0, vcs[0], 0x100001, 1, true);
    EXPECT_EQ(unit->stats().lineExpansions, 0u);
}

TEST_F(HwFixture, ExpandedLineAccessesPayMiscalculation)
{
    auto unit = makeUnit();
    unit->checkAccess(0, vcs[0], 0x100000, 4, true);
    vcs[1].joinFrom(vcs[0]);
    unit->checkAccess(1, vcs[1], 0x100001, 1, true); // expand
    unit->checkAccess(1, vcs[1], 0x100020, 4, false); // same data line
    EXPECT_GE(unit->stats().miscalcPenalties, 1u);
    EXPECT_GE(unit->stats().expandedLineAccesses, 1u);
}

TEST_F(HwFixture, ExpansionIsPerLine)
{
    auto unit = makeUnit();
    unit->checkAccess(0, vcs[0], 0x100000, 4, true);
    vcs[1].joinFrom(vcs[0]);
    unit->checkAccess(1, vcs[1], 0x100001, 1, true); // expands line 0
    // A different data line stays compact.
    unit->checkAccess(1, vcs[1], 0x100040, 4, true);
    EXPECT_EQ(unit->stats().lineExpansions, 1u);
    EXPECT_GE(unit->stats().compactLineAccesses, 2u);
}

TEST_F(HwFixture, FunctionalEpochsSurviveExpansion)
{
    auto unit = makeUnit();
    unit->checkAccess(0, vcs[0], 0x100000, 4, true);
    vcs[1].joinFrom(vcs[0]);
    unit->checkAccess(1, vcs[1], 0x100001, 1, true); // expand
    // Unsynchronized third access must still see both writers' epochs:
    VectorClock fresh(kDefaultEpochConfig, 2);
    // fresh has zero clocks -> any prior write is a race.
    const auto before = unit->stats().racesDetected;
    unit->checkAccess(0, fresh, 0x100000, 4, false);
    EXPECT_GT(unit->stats().racesDetected, before);
}

TEST_F(HwFixture, CheckLatencyReflectsMetadataMisses)
{
    auto unit = makeUnit();
    // Cold metadata: the compact epoch line misses all the way to
    // memory -> the check path costs at least the memory latency.
    const Cycles lat = unit->checkAccess(0, vcs[0], 0x100000, 4, true);
    EXPECT_GE(lat, 120u);
    // Warm metadata afterwards.
    const Cycles lat2 = unit->checkAccess(0, vcs[0], 0x100000, 4, true);
    EXPECT_LE(lat2, 2u);
}

TEST_F(HwFixture, Byte4ModeTouchesMoreMetadataLines)
{
    auto unit1 = makeUnit(EpochMode::Byte1);
    auto unit4 = makeUnit(EpochMode::Byte4);
    // A 64-byte access: 1B epochs -> 1 metadata line; 4B epochs -> 4.
    const auto before = mem.accesses();
    unit1->checkAccess(0, vcs[0], 0x300000, 64, false);
    const auto after1 = mem.accesses();
    unit4->checkAccess(0, vcs[0], 0x400000, 64, false);
    const auto after4 = mem.accesses();
    EXPECT_EQ(after1 - before, 1u); // metadata-only traffic
    EXPECT_EQ(after4 - after1, 4u);
}

TEST_F(HwFixture, FlatModesClassifyLikeClean)
{
    auto unit = makeUnit(EpochMode::Byte4);
    unit->checkAccess(0, vcs[0], 0x100000, 4, true);
    unit->checkAccess(0, vcs[0], 0x100000, 4, false);
    EXPECT_EQ(unit->stats().updateAccesses, 1u);
    EXPECT_EQ(unit->stats().fastAccesses, 1u);
}

TEST_F(HwFixture, DisabledFastPathAlwaysLoadsVc)
{
    auto unit = makeUnit();
    unit->setFastPathEnabled(false);
    unit->checkAccess(0, vcs[0], 0x100000, 4, true);
    unit->checkAccess(0, vcs[0], 0x100000, 4, false);
    // Both accesses walk the VC-load path even though sameThread holds.
    EXPECT_EQ(unit->stats().fastAccesses, 0u);
    EXPECT_GE(unit->stats().vcLoadAccesses +
                  unit->stats().vcLoadUpdateAccesses,
              2u);
    // Functional outcome is unchanged: no race.
    EXPECT_EQ(unit->stats().racesDetected, 0u);
}

TEST_F(HwFixture, DisabledFastPathCostsMore)
{
    auto fast = makeUnit();
    auto slow = makeUnit();
    slow->setFastPathEnabled(false);
    // Warm both metadata paths identically first.
    fast->checkAccess(0, vcs[0], 0x500000, 4, true);
    slow->checkAccess(0, vcs[0], 0x600000, 4, true);
    const Cycles f = fast->checkAccess(0, vcs[0], 0x500000, 4, false);
    const Cycles s = slow->checkAccess(0, vcs[0], 0x600000, 4, false);
    EXPECT_GT(s, f);
}

TEST_F(HwFixture, PrivateAccessesOnlyCounted)
{
    auto unit = makeUnit();
    unit->notePrivate();
    unit->notePrivate();
    EXPECT_EQ(unit->stats().privateAccesses, 2u);
    EXPECT_EQ(unit->stats().sharedAccesses(), 0u);
}

TEST_F(HwFixture, StatsExport)
{
    auto unit = makeUnit();
    unit->checkAccess(0, vcs[0], 0x100000, 4, true);
    StatSet stats;
    unit->stats().exportTo(stats, "hw");
    EXPECT_EQ(stats.get("hw.update"), 1u);
}

} // namespace
} // namespace clean::sim
