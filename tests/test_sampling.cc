/**
 * @file
 * SampleGate unit tests (ISSUE 8 tentpole): decision determinism, the
 * admission-probability ladder, cold-region bursts, hot-region backoff
 * and strike-quarantine, calibration SFRs, and telemetry accounting.
 * End-to-end budget behavior (round trips, lockstep soundness) lives in
 * test_replay.cc and test_detector_cross.cc.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/sampling.h"

namespace clean
{
namespace
{

SampleParams
testParams()
{
    SampleParams p;
    p.windowLog2 = 6; // 64-read windows: tests advance quickly
    p.burstWindows = 1;
    p.regionLog2 = 8;
    p.maxStrikes = 2;
    p.seed = 0x5eedbead;
    p.base = 0x1000;
    return p;
}

/** Reads that land in window @p w under testParams(). */
std::uint64_t
readsAt(std::uint64_t w)
{
    return w << 6;
}

TEST(SampleGate, IdenticalConfigurationsDecideIdentically)
{
    SampleParams params = testParams();
    params.initialLevel = 6;
    SampleGate a, b;
    a.configure(params);
    b.configure(params);
    // Mixed regions and windows; both gates must agree on every single
    // decision — this is the property record/replay leans on.
    for (std::uint64_t i = 0; i < 4096; ++i) {
        const Addr addr = 0x1000 + (i * 131) % 65536;
        const std::uint64_t reads = i * 17;
        EXPECT_EQ(a.admit(addr, reads), b.admit(addr, reads))
            << "i=" << i;
    }
}

TEST(SampleGate, LevelZeroAdmitsEverything)
{
    SampleGate gate;
    gate.configure(testParams());
    for (std::uint64_t i = 0; i < 1000; ++i)
        EXPECT_TRUE(gate.admit(0x1000 + i * 64, i * 7));
}

TEST(SampleGate, CalibrationSfrShedsEverythingWithoutStateChurn)
{
    SampleGate gate;
    gate.configure(testParams());
    gate.setCalibSfr(true);
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_FALSE(gate.admit(0x1000 + i * 300, i));
    EXPECT_EQ(gate.telemetry().calibSfrs, 1u);
    // Calibration sheds on the fast path: no decision windows burned.
    EXPECT_EQ(gate.telemetry().windows, 0u);
    gate.setCalibSfr(false);
    EXPECT_TRUE(gate.admit(0x1000, 0));
}

TEST(SampleGate, AdmitProbabilityLadderIsMonotoneWithUnitFloor)
{
    std::uint32_t prev = SampleGate::admitPForLevel(0);
    EXPECT_EQ(prev, 65536u);
    for (std::uint32_t level = 1; level <= SampleGate::kMaxLevel;
         ++level) {
        const std::uint32_t p = SampleGate::admitPForLevel(level);
        EXPECT_LT(p, prev) << "level " << level;
        EXPECT_GE(p, 1u);
        prev = p;
    }
    // Past the deepest level the ladder is clamped, not extended.
    EXPECT_EQ(SampleGate::admitPForLevel(SampleGate::kMaxLevel + 7),
              SampleGate::admitPForLevel(SampleGate::kMaxLevel));
}

TEST(SampleGate, AdmittedFractionDecreasesWithLevel)
{
    // Count admissions over many distinct (region, window) pairs —
    // fresh gate per level so per-region state does not leak across
    // measurements. Bursts are disabled via burstWindows=0.
    const auto admittedAt = [](std::uint32_t level) {
        SampleParams params = testParams();
        params.burstWindows = 0;
        params.initialLevel = level;
        SampleGate gate;
        gate.configure(params);
        std::uint64_t admitted = 0;
        for (std::uint64_t i = 0; i < 20000; ++i) {
            // A new region every probe; windows far apart so no
            // consecutive-window backoff perturbs the measurement.
            if (gate.admit(0x1000 + i * 256, readsAt(3 * i)))
                admitted++;
        }
        return admitted;
    };
    const std::uint64_t l0 = admittedAt(0);
    const std::uint64_t l4 = admittedAt(4);
    const std::uint64_t l12 = admittedAt(12);
    EXPECT_EQ(l0, 20000u);
    EXPECT_LT(l4, l0);
    EXPECT_LT(l12, l4);
    // ~0.75^12 ≈ 3%: deep levels shed hard but never to zero across a
    // large probe set.
    EXPECT_GT(l4, 0u);
    EXPECT_GT(l12, 0u);
}

TEST(SampleGate, LevelForBudgetIsTheFailSafeColdStart)
{
    // The cold-start level is the shallowest one whose admission
    // fraction fits the budget: admission at the level is within
    // budget, one level shallower would exceed it.
    for (std::uint32_t budget : {1u, 5u, 10u, 25u, 50u, 99u}) {
        const std::uint32_t level = SampleGate::levelForBudget(budget);
        EXPECT_LE(
            static_cast<std::uint64_t>(SampleGate::admitPForLevel(level)) *
                100,
            static_cast<std::uint64_t>(budget) * 65536)
            << "budget " << budget;
        if (level > 0)
            EXPECT_GT(static_cast<std::uint64_t>(
                          SampleGate::admitPForLevel(level - 1)) *
                          100,
                      static_cast<std::uint64_t>(budget) * 65536)
                << "budget " << budget;
    }
    // Monotone: a tighter budget never starts shallower.
    for (std::uint32_t b = 1; b < 100; ++b)
        EXPECT_GE(SampleGate::levelForBudget(b),
                  SampleGate::levelForBudget(b + 1))
            << "budget " << b;
    EXPECT_EQ(SampleGate::levelForBudget(100), 0u);
}

TEST(SampleGate, ColdRegionBurstAdmitsBelowSuppressLevel)
{
    SampleParams params = testParams();
    params.burstWindows = 3;
    params.initialLevel = SampleGate::kBurstSuppressLevel - 1;
    SampleGate gate;
    gate.configure(params);
    // Each of 64 fresh regions: its first 3 decision windows admit in
    // full at any level below the suppression cutoff.
    for (std::uint64_t r = 0; r < 64; ++r) {
        const Addr addr = 0x1000 + r * 256;
        for (std::uint64_t w = 0; w < 3; ++w)
            EXPECT_TRUE(gate.admit(addr, readsAt(100 * r + w)))
                << "region " << r << " window " << w;
    }
    EXPECT_EQ(gate.telemetry().bursts, 64u * 3u);
}

TEST(SampleGate, DeepShedRegimeSuppressesBurstsButKeepsThem)
{
    SampleParams params = testParams();
    params.burstWindows = 2;
    params.initialLevel = SampleGate::kMaxLevel;
    SampleGate gate;
    gate.configure(params);
    // At the deepest level the cold-region frontier gets hashed
    // admission (~0.1%), not full-rate bursts: across 256 fresh
    // regions virtually everything sheds and no burst is spent.
    std::uint64_t admitted = 0;
    for (std::uint64_t r = 0; r < 256; ++r)
        admitted += gate.admit(0x1000 + r * 256, readsAt(r)) ? 1 : 0;
    EXPECT_EQ(gate.telemetry().bursts, 0u);
    EXPECT_LT(admitted, 8u);
    // The unspent burst survives suppression: once the level recovers,
    // a suppressed region still gets its full cold burst.
    gate.adoptLevel(SampleGate::kBurstSuppressLevel - 1);
    EXPECT_TRUE(gate.admit(0x1000, readsAt(300)));
    EXPECT_TRUE(gate.admit(0x1000, readsAt(400)));
    EXPECT_EQ(gate.telemetry().bursts, 2u);
}

TEST(SampleGate, HotRegionStrikesOutIntoQuarantine)
{
    SampleParams params = testParams(); // burst 1, maxStrikes 2
    params.initialLevel = 4;
    SampleGate gate;
    gate.configure(params);
    const Addr addr = 0x1000;
    // One region re-deciding in consecutive windows while the level is
    // active: burst (w0), backoff ramp (w1..w8), then strikes. After
    // maxStrikes strikes the region is quarantined: always shed.
    std::uint64_t w = 0;
    while (gate.telemetry().quarantines == 0 && w < 64) {
        gate.admit(addr, readsAt(w));
        ++w;
    }
    EXPECT_EQ(gate.telemetry().quarantines, 1u);
    EXPECT_EQ(gate.telemetry().strikes, params.maxStrikes);
    ASSERT_TRUE(gate.hasPendingQuarantines());
    const auto pending = gate.takePendingQuarantines();
    ASSERT_EQ(pending.size(), 1u);
    EXPECT_EQ(pending[0].region, 0u); // (addr - base) >> regionLog2
    EXPECT_EQ(pending[0].strikes, params.maxStrikes);
    EXPECT_FALSE(gate.hasPendingQuarantines());
    ASSERT_EQ(gate.quarantinedRegions().size(), 1u);
    // Quarantined for good, even in windows far apart.
    EXPECT_FALSE(gate.admit(addr, readsAt(w + 50)));
    EXPECT_FALSE(gate.admit(addr, readsAt(w + 500)));
}

TEST(SampleGate, NonConsecutiveWindowsDoNotStrike)
{
    SampleParams params = testParams();
    params.initialLevel = 4;
    SampleGate gate;
    gate.configure(params);
    // Same region, but every decision two windows apart: the region
    // keeps cooling down, so no strikes and no quarantine ever accrue.
    for (std::uint64_t w = 0; w < 200; w += 2)
        gate.admit(0x1000, readsAt(w));
    EXPECT_EQ(gate.telemetry().strikes, 0u);
    EXPECT_EQ(gate.telemetry().quarantines, 0u);
}

TEST(SampleGate, QuarantineCapacityIsBounded)
{
    SampleParams params = testParams();
    params.burstWindows = 0;
    params.maxStrikes = 1;
    params.initialLevel = 4;
    SampleGate gate;
    gate.configure(params);
    // Strike out far more regions than the local quarantine can hold.
    // Regions are spaced kEntries apart so each maps to the same table
    // entry only with itself (no eviction resets).
    for (std::uint64_t r = 0; r < SampleGate::kMaxQuarantined + 40;
         ++r) {
        const Addr addr = 0x1000 + r * 256 * SampleGate::kEntries;
        for (std::uint64_t w = 0; w < 16 &&
                                  gate.quarantinedRegions().size() <
                                      SampleGate::kMaxQuarantined + 1;
             ++w)
            gate.admit(addr, readsAt(w));
    }
    EXPECT_LE(gate.quarantinedRegions().size(),
              SampleGate::kMaxQuarantined);
    // Sorted: the deterministic listing order reports rely on.
    const auto &regions = gate.quarantinedRegions();
    for (std::size_t i = 1; i < regions.size(); ++i)
        EXPECT_LT(regions[i - 1], regions[i]);
}

TEST(SampleGate, AdoptLevelClampsAndCounts)
{
    SampleGate gate;
    gate.configure(testParams());
    gate.adoptLevel(5);
    EXPECT_EQ(gate.level(), 5u);
    gate.adoptLevel(SampleGate::kMaxLevel + 100);
    EXPECT_EQ(gate.level(), SampleGate::kMaxLevel);
    EXPECT_EQ(gate.telemetry().levelAdoptions, 2u);
}

TEST(SampleGate, TelemetryMergeSums)
{
    SampleParams params = testParams();
    params.initialLevel = 3;
    SampleGate a, b;
    a.configure(params);
    b.configure(params);
    for (std::uint64_t i = 0; i < 256; ++i) {
        a.admit(0x1000 + i * 256, readsAt(i));
        b.admit(0x1000 + i * 512, readsAt(2 * i));
    }
    SampleTelemetry total;
    total.merge(a.telemetry());
    total.merge(b.telemetry());
    EXPECT_EQ(total.windows,
              a.telemetry().windows + b.telemetry().windows);
    EXPECT_EQ(total.bursts, a.telemetry().bursts + b.telemetry().bursts);
}

} // namespace
} // namespace clean
