/**
 * @file
 * Portable chunked epoch store (ablation backend).
 *
 * Maps arbitrary 64-bit data addresses to epoch slots through a hash map
 * of fixed-size chunks (64 KiB of data per chunk). Slots for adjacent
 * bytes are contiguous within a chunk, so the vectorized multi-byte check
 * still applies to accesses that do not straddle a chunk boundary.
 *
 * This backend exists (a) to support checking data outside the
 * SharedHeap and (b) as the comparison point for the
 * bench_ablation_shadow experiment: the paper's fixed-arithmetic layout
 * (LinearShadow) wins precisely because it avoids this lookup.
 */

#ifndef CLEAN_CORE_SPARSE_SHADOW_H
#define CLEAN_CORE_SPARSE_SHADOW_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "support/common.h"

namespace clean
{

/** Hash-of-chunks epoch store for arbitrary addresses. */
class SparseShadow
{
  public:
    /** Data bytes covered by one chunk (must be a power of two). */
    static constexpr std::size_t kChunkBytes = std::size_t{1} << 16;

    SparseShadow() : generation_(nextGeneration_.fetch_add(1)) {}

    SparseShadow(const SparseShadow &) = delete;
    SparseShadow &operator=(const SparseShadow &) = delete;

    /** Epoch slot of the data byte at @p addr; creates the chunk lazily. */
    CLEAN_ALWAYS_INLINE EpochValue *
    slots(Addr addr)
    {
        const Addr key = addr >> kChunkShift;
        if (CLEAN_LIKELY(key == cachedKey_ && cachedGen_ == generation_))
            return cachedChunk_ + (addr & kChunkMask);
        return slotsSlow(addr, key);
    }

    /** Contiguity holds to the end of the 64 KiB chunk. */
    CLEAN_ALWAYS_INLINE std::size_t
    contiguousSlots(Addr addr) const
    {
        return kChunkBytes - static_cast<std::size_t>(addr & kChunkMask);
    }

    /**
     * Rollover reset: drops every chunk instead of zeroing it in place
     * (the sparse analogue of LinearShadow's O(1) madvise reset) — the
     * next access lazily reallocates a zeroed chunk, so no thread
     * spends O(shadow) memset time inside the stop-the-world reset
     * window. Bumps the instance generation so every thread-local
     * chunk-cache entry goes stale before the freed memory can be
     * handed out again. Callers must guarantee no concurrent access
     * (the rollover protocol parks all other threads; tests are
     * single-threaded here).
     */
    void reset();

    /** Number of chunks materialized so far. */
    std::size_t chunkCount() const;

    /** First-touch allocation shards: chunk creation for different
     *  address regions takes different locks, so a parallel first
     *  sweep over a large heap no longer serializes every thread on
     *  one global mutex. */
    static constexpr std::size_t kShards = 16;

  private:
    static constexpr unsigned kChunkShift = 16;
    static constexpr Addr kChunkMask = kChunkBytes - 1;

    struct Shard
    {
        mutable std::mutex mutex;
        std::unordered_map<Addr, std::unique_ptr<EpochValue[]>> chunks;
    };

    /** Fibonacci-hash the chunk index so adjacent chunks (the common
     *  sequential first-touch pattern) land in different shards. */
    CLEAN_ALWAYS_INLINE static std::size_t
    shardOf(Addr key)
    {
        return static_cast<std::size_t>(
            (key * 0x9e3779b97f4a7c15ull) >> 60);
    }
    static_assert(kShards == 16, "shardOf extracts log2(kShards) bits");

    EpochValue *slotsSlow(Addr addr, Addr key);

    Shard shards_[kShards];

    // Per-thread single-entry chunk cache keyed by (instance generation,
    // chunk index). Chunks are immortal until the owning instance is
    // reset or destroyed, and both events retire the generation, so a
    // hit can never yield a stale pointer. The key must be a
    // generation id, not the instance address: a new instance allocated
    // where a destroyed one lived would otherwise satisfy an
    // `owner == this` check and hand out a freed chunk (use-after-free).
    // Generations start at 1 so the empty cache (gen 0) never hits.
    // Plain (non-atomic) because the only writer, reset(), runs with
    // every other thread parked.
    std::uint64_t generation_;
    static std::atomic<std::uint64_t> nextGeneration_;
    static thread_local std::uint64_t cachedGen_;
    static thread_local Addr cachedKey_;
    static thread_local EpochValue *cachedChunk_;
};

} // namespace clean

#endif // CLEAN_CORE_SPARSE_SHADOW_H
