#include "core/sparse_shadow.h"

#include <cstring>

namespace clean
{

std::atomic<std::uint64_t> SparseShadow::nextGeneration_{1};
thread_local std::uint64_t SparseShadow::cachedGen_ = 0;
thread_local Addr SparseShadow::cachedKey_ = ~Addr{0};
thread_local EpochValue *SparseShadow::cachedChunk_ = nullptr;

EpochValue *
SparseShadow::slotsSlow(Addr addr, Addr key)
{
    Shard &shard = shards_[shardOf(key)];
    EpochValue *chunk = nullptr;
    {
        std::lock_guard<std::mutex> guard(shard.mutex);
        auto &slot = shard.chunks[key];
        if (!slot) {
            slot = std::make_unique<EpochValue[]>(kChunkBytes);
            std::memset(slot.get(), 0, kChunkBytes * sizeof(EpochValue));
        }
        chunk = slot.get();
    }
    cachedGen_ = generation_;
    cachedKey_ = key;
    cachedChunk_ = chunk;
    return chunk + (addr & kChunkMask);
}

void
SparseShadow::reset()
{
    // Drop, don't zero: deallocating the chunk tables is O(chunks)
    // pointer frees instead of O(shadow bytes) memset, and the lazily
    // reallocated replacements come back zeroed anyway. Retiring the
    // generation first invalidates every thread-local cached chunk
    // pointer before its memory is freed.
    generation_ = nextGeneration_.fetch_add(1);
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> guard(shard.mutex);
        shard.chunks.clear();
    }
}

std::size_t
SparseShadow::chunkCount() const
{
    std::size_t total = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> guard(shard.mutex);
        total += shard.chunks.size();
    }
    return total;
}

} // namespace clean
