/**
 * @file
 * CleanMutex / CleanCondVar / CleanBarrier tests: happens-before
 * semantics, deterministic ordering, abort behavior.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <vector>

#include "core/clean.h"
#include "support/prng.h"

namespace clean
{
namespace
{

RuntimeConfig
smallConfig(bool deterministic = true)
{
    RuntimeConfig config;
    config.maxThreads = 16;
    config.deterministic = deterministic;
    config.heap.sharedBytes = std::size_t{64} << 20;
    config.heap.privateBytes = std::size_t{16} << 20;
    return config;
}

TEST(CleanMutexTest, LockOrdersConflictingWrites)
{
    CleanRuntime rt(smallConfig());
    auto *x = rt.heap().allocSharedArray<int>(1);
    CleanMutex m(rt);
    std::vector<ThreadHandle> handles;
    for (int t = 0; t < 4; ++t) {
        handles.push_back(
            rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
                for (int i = 0; i < 100; ++i) {
                    m.lock(ctx);
                    ctx.write(&x[0], ctx.read(&x[0]) + 1);
                    m.unlock(ctx);
                }
            }));
    }
    for (auto &h : handles)
        rt.join(rt.mainContext(), h);
    EXPECT_FALSE(rt.raceOccurred());
    EXPECT_EQ(rt.mainContext().read(&x[0]), 400);
}

TEST(CleanMutexTest, TryLockAcquiresWhenFree)
{
    CleanRuntime rt(smallConfig());
    CleanMutex m(rt);
    EXPECT_TRUE(m.tryLock(rt.mainContext()));
    m.unlock(rt.mainContext());
}

TEST(CleanMutexTest, TryLockFailsWhenHeld)
{
    CleanRuntime rt(smallConfig());
    CleanMutex m(rt);
    std::atomic<int> result{-1};
    m.lock(rt.mainContext());
    auto h = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        result = m.tryLock(ctx) ? 1 : 0;
    });
    rt.join(rt.mainContext(), h);
    m.unlock(rt.mainContext());
    EXPECT_EQ(result.load(), 0);
}

TEST(CleanMutexTest, UnlockedDataStillRaces)
{
    // The lock must not accidentally order unrelated data.
    CleanRuntime rt(smallConfig());
    auto *x = rt.heap().allocSharedArray<int>(2);
    CleanMutex m(rt);
    auto h1 = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        for (int i = 0; i < 10000; ++i) {
            m.lock(ctx);
            ctx.write(&x[0], i);
            m.unlock(ctx);
            ctx.write(&x[1], i); // unprotected
        }
    });
    auto h2 = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        for (int i = 0; i < 10000; ++i) {
            m.lock(ctx);
            ctx.write(&x[0], -i);
            m.unlock(ctx);
            ctx.write(&x[1], -i); // unprotected -> WAW
        }
    });
    rt.join(rt.mainContext(), h1);
    rt.join(rt.mainContext(), h2);
    EXPECT_TRUE(rt.raceOccurred());
    ASSERT_NE(rt.firstRace(), nullptr);
    EXPECT_EQ(rt.firstRace()->kind(), RaceKind::Waw);
}

TEST(CleanBarrierTest, OrdersPhases)
{
    CleanRuntime rt(smallConfig());
    const unsigned n = 4;
    auto *x = rt.heap().allocSharedArray<int>(n);
    CleanBarrier barrier(rt, n);
    std::vector<ThreadHandle> handles;
    std::atomic<int> sumErrors{0};
    for (unsigned t = 0; t < n; ++t) {
        handles.push_back(
            rt.spawn(rt.mainContext(), [&, t](ThreadContext &ctx) {
                ctx.write(&x[t], static_cast<int>(t) + 1);
                barrier.arrive(ctx);
                // Cross-reads after the barrier must be ordered.
                int sum = 0;
                for (unsigned u = 0; u < n; ++u)
                    sum += ctx.read(&x[u]);
                if (sum != 1 + 2 + 3 + 4)
                    sumErrors.fetch_add(1);
            }));
    }
    for (auto &h : handles)
        rt.join(rt.mainContext(), h);
    EXPECT_FALSE(rt.raceOccurred());
    EXPECT_EQ(sumErrors.load(), 0);
}

TEST(CleanBarrierTest, ReusableAcrossGenerations)
{
    CleanRuntime rt(smallConfig());
    const unsigned n = 3;
    auto *x = rt.heap().allocSharedArray<int>(n);
    CleanBarrier barrier(rt, n);
    std::vector<ThreadHandle> handles;
    for (unsigned t = 0; t < n; ++t) {
        handles.push_back(
            rt.spawn(rt.mainContext(), [&, t](ThreadContext &ctx) {
                for (int g = 0; g < 10; ++g) {
                    ctx.write(&x[t], g);
                    barrier.arrive(ctx);
                    for (unsigned u = 0; u < n; ++u)
                        ctx.read(&x[u]);
                    barrier.arrive(ctx);
                }
            }));
    }
    for (auto &h : handles)
        rt.join(rt.mainContext(), h);
    EXPECT_FALSE(rt.raceOccurred());
}

TEST(CleanCondVarTest, WaitSignalHandshake)
{
    CleanRuntime rt(smallConfig());
    auto *flag = rt.heap().allocSharedArray<int>(1);
    auto *data = rt.heap().allocSharedArray<int>(1);
    CleanMutex m(rt);
    CleanCondVar cv(rt);
    std::atomic<int> got{0};
    auto consumer = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        m.lock(ctx);
        while (ctx.read(&flag[0]) == 0)
            cv.wait(ctx, m);
        got = ctx.read(&data[0]);
        m.unlock(ctx);
    });
    auto producer = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        m.lock(ctx);
        ctx.write(&data[0], 99);
        ctx.write(&flag[0], 1);
        cv.signal(ctx);
        m.unlock(ctx);
    });
    rt.join(rt.mainContext(), consumer);
    rt.join(rt.mainContext(), producer);
    EXPECT_FALSE(rt.raceOccurred());
    EXPECT_EQ(got.load(), 99);
}

TEST(CleanCondVarTest, BroadcastWakesAllWaiters)
{
    CleanRuntime rt(smallConfig());
    auto *flag = rt.heap().allocSharedArray<int>(1);
    CleanMutex m(rt);
    CleanCondVar cv(rt);
    std::atomic<int> woken{0};
    std::vector<ThreadHandle> handles;
    for (int t = 0; t < 3; ++t) {
        handles.push_back(
            rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
                m.lock(ctx);
                while (ctx.read(&flag[0]) == 0)
                    cv.wait(ctx, m);
                m.unlock(ctx);
                woken.fetch_add(1);
            }));
    }
    auto waker = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        // Give waiters a chance to register; correctness does not
        // depend on it (they re-check the flag).
        for (int i = 0; i < 10000; ++i)
            std::atomic_signal_fence(std::memory_order_seq_cst);
        m.lock(ctx);
        ctx.write(&flag[0], 1);
        cv.broadcast(ctx);
        m.unlock(ctx);
    });
    for (auto &h : handles)
        rt.join(rt.mainContext(), h);
    rt.join(rt.mainContext(), waker);
    EXPECT_FALSE(rt.raceOccurred());
    EXPECT_EQ(woken.load(), 3);
}

TEST(CleanCondVarTest, SignalWithoutWaitersIsHarmless)
{
    CleanRuntime rt(smallConfig());
    CleanCondVar cv(rt);
    EXPECT_NO_THROW(cv.signal(rt.mainContext()));
    EXPECT_NO_THROW(cv.broadcast(rt.mainContext()));
}

TEST(DeterminismTest, LockAcquisitionOrderIsReproducible)
{
    auto runOnce = [] {
        CleanRuntime rt(smallConfig());
        auto *order = rt.heap().allocSharedArray<int>(512);
        auto *cursor = rt.heap().allocSharedArray<int>(1);
        CleanMutex m(rt);
        std::vector<ThreadHandle> handles;
        for (int t = 0; t < 4; ++t) {
            handles.push_back(
                rt.spawn(rt.mainContext(), [&, t](ThreadContext &ctx) {
                    for (int i = 0; i < 50; ++i) {
                        m.lock(ctx);
                        const int at = ctx.read(&cursor[0]);
                        ctx.write(&order[at], t);
                        ctx.write(&cursor[0], at + 1);
                        m.unlock(ctx);
                        // Uneven compute between acquisitions.
                        ctx.detTick(static_cast<std::uint64_t>(
                            (t + 1) * (i % 7)));
                    }
                }));
        }
        for (auto &h : handles)
            rt.join(rt.mainContext(), h);
        EXPECT_FALSE(rt.raceOccurred());
        std::vector<int> result;
        for (int i = 0; i < 200; ++i)
            result.push_back(rt.mainContext().read(&order[i]));
        return result;
    };
    EXPECT_EQ(runOnce(), runOnce());
}

TEST(CleanCondVarTest, ProducerConsumerQueueDeliversEverything)
{
    // Bounded queue with two condvars: the canonical condvar workout.
    CleanRuntime rt(smallConfig());
    constexpr int kItems = 120, kCap = 4;
    auto *buffer = rt.heap().allocSharedArray<int>(kCap);
    auto *state = rt.heap().allocSharedArray<int>(2); // head, tail
    CleanMutex m(rt);
    CleanCondVar notEmpty(rt), notFull(rt);
    std::atomic<long> consumedSum{0};

    auto producer = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        for (int i = 1; i <= kItems; ++i) {
            m.lock(ctx);
            while (ctx.read(&state[1]) - ctx.read(&state[0]) >= kCap)
                notFull.wait(ctx, m);
            const int tail = ctx.read(&state[1]);
            ctx.write(&buffer[tail % kCap], i);
            ctx.write(&state[1], tail + 1);
            notEmpty.signal(ctx);
            m.unlock(ctx);
        }
    });
    auto consumer = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        long sum = 0;
        for (int i = 0; i < kItems; ++i) {
            m.lock(ctx);
            while (ctx.read(&state[0]) == ctx.read(&state[1]))
                notEmpty.wait(ctx, m);
            const int head = ctx.read(&state[0]);
            sum += ctx.read(&buffer[head % kCap]);
            ctx.write(&state[0], head + 1);
            notFull.signal(ctx);
            m.unlock(ctx);
        }
        consumedSum = sum;
    });
    rt.join(rt.mainContext(), producer);
    rt.join(rt.mainContext(), consumer);
    EXPECT_FALSE(rt.raceOccurred());
    EXPECT_EQ(consumedSum.load(),
              static_cast<long>(kItems) * (kItems + 1) / 2);
}

TEST(CleanMutexTest, ManyLocksManyThreadsStress)
{
    CleanRuntime rt(smallConfig());
    constexpr int kLocks = 8, kCells = 8;
    auto *cells = rt.heap().allocSharedArray<int>(kCells);
    std::deque<CleanMutex> locks;
    for (int l = 0; l < kLocks; ++l)
        locks.emplace_back(rt);
    std::vector<ThreadHandle> handles;
    for (int t = 0; t < 6; ++t) {
        handles.push_back(
            rt.spawn(rt.mainContext(), [&, t](ThreadContext &ctx) {
                Prng rng(t + 99);
                for (int i = 0; i < 300; ++i) {
                    const unsigned cell = rng.nextBelow(kCells);
                    locks[cell % kLocks].lock(ctx);
                    ctx.write(&cells[cell], ctx.read(&cells[cell]) + 1);
                    locks[cell % kLocks].unlock(ctx);
                }
            }));
    }
    for (auto &h : handles)
        rt.join(rt.mainContext(), h);
    EXPECT_FALSE(rt.raceOccurred());
    int total = 0;
    for (int c = 0; c < kCells; ++c)
        total += rt.mainContext().read(&cells[c]);
    EXPECT_EQ(total, 6 * 300);
}

TEST(CleanBarrierTest, TwoBarriersInterleaved)
{
    CleanRuntime rt(smallConfig());
    const unsigned n = 3;
    auto *x = rt.heap().allocSharedArray<int>(2 * n);
    CleanBarrier even(rt, n), odd(rt, n);
    std::vector<ThreadHandle> handles;
    std::atomic<int> errors{0};
    for (unsigned t = 0; t < n; ++t) {
        handles.push_back(
            rt.spawn(rt.mainContext(), [&, t](ThreadContext &ctx) {
                for (int g = 0; g < 8; ++g) {
                    ctx.write(&x[t], g);
                    even.arrive(ctx);
                    ctx.write(&x[n + t], g);
                    odd.arrive(ctx);
                    for (unsigned u = 0; u < n; ++u) {
                        if (ctx.read(&x[u]) != g ||
                            ctx.read(&x[n + u]) != g) {
                            errors.fetch_add(1);
                        }
                    }
                    even.arrive(ctx);
                }
            }));
    }
    for (auto &h : handles)
        rt.join(rt.mainContext(), h);
    EXPECT_FALSE(rt.raceOccurred());
    EXPECT_EQ(errors.load(), 0);
}

TEST(DeterminismTest, NondetModeStillCorrectJustUnordered)
{
    CleanRuntime rt(smallConfig(false));
    auto *x = rt.heap().allocSharedArray<int>(1);
    CleanMutex m(rt);
    std::vector<ThreadHandle> handles;
    for (int t = 0; t < 4; ++t) {
        handles.push_back(
            rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
                for (int i = 0; i < 200; ++i) {
                    m.lock(ctx);
                    ctx.write(&x[0], ctx.read(&x[0]) + 1);
                    m.unlock(ctx);
                }
            }));
    }
    for (auto &h : handles)
        rt.join(rt.mainContext(), h);
    EXPECT_FALSE(rt.raceOccurred());
    EXPECT_EQ(rt.mainContext().read(&x[0]), 800);
}

} // namespace
} // namespace clean
