/**
 * @file
 * Wall-clock timing helpers for the software-overhead benches.
 */

#ifndef CLEAN_SUPPORT_TIMER_H
#define CLEAN_SUPPORT_TIMER_H

#include <chrono>

namespace clean
{

/** Monotonic stopwatch. */
class Timer
{
  public:
    Timer() : start_(Clock::now()) {}

    /** Restarts the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds since construction or the last reset(). */
    double
    elapsedSeconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Nanoseconds since construction or the last reset(). */
    std::uint64_t
    elapsedNanos() const
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - start_).count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace clean

#endif // CLEAN_SUPPORT_TIMER_H
