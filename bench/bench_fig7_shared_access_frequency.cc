/**
 * @file
 * Figure 7 — the frequency of shared accesses.
 *
 * Shared accesses per second of *native* execution, per benchmark. The
 * paper uses this to explain Figure 6: detection cost tracks shared-
 * access frequency, with lu_cb/lu_ncb far ahead of the pack.
 */

#include <algorithm>

#include "bench/common.h"

using namespace clean;
using namespace clean::bench;
using namespace clean::wl;

int
main(int argc, char **argv)
{
    const BenchConfig config = parseBench(argc, argv, "small");

    std::printf("=== Figure 7: frequency of shared accesses "
                "(threads=%u, scale=%s) ===\n\n",
                config.threads,
                config.options.getString("scale", "small").c_str());
    std::printf("%-14s %14s %12s %16s\n", "benchmark", "shared-accs",
                "native[s]", "M accesses/s");

    struct Row
    {
        std::string name;
        double rate;
    };
    std::vector<Row> rows;
    for (const auto &name : config.workloads) {
        auto spec = baseSpec(config, name, BackendKind::Native);
        double best = 1e300;
        std::uint64_t accesses = 0;
        for (unsigned r = 0; r < config.repeats; ++r) {
            const auto result = runWorkload(spec);
            best = std::min(best, result.seconds);
            accesses = result.reads + result.writes;
        }
        const double rate =
            static_cast<double>(accesses) / best / 1e6;
        rows.push_back({name, rate});
        std::printf("%-14s %14llu %12.4f %16.1f\n", name.c_str(),
                    static_cast<unsigned long long>(accesses), best,
                    rate);
    }

    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.rate > b.rate; });
    std::printf("\nhighest shared-access frequency: %s, %s\n",
                rows.size() > 0 ? rows[0].name.c_str() : "-",
                rows.size() > 1 ? rows[1].name.c_str() : "-");
    std::printf("paper: lu_cb and lu_ncb access shared data far more "
                "frequently than the rest.\n");
    return 0;
}
