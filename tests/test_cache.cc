/**
 * @file
 * Set-associative cache model tests.
 */

#include <gtest/gtest.h>

#include "sim/cache.h"

namespace clean::sim
{
namespace
{

TEST(Cache, MissThenHit)
{
    Cache cache(1024, 2);
    EXPECT_FALSE(cache.access(5).hit);
    EXPECT_TRUE(cache.access(5).hit);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, ContainsDoesNotTouchLru)
{
    Cache cache(128, 2); // 2 lines, 1 set
    cache.access(0);
    cache.access(2); // set full: {0, 2}; LRU = 0
    EXPECT_TRUE(cache.contains(0));
    // contains() must not refresh 0; the next allocation evicts 0.
    const auto r = cache.access(4);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedLine, 0u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache cache(128, 2); // 1 set, 2 ways
    cache.access(0);
    cache.access(2);
    cache.access(0); // refresh 0; LRU = 2
    const auto r = cache.access(4);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedLine, 2u);
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(2));
}

TEST(Cache, SetsAreIndependent)
{
    Cache cache(256, 2); // 2 sets
    // Even lines -> set 0, odd -> set 1.
    cache.access(0);
    cache.access(2);
    cache.access(1);
    cache.access(3);
    EXPECT_TRUE(cache.contains(0));
    EXPECT_TRUE(cache.contains(1));
    // Filling set 0 further does not evict odd lines.
    cache.access(4);
    EXPECT_TRUE(cache.contains(1));
    EXPECT_TRUE(cache.contains(3));
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache cache(1024, 4);
    cache.access(9);
    EXPECT_TRUE(cache.contains(9));
    cache.invalidate(9);
    EXPECT_FALSE(cache.contains(9));
    EXPECT_FALSE(cache.access(9).hit);
}

TEST(Cache, InvalidateUnknownLineIsNoop)
{
    Cache cache(1024, 4);
    cache.access(1);
    cache.invalidate(99);
    EXPECT_TRUE(cache.contains(1));
}

TEST(Cache, ResetClearsEverything)
{
    Cache cache(1024, 4);
    for (Addr l = 0; l < 8; ++l)
        cache.access(l);
    cache.reset();
    for (Addr l = 0; l < 8; ++l)
        EXPECT_FALSE(cache.contains(l));
}

TEST(Cache, CapacityIsRespected)
{
    // 8 lines total; touching 16 distinct lines keeps only 8.
    Cache cache(512, 2);
    for (Addr l = 0; l < 16; ++l)
        cache.access(l);
    unsigned present = 0;
    for (Addr l = 0; l < 16; ++l)
        present += cache.contains(l);
    EXPECT_EQ(present, 8u);
}

TEST(Cache, PaperL1Geometry)
{
    // 64 KB, 8-way, 64 B lines = 128 sets; no crash, sane behavior.
    Cache cache(64 * 1024, 8);
    for (Addr l = 0; l < 1024; ++l)
        cache.access(l);
    EXPECT_EQ(cache.misses(), 1024u);
    for (Addr l = 0; l < 1024; ++l)
        EXPECT_TRUE(cache.contains(l)); // exactly fits
}

} // namespace
} // namespace clean::sim
