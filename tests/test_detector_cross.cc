/**
 * @file
 * Cross-detector property tests (§3.4 correctness, empirically).
 *
 * Random programs (reads/writes/lock ops over a small address range)
 * are executed in a fixed random interleaving and fed simultaneously to
 * the CLEAN checker and to FastTrack. Invariants:
 *
 *   1. CLEAN throws exactly at the step of FastTrack's *first* WAW or
 *      RAW report (same schedule, same granularity) — never earlier,
 *      never later, never on a WAR-only schedule.
 *   2. CLEAN never reports a race FastTrack does not (no false
 *      positives relative to the full precise detector).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <optional>
#include <thread>

#include "core/clean.h"
#include "core/linear_shadow.h"
#include "core/race_check.h"
#include "detectors/fasttrack.h"
#include "support/prng.h"
#include "workloads/runner.h"

namespace clean
{
namespace
{

constexpr Addr kBase = 0x20000;
constexpr ThreadId kThreads = 4;
constexpr unsigned kLocks = 3;

struct CrossHarness
{
    explicit CrossHarness(const CheckerConfig &config = {})
        : shadow(kBase, 4096), checker(config, shadow),
          fasttrack(kDefaultEpochConfig, kThreads)
    {
        for (ThreadId t = 0; t < kThreads; ++t) {
            threads.emplace_back(kDefaultEpochConfig, t, kThreads);
            threads[t].vc.setClock(t, 1);
            threads[t].refreshOwnEpoch();
        }
        for (unsigned l = 0; l < kLocks; ++l)
            locks.emplace_back(kDefaultEpochConfig, kThreads);
    }

    /** Runs one op on both systems; returns CLEAN's exception if any. */
    std::optional<RaceKind>
    step(Prng &rng)
    {
        const ThreadId t = rng.nextBelow(kThreads);
        const unsigned op = static_cast<unsigned>(rng.nextBelow(10));
        lastThread = t;
        lastOp = op;
        const Addr addr = kBase + rng.nextBelow(48);
        const std::size_t size = 1 + rng.nextBelow(8);
        try {
            if (op < 4) {
                // FastTrack first: CLEAN may throw and abandon the op.
                fasttrack.onWrite(t, addr, size);
                checker.beforeWrite(threads[t], addr, size);
            } else if (op < 8) {
                fasttrack.onRead(t, addr, size);
                checker.afterRead(threads[t], addr, size);
            } else if (op == 8) {
                const unsigned l = rng.nextBelow(kLocks);
                threads[t].vc.joinFrom(locks[l]);
                threads[t].refreshOwnEpoch();
                fasttrack.onAcquire(t, l);
            } else {
                const unsigned l = rng.nextBelow(kLocks);
                locks[l].joinFrom(threads[t].vc);
                threads[t].vc.tick(t);
                threads[t].refreshOwnEpoch();
                fasttrack.onRelease(t, l);
            }
        } catch (const RaceException &e) {
            lastRace = e;
            return e.kind();
        }
        return std::nullopt;
    }

    /** Retires @p t's deferred read checks (batched configs only). */
    std::optional<RaceKind>
    drainThread(ThreadId t)
    {
        try {
            checker.drainBatch(threads[t]);
        } catch (const RaceException &e) {
            lastRace = e;
            return e.kind();
        }
        return std::nullopt;
    }

    std::optional<RaceKind>
    drainAll()
    {
        for (ThreadId t = 0; t < kThreads; ++t)
            if (const auto race = drainThread(t))
                return race;
        return std::nullopt;
    }

    std::size_t
    fasttrackWawRaw() const
    {
        std::size_t n = 0;
        for (const auto &r : fasttrack.reports())
            n += r.kind != RaceKind::War;
        return n;
    }

    LinearShadow shadow;
    RaceChecker<LinearShadow> checker;
    detectors::FastTrackDetector fasttrack;
    std::vector<ThreadState> threads;
    std::vector<VectorClock> locks;
    /** CLEAN's last thrown race, if any (site identity for parity). */
    std::optional<RaceException> lastRace;
    /** Thread and op of the most recent step (drain-site selection). */
    ThreadId lastThread = 0;
    unsigned lastOp = 0;
};

CheckerConfig
noFastPathConfig()
{
    CheckerConfig config;
    config.fastPath = false;
    return config;
}

CheckerConfig
noOwnCacheConfig()
{
    CheckerConfig config;
    config.ownCache = false;
    return config;
}

CheckerConfig
batchConfig()
{
    CheckerConfig config;
    config.batch = true;
    return config;
}

/** Body of the Clean-vs-FastTrack invariant, per checker config. */
void
runCleanVsFastTrack(unsigned seed, const CheckerConfig &config)
{
    Prng rng(seed * 7919 + 13);
    CrossHarness harness(config);
    for (int step = 0; step < 600; ++step) {
        const std::size_t before = harness.fasttrackWawRaw();
        const auto cleanRace = harness.step(rng);
        const std::size_t after = harness.fasttrackWawRaw();
        if (cleanRace) {
            EXPECT_EQ(before, 0u)
                << "CLEAN threw later than FastTrack's first WAW/RAW";
            EXPECT_GT(after, 0u)
                << "CLEAN threw a race FastTrack does not see";
            // CLEAN reports the same kind FastTrack sees at this step.
            bool kindSeen = false;
            for (const auto &r : harness.fasttrack.reports())
                kindSeen |= r.kind == *cleanRace;
            EXPECT_TRUE(kindSeen);
            return;
        }
        EXPECT_EQ(after, 0u)
            << "FastTrack saw a WAW/RAW CLEAN missed at step " << step;
    }
    // Schedule ended exception-free: FastTrack may have WAR reports but
    // no WAW/RAW ones.
    EXPECT_EQ(harness.fasttrackWawRaw(), 0u);
}

class CrossDetector : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CrossDetector, CleanThrowsExactlyAtFirstWawOrRaw)
{
    runCleanVsFastTrack(GetParam(), CheckerConfig{});
}

/** The same invariant with the software fast path disabled: the fast
 *  path must not change what CLEAN detects relative to FastTrack. */
TEST_P(CrossDetector, CleanThrowsExactlyAtFirstWawOrRawNoFastPath)
{
    runCleanVsFastTrack(GetParam(), noFastPathConfig());
}

/**
 * Property pinning the skip-republish fast path: the same random racy
 * program, replayed step-for-step under CLEAN-with-fast-path and
 * CLEAN-without, must produce identical outcomes — throw vs. complete,
 * the same throwing step, the same race site (kind, address, accessor,
 * previous writer and clock).
 */
TEST_P(CrossDetector, FastPathParityWithPlainPath)
{
    Prng rngFast(GetParam() * 7919 + 13);
    Prng rngPlain(GetParam() * 7919 + 13);
    CrossHarness fast;
    CrossHarness plain(noFastPathConfig());
    for (int step = 0; step < 600; ++step) {
        const auto fastRace = fast.step(rngFast);
        const auto plainRace = plain.step(rngPlain);
        ASSERT_EQ(fastRace.has_value(), plainRace.has_value())
            << "fast path diverged from plain path at step " << step;
        if (fastRace) {
            EXPECT_EQ(*fastRace, *plainRace);
            ASSERT_TRUE(fast.lastRace && plain.lastRace);
            EXPECT_EQ(fast.lastRace->addr(), plain.lastRace->addr());
            EXPECT_EQ(fast.lastRace->accessor(),
                      plain.lastRace->accessor());
            EXPECT_EQ(fast.lastRace->previousWriter(),
                      plain.lastRace->previousWriter());
            EXPECT_EQ(fast.lastRace->previousClock(),
                      plain.lastRace->previousClock());
            return;
        }
    }
    // Both completed exception-free.
    EXPECT_FALSE(fast.lastRace || plain.lastRace);
}

/**
 * The same lockstep-parity property for the ownership cache (this PR):
 * eliding the shadow lookup on owned lines must not change what is
 * detected, when, or how it is attributed. The cache-on harness is the
 * default config; the cache-off one is the pre-cache checker bit for
 * bit (`--no-own-cache`).
 */
TEST_P(CrossDetector, OwnCacheParityWithPlainPath)
{
    Prng rngCached(GetParam() * 7919 + 13);
    Prng rngPlain(GetParam() * 7919 + 13);
    CrossHarness cached;
    CrossHarness plain(noOwnCacheConfig());
    for (int step = 0; step < 600; ++step) {
        const auto cachedRace = cached.step(rngCached);
        const auto plainRace = plain.step(rngPlain);
        ASSERT_EQ(cachedRace.has_value(), plainRace.has_value())
            << "own cache diverged from plain path at step " << step;
        if (cachedRace) {
            EXPECT_EQ(*cachedRace, *plainRace);
            ASSERT_TRUE(cached.lastRace && plain.lastRace);
            EXPECT_EQ(cached.lastRace->addr(), plain.lastRace->addr());
            EXPECT_EQ(cached.lastRace->accessor(),
                      plain.lastRace->accessor());
            EXPECT_EQ(cached.lastRace->previousWriter(),
                      plain.lastRace->previousWriter());
            EXPECT_EQ(cached.lastRace->previousClock(),
                      plain.lastRace->previousClock());
            return;
        }
    }
    EXPECT_FALSE(cached.lastRace || plain.lastRace);
}

/**
 * Lockstep parity for batched SFR-boundary checking (this PR), at the
 * granularity where strict parity provably holds: draining after every
 * step. With no accesses between an append and its drain, no write can
 * overwrite the buffered epoch, so the deferred Figure 2 check sees
 * exactly what the inline check saw — same throwing step, same race
 * site (kind, address, accessor, previous writer and clock), same site
 * index and SFR ordinal. The SFR-granularity relaxation (an ordered
 * writer masking buffered evidence) is covered by the next test.
 */
TEST_P(CrossDetector, BatchDrainPerStepParityWithInlinePath)
{
    Prng rngBatched(GetParam() * 7919 + 13);
    Prng rngInline(GetParam() * 7919 + 13);
    CrossHarness batched(batchConfig());
    CrossHarness plain;
    ASSERT_TRUE(batched.checker.batchEnabled());
    ASSERT_FALSE(plain.checker.batchEnabled());
    for (int step = 0; step < 600; ++step) {
        const auto plainRace = plain.step(rngInline);
        auto batchedRace = batched.step(rngBatched);
        if (!batchedRace)
            batchedRace = batched.drainAll();
        ASSERT_EQ(batchedRace.has_value(), plainRace.has_value())
            << "batched path diverged from inline path at step " << step;
        if (batchedRace) {
            EXPECT_EQ(*batchedRace, *plainRace);
            ASSERT_TRUE(batched.lastRace && plain.lastRace);
            EXPECT_EQ(batched.lastRace->addr(), plain.lastRace->addr());
            EXPECT_EQ(batched.lastRace->accessor(),
                      plain.lastRace->accessor());
            EXPECT_EQ(batched.lastRace->previousWriter(),
                      plain.lastRace->previousWriter());
            EXPECT_EQ(batched.lastRace->previousClock(),
                      plain.lastRace->previousClock());
            EXPECT_EQ(batched.lastRace->siteIndex(),
                      plain.lastRace->siteIndex());
            EXPECT_EQ(batched.lastRace->sfrOrdinal(),
                      plain.lastRace->sfrOrdinal());
            return;
        }
    }
    EXPECT_FALSE(batched.lastRace || plain.lastRace);
}

/**
 * Soundness of batching at its real granularity: draining only at the
 * acting thread's sync ops (the runtime's drain funnel) plus a final
 * end-of-run drain. Because every sync op by the reader drains first,
 * a buffered read can never become *ordered* with a later write while
 * still buffered — so any race a drain reports corresponds to a
 * genuinely unordered pair, i.e. FastTrack has a report (of some kind)
 * on this schedule. The converse is deliberately not asserted: an
 * ordered writer may overwrite buffered evidence within the reader's
 * SFR (the §14 masking relaxation), so batched detection may lag or
 * miss what inline detects — but it must never invent a race.
 */
TEST_P(CrossDetector, BatchSyncGranularityReportsOnlyRealRaces)
{
    Prng rng(GetParam() * 7919 + 13);
    CrossHarness harness(batchConfig());
    std::optional<RaceKind> race;
    for (int step = 0; step < 600 && !race; ++step) {
        race = harness.step(rng);
        if (!race && harness.lastOp >= 8)
            race = harness.drainThread(harness.lastThread);
    }
    if (!race)
        race = harness.drainAll();
    if (race) {
        EXPECT_FALSE(harness.fasttrack.reports().empty())
            << "batched drain reported a race on a schedule FastTrack "
               "finds entirely race-free";
    }
}

/**
 * Sampling soundness, empirically (ISSUE 8, DESIGN.md §15): the same
 * random racy program runs in lockstep under a budget-on checker (a
 * pinned deep admission level — the worst case for coverage) and a
 * budget-off one. Shedding only removes READ checks, and reads never
 * update shadow metadata, so the detector state stays byte-identical:
 *
 *   - every race the budgeted run reports, the unbudgeted run reports
 *     at the same step with the same site identity (a budgeted report
 *     is a verified subset — never an invention);
 *   - WAW detection is bit-identical (write checks are never shed), so
 *     an unbudgeted WAW throw must reproduce under any budget;
 *   - an unbudgeted RAW throw may be missed by the budgeted run, but
 *     only when the racy read itself was shed.
 */
TEST_P(CrossDetector, BudgetedRunReportsOnlyWhatUnbudgetedReports)
{
    CheckerConfig sampled;
    sampled.sampling = true;
    sampled.sample.base = kBase;
    sampled.sample.windowLog2 = 3; // 8-read windows at test scale
    sampled.sample.burstWindows = 1;
    sampled.sample.initialLevel = 12; // deep shedding, never adopted off
    Prng rngSampled(GetParam() * 7919 + 13);
    Prng rngPlain(GetParam() * 7919 + 13);
    CrossHarness budgeted(sampled);
    CrossHarness plain;
    for (int step = 0; step < 600; ++step) {
        const auto plainRace = plain.step(rngPlain);
        const auto budgetedRace = budgeted.step(rngSampled);
        if (budgetedRace) {
            // Subset direction: a budgeted report must exist in the
            // unbudgeted run, same step, same site, bit for bit.
            ASSERT_TRUE(plainRace.has_value())
                << "budgeted run invented a race at step " << step;
            EXPECT_EQ(*budgetedRace, *plainRace);
            ASSERT_TRUE(budgeted.lastRace && plain.lastRace);
            EXPECT_EQ(budgeted.lastRace->addr(), plain.lastRace->addr());
            EXPECT_EQ(budgeted.lastRace->accessor(),
                      plain.lastRace->accessor());
            EXPECT_EQ(budgeted.lastRace->previousWriter(),
                      plain.lastRace->previousWriter());
            EXPECT_EQ(budgeted.lastRace->previousClock(),
                      plain.lastRace->previousClock());
            return;
        }
        if (plainRace) {
            if (*plainRace == RaceKind::Waw) {
                // Writes are never shed: a WAW miss is a soundness bug.
                FAIL() << "budgeted run missed a WAW at step " << step;
            }
            // A missed RAW is the SLO trade — legal only because the
            // racy read was shed (the budgeted gate shed something).
            EXPECT_GT(budgeted.threads[budgeted.lastThread]
                          .stats.shedReads +
                          budgeted.threads[0].stats.shedReads +
                          budgeted.threads[1].stats.shedReads +
                          budgeted.threads[2].stats.shedReads +
                          budgeted.threads[3].stats.shedReads,
                      0u)
                << "RAW missed with zero shed reads at step " << step;
            return; // runs diverge from here; lockstep comparison ends
        }
    }
    // Neither run saw a race; FastTrack agrees WAW/RAW-free (checked by
    // the sibling tests; here both harnesses simply completing is the
    // assertion).
    EXPECT_FALSE(budgeted.lastRace || plain.lastRace);
}

/** Level 0 with no calibration admits everything: the budgeted checker
 *  is bit-identical to the unbudgeted one, step for step. */
TEST_P(CrossDetector, LevelZeroSamplingIsIdenticalToOff)
{
    CheckerConfig sampled;
    sampled.sampling = true;
    sampled.sample.base = kBase;
    sampled.sample.initialLevel = 0;
    Prng rngSampled(GetParam() * 7919 + 13);
    Prng rngPlain(GetParam() * 7919 + 13);
    CrossHarness budgeted(sampled);
    CrossHarness plain;
    for (int step = 0; step < 600; ++step) {
        const auto a = budgeted.step(rngSampled);
        const auto b = plain.step(rngPlain);
        ASSERT_EQ(a.has_value(), b.has_value()) << "step " << step;
        if (a) {
            EXPECT_EQ(*a, *b);
            ASSERT_TRUE(budgeted.lastRace && plain.lastRace);
            EXPECT_EQ(budgeted.lastRace->addr(), plain.lastRace->addr());
            return;
        }
    }
    const ThreadId tids = kThreads;
    for (ThreadId t = 0; t < tids; ++t)
        EXPECT_EQ(budgeted.threads[t].stats.shedReads, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossDetector, ::testing::Range(0u, 60u));

/** WAR-only schedules complete under CLEAN while FastTrack reports. */
TEST(CrossDetectorDirected, WarOnlyScheduleCompletes)
{
    CrossHarness harness;
    // Threads 1..3 read; thread 0 then writes: pure WAR.
    harness.checker.afterRead(harness.threads[1], kBase, 4);
    harness.fasttrack.onRead(1, kBase, 4);
    harness.checker.afterRead(harness.threads[2], kBase, 4);
    harness.fasttrack.onRead(2, kBase, 4);
    EXPECT_NO_THROW(
        harness.checker.beforeWrite(harness.threads[0], kBase, 4));
    harness.fasttrack.onWrite(0, kBase, 4);
    EXPECT_EQ(harness.fasttrackWawRaw(), 0u);
    std::size_t wars = 0;
    for (const auto &r : harness.fasttrack.reports())
        wars += r.kind == RaceKind::War;
    EXPECT_GE(wars, 2u);
}

/**
 * Directed regression for the ownership cache's soundness argument: the
 * owner skipping its check on a hit is only sound because a concurrent
 * writer's own Figure 2 check fires *at the writer*. Construct exactly
 * that situation — the main thread owns a line (its re-access is a
 * cache hit), a second thread then writes into it unordered — and
 * assert the WAW is recorded with the second thread as the accessor and
 * the owner as the previous writer, under every --on-race policy.
 */
void
runRaceAtWriterOnOwnedLine(OnRacePolicy policy)
{
    RuntimeConfig config;
    config.maxThreads = 16;
    config.heap.sharedBytes = std::size_t{64} << 20;
    config.heap.privateBytes = std::size_t{16} << 20;
    config.onRace = policy;

    CleanRuntime rt(config);
    auto *x = rt.heap().allocSharedArray<int>(16);
    std::atomic<bool> owned{false};
    ThreadId writerTid = 0;

    // Spawn first: the parent's clock ticks at spawn, so everything the
    // parent writes below is unordered with the child.
    auto h = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        writerTid = ctx.tid();
        while (!owned.load(std::memory_order_acquire))
            std::this_thread::yield();
        try {
            ctx.write(&x[0], 7); // races with the owner's publish
        } catch (const RaceException &) {
            // Throw policy: recorded before the throw; nothing to do.
        }
    });

    // Owner path: publish over the line, then hit it again from the
    // ownership cache — the second write retires with no shadow access.
    rt.mainContext().write(&x[0], 1);
    rt.mainContext().write(&x[1], 2);
    rt.mainContext().write(&x[0], 3);
    ASSERT_GT(rt.mainContext().state().stats.ownCacheHits(), 0u);
    owned.store(true, std::memory_order_release);
    rt.join(rt.mainContext(), h);

    EXPECT_TRUE(rt.raceOccurred()) << onRacePolicyName(policy);
    ASSERT_NE(rt.firstRace(), nullptr) << onRacePolicyName(policy);
    EXPECT_EQ(rt.firstRace()->kind(), RaceKind::Waw)
        << onRacePolicyName(policy);
    // Detected at the writer, not the owner.
    EXPECT_EQ(rt.firstRace()->accessor(), writerTid)
        << onRacePolicyName(policy);
    EXPECT_EQ(rt.firstRace()->previousWriter(), rt.mainContext().tid())
        << onRacePolicyName(policy);
}

TEST(OwnCacheDirected, RaceAtWriterOnOwnedLineThrow)
{
    runRaceAtWriterOnOwnedLine(OnRacePolicy::Throw);
}

TEST(OwnCacheDirected, RaceAtWriterOnOwnedLineReport)
{
    runRaceAtWriterOnOwnedLine(OnRacePolicy::Report);
}

TEST(OwnCacheDirected, RaceAtWriterOnOwnedLineCount)
{
    runRaceAtWriterOnOwnedLine(OnRacePolicy::Count);
}

TEST(OwnCacheDirected, RaceAtWriterOnOwnedLineRecover)
{
    runRaceAtWriterOnOwnedLine(OnRacePolicy::Recover);
}

/**
 * Directed regression for the release-tick flush in refreshOwnEpoch.
 * Once the owner releases, a thread ordered after the release may
 * overwrite the owned line *without any race at the writer* — so the
 * owner's next check is the only one that can catch the overwrite, and
 * a stale hit would skip it. Claim before spawn (spawn ticks the
 * parent's clock, which is a release towards the child), let the
 * ordered child overwrite the line, and assert the owner's re-read
 * reports the RAW against the child's unacquired epoch.
 */
TEST(OwnCacheDirected, ReleaseTickFlushesTheOwnershipCache)
{
    RuntimeConfig config;
    config.maxThreads = 16;
    config.heap.sharedBytes = std::size_t{64} << 20;
    config.heap.privateBytes = std::size_t{16} << 20;
    config.onRace = OnRacePolicy::Report;

    CleanRuntime rt(config);
    auto *x = rt.heap().allocSharedArray<int>(16);
    ThreadContext &main = rt.mainContext();

    // Own the line before the spawn: publish, then re-hit it.
    main.write(&x[0], 1);
    main.write(&x[1], 2);
    main.write(&x[0], 3);
    ASSERT_GT(main.state().stats.ownCacheHits(), 0u);

    // Spawning is a release: the child's fork view covers the claim
    // epochs, so its write below is *ordered* — no race fires at the
    // writer, and only the owner's own re-check can see the overwrite.
    std::atomic<bool> childDone{false};
    ThreadId childTid = 0;
    auto h = rt.spawn(main, [&](ThreadContext &ctx) {
        childTid = ctx.tid();
        ctx.write(&x[0], 7); // ordered overwrite of the owned line
        childDone.store(true, std::memory_order_release);
    });
    while (!childDone.load(std::memory_order_acquire))
        std::this_thread::yield();

    // The raw flag above transfers no vector-clock knowledge, so the
    // child's epoch is unordered with us: a genuine RAW this read must
    // report. A claim surviving the spawn tick would hit and skip it.
    (void)main.read(&x[0]);
    rt.join(main, h);

    EXPECT_EQ(rt.raceCount(), 1u)
        << "the post-release RAW was not detected (stale ownership hit?)";
    ASSERT_NE(rt.firstRace(), nullptr);
    EXPECT_EQ(rt.firstRace()->kind(), RaceKind::Raw);
    EXPECT_EQ(rt.firstRace()->accessor(), main.tid());
    EXPECT_EQ(rt.firstRace()->previousWriter(), childTid);
}

/**
 * Directed drain-point test for batched SFR-boundary checking (this
 * PR), under every --on-race policy: a race inside a buffered
 * streaming-read run must raise at or before the reader's next SFR
 * boundary, carrying the *buffered* access's site index and SFR
 * ordinal (not the thread's counters at drain time). Under
 * Throw/Report/Count the batch gate is open: the racy read itself must
 * record nothing (deferral), and the mutex acquire closing the SFR
 * must surface it. Under Recover the runtime gates batching off (undo
 * logs are defined against inline checks), so the race fires inline at
 * the read and recovery proceeds exactly as without batching — the
 * rollback-parity half of the property.
 *
 * With @p async the same property must hold with the drain retired on
 * the dedicated checker thread (--async-check, DESIGN.md §16): the
 * handoff is synchronous at the boundary, so the race surfaces at the
 * identical program point with the identical buffered identity, and a
 * Throw-policy RaceException unwinds the *posting* thread.
 */
void
runBatchedRaceAtSfrBoundary(OnRacePolicy policy, bool async = false)
{
    RuntimeConfig config;
    config.maxThreads = 16;
    config.heap.sharedBytes = std::size_t{64} << 20;
    config.heap.privateBytes = std::size_t{16} << 20;
    config.onRace = policy;
    config.asyncCheck = async;

    CleanRuntime rt(config);
    const bool batched = policy != OnRacePolicy::Recover;
    EXPECT_EQ(rt.batchChecking(), batched) << onRacePolicyName(policy);
    // The async drain rides the batch gate: no batching, no checker
    // thread (Recover must gate it off along with batching).
    EXPECT_EQ(rt.asyncChecker() != nullptr, async && batched)
        << onRacePolicyName(policy);

    auto *x = rt.heap().allocSharedArray<int>(64);
    CleanMutex mu(rt);
    std::atomic<bool> wrote{false};
    ThreadId writerTid = 0;

    // Spawn first so the child's write below is unordered with the
    // parent's reads (spawn ticks the parent's clock).
    auto h = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        writerTid = ctx.tid();
        ctx.write(&x[0], 7);
        wrote.store(true, std::memory_order_release);
    });
    while (!wrote.load(std::memory_order_acquire))
        std::this_thread::yield();

    ThreadContext &main = rt.mainContext();
    std::uint64_t site = 0, sfr = 0;
    bool threw = false;
    try {
        // Streaming run whose first word is racy. Batched: all 16 reads
        // buffer and coalesce; nothing is checked yet. Recover: the
        // first read throws inline and is recovered in place.
        int sum = main.read(&x[0]);
        site = main.state().stats.accesses();
        sfr = main.state().sfrOrdinal;
        for (int i = 1; i < 16; ++i)
            sum += main.read(&x[i]);
        (void)sum;
        if (batched) {
            EXPECT_EQ(rt.raceCount(), 0u)
                << "batched read checked inline under "
                << onRacePolicyName(policy);
            EXPECT_GE(main.state().batch.count, 1u);
        }
        // SFR boundary: the acquire drains before it adds order.
        mu.lock(main);
        mu.unlock(main);
    } catch (const RaceException &e) {
        threw = true;
        EXPECT_EQ(policy, OnRacePolicy::Throw);
        EXPECT_EQ(e.kind(), RaceKind::Raw);
        EXPECT_EQ(e.siteIndex(), site);
        EXPECT_EQ(e.sfrOrdinal(), sfr);
    } catch (const ExecutionAborted &) {
        threw = true;
        EXPECT_EQ(policy, OnRacePolicy::Throw);
    }
    EXPECT_EQ(threw, policy == OnRacePolicy::Throw)
        << onRacePolicyName(policy);
    rt.join(main, h);

    EXPECT_TRUE(rt.raceOccurred()) << onRacePolicyName(policy);
    ASSERT_NE(rt.firstRace(), nullptr) << onRacePolicyName(policy);
    EXPECT_EQ(rt.firstRace()->kind(), RaceKind::Raw)
        << onRacePolicyName(policy);
    EXPECT_EQ(rt.firstRace()->accessor(), main.tid())
        << onRacePolicyName(policy);
    EXPECT_EQ(rt.firstRace()->previousWriter(), writerTid)
        << onRacePolicyName(policy);
    EXPECT_EQ(rt.firstRace()->addr(), reinterpret_cast<Addr>(&x[0]))
        << onRacePolicyName(policy);
    if (batched) {
        // The recorded race carries the buffered access's identity.
        EXPECT_EQ(rt.firstRace()->siteIndex(), site)
            << onRacePolicyName(policy);
        EXPECT_EQ(rt.firstRace()->sfrOrdinal(), sfr)
            << onRacePolicyName(policy);
        // Report/Count resume the drain past the racy access and retire
        // the rest of the buffer. (Throw aborts mid-drain by design.)
        if (policy != OnRacePolicy::Throw) {
            EXPECT_TRUE(main.state().batch.empty())
                << onRacePolicyName(policy);
        }
    }
    if (async && batched) {
        // Engagement: the boundary drain above must actually have been
        // retired by the checker thread, not fallen back to inline.
        EXPECT_GT(rt.asyncDrains(), 0u) << onRacePolicyName(policy);
    } else {
        EXPECT_EQ(rt.asyncDrains(), 0u) << onRacePolicyName(policy);
    }
}

TEST(BatchDirected, RaceInBufferedRunRaisesAtBoundaryThrow)
{
    runBatchedRaceAtSfrBoundary(OnRacePolicy::Throw);
}

TEST(BatchDirected, RaceInBufferedRunRaisesAtBoundaryReport)
{
    runBatchedRaceAtSfrBoundary(OnRacePolicy::Report);
}

TEST(BatchDirected, RaceInBufferedRunRaisesAtBoundaryCount)
{
    runBatchedRaceAtSfrBoundary(OnRacePolicy::Count);
}

TEST(BatchDirected, RecoverGatesBatchingOffAndRecoversInline)
{
    runBatchedRaceAtSfrBoundary(OnRacePolicy::Recover);
}

TEST(AsyncBatchDirected, RaceInBufferedRunRaisesAtBoundaryThrow)
{
    runBatchedRaceAtSfrBoundary(OnRacePolicy::Throw, /*async=*/true);
}

TEST(AsyncBatchDirected, RaceInBufferedRunRaisesAtBoundaryReport)
{
    runBatchedRaceAtSfrBoundary(OnRacePolicy::Report, /*async=*/true);
}

TEST(AsyncBatchDirected, RaceInBufferedRunRaisesAtBoundaryCount)
{
    runBatchedRaceAtSfrBoundary(OnRacePolicy::Count, /*async=*/true);
}

TEST(AsyncBatchDirected, RecoverGatesTheCheckerThreadOff)
{
    runBatchedRaceAtSfrBoundary(OnRacePolicy::Recover, /*async=*/true);
}

/**
 * Overflow drain: a streaming run larger than --batch-bytes must not
 * wait for the SFR boundary — the capacity drain fires mid-run, still
 * attributing the race to the buffered access. Also pins that the
 * triggering access is part of the drain (the append-then-drain
 * ordering in appendRead).
 */
TEST(BatchDirected, OverflowDrainFiresBeforeTheBoundary)
{
    RuntimeConfig config;
    config.maxThreads = 16;
    config.heap.sharedBytes = std::size_t{64} << 20;
    config.heap.privateBytes = std::size_t{16} << 20;
    config.onRace = OnRacePolicy::Report;
    config.batchBytes = 256; // 64 ints: force mid-run drains

    CleanRuntime rt(config);
    ASSERT_TRUE(rt.batchChecking());
    auto *x = rt.heap().allocSharedArray<int>(256);
    std::atomic<bool> wrote{false};
    ThreadId writerTid = 0;
    auto h = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        writerTid = ctx.tid();
        ctx.write(&x[0], 7);
        wrote.store(true, std::memory_order_release);
    });
    while (!wrote.load(std::memory_order_acquire))
        std::this_thread::yield();

    ThreadContext &main = rt.mainContext();
    int sum = 0;
    for (int i = 0; i < 256; ++i)
        sum += main.read(&x[i]);
    (void)sum;
    // No sync op yet — the race must already have been recorded by an
    // overflow drain somewhere inside the streaming run.
    EXPECT_TRUE(rt.raceOccurred());
    EXPECT_GT(main.state().stats.batchOverflowDrains, 0u);
    ASSERT_NE(rt.firstRace(), nullptr);
    EXPECT_EQ(rt.firstRace()->kind(), RaceKind::Raw);
    EXPECT_EQ(rt.firstRace()->accessor(), main.tid());
    EXPECT_EQ(rt.firstRace()->previousWriter(), writerTid);
    EXPECT_EQ(rt.firstRace()->addr(), reinterpret_cast<Addr>(&x[0]));
    rt.join(main, h);
}

/**
 * The SLO boundary condition: --overhead-budget=100 means "admit every
 * check" and must be bit-identical to running with no budget at all —
 * same fingerprint, same failure report, same metrics, zero shed reads.
 */
TEST(SamplingDirected, Budget100IsBitIdenticalToBudgetOff)
{
    const auto run = [](std::uint32_t budget) {
        wl::RunSpec spec;
        spec.workload = "streamcluster";
        spec.backend = wl::BackendKind::Clean;
        spec.params.threads = 4;
        spec.params.scale = wl::Scale::Test;
        spec.params.seed = 0x100;
        spec.runtime.maxThreads = 16;
        spec.runtime.heap.sharedBytes = std::size_t{256} << 20;
        spec.runtime.heap.privateBytes = std::size_t{64} << 20;
        spec.runtime.obs.enabled = true;
        // Physical check-latency sampling off: the histograms must be
        // a function of the deterministic execution for byte equality.
        spec.runtime.obs.latencySampleEvery = 0;
        spec.runtime.overheadBudget = budget;
        return wl::runWorkload(spec);
    };
    const wl::RunResult off = run(0);
    const wl::RunResult full = run(100);
    EXPECT_FALSE(full.samplingOn);
    EXPECT_EQ(full.checker.shedReads, 0u);
    EXPECT_TRUE(full.fingerprint() == off.fingerprint());
    EXPECT_EQ(full.failureReport, off.failureReport);
    EXPECT_EQ(full.metricsJson, off.metricsJson);
}

/**
 * --async-check must be a pure execution-engine change: moving the
 * drain onto the checker thread may alter wall time but nothing the
 * runtime can observe — same fingerprint, failure report, and metrics
 * (the drain handoff count deliberately lives outside CheckerStats).
 */
TEST(AsyncDirected, AsyncOnOffIsBitIdentical)
{
    const auto run = [](bool async) {
        wl::RunSpec spec;
        spec.workload = "streamcluster";
        spec.backend = wl::BackendKind::Clean;
        spec.params.threads = 4;
        spec.params.scale = wl::Scale::Test;
        spec.params.seed = 0x16;
        spec.runtime.maxThreads = 16;
        spec.runtime.heap.sharedBytes = std::size_t{256} << 20;
        spec.runtime.heap.privateBytes = std::size_t{64} << 20;
        spec.runtime.obs.enabled = true;
        spec.runtime.obs.latencySampleEvery = 0;
        spec.runtime.asyncCheck = async;
        return wl::runWorkload(spec);
    };
    const wl::RunResult sync = run(false);
    const wl::RunResult async = run(true);
    EXPECT_TRUE(async.fingerprint() == sync.fingerprint());
    EXPECT_EQ(async.failureReport, sync.failureReport);
    EXPECT_EQ(async.metricsJson, sync.metricsJson);
    EXPECT_EQ(async.outputHash, sync.outputHash);
}

// ---------------------------------------------------------------------
// 60-seed async-check lockstep parity (this PR's --async-check
// satellite, mirroring the batch and own-cache parity suites): a
// seeded racy program must produce identical verdicts, sites, and SFR
// ordinals with the drain retired inline or on the checker thread,
// across every --on-race policy.
// ---------------------------------------------------------------------

/** Everything the runtime lets us observe about one seeded run. */
struct SeededOutcome
{
    bool threw = false;
    bool raceOccurred = false;
    std::uint64_t raceCount = 0;
    std::uint64_t asyncDrains = 0;
    bool hasFirst = false;
    RaceKind kind = RaceKind::Raw;
    Addr addrOffset = 0; // first-race addr relative to the array base
    bool accessorIsMain = false;
    bool writerIsChild = false;
    std::uint64_t siteIndex = 0;
    std::uint64_t sfrOrdinal = 0;
};

/**
 * One writer thread scribbles over a seeded subset of a 64-word array
 * and then signals through a raw flag (no happens-before), so every
 * later touch of a scribbled word by the main thread is a genuine
 * race. The main thread then runs a seeded mix of reads (batched),
 * writes (inline), and lock/unlock SFR boundaries (drains). Because
 * the writer quiesces before main starts, the verdict stream is a
 * function of the seed alone — the async bit must not change it.
 */
SeededOutcome
runSeededAsyncProgram(unsigned seed, OnRacePolicy policy, bool async)
{
    constexpr unsigned kWords = 64;
    RuntimeConfig config;
    config.maxThreads = 16;
    config.heap.sharedBytes = std::size_t{64} << 20;
    config.heap.privateBytes = std::size_t{16} << 20;
    config.onRace = policy;
    config.asyncCheck = async;

    CleanRuntime rt(config);
    auto *x = rt.heap().allocSharedArray<int>(kWords);
    CleanMutex mu(rt);
    std::atomic<bool> wrote{false};
    ThreadId writerTid = 0;

    // Spawn first: the child's writes are unordered with everything the
    // parent does after the spawn tick.
    auto h = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        writerTid = ctx.tid();
        Prng rng(0xa11ceu + seed * 2u);
        for (int i = 0; i < 8; ++i)
            ctx.write(&x[rng.nextBelow(kWords)], i);
        wrote.store(true, std::memory_order_release);
    });
    while (!wrote.load(std::memory_order_acquire))
        std::this_thread::yield();

    ThreadContext &main = rt.mainContext();
    SeededOutcome out;
    Prng rng(0x5eedu + seed * 2u + 1u);
    try {
        for (int step = 0; step < 128; ++step) {
            const unsigned op = static_cast<unsigned>(rng.nextBelow(10));
            const unsigned idx =
                static_cast<unsigned>(rng.nextBelow(kWords));
            if (op < 6) {
                (void)main.read(&x[idx]);
            } else if (op < 8) {
                main.write(&x[idx], step);
            } else {
                mu.lock(main);
                mu.unlock(main);
            }
        }
        // Final boundary so the tail of the batch is retired too.
        mu.lock(main);
        mu.unlock(main);
    } catch (const RaceException &) {
        out.threw = true;
    } catch (const ExecutionAborted &) {
        out.threw = true;
    }
    rt.join(main, h);

    out.raceOccurred = rt.raceOccurred();
    out.raceCount = rt.raceCount();
    out.asyncDrains = rt.asyncDrains();
    if (rt.firstRace() != nullptr) {
        out.hasFirst = true;
        out.kind = rt.firstRace()->kind();
        out.addrOffset = rt.firstRace()->addr() -
                         reinterpret_cast<Addr>(&x[0]);
        out.accessorIsMain = rt.firstRace()->accessor() == main.tid();
        out.writerIsChild =
            rt.firstRace()->previousWriter() == writerTid;
        out.siteIndex = rt.firstRace()->siteIndex();
        out.sfrOrdinal = rt.firstRace()->sfrOrdinal();
    }
    return out;
}

class AsyncParity : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(AsyncParity, VerdictsSitesAndOrdinalsMatchAcrossPolicies)
{
    const unsigned seed = GetParam();
    const OnRacePolicy policies[] = {
        OnRacePolicy::Throw, OnRacePolicy::Report, OnRacePolicy::Count,
        OnRacePolicy::Recover};
    for (const OnRacePolicy policy : policies) {
        SCOPED_TRACE(std::string("policy ") + onRacePolicyName(policy));
        const SeededOutcome sync =
            runSeededAsyncProgram(seed, policy, false);
        const SeededOutcome async =
            runSeededAsyncProgram(seed, policy, true);
        // The exit-code input: did the program throw, and did a race
        // occur? (wl::runWorkload derives the process exit from these.)
        EXPECT_EQ(async.threw, sync.threw);
        EXPECT_EQ(async.raceOccurred, sync.raceOccurred);
        EXPECT_EQ(async.raceCount, sync.raceCount);
        ASSERT_EQ(async.hasFirst, sync.hasFirst);
        if (sync.hasFirst) {
            EXPECT_EQ(async.kind, sync.kind);
            EXPECT_EQ(async.addrOffset, sync.addrOffset);
            EXPECT_EQ(async.accessorIsMain, sync.accessorIsMain);
            EXPECT_EQ(async.writerIsChild, sync.writerIsChild);
            EXPECT_EQ(async.siteIndex, sync.siteIndex);
            EXPECT_EQ(async.sfrOrdinal, sync.sfrOrdinal);
        }
        // The inline runs must never touch the checker thread; the
        // async runs engage it whenever the batch gate is open.
        EXPECT_EQ(sync.asyncDrains, 0u);
        if (policy == OnRacePolicy::Recover) {
            EXPECT_EQ(async.asyncDrains, 0u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsyncParity, ::testing::Range(0u, 60u));

} // namespace
} // namespace clean
