#include "support/stats.h"

#include <sstream>

namespace clean
{

std::uint64_t &
StatSet::counter(const std::string &name)
{
    auto it = index_.find(name);
    if (it == index_.end()) {
        it = index_.emplace(name, slots_.size()).first;
        slots_.emplace_back(name, 0);
    }
    return slots_[it->second].second;
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    auto it = index_.find(name);
    return it == index_.end() ? 0 : slots_[it->second].second;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[name, value] : other.slots_)
        counter(name) += value;
}

void
StatSet::clear()
{
    for (auto &slot : slots_)
        slot.second = 0;
}

std::vector<std::pair<std::string, std::uint64_t>>
StatSet::entries() const
{
    return slots_;
}

std::string
StatSet::format(const std::string &indent) const
{
    std::ostringstream os;
    for (const auto &[name, value] : slots_)
        os << indent << name << ": " << value << "\n";
    return os.str();
}

} // namespace clean
