/**
 * @file
 * Record-on overhead gate (ISSUE 6 satellite).
 *
 * Recording a replay trace must be cheap enough to leave on for every
 * chaos/CI run: the sink only hooks cold control points (sync
 * operations, turn grants, recovery episodes), never the per-access
 * check path. This harness times each kernel under the clean backend
 * with recording off, recording on, and replaying the just-recorded
 * trace, then gates the record-on overhead.
 *

 * The baseline runs with the flight recorder enabled but no sink:
 * recording forces the recorder on, so comparing against an obs-off run
 * would charge the recorder's own (separately gated) cost to the sink.
 * The overhead gated here is exactly what --record adds on top of an
 * observed run: serializing each cold-control-point event and the
 * incremental fwrite/fflush cadence.
 *
 * Beyond the common bench flags (bench/common.h):
 *   --max-overhead=F   fail (exit 1) when the mean record-on overhead
 *                      exceeds F (default 0.05 — the ≤5% budget; pass
 *                      a negative value to report without gating)
 *   --json=PATH        write the measurements as JSON
 *                      (BENCH_replay.json holds a committed
 *                      reference run; regenerate with the command in
 *                      its header when the recorder changes)
 *
 * Replay wall time is reported for context only — replay serializes
 * turns against the recorded schedule, so it is expected to be slower
 * than the free-running original; no budget is stated for it.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/common.h"

using namespace clean;
using namespace clean::bench;
using namespace clean::wl;

int
main(int argc, char **argv)
{
    BenchConfig config = parseBench(argc, argv, "test");
    if (config.options.getString("workloads", "").empty())
        config.workloads = {"fft", "lu_cb", "streamcluster",
                            "blackscholes"};
    const double maxOverhead =
        config.options.getDouble("max-overhead", 0.05);
    const std::string jsonOut = config.options.getString("json", "");
    const std::string tracePath =
        (std::filesystem::temp_directory_path() /
         "bench_replay_overhead.cleantrace")
            .string();

    std::printf("=== record/replay overhead (threads=%u, scale=%s, "
                "repeats=%u, budget=%.0f%%) ===\n\n",
                config.threads,
                config.options.getString("scale", "test").c_str(),
                config.repeats, maxOverhead * 100);
    std::printf("%-14s %12s %12s %10s %12s\n", "benchmark", "off[s]",
                "record[s]", "overhead", "replay[s]");

    struct Row
    {
        std::string workload;
        double off, record, replay, overhead;
    };
    std::vector<Row> rows;
    std::vector<double> overheads;
    for (const auto &name : config.workloads) {
        RunSpec base = baseSpec(config, name, BackendKind::Clean);
        // Match the forced-on recorder configuration of a recording run
        // (core/runtime.cc): flight recorder enabled, latency sampling
        // off. The delta to `record` is then purely the sink.
        base.runtime.obs.enabled = true;
        base.runtime.obs.latencySampleEvery = 0;
        const double off = timedSeconds(base, config.repeats);

        RunSpec rec = base;
        rec.recordPath = tracePath;
        const double record = timedSeconds(rec, config.repeats);

        RunSpec rep = base;
        rep.replayPath = tracePath;
        const double replay = timedSeconds(rep, config.repeats);

        if (off <= 0 || record <= 0) {
            std::fprintf(stderr, "%s: timing failed\n", name.c_str());
            return 1;
        }
        const double overhead = record / off - 1.0;
        overheads.push_back(overhead);
        rows.push_back({name, off, record, replay, overhead});
        std::printf("%-14s %12.4f %12.4f %9.1f%% %12.4f\n", name.c_str(),
                    off, record, overhead * 100, replay);
    }
    std::filesystem::remove(tracePath);

    const double meanOverhead = mean(overheads);
    std::printf("\nmean record-on overhead: %.1f%%\n",
                meanOverhead * 100);

    if (!jsonOut.empty()) {
        std::FILE *f = std::fopen(jsonOut.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n", jsonOut.c_str());
            return 1;
        }
        std::fprintf(f, "{\n  \"benchmarks\": [\n");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            std::fprintf(f,
                         "    {\"workload\": \"%s\", \"off_s\": %.6f, "
                         "\"record_s\": %.6f, \"replay_s\": %.6f, "
                         "\"record_overhead\": %.4f}%s\n",
                         r.workload.c_str(), r.off, r.record, r.replay,
                         r.overhead, i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f,
                     "  ],\n  \"mean_record_overhead\": %.4f,\n"
                     "  \"budget\": %.4f\n}\n",
                     meanOverhead, maxOverhead);
        std::fclose(f);
    }

    if (maxOverhead >= 0 && meanOverhead > maxOverhead) {
        std::fprintf(stderr,
                     "FAIL: mean record-on overhead %.1f%% exceeds the "
                     "%.0f%% budget\n",
                     meanOverhead * 100, maxOverhead * 100);
        return 1;
    }
    std::printf("record-on overhead within budget\n");
    return 0;
}
