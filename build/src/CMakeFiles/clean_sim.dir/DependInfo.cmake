
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/CMakeFiles/clean_sim.dir/sim/cache.cc.o" "gcc" "src/CMakeFiles/clean_sim.dir/sim/cache.cc.o.d"
  "/root/repo/src/sim/clean_hw.cc" "src/CMakeFiles/clean_sim.dir/sim/clean_hw.cc.o" "gcc" "src/CMakeFiles/clean_sim.dir/sim/clean_hw.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/CMakeFiles/clean_sim.dir/sim/machine.cc.o" "gcc" "src/CMakeFiles/clean_sim.dir/sim/machine.cc.o.d"
  "/root/repo/src/sim/memory_hierarchy.cc" "src/CMakeFiles/clean_sim.dir/sim/memory_hierarchy.cc.o" "gcc" "src/CMakeFiles/clean_sim.dir/sim/memory_hierarchy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/clean_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clean_det.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clean_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
