/**
 * @file
 * Ablation — byte vs word checking granularity (§3.2).
 *
 * The paper checks per byte because C/C++ programs may legitimately
 * share distinct bytes of one word; a type-safe-language specialization
 * could check per object/word. This bench measures what that buys
 * (fewer checks and epoch updates) and what it costs (false reports on
 * byte-granular sharing — demonstrated on dedup, whose pipeline shares
 * adjacent bytes).
 */

#include "bench/common.h"

using namespace clean;
using namespace clean::bench;
using namespace clean::wl;

int
main(int argc, char **argv)
{
    BenchConfig config = parseBench(argc, argv, "small");
    if (!config.options.has("workloads")) {
        config.workloads = {"lu_cb", "fft", "ocean_cp", "blackscholes",
                            "water_sp", "streamcluster"};
    }

    std::printf("=== Ablation: checking granularity "
                "(threads=%u, scale=%s) ===\n\n",
                config.threads,
                config.options.getString("scale", "small").c_str());
    std::printf("%-14s %12s %12s %9s\n", "benchmark", "byte[s]",
                "word[s]", "speedup");

    std::vector<double> speedups;
    for (const auto &name : config.workloads) {
        auto byteSpec = baseSpec(config, name, BackendKind::DetectOnly);
        auto wordSpec = byteSpec;
        wordSpec.runtime.granuleLog2 = 2;
        const double byteTime = timedSeconds(byteSpec, config.repeats);
        const double wordTime = timedSeconds(wordSpec, config.repeats);
        if (byteTime <= 0 || wordTime <= 0) {
            std::printf("%-14s %12s  (word mode reported a race: "
                        "sub-word sharing)\n",
                        name.c_str(), "N/A");
            continue;
        }
        speedups.push_back(byteTime / wordTime);
        std::printf("%-14s %12.4f %12.4f %8.2fx\n", name.c_str(),
                    byteTime, wordTime, byteTime / wordTime);
    }
    std::printf("\ngeomean word-granularity speedup: %.2fx\n",
                geomean(speedups));

    // The cost: byte-granular sharing triggers false reports.
    std::printf("\nfalse-positive demonstration (dedup, race-free "
                "variant, byte-level pipeline):\n");
    auto dedupByte = baseSpec(config, "dedup", BackendKind::Clean);
    auto dedupWord = dedupByte;
    dedupWord.runtime.granuleLog2 = 2;
    const auto rb = runWorkload(dedupByte);
    const auto rw = runWorkload(dedupWord);
    std::printf("  byte granularity: %s\n",
                rb.raceException ? rb.raceMessage.c_str()
                                 : "no exception (correct)");
    std::printf("  word granularity: %s\n",
                rw.raceException
                    ? (std::string("RACE REPORTED — ") + rw.raceMessage)
                          .c_str()
                    : "no exception");
    std::printf("\nthe paper checks per byte exactly because of this "
                "(§3.2): word granularity is\nsound only when the "
                "language cannot share sub-word data.\n");
    return 0;
}
