/**
 * @file
 * dedup — pipelined compression with deduplication (PARSEC).
 *
 * Three stages connected by bounded queues (mutex + condvars):
 *   chunkers  read the input stream *byte by byte* (content-defined
 *             chunk boundaries via a rolling hash);
 *   dedupers  hash each chunk into a bucket-locked hash table;
 *   writers   "compress" unique chunks byte-by-byte into a shared
 *             output buffer at chunk-granularity offsets.
 *
 * This is the paper's hardware worst case (Figure 9: 46.7% slowdown;
 * Figure 10: most accesses to expanded lines): different threads write
 * single bytes inside the same 4-byte groups of the output buffer, so
 * the compact 1-epoch-per-4-bytes representation keeps expanding.
 *
 * Racy variant: hash-table inserts skip the bucket lock — WAW on bucket
 * heads — and duplicate suppression races (RAW on entry fields).
 */

#include "workloads/suite/factories.h"
#include "workloads/suite/kernel_common.h"

namespace clean::wl::suite
{

namespace
{

struct Chunk
{
    std::uint64_t offset;
    std::uint32_t length;
    std::uint32_t hash;
};

class Dedup : public KernelBase
{
  public:
    Dedup() : KernelBase("dedup", "parsec", true) {}

    void
    run(Env &env, const WorkloadParams &p) override
    {
        const std::uint64_t inputSize =
            scaled(p.scale, 12000, 48000, 200000);
        const std::uint64_t nBuckets = 256;
        const std::uint64_t queueCap = 64;
        const std::uint64_t maxChunks = inputSize / 6 + 64;

        auto *input = env.allocShared<std::uint8_t>(inputSize);
        // Stage hand-off buffer: chunkers normalize the stream into it
        // byte by byte and downstream stages read it byte by byte — the
        // byte-granularity sharing that keeps dedup's metadata lines
        // expanded in the paper's Figure 10.
        auto *scratch = env.allocShared<std::uint8_t>(inputSize);
        auto *output = env.allocShared<std::uint8_t>(inputSize + 4096);
        auto *outCursor = env.allocShared<std::uint64_t>(1);
        // Hash table: bucketHead[b] -> chunk index + 1 (0 = empty),
        // chain via entryNext.
        auto *bucketHead = env.allocShared<std::uint32_t>(nBuckets);
        auto *entryNext = env.allocShared<std::uint32_t>(maxChunks);
        auto *entryHash = env.allocShared<std::uint32_t>(maxChunks);
        auto *entryCount = env.allocShared<std::uint32_t>(1);
        // Two bounded queues of Chunks.
        auto *q1 = env.allocShared<Chunk>(queueCap);
        auto *q2 = env.allocShared<Chunk>(queueCap);
        auto *q1State = env.allocShared<std::uint64_t>(3); // head tail done
        auto *q2State = env.allocShared<std::uint64_t>(3);

        const unsigned q1Lock = env.createMutex();
        const unsigned q2Lock = env.createMutex();
        const unsigned q1NotEmpty = env.createCond();
        const unsigned q1NotFull = env.createCond();
        const unsigned q2NotEmpty = env.createCond();
        const unsigned q2NotFull = env.createCond();
        const unsigned cursorLock = env.createMutex();
        const unsigned entryLock = env.createMutex();
        std::vector<unsigned> bucketLocks;
        for (unsigned b = 0; b < 32; ++b)
            bucketLocks.push_back(env.createMutex());

        {
            Prng init(p.seed);
            for (std::uint64_t i = 0; i < inputSize; ++i) {
                // Repetitive stream so dedup finds duplicates.
                input[i] = static_cast<std::uint8_t>(
                    (i % 64 < 48) ? (i % 17) : init.nextBelow(256));
            }
            for (std::uint64_t b = 0; b < nBuckets; ++b)
                bucketHead[b] = 0;
            entryCount[0] = 0;
            outCursor[0] = 0;
            for (int i = 0; i < 3; ++i)
                q1State[i] = q2State[i] = 0;
        }

        const bool racy = p.racy;
        // The pipeline needs >= 1 chunker, >= 2 dedupers (so the racy
        // hash-table insert actually races) and >= 1 writer.
        const unsigned threads = std::max(4u, p.threads);
        const unsigned nChunkers = std::max(1u, threads / 4);
        const unsigned nDedupers = std::max(2u, threads / 4);

        env.parallel(threads, [&](Worker &w) {
            auto push = [&](Chunk c, unsigned lock, unsigned notEmpty,
                            unsigned notFull, Chunk *q,
                            std::uint64_t *state) {
                w.lock(lock);
                while (w.read(&state[1]) - w.read(&state[0]) >= queueCap)
                    w.condWait(notFull, lock);
                const std::uint64_t tail = w.read(&state[1]);
                Chunk *slot = &q[tail % queueCap];
                w.write(&slot->offset, c.offset);
                w.write(&slot->length, c.length);
                w.write(&slot->hash, c.hash);
                w.write(&state[1], tail + 1);
                w.condBroadcast(notEmpty);
                w.unlock(lock);
            };
            auto pop = [&](Chunk &c, unsigned lock, unsigned notEmpty,
                           unsigned notFull, Chunk *q,
                           std::uint64_t *state, unsigned producers)
                -> bool {
                w.lock(lock);
                for (;;) {
                    const std::uint64_t head = w.read(&state[0]);
                    if (head < w.read(&state[1])) {
                        const Chunk *slot = &q[head % queueCap];
                        c.offset = w.read(&slot->offset);
                        c.length = w.read(&slot->length);
                        c.hash = w.read(&slot->hash);
                        w.write(&state[0], head + 1);
                        w.condBroadcast(notFull);
                        w.unlock(lock);
                        return true;
                    }
                    if (w.read(&state[2]) >= producers) {
                        w.unlock(lock);
                        return false;
                    }
                    w.condWait(notEmpty, lock);
                }
            };
            auto markDone = [&](unsigned lock, unsigned notEmpty,
                                std::uint64_t *state) {
                w.lock(lock);
                w.update(&state[2],
                         [](std::uint64_t v) { return v + 1; });
                w.condBroadcast(notEmpty);
                w.unlock(lock);
            };

            const unsigned role = w.index() < nChunkers
                                      ? 0
                                      : (w.index() < nChunkers + nDedupers
                                             ? 1
                                             : 2);
            if (role == 0) {
                // Chunker: byte-granularity scan of an input slice.
                const Slice s =
                    sliceOf(inputSize, w.index(), nChunkers);
                std::uint32_t rolling = 0, hash = 2166136261u;
                std::uint64_t start = s.begin;
                for (std::uint64_t i = s.begin; i < s.end; ++i) {
                    const std::uint8_t byte = w.read(&input[i]);
                    // Normalize into the hand-off buffer (byte write).
                    w.write(&scratch[i],
                            static_cast<std::uint8_t>(byte ^ 0x5a));
                    rolling = (rolling << 1) ^ byte;
                    hash = (hash ^ byte) * 16777619u;
                    // Short chunks (avg ~12 bytes): successive chunks
                    // land inside the same 4-byte metadata groups with
                    // different epochs, which is what keeps dedup's data
                    // lines in the expanded state (Figure 10).
                    const bool boundary =
                        ((rolling & 0xf) == 0xf) ||
                        (i - start >= 24) || (i + 1 == s.end);
                    if (boundary && i >= start) {
                        Chunk c;
                        c.offset = start;
                        c.length =
                            static_cast<std::uint32_t>(i + 1 - start);
                        c.hash = hash;
                        push(c, q1Lock, q1NotEmpty, q1NotFull, q1,
                             q1State);
                        start = i + 1;
                        hash = 2166136261u;
                    }
                }
                markDone(q1Lock, q1NotEmpty, q1State);
            } else if (role == 1) {
                // Deduper: hash-table lookup/insert per chunk.
                Chunk c;
                while (pop(c, q1Lock, q1NotEmpty, q1NotFull, q1, q1State,
                           nChunkers)) {
                    const std::uint64_t b = c.hash % nBuckets;
                    const unsigned bLock =
                        bucketLocks[b % bucketLocks.size()];
                    bool duplicate = false;
                    if (!racy)
                        w.lock(bLock);
                    std::uint32_t e = w.read(&bucketHead[b]);
                    while (e != 0) {
                        if (w.read(&entryHash[e - 1]) == c.hash) {
                            duplicate = true;
                            break;
                        }
                        e = w.read(&entryNext[e - 1]);
                    }
                    if (!duplicate) {
                        // Allocate an entry and link it in. The racy
                        // variant performs the whole sequence unlocked:
                        // WAW on bucketHead and entryCount.
                        std::uint32_t idx;
                        if (racy) {
                            idx = w.read(&entryCount[0]);
                            w.write(&entryCount[0], idx + 1);
                        } else {
                            w.lock(entryLock);
                            idx = w.read(&entryCount[0]);
                            w.write(&entryCount[0], idx + 1);
                            w.unlock(entryLock);
                        }
                        if (idx < maxChunks) {
                            w.write(&entryHash[idx], c.hash);
                            w.write(&entryNext[idx],
                                    w.read(&bucketHead[b]));
                            w.write(&bucketHead[b], idx + 1);
                        }
                    }
                    if (!racy)
                        w.unlock(bLock);
                    if (!duplicate)
                        push(c, q2Lock, q2NotEmpty, q2NotFull, q2,
                             q2State);
                    w.compute(8);
                }
                // Final unique-entry audit: racy dedupers read the
                // entry counter unlocked *after* their last queue
                // operation, racing with the other deduper's allocs in
                // every schedule.
                if (racy) {
                    w.update(&entryCount[0],
                             [](std::uint32_t v) { return v; });
                } else {
                    w.lock(entryLock);
                    w.read(&entryCount[0]);
                    w.unlock(entryLock);
                }
                markDone(q2Lock, q2NotEmpty, q2State);
            } else {
                // Writer: byte-wise "compression" into the shared
                // output at a reserved offset (the expanded-line
                // generator: single-byte writes from many threads).
                Chunk c;
                std::uint64_t written = 0;
                while (pop(c, q2Lock, q2NotEmpty, q2NotFull, q2, q2State,
                           nDedupers)) {
                    w.lock(cursorLock);
                    const std::uint64_t at = w.read(&outCursor[0]);
                    w.write(&outCursor[0], at + c.length);
                    w.unlock(cursorLock);
                    std::uint8_t prev = 0;
                    for (std::uint32_t i = 0; i < c.length; ++i) {
                        const std::uint8_t byte =
                            w.read(&scratch[c.offset + i]);
                        const std::uint8_t enc = static_cast<std::uint8_t>(
                            byte ^ prev);
                        w.write(&output[at + i], enc);
                        prev = byte;
                        w.compute(2);
                    }
                    written += c.length;
                }
                w.sink(written);
            }
        });

        env.declareOutput(output, 4096);
    }
};

} // namespace

std::unique_ptr<Workload>
makeDedup()
{
    return std::make_unique<Dedup>();
}

} // namespace clean::wl::suite
