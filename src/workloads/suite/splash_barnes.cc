/**
 * @file
 * barnes — Barnes-Hut-style hierarchical n-body (SPLASH-2).
 *
 * Modeled phases per timestep:
 *   1. bounding-box reduction over all bodies (global mutex);
 *   2. binning bodies into a uniform grid of cells standing in for the
 *      oct-tree, with per-cell aggregate mass updates under cell locks;
 *   3. force evaluation: each body reads the aggregates of every cell
 *      (far field) and the bodies of its own cell (near field);
 *   4. position integration over the thread's own slice.
 *
 * Sharing profile: read-heavy force phase, lock-protected scatter
 * updates, barriers between phases — moderate-to-high sync frequency
 * (barnes appears in the paper's Table 1 rollover list).
 *
 * Racy variant: the bounding-box reduction updates the shared min/max
 * without the mutex — unsynchronized WAW on the bounds, a classic
 * "benign-looking" reduction race.
 */

#include "workloads/suite/factories.h"
#include "workloads/suite/kernel_common.h"

namespace clean::wl::suite
{

namespace
{

struct Body
{
    double x, y;
    double vx, vy;
    double mass;
    double ax, ay;
    double pad;
};

struct Cell
{
    double mass;
    double cx, cy; // mass-weighted centroid accumulators
    std::uint32_t count;
    std::uint32_t pad;
};

class Barnes : public KernelBase
{
  public:
    Barnes() : KernelBase("barnes", "splash2", true) {}

    void
    run(Env &env, const WorkloadParams &p) override
    {
        const std::uint64_t nBodies = scaled(p.scale, 192, 1024, 4096);
        const std::uint64_t steps = scaled(p.scale, 2, 3, 6);
        const unsigned gridDim = 8;
        const unsigned nCells = gridDim * gridDim;

        auto *bodies = env.allocShared<Body>(nBodies);
        auto *cells = env.allocShared<Cell>(nCells);
        auto *bounds = env.allocShared<double>(4); // minx maxx miny maxy
        auto *cellIndex = env.allocShared<std::uint32_t>(nBodies);

        const unsigned boundsLock = env.createMutex();
        std::vector<unsigned> cellLocks;
        for (unsigned c = 0; c < nCells; ++c)
            cellLocks.push_back(env.createMutex());
        const unsigned phase = env.createBarrier(p.threads);

        // Deterministic initial conditions (seeded per body).
        {
            Prng init(p.seed);
            for (std::uint64_t i = 0; i < nBodies; ++i) {
                bodies[i].x = init.nextDouble() * 100.0;
                bodies[i].y = init.nextDouble() * 100.0;
                bodies[i].vx = init.nextDouble() - 0.5;
                bodies[i].vy = init.nextDouble() - 0.5;
                bodies[i].mass = 1.0 + init.nextDouble();
                bodies[i].ax = bodies[i].ay = 0.0;
            }
            bounds[0] = bounds[2] = 0.0;
            bounds[1] = bounds[3] = 100.0;
        }

        const bool racy = p.racy;
        env.parallel(p.threads, [&](Worker &w) {
            const Slice slice = sliceOf(nBodies, w.index(), w.count());
            // Private per-worker cache of cell centroids (the analogue
            // of barnes' per-processor tree walk buffers).
            auto *cellCache = env.allocPrivate<double>(nCells * 3);
            for (std::uint64_t step = 0; step < steps; ++step) {
                // Phase 0: one worker resets the bounds accumulator.
                if (w.index() == 0) {
                    w.write(&bounds[0], 1e30);
                    w.write(&bounds[1], -1e30);
                    w.write(&bounds[2], 1e30);
                    w.write(&bounds[3], -1e30);
                }
                w.barrier(phase);

                // Phase 1: bounding box reduction.
                double minx = 1e30, maxx = -1e30, miny = 1e30,
                       maxy = -1e30;
                for (std::uint64_t i = slice.begin; i < slice.end; ++i) {
                    const double x = w.read(&bodies[i].x);
                    const double y = w.read(&bodies[i].y);
                    minx = std::min(minx, x);
                    maxx = std::max(maxx, x);
                    miny = std::min(miny, y);
                    maxy = std::max(maxy, y);
                    w.compute(4);
                }
                if (racy) {
                    // Unlocked reduction: WAW on the shared bounds.
                    if (minx < w.read(&bounds[0]))
                        w.write(&bounds[0], minx);
                    if (maxx > w.read(&bounds[1]))
                        w.write(&bounds[1], maxx);
                    if (miny < w.read(&bounds[2]))
                        w.write(&bounds[2], miny);
                    if (maxy > w.read(&bounds[3]))
                        w.write(&bounds[3], maxy);
                } else {
                    w.lock(boundsLock);
                    if (minx < w.read(&bounds[0]))
                        w.write(&bounds[0], minx);
                    if (maxx > w.read(&bounds[1]))
                        w.write(&bounds[1], maxx);
                    if (miny < w.read(&bounds[2]))
                        w.write(&bounds[2], miny);
                    if (maxy > w.read(&bounds[3]))
                        w.write(&bounds[3], maxy);
                    w.unlock(boundsLock);
                }
                w.barrier(phase);

                // Phase 1b: one worker resets the grid cells.
                if (w.index() == 0) {
                    for (unsigned c = 0; c < nCells; ++c) {
                        w.write(&cells[c].mass, 0.0);
                        w.write(&cells[c].cx, 0.0);
                        w.write(&cells[c].cy, 0.0);
                        w.write(&cells[c].count, std::uint32_t{0});
                    }
                }
                w.barrier(phase);

                // Phase 2: bin bodies into cells ("tree build").
                const double bx0 = w.read(&bounds[0]);
                const double bx1 = w.read(&bounds[1]);
                const double by0 = w.read(&bounds[2]);
                const double by1 = w.read(&bounds[3]);
                const double sx = gridDim / std::max(1e-9, bx1 - bx0);
                const double sy = gridDim / std::max(1e-9, by1 - by0);
                for (std::uint64_t i = slice.begin; i < slice.end; ++i) {
                    const double x = w.read(&bodies[i].x);
                    const double y = w.read(&bodies[i].y);
                    const double m = w.read(&bodies[i].mass);
                    unsigned gx = std::min<unsigned>(
                        gridDim - 1,
                        static_cast<unsigned>(std::max(0.0, (x - bx0) * sx)));
                    unsigned gy = std::min<unsigned>(
                        gridDim - 1,
                        static_cast<unsigned>(std::max(0.0, (y - by0) * sy)));
                    const unsigned c = gy * gridDim + gx;
                    w.write(&cellIndex[i], c);
                    w.lock(cellLocks[c]);
                    w.update(&cells[c].mass,
                             [m](double v) { return v + m; });
                    w.update(&cells[c].cx,
                             [m, x](double v) { return v + m * x; });
                    w.update(&cells[c].cy,
                             [m, y](double v) { return v + m * y; });
                    w.update(&cells[c].count,
                             [](std::uint32_t v) { return v + 1; });
                    w.unlock(cellLocks[c]);
                    w.compute(8);
                }
                w.barrier(phase);

                // Phase 3: force evaluation (read-heavy). Cell
                // aggregates are snapshotted into the private cache
                // once, then every body walks private memory.
                for (unsigned c = 0; c < nCells; ++c) {
                    const double cm = w.read(&cells[c].mass);
                    w.writePrivate(&cellCache[c * 3], cm);
                    w.writePrivate(&cellCache[c * 3 + 1],
                                   cm > 0 ? w.read(&cells[c].cx) / cm
                                          : 0.0);
                    w.writePrivate(&cellCache[c * 3 + 2],
                                   cm > 0 ? w.read(&cells[c].cy) / cm
                                          : 0.0);
                }
                for (std::uint64_t i = slice.begin; i < slice.end; ++i) {
                    const double x = w.read(&bodies[i].x);
                    const double y = w.read(&bodies[i].y);
                    double ax = 0.0, ay = 0.0;
                    for (unsigned c = 0; c < nCells; ++c) {
                        const double cm =
                            w.readPrivate(&cellCache[c * 3]);
                        if (cm <= 0.0)
                            continue;
                        const double cx =
                            w.readPrivate(&cellCache[c * 3 + 1]);
                        const double cy =
                            w.readPrivate(&cellCache[c * 3 + 2]);
                        const double dx = cx - x;
                        const double dy = cy - y;
                        const double d2 = dx * dx + dy * dy + 0.5;
                        const double inv = cm / (d2 * std::sqrt(d2));
                        ax += dx * inv;
                        ay += dy * inv;
                        w.compute(10);
                    }
                    w.write(&bodies[i].ax, ax);
                    w.write(&bodies[i].ay, ay);
                }
                w.barrier(phase);

                // Phase 4: integrate own slice.
                for (std::uint64_t i = slice.begin; i < slice.end; ++i) {
                    const double dt = 0.01;
                    const double vx =
                        w.read(&bodies[i].vx) + dt * w.read(&bodies[i].ax);
                    const double vy =
                        w.read(&bodies[i].vy) + dt * w.read(&bodies[i].ay);
                    w.write(&bodies[i].vx, vx);
                    w.write(&bodies[i].vy, vy);
                    w.update(&bodies[i].x,
                             [vx](double v) { return v + 0.01 * vx; });
                    w.update(&bodies[i].y,
                             [vy](double v) { return v + 0.01 * vy; });
                    w.compute(6);
                }
                w.barrier(phase);
            }
            // Fold a stable per-worker checksum.
            std::uint64_t h = 0;
            for (std::uint64_t i = slice.begin; i < slice.end; ++i) {
                h ^= static_cast<std::uint64_t>(
                    w.read(&bodies[i].x) * 1024.0);
                h = h * 31 + static_cast<std::uint64_t>(
                                 w.read(&bodies[i].y) * 1024.0);
            }
            w.sink(h);
        });

        env.declareOutput(bodies, nBodies * sizeof(Body));
    }
};

} // namespace

std::unique_ptr<Workload>
makeBarnes()
{
    return std::make_unique<Barnes>();
}

} // namespace clean::wl::suite
