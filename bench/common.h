/**
 * @file
 * Shared glue for the figure/table reproduction benches.
 *
 * Every bench binary accepts:
 *   --scale=test|small|large   problem size (default test; the paper's
 *                              native/simlarge runs correspond to large)
 *   --threads=N                worker threads (default 8, as the paper)
 *   --repeats=N                timing repetitions (default 1)
 *   --workloads=a,b,c          comma-separated subset (default: all)
 *   --no-vectorize             disable the §4.4 multi-byte check
 *   --no-fast-path             disable the software same-epoch fast path
 *   --no-own-cache             disable the per-thread ownership cache
 *   --no-batch                 disable batched SFR-boundary read checks
 *   --batch-bytes=N            batched-read drain window (default 64 KiB)
 *   --async-check              retire batched drains on a dedicated
 *                              checker thread (DESIGN.md §16)
 */

#ifndef CLEAN_BENCH_COMMON_H
#define CLEAN_BENCH_COMMON_H

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "support/options.h"
#include "workloads/registry.h"
#include "workloads/runner.h"

namespace clean::bench
{

/** Parsed common options. */
struct BenchConfig
{
    wl::Scale scale = wl::Scale::Test;
    unsigned threads = 8;
    unsigned repeats = 1;
    std::vector<std::string> workloads;
    Options options;
};

inline BenchConfig
parseBench(int argc, char **argv, const char *defaultScale = "test")
{
    BenchConfig config;
    config.options = Options::parse(argc, argv);
    const std::string scale =
        config.options.getString("scale", defaultScale);
    if (scale == "small")
        config.scale = wl::Scale::Small;
    else if (scale == "large")
        config.scale = wl::Scale::Large;
    config.threads =
        static_cast<unsigned>(config.options.getInt("threads", 8));
    config.repeats =
        static_cast<unsigned>(config.options.getInt("repeats", 1));
    const std::string subset = config.options.getString("workloads", "");
    if (subset.empty()) {
        config.workloads = wl::workloadNames();
    } else {
        std::size_t pos = 0;
        while (pos < subset.size()) {
            const std::size_t comma = subset.find(',', pos);
            const std::size_t end =
                comma == std::string::npos ? subset.size() : comma;
            config.workloads.push_back(subset.substr(pos, end - pos));
            pos = end + 1;
        }
    }
    return config;
}

/** Base RunSpec for a bench run. */
inline wl::RunSpec
baseSpec(const BenchConfig &config, const std::string &workload,
         wl::BackendKind backend, bool racy = false)
{
    wl::RunSpec spec;
    spec.workload = workload;
    spec.backend = backend;
    spec.params.threads = config.threads;
    spec.params.scale = config.scale;
    spec.params.racy = racy;
    spec.runtime.vectorized =
        !config.options.getBool("no-vectorize", false);
    spec.runtime.fastPath =
        !config.options.getBool("no-fast-path", false);
    spec.runtime.ownCache =
        !config.options.getBool("no-own-cache", false);
    spec.runtime.batch = !config.options.getBool("no-batch", false);
    spec.runtime.asyncCheck =
        config.options.getBool("async-check", false);
    spec.runtime.batchBytes = static_cast<std::size_t>(
        config.options.getInt("batch-bytes",
                              static_cast<std::int64_t>(
                                  spec.runtime.batchBytes)));
    spec.runtime.heap.sharedBytes = std::size_t{1} << 31;
    spec.runtime.heap.privateBytes = std::size_t{1} << 30;
    return spec;
}

/** Runs @p spec `repeats` times and returns the minimum wall time (the
 *  usual noise-robust estimator on a shared host). */
inline double
timedSeconds(const wl::RunSpec &spec, unsigned repeats)
{
    double best = 1e300;
    for (unsigned r = 0; r < repeats; ++r) {
        const auto result = wl::runWorkload(spec);
        if (result.raceException) {
            std::fprintf(stderr, "unexpected race in %s under %s: %s\n",
                         spec.workload.c_str(),
                         wl::backendKindName(spec.backend),
                         result.raceMessage.c_str());
            return -1.0;
        }
        best = std::min(best, result.seconds);
    }
    return best;
}

/** Geometric mean of positive values (ignores non-positive entries). */
inline double
geomean(const std::vector<double> &values)
{
    double logSum = 0;
    std::size_t n = 0;
    for (double v : values) {
        if (v > 0) {
            logSum += std::log(v);
            ++n;
        }
    }
    return n ? std::exp(logSum / static_cast<double>(n)) : 0.0;
}

inline double
mean(const std::vector<double> &values)
{
    double sum = 0;
    for (double v : values)
        sum += v;
    return values.empty() ? 0.0
                          : sum / static_cast<double>(values.size());
}

} // namespace clean::bench

#endif // CLEAN_BENCH_COMMON_H
