/**
 * @file
 * Unit tests for the support layer: PRNG determinism, stats, options.
 */

#include <gtest/gtest.h>

#include "support/exit_codes.h"
#include "support/options.h"
#include "support/prng.h"
#include "support/stats.h"

namespace clean
{
namespace
{

TEST(Prng, DeterministicForSeed)
{
    Prng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiffer)
{
    Prng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Prng, NextBelowInRange)
{
    Prng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Prng, NextDoubleInUnitInterval)
{
    Prng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Prng, NextInRangeInclusive)
{
    Prng rng(11);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.nextInRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Prng, CoversRangeRoughlyUniformly)
{
    Prng rng(13);
    int buckets[8] = {};
    const int n = 8000;
    for (int i = 0; i < n; ++i)
        buckets[rng.nextBelow(8)]++;
    for (int b = 0; b < 8; ++b) {
        EXPECT_GT(buckets[b], n / 8 - n / 16);
        EXPECT_LT(buckets[b], n / 8 + n / 16);
    }
}

TEST(SplitMix, ExpandsSeedsDistinctly)
{
    SplitMix64 sm(0);
    const auto a = sm.next(), b = sm.next();
    EXPECT_NE(a, b);
}

TEST(Stats, CountersStartAtZero)
{
    StatSet stats;
    EXPECT_EQ(stats.get("nothing"), 0u);
    EXPECT_EQ(stats.counter("x"), 0u);
}

TEST(Stats, CounterIncrements)
{
    StatSet stats;
    stats.counter("a") += 3;
    stats.counter("a") += 4;
    EXPECT_EQ(stats.get("a"), 7u);
}

TEST(Stats, MergeAddsCounters)
{
    StatSet a, b;
    a.counter("x") = 1;
    b.counter("x") = 2;
    b.counter("y") = 5;
    a.merge(b);
    EXPECT_EQ(a.get("x"), 3u);
    EXPECT_EQ(a.get("y"), 5u);
}

TEST(Stats, EntriesPreserveInsertionOrder)
{
    StatSet stats;
    stats.counter("z") = 1;
    stats.counter("a") = 2;
    const auto entries = stats.entries();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].first, "z");
    EXPECT_EQ(entries[1].first, "a");
}

TEST(Stats, ClearZeroesValuesKeepsNames)
{
    StatSet stats;
    stats.counter("a") = 9;
    stats.clear();
    EXPECT_EQ(stats.get("a"), 0u);
    EXPECT_EQ(stats.entries().size(), 1u);
}

TEST(Options, ParsesEqualsForm)
{
    const char *argv[] = {"prog", "--threads=4", "--name=foo"};
    auto opts = Options::parse(3, const_cast<char **>(argv));
    EXPECT_EQ(opts.getInt("threads", 0), 4);
    EXPECT_EQ(opts.getString("name"), "foo");
}

TEST(Options, ParsesSpaceForm)
{
    const char *argv[] = {"prog", "--threads", "8"};
    auto opts = Options::parse(3, const_cast<char **>(argv));
    EXPECT_EQ(opts.getInt("threads", 0), 8);
}

TEST(Options, BareFlagIsTrue)
{
    const char *argv[] = {"prog", "--verbose"};
    auto opts = Options::parse(2, const_cast<char **>(argv));
    EXPECT_TRUE(opts.getBool("verbose", false));
}

TEST(Options, DefaultsWhenMissing)
{
    const char *argv[] = {"prog"};
    auto opts = Options::parse(1, const_cast<char **>(argv));
    EXPECT_EQ(opts.getInt("threads", 6), 6);
    EXPECT_FALSE(opts.getBool("verbose", false));
    EXPECT_DOUBLE_EQ(opts.getDouble("f", 1.5), 1.5);
}

TEST(Options, PositionalArgumentsKept)
{
    const char *argv[] = {"prog", "one", "--k=v", "two"};
    auto opts = Options::parse(4, const_cast<char **>(argv));
    ASSERT_EQ(opts.positional().size(), 2u);
    EXPECT_EQ(opts.positional()[0], "one");
    EXPECT_EQ(opts.positional()[1], "two");
}

TEST(Options, SetInjectsValue)
{
    Options opts;
    opts.set("mode", "fast");
    EXPECT_EQ(opts.getString("mode"), "fast");
}

// --- strict numeric parsing: every malformed shape is rejected with a
// --- structured error naming the option (never silently 0/truncated).

TEST(Options, RejectsNonNumericInt)
{
    // Pre-fix behaviour: strtoll(v, nullptr, 0) made this silently 0.
    Options opts;
    opts.set("watchdog-ms", "abc");
    EXPECT_THROW(opts.getInt("watchdog-ms", 0), OptionError);
    try {
        opts.getInt("watchdog-ms", 0);
        FAIL() << "expected OptionError";
    } catch (const OptionError &e) {
        EXPECT_EQ(e.option(), "watchdog-ms");
        EXPECT_EQ(e.value(), "abc");
        EXPECT_NE(std::string(e.what()).find("watchdog-ms"),
                  std::string::npos);
    }
}

TEST(Options, RejectsTrailingGarbageInt)
{
    // Pre-fix behaviour: "12junk" silently truncated to 12.
    Options opts;
    opts.set("inject-seed", "12junk");
    EXPECT_THROW(opts.getInt("inject-seed", 1), OptionError);
}

TEST(Options, RejectsOutOfRangeInt)
{
    Options opts;
    opts.set("seed", "99999999999999999999999999");
    EXPECT_THROW(opts.getInt("seed", 0), OptionError);
}

TEST(Options, RejectsNonNumericDouble)
{
    Options opts;
    opts.set("inject-delay", "often");
    EXPECT_THROW(opts.getDouble("inject-delay", 0), OptionError);
}

TEST(Options, RejectsTrailingGarbageDouble)
{
    Options opts;
    opts.set("inject-delay", "0.5x");
    EXPECT_THROW(opts.getDouble("inject-delay", 0), OptionError);
}

TEST(Options, AcceptsWellFormedNumericShapes)
{
    Options opts;
    opts.set("a", "-12");
    opts.set("b", "0x10");
    opts.set("c", "2.5");
    opts.set("d", "1e3");
    EXPECT_EQ(opts.getInt("a", 0), -12);
    EXPECT_EQ(opts.getInt("b", 0), 16); // base 0: hex still parses
    EXPECT_DOUBLE_EQ(opts.getDouble("c", 0), 2.5);
    EXPECT_DOUBLE_EQ(opts.getDouble("d", 0), 1000.0);
}

TEST(ExitCodes, ValuesMatchTheDocumentedContract)
{
    // The README exit-code table is load-bearing for CI scripts: these
    // numbers must never shift.
    EXPECT_EQ(static_cast<int>(ExitCode::Ok), 0);
    EXPECT_EQ(static_cast<int>(ExitCode::Error), 1);
    EXPECT_EQ(static_cast<int>(ExitCode::OptionError), 2);
    EXPECT_EQ(static_cast<int>(ExitCode::Race), 3);
    EXPECT_EQ(static_cast<int>(ExitCode::Deadlock), 4);
    EXPECT_EQ(static_cast<int>(ExitCode::Quarantine), 5);
}

TEST(ExitCodes, ClassifierPrecedence)
{
    EXPECT_EQ(exitCodeForRun(false, false, false), 0);
    EXPECT_EQ(exitCodeForRun(false, false, true), 3);
    EXPECT_EQ(exitCodeForRun(false, true, false), 5);
    EXPECT_EQ(exitCodeForRun(false, true, true), 5);  // quarantine > race
    EXPECT_EQ(exitCodeForRun(true, false, true), 4);  // deadlock first
    EXPECT_EQ(exitCodeForRun(true, true, true), 4);
}

} // namespace
} // namespace clean
