# Empty compiler generated dependencies file for test_det.
# This may be replaced when dependencies are built.
