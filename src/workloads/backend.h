/**
 * @file
 * Concrete Env/Backend implementations binding workload kernels to:
 *
 *   NativeEnv    — plain std::thread execution with per-worker access
 *                  counters: the uninstrumented baseline of Figure 6 and
 *                  the shared-access-frequency source of Figure 7.
 *   CleanEnv     — the software-only CLEAN runtime (race exceptions,
 *                  Kendo determinism, rollover).
 *   DetectorEnv  — native execution observed by a baseline detector
 *                  (FastTrack / TsanLite) for the ablation benches.
 *   TraceEnv     — native execution recording per-thread traces and the
 *                  per-object synchronization order for the hardware
 *                  simulator (§6.3).
 *
 * NativeEnv, DetectorEnv and TraceEnv share PlainEnv (std::thread,
 * std::mutex, a condvar barrier); CleanEnv routes everything through
 * CleanRuntime and its deterministic sync objects.
 */

#ifndef CLEAN_WORKLOADS_BACKEND_H
#define CLEAN_WORKLOADS_BACKEND_H

#include <deque>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <thread>
#include <vector>

#include "core/shared_heap.h"
#include "core/sync_objects.h"
#include "detectors/detector.h"
#include "workloads/shim.h"
#include "workloads/trace.h"

namespace clean::wl
{

/** Aggregated outcome of one Env run (filled by the runner). */
struct EnvTotals
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytes = 0;
    std::uint64_t outputHash = 0;
};

namespace detail
{

/** Classic generation-counting barrier for the plain backends. */
class PosixBarrier
{
  public:
    explicit PosixBarrier(unsigned parties) : parties_(parties) {}

    /**
     * Arrives and waits; returns the generation this arrival was in.
     * @p atArrival (optional) runs under the barrier's internal lock at
     * arrival time — observers use it to record the arrival with its
     * true generation and order.
     */
    std::uint64_t
    arrive(const std::function<void(std::uint64_t)> &atArrival = {})
    {
        std::unique_lock<std::mutex> lock(m_);
        const std::uint64_t gen = generation_;
        if (atArrival)
            atArrival(gen);
        if (++arrived_ == parties_) {
            arrived_ = 0;
            ++generation_;
            cv_.notify_all();
            return gen;
        }
        cv_.wait(lock, [&] { return generation_ != gen; });
        return gen;
    }

  private:
    unsigned parties_;
    std::mutex m_;
    std::condition_variable cv_;
    unsigned arrived_ = 0;
    std::uint64_t generation_ = 0;
};

} // namespace detail

/**
 * std::thread-based environment. Subclasses override the *Hook methods
 * (from Backend) and the sync notification points to observe execution.
 */
class PlainEnv : public Env, public Backend
{
  public:
    explicit PlainEnv(Worker::Mode mode, std::uint64_t seed,
                      const SharedHeapConfig &heapConfig = {});
    ~PlainEnv() override;

    // Env
    void *allocSharedRaw(std::size_t bytes) override;
    void *allocPrivateRaw(std::size_t bytes) override;
    unsigned createMutex() override;
    unsigned createBarrier(unsigned parties) override;
    unsigned createCond() override;
    void parallel(unsigned n,
                  const std::function<void(Worker &)> &fn) override;
    void declareOutput(const void *data, std::size_t bytes) override;

    // Backend
    void lockOp(Worker &w, unsigned id) override;
    void unlockOp(Worker &w, unsigned id) override;
    void barrierOp(Worker &w, unsigned id) override;
    void condWaitOp(Worker &w, unsigned cond, unsigned mutex) override;
    void condSignalOp(Worker &w, unsigned cond) override;
    void condBroadcastOp(Worker &w, unsigned cond) override;

    /** Totals across all parallel sections so far. */
    EnvTotals totals() const;

    SharedHeap &heap() { return heap_; }

  protected:
    /** Detector-style tid of a worker (0 is the orchestrating thread). */
    static ThreadId workerTid(const Worker &w) { return w.index() + 1; }

    // Observation points for subclasses; called at well-defined positions
    // relative to the underlying operation (see backend.cc).
    virtual void onAcquired(Worker &, unsigned) {}
    virtual void onReleasing(Worker &, unsigned) {}
    /** At arrival, under the barrier's internal lock, with the arrival's
     *  generation. */
    virtual void onBarrierArrive(Worker &, unsigned, std::uint64_t) {}
    /** After the barrier released (the acquire side of its HB edge).
     *  @p generation identifies the completed crossing: detectors must
     *  not absorb releases of later generations (a late-waking waiter
     *  on a loaded host would otherwise fabricate happens-before that
     *  masks real races). */
    virtual void onBarrierLeave(Worker &, unsigned, std::uint64_t) {}
    virtual void onCondWoke(Worker &, unsigned) {}
    virtual void onCondNotify(Worker &, unsigned, bool) {}

    struct CondState
    {
        std::condition_variable cv;
    };

    SharedHeap heap_;
    std::uint64_t seed_;
    Worker::Mode mode_;

    std::deque<std::mutex> mutexes_;
    std::deque<detail::PosixBarrier> barriers_;
    std::deque<CondState> conds_;

    mutable std::mutex totalsMutex_;
    EnvTotals totals_;
    std::vector<std::uint64_t> sinkHashes_;
    const void *outputData_ = nullptr;
    std::size_t outputBytes_ = 0;
};

/** The uninstrumented baseline. */
class NativeEnv : public PlainEnv
{
  public:
    explicit NativeEnv(std::uint64_t seed)
        : PlainEnv(Worker::Mode::Native, seed)
    {
    }
};

/** Native execution observed by a baseline detector. */
class DetectorEnv : public PlainEnv
{
  public:
    DetectorEnv(detectors::Detector &detector, std::uint64_t seed);

    void readHook(Worker &w, Addr addr, std::size_t size) override;
    void writeHook(Worker &w, Addr addr, std::size_t size) override;

    /** Forks before any worker runs, joins after all exit — matching
     *  pthread_create/join semantics regardless of host scheduling. */
    void parallel(unsigned n,
                  const std::function<void(Worker &)> &fn) override;

  protected:
    void onAcquired(Worker &w, unsigned id) override;
    void onReleasing(Worker &w, unsigned id) override;
    void onBarrierArrive(Worker &w, unsigned id,
                         std::uint64_t generation) override;
    void onBarrierLeave(Worker &w, unsigned id,
                        std::uint64_t generation) override;
    void onCondWoke(Worker &w, unsigned id) override;
    void onCondNotify(Worker &w, unsigned id, bool broadcast) override;

  private:
    /** Sync-id spaces for mutexes/barriers/conds (disjoint; barriers
     *  get one id per generation so a crossing only carries that
     *  generation's releases). */
    static detectors::SyncId mutexSync(unsigned id) { return id * 3 + 0; }
    static detectors::SyncId
    barrierSync(unsigned id, std::uint64_t generation)
    {
        return (generation << 24) | (id * 3 + 1);
    }
    static detectors::SyncId condSync(unsigned id) { return id * 3 + 2; }

    detectors::Detector &detector_;
};

/** Native execution recording a Trace for the hardware simulator. */
class TraceEnv : public PlainEnv
{
  public:
    explicit TraceEnv(std::uint64_t seed);

    void readHook(Worker &w, Addr addr, std::size_t size) override;
    void writeHook(Worker &w, Addr addr, std::size_t size) override;
    void privateReadHook(Worker &w, Addr addr, std::size_t size) override;
    void privateWriteHook(Worker &w, Addr addr, std::size_t size) override;
    void computeHook(Worker &w, std::uint64_t n) override;

    /** The finished trace (move out after the workload ran). */
    Trace takeTrace();

    unsigned createMutex() override;
    unsigned createBarrier(unsigned parties) override;
    unsigned createCond() override;
    void parallel(unsigned n,
                  const std::function<void(Worker &)> &fn) override;

  protected:
    void onAcquired(Worker &w, unsigned id) override;
    void onReleasing(Worker &w, unsigned id) override;
    void onBarrierArrive(Worker &w, unsigned id,
                         std::uint64_t generation) override;
    void onCondWoke(Worker &w, unsigned id) override;
    void onCondNotify(Worker &w, unsigned id, bool broadcast) override;

  private:
    struct ObjectMeta
    {
        TraceSyncObject::Kind kind;
        std::uint32_t parties = 0;
        std::atomic<std::uint32_t> nextSeq{0};
    };

    /** Object-id spaces: mutex m -> 3m, barrier b -> 3b+1, cond c -> 3c+2
     *  mapped densely into objects_ at creation. */
    std::vector<std::unique_ptr<ObjectMeta>> objects_;
    std::vector<unsigned> mutexObject_;
    std::vector<unsigned> barrierObject_;
    std::vector<unsigned> condObject_;

    std::vector<TraceEvent> *eventsOf(Worker &w);
    void recordAccess(Worker &w, Addr addr, std::size_t size, bool write);
    void recordSync(Worker &w, TraceEvent::Kind kind, unsigned object);

    std::mutex traceMutex_;
    Trace trace_;
    /** Per-worker event buffers for the current parallel section. */
    std::vector<std::vector<TraceEvent>> buffers_;
};

/** The software-only CLEAN backend. */
class CleanEnv : public Env, public Backend
{
  public:
    CleanEnv(CleanRuntime &rt, std::uint64_t seed);
    ~CleanEnv() override;

    // Env
    void *allocSharedRaw(std::size_t bytes) override;
    void *allocPrivateRaw(std::size_t bytes) override;
    unsigned createMutex() override;
    unsigned createBarrier(unsigned parties) override;
    unsigned createCond() override;
    void parallel(unsigned n,
                  const std::function<void(Worker &)> &fn) override;
    void declareOutput(const void *data, std::size_t bytes) override;

    // Backend
    void lockOp(Worker &w, unsigned id) override;
    void unlockOp(Worker &w, unsigned id) override;
    void barrierOp(Worker &w, unsigned id) override;
    void condWaitOp(Worker &w, unsigned cond, unsigned mutex) override;
    void condSignalOp(Worker &w, unsigned cond) override;
    void condBroadcastOp(Worker &w, unsigned cond) override;

    EnvTotals totals() const;
    CleanRuntime &runtime() { return rt_; }

  private:
    CleanRuntime &rt_;
    std::uint64_t seed_;
    std::deque<CleanMutex> mutexes_;
    std::deque<CleanBarrier> barriers_;
    std::deque<CleanCondVar> conds_;

    mutable std::mutex totalsMutex_;
    std::vector<std::uint64_t> sinkHashes_;
    const void *outputData_ = nullptr;
    std::size_t outputBytes_ = 0;
};

/** Order-independent fold of the declared output region + worker sinks. */
std::uint64_t hashOutput(const void *data, std::size_t bytes,
                         const std::vector<std::uint64_t> &sinks);

} // namespace clean::wl

#endif // CLEAN_WORKLOADS_BACKEND_H
