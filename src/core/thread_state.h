/**
 * @file
 * Per-thread detector state: vector clock, cached own epoch, counters.
 */

#ifndef CLEAN_CORE_THREAD_STATE_H
#define CLEAN_CORE_THREAD_STATE_H

#include <cstdint>
#ifndef NDEBUG
#include <atomic>
#include <thread>
#endif

#include "core/epoch.h"
#include "core/vector_clock.h"
#include "support/common.h"
#include "support/logging.h"
#include "support/stats.h"

namespace clean
{

/**
 * Counters a thread bumps on its own accesses; merged after a run. They
 * feed Figures 7 (shared-access frequency) and 8 (access-width and
 * same-epoch statistics backing the vectorization optimization).
 */
struct CheckerStats
{
    std::uint64_t sharedReads = 0;
    std::uint64_t sharedWrites = 0;
    std::uint64_t accessedBytes = 0;
    /** Accesses at least 4 bytes wide (paper: >= 91.9% on average). */
    std::uint64_t wideAccesses = 0;
    /** Wide accesses whose bytes all carried one epoch (paper: >= 99.7%). */
    std::uint64_t wideSameEpoch = 0;
    /** Write checks that had to publish a new epoch. */
    std::uint64_t epochUpdates = 0;
    /** CAS updates that performed 4 epochs at once (128-bit CAS, §4.4). */
    std::uint64_t wideCasUpdates = 0;
    /**
     * Accesses re-executed by SFR recovery (rollback + replay). The
     * checker bumps the base counters during a replay exactly as during
     * the original execution; recoverAccess then moves those deltas
     * here, so sharedReads/sharedWrites keep counting each program
     * access once (Fig. 7 stays faithful) and the recovery re-execution
     * cost is visible separately.
     */
    std::uint64_t replayedReads = 0;
    std::uint64_t replayedWrites = 0;
    std::uint64_t replayedBytes = 0;
    std::uint64_t replayedEpochUpdates = 0;

    void
    merge(const CheckerStats &other)
    {
        sharedReads += other.sharedReads;
        sharedWrites += other.sharedWrites;
        accessedBytes += other.accessedBytes;
        wideAccesses += other.wideAccesses;
        wideSameEpoch += other.wideSameEpoch;
        epochUpdates += other.epochUpdates;
        wideCasUpdates += other.wideCasUpdates;
        replayedReads += other.replayedReads;
        replayedWrites += other.replayedWrites;
        replayedBytes += other.replayedBytes;
        replayedEpochUpdates += other.replayedEpochUpdates;
    }

    std::uint64_t accesses() const { return sharedReads + sharedWrites; }

    /** Dumps into a StatSet under the given prefix. */
    void
    exportTo(StatSet &stats, const std::string &prefix) const
    {
        stats.counter(prefix + ".sharedReads") += sharedReads;
        stats.counter(prefix + ".sharedWrites") += sharedWrites;
        stats.counter(prefix + ".accessedBytes") += accessedBytes;
        stats.counter(prefix + ".wideAccesses") += wideAccesses;
        stats.counter(prefix + ".wideSameEpoch") += wideSameEpoch;
        stats.counter(prefix + ".epochUpdates") += epochUpdates;
        stats.counter(prefix + ".wideCasUpdates") += wideCasUpdates;
        stats.counter(prefix + ".replayedReads") += replayedReads;
        stats.counter(prefix + ".replayedWrites") += replayedWrites;
        stats.counter(prefix + ".replayedBytes") += replayedBytes;
        stats.counter(prefix + ".replayedEpochUpdates") +=
            replayedEpochUpdates;
    }
};

/**
 * Detector-visible state of one running thread.
 *
 * The `ownEpoch` member caches vc.element(tid) — the "main element" of
 * the thread's vector clock (§2.3). The runtime refreshes it whenever the
 * thread's own clock ticks; the hardware model mirrors it as the per-core
 * 32-bit register of §5.1.
 */
struct ThreadState
{
    ThreadState(const EpochConfig &config, ThreadId tid, ThreadId slots)
        : tid(tid), vc(config, slots), ownEpoch(config.pack(tid, 0))
    {
    }

    /** Re-derives the cached main element after a clock change. */
    void refreshOwnEpoch() { ownEpoch = vc.element(tid); }

    /**
     * Debug-build check that the unsynchronized `stats` counters are
     * only ever bumped from one OS thread: StatSet/CheckerStats are
     * documented as per-thread-merged-after-the-run, and this pins the
     * contract at every checker entry. The owner is latched on the
     * first bump (states are constructed by the spawning thread but
     * first used by the child). Compiles to nothing with NDEBUG.
     */
#ifndef NDEBUG
    void
    assertStatsOwner()
    {
        const std::thread::id self = std::this_thread::get_id();
        std::thread::id owner =
            statsOwner_.load(std::memory_order_relaxed);
        if (owner == std::thread::id{} &&
            statsOwner_.compare_exchange_strong(owner, self,
                                                std::memory_order_relaxed))
            return;
        CLEAN_ASSERT(owner == self,
                     "CheckerStats bumped from two threads (tid %u)",
                     tid);
    }
#else
    void assertStatsOwner() {}
#endif

    ThreadId tid;
    VectorClock vc;
    EpochValue ownEpoch;
    CheckerStats stats;
    /** Index of the thread's current synchronization-free region,
     *  bumped at every sync op (acquireTurn); threaded into
     *  RaceException so reports can name the SFR a race fired in. */
    std::uint64_t sfrOrdinal = 0;

#ifndef NDEBUG
  private:
    std::atomic<std::thread::id> statsOwner_{};
#endif
};

} // namespace clean

#endif // CLEAN_CORE_THREAD_STATE_H
