/**
 * @file
 * Memory-hierarchy latency & coherence tests (§6.3.1 parameters).
 */

#include <gtest/gtest.h>

#include "sim/memory_hierarchy.h"

namespace clean::sim
{
namespace
{

TEST(Hierarchy, ColdMissCosts120)
{
    MemoryHierarchy mem(2);
    EXPECT_EQ(mem.access(0, 0x1000, 4, false), 120u);
    EXPECT_EQ(mem.llcMisses(), 1u);
}

TEST(Hierarchy, L1HitCosts1)
{
    MemoryHierarchy mem(2);
    mem.access(0, 0x1000, 4, false);
    EXPECT_EQ(mem.access(0, 0x1000, 4, false), 1u);
    EXPECT_EQ(mem.access(0, 0x1020, 4, false), 1u); // same line
}

TEST(Hierarchy, RemoteL2HitCosts15)
{
    MemoryHierarchy mem(2);
    mem.access(0, 0x1000, 4, false); // core 0 now caches the line
    EXPECT_EQ(mem.access(1, 0x1000, 4, false), 15u);
}

TEST(Hierarchy, L3HitCosts35AfterPrivateEviction)
{
    MemoryHierarchy mem(1);
    // Fill far beyond L1+L2 (320 KB) so early lines leave the private
    // caches but stay in the 16 MB L3.
    for (Addr a = 0; a < (1u << 20); a += 64)
        mem.access(0, a, 4, false);
    // Line 0 must have been evicted from L1/L2 but still be in L3.
    const Cycles lat = mem.access(0, 0, 4, false);
    EXPECT_EQ(lat, 35u);
}

TEST(Hierarchy, WriteInvalidatesRemoteCopies)
{
    MemoryHierarchy mem(2);
    mem.access(0, 0x2000, 4, false);
    mem.access(1, 0x2000, 4, false); // both cache it
    EXPECT_EQ(mem.access(1, 0x2000, 4, true), 1u);
    EXPECT_GE(mem.invalidations(), 1u);
    // Core 0 lost its copy: not an L1 hit anymore.
    EXPECT_GT(mem.access(0, 0x2000, 4, false), 1u);
}

TEST(Hierarchy, LocalL2Hit10AfterL1Conflict)
{
    MemoryHierarchy mem(1);
    // L1: 64 KB 8-way, 128 sets. Lines that map to set 0 and collide:
    // addresses k * 128 * 64. Touch 9 of them: the first leaves L1 but
    // stays in the 256 KB L2 (512 sets - different geometry).
    for (int k = 0; k < 9; ++k)
        mem.access(0, static_cast<Addr>(k) * 128 * 64, 4, false);
    const Cycles lat = mem.access(0, 0, 4, false);
    EXPECT_EQ(lat, 10u);
}

TEST(Hierarchy, MultiLineAccessPaysPerLine)
{
    MemoryHierarchy mem(1);
    // 8 bytes straddling a 64 B boundary: two cold lines.
    EXPECT_EQ(mem.access(0, 60, 8, false), 240u);
}

TEST(Hierarchy, AccessesAreCounted)
{
    MemoryHierarchy mem(1);
    mem.access(0, 0, 4, false);
    mem.access(0, 64, 4, false);
    mem.access(0, 60, 8, false); // two lines
    EXPECT_EQ(mem.accesses(), 4u);
}

TEST(Hierarchy, ExportsStats)
{
    MemoryHierarchy mem(1);
    mem.access(0, 0, 4, false);
    mem.access(0, 0, 4, false);
    StatSet stats;
    mem.exportTo(stats, "mem");
    EXPECT_EQ(stats.get("mem.accesses"), 2u);
    EXPECT_EQ(stats.get("mem.l1Hits"), 1u);
    EXPECT_EQ(stats.get("mem.llcMisses"), 1u);
}

} // namespace
} // namespace clean::sim
