#include "core/async_checker.h"

#include "core/race_exception.h"
#include "core/runtime.h"
#include "support/backoff.h"
#include "support/logging.h"

namespace clean
{

AsyncChecker::AsyncChecker(CleanRuntime &rt, ThreadId slots)
    : rt_(rt), slots_(slots),
      lanes_(std::make_unique<Lane[]>(slots))
{
    thread_ = std::thread([this] { run(); });
}

AsyncChecker::~AsyncChecker()
{
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
}

void
AsyncChecker::drain(ThreadState &ts)
{
    CLEAN_ASSERT(ts.tid < slots_, "tid %u outside async lanes", ts.tid);
    Lane &lane = lanes_[ts.tid];
    const std::uint64_t seq = lane.posted.load(std::memory_order_relaxed);
    lane.requests[seq % Lane::kDepth] = &ts;
    lane.posted.store(seq + 1, std::memory_order_release);

    // Block until the checker thread retires the request. The wait is
    // bounded by one drain's work; the watchdog only trips if the
    // checker thread died, which is a library bug, not an application
    // deadlock — hence panic, not DeadlockError.
    SpinWait wait(rt_.config().watchdogMs);
    while (lane.retired.load(std::memory_order_acquire) != seq + 1) {
        if (CLEAN_UNLIKELY(wait.expired()))
            panic("async checker unresponsive after %llu ms (tid %u)",
                  static_cast<unsigned long long>(wait.elapsedMs()),
                  ts.tid);
        wait.pause();
    }
    if (CLEAN_UNLIKELY(lane.error != nullptr)) {
        std::exception_ptr error = lane.error;
        lane.error = nullptr;
        std::rethrow_exception(error);
    }
}

void
AsyncChecker::run()
{
    SpinWait idle;
    for (;;) {
        bool worked = false;
        for (ThreadId slot = 0; slot < slots_; ++slot) {
            Lane &lane = lanes_[slot];
            const std::uint64_t retired =
                lane.retired.load(std::memory_order_relaxed);
            if (lane.posted.load(std::memory_order_acquire) == retired)
                continue;
            process(lane, *lane.requests[retired % Lane::kDepth]);
            drains_.fetch_add(1, std::memory_order_acq_rel);
            lane.retired.store(retired + 1, std::memory_order_release);
            worked = true;
        }
        if (worked) {
            idle = SpinWait{};
            continue;
        }
        // Check for shutdown only when idle: posted-but-unretired work
        // is always finished first, so the destructor cannot strand a
        // blocked app thread.
        if (stop_.load(std::memory_order_acquire))
            return;
        idle.pause();
    }
}

void
AsyncChecker::process(Lane &lane, ThreadState &ts)
{
    // The owner is blocked in drain() for the duration, so its
    // ThreadState is quiesced; take the debug stats latch for the same
    // span so single-writer violations elsewhere still trip it.
    const std::thread::id owner =
        ts.exchangeStatsOwner(std::this_thread::get_id());
    try {
        for (;;) {
            try {
                rt_.drainBatch(ts);
                break;
            } catch (const RaceException &race) {
                if (rt_.recordRace(race)) {
                    // Throw policy: abort flag is up; hand the
                    // exception to the posting thread, which rethrows
                    // it from its SFR boundary exactly like the inline
                    // drain. Remaining runs stay unchecked, as they
                    // would inline (the unwind discards them).
                    lane.error = std::make_exception_ptr(race);
                    break;
                }
                // Report/Count: cursor parked past the racy access;
                // keep draining so every deferred check still runs.
            }
        }
    } catch (...) {
        // Anything non-race (allocation failure, internal assert
        // surfaced as exception) belongs on the posting thread.
        lane.error = std::current_exception();
    }
    ts.exchangeStatsOwner(owner);
}

} // namespace clean
