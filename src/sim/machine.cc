#include "sim/machine.h"

#include <algorithm>

#include "support/logging.h"

namespace clean::sim
{

void
MachineStats::exportTo(StatSet &stats, const std::string &prefix) const
{
    stats.counter(prefix + ".totalCycles") += totalCycles;
    stats.counter(prefix + ".instructions") += instructions;
    stats.counter(prefix + ".memoryAccesses") += memoryAccesses;
    stats.counter(prefix + ".syncOps") += syncOps;
    stats.counter(prefix + ".contextSwitches") += contextSwitches;
    stats.counter(prefix + ".llcMisses") += llcMisses;
    stats.counter(prefix + ".l1Hits") += l1Hits;
    stats.counter(prefix + ".l1Misses") += l1Misses;
    stats.counter(prefix + ".invalidations") += invalidations;
    hw.exportTo(stats, prefix + ".hw");
}

namespace
{

/** Replay state of one synchronization object. */
struct ObjState
{
    std::uint32_t completed = 0;
    Cycles lastDone = 0;
    VectorClock vc;
    // Barrier bookkeeping.
    std::uint32_t arrivedInGen = 0;
    Cycles genMaxCycle = 0;
    std::vector<unsigned> waiters;
};

/** Replay state of one core/thread. */
struct CoreState
{
    const std::vector<wl::TraceEvent> *events = nullptr;
    std::size_t pos = 0;
    Cycles cycle = 0;
    VectorClock vc;
    bool blocked = false;

    bool finished() const { return !blocked && pos >= events->size(); }
};

} // namespace

namespace
{
MachineStats simulateScheduled(const wl::Trace &trace,
                               const MachineConfig &config);
} // namespace

MachineStats
simulate(const wl::Trace &trace, const MachineConfig &config)
{
    const unsigned nCores =
        static_cast<unsigned>(trace.perThread.size());
    CLEAN_ASSERT(nCores > 0);
    if (config.cores != 0 && config.cores < nCores)
        return simulateScheduled(trace, config);

    MemoryHierarchy mem(nCores, config.latency);
    CleanHwUnit unit(mem, nCores, config.epochMode, config.epoch);
    unit.setFastPathEnabled(config.hwFastPath);

    // Normalize data addresses near 1 MiB so the synthetic metadata
    // regions never collide.
    const Addr dataBase = Addr{1} << 20;
    const Addr traceBase =
        trace.minAddr == ~Addr{0} ? 0 : trace.minAddr;
    auto norm = [&](Addr a) { return a - traceBase + dataBase; };

    std::vector<CoreState> cores(nCores);
    for (unsigned c = 0; c < nCores; ++c) {
        cores[c].events = &trace.perThread[c];
        cores[c].vc = VectorClock(config.epoch,
                                  static_cast<ThreadId>(nCores));
        cores[c].vc.setClock(static_cast<ThreadId>(c), 1);
    }

    std::vector<ObjState> objects(trace.objects.size());
    for (auto &obj : objects)
        obj.vc = VectorClock(config.epoch, static_cast<ThreadId>(nCores));

    MachineStats stats;

    auto ready = [&](const CoreState &core) -> bool {
        if (core.blocked || core.pos >= core.events->size())
            return false;
        const wl::TraceEvent &e = (*core.events)[core.pos];
        switch (e.kind) {
          case wl::TraceEvent::Kind::Acquire:
          case wl::TraceEvent::Kind::Release:
          case wl::TraceEvent::Kind::BarrierArrive:
            return objects[e.object].completed == e.seq;
          default:
            return true;
        }
    };

    for (;;) {
        // Pick the runnable core with the smallest local cycle.
        int pick = -1;
        bool anyPending = false;
        for (unsigned c = 0; c < nCores; ++c) {
            if (!cores[c].finished())
                anyPending = true;
            if (!ready(cores[c]))
                continue;
            if (pick < 0 || cores[c].cycle < cores[pick].cycle)
                pick = static_cast<int>(c);
        }
        if (pick < 0) {
            if (!anyPending)
                break;
            panic("trace replay deadlock: no runnable core");
        }

        CoreState &core = cores[pick];
        const wl::TraceEvent &e = (*core.events)[core.pos++];
        const unsigned c = static_cast<unsigned>(pick);

        switch (e.kind) {
          case wl::TraceEvent::Kind::Compute:
            core.cycle += e.addr;
            stats.instructions += e.addr;
            break;

          case wl::TraceEvent::Kind::Read:
          case wl::TraceEvent::Kind::Write: {
            const bool isWrite = e.kind == wl::TraceEvent::Kind::Write;
            const Addr addr = norm(e.addr);
            stats.instructions += 1;
            stats.memoryAccesses += 1;
            const Cycles dataLat = mem.access(c, addr, e.size, isWrite);
            Cycles checkLat = 0;
            if (config.raceDetection) {
                if (e.isPrivate)
                    unit.notePrivate();
                else
                    checkLat = unit.checkAccess(c, core.vc, addr, e.size,
                                                isWrite);
            }
            // The check runs in parallel with the data access; only the
            // excess is exposed (§5.4).
            core.cycle += 1 + std::max(dataLat, checkLat);
            break;
          }

          case wl::TraceEvent::Kind::Acquire: {
            ObjState &obj = objects[e.object];
            stats.syncOps += 1;
            core.cycle = std::max(core.cycle, obj.lastDone) +
                         config.syncOverhead;
            core.vc.joinFrom(obj.vc);
            obj.completed += 1;
            obj.lastDone = core.cycle;
            break;
          }

          case wl::TraceEvent::Kind::Release: {
            ObjState &obj = objects[e.object];
            stats.syncOps += 1;
            core.cycle = std::max(core.cycle, obj.lastDone) +
                         config.syncOverhead;
            obj.vc.joinFrom(core.vc);
            core.vc.tick(static_cast<ThreadId>(c));
            obj.completed += 1;
            obj.lastDone = core.cycle;
            break;
          }

          case wl::TraceEvent::Kind::BarrierArrive: {
            ObjState &obj = objects[e.object];
            stats.syncOps += 1;
            const std::uint32_t parties =
                trace.objects[e.object].parties;
            CLEAN_ASSERT(parties > 0);
            obj.completed += 1;
            obj.vc.joinFrom(core.vc);
            core.vc.tick(static_cast<ThreadId>(c));
            obj.arrivedInGen += 1;
            obj.genMaxCycle = std::max(obj.genMaxCycle,
                                       core.cycle + config.syncOverhead);
            if (obj.arrivedInGen == parties) {
                const Cycles release = obj.genMaxCycle;
                for (unsigned waiter : obj.waiters) {
                    cores[waiter].cycle = release;
                    cores[waiter].vc.joinFrom(obj.vc);
                    cores[waiter].blocked = false;
                }
                obj.waiters.clear();
                core.cycle = release;
                core.vc.joinFrom(obj.vc);
                obj.arrivedInGen = 0;
                obj.genMaxCycle = 0;
                obj.lastDone = release;
            } else {
                obj.waiters.push_back(c);
                core.blocked = true;
            }
            break;
          }
        }
    }

    for (const CoreState &core : cores) {
        stats.coreCycles.push_back(core.cycle);
        stats.totalCycles = std::max(stats.totalCycles, core.cycle);
    }
    stats.hw = unit.stats();
    stats.llcMisses = mem.llcMisses();
    stats.l1Hits = mem.l1Hits();
    stats.l1Misses = mem.l1Misses();
    stats.invalidations = mem.invalidations();
    return stats;
}

namespace
{

/**
 * Time-shared variant: T trace threads scheduled on C < T cores with
 * static assignment (thread t runs on core t % C). A core runs its
 * current thread until it finishes, blocks in a barrier, or stalls on a
 * not-yet-ready synchronization event, then switches to another ready
 * thread of that core, paying contextSwitchCost plus one memory access
 * to reload the per-core main vector-clock register (§5.1).
 */
MachineStats
simulateScheduled(const wl::Trace &trace, const MachineConfig &config)
{
    const unsigned nThreads =
        static_cast<unsigned>(trace.perThread.size());
    const unsigned nCores = config.cores;
    CLEAN_ASSERT(nCores > 0 && nCores < nThreads);

    MemoryHierarchy mem(nCores, config.latency);
    CleanHwUnit unit(mem, nCores, config.epochMode, config.epoch);
    unit.setFastPathEnabled(config.hwFastPath);

    const Addr dataBase = Addr{1} << 20;
    const Addr traceBase =
        trace.minAddr == ~Addr{0} ? 0 : trace.minAddr;
    auto norm = [&](Addr a) { return a - traceBase + dataBase; };
    // Synthetic in-memory location of each thread's saved VC register
    // image, touched on every switch-in.
    const Addr switchVcLineBase = (Addr{1} << 43) / kCacheLineBytes;

    struct ThreadRep
    {
        const std::vector<wl::TraceEvent> *events = nullptr;
        std::size_t pos = 0;
        VectorClock vc;
        bool blocked = false;  // parked in a barrier
        Cycles readyAt = 0;    // earliest resume time after a release

        bool finished() const { return !blocked && pos >= events->size(); }
    };
    struct CoreRep
    {
        Cycles clock = 0;
        int current = -1;
    };

    std::vector<ThreadRep> threads(nThreads);
    for (unsigned t = 0; t < nThreads; ++t) {
        threads[t].events = &trace.perThread[t];
        threads[t].vc =
            VectorClock(config.epoch, static_cast<ThreadId>(nThreads));
        threads[t].vc.setClock(static_cast<ThreadId>(t), 1);
    }
    std::vector<CoreRep> cores(nCores);
    auto coreOf = [&](unsigned t) { return t % nCores; };

    std::vector<ObjState> objects(trace.objects.size());
    for (auto &obj : objects)
        obj.vc = VectorClock(config.epoch,
                             static_cast<ThreadId>(nThreads));

    MachineStats stats;

    auto ready = [&](const ThreadRep &thread) -> bool {
        if (thread.blocked || thread.pos >= thread.events->size())
            return false;
        const wl::TraceEvent &e = (*thread.events)[thread.pos];
        switch (e.kind) {
          case wl::TraceEvent::Kind::Acquire:
          case wl::TraceEvent::Kind::Release:
          case wl::TraceEvent::Kind::BarrierArrive:
            return objects[e.object].completed == e.seq;
          default:
            return true;
        }
    };

    for (;;) {
        // Core with the smallest clock that has a ready thread.
        int pickCore = -1;
        bool anyPending = false;
        for (unsigned t = 0; t < nThreads; ++t) {
            if (!threads[t].finished())
                anyPending = true;
            if (!ready(threads[t]))
                continue;
            const unsigned c = coreOf(t);
            if (pickCore < 0 || cores[c].clock < cores[pickCore].clock)
                pickCore = static_cast<int>(c);
        }
        if (pickCore < 0) {
            if (!anyPending)
                break;
            panic("scheduled replay deadlock: no runnable thread");
        }
        CoreRep &core = cores[pickCore];

        // Thread selection on this core: stick with the current thread
        // while it is ready; otherwise switch to the ready thread that
        // became runnable earliest (ties to the smallest index).
        int pickThread = -1;
        if (core.current >= 0 &&
            coreOf(static_cast<unsigned>(core.current)) ==
                static_cast<unsigned>(pickCore) &&
            ready(threads[core.current])) {
            pickThread = core.current;
        } else {
            for (unsigned t = static_cast<unsigned>(pickCore);
                 t < nThreads; t += nCores) {
                if (!ready(threads[t]))
                    continue;
                if (pickThread < 0 ||
                    threads[t].readyAt <
                        threads[pickThread].readyAt) {
                    pickThread = static_cast<int>(t);
                }
            }
        }
        CLEAN_ASSERT(pickThread >= 0);
        if (pickThread != core.current) {
            if (core.current >= 0) {
                core.clock += config.contextSwitchCost;
                core.clock += mem.accessLine(
                    static_cast<unsigned>(pickCore),
                    switchVcLineBase + pickThread, false);
                stats.contextSwitches++;
            }
            core.current = pickThread;
        }
        ThreadRep &thread = threads[pickThread];
        core.clock = std::max(core.clock, thread.readyAt);

        const wl::TraceEvent &e = (*thread.events)[thread.pos++];
        const unsigned c = static_cast<unsigned>(pickCore);
        const ThreadId tid = static_cast<ThreadId>(pickThread);

        switch (e.kind) {
          case wl::TraceEvent::Kind::Compute:
            core.clock += e.addr;
            stats.instructions += e.addr;
            break;

          case wl::TraceEvent::Kind::Read:
          case wl::TraceEvent::Kind::Write: {
            const bool isWrite = e.kind == wl::TraceEvent::Kind::Write;
            const Addr addr = norm(e.addr);
            stats.instructions += 1;
            stats.memoryAccesses += 1;
            const Cycles dataLat = mem.access(c, addr, e.size, isWrite);
            Cycles checkLat = 0;
            if (config.raceDetection) {
                if (e.isPrivate)
                    unit.notePrivate();
                else
                    checkLat = unit.checkAccess(c, thread.vc, addr,
                                                e.size, isWrite, tid);
            }
            core.clock += 1 + std::max(dataLat, checkLat);
            break;
          }

          case wl::TraceEvent::Kind::Acquire: {
            ObjState &obj = objects[e.object];
            stats.syncOps += 1;
            core.clock = std::max(core.clock, obj.lastDone) +
                         config.syncOverhead;
            thread.vc.joinFrom(obj.vc);
            obj.completed += 1;
            obj.lastDone = core.clock;
            break;
          }

          case wl::TraceEvent::Kind::Release: {
            ObjState &obj = objects[e.object];
            stats.syncOps += 1;
            core.clock = std::max(core.clock, obj.lastDone) +
                         config.syncOverhead;
            obj.vc.joinFrom(thread.vc);
            thread.vc.tick(tid);
            obj.completed += 1;
            obj.lastDone = core.clock;
            break;
          }

          case wl::TraceEvent::Kind::BarrierArrive: {
            ObjState &obj = objects[e.object];
            stats.syncOps += 1;
            const std::uint32_t parties =
                trace.objects[e.object].parties;
            CLEAN_ASSERT(parties > 0);
            obj.completed += 1;
            obj.vc.joinFrom(thread.vc);
            thread.vc.tick(tid);
            obj.arrivedInGen += 1;
            obj.genMaxCycle = std::max(obj.genMaxCycle,
                                       core.clock + config.syncOverhead);
            if (obj.arrivedInGen == parties) {
                const Cycles release = obj.genMaxCycle;
                for (unsigned waiter : obj.waiters) {
                    threads[waiter].readyAt = release;
                    threads[waiter].vc.joinFrom(obj.vc);
                    threads[waiter].blocked = false;
                }
                obj.waiters.clear();
                core.clock = release;
                thread.vc.joinFrom(obj.vc);
                obj.arrivedInGen = 0;
                obj.genMaxCycle = 0;
                obj.lastDone = release;
            } else {
                obj.waiters.push_back(
                    static_cast<unsigned>(pickThread));
                thread.blocked = true;
            }
            break;
          }
        }
    }

    for (const CoreRep &core : cores) {
        stats.coreCycles.push_back(core.clock);
        stats.totalCycles = std::max(stats.totalCycles, core.clock);
    }
    stats.hw = unit.stats();
    stats.llcMisses = mem.llcMisses();
    stats.l1Hits = mem.l1Hits();
    stats.l1Misses = mem.l1Misses();
    stats.invalidations = mem.invalidations();
    return stats;
}

} // namespace

} // namespace clean::sim
