/**
 * @file
 * Shadow-backend tests (§4.2): slot mapping, contiguity, reset.
 *
 * Typed over both backends — the RaceChecker relies on exactly these
 * properties.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/linear_shadow.h"
#include "core/sparse_shadow.h"

namespace clean
{
namespace
{

/** Uniform construction wrapper for the typed suite. */
template <typename ShadowT>
struct ShadowFixture;

template <>
struct ShadowFixture<LinearShadow>
{
    static constexpr Addr kBase = 0x10000000;
    static constexpr std::size_t kSpan = 1 << 20;

    ShadowFixture() : shadow(kBase, kSpan) {}
    LinearShadow shadow;
};

template <>
struct ShadowFixture<SparseShadow>
{
    static constexpr Addr kBase = 0x10000000;
    static constexpr std::size_t kSpan = 1 << 20;

    SparseShadow shadow;
};

template <typename ShadowT>
class ShadowTest : public ::testing::Test
{
  protected:
    ShadowFixture<ShadowT> fix;
};

using ShadowTypes = ::testing::Types<LinearShadow, SparseShadow>;
TYPED_TEST_SUITE(ShadowTest, ShadowTypes);

TYPED_TEST(ShadowTest, FreshSlotsAreZero)
{
    auto &shadow = this->fix.shadow;
    const Addr base = ShadowFixture<TypeParam>::kBase;
    for (Addr a = base; a < base + 64; ++a)
        EXPECT_EQ(*shadow.slots(a), 0u);
}

TYPED_TEST(ShadowTest, SlotsAreStable)
{
    auto &shadow = this->fix.shadow;
    const Addr a = ShadowFixture<TypeParam>::kBase + 100;
    EpochValue *s1 = shadow.slots(a);
    *s1 = 0xabcd;
    EXPECT_EQ(*shadow.slots(a), 0xabcdu);
    EXPECT_EQ(shadow.slots(a), s1);
}

TYPED_TEST(ShadowTest, AdjacentBytesHaveAdjacentSlots)
{
    auto &shadow = this->fix.shadow;
    const Addr base = ShadowFixture<TypeParam>::kBase + 4096;
    EpochValue *first = shadow.slots(base);
    const std::size_t run = shadow.contiguousSlots(base);
    const std::size_t check = std::min<std::size_t>(run, 256);
    for (std::size_t i = 0; i < check; ++i)
        EXPECT_EQ(shadow.slots(base + i), first + i);
}

TYPED_TEST(ShadowTest, DistinctBytesHaveDistinctSlots)
{
    auto &shadow = this->fix.shadow;
    const Addr base = ShadowFixture<TypeParam>::kBase;
    *shadow.slots(base + 10) = 1;
    *shadow.slots(base + 11) = 2;
    EXPECT_EQ(*shadow.slots(base + 10), 1u);
    EXPECT_EQ(*shadow.slots(base + 11), 2u);
}

TYPED_TEST(ShadowTest, ContiguousSlotsIsPositive)
{
    auto &shadow = this->fix.shadow;
    const Addr base = ShadowFixture<TypeParam>::kBase;
    for (Addr off : {std::size_t{0}, std::size_t{1}, std::size_t{4095},
                     std::size_t{4096}, std::size_t{65535}}) {
        EXPECT_GE(shadow.contiguousSlots(base + off), 1u);
    }
}

TYPED_TEST(ShadowTest, ResetZeroesEverything)
{
    auto &shadow = this->fix.shadow;
    const Addr base = ShadowFixture<TypeParam>::kBase;
    for (Addr a = base; a < base + 1000; a += 37)
        *shadow.slots(a) = 0xdeadbeef;
    shadow.reset();
    for (Addr a = base; a < base + 1000; a += 37)
        EXPECT_EQ(*shadow.slots(a), 0u);
}

TYPED_TEST(ShadowTest, SlotWidthIsFourBytesPerDataByte)
{
    auto &shadow = this->fix.shadow;
    const Addr base = ShadowFixture<TypeParam>::kBase + 512;
    const auto *s0 = reinterpret_cast<const char *>(shadow.slots(base));
    const auto *s1 =
        reinterpret_cast<const char *>(shadow.slots(base + 1));
    EXPECT_EQ(s1 - s0, static_cast<std::ptrdiff_t>(kShadowBytesPerByte));
}

TEST(LinearShadow, CoversExactRange)
{
    LinearShadow shadow(0x1000, 0x100);
    EXPECT_TRUE(shadow.covers(0x1000));
    EXPECT_TRUE(shadow.covers(0x10ff));
    EXPECT_FALSE(shadow.covers(0x0fff));
    EXPECT_FALSE(shadow.covers(0x1100));
}

TEST(LinearShadow, ContiguousAcrossWholeRegion)
{
    LinearShadow shadow(0x1000, 0x100);
    EXPECT_EQ(shadow.contiguousSlots(0x1000), 0x100u);
    EXPECT_EQ(shadow.contiguousSlots(0x10ff), 1u);
}

TEST(LinearShadow, FixedArithmeticMapping)
{
    // The EPOCH_ADDRESS property: slot(addr) = base + (addr - dataBase),
    // in units of 4-byte epochs.
    LinearShadow shadow(0x2000, 0x1000);
    EpochValue *base = shadow.slots(0x2000);
    EXPECT_EQ(shadow.slots(0x2000 + 0x123), base + 0x123);
}

TEST(SparseShadow, ChunksMaterializeLazily)
{
    SparseShadow shadow;
    EXPECT_EQ(shadow.chunkCount(), 0u);
    *shadow.slots(0x123456789) = 7;
    EXPECT_EQ(shadow.chunkCount(), 1u);
    *shadow.slots(0x123456789 + SparseShadow::kChunkBytes) = 8;
    EXPECT_EQ(shadow.chunkCount(), 2u);
}

TEST(SparseShadow, HandlesArbitraryAddresses)
{
    SparseShadow shadow;
    const Addr addrs[] = {0x0, 0x7fffffffffff, 0x1234, 0xdeadbeef000};
    EpochValue v = 1;
    for (Addr a : addrs)
        *shadow.slots(a) = v++;
    v = 1;
    for (Addr a : addrs)
        EXPECT_EQ(*shadow.slots(a), v++);
}

TEST(SparseShadow, ContiguityWithinChunk)
{
    SparseShadow shadow;
    const Addr base = 5 * SparseShadow::kChunkBytes;
    EXPECT_EQ(shadow.contiguousSlots(base), SparseShadow::kChunkBytes);
    EXPECT_EQ(shadow.contiguousSlots(base + SparseShadow::kChunkBytes - 1),
              1u);
}

TEST(SparseShadow, PerInstanceIsolation)
{
    SparseShadow a, b;
    *a.slots(0x100) = 11;
    // b's cache must not alias a's chunk.
    EXPECT_EQ(*b.slots(0x100), 0u);
    *b.slots(0x100) = 22;
    EXPECT_EQ(*a.slots(0x100), 11u);
}

} // namespace
} // namespace clean
