/**
 * @file
 * Vector-clock algebra tests (§2.3).
 */

#include <gtest/gtest.h>

#include "core/vector_clock.h"

namespace clean
{
namespace
{

VectorClock
makeVc(std::initializer_list<ClockValue> clocks)
{
    VectorClock vc(kDefaultEpochConfig,
                   static_cast<ThreadId>(clocks.size()));
    ThreadId t = 0;
    for (ClockValue c : clocks)
        vc.setClock(t++, c);
    return vc;
}

TEST(VectorClock, StartsAtZero)
{
    VectorClock vc(kDefaultEpochConfig, 4);
    for (ThreadId t = 0; t < 4; ++t)
        EXPECT_EQ(vc.clockOf(t), 0u);
}

TEST(VectorClock, ElementsCarryTidBits)
{
    VectorClock vc(kDefaultEpochConfig, 4);
    for (ThreadId t = 0; t < 4; ++t)
        EXPECT_EQ(kDefaultEpochConfig.tidOf(vc.element(t)), t);
}

TEST(VectorClock, TickIncrements)
{
    VectorClock vc(kDefaultEpochConfig, 2);
    EXPECT_EQ(vc.tick(1), 1u);
    EXPECT_EQ(vc.tick(1), 2u);
    EXPECT_EQ(vc.clockOf(1), 2u);
    EXPECT_EQ(vc.clockOf(0), 0u);
}

TEST(VectorClock, JoinTakesElementwiseMax)
{
    auto a = makeVc({1, 5, 3});
    const auto b = makeVc({2, 4, 3});
    a.joinFrom(b);
    EXPECT_EQ(a.clockOf(0), 2u);
    EXPECT_EQ(a.clockOf(1), 5u);
    EXPECT_EQ(a.clockOf(2), 3u);
}

TEST(VectorClock, JoinIsIdempotent)
{
    auto a = makeVc({3, 1});
    const auto before = a;
    a.joinFrom(before);
    EXPECT_EQ(a.clockOf(0), 3u);
    EXPECT_EQ(a.clockOf(1), 1u);
}

TEST(VectorClock, JoinIsCommutativeOnClocks)
{
    auto x = makeVc({1, 7, 2});
    const auto y = makeVc({5, 3, 2});
    x.joinFrom(y);

    auto y2 = makeVc({5, 3, 2});
    const auto x2 = makeVc({1, 7, 2});
    y2.joinFrom(x2);

    for (ThreadId t = 0; t < 3; ++t)
        EXPECT_EQ(x.clockOf(t), y2.clockOf(t));
}

TEST(VectorClock, AllLessOrEqualDefinesHappensBefore)
{
    const auto a = makeVc({1, 2, 3});
    const auto b = makeVc({2, 2, 4});
    EXPECT_TRUE(a.allLessOrEqual(b));
    EXPECT_FALSE(b.allLessOrEqual(a));
}

TEST(VectorClock, ConcurrentClocksAreUnordered)
{
    const auto a = makeVc({2, 1});
    const auto b = makeVc({1, 2});
    EXPECT_FALSE(a.allLessOrEqual(b));
    EXPECT_FALSE(b.allLessOrEqual(a));
}

TEST(VectorClock, ClearClocksResetsAllToZero)
{
    auto a = makeVc({4, 5, 6});
    a.clearClocks();
    for (ThreadId t = 0; t < 3; ++t)
        EXPECT_EQ(a.clockOf(t), 0u);
    // Tid bits survive the reset.
    EXPECT_EQ(kDefaultEpochConfig.tidOf(a.element(2)), 2u);
}

TEST(VectorClock, AssignCopies)
{
    auto a = makeVc({1, 2});
    const auto b = makeVc({9, 8});
    a.assign(b);
    EXPECT_EQ(a.clockOf(0), 9u);
    EXPECT_EQ(a.clockOf(1), 8u);
}

TEST(VectorClock, EpochOfReturnsOwnElement)
{
    auto a = makeVc({0, 7});
    EXPECT_EQ(kDefaultEpochConfig.clockOf(a.epochOf(1)), 7u);
    EXPECT_EQ(kDefaultEpochConfig.tidOf(a.epochOf(1)), 1u);
}

TEST(VectorClock, ToStringListsClocks)
{
    const auto a = makeVc({1, 2});
    EXPECT_EQ(a.toString(), "<1, 2>");
}

TEST(VectorClockDeath, TickBeyondMaxClockPanics)
{
    const EpochConfig tiny{4, 8};
    VectorClock vc(tiny, 1);
    for (ClockValue c = 0; c < tiny.maxClock(); ++c)
        vc.tick(0);
    EXPECT_DEATH(vc.tick(0), "rollover");
}

} // namespace
} // namespace clean
