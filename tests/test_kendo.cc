/**
 * @file
 * Kendo deterministic-synchronization tests (§2.4, §3.3).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "det/kendo.h"

namespace clean::det
{
namespace
{

TEST(Kendo, DisabledIsAlwaysYourTurn)
{
    Kendo kendo(false, 4);
    EXPECT_TRUE(kendo.tryTurn(0));
    EXPECT_TRUE(kendo.tryTurn(3));
    kendo.increment(0, 100); // no-op
    EXPECT_EQ(kendo.count(0), 0u);
}

TEST(Kendo, SingleActiveSlotAlwaysHasTurn)
{
    Kendo kendo(true, 4);
    kendo.activate(0, 0);
    EXPECT_TRUE(kendo.tryTurn(0));
    kendo.increment(0, 5);
    EXPECT_TRUE(kendo.tryTurn(0));
}

TEST(Kendo, MinimumCounterHoldsTurn)
{
    Kendo kendo(true, 4);
    kendo.activate(0, 10);
    kendo.activate(1, 5);
    EXPECT_FALSE(kendo.tryTurn(0));
    EXPECT_TRUE(kendo.tryTurn(1));
}

TEST(Kendo, TiesBreakBySmallerId)
{
    Kendo kendo(true, 4);
    kendo.activate(1, 7);
    kendo.activate(2, 7);
    EXPECT_TRUE(kendo.tryTurn(1));
    EXPECT_FALSE(kendo.tryTurn(2));
}

TEST(Kendo, IncrementPassesTurn)
{
    Kendo kendo(true, 2);
    kendo.activate(0, 0);
    kendo.activate(1, 1);
    EXPECT_TRUE(kendo.tryTurn(0));
    kendo.increment(0, 2);
    EXPECT_FALSE(kendo.tryTurn(0));
    EXPECT_TRUE(kendo.tryTurn(1));
}

TEST(Kendo, BlockedSlotsAreExcluded)
{
    Kendo kendo(true, 3);
    kendo.activate(0, 1);
    kendo.activate(1, 100);
    kendo.block(0);
    EXPECT_TRUE(kendo.tryTurn(1));
    kendo.unblock(0, 50);
    EXPECT_FALSE(kendo.tryTurn(1));
    EXPECT_EQ(kendo.count(0), 50u);
}

TEST(Kendo, FinishedSlotsAreExcluded)
{
    Kendo kendo(true, 2);
    kendo.activate(0, 1);
    kendo.activate(1, 10);
    kendo.finish(0);
    EXPECT_TRUE(kendo.tryTurn(1));
}

TEST(Kendo, UnblockNeverLowersCounter)
{
    Kendo kendo(true, 2);
    kendo.activate(0, 30);
    kendo.block(0);
    kendo.unblock(0, 10);
    EXPECT_EQ(kendo.count(0), 30u);
}

TEST(Kendo, RaiseToOnlyRaises)
{
    Kendo kendo(true, 2);
    kendo.activate(0, 5);
    kendo.raiseTo(0, 9);
    EXPECT_EQ(kendo.count(0), 9u);
    kendo.raiseTo(0, 3);
    EXPECT_EQ(kendo.count(0), 9u);
}

TEST(Kendo, ActivateResumesAtLeastAtStoredCount)
{
    Kendo kendo(true, 2);
    kendo.activate(0, 5);
    kendo.finish(0);
    // Reused slot with a smaller start must keep monotonic time.
    kendo.activate(0, 2);
    EXPECT_EQ(kendo.count(0), 5u);
}

TEST(Kendo, WaitForTurnBlocksUntilPeerAdvances)
{
    Kendo kendo(true, 2);
    kendo.activate(0, 0);
    kendo.activate(1, 1);
    std::atomic<bool> got{false};
    std::thread waiter([&] {
        kendo.waitForTurn(1);
        got.store(true);
    });
    // Slot 1 cannot have the turn while slot 0 sits at 0.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(got.load());
    kendo.increment(0, 5);
    waiter.join();
    EXPECT_TRUE(got.load());
}

TEST(Kendo, MutualExclusionOfTurns)
{
    // Counter-based critical section: only the turn holder increments,
    // so the shared value must never tear.
    Kendo kendo(true, 4);
    for (ThreadId t = 0; t < 4; ++t)
        kendo.activate(t, t);
    std::atomic<int> inside{0};
    std::atomic<int> violations{0};
    std::vector<std::thread> threads;
    for (ThreadId t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < 200; ++i) {
                kendo.waitForTurn(t);
                if (inside.fetch_add(1) != 0)
                    violations.fetch_add(1);
                inside.fetch_sub(1);
                kendo.increment(t, 4);
            }
            kendo.finish(t);
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(violations.load(), 0);
}

TEST(Kendo, TurnOrderIsDeterministic)
{
    // Replay the same logical schedule twice; the order in which slots
    // win turns must be identical.
    auto runOnce = [] {
        Kendo kendo(true, 3);
        for (ThreadId t = 0; t < 3; ++t)
            kendo.activate(t, t);
        std::vector<ThreadId> order;
        std::mutex orderMutex;
        std::vector<std::thread> threads;
        for (ThreadId t = 0; t < 3; ++t) {
            threads.emplace_back([&, t] {
                // Deterministic per-slot increments between turns.
                for (int i = 0; i < 50; ++i) {
                    kendo.waitForTurn(t);
                    {
                        std::lock_guard<std::mutex> guard(orderMutex);
                        order.push_back(t);
                    }
                    kendo.increment(t, 1 + (t * 7 + i) % 5);
                }
                kendo.finish(t);
            });
        }
        for (auto &thread : threads)
            thread.join();
        return order;
    };
    const auto a = runOnce();
    const auto b = runOnce();
    EXPECT_EQ(a, b);
}

TEST(Kendo, SpinTelemetryAccumulates)
{
    Kendo kendo(true, 2);
    kendo.activate(0, 0);
    kendo.activate(1, 10);
    std::thread t([&] { kendo.waitForTurn(1); });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    kendo.increment(0, 100);
    t.join();
    EXPECT_GT(kendo.totalSpins(), 0u);
}

} // namespace
} // namespace clean::det
