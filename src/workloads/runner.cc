#include "workloads/runner.h"

#include <algorithm>
#include <memory>

#include "det/replay.h"
#include "detectors/fasttrack.h"
#include "obs/governor.h"
#include "detectors/tsan_lite.h"
#include "recover/recovery.h"
#include "support/logging.h"
#include "support/timer.h"
#include "workloads/backend.h"
#include "workloads/registry.h"

namespace clean::wl
{

const char *
backendKindName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Native: return "native";
      case BackendKind::Clean: return "clean";
      case BackendKind::DetectOnly: return "detect-only";
      case BackendKind::KendoOnly: return "kendo-only";
      case BackendKind::FastTrack: return "fasttrack";
      case BackendKind::TsanLite: return "tsan-lite";
      case BackendKind::Trace: return "trace";
    }
    return "?";
}

obs::TraceMeta
metaForSpec(const RunSpec &spec)
{
    obs::TraceMeta meta;
    meta.workload = spec.workload;
    meta.scale = static_cast<std::uint32_t>(spec.params.scale);
    meta.threads = spec.params.threads;
    meta.racy = spec.params.racy;
    meta.seed = spec.params.seed;
    meta.backend = static_cast<std::uint32_t>(spec.backend);

    const RuntimeConfig &rc = spec.runtime;
    meta.clockBits = rc.epoch.clockBits;
    meta.tidBits = rc.epoch.tidBits;
    meta.maxThreads = rc.maxThreads;
    meta.onRace = static_cast<std::uint32_t>(rc.onRace);
    meta.vectorized = rc.vectorized;
    meta.fastPath = rc.fastPath;
    meta.ownCache = rc.ownCache;
    meta.batch = rc.batch;
    meta.batchBytes = rc.batchBytes;
    meta.atomicity = static_cast<std::uint32_t>(rc.atomicity);
    meta.shadow = static_cast<std::uint32_t>(rc.shadow);
    meta.granuleLog2 = rc.granuleLog2;
    meta.detChunk = rc.detChunk;
    meta.rolloverMargin = rc.rolloverMargin;
    meta.watchdogMs = rc.watchdogMs;
    meta.maxRecoveries = rc.maxRecoveries;
    meta.undoLogEntries = rc.undoLogEntries;
    meta.heapSharedBytes = rc.heap.sharedBytes;
    meta.heapPrivateBytes = rc.heap.privateBytes;
    meta.obsRingEvents = rc.obs.ringEvents;
    meta.obsFailureTail = rc.obs.failureTail;

    meta.overheadBudget = rc.overheadBudget;
    meta.sampleWindowLog2 = rc.sample.windowLog2;
    meta.sampleBurst = rc.sample.burstWindows;
    meta.sampleRegionLog2 = rc.sample.regionLog2;
    meta.sampleStrikes = rc.sample.maxStrikes;
    meta.sampleSeed = rc.sample.seed;
    meta.sampleCalibLog2 = rc.sampleCalibLog2;
    meta.sampleForceLevelP1 =
        rc.sampleForceLevel < 0
            ? 0
            : static_cast<std::uint32_t>(rc.sampleForceLevel) + 1;

    meta.injectEnabled = rc.inject.enabled;
    meta.injectSeed = rc.inject.seed;
    meta.skipCheckRateBits = obs::rateToBits(rc.inject.skipCheckRate);
    meta.skipAcquireRateBits = obs::rateToBits(rc.inject.skipAcquireRate);
    meta.delayRateBits = obs::rateToBits(rc.inject.delayRate);
    meta.rolloverRateBits = obs::rateToBits(rc.inject.rolloverRate);
    meta.killRateBits = obs::rateToBits(rc.inject.killRate);
    meta.delayMicros = rc.inject.delayMicros;
    return meta;
}

RunSpec
specFromTraceMeta(const obs::TraceMeta &meta)
{
    // findWorkload() fatal()s (process exit) on unknown names, so an
    // unknown workload must be rejected here, as a structured fault.
    const std::vector<std::string> known = workloadNames();
    if (std::find(known.begin(), known.end(), meta.workload) == known.end())
        throw TraceError(TraceFault::BadMeta,
                         "unknown workload '" + meta.workload + "'");
    if (meta.scale > static_cast<std::uint32_t>(Scale::Large))
        throw TraceError(TraceFault::BadMeta,
                         "scale " + std::to_string(meta.scale) +
                             " out of range");
    if (meta.backend != static_cast<std::uint32_t>(BackendKind::Clean) &&
        meta.backend != static_cast<std::uint32_t>(BackendKind::KendoOnly))
        throw TraceError(TraceFault::BadMeta,
                         "backend " + std::to_string(meta.backend) +
                             " is not a recordable backend");
    if (meta.onRace > static_cast<std::uint32_t>(OnRacePolicy::Recover))
        throw TraceError(TraceFault::BadMeta,
                         "on-race policy " + std::to_string(meta.onRace) +
                             " out of range");
    if (meta.atomicity > static_cast<std::uint32_t>(AtomicityMode::Locked))
        throw TraceError(TraceFault::BadMeta,
                         "atomicity mode " + std::to_string(meta.atomicity) +
                             " out of range");
    if (meta.shadow > static_cast<std::uint32_t>(ShadowKind::Sparse))
        throw TraceError(TraceFault::BadMeta,
                         "shadow kind " + std::to_string(meta.shadow) +
                             " out of range");

    RunSpec spec;
    spec.workload = meta.workload;
    spec.params.scale = static_cast<Scale>(meta.scale);
    spec.params.threads = meta.threads;
    spec.params.racy = meta.racy;
    spec.params.seed = meta.seed;
    spec.backend = static_cast<BackendKind>(meta.backend);

    RuntimeConfig &rc = spec.runtime;
    rc.epoch.clockBits = meta.clockBits;
    rc.epoch.tidBits = meta.tidBits;
    rc.maxThreads = meta.maxThreads;
    rc.onRace = static_cast<OnRacePolicy>(meta.onRace);
    rc.vectorized = meta.vectorized;
    rc.fastPath = meta.fastPath;
    rc.ownCache = meta.ownCache;
    rc.batch = meta.batch;
    rc.batchBytes = static_cast<std::size_t>(meta.batchBytes);
    rc.atomicity = static_cast<AtomicityMode>(meta.atomicity);
    rc.shadow = static_cast<ShadowKind>(meta.shadow);
    rc.granuleLog2 = meta.granuleLog2;
    rc.detChunk = meta.detChunk;
    rc.rolloverMargin = meta.rolloverMargin;
    rc.watchdogMs = meta.watchdogMs;
    rc.maxRecoveries = meta.maxRecoveries;
    rc.undoLogEntries = meta.undoLogEntries;
    rc.heap.sharedBytes = meta.heapSharedBytes;
    rc.heap.privateBytes = meta.heapPrivateBytes;
    rc.obs.ringEvents = meta.obsRingEvents;
    rc.obs.failureTail = meta.obsFailureTail;

    rc.overheadBudget = meta.overheadBudget;
    rc.sample.windowLog2 = meta.sampleWindowLog2;
    rc.sample.burstWindows = meta.sampleBurst;
    rc.sample.regionLog2 = meta.sampleRegionLog2;
    rc.sample.maxStrikes = meta.sampleStrikes;
    rc.sample.seed = meta.sampleSeed;
    rc.sampleCalibLog2 = meta.sampleCalibLog2;
    rc.sampleForceLevel =
        meta.sampleForceLevelP1 == 0
            ? -1
            : static_cast<std::int32_t>(meta.sampleForceLevelP1) - 1;

    rc.inject.enabled = meta.injectEnabled;
    rc.inject.seed = meta.injectSeed;
    rc.inject.skipCheckRate = obs::rateFromBits(meta.skipCheckRateBits);
    rc.inject.skipAcquireRate = obs::rateFromBits(meta.skipAcquireRateBits);
    rc.inject.delayRate = obs::rateFromBits(meta.delayRateBits);
    rc.inject.rolloverRate = obs::rateFromBits(meta.rolloverRateBits);
    rc.inject.killRate = obs::rateFromBits(meta.killRateBits);
    rc.inject.delayMicros = meta.delayMicros;
    return spec;
}

void
validateReplaySpec(const RunSpec &spec, const obs::TraceMeta &meta)
{
    if (meta.schemaVersion != obs::kTraceSchemaVersion)
        throw TraceError(TraceFault::BadVersion,
                         "trace schema v" +
                             std::to_string(meta.schemaVersion) +
                             "; this binary replays v" +
                             std::to_string(obs::kTraceSchemaVersion));

    const obs::TraceMeta mine = metaForSpec(spec);
    if (mine == meta)
        return;

    // Name the first difference precisely; the generic tail catches the
    // long tail of runtime knobs without 30 bespoke messages.
    if (mine.workload != meta.workload)
        throw TraceError(TraceFault::ConfigMismatch,
                         "run executes workload '" + mine.workload +
                             "', trace was recorded from '" + meta.workload +
                             "'");
    if (mine.threads != meta.threads)
        throw TraceError(TraceFault::ConfigMismatch,
                         "run uses " + std::to_string(mine.threads) +
                             " threads, trace was recorded with " +
                             std::to_string(meta.threads));
    if (mine.backend != meta.backend)
        throw TraceError(
            TraceFault::ConfigMismatch,
            std::string("run uses backend ") +
                backendKindName(static_cast<BackendKind>(mine.backend)) +
                ", trace was recorded under " +
                backendKindName(static_cast<BackendKind>(meta.backend)));
    if (mine.seed != meta.seed)
        throw TraceError(TraceFault::ConfigMismatch,
                         "run seed " + std::to_string(mine.seed) +
                             " differs from trace seed " +
                             std::to_string(meta.seed));
    if (mine.scale != meta.scale || mine.racy != meta.racy)
        throw TraceError(TraceFault::ConfigMismatch,
                         "workload parameters (scale/racy) differ from the "
                         "trace header");
    if (mine.onRace != meta.onRace)
        throw TraceError(
            TraceFault::ConfigMismatch,
            std::string("run uses --on-race=") +
                onRacePolicyName(static_cast<OnRacePolicy>(mine.onRace)) +
                ", trace was recorded under --on-race=" +
                onRacePolicyName(static_cast<OnRacePolicy>(meta.onRace)));
    if (mine.injectEnabled != meta.injectEnabled ||
        mine.injectSeed != meta.injectSeed ||
        mine.skipCheckRateBits != meta.skipCheckRateBits ||
        mine.skipAcquireRateBits != meta.skipAcquireRateBits ||
        mine.delayRateBits != meta.delayRateBits ||
        mine.rolloverRateBits != meta.rolloverRateBits ||
        mine.killRateBits != meta.killRateBits ||
        mine.delayMicros != meta.delayMicros)
        throw TraceError(TraceFault::ConfigMismatch,
                         "fault-injection plan differs from the trace "
                         "header (enable/seed/rates)");
    throw TraceError(TraceFault::ConfigMismatch,
                     "runtime configuration differs from the trace header");
}

namespace
{

RunResult
runClean(Workload &workload, const RunSpec &spec)
{
    RuntimeConfig config = spec.runtime;
    config.detection = spec.backend != BackendKind::KendoOnly;
    config.deterministic = spec.backend != BackendKind::DetectOnly;

    // Record/replay plumbing (ISSUE 6). Anything that fails here —
    // unwritable record path, unreadable/mismatched trace — throws
    // TraceError before the run starts.
    std::unique_ptr<obs::RecordSink> sink;
    std::unique_ptr<det::ReplayDriver> driver;
    if (!spec.recordPath.empty())
        sink = std::make_unique<obs::RecordSink>(spec.recordPath,
                                                 metaForSpec(spec));
    if (!spec.replayPath.empty()) {
        obs::TraceFile trace = obs::readTraceFile(spec.replayPath);
        validateReplaySpec(spec, trace.meta);
        driver = std::make_unique<det::ReplayDriver>(
            std::move(trace), spec.runtime.onRace == OnRacePolicy::Throw);
    }
    config.recordSink = sink.get();
    config.replayDriver = driver.get();

    RunResult result;
    {
        CleanRuntime rt(config);
        CleanEnv env(rt, spec.params.seed);

        Timer timer;
        CpuTimer cpuTimer;
        try {
            workload.run(env, spec.params);
            // The orchestrating thread's final SFR never reaches another
            // sync op, so reads it buffered after its last release are
            // still pending — drain them so a tail race is not dropped.
            rt.mainContext().drainBatch();
        } catch (const RaceException &race) {
            result.raceException = true;
            result.raceMessage = race.what();
        } catch (const DeadlockError &deadlock) {
            result.deadlock = true;
            result.deadlockMessage = deadlock.what();
        } catch (const ExecutionAborted &) {
            // Classified below from the runtime's recorded state (the
            // abort may stem from a race or from a watchdog deadlock).
        } catch (const TraceError &) {
            // A replay fault on the orchestrating thread; the driver
            // latched it and the fault fields are filled below.
        }
        result.seconds = timer.elapsedSeconds();
        result.cpuSeconds = cpuTimer.elapsedSeconds();

        result.raceCount = rt.raceCount();
        if (rt.deadlockOccurred() && !result.deadlock) {
            result.deadlock = true;
            result.deadlockMessage = rt.firstDeadlock()->what();
        }
        // Under Throw any recorded race failed the run; under the
        // degraded Report/Count policies the run completed and races are
        // only counted.
        if (config.onRace == OnRacePolicy::Throw && rt.raceOccurred())
            result.raceException = true;
        if (result.raceException && result.raceMessage.empty()) {
            if (const RaceException *race = rt.firstRace())
                result.raceMessage = race->what();
        }
        // Recovery supervision (ISSUE 3): under Recover, races were
        // rolled back and re-executed and injected kill-thread faults
        // were retired cleanly; surface the episode ledger so callers can
        // tell a fully recovered run (exit 0) from a quarantined one
        // (exit 5).
        if (const recover::RecoveryManager *mgr = rt.recoveryManager()) {
            const recover::RecoveryStats stats = mgr->stats();
            result.recoveredRaces = stats.recovered;
            result.recoveryAttempts = stats.attempts;
            result.forcedReplays = stats.forcedReplays;
            result.recoveredKills = stats.recoveredKills;
            result.quarantinedSites = stats.quarantinedSites;
        }
        if (rt.samplingEnabled()) {
            result.samplingOn = true;
            result.sampleTelemetry = rt.aggregatedSampleTelemetry();
            if (const obs::SamplingGovernor *gov = rt.samplingGovernor()) {
                result.sampleLevel =
                    config.sampleForceLevel >= 0
                        ? static_cast<std::uint32_t>(
                              config.sampleForceLevel)
                        : gov->level();
                result.sampleOverheadPermille = gov->overheadPermille();
            }
        }
        result.failureReport = rt.failureReportJson();
        if (rt.recorder() != nullptr) {
            result.obsTraceJson = rt.obsTraceJson();
            result.metricsJson = rt.metricsJson();
        }

        const EnvTotals totals = env.totals();
        result.outputHash = totals.outputHash;
        result.checker = rt.aggregatedCheckerStats();
        result.reads = result.checker.sharedReads;
        result.writes = result.checker.sharedWrites;
        result.bytes = result.checker.accessedBytes;
        result.detCounts = rt.finalDetCounts();
        result.rollovers = rt.rolloverResets();
    }
    // After the runtime is destroyed: its destructor reaps any leaked
    // threads, whose last events must still reach the trace before the
    // completeness footer is written.
    if (sink)
        sink->finalize();
    if (driver && driver->faulted()) {
        result.traceFault = true;
        result.traceFaultKind = traceFaultName(driver->faultKind());
        result.traceFaultMessage = driver->faultMessage();
        result.traceFaultStep = driver->faultStep();
    }
    return result;
}

RunResult
runPlain(Workload &workload, const RunSpec &spec)
{
    RunResult result;

    if (spec.backend == BackendKind::Native) {
        NativeEnv env(spec.params.seed);
        Timer timer;
        CpuTimer cpuTimer;
        workload.run(env, spec.params);
        result.seconds = timer.elapsedSeconds();
        result.cpuSeconds = cpuTimer.elapsedSeconds();
        const EnvTotals totals = env.totals();
        result.outputHash = totals.outputHash;
        result.reads = totals.reads;
        result.writes = totals.writes;
        result.bytes = totals.bytes;
        return result;
    }

    if (spec.backend == BackendKind::Trace) {
        TraceEnv env(spec.params.seed);
        Timer timer;
        CpuTimer cpuTimer;
        workload.run(env, spec.params);
        result.seconds = timer.elapsedSeconds();
        result.cpuSeconds = cpuTimer.elapsedSeconds();
        const EnvTotals totals = env.totals();
        result.outputHash = totals.outputHash;
        result.reads = totals.reads;
        result.writes = totals.writes;
        result.bytes = totals.bytes;
        result.trace = env.takeTrace();
        return result;
    }

    // Baseline detector backends.
    const ThreadId slots = spec.params.threads + 1;
    std::unique_ptr<detectors::Detector> detector;
    if (spec.backend == BackendKind::FastTrack) {
        detector = std::make_unique<detectors::FastTrackDetector>(
            spec.runtime.epoch, slots);
    } else {
        detector = std::make_unique<detectors::TsanLiteDetector>(
            spec.runtime.epoch, slots);
    }
    DetectorEnv env(*detector, spec.params.seed);
    Timer timer;
    CpuTimer cpuTimer;
    workload.run(env, spec.params);
    result.seconds = timer.elapsedSeconds();
    result.cpuSeconds = cpuTimer.elapsedSeconds();

    const EnvTotals totals = env.totals();
    result.outputHash = totals.outputHash;
    result.reads = totals.reads;
    result.writes = totals.writes;
    result.bytes = totals.bytes;
    result.detectorReports = detector->reportCount();
    for (const auto &report : detector->reports()) {
        switch (report.kind) {
          case RaceKind::Waw: ++result.detectorWaw; break;
          case RaceKind::Raw: ++result.detectorRaw; break;
          case RaceKind::War: ++result.detectorWar; break;
        }
    }
    return result;
}

} // namespace

RunResult
runWorkload(const RunSpec &spec)
{
    // Record/replay requires the Kendo turn order — without it there is
    // no deterministic schedule to capture or enforce.
    if (!spec.recordPath.empty() || !spec.replayPath.empty()) {
        if (spec.backend != BackendKind::Clean &&
            spec.backend != BackendKind::KendoOnly)
            throw TraceError(
                TraceFault::Unsupported,
                std::string("record/replay requires a deterministic "
                            "backend (clean or kendo-only), not ") +
                    backendKindName(spec.backend));
    }
    Workload &workload = findWorkload(spec.workload);
    switch (spec.backend) {
      case BackendKind::Clean:
      case BackendKind::DetectOnly:
      case BackendKind::KendoOnly:
        return runClean(workload, spec);
      default:
        return runPlain(workload, spec);
    }
}

} // namespace clean::wl
