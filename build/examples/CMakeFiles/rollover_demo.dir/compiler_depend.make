# Empty compiler generated dependencies file for rollover_demo.
# This may be replaced when dependencies are built.
