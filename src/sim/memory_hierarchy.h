/**
 * @file
 * The paper's 8-core memory hierarchy (§6.3.1).
 *
 * Private L1 (8-way 64 KB) and L2 (8-way 256 KB) per core, a shared L3
 * (16-way 16 MB), 64-byte lines, MESI-style invalidation, and the exact
 * access latencies the paper simulates:
 *
 *   L1 hit 1, local L2 hit 10, remote L2 hit 15, L3 hit 35, L3 miss
 *   (memory) 120 cycles.
 *
 * The model is tag-functional: it tracks presence and invalidation, not
 * data. On a write, copies in every other core's private caches are
 * invalidated (the MESI upgrade); fetches fill L1+L2 of the requester
 * and the shared L3. Metadata (epoch) accesses issued by the CLEAN
 * hardware unit go through the same hierarchy, so metadata cache
 * pressure — the effect behind Figure 11 — is emergent.
 */

#ifndef CLEAN_SIM_MEMORY_HIERARCHY_H
#define CLEAN_SIM_MEMORY_HIERARCHY_H

#include <memory>
#include <vector>

#include "sim/cache.h"
#include "support/common.h"
#include "support/stats.h"

namespace clean::sim
{

/** Fixed latency parameters (cycles). */
struct LatencyConfig
{
    Cycles l1Hit = 1;
    Cycles l2LocalHit = 10;
    Cycles l2RemoteHit = 15;
    Cycles l3Hit = 35;
    Cycles memory = 120;
};

/** The multiprocessor cache/coherence model. */
class MemoryHierarchy
{
  public:
    MemoryHierarchy(unsigned cores, const LatencyConfig &latency = {});

    /**
     * Performs one access of @p size bytes at @p addr by @p core and
     * returns its latency. Accesses spanning multiple lines pay for
     * each line.
     */
    Cycles access(unsigned core, Addr addr, std::size_t size, bool write);

    /** Latency of touching exactly one line (used by the race-check
     *  unit for metadata). */
    Cycles accessLine(unsigned core, Addr line, bool write);

    unsigned cores() const { return cores_; }

    std::uint64_t l1Hits() const;
    std::uint64_t l1Misses() const;
    std::uint64_t llcMisses() const { return llcMisses_; }
    std::uint64_t invalidations() const { return invalidations_; }
    std::uint64_t accesses() const { return accesses_; }

    /** Dump counters into @p stats under @p prefix. */
    void exportTo(StatSet &stats, const std::string &prefix) const;

  private:
    unsigned cores_;
    LatencyConfig latency_;
    std::vector<std::unique_ptr<Cache>> l1_;
    std::vector<std::unique_ptr<Cache>> l2_;
    Cache l3_;
    std::uint64_t llcMisses_ = 0;
    std::uint64_t invalidations_ = 0;
    std::uint64_t accesses_ = 0;
};

} // namespace clean::sim

#endif // CLEAN_SIM_MEMORY_HIERARCHY_H
