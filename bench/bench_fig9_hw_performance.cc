/**
 * @file
 * Figure 9 — hardware-supported race-detection performance.
 *
 * Records one trace per benchmark and replays it on the 8-core timing
 * model with the CLEAN hardware unit on and off. The paper reports an
 * average 10.4% slowdown with a 46.7% worst case (dedup, whose
 * byte-granularity writes keep its metadata lines expanded); facesim is
 * omitted from simulation for running time, which this harness mirrors.
 */

#include "bench/common.h"
#include "sim/machine.h"

using namespace clean;
using namespace clean::bench;
using namespace clean::wl;

int
main(int argc, char **argv)
{
    const BenchConfig config = parseBench(argc, argv);

    std::printf("=== Figure 9: hardware-supported detection slowdown "
                "(threads=%u, scale=%s) ===\n\n",
                config.threads,
                config.options.getString("scale", "test").c_str());
    std::printf("%-14s %16s %16s %10s\n", "benchmark", "base[cyc]",
                "clean[cyc]", "slowdown");

    std::vector<double> slowdowns;
    std::string worstName;
    double worst = 0;
    for (const auto &name : config.workloads) {
        if (name == "facesim") {
            std::printf("%-14s %16s\n", name.c_str(),
                        "(omitted, as in the paper)");
            continue;
        }
        auto result =
            runWorkload(baseSpec(config, name, BackendKind::Trace));
        sim::MachineConfig off;
        off.raceDetection = false;
        const auto base = sim::simulate(result.trace, off);
        sim::MachineConfig on;
        const auto checked = sim::simulate(result.trace, on);
        const double slowdown =
            100.0 * (static_cast<double>(checked.totalCycles) /
                         static_cast<double>(base.totalCycles) -
                     1.0);
        slowdowns.push_back(slowdown);
        if (slowdown > worst) {
            worst = slowdown;
            worstName = name;
        }
        std::printf("%-14s %16llu %16llu %9.1f%%\n", name.c_str(),
                    static_cast<unsigned long long>(base.totalCycles),
                    static_cast<unsigned long long>(checked.totalCycles),
                    slowdown);
        if (checked.hw.racesDetected != 0) {
            std::printf("  WARNING: %llu races flagged on a race-free "
                        "trace\n",
                        static_cast<unsigned long long>(
                            checked.hw.racesDetected));
        }
    }

    std::printf("\naverage slowdown: %.1f%%; worst: %.1f%% (%s)\n",
                mean(slowdowns), worst, worstName.c_str());
    std::printf("paper: average 10.4%%, worst 46.7%% (dedup).\n");
    return 0;
}
