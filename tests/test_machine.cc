/**
 * @file
 * Trace-replay machine tests: event costs, sync ordering, barrier
 * semantics, detection overhead, determinism.
 */

#include <gtest/gtest.h>

#include "sim/machine.h"

namespace clean::sim
{
namespace
{

using wl::Trace;
using wl::TraceEvent;
using wl::TraceSyncObject;

TraceEvent
mem(bool write, Addr addr, std::uint8_t size, bool priv = false)
{
    TraceEvent e;
    e.kind = write ? TraceEvent::Kind::Write : TraceEvent::Kind::Read;
    e.addr = addr;
    e.size = size;
    e.isPrivate = priv;
    return e;
}

TraceEvent
compute(std::uint64_t n)
{
    TraceEvent e;
    e.kind = TraceEvent::Kind::Compute;
    e.addr = n;
    return e;
}

TraceEvent
sync(TraceEvent::Kind kind, unsigned object, std::uint32_t seq)
{
    TraceEvent e;
    e.kind = kind;
    e.object = object;
    e.seq = seq;
    return e;
}

Trace
singleThread(std::vector<TraceEvent> events)
{
    Trace trace;
    trace.perThread.push_back(std::move(events));
    trace.minAddr = 0x1000;
    trace.maxAddr = 0x100000;
    return trace;
}

TEST(Machine, ComputeCostsItsCycles)
{
    auto trace = singleThread({compute(100), compute(23)});
    MachineConfig config;
    config.raceDetection = false;
    const auto stats = simulate(trace, config);
    EXPECT_EQ(stats.totalCycles, 123u);
    EXPECT_EQ(stats.instructions, 123u);
}

TEST(Machine, ColdAccessCostsIssuePlusMemory)
{
    auto trace = singleThread({mem(false, 0x1000, 4)});
    MachineConfig config;
    config.raceDetection = false;
    const auto stats = simulate(trace, config);
    EXPECT_EQ(stats.totalCycles, 1u + 120u);
    EXPECT_EQ(stats.memoryAccesses, 1u);
}

TEST(Machine, WarmAccessCostsIssuePlusL1)
{
    auto trace =
        singleThread({mem(false, 0x1000, 4), mem(false, 0x1000, 4)});
    MachineConfig config;
    config.raceDetection = false;
    const auto stats = simulate(trace, config);
    EXPECT_EQ(stats.totalCycles, 121u + 2u);
}

TEST(Machine, DetectionAddsMetadataCost)
{
    auto trace = singleThread({mem(true, 0x1000, 4)});
    MachineConfig off, on;
    off.raceDetection = false;
    on.raceDetection = true;
    const auto a = simulate(trace, off);
    const auto b = simulate(trace, on);
    EXPECT_GT(b.totalCycles, a.totalCycles);
    EXPECT_EQ(b.hw.sharedAccesses(), 1u);
}

TEST(Machine, PrivateAccessesSkipTheCheck)
{
    auto trace = singleThread({mem(true, 0x1000, 4, true)});
    MachineConfig config;
    const auto stats = simulate(trace, config);
    EXPECT_EQ(stats.hw.privateAccesses, 1u);
    EXPECT_EQ(stats.hw.sharedAccesses(), 0u);
    // Only data traffic: same cost as detection-off.
    EXPECT_EQ(stats.totalCycles, 121u);
}

TEST(Machine, SyncOpsCost100)
{
    Trace trace;
    trace.perThread.push_back(
        {sync(TraceEvent::Kind::Acquire, 0, 0),
         sync(TraceEvent::Kind::Release, 0, 1)});
    trace.objects.push_back({TraceSyncObject::Kind::Mutex, 0, 2});
    trace.minAddr = 0x1000;
    trace.maxAddr = 0x2000;
    MachineConfig config;
    const auto stats = simulate(trace, config);
    EXPECT_EQ(stats.totalCycles, 200u);
    EXPECT_EQ(stats.syncOps, 2u);
}

TEST(Machine, RecordedLockOrderIsEnforced)
{
    // Thread 1 acquired first in the recording; thread 0's acquire has
    // seq 2 and must wait for thread 1's release even though thread 0
    // is otherwise free to run.
    Trace trace;
    trace.perThread.resize(2);
    trace.perThread[0] = {sync(TraceEvent::Kind::Acquire, 0, 2),
                          sync(TraceEvent::Kind::Release, 0, 3)};
    trace.perThread[1] = {compute(1000),
                          sync(TraceEvent::Kind::Acquire, 0, 0),
                          sync(TraceEvent::Kind::Release, 0, 1)};
    trace.objects.push_back({TraceSyncObject::Kind::Mutex, 0, 4});
    trace.minAddr = 0x1000;
    trace.maxAddr = 0x2000;
    MachineConfig config;
    const auto stats = simulate(trace, config);
    // Thread 0's acquire waits for t1: 1000 + 100 + 100, then its own
    // two ops at +100 each.
    EXPECT_EQ(stats.coreCycles[0], 1000u + 400u);
}

TEST(Machine, BarrierReleasesAllAtLatestArrival)
{
    Trace trace;
    trace.perThread.resize(2);
    trace.perThread[0] = {compute(50),
                          sync(TraceEvent::Kind::BarrierArrive, 0, 0),
                          compute(10)};
    trace.perThread[1] = {compute(500),
                          sync(TraceEvent::Kind::BarrierArrive, 0, 1),
                          compute(10)};
    trace.objects.push_back({TraceSyncObject::Kind::Barrier, 2, 2});
    trace.minAddr = 0x1000;
    trace.maxAddr = 0x2000;
    MachineConfig config;
    const auto stats = simulate(trace, config);
    // Release at max(50, 500) + 100 = 600; both finish at 610.
    EXPECT_EQ(stats.coreCycles[0], 610u);
    EXPECT_EQ(stats.coreCycles[1], 610u);
}

TEST(Machine, BarrierWorksAcrossGenerations)
{
    Trace trace;
    trace.perThread.resize(2);
    for (int t = 0; t < 2; ++t) {
        std::vector<TraceEvent> events;
        for (std::uint32_t g = 0; g < 3; ++g) {
            events.push_back(compute(10 * (t + 1)));
            events.push_back(sync(TraceEvent::Kind::BarrierArrive, 0,
                                  g * 2 + static_cast<std::uint32_t>(t)));
        }
        trace.perThread[t] = events;
    }
    trace.objects.push_back({TraceSyncObject::Kind::Barrier, 2, 6});
    trace.minAddr = 0x1000;
    trace.maxAddr = 0x2000;
    MachineConfig config;
    const auto stats = simulate(trace, config);
    EXPECT_EQ(stats.coreCycles[0], stats.coreCycles[1]);
    EXPECT_EQ(stats.syncOps, 6u);
}

TEST(Machine, CoherenceChargesRemoteHits)
{
    // Core 1 reads a line core 0 wrote: remote L2 hit (15) not memory.
    Trace trace;
    trace.perThread.resize(2);
    trace.perThread[0] = {mem(true, 0x1000, 4),
                          sync(TraceEvent::Kind::Release, 0, 0)};
    trace.perThread[1] = {sync(TraceEvent::Kind::Acquire, 0, 1),
                          mem(false, 0x1000, 4)};
    trace.objects.push_back({TraceSyncObject::Kind::Mutex, 0, 2});
    trace.minAddr = 0x1000;
    trace.maxAddr = 0x2000;
    MachineConfig config;
    config.raceDetection = false;
    const auto stats = simulate(trace, config);
    // t1: waits for release at 221; acquire at 321; read 15+1.
    EXPECT_EQ(stats.coreCycles[1], 321u + 16u);
}

TEST(Machine, HbOrderedSharingIsNotARace)
{
    Trace trace;
    trace.perThread.resize(2);
    trace.perThread[0] = {mem(true, 0x1000, 4),
                          sync(TraceEvent::Kind::Release, 0, 0)};
    trace.perThread[1] = {sync(TraceEvent::Kind::Acquire, 0, 1),
                          mem(false, 0x1000, 4)};
    trace.objects.push_back({TraceSyncObject::Kind::Mutex, 0, 2});
    trace.minAddr = 0x1000;
    trace.maxAddr = 0x2000;
    MachineConfig config;
    const auto stats = simulate(trace, config);
    EXPECT_EQ(stats.hw.racesDetected, 0u);
}

TEST(Machine, UnorderedSharingIsCountedAsRace)
{
    Trace trace;
    trace.perThread.resize(2);
    trace.perThread[0] = {mem(true, 0x1000, 4)};
    trace.perThread[1] = {compute(10000), mem(false, 0x1000, 4)};
    trace.minAddr = 0x1000;
    trace.maxAddr = 0x2000;
    MachineConfig config;
    const auto stats = simulate(trace, config);
    EXPECT_GE(stats.hw.racesDetected, 1u);
}

TEST(Machine, ReplayIsDeterministic)
{
    Trace trace;
    trace.perThread.resize(4);
    for (unsigned t = 0; t < 4; ++t) {
        std::vector<TraceEvent> events;
        for (int i = 0; i < 50; ++i) {
            events.push_back(compute(t * 3 + 1));
            events.push_back(
                mem(i % 2 == 0, 0x1000 + t * 0x100 + (i % 16) * 8, 8));
        }
        trace.perThread[t] = events;
    }
    trace.minAddr = 0x1000;
    trace.maxAddr = 0x2000;
    MachineConfig config;
    const auto a = simulate(trace, config);
    const auto b = simulate(trace, config);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.coreCycles, b.coreCycles);
    EXPECT_EQ(a.hw.fastAccesses, b.hw.fastAccesses);
}

Trace
fourThreadMix()
{
    Trace trace;
    trace.perThread.resize(4);
    for (unsigned t = 0; t < 4; ++t) {
        std::vector<TraceEvent> events;
        for (std::uint32_t g = 0; g < 4; ++g) {
            events.push_back(compute(20 * (t + 1)));
            events.push_back(
                mem(t % 2 == 0, 0x1000 + t * 0x200 + g * 8, 8));
            events.push_back(sync(TraceEvent::Kind::BarrierArrive, 0,
                                  g * 4 + t));
        }
        trace.perThread[t] = events;
    }
    trace.objects.push_back({TraceSyncObject::Kind::Barrier, 4, 16});
    trace.minAddr = 0x1000;
    trace.maxAddr = 0x2000;
    return trace;
}

TEST(MachineScheduled, TimeSharingCompletesAndSwitches)
{
    const auto trace = fourThreadMix();
    MachineConfig config;
    config.cores = 2;
    const auto stats = simulate(trace, config);
    EXPECT_EQ(stats.coreCycles.size(), 2u);
    EXPECT_GT(stats.contextSwitches, 0u);
    EXPECT_EQ(stats.syncOps, 16u);
    EXPECT_EQ(stats.hw.racesDetected, 0u);
}

TEST(MachineScheduled, FewerCoresTakeLonger)
{
    const auto trace = fourThreadMix();
    MachineConfig wide, narrow;
    narrow.cores = 1;
    const auto w = simulate(trace, wide);
    const auto n = simulate(trace, narrow);
    EXPECT_GT(n.totalCycles, w.totalCycles);
}

TEST(MachineScheduled, DetectionSemanticsUnchanged)
{
    // An unordered write/read pair must be flagged regardless of how
    // many cores execute the trace.
    Trace trace;
    trace.perThread.resize(3);
    trace.perThread[0] = {mem(true, 0x1000, 4)};
    trace.perThread[1] = {compute(5000), mem(false, 0x1000, 4)};
    trace.perThread[2] = {compute(10)};
    trace.minAddr = 0x1000;
    trace.maxAddr = 0x2000;
    MachineConfig config;
    config.cores = 2;
    const auto stats = simulate(trace, config);
    EXPECT_GE(stats.hw.racesDetected, 1u);
}

TEST(MachineScheduled, ReplayIsDeterministic)
{
    const auto trace = fourThreadMix();
    MachineConfig config;
    config.cores = 2;
    const auto a = simulate(trace, config);
    const auto b = simulate(trace, config);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.contextSwitches, b.contextSwitches);
}

TEST(MachineScheduled, CoresEqualThreadsUsesUnscheduledPath)
{
    const auto trace = fourThreadMix();
    MachineConfig a, b;
    a.cores = 0;
    b.cores = 4; // not < threads: same path
    const auto ra = simulate(trace, a);
    const auto rb = simulate(trace, b);
    EXPECT_EQ(ra.totalCycles, rb.totalCycles);
    EXPECT_EQ(ra.contextSwitches, 0u);
    EXPECT_EQ(rb.contextSwitches, 0u);
}

TEST(MachineDeath, IncompleteBarrierGenerationDeadlocks)
{
    Trace trace;
    trace.perThread.resize(2);
    trace.perThread[0] = {sync(TraceEvent::Kind::BarrierArrive, 0, 0)};
    trace.perThread[1] = {}; // never arrives
    trace.objects.push_back({TraceSyncObject::Kind::Barrier, 2, 1});
    trace.minAddr = 0x1000;
    trace.maxAddr = 0x2000;
    MachineConfig config;
    EXPECT_DEATH(simulate(trace, config), "deadlock");
}

} // namespace
} // namespace clean::sim
