/**
 * @file
 * Minimal logging/assertion facilities in the gem5 spirit.
 *
 * panic()  — an internal invariant was violated (library bug); aborts.
 * fatal()  — the user asked for something impossible (bad config); exits.
 * warn()   — something questionable happened but execution continues.
 * inform() — status messages.
 */

#ifndef CLEAN_SUPPORT_LOGGING_H
#define CLEAN_SUPPORT_LOGGING_H

#include <cstdarg>
#include <string>

namespace clean
{

/** Severity for Logger::log. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail
{
/** Formats printf-style and routes to stderr; terminates for Fatal/Panic. */
[[gnu::format(printf, 2, 3)]]
void logMessage(LogLevel level, const char *fmt, ...);
} // namespace detail

/** Report an unrecoverable internal error and abort (library bug). */
[[noreturn, gnu::format(printf, 1, 2)]]
void panic(const char *fmt, ...);

/** Report an unrecoverable user/configuration error and exit(1). */
[[noreturn, gnu::format(printf, 1, 2)]]
void fatal(const char *fmt, ...);

/** Report a suspicious-but-survivable condition. */
[[gnu::format(printf, 1, 2)]]
void warn(const char *fmt, ...);

/** Report normal status. Suppressed unless CLEAN_VERBOSE is set. */
[[gnu::format(printf, 1, 2)]]
void inform(const char *fmt, ...);

/** True when CLEAN_VERBOSE is set in the environment. */
bool verboseEnabled();

namespace detail
{
/** Prints an assertion failure (with optional printf detail) and aborts. */
[[noreturn, gnu::format(printf, 4, 5)]]
void assertFail(const char *cond, const char *file, int line,
                const char *fmt, ...);
} // namespace detail

/**
 * Assert an internal invariant; compiled in all build types because the
 * race-detection guarantees depend on these holding. Optional printf
 * detail: CLEAN_ASSERT(x > 0, "x=%d", x).
 */
#define CLEAN_ASSERT(cond, ...)                                            \
    do {                                                                   \
        if (CLEAN_UNLIKELY(!(cond)))                                       \
            ::clean::detail::assertFail(#cond, __FILE__, __LINE__,         \
                                        " " __VA_ARGS__);                  \
    } while (0)

} // namespace clean

#endif // CLEAN_SUPPORT_LOGGING_H
