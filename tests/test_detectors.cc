/**
 * @file
 * Baseline-detector tests: FastTrack (full precision, all three race
 * kinds) and TsanLite (documented imprecision).
 */

#include <gtest/gtest.h>

#include "detectors/fasttrack.h"
#include "detectors/tsan_lite.h"

namespace clean::detectors
{
namespace
{

constexpr Addr kA = 0x1000;

template <typename D>
std::unique_ptr<D>
makeDetector(ThreadId threads = 4)
{
    return std::make_unique<D>(kDefaultEpochConfig, threads);
}

TEST(FastTrack, NoRaceOnFreshData)
{
    auto d = makeDetector<FastTrackDetector>();
    d->onRead(1, kA, 4);
    d->onWrite(1, kA, 4);
    EXPECT_EQ(d->reportCount(), 0u);
}

TEST(FastTrack, DetectsWaw)
{
    auto d = makeDetector<FastTrackDetector>();
    d->onWrite(1, kA, 4);
    d->onWrite(2, kA, 4);
    ASSERT_GE(d->reportCount(), 1u);
    EXPECT_EQ(d->reports()[0].kind, RaceKind::Waw);
    EXPECT_EQ(d->reports()[0].current, 2u);
    EXPECT_EQ(d->reports()[0].previous, 1u);
}

TEST(FastTrack, DetectsRaw)
{
    auto d = makeDetector<FastTrackDetector>();
    d->onWrite(1, kA, 4);
    d->onRead(2, kA, 4);
    ASSERT_GE(d->reportCount(), 1u);
    EXPECT_EQ(d->reports()[0].kind, RaceKind::Raw);
}

TEST(FastTrack, DetectsWar)
{
    auto d = makeDetector<FastTrackDetector>();
    d->onRead(1, kA, 4);
    d->onWrite(2, kA, 4);
    ASSERT_GE(d->reportCount(), 1u);
    EXPECT_EQ(d->reports()[0].kind, RaceKind::War);
}

TEST(FastTrack, DetectsWarAgainstNonLastRead)
{
    // The case CLEAN cannot see and FastTrack's read VC exists for:
    // two concurrent readers, then a writer ordered after only one.
    auto d = makeDetector<FastTrackDetector>();
    d->onRead(1, kA, 1);
    d->onRead(2, kA, 1); // concurrent reads -> promoted to read VC
    // Thread 3 synchronizes with thread 2 only.
    d->onRelease(2, 7);
    d->onAcquire(3, 7);
    d->onWrite(3, kA, 1);
    ASSERT_GE(d->reportCount(), 1u);
    EXPECT_EQ(d->reports()[0].kind, RaceKind::War);
    EXPECT_EQ(d->reports()[0].previous, 1u);
}

TEST(FastTrack, LockOrderingSuppressesRaces)
{
    auto d = makeDetector<FastTrackDetector>();
    d->onWrite(1, kA, 4);
    d->onRelease(1, 42);
    d->onAcquire(2, 42);
    d->onWrite(2, kA, 4);
    d->onRead(2, kA, 4);
    EXPECT_EQ(d->reportCount(), 0u);
}

TEST(FastTrack, ForkJoinOrdering)
{
    auto d = makeDetector<FastTrackDetector>();
    d->onWrite(0, kA, 8);
    d->onFork(0, 1);
    d->onRead(1, kA, 8); // ordered by fork
    d->onWrite(1, kA, 8);
    d->onJoin(0, 1);
    d->onWrite(0, kA, 8); // ordered by join
    EXPECT_EQ(d->reportCount(), 0u);
}

TEST(FastTrack, SameThreadNeverRaces)
{
    auto d = makeDetector<FastTrackDetector>();
    for (int i = 0; i < 10; ++i) {
        d->onWrite(1, kA, 4);
        d->onRead(1, kA, 4);
    }
    EXPECT_EQ(d->reportCount(), 0u);
}

TEST(FastTrack, ByteGranularityIsExact)
{
    auto d = makeDetector<FastTrackDetector>();
    d->onWrite(1, kA, 1);
    d->onWrite(2, kA + 1, 1); // adjacent, disjoint
    EXPECT_EQ(d->reportCount(), 0u);
    d->onWrite(2, kA, 1);
    EXPECT_GE(d->reportCount(), 1u);
}

TEST(FastTrack, ReadSharedThenOrderedReadsNoRace)
{
    auto d = makeDetector<FastTrackDetector>();
    d->onRead(1, kA, 1);
    d->onRead(2, kA, 1);
    d->onRead(3, kA, 1);
    EXPECT_EQ(d->reportCount(), 0u);
}

TEST(FastTrack, DetectsWarFromReadVcAfterWrite)
{
    auto d = makeDetector<FastTrackDetector>();
    d->onRead(1, kA, 1);
    d->onRead(2, kA, 1);
    d->onWrite(3, kA, 1); // races with both readers
    EXPECT_GE(d->reportCount(), 2u);
}

TEST(TsanLite, DetectsSimpleWaw)
{
    auto d = makeDetector<TsanLiteDetector>();
    d->onWrite(1, kA, 4);
    d->onWrite(2, kA, 4);
    ASSERT_GE(d->reportCount(), 1u);
    EXPECT_EQ(d->reports()[0].kind, RaceKind::Waw);
}

TEST(TsanLite, DetectsSimpleRawAndWar)
{
    auto d = makeDetector<TsanLiteDetector>();
    d->onWrite(1, kA, 4);
    d->onRead(2, kA, 4);
    d->onWrite(3, kA + 8, 4);
    d->onRead(1, kA + 8, 4);
    ASSERT_GE(d->reportCount(), 2u);
}

TEST(TsanLite, HbViaLockSuppresses)
{
    auto d = makeDetector<TsanLiteDetector>();
    d->onWrite(1, kA, 4);
    d->onRelease(1, 5);
    d->onAcquire(2, 5);
    d->onWrite(2, kA, 4);
    EXPECT_EQ(d->reportCount(), 0u);
}

TEST(TsanLite, DisjointBytesInOneCellDoNotRace)
{
    auto d = makeDetector<TsanLiteDetector>();
    d->onWrite(1, kA, 2);
    d->onWrite(2, kA + 2, 2); // same 8-byte cell, disjoint mask
    EXPECT_EQ(d->reportCount(), 0u);
}

TEST(TsanLite, MissesRacesBeyondKRecords)
{
    // k = 4 records per cell: five writers of *different* bytes evict
    // the first record; a race with the evicted access is missed.
    auto d = makeDetector<TsanLiteDetector>();
    d->onWrite(1, kA + 0, 1);
    d->onWrite(2, kA + 1, 1);
    d->onWrite(3, kA + 2, 1);
    d->onWrite(1, kA + 3, 1);
    d->onWrite(2, kA + 4, 1); // evicts the record of (1, kA+0)
    const auto before = d->reportCount();
    d->onWrite(3, kA + 0, 1); // true WAW with thread 1, forgotten
    // The race with thread 1 is missed (only records still present can
    // fire). Any reports here would be against remembered accesses.
    for (std::size_t i = before; i < d->reports().size(); ++i)
        EXPECT_NE(d->reports()[i].previous, 1u);
}

TEST(TsanLite, ReadsDoNotRaceWithReads)
{
    auto d = makeDetector<TsanLiteDetector>();
    d->onRead(1, kA, 8);
    d->onRead(2, kA, 8);
    d->onRead(3, kA, 8);
    EXPECT_EQ(d->reportCount(), 0u);
}

TEST(Detectors, ReportCapBoundsMemory)
{
    auto d = makeDetector<TsanLiteDetector>();
    // Generate far more races than the storage cap.
    for (int i = 0; i < 1000; ++i) {
        d->onWrite(1, kA, 8);
        d->onWrite(2, kA, 8);
    }
    EXPECT_GE(d->reportCount(), 1000u);
    EXPECT_LE(d->reports().size(), Detector::kMaxStoredReports);
}

} // namespace
} // namespace clean::detectors
