/**
 * @file
 * Quickstart: the CLEAN execution model in 80 lines.
 *
 * Demonstrates the three §3.1 guarantees on toy code:
 *   1. WAW/RAW races throw a RaceException immediately;
 *   2. WAR races are allowed — the execution completes;
 *   3. completed executions are deterministic.
 *
 * Build & run: ./build/examples/quickstart
 */

#include <cstdio>
#include <vector>

#include "core/clean.h"

using namespace clean;

int
main()
{
    std::printf("== CLEAN quickstart ==\n\n");

    // --- 1. A data race stops the execution -----------------------
    {
        CleanRuntime rt;
        auto *counter = rt.heap().allocSharedArray<int>(1);
        auto h = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
            for (int i = 0; i < 1000000; ++i)
                ctx.write(&counter[0], ctx.read(&counter[0]) + 1);
        });
        bool caught = false;
        try {
            // Unsynchronized with the child: a WAW/RAW race.
            for (int i = 0; i < 1000000 && !rt.raceOccurred(); ++i) {
                rt.mainContext().write(
                    &counter[0], rt.mainContext().read(&counter[0]) + 1);
            }
        } catch (const RaceException &e) {
            caught = true;
            std::printf("1. race exception (as expected):\n   %s\n",
                        e.what());
        } catch (const ExecutionAborted &) {
            caught = true;
        }
        rt.join(rt.mainContext(), h);
        if (!caught && rt.raceOccurred())
            std::printf("1. race detected in the child thread:\n   %s\n",
                        rt.firstRace()->what());
    }

    // --- 2. Proper locking: no exception, correct result ----------
    {
        CleanRuntime rt;
        auto *counter = rt.heap().allocSharedArray<int>(1);
        CleanMutex m(rt);
        std::vector<ThreadHandle> handles;
        for (int t = 0; t < 4; ++t) {
            handles.push_back(
                rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
                    for (int i = 0; i < 1000; ++i) {
                        m.lock(ctx);
                        ctx.write(&counter[0],
                                  ctx.read(&counter[0]) + 1);
                        m.unlock(ctx);
                    }
                }));
        }
        for (auto &h : handles)
            rt.join(rt.mainContext(), h);
        std::printf("\n2. locked counter: %d (expected 4000), "
                    "races: %s\n",
                    rt.mainContext().read(&counter[0]),
                    rt.raceOccurred() ? "yes" : "no");
    }

    // --- 3. WAR races are tolerated by design ---------------------
    {
        CleanRuntime rt;
        auto *x = rt.heap().allocSharedArray<int>(1);
        auto h = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
            for (int i = 0; i < 10000; ++i)
                ctx.read(&x[0]); // reader
        });
        rt.join(rt.mainContext(), h);
        rt.mainContext().write(&x[0], 42); // writer after reader: WAR
        std::printf("\n3. WAR-style schedule completed, x = %d, "
                    "races: %s\n",
                    rt.mainContext().read(&x[0]),
                    rt.raceOccurred() ? "yes" : "no");
    }

    std::printf("\ndone.\n");
    return 0;
}
