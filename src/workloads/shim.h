/**
 * @file
 * The Worker/Env shim — this library's analogue of the paper's compiler
 * instrumentation (§4.1).
 *
 * Workload kernels perform every potentially-shared access through
 * Worker::read/write and every synchronization operation through
 * Worker::lock/unlock/barrier/cond*. The backend decides what happens
 * per access:
 *
 *   Native   — raw load/store plus a per-worker access counter: the
 *              uninstrumented baseline every slowdown is normalized to.
 *   Clean    — CleanRuntime race check in §4.3 order (throws on races).
 *              Under OnRacePolicy::Recover the same path also feeds the
 *              per-thread SFR undo log (recover/undo_log.h): each write
 *              snapshots its old bytes and displaced shadow epochs
 *              before the check runs, so a RaceException rolls the SFR
 *              back instead of killing the run. The log is armed inside
 *              ThreadContext — no shim change, no cost when recovery is
 *              off.
 *   Hooked   — an arbitrary observer (baseline detectors, the tracer
 *              feeding the hardware simulator) sees the access around a
 *              raw load/store.
 *
 * Memory accesses are dispatched inline on a mode enum so the Native
 * path stays close to uninstrumented; synchronization goes through one
 * virtual call (sync operations are orders of magnitude rarer).
 */

#ifndef CLEAN_WORKLOADS_SHIM_H
#define CLEAN_WORKLOADS_SHIM_H

#include <cstring>
#include <functional>
#include <type_traits>

#include "core/runtime.h"
#include "support/common.h"
#include "support/prng.h"

namespace clean::wl
{

class Worker;

/** Backend hooks a Worker forwards to. */
class Backend
{
  public:
    virtual ~Backend() = default;

    // Synchronization (always virtual; rare).
    virtual void lockOp(Worker &w, unsigned id) = 0;
    virtual void unlockOp(Worker &w, unsigned id) = 0;
    virtual void barrierOp(Worker &w, unsigned id) = 0;
    virtual void condWaitOp(Worker &w, unsigned cond, unsigned mutex) = 0;
    virtual void condSignalOp(Worker &w, unsigned cond) = 0;
    virtual void condBroadcastOp(Worker &w, unsigned cond) = 0;

    // Memory hooks for Mode::Hooked workers (detectors, tracer).
    virtual void readHook(Worker &, Addr, std::size_t) {}
    virtual void writeHook(Worker &, Addr, std::size_t) {}
    /** Private (stack-like) accesses: invisible to detectors, but the
     *  tracer records them so the simulator sees their cache traffic. */
    virtual void privateReadHook(Worker &, Addr, std::size_t) {}
    virtual void privateWriteHook(Worker &, Addr, std::size_t) {}
    /** Pure-compute progress (deterministic events / simulated cycles). */
    virtual void computeHook(Worker &, std::uint64_t) {}
};

/** Per-thread handle a workload kernel runs against. */
class Worker
{
  public:
    enum class Mode { Native, Clean, Hooked };

    Worker(Backend &backend, Mode mode, unsigned index, unsigned count,
           std::uint64_t seed)
        : backend_(backend), mode_(mode), index_(index), count_(count),
          rng_(seed)
    {
    }

    Worker(const Worker &) = delete;
    Worker &operator=(const Worker &) = delete;

    unsigned index() const { return index_; }
    unsigned count() const { return count_; }
    Prng &rng() { return rng_; }
    Backend &backend() { return backend_; }

    /** Set by the Clean backend only. */
    void bindContext(ThreadContext *ctx) { ctx_ = ctx; }
    ThreadContext *context() { return ctx_; }

    /** Instrumented load of a potentially-shared scalar. */
    template <typename T>
    T
    read(const T *p)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        switch (mode_) {
          case Mode::Native: {
            ++reads_;
            bytes_ += sizeof(T);
            T v;
            std::memcpy(&v, p, sizeof(T));
            return v;
          }
          case Mode::Clean:
            return ctx_->read(p);
          case Mode::Hooked: {
            ++reads_;
            bytes_ += sizeof(T);
            T v;
            std::memcpy(&v, p, sizeof(T));
            backend_.readHook(*this, reinterpret_cast<Addr>(p), sizeof(T));
            return v;
          }
        }
        __builtin_unreachable();
    }

    /** Instrumented store of a potentially-shared scalar. */
    template <typename T>
    void
    write(T *p, T v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        switch (mode_) {
          case Mode::Native:
            ++writes_;
            bytes_ += sizeof(T);
            std::memcpy(p, &v, sizeof(T));
            return;
          case Mode::Clean:
            ctx_->write(p, v);
            return;
          case Mode::Hooked:
            ++writes_;
            bytes_ += sizeof(T);
            backend_.writeHook(*this, reinterpret_cast<Addr>(p), sizeof(T));
            std::memcpy(p, &v, sizeof(T));
            return;
        }
    }

    /** read-modify-write convenience. */
    template <typename T, typename F>
    void
    update(T *p, F f)
    {
        write(p, f(read(p)));
    }

    /**
     * Load of thread-private (stack-like) data. The paper's compiler
     * instrumentation skips accesses to locals whose address never
     * escapes (§4.1); the hardware simulator still models their cache
     * traffic as "private" accesses (Figure 10).
     */
    template <typename T>
    T
    readPrivate(const T *p)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v;
        std::memcpy(&v, p, sizeof(T));
        switch (mode_) {
          case Mode::Native:
            ++privateAccesses_;
            break;
          case Mode::Clean:
            ctx_->detTick(1);
            break;
          case Mode::Hooked:
            ++privateAccesses_;
            backend_.privateReadHook(*this, reinterpret_cast<Addr>(p),
                                     sizeof(T));
            break;
        }
        return v;
    }

    /** Store to thread-private data; see readPrivate. */
    template <typename T>
    void
    writePrivate(T *p, T v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        std::memcpy(p, &v, sizeof(T));
        switch (mode_) {
          case Mode::Native:
            ++privateAccesses_;
            break;
          case Mode::Clean:
            ctx_->detTick(1);
            break;
          case Mode::Hooked:
            ++privateAccesses_;
            backend_.privateWriteHook(*this, reinterpret_cast<Addr>(p),
                                      sizeof(T));
            break;
        }
    }

    // Synchronization.
    void lock(unsigned m) { backend_.lockOp(*this, m); }
    void unlock(unsigned m) { backend_.unlockOp(*this, m); }
    void barrier(unsigned b) { backend_.barrierOp(*this, b); }
    void condWait(unsigned c, unsigned m) { backend_.condWaitOp(*this, c, m); }
    void condSignal(unsigned c) { backend_.condSignalOp(*this, c); }
    void condBroadcast(unsigned c) { backend_.condBroadcastOp(*this, c); }

    /** Declares @p n units of pure computation (simulated ALU work /
     *  deterministic events between accesses). */
    void
    compute(std::uint64_t n)
    {
        if (mode_ == Mode::Clean)
            ctx_->detTick(n);
        else
            backend_.computeHook(*this, n);
    }

    /** Folds a value into this worker's deterministic output hash. */
    void
    sink(std::uint64_t v)
    {
        hash_ ^= v + 0x9e3779b97f4a7c15ULL + (hash_ << 6) + (hash_ >> 2);
    }

    std::uint64_t sinkHash() const { return hash_; }
    std::uint64_t nativeReads() const { return reads_; }
    std::uint64_t nativeWrites() const { return writes_; }
    std::uint64_t nativeBytes() const { return bytes_; }
    std::uint64_t privateAccesses() const { return privateAccesses_; }

  private:
    Backend &backend_;
    Mode mode_;
    unsigned index_;
    unsigned count_;
    Prng rng_;
    ThreadContext *ctx_ = nullptr;
    std::uint64_t hash_ = 0;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t bytes_ = 0;
    std::uint64_t privateAccesses_ = 0;
};

/** What a workload kernel sees: allocation, sync objects, parallelism. */
class Env
{
  public:
    virtual ~Env() = default;

    virtual void *allocSharedRaw(std::size_t bytes) = 0;
    virtual void *allocPrivateRaw(std::size_t bytes) = 0;

    template <typename T>
    T *
    allocShared(std::size_t count)
    {
        return static_cast<T *>(allocSharedRaw(count * sizeof(T)));
    }

    template <typename T>
    T *
    allocPrivate(std::size_t count)
    {
        return static_cast<T *>(allocPrivateRaw(count * sizeof(T)));
    }

    virtual unsigned createMutex() = 0;
    virtual unsigned createBarrier(unsigned parties) = 0;
    virtual unsigned createCond() = 0;

    /** Runs @p fn on @p n concurrent workers and waits for all. */
    virtual void parallel(unsigned n,
                          const std::function<void(Worker &)> &fn) = 0;

    /** Registers the result region hashed into the output fingerprint. */
    virtual void declareOutput(const void *data, std::size_t bytes) = 0;
};

} // namespace clean::wl

#endif // CLEAN_WORKLOADS_SHIM_H
