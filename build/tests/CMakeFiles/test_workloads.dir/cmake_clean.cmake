file(REMOVE_RECURSE
  "CMakeFiles/test_workloads.dir/test_backend.cc.o"
  "CMakeFiles/test_workloads.dir/test_backend.cc.o.d"
  "CMakeFiles/test_workloads.dir/test_integration.cc.o"
  "CMakeFiles/test_workloads.dir/test_integration.cc.o.d"
  "CMakeFiles/test_workloads.dir/test_runner.cc.o"
  "CMakeFiles/test_workloads.dir/test_runner.cc.o.d"
  "CMakeFiles/test_workloads.dir/test_workload_semantics.cc.o"
  "CMakeFiles/test_workloads.dir/test_workload_semantics.cc.o.d"
  "CMakeFiles/test_workloads.dir/test_workloads.cc.o"
  "CMakeFiles/test_workloads.dir/test_workloads.cc.o.d"
  "test_workloads"
  "test_workloads.pdb"
  "test_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
