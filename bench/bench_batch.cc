/**
 * @file
 * Microbenchmarks of batched SFR-boundary read checking (this PR).
 *
 * The claim under test: for streaming kernels, appending a coalesced
 * run entry and retiring the checks in one wide shadow walk at the
 * drain beats even the ownership-cache *hit* path per access — the
 * batched lanes here are measured against the same-line hit lane and
 * against the inline streaming path with and without the cache.
 *
 * Lanes ending in `_Batch` run with deferred read checks (the runtime
 * default); `_NoBatch` lanes are the `--no-batch` ablation, bit for bit
 * the inline checker. Overflow drains fire naturally at batchBytes, so
 * every batched lane's per-item time includes its amortized share of
 * the drain — nothing is hidden outside the timed region.
 */

#include <benchmark/benchmark.h>

#include "core/linear_shadow.h"
#include "core/race_check.h"
#include "core/thread_state.h"

namespace clean
{
namespace
{

constexpr Addr kBase = 0x100000000;
constexpr std::size_t kSpan = 1 << 22;
/** Streamed region: larger than the 32 KiB ownership cache, smaller
 *  than the shadow span. */
constexpr std::size_t kStream = 1 << 20;

struct Fixture
{
    explicit Fixture(CheckerConfig config = {})
        : shadow(kBase, kSpan), checker(config, shadow),
          self(config.epoch, 0, 8)
    {
        self.vc.setClock(0, 1);
        self.refreshOwnEpoch();
    }

    /** Publishes self's epoch over the whole streamed region so every
     *  deferred check resolves on the all-equal scan path. */
    void
    own(std::size_t bytes = kStream)
    {
        for (Addr a = kBase; a < kBase + bytes; a += 256)
            checker.beforeWrite(self, a, 256);
    }

    LinearShadow shadow;
    RaceChecker<LinearShadow> checker;
    ThreadState self;
};

CheckerConfig
batchConfig()
{
    CheckerConfig config;
    config.batch = true;
    return config;
}

/**
 * Headline: streaming 8-byte reads over Arg bytes, batched. Appends
 * coalesce into one run per drain window; the overflow drain at
 * batchBytes retires 64 KiB of checks per wide walk. The 256 KiB
 * region keeps the 4x-sized shadow L2-resident (the regime where
 * batching undercuts even the ownership-cache hit lane); at 1 MiB the
 * drain streams shadow from L3 and the walk's bandwidth dominates.
 */
void
BM_StreamRead8B_Batch(benchmark::State &state)
{
    const std::size_t region = static_cast<std::size_t>(state.range(0));
    Fixture f(batchConfig());
    f.own(region);
    Addr a = kBase;
    for (auto _ : state) {
        f.checker.afterRead(f.self, a, 8);
        a += 8;
        if (a >= kBase + region)
            a = kBase;
    }
    f.checker.drainBatch(f.self);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamRead8B_Batch)->Arg(256 << 10)->Arg(1 << 20);

/** The --no-batch ablation: same access stream, inline checks (the
 *  ownership cache claims each 64B line on first touch, so 7 of 8
 *  accesses are cache hits). */
void
BM_StreamRead8B_NoBatch(benchmark::State &state)
{
    const std::size_t region = static_cast<std::size_t>(state.range(0));
    Fixture f;
    f.own(region);
    Addr a = kBase;
    for (auto _ : state) {
        f.checker.afterRead(f.self, a, 8);
        a += 8;
        if (a >= kBase + region)
            a = kBase;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamRead8B_NoBatch)->Arg(256 << 10)->Arg(1 << 20);

/** Inline with the ownership cache ablated too: the PR 2 same-epoch
 *  scan per access. */
void
BM_StreamRead8B_NoBatchNoOwnCache(benchmark::State &state)
{
    const std::size_t region = static_cast<std::size_t>(state.range(0));
    CheckerConfig config;
    config.ownCache = false;
    Fixture f(config);
    f.own(region);
    Addr a = kBase;
    for (auto _ : state) {
        f.checker.afterRead(f.self, a, 8);
        a += 8;
        if (a >= kBase + region)
            a = kBase;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamRead8B_NoBatchNoOwnCache)->Arg(256 << 10)->Arg(1 << 20);

/** The bar the ISSUE sets: the ownership-cache *hit* path, same line
 *  re-read forever (BM_ReadCheckSameEpoch8B's shape, measured in this
 *  binary so the comparison shares a process and a JSON file). */
void
BM_ReadOwnCacheHit8B(benchmark::State &state)
{
    Fixture f;
    f.checker.beforeWrite(f.self, kBase, 64);
    for (auto _ : state)
        f.checker.afterRead(f.self, kBase, 8);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadOwnCacheHit8B);

/**
 * Drain throughput: one maximally-coalesced run of Arg bytes, then the
 * boundary drain. Bytes/s is the wide-scan walk rate (appends included
 * in the timed region; they are the cheap part).
 */
void
BM_BatchDrainThroughput(benchmark::State &state)
{
    const std::size_t bytes = static_cast<std::size_t>(state.range(0));
    CheckerConfig config = batchConfig();
    config.batchBytes = bytes + 64; // drain at the boundary, not mid-run
    Fixture f(config);
    f.own();
    for (auto _ : state) {
        for (Addr a = kBase; a < kBase + bytes; a += 8)
            f.checker.afterRead(f.self, a, 8);
        f.checker.drainBatch(f.self);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * bytes));
}
BENCHMARK(BM_BatchDrainThroughput)
    ->Arg(4 << 10)
    ->Arg(64 << 10)
    ->Arg(256 << 10);

/** Access-width sweep: batching must win at every width, and wider
 *  accesses amortize the append even further. */
void
BM_StreamReadWidthSweep_Batch(benchmark::State &state)
{
    const std::size_t width = static_cast<std::size_t>(state.range(0));
    Fixture f(batchConfig());
    f.own();
    Addr a = kBase;
    for (auto _ : state) {
        f.checker.afterRead(f.self, a, width);
        a += width;
        if (a >= kBase + kStream)
            a = kBase;
    }
    f.checker.drainBatch(f.self);
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * width));
}
BENCHMARK(BM_StreamReadWidthSweep_Batch)->Arg(1)->Arg(4)->Arg(8)->Arg(16)->
    Arg(64);

void
BM_StreamReadWidthSweep_NoBatch(benchmark::State &state)
{
    const std::size_t width = static_cast<std::size_t>(state.range(0));
    Fixture f;
    f.own();
    Addr a = kBase;
    for (auto _ : state) {
        f.checker.afterRead(f.self, a, width);
        a += width;
        if (a >= kBase + kStream)
            a = kBase;
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * width));
}
BENCHMARK(BM_StreamReadWidthSweep_NoBatch)->Arg(1)->Arg(4)->Arg(8)->
    Arg(16)->Arg(64);

/**
 * Non-coalescable worst case: every access opens a new run (stride
 * breaks contiguity), so batching degenerates to one table entry per
 * access plus a many-run drain. This lane bounds the regression the
 * batched default can cost on pointer-chasing kernels.
 */
void
BM_ScatterRead8B_Batch(benchmark::State &state)
{
    Fixture f(batchConfig());
    f.own();
    Addr a = kBase;
    for (auto _ : state) {
        f.checker.afterRead(f.self, a, 8);
        a += 4096;
        if (a >= kBase + kStream)
            a = kBase + ((a + 8) & 0xfff);
    }
    f.checker.drainBatch(f.self);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScatterRead8B_Batch);

void
BM_ScatterRead8B_NoBatch(benchmark::State &state)
{
    Fixture f;
    f.own();
    Addr a = kBase;
    for (auto _ : state) {
        f.checker.afterRead(f.self, a, 8);
        a += 4096;
        if (a >= kBase + kStream)
            a = kBase + ((a + 8) & 0xfff);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScatterRead8B_NoBatch);

} // namespace
} // namespace clean

BENCHMARK_MAIN();
