/**
 * @file
 * Chaos / soak harness for CLEAN's failure semantics.
 *
 * Sweeps deterministic fault-injection seeds over the workload suite and
 * checks the robustness invariant the paper's "cleaner semantics" rest
 * on: every injected fault ends the run in exactly one of
 *
 *   clean completion | RaceException | DeadlockError
 *
 * — never a hang (the watchdog bounds every blocking wait), never a
 * crash, never silent wrong output (race-free runs must reproduce the
 * reference output hash). Because injection decisions are pure functions
 * of (seed, tid, site index), re-running any seed must reproduce the
 * identical outcome; the sweep replays a sample of seeds and fails on
 * any divergence.
 *
 * A second lane sweeps OnRacePolicy::Recover (ISSUE 3): race-free
 * workloads run with SkipAcquire faults only — the physical lock still
 * serializes the data, so every injected race is metadata-only and
 * recovery must converge on the reference output. Each recover seed runs
 * twice and the replay must reproduce the output hash AND the recovery
 * episode counts.
 *
 * A third lane crosses the sampling governor with fault injection
 * (ISSUE 8): every sweep fault kind — including kill-thread and
 * force-rollover — runs again under an active --overhead-budget, half
 * the seeds governed and half pinned to a deep forced level so read
 * shedding is guaranteed to be live while the fault fires. The
 * invariants are unchanged (clean | race | deadlock, exit-code
 * discipline, reference output on clean race-free completions — shed
 * read *checks* must never corrupt data), and under --audit=replay the
 * budgeted recordings must replay like any others.
 *
 * Usage:
 *   chaos_soak                          # 200 runs, the default sweep
 *   chaos_soak --runs=500 --threads=8
 *   chaos_soak --seed-base=1000 --replay-every=5 --verbose
 *   chaos_soak --seed=137 --verbose     # replay one seed and exit
 *   chaos_soak --runs=0 --recover-runs=100   # recover lane only
 *   chaos_soak --audit=replay           # trace-driven determinism audit
 *   chaos_soak --runs=0 --budget-runs=50     # sampling-governor lane only
 *
 * The determinism audit has two modes (--audit=rerun|replay, default
 * rerun). `rerun` re-executes a sample of seeds and compares outcomes.
 * `replay` is the stronger ISSUE 6 check: each sampled seed is
 * re-recorded to a .cleantrace, then *replayed* from it — the replay
 * must reproduce the outcome and exit code, and for completing runs the
 * failure report and metrics JSON byte-for-byte. The recover lane's
 * second run likewise becomes a replay of the first run's recording.
 *
 * With --artifact-dir=DIR (or CLEAN_ARTIFACT_DIR in the environment —
 * CI red jobs use this) every violating seed is deterministically
 * re-run with the flight recorder enabled and its event trace, failure
 * report, and record/replay trace land in DIR as
 * seed<N>_{trace,report}.json + seed<N>.cleantrace — the last one is a
 * bit-exact local repro: `cleanrun --replay=seed<N>.cleantrace`.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "support/exit_codes.h"
#include "support/options.h"
#include "support/prng.h"
#include "workloads/runner.h"

namespace clean::wl
{
namespace
{

/** Workloads the sweep draws from. Race-free variants double as the
 *  kill-fault targets (a kill on a racy workload makes the race-vs-
 *  deadlock classification a physical coin toss; on a race-free one the
 *  outcome is always the watchdog's DeadlockError). */
const char *const kRaceFree[] = {"fft",       "lu_cb",    "streamcluster",
                                 "swaptions", "water_sp", "blackscholes"};
const char *const kRacy[] = {"radix", "raytrace", "volrend", "ferret",
                             "canneal"};

enum class Outcome { Clean, Race, Deadlock, Violation };

const char *
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Clean: return "clean";
      case Outcome::Race: return "race";
      case Outcome::Deadlock: return "deadlock";
      case Outcome::Violation: return "VIOLATION";
    }
    return "?";
}

struct RunPlan
{
    std::string workload;
    bool racy = false;
    inject::FaultKind kind = inject::FaultKind::SkipCheck;
    OnRacePolicy policy = OnRacePolicy::Throw;
    std::uint32_t maxRecoveries = 8;
    /** Overhead budget in percent; 0 leaves the sampling tier off. */
    std::uint32_t budget = 0;
    /** Pin the admission level (budget lane); -1 lets the governor
     *  drive. */
    std::int32_t forceLevel = -1;
};

/** Expands one sweep seed into a run: workload, fault kind, policy.
 *  Pure function of the seed — replays rebuild the identical plan. */
RunPlan
planFor(std::uint64_t seed)
{
    Prng prng(seed * 0x9e3779b97f4a7c15ULL + 1);
    RunPlan plan;
    const auto kind = static_cast<inject::FaultKind>(prng.nextBelow(5));
    plan.kind = kind;
    if (kind == inject::FaultKind::KillThread) {
        // Kill faults stay on race-free variants (see table comment).
        plan.workload = kRaceFree[prng.nextBelow(std::size(kRaceFree))];
    } else if (prng.nextBool(0.5)) {
        plan.workload = kRaceFree[prng.nextBelow(std::size(kRaceFree))];
    } else {
        plan.workload = kRacy[prng.nextBelow(std::size(kRacy))];
        plan.racy = true;
    }
    // A slice of the non-kill runs exercises the degraded Report path:
    // the run completes, races are only recorded.
    if (kind != inject::FaultKind::KillThread && prng.nextBool(0.25))
        plan.policy = OnRacePolicy::Report;
    return plan;
}

struct SoakResult
{
    Outcome outcome = Outcome::Violation;
    std::string detail;
    std::uint64_t raceCount = 0;
    std::uint64_t outputHash = 0;
    std::uint64_t recovered = 0;
    std::uint64_t attempts = 0;
    std::uint64_t quarantined = 0;
    /** Reads the sampling gate shed (budget lane). */
    std::uint64_t shedReads = 0;
    int exitCode = 0;
    /** Filled only when the run was made with the flight recorder on
     *  (the artifact re-run of a violating seed). */
    std::string obsTrace;
    std::string failureReport;
    /** Metrics snapshot; filled whenever the recorder ran (obs on, or
     *  record/replay forcing it). */
    std::string metricsJson;
    /** A replay fault (divergence / truncation) was latched. */
    bool traceFault = false;
    std::string traceDetail;
};

/** The exit code the run's outcome commits cleanrun to (the soak
 *  cross-checks the classifier against support/exit_codes.h). */
int
expectedExit(const RunPlan &plan, const SoakResult &r)
{
    if (r.outcome == Outcome::Deadlock)
        return static_cast<int>(ExitCode::Deadlock);
    if (r.outcome == Outcome::Race)
        return static_cast<int>(ExitCode::Race);
    if (r.quarantined > 0)
        return static_cast<int>(ExitCode::Quarantine);
    // A degraded-policy run completes with races only recorded; that
    // still fails the process unless the policy actively recovered.
    if (r.raceCount > 0 && plan.policy != OnRacePolicy::Recover)
        return static_cast<int>(ExitCode::Race);
    return static_cast<int>(ExitCode::Ok);
}

SoakResult
runOne(std::uint64_t seed, const RunPlan &plan, unsigned threads,
       std::uint64_t watchdogMs, bool withObs = false,
       const std::string &recordPath = std::string(),
       const std::string &replayPath = std::string())
{
    RunSpec spec;
    spec.workload = plan.workload;
    spec.backend = BackendKind::Clean;
    spec.params.threads = threads;
    spec.params.scale = Scale::Test;
    spec.params.racy = plan.racy;
    spec.runtime.maxThreads = 32;
    spec.runtime.heap.sharedBytes = std::size_t{256} << 20;
    spec.runtime.heap.privateBytes = std::size_t{64} << 20;
    spec.runtime.watchdogMs = watchdogMs;
    spec.runtime.onRace = plan.policy;
    spec.runtime.maxRecoveries = plan.maxRecoveries;
    spec.runtime.obs.enabled = withObs;
    if (plan.budget > 0) {
        spec.runtime.overheadBudget = plan.budget;
        spec.runtime.sampleForceLevel = plan.forceLevel;
        // Short windows so shedding engages at Scale::Test run lengths.
        spec.runtime.sample.windowLog2 = 6;
        spec.runtime.sample.burstWindows = 1;
    }
    spec.recordPath = recordPath;
    spec.replayPath = replayPath;

    auto &inject = spec.runtime.inject;
    inject.enabled = true;
    inject.seed = seed;
    inject.delayMicros = 50;
    switch (plan.kind) {
      case inject::FaultKind::SkipCheck: inject.skipCheckRate = 0.001; break;
      case inject::FaultKind::SkipAcquire:
        inject.skipAcquireRate = 0.05;
        break;
      case inject::FaultKind::Delay: inject.delayRate = 0.001; break;
      case inject::FaultKind::ForceRollover:
        inject.rolloverRate = 0.0005;
        break;
      case inject::FaultKind::KillThread: inject.killRate = 0.0005; break;
      default: break;
    }

    SoakResult soak;
    try {
        const RunResult result = runWorkload(spec);
        soak.raceCount = result.raceCount;
        soak.outputHash = result.outputHash;
        soak.recovered = result.recoveredRaces;
        soak.attempts = result.recoveryAttempts;
        soak.quarantined = result.quarantinedSites;
        soak.shedReads = result.checker.shedReads;
        soak.obsTrace = result.obsTraceJson;
        soak.failureReport = result.failureReport;
        soak.metricsJson = result.metricsJson;
        if (result.traceFault) {
            soak.traceFault = true;
            soak.traceDetail = result.traceFaultKind + ": " +
                               result.traceFaultMessage;
        }
        const bool raceFailed =
            result.raceException ||
            (result.raceCount > 0 &&
             plan.policy != OnRacePolicy::Recover);
        soak.exitCode = exitCodeForRun(result.deadlock,
                                       result.quarantinedSites > 0,
                                       raceFailed);
        if (result.deadlock) {
            soak.outcome = Outcome::Deadlock;
            soak.detail = result.deadlockMessage;
        } else if (result.raceException) {
            soak.outcome = Outcome::Race;
            soak.detail = result.raceMessage;
        } else {
            soak.outcome = Outcome::Clean;
        }
    } catch (const std::exception &e) {
        // runWorkload classifies every expected failure itself; anything
        // that escapes is exactly what the soak exists to catch.
        soak.outcome = Outcome::Violation;
        soak.detail = std::string("escaped exception: ") + e.what();
    } catch (...) {
        soak.outcome = Outcome::Violation;
        soak.detail = "escaped unknown exception";
    }
    return soak;
}

bool
writeArtifact(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
                    content.size();
    return std::fclose(f) == 0 && ok;
}

/** Re-runs a violating seed with the flight recorder and the record
 *  sink, and writes its event trace + failure report + record/replay
 *  trace into @p dir (injection is a pure function of the seed, so the
 *  re-run reproduces the violation). The .cleantrace is the bit-exact
 *  local repro: `cleanrun --replay=seed<N>.cleantrace`. */
void
dumpArtifacts(const std::string &dir, std::uint64_t seed,
              const RunPlan &plan, unsigned threads,
              std::uint64_t watchdogMs)
{
    if (dir.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string base = dir + "/seed" + std::to_string(seed);
    const SoakResult r = runOne(seed, plan, threads, watchdogMs,
                                /*withObs=*/true,
                                /*recordPath=*/base + ".cleantrace");
    if (!writeArtifact(base + "_trace.json", r.obsTrace) ||
        !writeArtifact(base + "_report.json", r.failureReport)) {
        std::printf("  (failed to write artifacts under %s)\n",
                    dir.c_str());
        return;
    }
    std::printf("  artifacts: %s_{trace,report}.json + %s.cleantrace\n",
                base.c_str(), base.c_str());
}

/** The --audit=replay determinism check for one seed: record a run,
 *  replay it from the trace, and demand the same outcome — byte-equal
 *  failure report and metrics for completing runs, equal outcome/exit
 *  for aborted ones (their physically-timed tails are not comparable).
 *  Returns an empty string on success, the mismatch description
 *  otherwise. */
std::string
replayAuditSeed(std::uint64_t seed, const RunPlan &plan, unsigned threads,
                std::uint64_t watchdogMs, const std::string &tracePath)
{
    const SoakResult a =
        runOne(seed, plan, threads, watchdogMs, /*withObs=*/false,
               /*recordPath=*/tracePath);
    if (a.outcome == Outcome::Violation)
        return "record run violated: " + a.detail;
    const SoakResult b =
        runOne(seed, plan, threads, watchdogMs, /*withObs=*/false,
               /*recordPath=*/std::string(), /*replayPath=*/tracePath);
    if (b.outcome == Outcome::Violation)
        return "replay run violated: " + b.detail;
    if (b.traceFault) {
        // Genuinely racy programs replay best-effort: a racy value that
        // reached control flow (possible under degraded policies or
        // injected skip faults) moves the access stream, and with it the
        // Kendo schedule, physically. The contract is then a precisely
        // located divergence report — which is what we just got — never
        // a hang or a silently wrong re-execution.
        if (plan.racy)
            return std::string();
        return "replay fault " + b.traceDetail;
    }
    // Same caveat for every other check: a racy run's replay reached a
    // structured outcome without faulting, which is all its best-effort
    // contract demands (the outcome itself may shift with the physical
    // location of the races).
    if (plan.racy)
        return std::string();
    if (b.outcome != a.outcome || b.exitCode != a.exitCode)
        return std::string("outcome ") + outcomeName(a.outcome) + "/exit " +
               std::to_string(a.exitCode) + " replayed as " +
               outcomeName(b.outcome) + "/exit " +
               std::to_string(b.exitCode);
    if ((a.raceCount > 0) != (b.raceCount > 0))
        return "race detection did not reproduce under replay";
    if (a.outcome == Outcome::Clean && a.raceCount == 0) {
        if (a.outputHash != b.outputHash)
            return "output hash diverged under replay";
        if (a.failureReport != b.failureReport)
            return "failure report not byte-identical under replay";
        if (a.metricsJson != b.metricsJson)
            return "metrics JSON not byte-identical under replay";
        if (a.recovered != b.recovered || a.attempts != b.attempts ||
            a.quarantined != b.quarantined)
            return "recovery ledger diverged under replay";
    }
    return std::string();
}

} // namespace
} // namespace clean::wl

int
main(int argc, char **argv)
{
    using namespace clean;
    using namespace clean::wl;

    const Options opts = Options::parse(argc, argv);
    const auto runs =
        static_cast<std::uint64_t>(opts.getInt("runs", 200));
    const auto seedBase =
        static_cast<std::uint64_t>(opts.getInt("seed-base", 1));
    const auto threads =
        static_cast<unsigned>(opts.getInt("threads", 4));
    const auto watchdogMs =
        static_cast<std::uint64_t>(opts.getInt("watchdog-ms", 400));
    const auto replayEvery =
        static_cast<std::uint64_t>(opts.getInt("replay-every", 10));
    const auto recoverRuns = static_cast<std::uint64_t>(opts.getInt(
        "recover-runs",
        static_cast<long long>(std::max<std::uint64_t>(10, runs / 5))));
    const auto budgetRuns = static_cast<std::uint64_t>(opts.getInt(
        "budget-runs",
        static_cast<long long>(std::max<std::uint64_t>(10, runs / 5))));
    const bool verbose = opts.getBool("verbose", false);
    const std::string artifactDir = opts.getString("artifact-dir", "");
    const std::string auditMode = opts.getString("audit", "rerun");
    if (auditMode != "rerun" && auditMode != "replay") {
        std::fprintf(stderr, "chaos_soak: unknown --audit mode '%s' "
                             "(rerun|replay)\n",
                     auditMode.c_str());
        return 2;
    }
    // Scratch space for --audit=replay traces: the artifact dir when
    // given (the traces are useful artifacts), a temp dir otherwise.
    std::string auditDir = artifactDir;
    if (auditMode == "replay" && auditDir.empty()) {
        auditDir = (std::filesystem::temp_directory_path() /
                    "clean_chaos_audit")
                       .string();
    }
    if (auditMode == "replay") {
        std::error_code ec;
        std::filesystem::create_directories(auditDir, ec);
    }

    if (opts.has("seed")) {
        const auto seed =
            static_cast<std::uint64_t>(opts.getInt("seed", 1));
        const RunPlan plan = planFor(seed);
        const SoakResult r = runOne(seed, plan, threads, watchdogMs);
        std::printf("seed %llu: %s/%s%s policy=%s -> %s (races %llu)\n",
                    static_cast<unsigned long long>(seed),
                    plan.workload.c_str(),
                    inject::faultKindName(plan.kind),
                    plan.racy ? " [racy]" : "",
                    onRacePolicyName(plan.policy), outcomeName(r.outcome),
                    static_cast<unsigned long long>(r.raceCount));
        if (!r.detail.empty())
            std::printf("  %s\n", r.detail.c_str());
        return r.outcome == Outcome::Violation ? 1 : 0;
    }

    std::map<std::string, std::uint64_t> tally;
    std::vector<Outcome> outcomes(runs, Outcome::Violation);
    std::uint64_t violations = 0;

    // Reference output hashes of race-free workloads: a clean completion
    // that silently computed the wrong answer is a soak failure too.
    std::map<std::string, std::uint64_t> reference;
    for (const char *name : kRaceFree) {
        RunPlan ref;
        ref.workload = name;
        ref.kind = inject::FaultKind::Delay; // rate 0.001, benign
        reference[name] =
            runOne(0, ref, threads, watchdogMs).outputHash;
    }

    for (std::uint64_t i = 0; i < runs; ++i) {
        const std::uint64_t seed = seedBase + i;
        const RunPlan plan = planFor(seed);
        const SoakResult r = runOne(seed, plan, threads, watchdogMs);
        outcomes[i] = r.outcome;
        tally[std::string(inject::faultKindName(plan.kind)) + "/" +
              outcomeName(r.outcome)]++;

        bool bad = r.outcome == Outcome::Violation;
        // Exit-code discipline: the outcome classification and the
        // process exit code must never disagree (README table).
        if (r.outcome != Outcome::Violation &&
            r.exitCode != expectedExit(plan, r)) {
            bad = true;
            std::printf("seed %llu: EXIT-CODE MISMATCH on %s/%s: "
                        "%d != expected %d\n",
                        static_cast<unsigned long long>(seed),
                        plan.workload.c_str(),
                        inject::faultKindName(plan.kind), r.exitCode,
                        expectedExit(plan, r));
        }
        // Wrong-output check: a race-free workload that completed
        // cleanly must have produced the reference answer.
        if (r.outcome == Outcome::Clean && !plan.racy &&
            plan.policy == OnRacePolicy::Throw && r.raceCount == 0 &&
            r.outputHash != reference[plan.workload]) {
            bad = true;
            std::printf("seed %llu: SILENT WRONG OUTPUT on %s "
                        "(%016llx != %016llx)\n",
                        static_cast<unsigned long long>(seed),
                        plan.workload.c_str(),
                        static_cast<unsigned long long>(r.outputHash),
                        static_cast<unsigned long long>(
                            reference[plan.workload]));
        }
        if (bad) {
            ++violations;
            std::printf("seed %llu: VIOLATION on %s/%s: %s\n",
                        static_cast<unsigned long long>(seed),
                        plan.workload.c_str(),
                        inject::faultKindName(plan.kind),
                        r.detail.c_str());
            dumpArtifacts(artifactDir, seed, plan, threads, watchdogMs);
        } else if (verbose) {
            std::printf("seed %llu: %s/%s%s -> %s (races %llu)\n",
                        static_cast<unsigned long long>(seed),
                        plan.workload.c_str(),
                        inject::faultKindName(plan.kind),
                        plan.racy ? " [racy]" : "",
                        outcomeName(r.outcome),
                        static_cast<unsigned long long>(r.raceCount));
        }
    }

    // Determinism audit: replaying a seed must reproduce its outcome —
    // by re-execution (rerun) or through a recorded trace (replay).
    std::uint64_t replayed = 0, mismatches = 0;
    for (std::uint64_t i = 0; i < runs; i += replayEvery) {
        const std::uint64_t seed = seedBase + i;
        const RunPlan plan = planFor(seed);
        ++replayed;
        if (auditMode == "replay") {
            const std::string tracePath = auditDir + "/chaos_seed" +
                                          std::to_string(seed) +
                                          ".cleantrace";
            const std::string why = replayAuditSeed(seed, plan, threads,
                                                    watchdogMs, tracePath);
            if (!why.empty()) {
                ++mismatches;
                std::printf("seed %llu: REPLAY-AUDIT MISMATCH on %s/%s: "
                            "%s\n",
                            static_cast<unsigned long long>(seed),
                            plan.workload.c_str(),
                            inject::faultKindName(plan.kind), why.c_str());
            } else if (artifactDir.empty()) {
                std::error_code ec;
                std::filesystem::remove(tracePath, ec);
            }
            continue;
        }
        const SoakResult r = runOne(seed, plan, threads, watchdogMs);
        if (r.outcome != outcomes[i]) {
            ++mismatches;
            std::printf("seed %llu: REPLAY MISMATCH %s -> %s\n",
                        static_cast<unsigned long long>(seed),
                        outcomeName(outcomes[i]), outcomeName(r.outcome));
        }
    }

    // Recover-policy lane (ISSUE 3). SkipAcquire on a race-free workload
    // drops happens-before edges while the physical mutex still
    // serializes the data, so every detected race is metadata-only and
    // rollback + replay must land on the reference output. Kill faults
    // stay out of this lane: a killed worker's partial sink hash is not
    // folded into the final output, so output equality is undefined.
    std::uint64_t recoverTotal = 0, recoverEpisodes = 0;
    for (std::uint64_t i = 0; i < recoverRuns; ++i) {
        const std::uint64_t seed = seedBase + 100000 + i;
        Prng prng(seed * 0x9e3779b97f4a7c15ULL + 7);
        RunPlan plan;
        plan.workload = kRaceFree[prng.nextBelow(std::size(kRaceFree))];
        plan.kind = inject::FaultKind::SkipAcquire;
        plan.policy = OnRacePolicy::Recover;
        plan.maxRecoveries = 1000000; // never quarantine in this lane

        // Under --audit=replay the second run is not a re-execution but
        // a replay of the first run's recording — the stronger check
        // that the trace alone pins the recovery schedule.
        std::string recoverTrace;
        if (auditMode == "replay")
            recoverTrace = auditDir + "/recover_seed" +
                           std::to_string(seed) + ".cleantrace";
        const SoakResult a =
            runOne(seed, plan, threads, watchdogMs, /*withObs=*/false,
                   /*recordPath=*/recoverTrace);
        const SoakResult b =
            runOne(seed, plan, threads, watchdogMs, /*withObs=*/false,
                   /*recordPath=*/std::string(),
                   /*replayPath=*/recoverTrace);
        if (!recoverTrace.empty() && artifactDir.empty()) {
            std::error_code ec;
            std::filesystem::remove(recoverTrace, ec);
        }
        ++recoverTotal;
        recoverEpisodes += a.attempts;

        bool bad = false;
        if (a.outcome != Outcome::Clean || a.exitCode != 0) {
            bad = true;
            std::printf("recover seed %llu: NOT RECOVERED on %s: %s "
                        "(exit %d) %s\n",
                        static_cast<unsigned long long>(seed),
                        plan.workload.c_str(), outcomeName(a.outcome),
                        a.exitCode, a.detail.c_str());
        } else if (a.outputHash != reference[plan.workload]) {
            bad = true;
            std::printf("recover seed %llu: WRONG OUTPUT on %s "
                        "(%016llx != %016llx)\n",
                        static_cast<unsigned long long>(seed),
                        plan.workload.c_str(),
                        static_cast<unsigned long long>(a.outputHash),
                        static_cast<unsigned long long>(
                            reference[plan.workload]));
        } else if (b.traceFault) {
            bad = true;
            std::printf("recover seed %llu: REPLAY FAULT on %s: %s\n",
                        static_cast<unsigned long long>(seed),
                        plan.workload.c_str(), b.traceDetail.c_str());
        } else if (b.outcome != a.outcome ||
                   b.outputHash != a.outputHash ||
                   b.recovered != a.recovered ||
                   b.attempts != a.attempts) {
            bad = true;
            std::printf("recover seed %llu: REPLAY MISMATCH on %s "
                        "(out %016llx/%016llx recovered %llu/%llu "
                        "attempts %llu/%llu)\n",
                        static_cast<unsigned long long>(seed),
                        plan.workload.c_str(),
                        static_cast<unsigned long long>(a.outputHash),
                        static_cast<unsigned long long>(b.outputHash),
                        static_cast<unsigned long long>(a.recovered),
                        static_cast<unsigned long long>(b.recovered),
                        static_cast<unsigned long long>(a.attempts),
                        static_cast<unsigned long long>(b.attempts));
        } else if (verbose) {
            std::printf("recover seed %llu: %s clean (recovered %llu "
                        "of %llu attempts)\n",
                        static_cast<unsigned long long>(seed),
                        plan.workload.c_str(),
                        static_cast<unsigned long long>(a.recovered),
                        static_cast<unsigned long long>(a.attempts));
        }
        if (bad) {
            ++violations;
            dumpArtifacts(artifactDir, seed, plan, threads, watchdogMs);
        }
    }

    // Sampling-governor lane (ISSUE 8). The same fault sweep — kill
    // faults, forced rollovers, skipped acquires and all — with the
    // sampling tier live. Shedding read checks is sound (reads never
    // update shadow metadata), so every invariant the plain sweep
    // enforces must survive unchanged under an active budget: the
    // structured-outcome guarantee, exit-code discipline, and reference
    // output on clean race-free completions. Odd seeds pin a deep
    // forced level so heavy shedding is guaranteed to be in effect the
    // moment the fault fires; even seeds leave the governor in charge.
    std::uint64_t budgetTotal = 0, budgetSheds = 0;
    const std::uint32_t kBudgets[] = {5, 10, 25, 50};
    for (std::uint64_t i = 0; i < budgetRuns; ++i) {
        const std::uint64_t seed = seedBase + 200000 + i;
        RunPlan plan = planFor(seed);
        plan.budget = kBudgets[i % std::size(kBudgets)];
        plan.forceLevel = (i % 2 == 1) ? 8 : -1;
        const SoakResult r = runOne(seed, plan, threads, watchdogMs);
        ++budgetTotal;
        budgetSheds += r.shedReads;
        tally[std::string("budget/") + inject::faultKindName(plan.kind) +
              "/" + outcomeName(r.outcome)]++;

        bool bad = r.outcome == Outcome::Violation;
        if (r.outcome != Outcome::Violation &&
            r.exitCode != expectedExit(plan, r)) {
            bad = true;
            std::printf("budget seed %llu: EXIT-CODE MISMATCH on %s/%s "
                        "(budget %u): %d != expected %d\n",
                        static_cast<unsigned long long>(seed),
                        plan.workload.c_str(),
                        inject::faultKindName(plan.kind), plan.budget,
                        r.exitCode, expectedExit(plan, r));
        }
        if (r.outcome == Outcome::Clean && !plan.racy &&
            plan.policy == OnRacePolicy::Throw && r.raceCount == 0 &&
            r.outputHash != reference[plan.workload]) {
            bad = true;
            std::printf("budget seed %llu: SILENT WRONG OUTPUT on %s "
                        "(budget %u, shed %llu): %016llx != %016llx\n",
                        static_cast<unsigned long long>(seed),
                        plan.workload.c_str(), plan.budget,
                        static_cast<unsigned long long>(r.shedReads),
                        static_cast<unsigned long long>(r.outputHash),
                        static_cast<unsigned long long>(
                            reference[plan.workload]));
        }
        if (bad) {
            ++violations;
            if (r.outcome == Outcome::Violation)
                std::printf("budget seed %llu: VIOLATION on %s/%s "
                            "(budget %u): %s\n",
                            static_cast<unsigned long long>(seed),
                            plan.workload.c_str(),
                            inject::faultKindName(plan.kind), plan.budget,
                            r.detail.c_str());
            dumpArtifacts(artifactDir, seed, plan, threads, watchdogMs);
        } else if (verbose) {
            std::printf("budget seed %llu: %s/%s%s budget=%u level=%s "
                        "shed=%llu -> %s\n",
                        static_cast<unsigned long long>(seed),
                        plan.workload.c_str(),
                        inject::faultKindName(plan.kind),
                        plan.racy ? " [racy]" : "", plan.budget,
                        plan.forceLevel >= 0 ? "forced" : "governed",
                        static_cast<unsigned long long>(r.shedReads),
                        outcomeName(r.outcome));
        }

        // Under --audit=replay a sample of budgeted seeds must also
        // round-trip through a recorded trace: the SampleLevel /
        // SampleShed lanes make budgeted runs first-class replay
        // citizens, not a special case.
        if (auditMode == "replay" && replayEvery > 0 &&
            i % replayEvery == 0) {
            const std::string tracePath = auditDir + "/budget_seed" +
                                          std::to_string(seed) +
                                          ".cleantrace";
            const std::string why = replayAuditSeed(seed, plan, threads,
                                                    watchdogMs, tracePath);
            ++replayed;
            if (!why.empty()) {
                ++mismatches;
                std::printf("budget seed %llu: REPLAY-AUDIT MISMATCH on "
                            "%s/%s (budget %u): %s\n",
                            static_cast<unsigned long long>(seed),
                            plan.workload.c_str(),
                            inject::faultKindName(plan.kind), plan.budget,
                            why.c_str());
            } else if (artifactDir.empty()) {
                std::error_code ec;
                std::filesystem::remove(tracePath, ec);
            }
        }
    }
    // The lane must actually exercise shedding: the forced-level seeds
    // guarantee it, so zero total sheds means the sampling tier never
    // engaged and the lane tested nothing.
    if (budgetTotal >= 2 && budgetSheds == 0) {
        ++violations;
        std::printf("budget lane: NO READS SHED across %llu runs — "
                    "sampling tier never engaged\n",
                    static_cast<unsigned long long>(budgetTotal));
    }

    std::printf("\nchaos soak: %llu runs, %llu replays, %llu recover "
                "runs (%llu recovery attempts), %llu budget runs "
                "(%llu reads shed)\n",
                static_cast<unsigned long long>(runs),
                static_cast<unsigned long long>(replayed),
                static_cast<unsigned long long>(recoverTotal),
                static_cast<unsigned long long>(recoverEpisodes),
                static_cast<unsigned long long>(budgetTotal),
                static_cast<unsigned long long>(budgetSheds));
    for (const auto &[key, count] : tally)
        std::printf("  %-28s %llu\n", key.c_str(),
                    static_cast<unsigned long long>(count));
    std::printf("violations: %llu, replay mismatches: %llu\n",
                static_cast<unsigned long long>(violations),
                static_cast<unsigned long long>(mismatches));

    if (violations || mismatches) {
        std::printf("SOAK FAILED\n");
        return 1;
    }
    std::printf("SOAK PASSED: every run ended in clean | race | deadlock "
                "and every replay reproduced its outcome\n");
    return 0;
}
