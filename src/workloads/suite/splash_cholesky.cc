/**
 * @file
 * cholesky — blocked right-looking Cholesky factorization (SPLASH-2).
 *
 * A dense SPD matrix is factored in block-column steps. Within step k
 * the diagonal block is factored by its owner, then the sub-diagonal
 * panel and the trailing update are distributed over threads through a
 * lock-protected dynamic task counter (SPLASH cholesky uses task queues
 * the same way). Barriers separate the k-steps.
 *
 * Racy variant: the dynamic task counter is read-incremented without
 * the lock — an unsynchronized RMW producing WAW (and duplicate /
 * dropped tasks), the classic "homemade atomic" bug.
 */

#include "workloads/suite/factories.h"
#include "workloads/suite/kernel_common.h"

namespace clean::wl::suite
{

namespace
{

class Cholesky : public KernelBase
{
  public:
    Cholesky() : KernelBase("cholesky", "splash2", true) {}

    void
    run(Env &env, const WorkloadParams &p) override
    {
        const std::uint64_t blockDim = scaled(p.scale, 4, 8, 12);
        const std::uint64_t b = 8; // elements per block side
        const std::uint64_t n = blockDim * b;

        auto *matrix = env.allocShared<double>(n * n);
        auto *taskCounter = env.allocShared<std::uint64_t>(1);
        const unsigned taskLock = env.createMutex();
        const unsigned phase = env.createBarrier(p.threads);

        // SPD by construction: A = I*diag + small symmetric noise.
        {
            Prng init(p.seed);
            for (std::uint64_t i = 0; i < n; ++i) {
                for (std::uint64_t j = 0; j <= i; ++j) {
                    const double v =
                        (i == j) ? (n + 1.0) : (init.nextDouble() * 0.5);
                    matrix[i * n + j] = v;
                    matrix[j * n + i] = v;
                }
            }
            taskCounter[0] = 0;
        }

        const bool racy = p.racy;
        env.parallel(p.threads, [&](Worker &w) {
            auto at = [&](std::uint64_t r, std::uint64_t c) {
                return &matrix[r * n + c];
            };
            auto fetchTask = [&]() -> std::uint64_t {
                if (racy) {
                    // Unlocked read-modify-write on the shared counter.
                    const std::uint64_t t = w.read(&taskCounter[0]);
                    w.write(&taskCounter[0], t + 1);
                    return t;
                }
                w.lock(taskLock);
                const std::uint64_t t = w.read(&taskCounter[0]);
                w.write(&taskCounter[0], t + 1);
                w.unlock(taskLock);
                return t;
            };

            for (std::uint64_t k = 0; k < blockDim; ++k) {
                // Diagonal block factorization by a single owner.
                if (k % w.count() == w.index()) {
                    for (std::uint64_t j = k * b; j < (k + 1) * b; ++j) {
                        double d = w.read(at(j, j));
                        for (std::uint64_t t = k * b; t < j; ++t) {
                            const double l = w.read(at(j, t));
                            d -= l * l;
                            w.compute(2);
                        }
                        d = std::sqrt(std::max(1e-9, d));
                        w.write(at(j, j), d);
                        for (std::uint64_t i = j + 1; i < (k + 1) * b;
                             ++i) {
                            double s = w.read(at(i, j));
                            for (std::uint64_t t = k * b; t < j; ++t) {
                                s -= w.read(at(i, t)) * w.read(at(j, t));
                                w.compute(2);
                            }
                            w.write(at(i, j), s / d);
                        }
                    }
                    // Reset the task counter for the next phase.
                    if (racy)
                        w.write(&taskCounter[0], std::uint64_t{0});
                    else {
                        w.lock(taskLock);
                        w.write(&taskCounter[0], std::uint64_t{0});
                        w.unlock(taskLock);
                    }
                }
                w.barrier(phase);

                // Panel solve: blocks (i, k), i > k, as dynamic tasks.
                const std::uint64_t panelTasks = blockDim - k - 1;
                for (;;) {
                    const std::uint64_t t = fetchTask();
                    if (t >= panelTasks)
                        break;
                    const std::uint64_t bi = k + 1 + t;
                    for (std::uint64_t j = k * b; j < (k + 1) * b; ++j) {
                        const double d = w.read(at(j, j));
                        for (std::uint64_t i = bi * b; i < (bi + 1) * b;
                             ++i) {
                            double s = w.read(at(i, j));
                            for (std::uint64_t u = k * b; u < j; ++u) {
                                s -= w.read(at(i, u)) * w.read(at(j, u));
                                w.compute(2);
                            }
                            w.write(at(i, j), s / d);
                        }
                    }
                }
                w.barrier(phase);
                if (k % w.count() == w.index()) {
                    if (racy)
                        w.write(&taskCounter[0], std::uint64_t{0});
                    else {
                        w.lock(taskLock);
                        w.write(&taskCounter[0], std::uint64_t{0});
                        w.unlock(taskLock);
                    }
                }
                w.barrier(phase);

                // Trailing update: blocks (i, j), k < j <= i.
                std::uint64_t updateTasks = 0;
                for (std::uint64_t j = k + 1; j < blockDim; ++j)
                    updateTasks += blockDim - j;
                for (;;) {
                    const std::uint64_t t = fetchTask();
                    if (t >= updateTasks)
                        break;
                    // Decode t -> (bi, bj).
                    std::uint64_t rem = t, bj = k + 1;
                    while (rem >= blockDim - bj) {
                        rem -= blockDim - bj;
                        ++bj;
                    }
                    const std::uint64_t bi = bj + rem;
                    for (std::uint64_t i = bi * b; i < (bi + 1) * b; ++i) {
                        for (std::uint64_t j = bj * b; j < (bj + 1) * b;
                             ++j) {
                            if (j > i)
                                continue;
                            double s = w.read(at(i, j));
                            for (std::uint64_t u = k * b; u < (k + 1) * b;
                                 ++u) {
                                s -= w.read(at(i, u)) * w.read(at(j, u));
                                w.compute(2);
                            }
                            w.write(at(i, j), s);
                        }
                    }
                }
                w.barrier(phase);
                if (k % w.count() == w.index()) {
                    if (racy)
                        w.write(&taskCounter[0], std::uint64_t{0});
                    else {
                        w.lock(taskLock);
                        w.write(&taskCounter[0], std::uint64_t{0});
                        w.unlock(taskLock);
                    }
                }
                w.barrier(phase);
            }

            std::uint64_t h = 0;
            const Slice slice = sliceOf(n, w.index(), w.count());
            for (std::uint64_t i = slice.begin; i < slice.end; ++i)
                h = h * 31 +
                    static_cast<std::uint64_t>(w.read(at(i, i)) * 4096.0);
            w.sink(h);
        });

        env.declareOutput(matrix, n * n * sizeof(double));
    }
};

} // namespace

std::unique_ptr<Workload>
makeCholesky()
{
    return std::make_unique<Cholesky>();
}

} // namespace clean::wl::suite
