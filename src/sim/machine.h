/**
 * @file
 * Trace-replay timing machine (§6.3.1).
 *
 * Replays a wl::Trace on the paper's 8-core model: simple cores (1
 * cycle per non-memory instruction), the MemoryHierarchy for data and
 * metadata, the CleanHwUnit for race checks (optional — Figure 9
 * normalizes against a run with no detection), +100 cycles per
 * synchronization operation for software vector-clock maintenance.
 *
 * Scheduling: the runnable core with the smallest local cycle executes
 * its next event. Synchronization events carry the per-object sequence
 * recorded at trace time; an event is runnable only when every earlier
 * event on its object has completed, and its start cycle is lifted to
 * the completion time of its predecessor — this replays the recorded
 * synchronization order with faithful waiting time. Barrier events
 * block until their whole generation has arrived and release at the
 * latest arrival.
 */

#ifndef CLEAN_SIM_MACHINE_H
#define CLEAN_SIM_MACHINE_H

#include <vector>

#include "core/epoch.h"
#include "core/vector_clock.h"
#include "sim/clean_hw.h"
#include "sim/memory_hierarchy.h"
#include "support/stats.h"
#include "workloads/trace.h"

namespace clean::sim
{

/** Machine parameters. */
struct MachineConfig
{
    /** Run the CLEAN race-check unit alongside each shared access. */
    bool raceDetection = true;
    EpochMode epochMode = EpochMode::Clean;
    /** Ablation: disable the §5.2 fast-path comparator. */
    bool hwFastPath = true;
    /**
     * Physical core count; 0 = one core per trace thread (the paper's
     * configuration). With fewer cores than threads, threads
     * time-share cores (static assignment t % cores) and the machine
     * models the context-switch case of §5.1: a switch costs
     * contextSwitchCost cycles plus one memory access to reload the
     * per-core main vector-clock register.
     *
     * The model is core-count-parameterised throughout (hierarchy
     * snoops, per-core state) and is exercised up to 64 cores by the
     * many-core sweep (bench_scale's BM_SimCheckedAccessRate lane,
     * DESIGN.md §16) — the paper's 8-core point is a configuration,
     * not a ceiling.
     */
    unsigned cores = 0;
    Cycles contextSwitchCost = 100;
    /** Extra cycles per synchronization op (VC maintenance, §6.3.1). */
    Cycles syncOverhead = 100;
    LatencyConfig latency;
    EpochConfig epoch = kDefaultEpochConfig;
};

/** Everything measured in one simulation. */
struct MachineStats
{
    Cycles totalCycles = 0;
    std::vector<Cycles> coreCycles;
    std::uint64_t instructions = 0;
    std::uint64_t memoryAccesses = 0;
    std::uint64_t syncOps = 0;
    std::uint64_t contextSwitches = 0;
    HwStats hw;
    std::uint64_t llcMisses = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t invalidations = 0;

    void exportTo(StatSet &stats, const std::string &prefix) const;
};

/** Simulates @p trace under @p config and returns the measurements. */
MachineStats simulate(const wl::Trace &trace, const MachineConfig &config);

} // namespace clean::sim

#endif // CLEAN_SIM_MACHINE_H
