/**
 * @file
 * Kendo-style deterministic synchronization (§2.4, §3.3).
 *
 * Every thread owns a *deterministic counter* that advances on
 * deterministic events only (shim-observed accesses — the analogue of the
 * paper's instrumented basic blocks — and synchronization operations). A
 * thread may perform a synchronization operation only when its
 * (counter, threadId) pair is the strict minimum over all runnable
 * threads; otherwise it waits for the others to catch up. Because
 * counters depend only on each thread's deterministic progress, the
 * resulting total order of synchronization operations — and hence, for
 * executions CLEAN allows to complete, the whole execution — is the same
 * in every run.
 *
 * Threads blocked in a condition wait, a barrier, or a join are excluded
 * from the minimum (they cannot perform synchronization), and are resumed
 * with their counter raised above the waker's, which keeps the logical
 * order deterministic.
 *
 * Staleness is benign: a waiter that reads a stale (smaller) counter for
 * a peer only waits longer. Two threads can never both believe they hold
 * the turn, because that would require each to have observed the other's
 * counter above its own, and observed counters never exceed true ones.
 */

#ifndef CLEAN_DET_KENDO_H
#define CLEAN_DET_KENDO_H

#include <atomic>
#include <cstdint>
#include <string>

#include "support/common.h"

namespace clean::det
{

/** Deterministic logical time of one thread. */
using DetCount = std::uint64_t;

/** Deterministic-synchronization engine. */
class Kendo
{
  public:
    /**
     * @param enabled  when false every operation is a no-op and program
     *                 synchronization falls back to plain nondeterministic
     *                 locking ("race detection only" configurations).
     * @param maxSlots capacity of the slot table.
     */
    Kendo(bool enabled, ThreadId maxSlots);
    ~Kendo();

    Kendo(const Kendo &) = delete;
    Kendo &operator=(const Kendo &) = delete;

    bool enabled() const { return enabled_; }
    ThreadId maxSlots() const { return maxSlots_; }

    /**
     * Arms the watchdog of this engine's own blocking loops
     * (waitForTurn / waitWhileBlocked): a wait longer than @p ms throws
     * DeadlockError naming the suspected stuck slot. 0 (the default)
     * waits forever, preserving the historical behaviour.
     */
    void setWatchdogMs(std::uint64_t ms) { watchdogMs_ = ms; }
    std::uint64_t watchdogMs() const { return watchdogMs_; }

    /** Human-readable status of @p slot ("inactive"/"active"/"blocked"). */
    const char *statusName(ThreadId slot) const;

    /**
     * The runnable slot with the strict minimum (count, tid) — the
     * thread whose turn it currently is, and therefore the slot that is
     * blocking everyone else if it never advances. Returns maxSlots()
     * when no slot is Active.
     */
    ThreadId minActiveSlot() const;

    /** One-line per-slot dump "slot 0: det=12 active | ..." used in
     *  deadlock diagnostics. */
    std::string snapshot() const;

    /** Marks @p slot runnable starting at deterministic time @p start. */
    void activate(ThreadId slot, DetCount start);

    /** Marks @p slot finished; it no longer gates anyone. */
    void finish(ThreadId slot);

    /** Advances @p slot's counter by @p n deterministic events. */
    CLEAN_ALWAYS_INLINE void
    increment(ThreadId slot, DetCount n = 1)
    {
        if (!enabled_)
            return;
        slots_[slot].count.store(
            slots_[slot].count.load(std::memory_order_relaxed) + n,
            std::memory_order_relaxed);
    }

    /** Current deterministic counter of @p slot. */
    DetCount
    count(ThreadId slot) const
    {
        return slots_[slot].count.load(std::memory_order_relaxed);
    }

    /**
     * Blocks until (count, slot) is the strict minimum over runnable
     * slots. No-op when disabled.
     */
    void waitForTurn(ThreadId slot);

    /**
     * One non-blocking evaluation of the turn predicate. Returns true
     * (and vacuously when disabled) iff (count, slot) is currently the
     * strict minimum over runnable slots. Callers loop over tryTurn so
     * they can interleave rollover parking and abort polling.
     */
    bool tryTurn(ThreadId slot);

    /** Raises @p slot's counter to at least @p value (self-resume after
     *  an already-satisfied blocking condition). */
    void
    raiseTo(ThreadId slot, DetCount value)
    {
        if (!enabled_)
            return;
        Slot &s = slots_[slot];
        if (value > s.count.load(std::memory_order_relaxed))
            s.count.store(value, std::memory_order_relaxed);
    }

    /** Excludes @p slot from the minimum (entering a blocking wait). */
    void block(ThreadId slot);

    /**
     * Re-admits @p slot with counter max(current, resumeAt). Called by
     * the waking thread while @p slot is still blocked.
     */
    void unblock(ThreadId slot, DetCount resumeAt);

    /** Spin-waits (yielding) until this blocked slot is unblocked. */
    void waitWhileBlocked(ThreadId slot);

    /** True iff @p slot is currently runnable. */
    bool isActive(ThreadId slot) const;

    /** Total waitForTurn spin iterations (det-sync overhead telemetry). */
    std::uint64_t totalSpins() const
    {
        return spins_.load(std::memory_order_relaxed);
    }

  private:
    enum class Status : int { Inactive, Active, Blocked };

    struct alignas(64) Slot
    {
        std::atomic<DetCount> count{0};
        std::atomic<Status> status{Status::Inactive};
    };

    [[noreturn]] void throwDeadlock(ThreadId slot, const char *where,
                                    std::uint64_t waitedMs) const;

    bool enabled_;
    ThreadId maxSlots_;
    Slot *slots_;
    std::uint64_t watchdogMs_ = 0;
    std::atomic<std::uint64_t> spins_{0};
};

} // namespace clean::det

#endif // CLEAN_DET_KENDO_H
