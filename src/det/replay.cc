#include "det/replay.h"

#include <algorithm>

#include "obs/flight_recorder.h"

namespace clean::det
{

namespace
{

std::string
eventStamp(obs::EventKind kind, std::uint64_t det, ThreadId tid,
           std::uint64_t arg0, std::uint64_t arg1)
{
    return std::string(obs::eventKindName(kind)) + "(tid=" +
           std::to_string(tid) + " det=" + std::to_string(det) + " args=" +
           std::to_string(arg0) + "," + std::to_string(arg1) + ")";
}

} // namespace

ReplayDriver::ReplayDriver(obs::TraceFile trace, bool policyAborts)
    : meta_(std::move(trace.meta)), complete_(trace.complete)
{
    const std::size_t laneCount =
        static_cast<std::size_t>(meta_.maxThreads) + 1;
    lanes_.resize(laneCount);
    laneCursor_.assign(laneCount, 0);

    bool sawRace = false, sawTrip = false;
    for (const obs::Event &e : trace.events) {
        if (e.tid >= laneCount)
            throw TraceError(TraceFault::BadMeta,
                             "event names tid " + std::to_string(e.tid) +
                                 " but the header declares max_threads=" +
                                 std::to_string(meta_.maxThreads));
        if (e.kind == obs::EventKind::RaceDetected)
            sawRace = true;
        else if (e.kind == obs::EventKind::WatchdogTrip)
            sawTrip = true;
        if (e.kind == obs::EventKind::TurnGrant)
            schedule_.push_back(e);
        if (validatedKind(e.kind))
            lanes_[e.tid].push_back(e);
    }
    tolerant_ = (policyAborts && sawRace) || sawTrip;

    const auto bySeq = [](const obs::Event &a, const obs::Event &b) {
        return a.seq < b.seq;
    };
    for (auto &lane : lanes_)
        std::sort(lane.begin(), lane.end(), bySeq);
    std::sort(schedule_.begin(), schedule_.end(),
              [](const obs::Event &a, const obs::Event &b) {
                  if (a.det != b.det)
                      return a.det < b.det;
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.seq < b.seq;
              });
}

bool
ReplayDriver::validatedKind(obs::EventKind kind)
{
    switch (kind) {
      case obs::EventKind::SyncAcquire:
      case obs::EventKind::SyncRelease:
      case obs::EventKind::RecoveryBegin:
      case obs::EventKind::RecoveryRollback:
      case obs::EventKind::RecoveryReplay:
      case obs::EventKind::RecoveryEnd:
      case obs::EventKind::Quarantine:
      case obs::EventKind::Rollover:
      case obs::EventKind::InjectionFired:
      case obs::EventKind::TurnGrant:
      // Sampling events are pure functions of the deterministic
      // execution: gate decisions hash deterministic state, and level
      // adoptions — the one physically-driven input — are replayed from
      // this very stream (peekSampleLevel), closing the loop.
      case obs::EventKind::SampleLevel:
      case obs::EventKind::SampleShed:
      case obs::EventKind::SampleQuarantine:
        return true;
      // RaceDetected: for genuinely racy data the precise detection
      // point is *physical* — it depends on how the racing threads'
      // unsynchronized accesses interleave between sync points — so the
      // recorded event documents the failure but cannot be demanded of
      // the replay. (Injected metadata races under Recover stay
      // deterministic; their Recovery* events above are validated.)
      case obs::EventKind::RaceDetected:
      case obs::EventKind::SfrBegin:
      case obs::EventKind::SfrEnd:
      case obs::EventKind::ThreadStart:
      case obs::EventKind::ThreadFinish:
      case obs::EventKind::WatchdogTrip:
        return false;
    }
    return false;
}

std::string
ReplayDriver::describe(const obs::Event &e)
{
    return eventStamp(e.kind, e.det, e.tid, e.arg0, e.arg1);
}

std::uint64_t
ReplayDriver::scheduleSize() const
{
    return schedule_.size();
}

std::uint64_t
ReplayDriver::scheduleCursor() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return cursor_;
}

GrantStatus
ReplayDriver::tryGrant(ThreadId tid, DetCount count, bool kendoReady)
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (faulted_)
        throwLatchedLocked();
    if (!armed_.load(std::memory_order_relaxed))
        return kendoReady ? GrantStatus::Granted : GrantStatus::NotYet;

    if (cursor_ >= schedule_.size()) {
        if (!kendoReady)
            return GrantStatus::NotYet;
        if (!complete_)
            raiseFaultLocked(
                TraceFault::Truncated,
                "thread " + std::to_string(tid) + " needs a turn at det=" +
                    std::to_string(count) + " but the trace ends after " +
                    std::to_string(schedule_.size()) +
                    " grants with no footer (recorder crashed mid-run?)",
                cursor_);
        if (tolerant_) {
            // The recorded run aborted: how far each sibling ran before
            // observing the abort is physical, so grants past the
            // recorded failure fall back to plain Kendo order.
            return GrantStatus::Granted;
        }
        raiseFaultLocked(TraceFault::Divergence,
                         "thread " + std::to_string(tid) +
                             " performs a synchronization operation at det=" +
                             std::to_string(count) +
                             " beyond the end of the complete trace (" +
                             std::to_string(schedule_.size()) + " grants)",
                         cursor_);
    }

    const obs::Event &head = schedule_[cursor_];
    if (head.tid != tid) {
        if (kendoReady)
            raiseFaultLocked(TraceFault::Divergence,
                             "kendo grants thread " + std::to_string(tid) +
                                 " a turn at det=" + std::to_string(count) +
                                 "; trace predicts " + describe(head),
                             cursor_);
        return GrantStatus::NotYet;
    }
    if (head.det != count)
        raiseFaultLocked(TraceFault::Divergence,
                         "thread " + std::to_string(tid) +
                             " requests a turn at det=" +
                             std::to_string(count) + "; trace predicts " +
                             describe(head),
                         cursor_);
    if (!kendoReady)
        return GrantStatus::NotYet;
    ++cursor_;
    return GrantStatus::Granted;
}

void
ReplayDriver::raiseTruncatedWait(ThreadId tid, DetCount count)
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (faulted_)
        throwLatchedLocked();
    raiseFaultLocked(
        TraceFault::Truncated,
        "thread " + std::to_string(tid) + " waited out the watchdog at det=" +
            std::to_string(count) + " against an incomplete trace (" +
            std::to_string(schedule_.size() - cursor_) +
            " grants left of " + std::to_string(schedule_.size()) + ")",
        cursor_);
}

void
ReplayDriver::onEvent(const obs::Event &e)
{
    if (!armed_.load(std::memory_order_acquire))
        return;
    if (!validatedKind(e.kind))
        return;
    std::lock_guard<std::mutex> guard(mutex_);
    if (faulted_ || !armed_.load(std::memory_order_relaxed))
        return;

    auto &lane = lanes_[e.tid];
    std::size_t &cursor = laneCursor_[e.tid];
    if (cursor >= lane.size()) {
        if (!complete_)
            raiseFaultLocked(TraceFault::Truncated,
                             "replay records " + describe(e) +
                                 " beyond lane " + std::to_string(e.tid) +
                                 "'s " + std::to_string(lane.size()) +
                                 " recorded events (trace has no footer)",
                             validatedSteps_);
        if (tolerant_)
            return; // physically-timed pre-abort tail; see file comment
        raiseFaultLocked(TraceFault::Divergence,
                         "replay records " + describe(e) + " beyond lane " +
                             std::to_string(e.tid) + "'s " +
                             std::to_string(lane.size()) +
                             " recorded events",
                         validatedSteps_);
    }
    const obs::Event &expected = lane[cursor];
    if (expected.kind != e.kind || expected.det != e.det ||
        expected.arg0 != e.arg0 || expected.arg1 != e.arg1)
        raiseFaultLocked(TraceFault::Divergence,
                         "replay records " + describe(e) +
                             "; trace predicts " + describe(expected) +
                             " at lane position " + std::to_string(cursor),
                         validatedSteps_);
    ++cursor;
    ++validatedSteps_;
}

std::int64_t
ReplayDriver::peekSampleLevel(ThreadId tid, std::uint64_t det) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (faulted_ || !armed_.load(std::memory_order_relaxed))
        return -1;
    if (tid >= lanes_.size())
        return -1;
    const auto &lane = lanes_[tid];
    const std::size_t cursor = laneCursor_[tid];
    if (cursor >= lane.size())
        return -1;
    const obs::Event &next = lane[cursor];
    if (next.kind != obs::EventKind::SampleLevel || next.det != det)
        return -1;
    return static_cast<std::int64_t>(next.arg0);
}

void
ReplayDriver::setFaultHandler(std::function<void()> handler)
{
    std::lock_guard<std::mutex> guard(mutex_);
    faultHandler_ = std::move(handler);
}

void
ReplayDriver::disarm()
{
    armed_.store(false, std::memory_order_release);
}

bool
ReplayDriver::faulted() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return faulted_;
}

TraceFault
ReplayDriver::faultKind() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return faultKind_;
}

std::uint64_t
ReplayDriver::faultStep() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return faultStep_;
}

std::string
ReplayDriver::faultMessage() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return faultMessage_;
}

void
ReplayDriver::raiseFaultLocked(TraceFault kind, const std::string &message,
                               std::uint64_t step)
{
    if (!faulted_) {
        faulted_ = true;
        faultKind_ = kind;
        faultMessage_ = message;
        faultStep_ = step;
        // Stop sibling validation: everything after the first fault is
        // noise while the abort propagates.
        armed_.store(false, std::memory_order_release);
        // Abort the whole execution, not just the threads that happen
        // to poll the driver: siblings blocked in plain waits (barriers,
        // joins) only observe the runtime's abort flag.
        if (faultHandler_)
            faultHandler_();
    }
    throw TraceError(kind, message, step);
}

void
ReplayDriver::throwLatchedLocked()
{
    throw TraceError(faultKind_, faultMessage_, faultStep_);
}

} // namespace clean::det
