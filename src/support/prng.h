/**
 * @file
 * Deterministic pseudo-random number generators.
 *
 * Workload kernels must be bitwise reproducible for the determinism
 * experiments (§6.2.2), so they never use std::random_device or
 * rand(); every source of pseudo-randomness is one of these seeded
 * generators, and per-thread generators are seeded from the deterministic
 * thread id.
 */

#ifndef CLEAN_SUPPORT_PRNG_H
#define CLEAN_SUPPORT_PRNG_H

#include <cstdint>

#include "support/common.h"

namespace clean
{

/** SplitMix64: used to expand a single seed into generator state. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state_;
};

/**
 * Xoshiro256**: the workhorse generator. Small, fast, and good enough
 * statistically for synthetic workload generation.
 */
class Prng
{
  public:
    explicit Prng(std::uint64_t seed = 0x5eed5eed5eed5eedULL)
    {
        SplitMix64 sm(seed);
        for (auto &s : state_)
            s = sm.next();
    }

    /** Uniform 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        // Lemire-style reduction; slight modulo bias is irrelevant here.
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::int64_t
    nextInRange(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            nextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** True with probability p. */
    bool nextBool(double p = 0.5) { return nextDouble() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace clean

#endif // CLEAN_SUPPORT_PRNG_H
