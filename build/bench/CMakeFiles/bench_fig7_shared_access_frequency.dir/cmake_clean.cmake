file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_shared_access_frequency.dir/bench_fig7_shared_access_frequency.cc.o"
  "CMakeFiles/bench_fig7_shared_access_frequency.dir/bench_fig7_shared_access_frequency.cc.o.d"
  "bench_fig7_shared_access_frequency"
  "bench_fig7_shared_access_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_shared_access_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
