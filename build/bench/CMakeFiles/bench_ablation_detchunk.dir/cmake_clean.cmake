file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_detchunk.dir/bench_ablation_detchunk.cc.o"
  "CMakeFiles/bench_ablation_detchunk.dir/bench_ablation_detchunk.cc.o.d"
  "bench_ablation_detchunk"
  "bench_ablation_detchunk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_detchunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
