# Empty dependencies file for cleanrun.
# This may be replaced when dependencies are built.
