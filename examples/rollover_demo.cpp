/**
 * @file
 * Clock rollover live (§4.5).
 *
 * Epoch clocks are deliberately narrow (23 bits in the paper's default;
 * 8 bits here so you can watch it happen). When any thread's clock
 * nears its width, the runtime parks every thread at its next
 * synchronization point, wipes all epochs with one madvise and resets
 * the vector clocks, then resumes. This demo shows:
 *
 *   1. resets firing under lock-heavy traffic;
 *   2. the §3.1 guarantees surviving them — no false race exceptions,
 *      races still detected afterwards, results still deterministic.
 */

#include <cstdio>
#include <vector>

#include "core/clean.h"

using namespace clean;

namespace
{

RuntimeConfig
narrowClocks()
{
    RuntimeConfig config;
    config.epoch = EpochConfig{8, 8}; // 8-bit clocks: rollover quickly
    return config;
}

/** Lock-heavy counter kernel; returns (counter value, resets). */
std::pair<int, std::uint64_t>
runCounterKernel(std::uint64_t iterations)
{
    CleanRuntime rt(narrowClocks());
    auto *x = rt.heap().allocSharedArray<int>(1);
    CleanMutex m(rt);
    std::vector<ThreadHandle> handles;
    for (int t = 0; t < 4; ++t) {
        handles.push_back(
            rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
                for (std::uint64_t i = 0; i < iterations; ++i) {
                    m.lock(ctx);
                    ctx.write(&x[0], ctx.read(&x[0]) + 1);
                    m.unlock(ctx);
                }
            }));
    }
    for (auto &h : handles)
        rt.join(rt.mainContext(), h);
    if (rt.raceOccurred())
        std::printf("  UNEXPECTED race: %s\n", rt.firstRace()->what());
    return {rt.mainContext().read(&x[0]), rt.rolloverResets()};
}

} // namespace

int
main()
{
    std::printf("== Deterministic clock rollover (8-bit clocks) ==\n\n");

    std::printf("1. lock-heavy run (4 threads x 500 critical "
                "sections)...\n");
    const auto [value, resets] = runCounterKernel(500);
    std::printf("   counter = %d (expected 2000), metadata resets = "
                "%llu\n\n",
                value, static_cast<unsigned long long>(resets));

    std::printf("2. same input twice -> same result despite resets:\n");
    const auto a = runCounterKernel(300);
    const auto b = runCounterKernel(300);
    std::printf("   run A: counter %d, %llu resets\n", a.first,
                static_cast<unsigned long long>(a.second));
    std::printf("   run B: counter %d, %llu resets  (%s)\n\n", b.first,
                static_cast<unsigned long long>(b.second),
                a == b ? "identical" : "DIFFERENT — bug!");

    std::printf("3. races are still caught after resets:\n");
    {
        CleanRuntime rt(narrowClocks());
        auto *x = rt.heap().allocSharedArray<int>(2);
        CleanMutex m(rt);
        // Warm up past at least one reset...
        auto warm = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
            for (int i = 0; i < 400; ++i) {
                m.lock(ctx);
                ctx.write(&x[0], i);
                m.unlock(ctx);
            }
        });
        rt.join(rt.mainContext(), warm);
        std::printf("   resets so far: %llu\n",
                    static_cast<unsigned long long>(rt.rolloverResets()));
        // ...then race on purpose.
        auto r1 = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
            for (int i = 0; i < 100000; ++i)
                ctx.write(&x[1], i);
        });
        auto r2 = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
            for (int i = 0; i < 100000; ++i)
                ctx.write(&x[1], -i);
        });
        rt.join(rt.mainContext(), r1);
        rt.join(rt.mainContext(), r2);
        std::printf("   deliberate WAW detected: %s\n",
                    rt.raceOccurred() ? rt.firstRace()->what()
                                      : "NO (bug!)");
    }
    return 0;
}
