#include "support/options.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "support/logging.h"

namespace clean
{

Options
Options::parse(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            opts.positional_.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            opts.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (i + 1 < argc && argv[i + 1][0] != '-') {
            opts.values_[arg] = argv[++i];
        } else {
            opts.values_[arg] = "1";
        }
    }
    return opts;
}

bool
Options::has(const std::string &name) const
{
    if (values_.count(name))
        return true;
    std::string env = "CLEAN_";
    for (char c : name)
        env += static_cast<char>(c == '-' ? '_' : std::toupper(c));
    return std::getenv(env.c_str()) != nullptr;
}

std::string
Options::getString(const std::string &name, const std::string &def) const
{
    auto it = values_.find(name);
    if (it != values_.end())
        return it->second;
    std::string env = "CLEAN_";
    for (char c : name)
        env += static_cast<char>(c == '-' ? '_' : std::toupper(c));
    if (const char *v = std::getenv(env.c_str()))
        return v;
    return def;
}

std::int64_t
Options::getInt(const std::string &name, std::int64_t def) const
{
    const std::string v = getString(name);
    if (v.empty())
        return def;
    // Parse with an endptr so `--watchdog-ms=abc` (strtoll -> 0) and
    // `--inject-seed=12junk` (silent truncation) are rejected instead of
    // silently misconfiguring the run.
    errno = 0;
    char *end = nullptr;
    const std::int64_t parsed = std::strtoll(v.c_str(), &end, 0);
    if (end == v.c_str() || *end != '\0')
        throw OptionError(name, v, "an integer");
    if (errno == ERANGE)
        throw OptionError(name, v, "an integer in range");
    return parsed;
}

double
Options::getDouble(const std::string &name, double def) const
{
    const std::string v = getString(name);
    if (v.empty())
        return def;
    errno = 0;
    char *end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
        throw OptionError(name, v, "a number");
    if (errno == ERANGE)
        throw OptionError(name, v, "a number in range");
    return parsed;
}

bool
Options::getBool(const std::string &name, bool def) const
{
    const std::string v = getString(name);
    if (v.empty())
        return def;
    return v != "0" && v != "false" && v != "no";
}

void
Options::set(const std::string &name, const std::string &value)
{
    values_[name] = value;
}

} // namespace clean
