# Empty dependencies file for hardware_sim.
# This may be replaced when dependencies are built.
