/**
 * @file
 * The CLEAN software race check (Figure 2 + §4.3/§4.4).
 *
 * Per checked byte, exactly one 32-bit epoch records the last write. The
 * check is:
 *
 *     race  <=>  CLOCK(epoch) > thread.vc[TID(epoch)]
 *
 * which, with tid bits replicated into vector-clock elements (§4.1),
 * collapses to a single raw integer comparison `epoch > vc.element(tid)`.
 *
 * Atomicity without locks (§4.3):
 *  - a WRITE is checked *before* the store and publishes its epoch with a
 *    compare-and-swap against the previously loaded value; a CAS failure
 *    means another write raced in between — a WAW race, and an exception
 *    is raised;
 *  - a READ is checked immediately *after* the load, so a write racing
 *    with the read is observed as RAW (its epoch is already visible),
 *    never misclassified as WAR. On x86-TSO no fences are required for
 *    this ordering (only later loads pass earlier stores); we use relaxed
 *    atomics accordingly.
 *
 * Multi-byte accesses (§4.4): in the common case all bytes of an access
 * carry the same epoch (paper: >= 99.7% of wide accesses), so one check
 * covers the access, and updates use 64/128-bit wide CAS to publish 2 or
 * 4 epochs per instruction.
 *
 * The checker is a template over the shadow backend (LinearShadow — the
 * paper's design — or SparseShadow); explicit instantiations live in
 * race_check.cc.
 */

#ifndef CLEAN_CORE_RACE_CHECK_H
#define CLEAN_CORE_RACE_CHECK_H

#include <cstddef>
#include <mutex>

#include "core/epoch.h"
#include "core/race_exception.h"
#include "core/thread_state.h"
#include "support/common.h"
#include "support/logging.h"

namespace clean
{

class LinearShadow;
class SparseShadow;

/** How concurrent checks on the same data are kept correct. */
enum class AtomicityMode
{
    /** Paper's design: lock-free CAS epoch updates + check ordering. */
    Cas,
    /** Ablation: classic sharded per-line locking around each check. */
    Locked,
};

/** Tunables for a RaceChecker. */
struct CheckerConfig
{
    EpochConfig epoch;
    /** Enable the §4.4 multi-byte fast path (Figure 8 toggles this). */
    bool vectorized = true;
    AtomicityMode atomicity = AtomicityMode::Cas;
    /**
     * log2 of the checking granule in bytes. 0 = per byte, the paper's
     * sound default for C/C++ (§3.2). 2 = per 4-byte word: the
     * "type-safe language" specialization the paper mentions but does
     * not explore — 4x less metadata and fewer checks, but accesses to
     * *distinct bytes* of one granule are indistinguishable, so it can
     * report races byte-granular CLEAN would not (false positives for
     * C/C++, sound for languages whose smallest shared unit is a word).
     */
    unsigned granuleLog2 = 0;
};

namespace detail
{

/** Shard lock table for AtomicityMode::Locked (one per 64B line hash). */
class ShardLocks
{
  public:
    static constexpr std::size_t kShards = 1024;

    std::mutex &
    forAddr(Addr addr)
    {
        return locks_[(addr >> 6) & (kShards - 1)];
    }

  private:
    std::mutex locks_[kShards];
};

} // namespace detail

/**
 * WAW/RAW race checker over a shadow backend.
 *
 * Thread-safe: any number of threads may call beforeWrite/afterRead
 * concurrently (that is the whole point).
 */
template <class ShadowT>
class RaceChecker
{
  public:
    RaceChecker(const CheckerConfig &config, ShadowT &shadow)
        : config_(config), shadow_(shadow),
          epochMask_(~EpochConfig::expandedBit())
    {
        CLEAN_ASSERT(config.epoch.valid());
    }

    const CheckerConfig &config() const { return config_; }

    /**
     * Check a write of @p size bytes at @p addr and publish the writing
     * thread's epoch. MUST run before the data store (§4.3).
     * @throws RaceException on a WAW race.
     */
    void
    beforeWrite(ThreadState &ts, Addr addr, std::size_t size)
    {
        ts.stats.sharedWrites++;
        ts.stats.accessedBytes += size;
        if (size >= 4)
            ts.stats.wideAccesses++;
        if (CLEAN_UNLIKELY(config_.granuleLog2 != 0)) {
            writeGranular(ts, addr, size);
            return;
        }
        while (size > 0) {
            const std::size_t run =
                std::min(size, shadow_.contiguousSlots(addr));
            writeRun(ts, addr, run);
            addr += run;
            size -= run;
        }
    }

    /**
     * Check a read of @p size bytes at @p addr. MUST run immediately
     * after the data load (§4.3). Reads never update metadata.
     * @throws RaceException on a RAW race.
     */
    void
    afterRead(ThreadState &ts, Addr addr, std::size_t size)
    {
        ts.stats.sharedReads++;
        ts.stats.accessedBytes += size;
        if (size >= 4)
            ts.stats.wideAccesses++;
        if (CLEAN_UNLIKELY(config_.granuleLog2 != 0)) {
            readGranular(ts, addr, size);
            return;
        }
        while (size > 0) {
            const std::size_t run =
                std::min(size, shadow_.contiguousSlots(addr));
            readRun(ts, addr, run);
            addr += run;
            size -= run;
        }
    }

  private:
    /** Number of granules covered by [addr, addr + size). */
    CLEAN_ALWAYS_INLINE std::size_t
    granules(Addr addr, std::size_t size) const
    {
        if (size == 0)
            return 0;
        const Addr first = addr >> config_.granuleLog2;
        const Addr last = (addr + size - 1) >> config_.granuleLog2;
        return static_cast<std::size_t>(last - first + 1);
    }

    CLEAN_ALWAYS_INLINE static EpochValue
    loadEpoch(const EpochValue *slot)
    {
        return __atomic_load_n(slot, __ATOMIC_RELAXED);
    }

    /** The Figure 2 line-3 check. @p unit is a granule index; the
     *  exception reports the granule's base byte address. */
    CLEAN_ALWAYS_INLINE void
    checkEpoch(ThreadState &ts, Addr unit, EpochValue rawEpoch,
               RaceKind kind) const
    {
        const EpochValue epoch = rawEpoch & epochMask_;
        const ThreadId writer = config_.epoch.tidOf(epoch);
        if (CLEAN_UNLIKELY(epoch > ts.vc.element(writer))) {
            throw RaceException(kind, unit << config_.granuleLog2,
                                ts.tid, writer,
                                config_.epoch.clockOf(epoch));
        }
    }

    /** True iff all @p n slots hold the same value as slots[0]. */
    CLEAN_ALWAYS_INLINE static bool
    allEqual(const EpochValue *slots, std::size_t n)
    {
        const EpochValue first = loadEpoch(slots);
        for (std::size_t i = 1; i < n; ++i) {
            if (loadEpoch(slots + i) != first)
                return false;
        }
        return true;
    }

    void readRun(ThreadState &ts, Addr addr, std::size_t n);
    void writeRun(ThreadState &ts, Addr addr, std::size_t n);

    /** Coarse-granule paths: one epoch per granule, stored at the slot
     *  of the granule's base byte (stride granule-size in the shadow);
     *  one check/update per granule, no wide vectorization. */
    void readGranular(ThreadState &ts, Addr addr, std::size_t size);
    void writeGranular(ThreadState &ts, Addr addr, std::size_t size);
    void writeRunCas(ThreadState &ts, Addr addr, EpochValue *slots,
                     std::size_t n);
    void writeRunLocked(ThreadState &ts, Addr addr, EpochValue *slots,
                        std::size_t n);

    /** Publishes newEpoch over n slots previously observed all == seen,
     *  using the widest CAS available. @throws RaceException on WAW. */
    void publishWide(ThreadState &ts, Addr addr, EpochValue *slots,
                     std::size_t n, EpochValue seen, EpochValue newEpoch);

    /** Per-byte CAS publish fallback. @throws RaceException on WAW. */
    void publishBytes(ThreadState &ts, Addr addr, EpochValue *slots,
                      std::size_t n, EpochValue newEpoch);

    CheckerConfig config_;
    ShadowT &shadow_;
    EpochValue epochMask_;
    detail::ShardLocks shardLocks_;
};

extern template class RaceChecker<LinearShadow>;
extern template class RaceChecker<SparseShadow>;

} // namespace clean

#endif // CLEAN_CORE_RACE_CHECK_H
