file(REMOVE_RECURSE
  "CMakeFiles/rollover_demo.dir/rollover_demo.cpp.o"
  "CMakeFiles/rollover_demo.dir/rollover_demo.cpp.o.d"
  "rollover_demo"
  "rollover_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rollover_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
