# Empty compiler generated dependencies file for clean_sim.
# This may be replaced when dependencies are built.
