/**
 * @file
 * Ablation — the hardware fast-path comparator (§5.2, Figure 4b).
 *
 * The paper reports that 54.2% of accesses finish through the cheap
 * sameThread/sameEpoch comparator against the per-core cached main
 * vector-clock element. This bench replays each trace with the
 * comparator disabled — every shared access then also fetches the VC
 * element from memory — and reports the slowdown the little register
 * + comparator save.
 */

#include "bench/common.h"
#include "sim/machine.h"

using namespace clean;
using namespace clean::bench;
using namespace clean::wl;

int
main(int argc, char **argv)
{
    const BenchConfig config = parseBench(argc, argv);

    std::printf("=== Ablation: hardware fast-path comparator "
                "(threads=%u, scale=%s) ===\n\n",
                config.threads,
                config.options.getString("scale", "test").c_str());
    std::printf("%-14s %12s %12s %12s %12s\n", "benchmark", "base[cyc]",
                "fastpath", "no-fastpath", "fp-benefit");

    std::vector<double> benefits;
    for (const auto &name : config.workloads) {
        if (name == "facesim")
            continue;
        auto result =
            runWorkload(baseSpec(config, name, BackendKind::Trace));
        sim::MachineConfig off;
        off.raceDetection = false;
        const auto base = sim::simulate(result.trace, off);

        sim::MachineConfig with;
        const auto fp = sim::simulate(result.trace, with);

        sim::MachineConfig without;
        without.hwFastPath = false;
        const auto nofp = sim::simulate(result.trace, without);

        const double sWith =
            static_cast<double>(fp.totalCycles) / base.totalCycles;
        const double sWithout =
            static_cast<double>(nofp.totalCycles) / base.totalCycles;
        benefits.push_back(100.0 * (sWithout - sWith));
        std::printf("%-14s %12llu %11.3fx %11.3fx %10.1f%%\n",
                    name.c_str(),
                    static_cast<unsigned long long>(base.totalCycles),
                    sWith, sWithout, 100.0 * (sWithout - sWith));
    }

    std::printf("\nmean slowdown saved by the comparator: %.1f%% of "
                "baseline execution time\n",
                mean(benefits));
    std::printf("paper: 54.2%% of accesses resolve through the fast "
                "path; with private accesses,\n90%% of all accesses are "
                "checked quickly.\n");
    return 0;
}
