/**
 * @file
 * Structured deadlock diagnosis thrown by watchdogged wait loops.
 *
 * When a blocking wait (Kendo turn wait, condition/barrier wait, join
 * handshake) exceeds the configured watchdog bound, the waiting thread
 * raises a DeadlockError instead of spinning forever. The error names
 * the waiting thread, the slot suspected of blocking progress (the
 * minimum-(count, tid) runnable Kendo slot — the thread whose turn it
 * is), how long the waiter spun, and a per-slot snapshot so the failure
 * is diagnosable from the exception alone.
 */

#ifndef CLEAN_SUPPORT_DEADLOCK_ERROR_H
#define CLEAN_SUPPORT_DEADLOCK_ERROR_H

#include <exception>
#include <string>
#include <utility>

#include "support/common.h"

namespace clean
{

/** Raised when a watchdogged wait exceeded its bound. */
class DeadlockError : public std::exception
{
  public:
    DeadlockError(std::string message, ThreadId waiter, ThreadId stuckSlot,
                  std::uint64_t waitedMs)
        : message_(std::move(message)), waiter_(waiter),
          stuckSlot_(stuckSlot), waitedMs_(waitedMs)
    {
    }

    const char *what() const noexcept override { return message_.c_str(); }

    /** Thread whose watchdog fired. */
    ThreadId waiter() const { return waiter_; }

    /** Slot suspected of blocking global progress. */
    ThreadId stuckSlot() const { return stuckSlot_; }

    /** How long the waiter waited before giving up. */
    std::uint64_t waitedMs() const { return waitedMs_; }

  private:
    std::string message_;
    ThreadId waiter_;
    ThreadId stuckSlot_;
    std::uint64_t waitedMs_;
};

} // namespace clean

#endif // CLEAN_SUPPORT_DEADLOCK_ERROR_H
