/**
 * @file
 * TsanLite — a ThreadSanitizer-style imprecise detector (§6.2.1, §7).
 *
 * The paper builds software CLEAN on top of ThreadSanitizer and uses
 * TSan to find the races it removes from the benchmark suite. TsanLite
 * reproduces TSan's two documented imprecision sources:
 *
 *   (i)  each 8-byte memory cell remembers only the last k = 4 accesses
 *        (older concurrent accesses are forgotten -> missed races), and
 *   (ii) concurrently executing checks are not atomic (records are
 *        plain relaxed words -> racing checks can miss each other).
 *
 * It can also report a race twice or pair it with a stale access. In
 * exchange, it is cheap: no locking, O(k) work per access.
 */

#ifndef CLEAN_DETECTORS_TSAN_LITE_H
#define CLEAN_DETECTORS_TSAN_LITE_H

#include <memory>
#include <unordered_map>

#include "detectors/detector.h"

namespace clean::detectors
{

/** Imprecise k-last-accesses detector over 8-byte shadow cells. */
class TsanLiteDetector : public Detector
{
  public:
    /** Access records kept per 8-byte cell. */
    static constexpr unsigned kRecordsPerCell = 4;

    TsanLiteDetector(const EpochConfig &config, ThreadId maxThreads);
    ~TsanLiteDetector() override;

    const char *name() const override { return "tsan-lite"; }
    bool detectsWar() const override { return true; }

    void onRead(ThreadId t, Addr addr, std::size_t size) override;
    void onWrite(ThreadId t, Addr addr, std::size_t size) override;

  private:
    /**
     * One packed access record:
     *   bits  0..31 epoch (tid | clock),
     *   bits 32..39 byte mask within the 8-byte cell,
     *   bit  40     is-write,
     *   bit  41     valid.
     */
    using PackedRecord = std::uint64_t;

    struct Cell
    {
        std::atomic<PackedRecord> records[kRecordsPerCell];
        std::atomic<std::uint32_t> next{0};
    };

    static constexpr std::size_t kCellsPerChunk = 512; // 4 KiB of data

    struct Chunk
    {
        Cell cells[kCellsPerChunk];
    };

    static PackedRecord
    pack(EpochValue epoch, std::uint8_t mask, bool isWrite)
    {
        return static_cast<PackedRecord>(epoch) |
               (static_cast<PackedRecord>(mask) << 32) |
               (static_cast<PackedRecord>(isWrite) << 40) |
               (PackedRecord{1} << 41);
    }

    Cell &cellFor(Addr wordAddr);
    void access(ThreadId t, Addr addr, std::size_t size, bool isWrite);

    std::mutex chunkMapMutex_;
    std::unordered_map<Addr, std::unique_ptr<Chunk>> chunks_;
};

} // namespace clean::detectors

#endif // CLEAN_DETECTORS_TSAN_LITE_H
