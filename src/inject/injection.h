/**
 * @file
 * Deterministic fault injection (chaos harness).
 *
 * CLEAN's headline claim is *cleaner semantics under failure*: a WAW/RAW
 * race stops the execution before the racy write takes effect, and every
 * exception-free run is deterministic under Kendo. The failure paths
 * themselves are therefore the part of the system most worth exercising
 * on demand. This subsystem injects faults at deterministic coordinates
 * so every provoked failure is exactly reproducible.
 *
 * A coordinate is the pair (tid, n): the n-th injection site this thread
 * has passed. Per-thread site streams are deterministic (they follow the
 * thread's own instruction stream), so a decision that is a pure hash of
 * (seed, fault kind, tid, n) fires at the same program point in every
 * run — replaying a seed replays the fault.
 *
 * Fault kinds:
 *   SkipCheck     — drop the race check (and epoch publish) on one shared
 *                   access: a compiler-instrumentation gap. Benign on
 *                   race-free code (stale epochs are older, never racier);
 *                   on racy code the race still surfaces through the
 *                   remaining instrumented accesses.
 *   SkipAcquire   — drop the vector-clock join of one lock acquisition: a
 *                   missed happens-before edge. Properly-locked accesses
 *                   by later holders then look concurrent and surface as
 *                   WAW/RAW exceptions downstream — deterministically,
 *                   because lock order is Kendo-ordered.
 *   Delay         — stall at a synchronization point: schedule
 *                   perturbation that must never change the Kendo-ordered
 *                   outcome.
 *   ForceRollover — request an early metadata reset at a sync point,
 *                   exercising the §4.5 park/reset protocol under load.
 *   KillThread    — the thread vanishes mid-SFR without running any
 *                   unwind protocol: its Kendo slot stays Active at a
 *                   frozen count, so siblings can only be rescued by the
 *                   turn-wait watchdog (DeadlockError). Never fires for
 *                   tid 0 (the orchestrating thread owns spawn/join).
 *                   Under OnRacePolicy::Recover the runtime supervises
 *                   the kill instead: the victim's open SFR is rolled
 *                   back from its undo log, its barrier parties are
 *                   retired, and its Kendo slot takes one final turn and
 *                   finishes cleanly — the run completes rather than
 *                   deadlocking (recoveredKills in the failure report).
 */

#ifndef CLEAN_INJECT_INJECTION_H
#define CLEAN_INJECT_INJECTION_H

#include <atomic>
#include <cstdint>
#include <exception>
#include <string>

#include "support/common.h"

namespace clean::inject
{

/** The kinds of fault the plan can inject. */
enum class FaultKind : unsigned
{
    SkipCheck = 0,
    SkipAcquire,
    Delay,
    ForceRollover,
    KillThread,
    kCount_,
};

const char *faultKindName(FaultKind kind);

/** Rates and seed of one injection campaign. All rates are per-site
 *  probabilities in [0, 1]; 0 disables the kind. */
struct InjectionConfig
{
    bool enabled = false;
    std::uint64_t seed = 1;
    double skipCheckRate = 0;
    double skipAcquireRate = 0;
    double delayRate = 0;
    double rolloverRate = 0;
    double killRate = 0;
    /** Stall length of one Delay fault. */
    std::uint32_t delayMicros = 100;

    /** True iff any fault can actually fire. */
    bool
    any() const
    {
        return enabled &&
               (skipCheckRate > 0 || skipAcquireRate > 0 || delayRate > 0 ||
                rolloverRate > 0 || killRate > 0);
    }
};

/** Faults actually fired during one run (telemetry, not decisions). */
struct InjectionStats
{
    std::uint64_t skippedChecks = 0;
    std::uint64_t skippedAcquires = 0;
    std::uint64_t delays = 0;
    std::uint64_t rollovers = 0;
    std::uint64_t kills = 0;

    std::uint64_t
    total() const
    {
        return skippedChecks + skippedAcquires + delays + rollovers + kills;
    }
};

/**
 * Thrown at a KillThread coordinate. The runtime treats it unlike every
 * other exception: the dying thread runs NO finish handshake and never
 * calls Kendo::finish, simulating a thread that crashed or was killed by
 * the OS mid-SFR. Siblings spinning on its frozen slot are rescued by
 * the watchdog, which converts the livelock into a DeadlockError.
 */
class ThreadKilled : public std::exception
{
  public:
    ThreadKilled(ThreadId tid, std::uint64_t coord);

    const char *what() const noexcept override { return message_.c_str(); }

    ThreadId tid() const { return tid_; }
    std::uint64_t coord() const { return coord_; }

  private:
    ThreadId tid_;
    std::uint64_t coord_;
    std::string message_;
};

/**
 * One run's injection decisions. Decision methods are pure functions of
 * (seed, kind, tid, coord) — thread-safe and reproducible; the plan only
 * mutates its fired-fault counters.
 */
class InjectionPlan
{
  public:
    explicit InjectionPlan(const InjectionConfig &config);

    const InjectionConfig &config() const { return config_; }

    /** Pure decision: would @p kind fire at (tid, coord)? No counters. */
    bool wouldFire(FaultKind kind, ThreadId tid, std::uint64_t coord) const;

    // Deciding entry points; each counts the fault when it fires.
    bool skipCheck(ThreadId tid, std::uint64_t coord);
    bool skipAcquire(ThreadId tid, std::uint64_t coord);
    /** Returns the stall in microseconds, 0 when no delay fires. */
    std::uint32_t delayMicros(ThreadId tid, std::uint64_t coord);
    bool forceRollover(ThreadId tid, std::uint64_t coord);
    /** Never fires for tid 0; see the file comment. */
    bool killThread(ThreadId tid, std::uint64_t coord);

    InjectionStats stats() const;

  private:
    static constexpr unsigned kKinds =
        static_cast<unsigned>(FaultKind::kCount_);

    InjectionConfig config_;
    /** Probability rates mapped onto the full u64 range. */
    std::uint64_t thresholds_[kKinds];

    std::atomic<std::uint64_t> skippedChecks_{0};
    std::atomic<std::uint64_t> skippedAcquires_{0};
    std::atomic<std::uint64_t> delays_{0};
    std::atomic<std::uint64_t> rollovers_{0};
    std::atomic<std::uint64_t> kills_{0};
};

} // namespace clean::inject

#endif // CLEAN_INJECT_INJECTION_H
