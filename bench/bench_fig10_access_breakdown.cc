/**
 * @file
 * Figure 10 — the breakdown of memory accesses under hardware CLEAN.
 *
 * Left side per benchmark: how accesses resolve in the Figure 4 check
 * (private / fast / VC-load / update / VC-load+update / expand).
 * Right side: how many shared accesses hit compact vs expanded metadata
 * lines.
 *
 * Paper landmarks: 54.2% of all accesses take the fast path on average
 * (90% with private included); line expansions are < 0.02% everywhere;
 * 94.3% of accesses are metadata-cheap; dedup is the outlier whose
 * accesses are mostly to expanded lines.
 */

#include "bench/common.h"
#include "sim/machine.h"

using namespace clean;
using namespace clean::bench;
using namespace clean::wl;

int
main(int argc, char **argv)
{
    const BenchConfig config = parseBench(argc, argv);

    std::printf("=== Figure 10: access breakdown "
                "(threads=%u, scale=%s) ===\n\n",
                config.threads,
                config.options.getString("scale", "test").c_str());
    std::printf("%-14s %8s %8s %8s %8s %8s %8s | %9s %9s\n", "benchmark",
                "priv%", "fast%", "vcld%", "upd%", "vl+up%", "expd%",
                "compact%", "expand%");

    std::vector<double> fastShare, privateShare, compactShare;
    for (const auto &name : config.workloads) {
        if (name == "facesim")
            continue; // as in Figure 9/10 (simulation time)
        auto result =
            runWorkload(baseSpec(config, name, BackendKind::Trace));
        sim::MachineConfig on;
        const auto stats = sim::simulate(result.trace, on);
        const auto &hw = stats.hw;
        const double total = static_cast<double>(hw.privateAccesses +
                                                 hw.sharedAccesses());
        if (total == 0)
            continue;
        auto pct = [&](std::uint64_t v) {
            return 100.0 * static_cast<double>(v) / total;
        };
        const double lineTotal =
            static_cast<double>(hw.compactLineAccesses +
                                hw.expandedLineAccesses);
        const double compactPct =
            lineTotal ? 100.0 * hw.compactLineAccesses / lineTotal : 100;
        privateShare.push_back(pct(hw.privateAccesses));
        fastShare.push_back(pct(hw.fastAccesses));
        compactShare.push_back(compactPct);
        std::printf(
            "%-14s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.3f%% | "
            "%8.1f%% %8.1f%%\n",
            name.c_str(), pct(hw.privateAccesses), pct(hw.fastAccesses),
            pct(hw.vcLoadAccesses), pct(hw.updateAccesses),
            pct(hw.vcLoadUpdateAccesses), pct(hw.expandAccesses),
            compactPct, 100.0 - compactPct);
    }

    std::printf("\nmeans: private %.1f%%, fast %.1f%%, "
                "fast+private %.1f%%, compact-line %.1f%%\n",
                mean(privateShare), mean(fastShare),
                mean(privateShare) + mean(fastShare),
                mean(compactShare));
    std::printf("paper: fast 54.2%% of all accesses (90%% with private); "
                "expansions < 0.02%%;\ndedup mostly expanded lines, "
                "everything else overwhelmingly compact.\n");
    return 0;
}
