/**
 * @file
 * CleanRuntime end-to-end tests: thread lifecycle, instrumented
 * accesses, race exceptions, execution-model guarantees (§3.1).
 */

#include <gtest/gtest.h>

#include <atomic>

#include "core/clean.h"

namespace clean
{
namespace
{

RuntimeConfig
smallConfig()
{
    RuntimeConfig config;
    config.maxThreads = 16;
    config.heap.sharedBytes = std::size_t{64} << 20;
    config.heap.privateBytes = std::size_t{16} << 20;
    return config;
}

TEST(Runtime, ConstructsAndRegistersMainThread)
{
    CleanRuntime rt(smallConfig());
    EXPECT_EQ(rt.mainContext().tid(), 0u);
    EXPECT_FALSE(rt.raceOccurred());
}

TEST(Runtime, MainThreadCanAccessSharedData)
{
    CleanRuntime rt(smallConfig());
    auto *x = rt.heap().allocSharedArray<int>(4);
    rt.mainContext().write(&x[0], 42);
    EXPECT_EQ(rt.mainContext().read(&x[0]), 42);
}

TEST(Runtime, SpawnJoinRoundTrip)
{
    CleanRuntime rt(smallConfig());
    auto *x = rt.heap().allocSharedArray<int>(1);
    auto h = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        ctx.write(&x[0], 7);
    });
    rt.join(rt.mainContext(), h);
    // Join orders the child's write before this read.
    EXPECT_EQ(rt.mainContext().read(&x[0]), 7);
    EXPECT_FALSE(rt.raceOccurred());
}

TEST(Runtime, ForkOrdersParentWritesBeforeChildReads)
{
    CleanRuntime rt(smallConfig());
    auto *x = rt.heap().allocSharedArray<int>(1);
    rt.mainContext().write(&x[0], 11);
    std::atomic<int> seen{0};
    auto h = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        seen = ctx.read(&x[0]);
    });
    rt.join(rt.mainContext(), h);
    EXPECT_EQ(seen.load(), 11);
    EXPECT_FALSE(rt.raceOccurred());
}

TEST(Runtime, UnorderedWriteWriteThrowsWaw)
{
    CleanRuntime rt(smallConfig());
    auto *x = rt.heap().allocSharedArray<int>(1);
    rt.mainContext().write(&x[0], 1);
    // The child inherits the parent's clock, writes, and the *parent*
    // then writes again without joining: parent's second write races.
    auto h = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        ctx.write(&x[0], 2);
    });
    rt.join(rt.mainContext(), h);
    EXPECT_FALSE(rt.raceOccurred()); // join ordered everything so far

    auto h2 = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        ctx.write(&x[0], 3);
        // Unordered sibling write from main (below) or this one throws.
    });
    bool threw = false;
    try {
        // Race with the running child.
        for (int i = 0; i < 100000 && !rt.raceOccurred(); ++i)
            rt.mainContext().write(&x[0], 4);
    } catch (const RaceException &e) {
        threw = true;
        EXPECT_EQ(e.kind(), RaceKind::Waw);
    } catch (const ExecutionAborted &) {
        threw = true;
    }
    rt.join(rt.mainContext(), h2);
    EXPECT_TRUE(threw || rt.raceOccurred());
    EXPECT_TRUE(rt.raceOccurred());
    ASSERT_NE(rt.firstRace(), nullptr);
    EXPECT_EQ(rt.firstRace()->kind(), RaceKind::Waw);
}

TEST(Runtime, RawRaceDetected)
{
    CleanRuntime rt(smallConfig());
    auto *x = rt.heap().allocSharedArray<int>(1);
    auto h = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        ctx.write(&x[0], 5);
    });
    bool threw = false;
    try {
        for (int i = 0; i < 1000000 && !rt.raceOccurred(); ++i)
            rt.mainContext().read(&x[0]);
    } catch (const RaceException &e) {
        threw = true;
        EXPECT_EQ(e.kind(), RaceKind::Raw);
    } catch (const ExecutionAborted &) {
        threw = true;
    }
    rt.join(rt.mainContext(), h);
    // Either the reader caught the writer's epoch (RAW) or the read
    // loop finished before the write landed — in which case the write
    // raced with nothing (reads don't update metadata). Both are legal;
    // but if a race was recorded it must be RAW.
    if (rt.raceOccurred()) {
        ASSERT_NE(rt.firstRace(), nullptr);
        EXPECT_EQ(rt.firstRace()->kind(), RaceKind::Raw);
    }
    (void)threw;
}

TEST(Runtime, WarRaceIsAllowedAndExecutionCompletes)
{
    // Reader then writer with no ordering: a WAR race a precise
    // detector reports; CLEAN must complete (§3.1).
    CleanRuntime rt(smallConfig());
    auto *x = rt.heap().allocSharedArray<int>(1);
    // Child only reads; main writes after spawning (no join yet):
    // child reads the pre-write value or... the write is ordered after
    // fork, so child read vs main write is a genuine WAR/RAW timing
    // race. To get a *pure* WAR deterministically, read first, join,
    // then write from an unrelated thread view is impossible — instead
    // keep the classic: child reads x, parent concurrently writes y
    // read by nobody. Exercise the documented behavior instead:
    // an unordered read *before* any write never throws.
    auto h = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        for (int i = 0; i < 1000; ++i)
            ctx.read(&x[0]);
    });
    rt.join(rt.mainContext(), h);
    EXPECT_NO_THROW(rt.mainContext().write(&x[0], 9));
    EXPECT_FALSE(rt.raceOccurred());
}

TEST(Runtime, SiblingsWithDisjointDataDoNotRace)
{
    CleanRuntime rt(smallConfig());
    auto *x = rt.heap().allocSharedArray<std::uint64_t>(64);
    std::vector<ThreadHandle> handles;
    for (int t = 0; t < 4; ++t) {
        handles.push_back(
            rt.spawn(rt.mainContext(), [&, t](ThreadContext &ctx) {
                for (int i = 0; i < 200; ++i) {
                    ctx.write(&x[t * 16 + (i % 16)],
                              static_cast<std::uint64_t>(i));
                }
            }));
    }
    for (auto &h : handles)
        rt.join(rt.mainContext(), h);
    EXPECT_FALSE(rt.raceOccurred());
}

TEST(Runtime, TidsAreReusedAfterJoin)
{
    RuntimeConfig config = smallConfig();
    config.maxThreads = 4; // forces reuse
    CleanRuntime rt(config);
    auto *x = rt.heap().allocSharedArray<int>(8);
    for (int round = 0; round < 10; ++round) {
        auto h = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
            ctx.write(&x[0], 1);
        });
        rt.join(rt.mainContext(), h);
    }
    EXPECT_FALSE(rt.raceOccurred());
}

TEST(Runtime, TidReuseKeepsEpochsMonotonic)
{
    RuntimeConfig config = smallConfig();
    config.maxThreads = 3;
    CleanRuntime rt(config);
    auto *x = rt.heap().allocSharedArray<int>(1);
    // Generations of threads writing the same location, each joined
    // before the next spawns: no races, even though tids recycle.
    for (int g = 0; g < 6; ++g) {
        auto h = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
            ctx.write(&x[0], g);
            ctx.read(&x[0]);
        });
        rt.join(rt.mainContext(), h);
    }
    EXPECT_FALSE(rt.raceOccurred());
}

TEST(Runtime, NestedSpawnWorks)
{
    CleanRuntime rt(smallConfig());
    auto *x = rt.heap().allocSharedArray<int>(2);
    auto h = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        ctx.write(&x[0], 1);
        auto inner = rt.spawn(ctx, [&](ThreadContext &ictx) {
            // Fork edge: inner sees outer's write.
            ictx.write(&x[1], ictx.read(&x[0]) + 1);
        });
        rt.join(ctx, inner);
        EXPECT_EQ(ctx.read(&x[1]), 2);
    });
    rt.join(rt.mainContext(), h);
    EXPECT_FALSE(rt.raceOccurred());
}

TEST(Runtime, AbortUnwindsSiblings)
{
    CleanRuntime rt(smallConfig());
    auto *x = rt.heap().allocSharedArray<int>(4);
    // Two racing writers; a third well-behaved looper must unwind via
    // ExecutionAborted rather than run to completion obliviously.
    std::atomic<bool> looperAborted{false};
    auto racer1 = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        for (int i = 0; i < 100000; ++i)
            ctx.write(&x[0], i);
    });
    auto racer2 = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        for (int i = 0; i < 100000; ++i)
            ctx.write(&x[0], -i);
    });
    auto looper = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        try {
            for (long i = 0;; ++i)
                ctx.write(&x[1], static_cast<int>(i & 0xff));
        } catch (const ExecutionAborted &) {
            looperAborted = true;
            throw;
        }
    });
    rt.join(rt.mainContext(), racer1);
    rt.join(rt.mainContext(), racer2);
    rt.join(rt.mainContext(), looper);
    EXPECT_TRUE(rt.raceOccurred());
    EXPECT_TRUE(looperAborted.load());
    ASSERT_NE(rt.firstRace(), nullptr);
    EXPECT_EQ(rt.firstRace()->kind(), RaceKind::Waw);
}

TEST(Runtime, PrivateAllocationsAreUnchecked)
{
    CleanRuntime rt(smallConfig());
    auto *priv = rt.heap().allocPrivateArray<int>(4);
    // Both threads may write private memory freely: no checks apply.
    auto h = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        ctx.write(&priv[0], 1);
    });
    rt.join(rt.mainContext(), h);
    rt.mainContext().write(&priv[0], 2);
    EXPECT_FALSE(rt.raceOccurred());
}

TEST(Runtime, DetectionOffNeverThrows)
{
    RuntimeConfig config = smallConfig();
    config.detection = false;
    CleanRuntime rt(config);
    auto *x = rt.heap().allocSharedArray<int>(1);
    auto h1 = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        for (int i = 0; i < 10000; ++i)
            ctx.write(&x[0], i);
    });
    auto h2 = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        for (int i = 0; i < 10000; ++i)
            ctx.write(&x[0], -i);
    });
    rt.join(rt.mainContext(), h1);
    rt.join(rt.mainContext(), h2);
    EXPECT_FALSE(rt.raceOccurred());
}

TEST(Runtime, CheckerStatsAggregate)
{
    CleanRuntime rt(smallConfig());
    auto *x = rt.heap().allocSharedArray<std::uint64_t>(8);
    auto h = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        for (int i = 0; i < 10; ++i)
            ctx.write(&x[i % 8], static_cast<std::uint64_t>(i));
    });
    rt.join(rt.mainContext(), h);
    const CheckerStats stats = rt.aggregatedCheckerStats();
    EXPECT_EQ(stats.sharedWrites, 10u);
    EXPECT_EQ(stats.accessedBytes, 80u);
}

TEST(Runtime, ThreadLimitIsEnforcedDeath)
{
    RuntimeConfig config = smallConfig();
    config.maxThreads = 1; // main only
    CleanRuntime rt(config);
    EXPECT_EXIT(
        {
            auto h = rt.spawn(rt.mainContext(), [](ThreadContext &) {});
            (void)h;
        },
        ::testing::ExitedWithCode(1), "thread limit");
}

TEST(Runtime, WordGranularityRuntimeDetectsAndOrders)
{
    RuntimeConfig config = smallConfig();
    config.granuleLog2 = 2;
    CleanRuntime rt(config);
    auto *x = rt.heap().allocSharedArray<int>(4);
    auto h = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        ctx.write(&x[0], 1);
    });
    rt.join(rt.mainContext(), h);
    EXPECT_EQ(rt.mainContext().read(&x[0]), 1);
    EXPECT_FALSE(rt.raceOccurred());
}

TEST(Runtime, DetChunkPreservesDeterminismAndCorrectness)
{
    for (std::uint32_t chunk : {1u, 4u, 16u}) {
        auto runOnce = [chunk] {
            RuntimeConfig config = smallConfig();
            config.detChunk = chunk;
            CleanRuntime rt(config);
            auto *order = rt.heap().allocSharedArray<int>(256);
            auto *cursor = rt.heap().allocSharedArray<int>(1);
            CleanMutex m(rt);
            std::vector<ThreadHandle> handles;
            for (int t = 0; t < 3; ++t) {
                handles.push_back(rt.spawn(
                    rt.mainContext(), [&, t](ThreadContext &ctx) {
                        for (int i = 0; i < 40; ++i) {
                            m.lock(ctx);
                            const int at = ctx.read(&cursor[0]);
                            ctx.write(&order[at], t);
                            ctx.write(&cursor[0], at + 1);
                            m.unlock(ctx);
                            ctx.detTick((t + 1u) * (i % 3 + 1u));
                        }
                    }));
            }
            for (auto &h : handles)
                rt.join(rt.mainContext(), h);
            EXPECT_FALSE(rt.raceOccurred());
            std::vector<int> result;
            for (int i = 0; i < 120; ++i)
                result.push_back(rt.mainContext().read(&order[i]));
            return result;
        };
        EXPECT_EQ(runOnce(), runOnce()) << "detChunk=" << chunk;
    }
}

TEST(Runtime, DeterministicCountsStableAcrossRuns)
{
    auto runOnce = [] {
        CleanRuntime rt(smallConfig());
        auto *x = rt.heap().allocSharedArray<std::uint64_t>(64);
        std::vector<ThreadHandle> handles;
        for (int t = 0; t < 4; ++t) {
            handles.push_back(
                rt.spawn(rt.mainContext(), [&, t](ThreadContext &ctx) {
                    for (int i = 0; i < 500; ++i)
                        ctx.write(&x[t * 16 + (i % 16)],
                                  static_cast<std::uint64_t>(i));
                }));
        }
        for (auto &h : handles)
            rt.join(rt.mainContext(), h);
        return rt.finalDetCounts();
    };
    EXPECT_EQ(runOnce(), runOnce());
}

} // namespace
} // namespace clean
