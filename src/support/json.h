/**
 * @file
 * Minimal JSON emitter for structured failure reports.
 *
 * Deliberately tiny: objects, arrays, strings, integers, booleans —
 * enough for machine-readable failure reports whose byte-for-byte
 * stability matters (deterministic-replay tests diff them verbatim).
 * No floating point (formatting is locale/libc sensitive) and no
 * pretty-printing options beyond a fixed layout.
 */

#ifndef CLEAN_SUPPORT_JSON_H
#define CLEAN_SUPPORT_JSON_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace clean
{

/** Streaming JSON writer with comma/nesting bookkeeping. */
class JsonWriter
{
  public:
    JsonWriter &
    beginObject()
    {
        prefix();
        out_ += '{';
        stack_.push_back(false);
        return *this;
    }

    JsonWriter &
    endObject()
    {
        stack_.pop_back();
        out_ += '}';
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        prefix();
        out_ += '[';
        stack_.push_back(false);
        return *this;
    }

    JsonWriter &
    endArray()
    {
        stack_.pop_back();
        out_ += ']';
        return *this;
    }

    /** Emits the key of the next object member. */
    JsonWriter &
    key(std::string_view name)
    {
        prefix();
        quote(name);
        out_ += ':';
        pendingValue_ = true;
        return *this;
    }

    JsonWriter &
    value(std::string_view v)
    {
        prefix();
        quote(v);
        return *this;
    }

    JsonWriter &
    value(const char *v)
    {
        return value(std::string_view(v));
    }

    JsonWriter &
    value(std::uint64_t v)
    {
        prefix();
        out_ += std::to_string(v);
        return *this;
    }

    JsonWriter &
    value(std::int64_t v)
    {
        prefix();
        out_ += std::to_string(v);
        return *this;
    }

    JsonWriter &
    value(bool v)
    {
        prefix();
        out_ += v ? "true" : "false";
        return *this;
    }

    /** key + value in one call. */
    template <typename T>
    JsonWriter &
    field(std::string_view name, T v)
    {
        key(name);
        return value(v);
    }

    const std::string &str() const { return out_; }

  private:
    void
    prefix()
    {
        if (pendingValue_) {
            // Value directly after key(): no comma.
            pendingValue_ = false;
            return;
        }
        if (!stack_.empty()) {
            if (stack_.back())
                out_ += ',';
            stack_.back() = true;
        }
    }

    void
    quote(std::string_view s)
    {
        out_ += '"';
        for (char c : s) {
            switch (c) {
              case '"': out_ += "\\\""; break;
              case '\\': out_ += "\\\\"; break;
              case '\n': out_ += "\\n"; break;
              case '\r': out_ += "\\r"; break;
              case '\t': out_ += "\\t"; break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(c));
                    out_ += buf;
                } else {
                    out_ += c;
                }
            }
        }
        out_ += '"';
    }

    std::string out_;
    /** Per nesting level: "already emitted a member, comma needed". */
    std::vector<bool> stack_;
    bool pendingValue_ = false;
};

} // namespace clean

#endif // CLEAN_SUPPORT_JSON_H
