/**
 * @file
 * Fixed-region heap for potentially-shared program data (§4.2).
 *
 * CLEAN's software shadow memory relies on a fixed arithmetic mapping
 * from a data address to its epoch's address. We therefore serve all
 * checked ("potentially shared") allocations from one contiguous
 * mmap'ed region reserved up front with MAP_NORESERVE — only touched
 * pages ever consume physical memory, mirroring the paper's observation
 * that metadata cost is proportional to the *accessed* data.
 *
 * The region is split in two halves:
 *   [base, base+sharedBytes)                  — shared allocations,
 *   [base+sharedBytes, base+sharedBytes+privateBytes) — per-thread
 *       private allocations (the moral equivalent of stack data, which
 *       the paper's Pin-based simulator classifies as private and the
 *       compiler instrumentation skips).
 *
 * Allocation is a bump pointer: workloads allocate during setup and the
 * whole heap is released when the runtime dies. free() is a no-op by
 * design (same model as region allocators in simulators).
 */

#ifndef CLEAN_CORE_SHARED_HEAP_H
#define CLEAN_CORE_SHARED_HEAP_H

#include <atomic>
#include <cstddef>

#include "support/common.h"

namespace clean
{

/** Region sizes for a SharedHeap. */
struct SharedHeapConfig
{
    /** Virtual span reserved for shared data. */
    std::size_t sharedBytes = std::size_t{1} << 31; // 2 GiB
    /** Virtual span reserved for private (stack-like) data. */
    std::size_t privateBytes = std::size_t{1} << 30; // 1 GiB
};

/** Bump allocator over one reserved virtual region. */
class SharedHeap
{
  public:
    explicit SharedHeap(const SharedHeapConfig &config = {});
    ~SharedHeap();

    SharedHeap(const SharedHeap &) = delete;
    SharedHeap &operator=(const SharedHeap &) = delete;

    /** Allocates zeroed, 16-byte-aligned shared (checked) memory. */
    void *allocShared(std::size_t bytes);

    /** Allocates zeroed private (unchecked) memory. */
    void *allocPrivate(std::size_t bytes);

    /** Typed shared array helper. */
    template <typename T>
    T *
    allocSharedArray(std::size_t count)
    {
        return static_cast<T *>(allocShared(count * sizeof(T)));
    }

    /** Typed private array helper. */
    template <typename T>
    T *
    allocPrivateArray(std::size_t count)
    {
        return static_cast<T *>(allocPrivate(count * sizeof(T)));
    }

    /** True iff @p addr lies in the private half. */
    bool
    isPrivate(Addr addr) const
    {
        return addr >= privateBase() && addr < privateBase() + privateUsed();
    }

    /** True iff @p addr lies anywhere in the reserved region. */
    bool
    contains(Addr addr) const
    {
        return addr >= sharedBase() &&
               addr < sharedBase() + config_.sharedBytes +
                          config_.privateBytes;
    }

    Addr sharedBase() const { return reinterpret_cast<Addr>(base_); }
    std::size_t sharedSpan() const { return config_.sharedBytes; }
    Addr privateBase() const { return sharedBase() + config_.sharedBytes; }

    /** Bytes handed out so far from each half. */
    std::size_t sharedUsed() const { return sharedBump_.load(); }
    std::size_t privateUsed() const { return privateBump_.load(); }

  private:
    void *bump(std::atomic<std::size_t> &cursor, std::size_t limit,
               std::size_t offsetBase, std::size_t bytes);

    SharedHeapConfig config_;
    unsigned char *base_ = nullptr;
    std::atomic<std::size_t> sharedBump_{0};
    std::atomic<std::size_t> privateBump_{0};
};

} // namespace clean

#endif // CLEAN_CORE_SHARED_HEAP_H
