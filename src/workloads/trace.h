/**
 * @file
 * Execution traces feeding the hardware-CLEAN timing simulator (§6.3.1).
 *
 * The paper drives its simulator with Pin: the benchmark executes and
 * every memory access / synchronization operation is modeled as it
 * happens. We split that into two phases with identical information
 * content: run the workload once under the tracing backend, recording
 * per-thread event streams plus the observed total order per
 * synchronization object, then replay the streams on the timing model
 * (sim/machine.h), which stalls an acquire until its recorded
 * predecessors complete.
 *
 * Events:
 *   Read/Write   — addr, size, private flag (the paper approximates
 *                  private as stack accesses; we use the private heap
 *                  half). Costs 1 issue cycle + memory latency; shared
 *                  accesses additionally engage the race-check unit.
 *   Acquire/Release — sync object id + per-object sequence number; the
 *                  replay enforces the recorded order and charges the
 *                  +100-cycle vector-clock maintenance of §6.3.1.
 *   BarrierArrive — generation-complete semantics over `parties`.
 *   Compute      — n 1-cycle ALU instructions.
 */

#ifndef CLEAN_WORKLOADS_TRACE_H
#define CLEAN_WORKLOADS_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "support/common.h"

namespace clean::wl
{

/** One recorded event. */
struct TraceEvent
{
    enum class Kind : std::uint8_t
    {
        Read,
        Write,
        Acquire,
        Release,
        BarrierArrive,
        Compute,
    };

    /** Data address (Read/Write) or compute amount (Compute). */
    std::uint64_t addr = 0;
    /** Sync object id (sync kinds). */
    std::uint32_t object = 0;
    /** Per-object sequence number assigned at record time (sync kinds). */
    std::uint32_t seq = 0;
    Kind kind = Kind::Compute;
    /** Access width in bytes (Read/Write). */
    std::uint8_t size = 0;
    /** True for accesses to the private (stack-like) heap half. */
    bool isPrivate = false;
};

/** Metadata for one recorded synchronization object. */
struct TraceSyncObject
{
    enum class Kind : std::uint8_t { Mutex, Barrier, Cond };

    Kind kind = Kind::Mutex;
    /** Parties for barriers; 0 otherwise. */
    std::uint32_t parties = 0;
    /** Total events recorded on this object. */
    std::uint32_t eventCount = 0;
};

/** A complete multi-threaded execution trace. */
struct Trace
{
    std::vector<std::vector<TraceEvent>> perThread;
    std::vector<TraceSyncObject> objects;
    /** Span of shared data addresses touched (for shadow sizing). */
    Addr minAddr = ~Addr{0};
    Addr maxAddr = 0;

    std::size_t
    totalEvents() const
    {
        std::size_t n = 0;
        for (const auto &t : perThread)
            n += t.size();
        return n;
    }

    std::size_t
    memoryAccesses() const
    {
        std::size_t n = 0;
        for (const auto &t : perThread) {
            for (const auto &e : t) {
                if (e.kind == TraceEvent::Kind::Read ||
                    e.kind == TraceEvent::Kind::Write) {
                    ++n;
                }
            }
        }
        return n;
    }

    /** Multi-line human-readable summary. */
    std::string summary() const;
};

/**
 * Writes @p trace to @p path in a simple versioned binary format.
 * Returns false on I/O failure. Traces are host-independent (addresses
 * are normalized at simulation time), so a saved trace can be replayed
 * repeatedly or elsewhere without re-running the workload.
 */
bool saveTrace(const Trace &trace, const std::string &path);

/** Reads a trace written by saveTrace. Returns false on I/O failure or
 *  format mismatch; @p out is untouched on failure. */
bool loadTrace(const std::string &path, Trace &out);

} // namespace clean::wl

#endif // CLEAN_WORKLOADS_TRACE_H
