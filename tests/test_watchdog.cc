/**
 * @file
 * Watchdog tests: SpinWait deadlines, Kendo-level DeadlockError, and the
 * runtime watchdog converting genuinely stuck executions (a thread that
 * stops advancing deterministic time, a condition wait nobody signals)
 * into structured DeadlockError diagnoses instead of unbounded spins.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/clean.h"
#include "support/backoff.h"
#include "support/deadlock_error.h"

namespace clean
{
namespace
{

RuntimeConfig
watchdogConfig(std::uint64_t watchdogMs)
{
    RuntimeConfig config;
    config.maxThreads = 16;
    config.heap.sharedBytes = std::size_t{64} << 20;
    config.heap.privateBytes = std::size_t{16} << 20;
    config.watchdogMs = watchdogMs;
    return config;
}

TEST(SpinWait, NeverExpiresWhenDisabled)
{
    SpinWait spin(0);
    for (int i = 0; i < 100; ++i)
        spin.pause();
    EXPECT_FALSE(spin.expired());
    EXPECT_EQ(spin.iterations(), 100u);
}

TEST(SpinWait, ExpiresAfterDeadline)
{
    SpinWait spin(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(spin.expired());
    EXPECT_GE(spin.elapsedMs(), 1u);
}

TEST(KendoWatchdog, DisabledByDefault)
{
    det::Kendo kendo(true, 4);
    EXPECT_EQ(kendo.watchdogMs(), 0u);
}

TEST(KendoWatchdog, WaitForTurnThrowsNamingTheStuckSlot)
{
    det::Kendo kendo(true, 4);
    kendo.setWatchdogMs(50);
    kendo.activate(0, 5);
    kendo.activate(1, 0); // strict minimum, never advances
    try {
        kendo.waitForTurn(0);
        FAIL() << "expected DeadlockError";
    } catch (const DeadlockError &deadlock) {
        EXPECT_EQ(deadlock.waiter(), 0u);
        EXPECT_EQ(deadlock.stuckSlot(), 1u);
        EXPECT_GE(deadlock.waitedMs(), 50u);
        EXPECT_NE(std::string(deadlock.what()).find("stuck slot 1"),
                  std::string::npos);
    }
}

TEST(KendoWatchdog, WaitWhileBlockedThrowsWhenNeverUnblocked)
{
    det::Kendo kendo(true, 4);
    kendo.setWatchdogMs(50);
    kendo.activate(0, 0);
    kendo.block(0);
    EXPECT_THROW(kendo.waitWhileBlocked(0), DeadlockError);
}

TEST(KendoWatchdog, SnapshotListsLiveSlots)
{
    det::Kendo kendo(true, 4);
    kendo.activate(0, 3);
    kendo.activate(2, 7);
    const std::string snap = kendo.snapshot();
    EXPECT_NE(snap.find("slot 0: det=3 active"), std::string::npos);
    EXPECT_NE(snap.find("slot 2: det=7 active"), std::string::npos);
    EXPECT_EQ(snap.find("slot 1"), std::string::npos);
    EXPECT_EQ(kendo.minActiveSlot(), 0u);
}

TEST(RuntimeWatchdog, StuckThreadSurfacesAsDeadlockErrorAtJoin)
{
    CleanRuntime rt(watchdogConfig(200));
    // The child stops advancing deterministic time (no instrumented
    // accesses, no sync) while staying Active, so the joining main
    // thread can never take its turn. The watchdog must convert the
    // unbounded turn wait into a DeadlockError; the abort it raises then
    // releases the child so it can be physically reaped.
    auto h = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        while (!ctx.runtime().aborted())
            std::this_thread::yield();
    });
    EXPECT_THROW(rt.join(rt.mainContext(), h), DeadlockError);
    EXPECT_TRUE(rt.deadlockOccurred());
    ASSERT_NE(rt.firstDeadlock(), nullptr);
    EXPECT_NE(std::string(rt.firstDeadlock()->what())
                  .find("suspected stuck slot"),
              std::string::npos);
}

TEST(RuntimeWatchdog, UnsignaledCondWaitIsDiagnosedAndRecorded)
{
    CleanRuntime rt(watchdogConfig(200));
    CleanMutex m(rt);
    CleanCondVar cv(rt);
    auto h = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        m.lock(ctx);
        cv.wait(ctx, m); // nobody will ever signal
        m.unlock(ctx);
    });
    // Jump main far into the deterministic future (a fresh child ties
    // with its parent's count, and ties go to tid 0) so the child gets
    // its turns and reaches the condition wait itself instead of
    // watchdogging inside acquireTurn.
    rt.mainContext().detTick(1000000);
    rt.mainContext().acquireTurn();
    // Let the child's own watchdog fire before joining so the join path
    // observes an already-aborted execution.
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    rt.join(rt.mainContext(), h);
    EXPECT_TRUE(rt.deadlockOccurred());
    ASSERT_NE(rt.firstDeadlock(), nullptr);
    EXPECT_NE(std::string(rt.firstDeadlock()->what())
                  .find("CleanCondVar::wait"),
              std::string::npos);
    // The failure report names the deadlock.
    const std::string report = rt.failureReportJson();
    EXPECT_NE(report.find("\"outcome\":\"deadlock\""), std::string::npos);
    EXPECT_NE(report.find("\"deadlock\":{"), std::string::npos);
}

TEST(RuntimeWatchdog, ZeroDisablesTheWatchdogButAbortStillUnblocks)
{
    CleanRuntime rt(watchdogConfig(0));
    CleanMutex m(rt);
    CleanCondVar cv(rt);
    auto h = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        m.lock(ctx);
        cv.wait(ctx, m);
        m.unlock(ctx);
    });
    // Push main's deterministic count above the child's so the wait
    // registration is Kendo-ordered before the signal (no lost wakeup).
    rt.mainContext().detTick(1000);
    // Signal deterministically and join: with the watchdog off this must
    // behave exactly like the pre-hardening runtime.
    cv.signal(rt.mainContext());
    rt.join(rt.mainContext(), h);
    EXPECT_FALSE(rt.deadlockOccurred());
    EXPECT_FALSE(rt.aborted());
}

} // namespace
} // namespace clean
