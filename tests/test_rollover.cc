/**
 * @file
 * Clock-rollover tests (§4.5): with deliberately tiny clock widths,
 * resets must occur at deterministic points, preserve the detection
 * guarantees within phases, and keep results deterministic.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/clean.h"

namespace clean
{
namespace
{

RuntimeConfig
tinyClockConfig(unsigned clockBits = 8)
{
    RuntimeConfig config;
    config.epoch = EpochConfig{clockBits, 8};
    config.maxThreads = 16;
    config.heap.sharedBytes = std::size_t{64} << 20;
    config.heap.privateBytes = std::size_t{16} << 20;
    return config;
}

/** Lock-heavy kernel: every critical section ticks the holder's clock,
 *  so an 8-bit clock forces many rollovers. */
int
runLockHeavy(CleanRuntime &rt, int iterations)
{
    auto *x = rt.heap().allocSharedArray<int>(1);
    CleanMutex m(rt);
    std::vector<ThreadHandle> handles;
    for (int t = 0; t < 4; ++t) {
        handles.push_back(
            rt.spawn(rt.mainContext(), [&, iterations](ThreadContext &ctx) {
                for (int i = 0; i < iterations; ++i) {
                    m.lock(ctx);
                    ctx.write(&x[0], ctx.read(&x[0]) + 1);
                    m.unlock(ctx);
                }
            }));
    }
    for (auto &h : handles)
        rt.join(rt.mainContext(), h);
    return rt.mainContext().read(&x[0]);
}

TEST(Rollover, TinyClocksTriggerResets)
{
    CleanRuntime rt(tinyClockConfig());
    const int result = runLockHeavy(rt, 300);
    EXPECT_FALSE(rt.raceOccurred());
    EXPECT_EQ(result, 1200);
    EXPECT_GT(rt.rolloverResets(), 0u);
}

TEST(Rollover, WideClocksAvoidResets)
{
    CleanRuntime rt(tinyClockConfig(23));
    const int result = runLockHeavy(rt, 300);
    EXPECT_FALSE(rt.raceOccurred());
    EXPECT_EQ(result, 1200);
    EXPECT_EQ(rt.rolloverResets(), 0u);
}

TEST(Rollover, NoFalseRacesAcrossManyResets)
{
    CleanRuntime rt(tinyClockConfig(6));
    const int result = runLockHeavy(rt, 400);
    EXPECT_FALSE(rt.raceOccurred());
    EXPECT_EQ(result, 1600);
    EXPECT_GT(rt.rolloverResets(), 2u);
}

TEST(Rollover, RacesStillDetectedAfterReset)
{
    CleanRuntime rt(tinyClockConfig());
    auto *x = rt.heap().allocSharedArray<int>(2);
    CleanMutex m(rt);
    // Phase 1: force at least one reset with lock traffic.
    auto warm = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        for (int i = 0; i < 400; ++i) {
            m.lock(ctx);
            ctx.write(&x[0], i);
            m.unlock(ctx);
        }
    });
    rt.join(rt.mainContext(), warm);
    ASSERT_GT(rt.rolloverResets(), 0u);
    // Phase 2: an honest WAW race must still throw post-reset.
    auto racer1 = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        for (int i = 0; i < 100000; ++i)
            ctx.write(&x[1], i);
    });
    auto racer2 = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        for (int i = 0; i < 100000; ++i)
            ctx.write(&x[1], -i);
    });
    rt.join(rt.mainContext(), racer1);
    rt.join(rt.mainContext(), racer2);
    EXPECT_TRUE(rt.raceOccurred());
}

TEST(Rollover, BarrierWaitersSurviveResets)
{
    CleanRuntime rt(tinyClockConfig());
    const unsigned n = 4;
    auto *x = rt.heap().allocSharedArray<int>(n);
    CleanBarrier barrier(rt, n);
    CleanMutex m(rt);
    auto *acc = rt.heap().allocSharedArray<int>(1);
    std::vector<ThreadHandle> handles;
    for (unsigned t = 0; t < n; ++t) {
        handles.push_back(
            rt.spawn(rt.mainContext(), [&, t](ThreadContext &ctx) {
                for (int g = 0; g < 80; ++g) {
                    ctx.write(&x[t], g);
                    // Uneven lock traffic drives the clocks apart and
                    // across the rollover threshold while others may be
                    // parked in the barrier.
                    for (unsigned k = 0; k <= t; ++k) {
                        m.lock(ctx);
                        ctx.write(&acc[0], ctx.read(&acc[0]) + 1);
                        m.unlock(ctx);
                    }
                    barrier.arrive(ctx);
                }
            }));
    }
    for (auto &h : handles)
        rt.join(rt.mainContext(), h);
    EXPECT_FALSE(rt.raceOccurred());
    EXPECT_GT(rt.rolloverResets(), 0u);
}

TEST(Rollover, ResultsDeterministicDespiteResets)
{
    auto runOnce = [] {
        CleanRuntime rt(tinyClockConfig(7));
        auto *order = rt.heap().allocSharedArray<int>(2048);
        auto *cursor = rt.heap().allocSharedArray<int>(1);
        CleanMutex m(rt);
        std::vector<ThreadHandle> handles;
        for (int t = 0; t < 4; ++t) {
            handles.push_back(
                rt.spawn(rt.mainContext(), [&, t](ThreadContext &ctx) {
                    for (int i = 0; i < 120; ++i) {
                        m.lock(ctx);
                        const int at = ctx.read(&cursor[0]);
                        ctx.write(&order[at], t);
                        ctx.write(&cursor[0], at + 1);
                        m.unlock(ctx);
                        ctx.detTick(static_cast<std::uint64_t>(t) * 3 +
                                    1);
                    }
                }));
        }
        for (auto &h : handles)
            rt.join(rt.mainContext(), h);
        EXPECT_FALSE(rt.raceOccurred());
        EXPECT_GT(rt.rolloverResets(), 0u);
        std::vector<int> result;
        for (int i = 0; i < 480; ++i)
            result.push_back(rt.mainContext().read(&order[i]));
        return result;
    };
    EXPECT_EQ(runOnce(), runOnce());
}

TEST(Rollover, ControllerStandaloneProtocol)
{
    struct Host : RolloverHost
    {
        bool allOthersQuiescent(ThreadId) override { return true; }
        void performReset() override { ++resets; }
        int resets = 0;
    };
    Host host;
    RolloverController controller(host);
    EXPECT_FALSE(controller.pending());
    controller.parkAndMaybeReset(0); // no-op when not pending
    EXPECT_EQ(host.resets, 0);
    controller.request();
    EXPECT_TRUE(controller.pending());
    controller.parkAndMaybeReset(0);
    EXPECT_FALSE(controller.pending());
    EXPECT_EQ(host.resets, 1);
    EXPECT_EQ(controller.resets(), 1u);
}

} // namespace
} // namespace clean
