/**
 * @file
 * volrend — front-to-back volume ray casting (SPLASH-2).
 *
 * Threads cast rays through a shared 3D density volume (read-only after
 * setup) into an image, pulling scanline tasks from a lock-protected
 * queue. Read-heavy with byte-granularity volume samples (uint8), which
 * exercises the sub-4-byte path of the multi-byte check.
 *
 * Racy variant: volrend's shared adaptive-sampling hint map is updated
 * without synchronization while neighbors read it — RAW/WAW on the hint
 * bytes (SPLASH volrend is one of the benchmarks ThreadSanitizer flags).
 */

#include "workloads/suite/factories.h"
#include "workloads/suite/kernel_common.h"

namespace clean::wl::suite
{

namespace
{

class Volrend : public KernelBase
{
  public:
    Volrend() : KernelBase("volrend", "splash2", true) {}

    void
    run(Env &env, const WorkloadParams &p) override
    {
        const std::uint64_t vol = scaled(p.scale, 24, 40, 64); // volume^3
        const std::uint64_t dim = scaled(p.scale, 32, 64, 128); // image
        const std::uint64_t depthSteps = vol;

        auto *volume = env.allocShared<std::uint8_t>(vol * vol * vol);
        auto *image = env.allocShared<float>(dim * dim);
        auto *hints = env.allocShared<std::uint8_t>(dim * dim);
        auto *rowCounter = env.allocShared<std::uint64_t>(1);
        // volrend's global ray statistics; the racy variant updates it
        // without the lock (the actual TSan finding in volrend is an
        // unprotected global counter of this flavor).
        auto *rayStats = env.allocShared<std::uint64_t>(1);
        const unsigned counterLock = env.createMutex();

        {
            Prng init(p.seed);
            for (std::uint64_t i = 0; i < vol * vol * vol; ++i)
                volume[i] = static_cast<std::uint8_t>(init.nextBelow(200));
            for (std::uint64_t i = 0; i < dim * dim; ++i)
                hints[i] = 0;
            rowCounter[0] = 0;
            rayStats[0] = 0;
        }

        const bool racy = p.racy;
        env.parallel(p.threads, [&](Worker &w) {
            // Private ray buffer: samples accumulate here before the
            // composited pixel is stored (volrend's per-process ray
            // state).
            auto *ray = env.allocPrivate<double>(2);
            double localSum = 0.0;
            for (;;) {
                std::uint64_t row;
                w.lock(counterLock);
                row = w.read(&rowCounter[0]);
                w.write(&rowCounter[0], row + 1);
                w.unlock(counterLock);
                // Global ray statistics; every worker updates them even
                // on the final (empty) fetch, so in the racy variant the
                // unlocked RMW races no matter how the scheduler
                // interleaves the workers.
                if (racy) {
                    w.update(&rayStats[0],
                             [dim](std::uint64_t v) { return v + dim; });
                } else {
                    w.lock(counterLock);
                    w.update(&rayStats[0],
                             [dim](std::uint64_t v) { return v + dim; });
                    w.unlock(counterLock);
                }
                if (row >= dim)
                    break;
                for (std::uint64_t px = 0; px < dim; ++px) {
                    // Adaptive sampling: consult neighbour hints.
                    unsigned step = 1;
                    if (racy && px > 0) {
                        // Unsynchronized read of a hint another thread
                        // may be writing (RAW).
                        const std::uint8_t h =
                            w.read(&hints[row * dim + px - 1]);
                        step = 1 + (h & 1);
                    }
                    w.writePrivate(&ray[0], 0.0); // opacity
                    w.writePrivate(&ray[1], 0.0); // intensity
                    const std::uint64_t vx = (px * vol) / dim;
                    const std::uint64_t vy = (row * vol) / dim;
                    for (std::uint64_t z = 0;
                         z < depthSteps && w.readPrivate(&ray[0]) < 0.95;
                         z += step) {
                        const std::uint8_t d = w.read(
                            &volume[(z * vol + vy) * vol + vx]);
                        const double a = d / 512.0;
                        const double opacity = w.readPrivate(&ray[0]);
                        w.writePrivate(&ray[1],
                                       w.readPrivate(&ray[1]) +
                                           (1.0 - opacity) * a *
                                               (d / 255.0));
                        w.writePrivate(&ray[0],
                                       opacity + (1.0 - opacity) * a);
                        w.compute(6);
                    }
                    const double intensity = w.readPrivate(&ray[1]);
                    const double opacity = w.readPrivate(&ray[0]);
                    w.write(&image[row * dim + px],
                            static_cast<float>(intensity));
                    localSum += intensity;
                    if (racy) {
                        // Unsynchronized hint write (WAW with the row
                        // above/below writing the same hint bytes).
                        const std::uint64_t hintIdx =
                            ((row + 1) % dim) * dim + px;
                        w.write(&hints[hintIdx],
                                static_cast<std::uint8_t>(
                                    opacity > 0.5 ? 1 : 0));
                    }
                }
            }
            w.sink(static_cast<std::uint64_t>(localSum * 1e4));
        });

        env.declareOutput(image, dim * dim * sizeof(float));
    }
};

} // namespace

std::unique_ptr<Workload>
makeVolrend()
{
    return std::make_unique<Volrend>();
}

} // namespace clean::wl::suite
