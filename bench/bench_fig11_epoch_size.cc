/**
 * @file
 * Figure 11 — performance with 1-byte and 4-byte epochs.
 *
 * Replays each trace in three metadata organizations:
 *   clean — 32-bit epochs with the compact/expanded line scheme (§5.3);
 *   1B    — hypothetical 8-bit epochs, 1:1 metadata, no compaction: the
 *           performance upper bound;
 *   4B    — 4-byte epochs per data byte, no compaction: 4:1 metadata
 *           whose cache pressure hurts badly (paper: ocean_cp,
 *           ocean_ncp and radix worst, LLC miss blowup).
 *
 * Values are execution time normalized to the no-detection baseline.
 */

#include "bench/common.h"
#include "sim/machine.h"

using namespace clean;
using namespace clean::bench;
using namespace clean::wl;

int
main(int argc, char **argv)
{
    const BenchConfig config = parseBench(argc, argv);

    std::printf("=== Figure 11: epoch-size ablation "
                "(threads=%u, scale=%s) ===\n\n",
                config.threads,
                config.options.getString("scale", "test").c_str());
    std::printf("%-14s %10s %10s %10s %14s\n", "benchmark", "1B-epoch",
                "clean", "4B-epoch", "4B LLC-miss+");

    std::vector<double> clean1B, cleanX, four;
    for (const auto &name : config.workloads) {
        if (name == "facesim")
            continue;
        auto result =
            runWorkload(baseSpec(config, name, BackendKind::Trace));
        sim::MachineConfig off;
        off.raceDetection = false;
        const auto base = sim::simulate(result.trace, off);
        const double baseCycles =
            static_cast<double>(base.totalCycles);

        double norm[3] = {};
        std::uint64_t llc[3] = {};
        const sim::EpochMode modes[3] = {sim::EpochMode::Byte1,
                                         sim::EpochMode::Clean,
                                         sim::EpochMode::Byte4};
        for (int m = 0; m < 3; ++m) {
            sim::MachineConfig cfg;
            cfg.epochMode = modes[m];
            const auto stats = sim::simulate(result.trace, cfg);
            norm[m] =
                static_cast<double>(stats.totalCycles) / baseCycles;
            llc[m] = stats.llcMisses;
        }
        clean1B.push_back(norm[0]);
        cleanX.push_back(norm[1]);
        four.push_back(norm[2]);
        const double llcBlowup =
            base.llcMisses
                ? 100.0 * (static_cast<double>(llc[2]) /
                               static_cast<double>(base.llcMisses) -
                           1.0)
                : 0.0;
        std::printf("%-14s %9.3fx %9.3fx %9.3fx %13.1f%%\n",
                    name.c_str(), norm[0], norm[1], norm[2], llcBlowup);
    }

    std::printf("\nmeans: 1B %.3fx, clean %.3fx, 4B %.3fx\n",
                mean(clean1B), mean(cleanX), mean(four));
    std::printf("paper: clean tracks the hypothetical 1B bound closely "
                "thanks to line compaction;\n4B epochs degrade badly "
                "(worst for ocean_cp/ocean_ncp/radix via LLC misses).\n");
    return 0;
}
