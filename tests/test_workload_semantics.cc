/**
 * @file
 * Semantic validation of workload kernels across backends.
 *
 * For kernels whose result is independent of the thread schedule
 * (statically partitioned work, no dynamic task stealing), the output
 * fingerprint must be IDENTICAL under every backend — native threads,
 * the CLEAN runtime (any configuration), and the tracing backend. This
 * pins down that the instrumentation layers are pure observers: they
 * must never change what the program computes.
 */

#include <gtest/gtest.h>

#include "workloads/registry.h"
#include "workloads/runner.h"

namespace clean::wl
{
namespace
{

RunSpec
spec(const std::string &name, BackendKind backend)
{
    RunSpec s;
    s.workload = name;
    s.backend = backend;
    s.params.threads = 4;
    s.params.scale = Scale::Test;
    s.params.seed = 987654321;
    return s;
}

/** Kernels with schedule-independent results: static partitioning,
 *  reductions only through barriers (no dynamic queues, no
 *  lock-order-dependent folds). */
class ScheduleIndependent : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ScheduleIndependent, AllBackendsComputeTheSameResult)
{
    const auto native = runWorkload(spec(GetParam(), BackendKind::Native));
    const auto clean = runWorkload(spec(GetParam(), BackendKind::Clean));
    const auto detect =
        runWorkload(spec(GetParam(), BackendKind::DetectOnly));
    const auto traced = runWorkload(spec(GetParam(), BackendKind::Trace));
    ASSERT_FALSE(clean.raceException) << clean.raceMessage;
    EXPECT_EQ(native.outputHash, clean.outputHash)
        << "CLEAN instrumentation changed the computation";
    EXPECT_EQ(native.outputHash, detect.outputHash);
    EXPECT_EQ(native.outputHash, traced.outputHash)
        << "tracing changed the computation";
}

TEST_P(ScheduleIndependent, NativeRunsAreDeterministicForFixedSeed)
{
    const auto a = runWorkload(spec(GetParam(), BackendKind::Native));
    const auto b = runWorkload(spec(GetParam(), BackendKind::Native));
    EXPECT_EQ(a.outputHash, b.outputHash);
    EXPECT_EQ(a.reads + a.writes, b.reads + b.writes);
}

TEST_P(ScheduleIndependent, SeedChangesTheResult)
{
    auto s1 = spec(GetParam(), BackendKind::Native);
    auto s2 = s1;
    s2.params.seed = s1.params.seed + 1;
    EXPECT_NE(runWorkload(s1).outputHash, runWorkload(s2).outputHash);
}

TEST_P(ScheduleIndependent, ThreadCountDoesNotBreakCleanRuns)
{
    // Re-slicing the iteration space must never introduce races or
    // nondeterminism.
    for (unsigned threads : {2u, 3u, 4u}) {
        auto s = spec(GetParam(), BackendKind::Clean);
        s.params.threads = threads;
        const auto a = runWorkload(s);
        const auto b = runWorkload(s);
        ASSERT_FALSE(a.raceException)
            << GetParam() << " @" << threads << ": " << a.raceMessage;
        EXPECT_TRUE(a.fingerprint() == b.fingerprint())
            << GetParam() << " @" << threads;
    }
}

// facesim and the lock-scatter kernels are deliberately absent: their
// floating-point reductions fold in lock-acquisition order, so their
// results are deterministic under CLEAN but not schedule-independent.
INSTANTIATE_TEST_SUITE_P(Kernels, ScheduleIndependent,
                         ::testing::Values("blackscholes", "swaptions",
                                           "fft", "lu_cb", "ocean_cp"),
                         [](const auto &info) { return info.param; });

TEST(WorkloadSemantics, CleanConfigurationsAgreeOnResults)
{
    // Vectorization, shadow backend, granularity and counter chunking
    // are performance knobs: none may change the computed result.
    const auto reference = runWorkload(spec("fft", BackendKind::Clean));
    ASSERT_FALSE(reference.raceException);

    auto noVec = spec("fft", BackendKind::Clean);
    noVec.runtime.vectorized = false;
    auto sparse = spec("fft", BackendKind::Clean);
    sparse.runtime.shadow = ShadowKind::Sparse;
    auto word = spec("fft", BackendKind::Clean);
    word.runtime.granuleLog2 = 2;
    auto chunked = spec("fft", BackendKind::Clean);
    chunked.runtime.detChunk = 8;
    auto locked = spec("fft", BackendKind::Clean);
    locked.runtime.atomicity = AtomicityMode::Locked;

    for (const auto *variant : {&noVec, &sparse, &word, &chunked,
                                &locked}) {
        const auto result = runWorkload(*variant);
        ASSERT_FALSE(result.raceException) << result.raceMessage;
        EXPECT_EQ(result.outputHash, reference.outputHash);
    }
}

TEST(WorkloadSemantics, RacyVariantChangesBehaviorOnlyWhenRequested)
{
    // racy=false must be byte-identical across repeated runs even for
    // benchmarks that HAVE racy variants.
    for (const char *name : {"raytrace", "barnes", "x264"}) {
        auto s = spec(name, BackendKind::Clean);
        const auto a = runWorkload(s);
        const auto b = runWorkload(s);
        ASSERT_FALSE(a.raceException) << name;
        EXPECT_TRUE(a.fingerprint() == b.fingerprint()) << name;
    }
}

TEST(WorkloadSemantics, AccessVolumeIsSubstantial)
{
    // Guard against silently-degenerate kernels: every benchmark must
    // actually touch shared memory (swaptions, by design the suite's
    // most private kernel, sets the floor).
    for (const auto &name : workloadNames()) {
        const auto result = runWorkload(spec(name, BackendKind::Native));
        EXPECT_GT(result.reads + result.writes, 50u) << name;
    }
}

} // namespace
} // namespace clean::wl
