/**
 * @file
 * Concurrency tests for the lock-free sparse-shadow index (DESIGN.md
 * §16). Run under TSan in CI: the index's claims — wait-free lookups,
 * lock-free CAS insertion, reset() publishing a fresh table under
 * concurrent readers, and the generation-stamped thread cache never
 * resurrecting a retired table — are exactly the claims a data-race
 * detector can falsify mechanically.
 *
 * Payload slots are deliberately partitioned per thread (each worker
 * owns a disjoint byte range inside every chunk): the *index* is the
 * system under test, and unsynchronised epoch stores to the same slot
 * would be an application-level race, not an index-level one.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/sparse_shadow.h"
#include "support/prng.h"

namespace clean
{
namespace
{

constexpr unsigned kWorkers = 8;
constexpr unsigned kChunks = 48; // colliding key set, well under capacity

/** All workers hammer the same 48 chunk keys while a ninth thread
 *  periodically reset()s: inserts race on fresh keys after every
 *  reset, lookups race with table swaps, and the thread-local cache
 *  crosses generations. reclaim() only after the join — the
 *  quiescent-point contract. */
TEST(SparseShadowConcurrent, MixedLookupsInsertsAndResets)
{
    SparseShadow shadow(/*capacityLog2=*/8);
    std::atomic<bool> stop{false};
    std::vector<std::thread> workers;
    workers.reserve(kWorkers);
    for (unsigned t = 0; t < kWorkers; ++t) {
        workers.emplace_back([&shadow, t] {
            Prng rng(0xbeef + t);
            for (unsigned i = 0; i < 8000; ++i) {
                const Addr addr =
                    Addr{rng.nextBelow(kChunks)} *
                        SparseShadow::kChunkBytes +
                    Addr{t} * 64;
                EpochValue *slot = shadow.slots(addr);
                ASSERT_NE(slot, nullptr);
                *slot = i; // disjoint per-thread offsets: no payload race
                if ((i & 255u) == 0) {
                    ASSERT_GT(shadow.contiguousSlots(addr), 0u);
                }
            }
        });
    }
    std::thread resetter([&shadow, &stop] {
        unsigned resets = 0;
        while (!stop.load(std::memory_order_acquire) && resets < 64) {
            std::this_thread::yield();
            shadow.reset();
            ++resets;
        }
    });
    for (auto &w : workers)
        w.join();
    stop.store(true, std::memory_order_release);
    resetter.join();

    // Quiescent: every thread is joined, so retired tables may go.
    shadow.reclaim();
    for (unsigned c = 0; c < kChunks; ++c) {
        EpochValue *slot =
            shadow.slots(Addr{c} * SparseShadow::kChunkBytes);
        ASSERT_NE(slot, nullptr);
    }
    EXPECT_LE(shadow.chunkCount(), std::size_t{kChunks});
}

/** N threads racing to materialise the *same* fresh key must converge
 *  on one chunk — the CAS loser adopts the winner's allocation. */
TEST(SparseShadowConcurrent, RacingInsertsConvergeOnOneChunk)
{
    for (unsigned round = 0; round < 32; ++round) {
        SparseShadow shadow;
        const Addr base =
            Addr{round + 1} * SparseShadow::kChunkBytes;
        std::atomic<unsigned> ready{0};
        EpochValue *seen[kWorkers] = {};
        std::vector<std::thread> threads;
        threads.reserve(kWorkers);
        for (unsigned t = 0; t < kWorkers; ++t) {
            threads.emplace_back([&, t] {
                ready.fetch_add(1, std::memory_order_acq_rel);
                // Rendezvous before touching the key: maximises the
                // insert collision window (yield, not raw spin — the
                // CI runners may have fewer cores than workers).
                while (ready.load(std::memory_order_acquire) < kWorkers)
                    std::this_thread::yield();
                seen[t] = shadow.slots(base);
            });
        }
        for (auto &th : threads)
            th.join();
        for (unsigned t = 1; t < kWorkers; ++t)
            ASSERT_EQ(seen[t], seen[0]) << "round " << round;
        EXPECT_EQ(shadow.chunkCount(), 1u) << "round " << round;
    }
}

/** Generation-reuse regression: a thread's cached chunk pointer from
 *  before a reset() must miss afterwards — the re-lookup has to hand
 *  back a fresh zeroed chunk, never the stale cached one. */
TEST(SparseShadowConcurrent, StaleThreadCacheMissesAfterReset)
{
    SparseShadow shadow;
    const Addr addr = 3 * SparseShadow::kChunkBytes + 17;
    EpochValue *before = shadow.slots(addr);
    *before = 42;
    // Same key again: this is the thread-cache hit path.
    ASSERT_EQ(shadow.slots(addr), before);

    shadow.reset();
    // The retired chunk is still allocated (reclaim() has not run), so
    // a distinct pointer here proves the cache missed rather than the
    // allocator happening to reuse the block.
    EpochValue *after = shadow.slots(addr);
    EXPECT_NE(after, before);
    EXPECT_EQ(*after, EpochValue{0});
    shadow.reclaim();
}

/** The cache must also miss across *instances*: generations are drawn
 *  from a process-global counter precisely so that two shadows cannot
 *  alias each other's thread-local entries. */
TEST(SparseShadowConcurrent, ThreadCacheIsPerInstance)
{
    SparseShadow a, b;
    const Addr addr = 7 * SparseShadow::kChunkBytes;
    EpochValue *pa = a.slots(addr);
    *pa = 1;
    EpochValue *pb = b.slots(addr); // same key, other instance
    EXPECT_NE(pa, pb);
    EXPECT_EQ(*pb, EpochValue{0});
    EXPECT_EQ(a.slots(addr), pa); // and a's entry still resolves to a
}

} // namespace
} // namespace clean
