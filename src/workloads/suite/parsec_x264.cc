/**
 * @file
 * x264 — pipelined video encoding with inter-frame dependencies
 * (PARSEC).
 *
 * Frames are encoded in a pipeline: each worker owns one frame at a
 * time and encodes it row by row; motion estimation for row r of frame
 * f searches a window of the *reconstructed previous frame* around row
 * r, so it must wait until frame f-1's progress counter passes r + W.
 * Progress is published under a mutex and waited on with a condition
 * variable — exactly x264's frame-parallel progress protocol.
 *
 * Racy variant: the encoder skips the progress wait and reads the
 * reference rows immediately — RAW against the previous frame's writer
 * (x264's real races are exactly such missed-ordering reads of
 * reconstruction data).
 */

#include "workloads/suite/factories.h"
#include "workloads/suite/kernel_common.h"

namespace clean::wl::suite
{

namespace
{

class X264 : public KernelBase
{
  public:
    X264() : KernelBase("x264", "parsec", true) {}

    void
    run(Env &env, const WorkloadParams &p) override
    {
        const std::uint64_t width = scaled(p.scale, 64, 128, 320);
        const std::uint64_t rows = scaled(p.scale, 32, 64, 144);
        const std::uint64_t nFrames =
            std::max<std::uint64_t>(p.threads, scaled(p.scale, 8, 16, 32));
        const std::uint64_t window = 2;

        auto *source = env.allocShared<std::uint8_t>(
            nFrames * rows * width);
        auto *recon = env.allocShared<std::uint8_t>(
            nFrames * rows * width);
        auto *progress = env.allocShared<std::int64_t>(nFrames);
        auto *bits = env.allocShared<std::uint64_t>(nFrames);
        const unsigned progressLock = env.createMutex();
        const unsigned progressCond = env.createCond();

        {
            Prng init(p.seed);
            for (std::uint64_t i = 0; i < nFrames * rows * width; ++i) {
                // Slowly-varying content so motion search finds matches.
                source[i] = static_cast<std::uint8_t>(
                    128 + 64 * std::sin(i * 0.01) +
                    static_cast<double>(init.nextBelow(16)));
                recon[i] = 0;
            }
            for (std::uint64_t f = 0; f < nFrames; ++f) {
                progress[f] = -1;
                bits[f] = 0;
            }
        }

        const bool racy = p.racy;
        env.parallel(p.threads, [&](Worker &w) {
            std::uint64_t encodedBits = 0;
            // Frame f is encoded by worker f % threads; workers walk
            // their frames in order, forming the pipeline.
            for (std::uint64_t f = w.index(); f < nFrames;
                 f += w.count()) {
                for (std::uint64_t r = 0; r < rows; ++r) {
                    // Wait for the reference window in frame f-1.
                    if (f > 0) {
                        const std::int64_t need = std::min<std::int64_t>(
                            static_cast<std::int64_t>(rows) - 1,
                            static_cast<std::int64_t>(r + window));
                        if (!racy) {
                            w.lock(progressLock);
                            while (w.read(&progress[f - 1]) < need)
                                w.condWait(progressCond, progressLock);
                            w.unlock(progressLock);
                        } else {
                            // Racy progress protocol: spin on the
                            // unlocked progress word the previous
                            // frame's owner publishes without the lock
                            // — a guaranteed RAW the moment a published
                            // value is observed.
                            while (w.read(&progress[f - 1]) < need)
                                w.compute(2);
                        }
                    }

                    // Encode row r: motion search over the reference
                    // window, then write the reconstruction row.
                    for (std::uint64_t x = 0; x < width; ++x) {
                        const std::uint8_t src = w.read(
                            &source[(f * rows + r) * width + x]);
                        std::uint8_t best = src;
                        if (f > 0) {
                            unsigned bestCost = 255;
                            for (std::int64_t dy = -1;
                                 dy <= static_cast<std::int64_t>(window);
                                 ++dy) {
                                const std::int64_t rr =
                                    static_cast<std::int64_t>(r) + dy;
                                if (rr < 0 ||
                                    rr >= static_cast<std::int64_t>(rows))
                                    continue;
                                const std::uint8_t ref = w.read(
                                    &recon[((f - 1) * rows + rr) *
                                               width +
                                           x]);
                                const unsigned cost =
                                    ref > src ? ref - src : src - ref;
                                if (cost < bestCost) {
                                    bestCost = cost;
                                    best = ref;
                                }
                                w.compute(6);
                            }
                            encodedBits += bestCost;
                        }
                        // Reconstruction: predictor + quantized
                        // residual.
                        const std::uint8_t residual =
                            static_cast<std::uint8_t>((src - best) & 0xf8);
                        w.write(&recon[(f * rows + r) * width + x],
                                static_cast<std::uint8_t>(best + residual));
                        w.compute(4);
                    }

                    // Publish row progress.
                    if (racy) {
                        w.write(&progress[f],
                                static_cast<std::int64_t>(r));
                    } else {
                        w.lock(progressLock);
                        w.write(&progress[f],
                                static_cast<std::int64_t>(r));
                        w.condBroadcast(progressCond);
                        w.unlock(progressLock);
                    }
                }
                w.lock(progressLock);
                w.write(&bits[f], encodedBits);
                w.unlock(progressLock);
            }
            w.sink(encodedBits);
        });

        env.declareOutput(bits, nFrames * sizeof(std::uint64_t));
    }
};

} // namespace

std::unique_ptr<Workload>
makeX264()
{
    return std::make_unique<X264>();
}

} // namespace clean::wl::suite
