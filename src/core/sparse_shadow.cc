#include "core/sparse_shadow.h"

#include "support/backoff.h"
#include "support/logging.h"
#include "support/numa.h"

namespace clean
{

std::atomic<std::uint64_t> SparseShadow::nextGeneration_{1};
thread_local std::uint64_t SparseShadow::cachedGen_ = 0;
thread_local Addr SparseShadow::cachedKey_ = ~Addr{0};
thread_local EpochValue *SparseShadow::cachedChunk_ = nullptr;

namespace
{

constexpr std::size_t kChunkAllocBytes =
    SparseShadow::kChunkBytes * sizeof(EpochValue);

/** Zeroed, node-local chunk; the allocating thread is the first
 *  toucher, so first-touch placement matches the libnuma path. */
EpochValue *
allocChunk()
{
    return static_cast<EpochValue *>(numa::allocLocal(kChunkAllocBytes));
}

} // namespace

SparseShadow::Table::Table(unsigned capacityLog2)
    : mask((std::size_t{1} << capacityLog2) - 1),
      shift(64 - capacityLog2),
      slots(std::make_unique<Slot[]>(mask + 1))
{
}

SparseShadow::Table::~Table()
{
    for (std::size_t i = 0; i <= mask; ++i) {
        EpochValue *chunk = slots[i].chunk.load(std::memory_order_acquire);
        if (chunk)
            numa::deallocate(chunk, kChunkAllocBytes);
    }
}

SparseShadow::SparseShadow(unsigned capacityLog2)
    : capacityLog2_(capacityLog2),
      table_(new Table(capacityLog2)),
      generation_(nextGeneration_.fetch_add(1))
{
    CLEAN_ASSERT(capacityLog2 >= 1 && capacityLog2 <= 32,
                 "capacityLog2=%u", capacityLog2);
}

SparseShadow::~SparseShadow()
{
    reclaim();
    delete table_.load(std::memory_order_acquire);
}

EpochValue *
SparseShadow::slotsSlow(Addr addr, Addr key)
{
    // Generation before table, both acquire: reset() publishes the new
    // table before the new generation, so caching (gen, chunk) in this
    // order guarantees a current-generation cache entry never points
    // into a retired table (see the cache comment in the header).
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    Table *table = table_.load(std::memory_order_acquire);
    EpochValue *chunk = findOrCreate(*table, key);
    cachedGen_ = gen;
    cachedKey_ = key;
    cachedChunk_ = chunk;
    return chunk + (addr & kChunkMask);
}

EpochValue *
SparseShadow::findOrCreate(Table &table, Addr key)
{
    // Keys are stored biased by one so 0 can mean "empty" (address 0
    // lives in chunk index 0).
    const std::uint64_t stored = static_cast<std::uint64_t>(key) + 1;
    // Fibonacci-hash the chunk index so adjacent chunks (the common
    // sequential first-touch pattern) start their probes far apart.
    std::size_t idx = static_cast<std::size_t>(
        (stored * 0x9e3779b97f4a7c15ull) >> table.shift);
    for (std::size_t probes = 0; probes <= table.mask; ++probes) {
        Slot &slot = table.slots[idx];
        std::uint64_t seen = slot.key.load(std::memory_order_acquire);
        if (seen == 0 &&
            slot.key.compare_exchange_strong(seen, stored,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
            // Claimed: we own the (single) allocate-and-publish.
            EpochValue *chunk = allocChunk();
            slot.chunk.store(chunk, std::memory_order_release);
            return chunk;
        }
        if (seen == stored) {
            // Materialized (or being materialized) by someone else.
            // The publish follows the claim by one bounded allocation,
            // so this wait is short; it is the only place a lookup can
            // wait at all.
            EpochValue *chunk =
                slot.chunk.load(std::memory_order_acquire);
            if (CLEAN_LIKELY(chunk != nullptr))
                return chunk;
            SpinWait wait;
            while (!(chunk = slot.chunk.load(std::memory_order_acquire)))
                wait.pause();
            return chunk;
        }
        idx = (idx + 1) & table.mask;
    }
    panic("SparseShadow chunk index full: %zu distinct 64 KiB chunks; "
          "construct with a larger capacityLog2",
          table.mask + 1);
}

void
SparseShadow::reset()
{
    // Swap in an empty index first, then retire the generation. Order
    // matters for the thread-local cache invariant (header comment):
    // a reader that observes the new generation must be working
    // against the new table. The old table is pushed on the retired
    // list, not freed — see reclaim().
    Table *fresh = new Table(capacityLog2_);
    Table *old = table_.exchange(fresh, std::memory_order_acq_rel);
    old->nextRetired = retired_.load(std::memory_order_relaxed);
    while (!retired_.compare_exchange_weak(old->nextRetired, old,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
    }
    generation_.store(nextGeneration_.fetch_add(1),
                      std::memory_order_release);
}

void
SparseShadow::reclaim()
{
    Table *head = retired_.exchange(nullptr, std::memory_order_acq_rel);
    while (head) {
        Table *next = head->nextRetired;
        delete head;
        head = next;
    }
}

std::size_t
SparseShadow::chunkCount() const
{
    const Table *table = table_.load(std::memory_order_acquire);
    std::size_t total = 0;
    for (std::size_t i = 0; i <= table->mask; ++i) {
        if (table->slots[i].chunk.load(std::memory_order_acquire))
            ++total;
    }
    return total;
}

} // namespace clean
