/**
 * @file
 * NUMA-aware local allocation with a portable no-op fallback.
 *
 * The scale-out structures (SparseShadow chunks, per-thread BatchBuffer
 * run tables) want their backing pages on the memory node of the thread
 * that touches them. When built with -DCLEAN_NUMA=ON and libnuma is
 * present, allocLocal() asks the kernel for pages on the calling
 * thread's node explicitly (numa_alloc_local). Everywhere else it
 * degrades to an aligned allocation that the caller immediately
 * memsets: under Linux's default first-touch policy that zeroing IS the
 * placement decision, so single-node machines and libnuma-less builds
 * lose nothing.
 */

#ifndef CLEAN_SUPPORT_NUMA_H
#define CLEAN_SUPPORT_NUMA_H

#include <cstddef>
#include <type_traits>

namespace clean::numa
{

/** True when the binary was built against libnuma (CLEAN_NUMA=ON and
 *  numa.h found) AND the running kernel exposes more than one node.
 *  Purely informational; allocLocal works either way. */
bool available();

/** Number of memory nodes (1 when NUMA is unavailable). */
int nodeCount();

/** Memory node of the calling thread's current CPU (0 when NUMA is
 *  unavailable). */
int currentNode();

/**
 * Allocates @p bytes of zeroed, 64-byte-aligned memory local to the
 * calling thread's node. libnuma path: numa_alloc_local (page-granular,
 * kernel-placed). Fallback: aligned ::operator new + memset by the
 * caller, which first-touches every page on the caller's node.
 * Free with deallocate(ptr, bytes) — the size is required because
 * numa_free needs it.
 */
void *allocLocal(std::size_t bytes);

/** Releases memory from allocLocal. @p bytes must match the request. */
void deallocate(void *ptr, std::size_t bytes) noexcept;

/**
 * Owning zeroed node-local array for implicit-lifetime element types
 * (aggregates/PODs): allocLocal's zeroed bytes implicitly create the
 * elements, so no constructor loop runs over what may be megabytes of
 * table. Used for per-thread hot tables (BatchBuffer run tables) whose
 * placement should follow the owning thread's node.
 */
template <typename T>
class LocalArray
{
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "LocalArray elements live by zero-fill alone");

  public:
    LocalArray() = default;

    LocalArray(LocalArray &&other) noexcept
        : ptr_(other.ptr_), bytes_(other.bytes_)
    {
        other.ptr_ = nullptr;
        other.bytes_ = 0;
    }

    LocalArray &
    operator=(LocalArray &&other) noexcept
    {
        if (this != &other) {
            reset();
            ptr_ = other.ptr_;
            bytes_ = other.bytes_;
            other.ptr_ = nullptr;
            other.bytes_ = 0;
        }
        return *this;
    }

    LocalArray(const LocalArray &) = delete;
    LocalArray &operator=(const LocalArray &) = delete;

    ~LocalArray() { reset(); }

    /** Replaces the contents with @p count zeroed elements allocated
     *  local to the calling thread. */
    void
    allocate(std::size_t count)
    {
        reset();
        bytes_ = count * sizeof(T);
        ptr_ = static_cast<T *>(allocLocal(bytes_));
    }

    void
    reset() noexcept
    {
        if (ptr_) {
            deallocate(ptr_, bytes_);
            ptr_ = nullptr;
            bytes_ = 0;
        }
    }

    T *get() const { return ptr_; }
    T &operator[](std::size_t i) const { return ptr_[i]; }
    explicit operator bool() const { return ptr_ != nullptr; }
    bool operator==(std::nullptr_t) const { return ptr_ == nullptr; }

  private:
    T *ptr_ = nullptr;
    std::size_t bytes_ = 0;
};

} // namespace clean::numa

#endif // CLEAN_SUPPORT_NUMA_H
