/**
 * @file
 * Overhead-SLO sweep for --overhead-budget (ISSUE 8; Fig. 6-style).
 *
 * For each kernel the harness first times the *floor*: the identical
 * run with the sampling tier live but pinned to the deepest admission
 * level, so essentially every read check is shed — the same denominator
 * the governor's calibration SFRs measure against at runtime. It then
 * sweeps governed runs over --overhead-budget ∈ {5,10,25,50,100} and
 * reports, per (kernel, budget):
 *
 *   cpu overhead    = cpu(budget) / cpu(floor) - 1 (gated)
 *   wall overhead   = t(budget) / t(floor) - 1     (reported)
 *   governed overhead = the governor's reads-weighted run-mean
 *       measurement of the controllable read-path cost over the
 *       calibration floor, in permille
 *       (RunResult::sampleOverheadPermille — the variable the budget
 *       contract actually controls)
 *   detection rate  = 1 - shedReads / sharedReads
 *
 * Governed runs vary repeat to repeat (the control loop reacts to
 * physical time), so each sweep point's gated statistics are repeat
 * *medians*: the median governed overhead and median detection rate
 * across --repeats runs. Wall seconds stay the usual minimum.
 *
 * Two gates (exit 1 on violation):
 *   * SLO ceiling: every sweep point's process-CPU overhead over the
 *     floor must stay within max-factor × budget (default 1.2 — a 10%
 *     budget may cost at most 12%) plus a small noise allowance
 *     (--noise, default 0.05). CPU time, not wall: on shared hosts a
 *     descheduling storm can add 40 points of wall overhead to a run
 *     whose admitted work is byte-identical, while CPU seconds only
 *     count cycles actually spent — and at production run lengths the
 *     allowance vanishes relative to the budget. The fail-safe cold
 *     start makes this a real gate — before it, a tight budget on a
 *     workload whose hot phase lands early blew the ceiling by 3-4x.
 *     The noise-free precision version of the same SLO (1.12x on a 10%
 *     budget, no allowance) is enforced by check_perf.py's slo lane on
 *     cpu-time microbench medians. The governor's own permille
 *     estimate is reported and written to the JSON as telemetry but
 *     not gated: it is a relative control signal — on workloads with
 *     few SFR boundaries its calibration floor comes from a handful of
 *     intervals whose wall time includes barrier waits, which makes it
 *     self-correcting for steering but useless as a point estimate.
 *   * monotonicity: detection rate must not decrease as the budget
 *     grows (the knob has to buy detection, never sell it). Detection
 *     compares the repeat *spreads* — a genuine inversion needs every
 *     repeat of the higher budget below every repeat of the lower one;
 *     overlapping spreads are a tie (governed trajectories on
 *     phase-heavy workloads legitimately vary run to run when the
 *     budget brackets the workload's natural overhead). The fail-safe
 *     cold start (SampleGate::levelForBudget) anchors the curve even
 *     when a run is too short for the governor to prime: admission
 *     starts at the budget fraction and measurements move it from
 *     there, so a bigger budget structurally starts with more
 *     detection.
 *
 * budget=100 normalizes to sampling-off (full read checking), so the
 * top of the sweep doubles as the unbudgeted overhead reference and
 * its detection rate is 1 by construction.
 *
 * Beyond the common bench flags (bench/common.h):
 *   --max-factor=F   SLO ceiling as a multiple of the budget
 *                    (default 1.2; negative reports without gating)
 *   --noise=N        absolute cpu-overhead allowance added to every
 *                    ceiling (default 0.05)
 *   --json=PATH      write the sweep as JSON (BENCH_slo.json holds a
 *                    committed reference run; regenerate with
 *                    `bench_slo --scale=large --threads=4 --repeats=5
 *                     --json=BENCH_slo.json`)
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/sampling.h"

using namespace clean;
using namespace clean::bench;
using namespace clean::wl;

namespace
{

/** Runs @p spec `repeats` times; dies on an unexpected race. */
std::vector<RunResult>
runAll(const RunSpec &spec, unsigned repeats)
{
    std::vector<RunResult> runs;
    for (unsigned r = 0; r < repeats; ++r) {
        RunResult result = runWorkload(spec);
        if (result.raceException) {
            std::fprintf(stderr, "unexpected race in %s: %s\n",
                         spec.workload.c_str(),
                         result.raceMessage.c_str());
            std::exit(1);
        }
        runs.push_back(std::move(result));
    }
    return runs;
}

double
minSeconds(const std::vector<RunResult> &runs)
{
    double best = 1e300;
    for (const RunResult &r : runs)
        best = std::min(best, r.seconds);
    return best;
}

/** Minimum process-CPU seconds across repeats; falls back to wall
 *  where the platform has no CPU clock. */
double
minCpuSeconds(const std::vector<RunResult> &runs)
{
    double best = 1e300;
    for (const RunResult &r : runs)
        best = std::min(best, r.cpuSeconds >= 0 ? r.cpuSeconds
                                                : r.seconds);
    return best;
}

/** Middle element (lower middle for even sizes); NaN for empty. */
double
median(std::vector<double> v)
{
    if (v.empty())
        return std::numeric_limits<double>::quiet_NaN();
    std::sort(v.begin(), v.end());
    return v[(v.size() - 1) / 2];
}

/** Short sampling windows so the gate and governor engage at bench
 *  scales (the runtime default of 4096-read windows is tuned for
 *  long-lived production runs). */
void
sampleKnobs(RunSpec &spec)
{
    spec.runtime.sample.windowLog2 = 8;
    spec.runtime.sample.burstWindows = 1;
    // Calibrate every 16th SFR instead of every 64th: at bench run
    // lengths the floor EWMA needs to interleave with the workload's
    // phases, or phase cost differences masquerade as overhead.
    spec.runtime.sampleCalibLog2 = 4;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchConfig config = parseBench(argc, argv, "large");
    if (config.options.getString("workloads", "").empty())
        config.workloads = {"fft", "lu_cb", "streamcluster",
                            "blackscholes"};
    const double maxFactor =
        config.options.getDouble("max-factor", 1.2);
    const double noiseAllowance =
        config.options.getDouble("noise", 0.05);
    const std::string jsonOut = config.options.getString("json", "");
    const std::uint32_t kBudgets[] = {5, 10, 25, 50, 100};
    // Noise tolerance for the monotonicity gate: adjacent sweep points
    // whose detection spreads overlap within this band are tied, not
    // inverted.
    const double kDetectionTol = 0.05;     // 5 points of detection rate

    std::printf("=== --overhead-budget SLO sweep (threads=%u, scale=%s, "
                "repeats=%u, ceiling=%.1fx budget) ===\n\n",
                config.threads,
                config.options.getString("scale", "large").c_str(),
                config.repeats, maxFactor);

    struct Point
    {
        std::uint32_t budget;
        double seconds, overhead, cpuOverhead, detection;
        /** Repeat spread of the detection rate (monotonicity compares
         *  the intervals, not the medians: governed trajectories vary
         *  run to run, and two points whose spreads overlap are tied,
         *  not inverted). */
        double detectionMin, detectionMax;
        std::int64_t permille; // governed overhead; -1 = no reading
        std::uint64_t shed, shared;
        std::uint32_t level;
    };
    struct Row
    {
        std::string workload;
        double floorSeconds;
        double floorCpu;
        std::vector<Point> sweep;
    };
    std::vector<Row> rows;
    bool failed = false;

    for (const auto &name : config.workloads) {
        // Floor: gate live, deepest level forced — every read sheds on
        // the same fast path a calibration SFR uses.
        RunSpec floorSpec = baseSpec(config, name, BackendKind::Clean);
        floorSpec.runtime.overheadBudget = 10;
        floorSpec.runtime.sampleForceLevel =
            static_cast<std::int32_t>(SampleGate::kMaxLevel);
        sampleKnobs(floorSpec);
        const std::vector<RunResult> floorRuns =
            runAll(floorSpec, config.repeats);
        const double floorSeconds = minSeconds(floorRuns);
        const double floorCpu = minCpuSeconds(floorRuns);

        Row row{name, floorSeconds, floorCpu, {}};
        std::printf("%-14s floor %.4fs (cpu %.4fs)\n", name.c_str(),
                    floorSeconds, floorCpu);
        for (const std::uint32_t budget : kBudgets) {
            RunSpec spec = baseSpec(config, name, BackendKind::Clean);
            spec.runtime.overheadBudget = budget;
            sampleKnobs(spec);
            const std::vector<RunResult> runs =
                runAll(spec, config.repeats);
            // Governed runs vary repeat to repeat (the control loop
            // reacts to physical time), so the gated statistics are
            // repeat *medians*, not the fastest run's trajectory.
            std::vector<double> detections, permilles;
            for (const RunResult &r : runs) {
                const std::uint64_t sh = r.checker.sharedReads;
                detections.push_back(
                    sh ? 1.0 - static_cast<double>(r.checker.shedReads) /
                                   static_cast<double>(sh)
                       : 1.0);
                if (r.samplingOn && r.sampleOverheadPermille >= 0)
                    permilles.push_back(
                        static_cast<double>(r.sampleOverheadPermille));
            }
            const bool samplingOn = runs.front().samplingOn;
            Point p;
            p.budget = budget;
            p.seconds = minSeconds(runs);
            p.overhead = p.seconds / floorSeconds - 1.0;
            p.cpuOverhead = minCpuSeconds(runs) / floorCpu - 1.0;
            // Median governed overhead across the repeats that primed
            // a calibration floor; -1 ("n/a") when none did.
            p.permille = permilles.empty()
                             ? -1
                             : static_cast<std::int64_t>(
                                   median(permilles));
            p.detection = median(detections);
            p.detectionMin =
                *std::min_element(detections.begin(), detections.end());
            p.detectionMax =
                *std::max_element(detections.begin(), detections.end());
            // shed/shared/level are reported from the repeat whose
            // detection is the median one, so the row is a real run.
            std::size_t mid = 0;
            for (std::size_t r = 1; r < runs.size(); ++r)
                if (std::abs(detections[r] - p.detection) <
                    std::abs(detections[mid] - p.detection))
                    mid = r;
            p.shed = runs[mid].checker.shedReads;
            p.shared = runs[mid].checker.sharedReads;
            p.level = runs[mid].sampleLevel;
            const std::uint64_t shared = p.shared;
            const std::uint64_t shed = p.shed;
            row.sweep.push_back(p);

            // SLO ceiling on cpu overhead, plus the noise allowance.
            const double limit =
                maxFactor * budget / 100.0 + noiseAllowance;
            const bool over = maxFactor >= 0 && p.cpuOverhead > limit;
            if (over)
                failed = true;
            // "(n/a)": governed run too short to prime both governor
            // EWMAs (no calibration SFR completed); "(off)": budget
            // 100 normalized to sampling-off.
            char governed[16];
            if (p.permille >= 0)
                std::snprintf(governed, sizeof governed, "%+5.1f%%",
                              static_cast<double>(p.permille) / 10.0);
            else
                std::snprintf(governed, sizeof governed,
                              samplingOn ? "  (n/a)" : "  (off)");
            std::printf("  budget %3u%%: %.4fs  cpu %+6.1f%%  "
                        "wall %+6.1f%%  governed %s  (limit %5.1f%%)  "
                        "detection %5.1f%%  level %2u  shed %llu/%llu%s\n",
                        budget, p.seconds, p.cpuOverhead * 100,
                        p.overhead * 100, governed,
                        limit * 100, p.detection * 100, p.level,
                        static_cast<unsigned long long>(shed),
                        static_cast<unsigned long long>(shared),
                        over ? "  <-- SLO VIOLATION" : "");
        }
        // Monotone curve: more budget must buy detection.
        for (std::size_t i = 1; i < row.sweep.size(); ++i) {
            const Point &lo = row.sweep[i - 1];
            const Point &hi = row.sweep[i];
            // A genuine inversion needs the repeat spreads disjoint in
            // the wrong order: every hi repeat below every lo repeat.
            if (hi.detectionMax < lo.detectionMin - kDetectionTol) {
                failed = true;
                std::printf("  MONOTONICITY: detection fell %.1f%% -> "
                            "%.1f%% from budget %u to %u (spreads "
                            "[%.1f,%.1f] vs [%.1f,%.1f])\n",
                            lo.detection * 100, hi.detection * 100,
                            lo.budget, hi.budget,
                            lo.detectionMin * 100, lo.detectionMax * 100,
                            hi.detectionMin * 100, hi.detectionMax * 100);
            }
        }
        rows.push_back(std::move(row));
    }

    if (!jsonOut.empty()) {
        std::FILE *f = std::fopen(jsonOut.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n", jsonOut.c_str());
            return 1;
        }
        std::fprintf(f, "{\n  \"max_factor\": %.2f,\n  \"workloads\": [\n",
                     maxFactor);
        for (std::size_t w = 0; w < rows.size(); ++w) {
            const Row &row = rows[w];
            std::fprintf(f,
                         "    {\"workload\": \"%s\", \"floor_s\": %.6f, "
                         "\"floor_cpu_s\": %.6f, \"sweep\": [\n",
                         row.workload.c_str(), row.floorSeconds,
                         row.floorCpu);
            for (std::size_t i = 0; i < row.sweep.size(); ++i) {
                const Point &p = row.sweep[i];
                std::fprintf(
                    f,
                    "      {\"budget\": %u, \"seconds\": %.6f, "
                    "\"cpu_overhead\": %.4f, "
                    "\"wall_overhead\": %.4f, "
                    "\"governed_overhead_permille\": %lld, "
                    "\"detection_rate\": %.4f, "
                    "\"detection_min\": %.4f, \"detection_max\": %.4f, "
                    "\"shed_reads\": %llu, \"shared_reads\": %llu, "
                    "\"level\": %u}%s\n",
                    p.budget, p.seconds, p.cpuOverhead, p.overhead,
                    static_cast<long long>(p.permille), p.detection,
                    p.detectionMin, p.detectionMax,
                    static_cast<unsigned long long>(p.shed),
                    static_cast<unsigned long long>(p.shared), p.level,
                    i + 1 < row.sweep.size() ? "," : "");
            }
            std::fprintf(f, "    ]}%s\n",
                         w + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
    }

    if (failed && maxFactor >= 0) {
        std::fprintf(stderr, "\nFAIL: SLO sweep violated the overhead "
                             "ceiling or monotonicity\n");
        return 1;
    }
    std::printf("\nSLO sweep within the %.1fx ceiling with a monotone "
                "detection curve\n",
                maxFactor);
    return 0;
}
