file(REMOVE_RECURSE
  "CMakeFiles/cleanrun.dir/cleanrun.cc.o"
  "CMakeFiles/cleanrun.dir/cleanrun.cc.o.d"
  "cleanrun"
  "cleanrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleanrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
