#include "core/vector_clock.h"

#include <algorithm>
#include <sstream>

#include "support/logging.h"

namespace clean
{

VectorClock::VectorClock(const EpochConfig &config, ThreadId slots)
    : config_(config)
{
    CLEAN_ASSERT(config.valid());
    CLEAN_ASSERT(slots <= config.maxThreads(),
                 "slots=%u max=%u", slots, config.maxThreads());
    elements_.resize(slots);
    for (ThreadId t = 0; t < slots; ++t)
        elements_[t] = config_.pack(t, 0);
}

void
VectorClock::setClock(ThreadId tid, ClockValue clock)
{
    CLEAN_ASSERT(tid < size());
    CLEAN_ASSERT(clock <= config_.maxClock());
    elements_[tid] = config_.pack(tid, clock);
}

ClockValue
VectorClock::tick(ThreadId tid)
{
    CLEAN_ASSERT(tid < size());
    const ClockValue next = config_.clockOf(elements_[tid]) + 1;
    CLEAN_ASSERT(next <= config_.maxClock(),
                 "clock rollover must be handled by the caller");
    elements_[tid] = config_.pack(tid, next);
    return next;
}

ClockValue
VectorClock::tickSaturating(ThreadId tid)
{
    CLEAN_ASSERT(tid < size());
    const ClockValue current = config_.clockOf(elements_[tid]);
    if (current >= config_.maxClock())
        return current;
    const ClockValue next = current + 1;
    elements_[tid] = config_.pack(tid, next);
    return next;
}

void
VectorClock::joinFrom(const VectorClock &other)
{
    CLEAN_ASSERT(other.size() == size());
    // Elements carry identical tid bits at identical indices, so the raw
    // max is the clock max.
    for (ThreadId t = 0; t < size(); ++t)
        elements_[t] = std::max(elements_[t], other.elements_[t]);
}

void
VectorClock::clearClocks()
{
    for (ThreadId t = 0; t < size(); ++t)
        elements_[t] = config_.pack(t, 0);
}

bool
VectorClock::allLessOrEqual(const VectorClock &other) const
{
    CLEAN_ASSERT(other.size() == size());
    for (ThreadId t = 0; t < size(); ++t) {
        if (elements_[t] > other.elements_[t])
            return false;
    }
    return true;
}

std::string
VectorClock::toString() const
{
    std::ostringstream os;
    os << '<';
    for (ThreadId t = 0; t < size(); ++t) {
        if (t)
            os << ", ";
        os << clockOf(t);
    }
    os << '>';
    return os.str();
}

} // namespace clean
