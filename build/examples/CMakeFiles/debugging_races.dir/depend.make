# Empty dependencies file for debugging_races.
# This may be replaced when dependencies are built.
