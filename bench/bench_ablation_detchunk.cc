/**
 * @file
 * Ablation — deterministic-counter granularity (§6.2.1).
 *
 * The paper's Kendo counters tick per instrumented basic block above a
 * size cutoff: bigger chunks cost less instrumentation but track thread
 * progress less precisely, so threads wait longer at turns (the paper
 * blames counter imprecision for part of fmm/radiosity/dedup/ferret/
 * vips' deterministic-synchronization overhead). This bench sweeps the
 * chunk size under KendoOnly and reports run time and the total Kendo
 * spin count.
 */

#include "bench/common.h"

using namespace clean;
using namespace clean::bench;
using namespace clean::wl;

int
main(int argc, char **argv)
{
    BenchConfig config = parseBench(argc, argv, "small");
    if (!config.options.has("workloads"))
        config.workloads = {"fft", "barnes", "streamcluster", "ferret"};
    const std::uint32_t chunks[] = {1, 4, 16, 64};

    std::printf("=== Ablation: deterministic-counter chunking "
                "(threads=%u, scale=%s) ===\n\n",
                config.threads,
                config.options.getString("scale", "small").c_str());
    std::printf("%-14s", "benchmark");
    for (auto c : chunks)
        std::printf("   chunk=%-3u", c);
    std::printf("   (KendoOnly seconds)\n");

    for (const auto &name : config.workloads) {
        std::printf("%-14s", name.c_str());
        for (auto c : chunks) {
            auto spec = baseSpec(config, name, BackendKind::KendoOnly);
            spec.runtime.detChunk = c;
            const double t = timedSeconds(spec, config.repeats);
            std::printf("   %9.4f", t);
        }
        std::printf("\n");
    }
    std::printf("\nexpected shape: modest chunks are nearly free; very "
                "large chunks make counters\nlag real progress and "
                "lengthen deterministic waits on imbalanced "
                "workloads.\n");
    return 0;
}
