/**
 * @file
 * Microbenchmarks of the race-check hot path (google-benchmark).
 *
 * Latency of the §3.2/§4.3/§4.4 building blocks: read checks, write
 * checks with and without epoch publication, vectorized vs per-byte
 * multi-byte checks, Linear vs Sparse shadow addressing, and CAS vs
 * locked atomicity — the per-access costs behind Figure 6's 5.8x.
 */

#include <benchmark/benchmark.h>

#include "core/linear_shadow.h"
#include "core/race_check.h"
#include "core/sampling.h"
#include "core/sparse_shadow.h"
#include "core/thread_state.h"

namespace clean
{
namespace
{

constexpr Addr kBase = 0x100000000;
constexpr std::size_t kSpan = 1 << 22;

struct Fixture
{
    explicit Fixture(CheckerConfig config = {})
        : shadow(kBase, kSpan), checker(config, shadow),
          self(config.epoch, 0, 8), other(config.epoch, 1, 8)
    {
        self.vc.setClock(0, 1);
        self.refreshOwnEpoch();
        other.vc.setClock(1, 1);
        other.refreshOwnEpoch();
    }

    LinearShadow shadow;
    RaceChecker<LinearShadow> checker;
    ThreadState self, other;
};

void
BM_ReadCheckSameEpoch8B(benchmark::State &state)
{
    Fixture f;
    f.checker.beforeWrite(f.self, kBase, 64);
    for (auto _ : state)
        f.checker.afterRead(f.self, kBase, 8);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadCheckSameEpoch8B);

/** PR 2 same-epoch fast path with the ownership cache ablated — the
 *  reference the owned-line hit path is measured against. */
void
BM_ReadCheckSameEpoch8B_NoOwnCache(benchmark::State &state)
{
    CheckerConfig config;
    config.ownCache = false;
    Fixture f(config);
    f.checker.beforeWrite(f.self, kBase, 64);
    for (auto _ : state)
        f.checker.afterRead(f.self, kBase, 8);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadCheckSameEpoch8B_NoOwnCache);

void
BM_ReadCheckSameEpoch8B_NoVec(benchmark::State &state)
{
    CheckerConfig config;
    config.vectorized = false;
    Fixture f(config);
    f.checker.beforeWrite(f.self, kBase, 64);
    for (auto _ : state)
        f.checker.afterRead(f.self, kBase, 8);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadCheckSameEpoch8B_NoVec);

void
BM_ReadCheckSameEpoch8B_NoFastPath(benchmark::State &state)
{
    CheckerConfig config;
    config.fastPath = false;
    Fixture f(config);
    f.checker.beforeWrite(f.self, kBase, 64);
    for (auto _ : state)
        f.checker.afterRead(f.self, kBase, 8);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadCheckSameEpoch8B_NoFastPath);

void
BM_WriteCheckSameEpoch8B(benchmark::State &state)
{
    Fixture f;
    f.checker.beforeWrite(f.self, kBase, 64);
    for (auto _ : state)
        f.checker.beforeWrite(f.self, kBase, 8); // same epoch: no CAS
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WriteCheckSameEpoch8B);

void
BM_WriteCheckSameEpoch8B_NoOwnCache(benchmark::State &state)
{
    CheckerConfig config;
    config.ownCache = false;
    Fixture f(config);
    f.checker.beforeWrite(f.self, kBase, 64);
    for (auto _ : state)
        f.checker.beforeWrite(f.self, kBase, 8);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WriteCheckSameEpoch8B_NoOwnCache);

/**
 * Ownership-cache miss path: alternate between two lines 32 KiB apart,
 * which collide in the 512-entry direct-mapped cache, so every access
 * misses (and re-claims, evicting the other line). Measures the cache's
 * added cost on top of the PR 2 fast path when it never hits.
 */
void
BM_ReadCheckOwnedMiss8B(benchmark::State &state)
{
    Fixture f;
    constexpr Addr kConflict = OwnershipCache::kEntries *
                               OwnershipCache::kLineBytes;
    f.checker.beforeWrite(f.self, kBase, 64);
    f.checker.beforeWrite(f.self, kBase + kConflict, 64);
    Addr a = kBase;
    for (auto _ : state) {
        f.checker.afterRead(f.self, a, 8);
        a ^= kConflict;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadCheckOwnedMiss8B);

/**
 * Flush storm: every iteration flushes the whole cache (the O(1)
 * generation bump refreshOwnEpoch performs at an SFR boundary) and then
 * re-claims the line via the fast-path write. Bounds the per-boundary
 * cost of the cache for sync-heavy programs.
 */
void
BM_WriteCheckFlushStorm8B(benchmark::State &state)
{
    Fixture f;
    f.checker.beforeWrite(f.self, kBase, 64);
    for (auto _ : state) {
        f.self.ownCache.flush(f.self.stats);
        f.checker.beforeWrite(f.self, kBase, 8);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WriteCheckFlushStorm8B);

void
BM_WriteCheckSameEpoch8B_NoFastPath(benchmark::State &state)
{
    CheckerConfig config;
    config.fastPath = false;
    Fixture f(config);
    f.checker.beforeWrite(f.self, kBase, 64);
    for (auto _ : state)
        f.checker.beforeWrite(f.self, kBase, 8);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WriteCheckSameEpoch8B_NoFastPath);

/** The wide same-epoch case the SIMD scan targets (a full cache line). */
void
BM_WriteCheckSameEpoch64B(benchmark::State &state)
{
    Fixture f;
    f.checker.beforeWrite(f.self, kBase, 64);
    for (auto _ : state)
        f.checker.beforeWrite(f.self, kBase, 64);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WriteCheckSameEpoch64B);

void
BM_WriteCheckSameEpoch64B_NoFastPath(benchmark::State &state)
{
    CheckerConfig config;
    config.fastPath = false;
    Fixture f(config);
    f.checker.beforeWrite(f.self, kBase, 64);
    for (auto _ : state)
        f.checker.beforeWrite(f.self, kBase, 64);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WriteCheckSameEpoch64B_NoFastPath);

void
BM_WritePublish8B(benchmark::State &state)
{
    // Alternate epochs so every write publishes (wide CAS each time).
    Fixture f;
    for (auto _ : state) {
        f.checker.beforeWrite(f.self, kBase, 8);
        f.self.vc.tick(0);
        f.self.refreshOwnEpoch();
        if (f.self.vc.clockOf(0) > 4000000) {
            state.PauseTiming();
            f.self.vc.setClock(0, 1);
            f.self.refreshOwnEpoch();
            f.shadow.reset();
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WritePublish8B);

void
BM_WriteCheckWidthSweep(benchmark::State &state)
{
    Fixture f;
    const std::size_t width = static_cast<std::size_t>(state.range(0));
    f.checker.beforeWrite(f.self, kBase, 256);
    for (auto _ : state)
        f.checker.beforeWrite(f.self, kBase, width);
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * width));
}
BENCHMARK(BM_WriteCheckWidthSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->
    Arg(16)->Arg(32)->Arg(64);

void
BM_LockedAtomicityWrite8B(benchmark::State &state)
{
    CheckerConfig config;
    config.atomicity = AtomicityMode::Locked;
    Fixture f(config);
    f.checker.beforeWrite(f.self, kBase, 64);
    for (auto _ : state)
        f.checker.beforeWrite(f.self, kBase, 8);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockedAtomicityWrite8B);

void
BM_SparseShadowRead8B(benchmark::State &state)
{
    SparseShadow shadow;
    CheckerConfig config;
    RaceChecker<SparseShadow> checker(config, shadow);
    ThreadState self(config.epoch, 0, 8);
    self.vc.setClock(0, 1);
    self.refreshOwnEpoch();
    checker.beforeWrite(self, kBase, 64);
    for (auto _ : state)
        checker.afterRead(self, kBase, 8);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SparseShadowRead8B);

void
BM_ReadCheckStriding(benchmark::State &state)
{
    // Cache-hostile: walk a large region so the shadow misses too.
    Fixture f;
    for (Addr a = kBase; a < kBase + kSpan; a += 64)
        f.checker.beforeWrite(f.self, a, 8);
    Addr a = kBase;
    for (auto _ : state) {
        f.checker.afterRead(f.self, a, 8);
        a += 4096;
        if (a >= kBase + kSpan)
            a = kBase;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadCheckStriding);

/** The same cache-hostile stride with batched read checking (the
 *  runtime default): every access opens a fresh run, so this is the
 *  batching ablation's worst case in this file — bench_batch has the
 *  streaming lanes where batching wins. */
void
BM_ReadCheckStriding_Batch(benchmark::State &state)
{
    CheckerConfig config;
    config.batch = true;
    Fixture f(config);
    for (Addr a = kBase; a < kBase + kSpan; a += 64)
        f.checker.beforeWrite(f.self, a, 8);
    Addr a = kBase;
    for (auto _ : state) {
        f.checker.afterRead(f.self, a, 8);
        a += 4096;
        if (a >= kBase + kSpan)
            a = kBase;
    }
    f.checker.drainBatch(f.self);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadCheckStriding_Batch);

/** Streaming reads with batched checking, the shape bench_batch
 *  measures in detail — kept here too so one binary shows the
 *  stride/stream contrast under identical build flags. */
void
BM_ReadCheckStreaming_Batch(benchmark::State &state)
{
    CheckerConfig config;
    config.batch = true;
    Fixture f(config);
    constexpr std::size_t kRegion = 256 << 10;
    for (Addr a = kBase; a < kBase + kRegion; a += 64)
        f.checker.beforeWrite(f.self, a, 64);
    Addr a = kBase;
    for (auto _ : state) {
        f.checker.afterRead(f.self, a, 8);
        a += 8;
        if (a >= kBase + kRegion)
            a = kBase;
    }
    f.checker.drainBatch(f.self);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadCheckStreaming_Batch);

// ---------------------------------------------------------------------
// Sampling-tier SLO lanes (--overhead-budget, DESIGN.md §15).
//
// Each lane interleaves one shared 8-byte read with a fixed slug of
// private work (the shim only instruments shared accesses; real kernels
// do tens of ns of uninstrumented work per shared read). Overhead is
// measured the way the governor defines it: against the *floor* lane,
// which runs the identical loop with the gate live but every read shed
// (the calibration-SFR denominator), so the ratio isolates exactly the
// controllable cost the budget contract governs.
//
// The Budget10 lanes pin the admission level a 10% governor converges
// to on each shape — level 8 (≈10% admitted) on the cache-resident
// stream, level 16 (≈1% admitted) on the conflict-heavy stride, where
// each admitted check walks cold shadow and costs proportionally more.
// check_perf.py's slo gate asserts Budget10 ≤ 1.12 × Floor per shape
// on top of the usual regression check.
// ---------------------------------------------------------------------

/** Private-work slug: ~16 dependent ops per shared read. */
struct AppSlug
{
    std::uint64_t state = 0x9e3779b97f4a7c15ULL;

    void
    step()
    {
        for (int i = 0; i < 4; ++i) {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
        }
        benchmark::DoNotOptimize(state);
    }
};

SampleParams
sloParams(std::uint32_t level)
{
    SampleParams params;
    // One giant window: every region decides once, then the memo table
    // hits forever — the steady-state Bernoulli regime, with no
    // consecutive-window backoff or quarantine churn perturbing the
    // measured admission rate.
    params.windowLog2 = 30;
    params.burstWindows = 0;
    params.initialLevel = level;
    params.base = kBase;
    return params;
}

/** Cache-resident streaming reads over 256 KiB, batched checking. */
template <bool kDetector>
void
sloStreamLoop(benchmark::State &state, std::uint32_t level)
{
    CheckerConfig config;
    config.batch = true;
    config.sampling = kDetector;
    Fixture f(config);
    if (kDetector)
        f.self.sample.configure(sloParams(level));
    constexpr std::size_t kRegion = 256 << 10;
    for (Addr a = kBase; a < kBase + kRegion; a += 64)
        f.checker.beforeWrite(f.self, a, 64);
    AppSlug app;
    Addr a = kBase;
    for (auto _ : state) {
        app.step();
        if (kDetector)
            f.checker.afterRead(f.self, a, 8);
        a += 8;
        if (a >= kBase + kRegion)
            a = kBase;
    }
    if (kDetector)
        f.checker.drainBatch(f.self);
    state.SetItemsProcessed(state.iterations());
}

void
BM_SloStreamRead8B_NoDetector(benchmark::State &state)
{
    sloStreamLoop<false>(state, 0);
}
BENCHMARK(BM_SloStreamRead8B_NoDetector);

void
BM_SloStreamRead8B_Floor(benchmark::State &state)
{
    sloStreamLoop<true>(state, SampleGate::kMaxLevel);
}
BENCHMARK(BM_SloStreamRead8B_Floor);

void
BM_SloStreamRead8B_Budget10(benchmark::State &state)
{
    sloStreamLoop<true>(state, 8); // 0.75^8 ≈ 10% of regions admitted
}
BENCHMARK(BM_SloStreamRead8B_Budget10);

void
BM_SloStreamRead8B_Full(benchmark::State &state)
{
    sloStreamLoop<true>(state, 0);
}
BENCHMARK(BM_SloStreamRead8B_Full);

/** Conflict-heavy reads: 4 KiB stride over 4 MiB, so the shadow walk
 *  misses cache and every batched access opens a fresh run. */
template <bool kDetector>
void
sloStrideLoop(benchmark::State &state, std::uint32_t level)
{
    CheckerConfig config;
    config.batch = true;
    config.sampling = kDetector;
    Fixture f(config);
    if (kDetector)
        f.self.sample.configure(sloParams(level));
    for (Addr a = kBase; a < kBase + kSpan; a += 64)
        f.checker.beforeWrite(f.self, a, 8);
    AppSlug app;
    Addr a = kBase;
    for (auto _ : state) {
        app.step();
        if (kDetector)
            f.checker.afterRead(f.self, a, 8);
        a += 4096;
        if (a >= kBase + kSpan)
            a = kBase;
    }
    if (kDetector)
        f.checker.drainBatch(f.self);
    state.SetItemsProcessed(state.iterations());
}

void
BM_SloStrideRead8B_NoDetector(benchmark::State &state)
{
    sloStrideLoop<false>(state, 0);
}
BENCHMARK(BM_SloStrideRead8B_NoDetector);

void
BM_SloStrideRead8B_Floor(benchmark::State &state)
{
    sloStrideLoop<true>(state, SampleGate::kMaxLevel);
}
BENCHMARK(BM_SloStrideRead8B_Floor);

void
BM_SloStrideRead8B_Budget10(benchmark::State &state)
{
    sloStrideLoop<true>(state, 16); // ≈1%: cold-shadow checks cost more
}
BENCHMARK(BM_SloStrideRead8B_Budget10);

void
BM_SloStrideRead8B_Full(benchmark::State &state)
{
    sloStrideLoop<true>(state, 0);
}
BENCHMARK(BM_SloStrideRead8B_Full);

} // namespace
} // namespace clean

BENCHMARK_MAIN();
