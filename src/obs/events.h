/**
 * @file
 * Flight-recorder event schema (observability layer, ISSUE 4).
 *
 * One Event is a fixed-size typed record a thread appends to its own
 * ring buffer at the runtime's *cold* control points — SFR boundaries,
 * sync operations, races, recovery episodes, rollovers, injected
 * faults, watchdog trips. Events are stamped with the thread's Kendo
 * deterministic counter, never wall time, so the merged stream of a
 * deterministic run is byte-identical run-to-run (see DESIGN.md §11
 * for the determinism argument and the per-kind payload meanings).
 */

#ifndef CLEAN_OBS_EVENTS_H
#define CLEAN_OBS_EVENTS_H

#include <cstdint>
#include <string_view>

#include "support/common.h"

namespace clean::obs
{

/** Compile-time master switch (CMake option CLEAN_OBS). The library
 *  always builds; with CLEAN_OBS=OFF the runtime never constructs a
 *  recorder, so every record site folds into a never-taken null check. */
#ifdef CLEAN_OBS_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/**
 * Typed event kinds. Payload conventions (arg0, arg1):
 *
 *   SfrBegin          (sfrOrdinal, 0)
 *   SfrEnd            (sfrOrdinal, length in det events)
 *   SyncAcquire       (kendo count, sfrOrdinal)      — lock acquired
 *   SyncRelease       (kendo count, sfrOrdinal)      — lock released
 *   RaceDetected      (heap offset, RaceKind)
 *   RecoveryBegin     (heap offset of racy site, sfrOrdinal)
 *   RecoveryRollback  (entries restored, entries skipped)
 *   RecoveryReplay    (attempt index, forced ? 1 : 0)
 *   RecoveryEnd       (recovered ? 1 : 0, forced ? 1 : 0)
 *   Quarantine        (heap offset of quarantined site, 0)
 *   Rollover          (reset ordinal, 0)             — global lane
 *   InjectionFired    (inject::FaultKind, site coordinate)
 *   WatchdogTrip      (waited ms, suspected stuck slot)
 *   ThreadStart       (thread record index, 0)
 *   ThreadFinish      (thread record index, 0)
 *   TurnGrant         (sfrOrdinal before the grant, 0) — this thread
 *                     won a Kendo turn at det; the sorted TurnGrant
 *                     stream *is* the global synchronization order a
 *                     replay re-drives (ISSUE 6)
 *   SampleLevel       (new admission level, decision-window ordinal) —
 *                     the thread adopted a governor-published sampling
 *                     level at an SFR boundary; replay adopts the
 *                     recorded level here instead of consulting the
 *                     (physically-timed) governor (§15)
 *   SampleShed        (reads shed since the previous boundary,
 *                     decision-window ordinal) — emitted at an SFR
 *                     boundary whose interval shed at least one read;
 *                     validated on replay, so a diverging shed count
 *                     is a trace fault
 *   SampleQuarantine  (region byte offset, strikes at quarantine) —
 *                     a region exhausted its sampling budget
 *                     repeatedly and was locally quarantined
 */
enum class EventKind : std::uint8_t
{
    SfrBegin = 0,
    SfrEnd,
    SyncAcquire,
    SyncRelease,
    RaceDetected,
    RecoveryBegin,
    RecoveryRollback,
    RecoveryReplay,
    RecoveryEnd,
    Quarantine,
    Rollover,
    InjectionFired,
    WatchdogTrip,
    ThreadStart,
    ThreadFinish,
    TurnGrant,
    SampleLevel,
    SampleShed,
    SampleQuarantine,
};

inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::SampleQuarantine) + 1;

/** Stable snake_case name (trace export, failure reports). */
const char *eventKindName(EventKind kind);

/** Inverse of eventKindName; -1 when @p name is not a kind. */
int eventKindFromName(std::string_view name);

/** One flight-recorder record. */
struct Event
{
    /** Deterministic timestamp: the owning thread's Kendo counter at
     *  record time (0 throughout when Kendo is disabled). */
    std::uint64_t det = 0;
    /** Per-lane append ordinal (also the total-records counter). */
    std::uint64_t seq = 0;
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
    ThreadId tid = 0;
    EventKind kind = EventKind::SfrBegin;
};

/**
 * Observer of the record funnel (ISSUE 6): a hook attached to the
 * recorder sees every event as its owning thread appends it. The record
 * sink persists the stream to disk; the replay validator checks it
 * against a loaded trace. Called on the recording thread at the cold
 * control points only (never on the per-access hot path); the
 * implementation must be thread-safe across lanes and may throw (a
 * replay divergence aborts the offending thread at the record site).
 */
class EventHook
{
  public:
    virtual ~EventHook() = default;
    virtual void onEvent(const Event &e) = 0;
};

} // namespace clean::obs

#endif // CLEAN_OBS_EVENTS_H
