file(REMOVE_RECURSE
  "CMakeFiles/clean_detectors.dir/detectors/fasttrack.cc.o"
  "CMakeFiles/clean_detectors.dir/detectors/fasttrack.cc.o.d"
  "CMakeFiles/clean_detectors.dir/detectors/tsan_lite.cc.o"
  "CMakeFiles/clean_detectors.dir/detectors/tsan_lite.cc.o.d"
  "libclean_detectors.a"
  "libclean_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clean_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
