/**
 * @file
 * Runner tests: backend selection, measurement plumbing, and one
 * end-to-end hardware simulation of a recorded trace.
 */

#include <gtest/gtest.h>

#include "sim/machine.h"
#include "workloads/runner.h"

namespace clean::wl
{
namespace
{

RunSpec
spec(BackendKind backend, const std::string &name = "fft",
     bool racy = false)
{
    RunSpec s;
    s.workload = name;
    s.backend = backend;
    s.params.threads = 4;
    s.params.scale = Scale::Test;
    s.params.racy = racy;
    s.runtime.maxThreads = 32;
    s.runtime.heap.sharedBytes = std::size_t{256} << 20;
    s.runtime.heap.privateBytes = std::size_t{64} << 20;
    return s;
}

TEST(Runner, BackendNames)
{
    EXPECT_STREQ(backendKindName(BackendKind::Native), "native");
    EXPECT_STREQ(backendKindName(BackendKind::Clean), "clean");
    EXPECT_STREQ(backendKindName(BackendKind::DetectOnly),
                 "detect-only");
    EXPECT_STREQ(backendKindName(BackendKind::KendoOnly), "kendo-only");
    EXPECT_STREQ(backendKindName(BackendKind::FastTrack), "fasttrack");
    EXPECT_STREQ(backendKindName(BackendKind::TsanLite), "tsan-lite");
    EXPECT_STREQ(backendKindName(BackendKind::Trace), "trace");
}

TEST(Runner, NativeMeasuresTimeAndCounts)
{
    const auto result = runWorkload(spec(BackendKind::Native));
    EXPECT_GT(result.seconds, 0.0);
    EXPECT_GT(result.reads, 0u);
    EXPECT_GT(result.writes, 0u);
    EXPECT_FALSE(result.raceException);
}

TEST(Runner, CleanFillsCheckerStats)
{
    const auto result = runWorkload(spec(BackendKind::Clean));
    EXPECT_GT(result.checker.accesses(), 0u);
    EXPECT_GT(result.checker.wideAccesses, 0u);
    EXPECT_FALSE(result.detCounts.empty());
}

TEST(Runner, KendoOnlyNeverDetects)
{
    // Even a racy workload completes under KendoOnly (no detection).
    const auto result =
        runWorkload(spec(BackendKind::KendoOnly, "raytrace", true));
    EXPECT_FALSE(result.raceException);
}

TEST(Runner, FastTrackCountsRaceKinds)
{
    const auto result =
        runWorkload(spec(BackendKind::FastTrack, "raytrace", true));
    EXPECT_GT(result.detectorReports, 0u);
    EXPECT_EQ(result.detectorReports,
              result.detectorWaw + result.detectorRaw +
                  result.detectorWar);
    // The unlocked counter RMW produces WAW and/or RAW, not only WAR.
    EXPECT_GT(result.detectorWaw + result.detectorRaw, 0u);
}

TEST(Runner, TsanLiteDetectsObviousRaces)
{
    const auto result =
        runWorkload(spec(BackendKind::TsanLite, "raytrace", true));
    EXPECT_GT(result.detectorReports, 0u);
}

TEST(Runner, FastTrackFindsNothingOnRaceFree)
{
    const auto result = runWorkload(spec(BackendKind::FastTrack, "fft"));
    EXPECT_EQ(result.detectorReports, 0u);
}

TEST(Runner, NativeIsFasterThanClean)
{
    // The headline claim at miniature scale: instrumentation costs.
    const auto native = runWorkload(spec(BackendKind::Native, "lu_cb"));
    const auto clean = runWorkload(spec(BackendKind::Clean, "lu_cb"));
    EXPECT_LT(native.seconds, clean.seconds);
}

TEST(Runner, TraceFeedsTheSimulator)
{
    auto result = runWorkload(spec(BackendKind::Trace, "fft"));
    ASSERT_GT(result.trace.totalEvents(), 0u);

    sim::MachineConfig off;
    off.raceDetection = false;
    const auto base = sim::simulate(result.trace, off);

    sim::MachineConfig on;
    const auto checked = sim::simulate(result.trace, on);

    EXPECT_GT(base.totalCycles, 0u);
    EXPECT_GE(checked.totalCycles, base.totalCycles);
    EXPECT_GT(checked.hw.sharedAccesses(), 0u);
    EXPECT_EQ(checked.hw.racesDetected, 0u)
        << "race-free trace must not trip the hardware check";
    // The hardware is cheap: well under 2x even at tiny scale.
    EXPECT_LT(static_cast<double>(checked.totalCycles),
              2.5 * static_cast<double>(base.totalCycles));
}

TEST(Runner, SimulatedRacyTraceTripsTheHardware)
{
    auto result =
        runWorkload(spec(BackendKind::Trace, "raytrace", true));
    ASSERT_GT(result.trace.totalEvents(), 0u);
    sim::MachineConfig config;
    const auto stats = sim::simulate(result.trace, config);
    EXPECT_GT(stats.hw.racesDetected, 0u);
}

TEST(Runner, EpochModesAgreeFunctionally)
{
    auto result = runWorkload(spec(BackendKind::Trace, "fft"));
    for (auto mode : {sim::EpochMode::Clean, sim::EpochMode::Byte1,
                      sim::EpochMode::Byte4}) {
        sim::MachineConfig config;
        config.epochMode = mode;
        const auto stats = sim::simulate(result.trace, config);
        EXPECT_EQ(stats.hw.racesDetected, 0u)
            << sim::epochModeName(mode);
        EXPECT_GT(stats.hw.sharedAccesses(), 0u);
    }
}

} // namespace
} // namespace clean::wl
