file(REMOVE_RECURSE
  "libclean_support.a"
)
