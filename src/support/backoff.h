/**
 * @file
 * Spin-with-backoff waiting and watchdog deadlines.
 *
 * Every blocking loop in the runtime (Kendo turn waits, condition/barrier
 * flag waits, the join handshake, rollover parking) waits through a
 * SpinWait: a short burst of sched_yield calls for low-latency handoff,
 * then capped timed sleeps so a stalled peer cannot burn a whole core.
 * The same object carries the optional watchdog deadline after which the
 * caller converts the wait into a structured DeadlockError instead of
 * spinning forever.
 */

#ifndef CLEAN_SUPPORT_BACKOFF_H
#define CLEAN_SUPPORT_BACKOFF_H

#include <chrono>
#include <cstdint>
#include <thread>

namespace clean
{

/** One blocking wait: yield burst, then timed sleeps, plus a deadline. */
class SpinWait
{
  public:
    /** @param timeoutMs watchdog deadline; 0 means wait forever. */
    explicit SpinWait(std::uint64_t timeoutMs = 0)
        : start_(Clock::now()), timeoutMs_(timeoutMs)
    {
    }

    /** One wait step: yields for the first kYieldIters calls, then
     *  sleeps with linearly growing, capped duration. */
    void
    pause()
    {
        ++iters_;
        if (iters_ <= kYieldIters) {
            std::this_thread::yield();
            return;
        }
        const std::uint64_t over = iters_ - kYieldIters;
        const std::uint64_t micros =
            over < kMaxSleepMicros ? over : kMaxSleepMicros;
        std::this_thread::sleep_for(std::chrono::microseconds(micros));
    }

    /** True once the watchdog deadline has passed (never when disabled). */
    bool
    expired() const
    {
        return timeoutMs_ > 0 && elapsedMs() >= timeoutMs_;
    }

    std::uint64_t
    elapsedMs() const
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - start_)
                .count());
    }

    std::uint64_t iterations() const { return iters_; }

  private:
    using Clock = std::chrono::steady_clock;

    /** Pure yields before the first sleep: cheap handoff on loaded hosts
     *  where the awaited thread is runnable but descheduled. */
    static constexpr std::uint64_t kYieldIters = 64;
    /** Sleep cap; also bounds how stale an abort/deadline poll can be. */
    static constexpr std::uint64_t kMaxSleepMicros = 500;

    Clock::time_point start_;
    std::uint64_t timeoutMs_;
    std::uint64_t iters_ = 0;
};

} // namespace clean

#endif // CLEAN_SUPPORT_BACKOFF_H
