#include "detectors/fasttrack.h"

namespace clean::detectors
{

FastTrackDetector::FastTrackDetector(const EpochConfig &config,
                                     ThreadId maxThreads)
    : Detector(config, maxThreads)
{
}

FastTrackDetector::~FastTrackDetector() = default;

FastTrackDetector::Chunk &
FastTrackDetector::chunkFor(Addr addr)
{
    const Addr key = addr / kChunkBytes;
    std::lock_guard<std::mutex> guard(chunkMapMutex_);
    auto &slot = chunks_[key];
    if (!slot)
        slot = std::make_unique<Chunk>();
    return *slot;
}

void
FastTrackDetector::onRead(ThreadId t, Addr addr, std::size_t size)
{
    for (std::size_t i = 0; i < size; ++i) {
        Chunk &chunk = chunkFor(addr + i);
        std::lock_guard<std::mutex> guard(chunk.lock);
        readByte(t, addr + i, chunk);
    }
}

void
FastTrackDetector::onWrite(ThreadId t, Addr addr, std::size_t size)
{
    for (std::size_t i = 0; i < size; ++i) {
        Chunk &chunk = chunkFor(addr + i);
        std::lock_guard<std::mutex> guard(chunk.lock);
        writeByte(t, addr + i, chunk);
    }
}

void
FastTrackDetector::readByte(ThreadId t, Addr addr, Chunk &chunk)
{
    Cell &cell = chunk.cells[addr % kChunkBytes];
    const VectorClock &vc = threads_[t];
    const EpochValue myEpoch = vc.element(t);

    // FT: [read same epoch] — nothing to do.
    if (cell.readEpoch == myEpoch)
        return;

    // RAW check against the last write.
    if (cell.write != 0) {
        const ThreadId writer = config_.tidOf(cell.write);
        if (config_.clockOf(cell.write) > vc.clockOf(writer) && writer != t)
            report(RaceKind::Raw, addr, t, writer);
    }

    if (cell.readVc) {
        // [read shared]: record this read in the read vector clock.
        if (vc.clockOf(t) > cell.readVc->clockOf(t))
            cell.readVc->setClock(t, vc.clockOf(t));
        return;
    }
    const ThreadId prevReader = config_.tidOf(cell.readEpoch);
    if (cell.readEpoch == 0 ||
        config_.clockOf(cell.readEpoch) <= vc.clockOf(prevReader)) {
        // [read exclusive]: previous read happens-before this one.
        cell.readEpoch = myEpoch;
    } else {
        // [read share]: two concurrent readers — promote to a read VC.
        cell.readVc = std::make_unique<VectorClock>(config_, maxThreads_);
        cell.readVc->setClock(prevReader,
                              config_.clockOf(cell.readEpoch));
        cell.readVc->setClock(t, vc.clockOf(t));
        cell.readEpoch = 0;
    }
}

void
FastTrackDetector::writeByte(ThreadId t, Addr addr, Chunk &chunk)
{
    Cell &cell = chunk.cells[addr % kChunkBytes];
    const VectorClock &vc = threads_[t];
    const EpochValue myEpoch = vc.element(t);

    // FT: [write same epoch].
    if (cell.write == myEpoch)
        return;

    // WAW check.
    if (cell.write != 0) {
        const ThreadId writer = config_.tidOf(cell.write);
        if (config_.clockOf(cell.write) > vc.clockOf(writer) && writer != t)
            report(RaceKind::Waw, addr, t, writer);
    }

    // WAR checks: this is the expensive case CLEAN skips by design — a
    // write can race with *any* earlier read, so the full read vector
    // clock must be scanned.
    if (cell.readVc) {
        for (ThreadId j = 0; j < maxThreads_; ++j) {
            if (j == t)
                continue;
            if (cell.readVc->clockOf(j) > vc.clockOf(j))
                report(RaceKind::War, addr, t, j);
        }
        cell.readVc.reset();
    } else if (cell.readEpoch != 0) {
        const ThreadId reader = config_.tidOf(cell.readEpoch);
        if (config_.clockOf(cell.readEpoch) > vc.clockOf(reader) &&
            reader != t) {
            report(RaceKind::War, addr, t, reader);
        }
    }

    cell.write = myEpoch;
    cell.readEpoch = 0;
}

} // namespace clean::detectors
