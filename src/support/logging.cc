#include "support/logging.h"

#include <cstdio>
#include <cstdlib>

#include "support/common.h"

namespace clean
{

namespace detail
{

namespace
{

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

void
vlogMessage(LogLevel level, const char *fmt, va_list ap)
{
    if (level == LogLevel::Inform && !verboseEnabled())
        return;
    std::fprintf(stderr, "[clean:%s] ", levelTag(level));
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    std::fflush(stderr);
}

} // namespace

void
logMessage(LogLevel level, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlogMessage(level, fmt, ap);
    va_end(ap);
}

void
assertFail(const char *cond, const char *file, int line, const char *fmt,
           ...)
{
    std::fprintf(stderr, "[clean:panic] assertion failed: %s (%s:%d) ",
                 cond, file, line);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
    std::abort();
}

} // namespace detail

bool
verboseEnabled()
{
    static const bool enabled = std::getenv("CLEAN_VERBOSE") != nullptr;
    return enabled;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "[clean:panic] ");
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "[clean:fatal] ");
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "[clean:warn] ");
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (!verboseEnabled())
        return;
    va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "[clean:info] ");
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    va_end(ap);
}

} // namespace clean
