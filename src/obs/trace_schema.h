/**
 * @file
 * Record/replay trace container, schema v1 (ISSUE 6 tentpole).
 *
 * A trace file is the minimal non-deterministic input of one run: the
 * full flight-recorder event stream (whose TurnGrant events *are* the
 * Kendo synchronization order) plus a metadata header pinning every
 * configuration knob that shapes the deterministic execution —
 * workload identity, runtime config, and the injection plan (rates as
 * exact IEEE-754 bit patterns, since decisions are pure hashes of the
 * seed and rates). Replaying a trace under the same binary re-drives
 * the run to byte-identical failure reports and metrics.
 *
 * On-disk layout (version 1):
 *
 *   "CLEANTRACE 1\n"          — magic + schema version (text)
 *   key=value\n ...           — TraceMeta, one field per line (text)
 *   "%%\n"                    — header/body separator
 *   40-byte records ...       — events, fixed little-endian layout:
 *                               det u64, seq u64, arg0 u64, arg1 u64,
 *                               tid u32, kind u8, pad u8[3]
 *   "CLEANEND" + count u64    — footer: present iff the recorder shut
 *                               down cleanly (finalize()); its absence
 *                               marks a *truncated* trace (the recorder
 *                               crashed mid-run)
 *
 * The reader is truncation-tolerant: a body that ends mid-record or
 * without the footer yields the parseable prefix with complete=false —
 * a replay then re-drives that prefix and reports TraceFault::Truncated
 * instead of hanging (see det/replay.h). Header failures throw
 * TraceError (BadFile / BadMagic / BadVersion / BadMeta).
 */

#ifndef CLEAN_OBS_TRACE_SCHEMA_H
#define CLEAN_OBS_TRACE_SCHEMA_H

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "obs/events.h"
#include "support/common.h"
#include "support/trace_error.h"

namespace clean::obs
{

/** Schema version this binary reads and writes. v2 added the batched
 *  SFR-boundary checking fields (batch, batch_bytes); v3 the sampling
 *  governor fields (overhead_budget, sample_*) — a budgeted trace pins
 *  the full gate configuration so replayed shed decisions are bit-exact,
 *  with the physically-driven level adoptions replayed from the event
 *  stream itself (SampleLevel). */
inline constexpr std::uint32_t kTraceSchemaVersion = 3;

/** Bytes of one serialized event record. */
inline constexpr std::size_t kTraceRecordBytes = 40;

/**
 * Everything a replay must match before re-driving events. Enums are
 * serialized as their numeric values (stable within a schema version);
 * injection rates as raw IEEE-754 bit patterns so the rebuilt plan's
 * pure-hash decisions are bit-exact.
 */
struct TraceMeta
{
    std::uint32_t schemaVersion = kTraceSchemaVersion;

    // Workload identity (wl::RunSpec).
    std::string workload;
    std::uint32_t scale = 0;
    std::uint32_t threads = 0;
    bool racy = false;
    std::uint64_t seed = 0;
    std::uint32_t backend = 0;

    // Runtime configuration (RuntimeConfig).
    std::uint32_t clockBits = 0;
    std::uint32_t tidBits = 0;
    std::uint32_t maxThreads = 0;
    std::uint32_t onRace = 0;
    bool vectorized = false;
    bool fastPath = false;
    bool ownCache = false;
    bool batch = true;
    std::uint64_t batchBytes = std::uint64_t{1} << 16;
    std::uint32_t atomicity = 0;
    std::uint32_t shadow = 0;
    std::uint32_t granuleLog2 = 0;
    std::uint32_t detChunk = 1;
    std::uint64_t rolloverMargin = 0;
    std::uint64_t watchdogMs = 0;
    std::uint32_t maxRecoveries = 0;
    std::uint64_t undoLogEntries = 0;
    std::uint64_t heapSharedBytes = 0;
    std::uint64_t heapPrivateBytes = 0;
    std::uint64_t obsRingEvents = 0;
    std::uint64_t obsFailureTail = 0;

    // Sampling governor (RuntimeConfig::overheadBudget + sample knobs).
    // 0 budget = sampling off. The header serializer speaks unsigned
    // decimal only, so the signed forceLevel (-1 = governed) is encoded
    // off-by-one: 0 = governed, n = forced level n-1.
    std::uint32_t overheadBudget = 0;
    std::uint32_t sampleWindowLog2 = 12;
    std::uint32_t sampleBurst = 4;
    std::uint32_t sampleRegionLog2 = 8;
    std::uint32_t sampleStrikes = 8;
    std::uint64_t sampleSeed = 0x5eedbead;
    std::uint32_t sampleCalibLog2 = 6;
    std::uint32_t sampleForceLevelP1 = 0;

    // Injection plan (inject::InjectionConfig).
    bool injectEnabled = false;
    std::uint64_t injectSeed = 0;
    std::uint64_t skipCheckRateBits = 0;
    std::uint64_t skipAcquireRateBits = 0;
    std::uint64_t delayRateBits = 0;
    std::uint64_t rolloverRateBits = 0;
    std::uint64_t killRateBits = 0;
    std::uint32_t delayMicros = 0;

    bool operator==(const TraceMeta &o) const;
    bool operator!=(const TraceMeta &o) const { return !(*this == o); }
};

/** Exact bit pattern of @p rate (and back) — the serialization used for
 *  injection probabilities. */
std::uint64_t rateToBits(double rate);
double rateFromBits(std::uint64_t bits);

/** Header text: magic line + key=value lines + separator. */
std::string serializeTraceMeta(const TraceMeta &meta);

/** A fully parsed trace file. */
struct TraceFile
{
    TraceMeta meta;
    /** File-order events (nondeterministic interleaving across lanes;
     *  per-lane (tid) order is by seq). Sort before consuming. */
    std::vector<Event> events;
    /** True iff the footer is present: the recorder shut down cleanly.
     *  False marks a truncated trace — the parseable prefix is in
     *  `events`, the remainder of the run is unavailable. */
    bool complete = false;
};

/** Loads and parses @p path; throws TraceError on header failures
 *  (BadFile / BadMagic / BadVersion / BadMeta). Body truncation does
 *  NOT throw — it yields complete=false (see file comment). */
TraceFile readTraceFile(const std::string &path);

/** Serializes one event into its 40-byte record (little-endian). */
void encodeTraceRecord(const Event &e, unsigned char out[kTraceRecordBytes]);

/** Inverse of encodeTraceRecord. */
Event decodeTraceRecord(const unsigned char in[kTraceRecordBytes]);

/**
 * The record sink: an EventHook that persists the event stream as it is
 * produced. Crash-safe by construction — the header is flushed at open,
 * records are flushed to the OS every kFlushEvery events, and only
 * finalize() writes the completeness footer. A process that dies
 * mid-run therefore leaves a well-formed *truncated* trace (at most the
 * last kFlushEvery-1 events lost), never a corrupt one.
 *
 * Thread-safe: lanes call onEvent concurrently; a mutex serializes the
 * appends (cold control points only, never the per-access hot path).
 */
class RecordSink : public EventHook
{
  public:
    /** Opens @p path and writes the header immediately; throws
     *  TraceError(BadFile) when the file cannot be created. */
    RecordSink(const std::string &path, const TraceMeta &meta);

    /** Closes without a footer when finalize() was never called —
     *  exactly the on-disk state of a crashed recorder. */
    ~RecordSink() override;

    RecordSink(const RecordSink &) = delete;
    RecordSink &operator=(const RecordSink &) = delete;

    void onEvent(const Event &e) override;

    /** Flushes buffered records and appends the completeness footer.
     *  Call once, after every recording thread quiesced. */
    void finalize();

    /** Events persisted so far. */
    std::uint64_t recorded() const;

    const std::string &path() const { return path_; }

    /** Records buffered between fflush calls. */
    static constexpr std::uint64_t kFlushEvery = 256;

  private:
    void flushLocked();

    std::string path_;
    mutable std::mutex mutex_;
    std::FILE *file_ = nullptr;
    std::vector<unsigned char> buffer_;
    std::uint64_t count_ = 0;
    bool finalized_ = false;
};

} // namespace clean::obs

#endif // CLEAN_OBS_TRACE_SCHEMA_H
