#include "workloads/trace.h"

#include <cstdio>
#include <memory>
#include <sstream>

namespace clean::wl
{

std::string
Trace::summary() const
{
    std::size_t reads = 0, writes = 0, sync = 0, computeUnits = 0;
    std::size_t privates = 0;
    for (const auto &thread : perThread) {
        for (const auto &e : thread) {
            switch (e.kind) {
              case TraceEvent::Kind::Read:
                ++reads;
                if (e.isPrivate)
                    ++privates;
                break;
              case TraceEvent::Kind::Write:
                ++writes;
                if (e.isPrivate)
                    ++privates;
                break;
              case TraceEvent::Kind::Compute:
                computeUnits += e.addr;
                break;
              default:
                ++sync;
                break;
            }
        }
    }
    std::ostringstream os;
    os << "threads=" << perThread.size() << " reads=" << reads
       << " writes=" << writes << " private=" << privates
       << " sync=" << sync << " objects=" << objects.size()
       << " compute=" << computeUnits;
    return os.str();
}

namespace
{

constexpr std::uint64_t kTraceMagic = 0x31454341525443ULL; // "CTRACE1"

struct FileCloser
{
    void operator()(std::FILE *f) const { std::fclose(f); }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool
writeU64(std::FILE *f, std::uint64_t v)
{
    return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool
readU64(std::FILE *f, std::uint64_t &v)
{
    return std::fread(&v, sizeof(v), 1, f) == 1;
}

// One event serializes as two fixed 64-bit words:
//   word0 = addr
//   word1 = object | seq<<32 | kind<<62? (kind needs 3 bits) — use:
//     bits  0..31 object, 32..55 seq-low24? seq can exceed 24 bits on
//     long traces, so use three words instead: simple and safe.
bool
writeEvent(std::FILE *f, const TraceEvent &e)
{
    const std::uint64_t meta =
        static_cast<std::uint64_t>(e.object) |
        (static_cast<std::uint64_t>(e.seq) << 32);
    const std::uint64_t tail =
        static_cast<std::uint64_t>(static_cast<std::uint8_t>(e.kind)) |
        (static_cast<std::uint64_t>(e.size) << 8) |
        (static_cast<std::uint64_t>(e.isPrivate ? 1 : 0) << 16);
    return writeU64(f, e.addr) && writeU64(f, meta) && writeU64(f, tail);
}

bool
readEvent(std::FILE *f, TraceEvent &e)
{
    std::uint64_t addr, meta, tail;
    if (!readU64(f, addr) || !readU64(f, meta) || !readU64(f, tail))
        return false;
    e.addr = addr;
    e.object = static_cast<std::uint32_t>(meta);
    e.seq = static_cast<std::uint32_t>(meta >> 32);
    e.kind = static_cast<TraceEvent::Kind>(tail & 0xff);
    e.size = static_cast<std::uint8_t>(tail >> 8);
    e.isPrivate = ((tail >> 16) & 1) != 0;
    return true;
}

} // namespace

bool
saveTrace(const Trace &trace, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;
    if (!writeU64(f.get(), kTraceMagic) ||
        !writeU64(f.get(), trace.perThread.size()) ||
        !writeU64(f.get(), trace.objects.size()) ||
        !writeU64(f.get(), trace.minAddr) ||
        !writeU64(f.get(), trace.maxAddr)) {
        return false;
    }
    for (const auto &obj : trace.objects) {
        const std::uint64_t packed =
            static_cast<std::uint64_t>(
                static_cast<std::uint8_t>(obj.kind)) |
            (static_cast<std::uint64_t>(obj.parties) << 8);
        if (!writeU64(f.get(), packed) ||
            !writeU64(f.get(), obj.eventCount)) {
            return false;
        }
    }
    for (const auto &thread : trace.perThread) {
        if (!writeU64(f.get(), thread.size()))
            return false;
        for (const auto &e : thread) {
            if (!writeEvent(f.get(), e))
                return false;
        }
    }
    return true;
}

bool
loadTrace(const std::string &path, Trace &out)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return false;
    std::uint64_t magic, threads, objects, minAddr, maxAddr;
    if (!readU64(f.get(), magic) || magic != kTraceMagic ||
        !readU64(f.get(), threads) || !readU64(f.get(), objects) ||
        !readU64(f.get(), minAddr) || !readU64(f.get(), maxAddr)) {
        return false;
    }
    Trace trace;
    trace.minAddr = minAddr;
    trace.maxAddr = maxAddr;
    trace.objects.reserve(objects);
    for (std::uint64_t i = 0; i < objects; ++i) {
        std::uint64_t packed, eventCount;
        if (!readU64(f.get(), packed) || !readU64(f.get(), eventCount))
            return false;
        TraceSyncObject obj;
        obj.kind = static_cast<TraceSyncObject::Kind>(packed & 0xff);
        obj.parties = static_cast<std::uint32_t>(packed >> 8);
        obj.eventCount = static_cast<std::uint32_t>(eventCount);
        trace.objects.push_back(obj);
    }
    trace.perThread.resize(threads);
    for (std::uint64_t t = 0; t < threads; ++t) {
        std::uint64_t count;
        if (!readU64(f.get(), count))
            return false;
        trace.perThread[t].resize(count);
        for (std::uint64_t i = 0; i < count; ++i) {
            if (!readEvent(f.get(), trace.perThread[t][i]))
                return false;
        }
    }
    out = std::move(trace);
    return true;
}

} // namespace clean::wl
