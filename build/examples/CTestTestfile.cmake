# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_debugging_races "/root/repo/build/examples/debugging_races")
set_tests_properties(example_debugging_races PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_deterministic_replay "/root/repo/build/examples/deterministic_replay")
set_tests_properties(example_deterministic_replay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hardware_sim "/root/repo/build/examples/hardware_sim" "--workload=fft" "--threads=4")
set_tests_properties(example_hardware_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rollover_demo "/root/repo/build/examples/rollover_demo")
set_tests_properties(example_rollover_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
