/**
 * @file
 * Figure 6 — software-only CLEAN performance.
 *
 * For every benchmark (race-free variants, as the paper measures), this
 * harness reports execution time normalized to the uninstrumented
 * nondeterministic run, for:
 *
 *   det-sync      deterministic synchronization only  (paper: small,
 *                 sometimes a speedup, a few outliers)
 *   detect        WAW/RAW race detection only         (paper avg 5.8x)
 *   detect-nb     detection with batched SFR-boundary read checking
 *                 disabled (--no-batch internally) — the inline
 *                 ablation this PR's batching is measured against
 *   clean         both mechanisms                     (paper avg 7.8x)
 *
 * Expect the *shape* to match, not the constants: this host's core
 * count, the shim-call (vs compiled-in) instrumentation, and Kendo's
 * yield-based waiting shift absolute numbers.
 */

#include "bench/common.h"

using namespace clean;
using namespace clean::bench;
using namespace clean::wl;

int
main(int argc, char **argv)
{
    const BenchConfig config = parseBench(argc, argv, "small");

    std::printf("=== Figure 6: software-only CLEAN slowdown "
                "(threads=%u, scale=%s, repeats=%u, fast-path=%s) "
                "===\n\n",
                config.threads,
                config.options.getString("scale", "small").c_str(),
                config.repeats,
                config.options.getBool("no-fast-path", false) ? "off"
                                                              : "on");
    // Thread count as a per-row column: the scale-out work (DESIGN.md
    // §16) sweeps this harness at 1..64 threads, and concatenated
    // sweep outputs are unreadable without the thread count on the
    // row itself.
    std::printf("%-14s %4s %10s %10s %10s %10s %10s\n", "benchmark",
                "thr", "native[s]", "det-sync", "detect", "detect-nb",
                "clean");

    std::vector<double> kendoX, detectX, detectNbX, cleanX;
    for (const auto &name : config.workloads) {
        const double native = timedSeconds(
            baseSpec(config, name, BackendKind::Native), config.repeats);
        const double kendo = timedSeconds(
            baseSpec(config, name, BackendKind::KendoOnly),
            config.repeats);
        const double detect = timedSeconds(
            baseSpec(config, name, BackendKind::DetectOnly),
            config.repeats);
        wl::RunSpec nbSpec =
            baseSpec(config, name, BackendKind::DetectOnly);
        nbSpec.runtime.batch = false;
        const double detectNb = timedSeconds(nbSpec, config.repeats);
        const double clean = timedSeconds(
            baseSpec(config, name, BackendKind::Clean), config.repeats);
        if (native <= 0 || kendo < 0 || detect < 0 || detectNb < 0 ||
            clean < 0) {
            std::printf("%-14s %4u %10s\n", name.c_str(),
                        config.threads, "FAILED");
            continue;
        }
        kendoX.push_back(kendo / native);
        detectX.push_back(detect / native);
        detectNbX.push_back(detectNb / native);
        cleanX.push_back(clean / native);
        std::printf("%-14s %4u %10.4f %9.2fx %9.2fx %9.2fx %9.2fx\n",
                    name.c_str(), config.threads, native,
                    kendo / native, detect / native, detectNb / native,
                    clean / native);
    }

    std::printf("\n%-14s %4s %10s %9.2fx %9.2fx %9.2fx %9.2fx   "
                "(geomean)\n",
                "all", "", "", geomean(kendoX), geomean(detectX),
                geomean(detectNbX), geomean(cleanX));
    std::printf("%-14s %4s %10s %9.2fx %9.2fx %9.2fx %9.2fx   (mean)\n",
                "", "", "", mean(kendoX), mean(detectX),
                mean(detectNbX), mean(cleanX));
    std::printf("\npaper (16-core Xeon, compiled instrumentation): "
                "detect avg 5.8x, clean avg 7.8x;\n"
                "det-sync small with fmm/radiosity/fluidanimate/dedup/"
                "ferret/vips outliers and a\nstreamcluster speedup.\n");
    return 0;
}
