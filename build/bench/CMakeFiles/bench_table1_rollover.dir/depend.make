# Empty dependencies file for bench_table1_rollover.
# This may be replaced when dependencies are built.
