/**
 * @file
 * Fault-injection tests: decision purity and reproducibility of the
 * InjectionPlan, byte-identical failure-report replay of an injected
 * campaign, and the killed-thread regression — a thread that vanishes
 * mid-SFR must surface as a structured DeadlockError naming the stuck
 * slot, never as a livelock.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "inject/injection.h"
#include "workloads/runner.h"

namespace clean
{
namespace
{

using inject::FaultKind;
using inject::InjectionConfig;
using inject::InjectionPlan;

InjectionConfig
allKinds(std::uint64_t seed, double rate)
{
    InjectionConfig config;
    config.enabled = true;
    config.seed = seed;
    config.skipCheckRate = rate;
    config.skipAcquireRate = rate;
    config.delayRate = rate;
    config.rolloverRate = rate;
    config.killRate = rate;
    return config;
}

TEST(InjectionPlan, DecisionsArePureFunctionsOfSeedAndCoordinate)
{
    InjectionPlan a(allKinds(42, 0.25));
    InjectionPlan b(allKinds(42, 0.25));
    for (unsigned kind = 0; kind < 5; ++kind) {
        for (ThreadId tid = 0; tid < 4; ++tid) {
            for (std::uint64_t coord = 0; coord < 256; ++coord) {
                const auto k = static_cast<FaultKind>(kind);
                EXPECT_EQ(a.wouldFire(k, tid, coord),
                          b.wouldFire(k, tid, coord));
            }
        }
    }
}

TEST(InjectionPlan, DifferentSeedsDiverge)
{
    InjectionPlan a(allKinds(1, 0.25));
    InjectionPlan b(allKinds(2, 0.25));
    unsigned differing = 0;
    for (std::uint64_t coord = 0; coord < 512; ++coord) {
        differing += a.wouldFire(FaultKind::SkipCheck, 1, coord) !=
                     b.wouldFire(FaultKind::SkipCheck, 1, coord);
    }
    EXPECT_GT(differing, 0u);
}

TEST(InjectionPlan, RateZeroNeverFiresRateOneAlwaysFires)
{
    InjectionPlan never(allKinds(7, 0.0));
    InjectionPlan always(allKinds(7, 1.0));
    for (std::uint64_t coord = 0; coord < 256; ++coord) {
        EXPECT_FALSE(never.wouldFire(FaultKind::SkipCheck, 1, coord));
        EXPECT_TRUE(always.wouldFire(FaultKind::SkipCheck, 1, coord));
    }
    // A fired rate ~0.25 lands in a plausible band over 4096 trials.
    InjectionPlan quarter(allKinds(7, 0.25));
    unsigned fired = 0;
    for (std::uint64_t coord = 0; coord < 4096; ++coord)
        fired += quarter.wouldFire(FaultKind::Delay, 2, coord);
    EXPECT_GT(fired, 4096u / 8);
    EXPECT_LT(fired, 4096u / 2);
}

TEST(InjectionPlan, KillNeverFiresForTheMainThread)
{
    InjectionPlan plan(allKinds(9, 1.0));
    for (std::uint64_t coord = 0; coord < 256; ++coord)
        EXPECT_FALSE(plan.wouldFire(FaultKind::KillThread, 0, coord));
    EXPECT_TRUE(plan.wouldFire(FaultKind::KillThread, 1, 0));
}

TEST(InjectionPlan, FiredFaultsAreCounted)
{
    InjectionPlan plan(allKinds(11, 1.0));
    EXPECT_TRUE(plan.skipCheck(1, 0));
    EXPECT_TRUE(plan.skipAcquire(1, 1));
    EXPECT_GT(plan.delayMicros(1, 2), 0u);
    EXPECT_TRUE(plan.forceRollover(1, 3));
    EXPECT_FALSE(plan.killThread(0, 4)); // main-thread exemption
    const auto stats = plan.stats();
    EXPECT_EQ(stats.skippedChecks, 1u);
    EXPECT_EQ(stats.skippedAcquires, 1u);
    EXPECT_EQ(stats.delays, 1u);
    EXPECT_EQ(stats.rollovers, 1u);
    EXPECT_EQ(stats.kills, 0u);
    EXPECT_EQ(stats.total(), 4u);
}

wl::RunSpec
injectedSpec(const std::string &workload)
{
    wl::RunSpec spec;
    spec.workload = workload;
    spec.backend = wl::BackendKind::Clean;
    spec.params.threads = 4;
    spec.params.scale = wl::Scale::Test;
    spec.runtime.maxThreads = 32;
    spec.runtime.heap.sharedBytes = std::size_t{256} << 20;
    spec.runtime.heap.privateBytes = std::size_t{64} << 20;
    spec.runtime.inject.enabled = true;
    return spec;
}

TEST(InjectionReplay, SameSeedYieldsByteIdenticalFailureReports)
{
    // SkipAcquire on a race-free lock-based workload: the dropped
    // happens-before edge surfaces as a race at a Kendo-determined
    // program point, and under the Report policy the run completes, so
    // the entire failure report (race list, det counts, checker stats,
    // injection telemetry) must replay byte-for-byte.
    auto spec = injectedSpec("streamcluster");
    spec.runtime.onRace = OnRacePolicy::Report;
    spec.runtime.inject.seed = 2;
    spec.runtime.inject.skipAcquireRate = 0.05;

    std::vector<std::string> reports;
    std::uint64_t races = 0;
    for (int run = 0; run < 5; ++run) {
        const auto result = runWorkload(spec);
        EXPECT_FALSE(result.raceException); // degraded mode continues
        EXPECT_FALSE(result.deadlock);
        EXPECT_GT(result.raceCount, 0u);
        races = result.raceCount;
        reports.push_back(result.failureReport);
    }
    for (int run = 1; run < 5; ++run)
        EXPECT_EQ(reports[0], reports[run]) << "run " << run << " diverged";
    EXPECT_NE(reports[0].find("\"policy\":\"report\""), std::string::npos);
    EXPECT_NE(reports[0].find("\"skippedAcquires\":"), std::string::npos);
    EXPECT_GT(races, 0u);
}

TEST(InjectionReplay, CountPolicyRecordsWithoutReportLines)
{
    auto spec = injectedSpec("streamcluster");
    spec.runtime.onRace = OnRacePolicy::Count;
    spec.runtime.inject.seed = 2;
    spec.runtime.inject.skipAcquireRate = 0.05;
    const auto result = runWorkload(spec);
    EXPECT_FALSE(result.raceException);
    EXPECT_GT(result.raceCount, 0u);
    EXPECT_NE(result.failureReport.find("\"policy\":\"count\""),
              std::string::npos);
}

TEST(InjectionKill, KilledThreadSurfacesAsDeadlockNamingTheStuckSlot)
{
    // A thread killed mid-SFR leaves its Kendo slot frozen; without the
    // watchdog its siblings would spin forever on the vanished thread.
    // The regression: the run must end in a structured DeadlockError
    // that names the suspected stuck slot — and the same seed must
    // classify identically on a re-run.
    auto spec = injectedSpec("fft");
    spec.runtime.watchdogMs = 500;
    spec.runtime.inject.seed = 1;
    spec.runtime.inject.killRate = 0.0005;

    const auto first = runWorkload(spec);
    ASSERT_TRUE(first.deadlock) << first.raceMessage;
    EXPECT_FALSE(first.raceException);
    EXPECT_NE(first.deadlockMessage.find("suspected stuck slot"),
              std::string::npos);
    EXPECT_NE(first.failureReport.find("\"outcome\":\"deadlock\""),
              std::string::npos);
    EXPECT_NE(first.failureReport.find("\"kills\":1"), std::string::npos);

    const auto replay = runWorkload(spec);
    EXPECT_TRUE(replay.deadlock);
    EXPECT_FALSE(replay.raceException);
}

TEST(InjectionDelay, DelaysNeverChangeTheDeterministicOutcome)
{
    // Schedule perturbation at sync points must be invisible to the
    // Kendo-ordered execution: same output hash and det counts as an
    // uninjected run.
    auto base = injectedSpec("fft");
    base.runtime.inject.enabled = false;
    const auto clean = runWorkload(base);

    auto delayed = injectedSpec("fft");
    delayed.runtime.inject.seed = 3;
    delayed.runtime.inject.delayRate = 0.001;
    delayed.runtime.inject.delayMicros = 200;
    const auto perturbed = runWorkload(delayed);

    EXPECT_FALSE(perturbed.raceException);
    EXPECT_FALSE(perturbed.deadlock);
    EXPECT_TRUE(clean.fingerprint() == perturbed.fingerprint());
}

} // namespace
} // namespace clean
