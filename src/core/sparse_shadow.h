/**
 * @file
 * Portable chunked epoch store (ablation backend).
 *
 * Maps arbitrary 64-bit data addresses to epoch slots through a hash map
 * of fixed-size chunks (64 KiB of data per chunk). Slots for adjacent
 * bytes are contiguous within a chunk, so the vectorized multi-byte check
 * still applies to accesses that do not straddle a chunk boundary.
 *
 * This backend exists (a) to support checking data outside the
 * SharedHeap and (b) as the comparison point for the
 * bench_ablation_shadow experiment: the paper's fixed-arithmetic layout
 * (LinearShadow) wins precisely because it avoids this lookup.
 */

#ifndef CLEAN_CORE_SPARSE_SHADOW_H
#define CLEAN_CORE_SPARSE_SHADOW_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "support/common.h"

namespace clean
{

/** Hash-of-chunks epoch store for arbitrary addresses. */
class SparseShadow
{
  public:
    /** Data bytes covered by one chunk (must be a power of two). */
    static constexpr std::size_t kChunkBytes = std::size_t{1} << 16;

    SparseShadow() : generation_(nextGeneration_.fetch_add(1)) {}

    SparseShadow(const SparseShadow &) = delete;
    SparseShadow &operator=(const SparseShadow &) = delete;

    /** Epoch slot of the data byte at @p addr; creates the chunk lazily. */
    CLEAN_ALWAYS_INLINE EpochValue *
    slots(Addr addr)
    {
        const Addr key = addr >> kChunkShift;
        if (CLEAN_LIKELY(key == cachedKey_ && cachedGen_ == generation_))
            return cachedChunk_ + (addr & kChunkMask);
        return slotsSlow(addr, key);
    }

    /** Contiguity holds to the end of the 64 KiB chunk. */
    CLEAN_ALWAYS_INLINE std::size_t
    contiguousSlots(Addr addr) const
    {
        return kChunkBytes - static_cast<std::size_t>(addr & kChunkMask);
    }

    /** Zeroes every allocated chunk (rollover reset; O(allocated)). */
    void reset();

    /** Number of chunks materialized so far. */
    std::size_t chunkCount() const;

  private:
    static constexpr unsigned kChunkShift = 16;
    static constexpr Addr kChunkMask = kChunkBytes - 1;

    EpochValue *slotsSlow(Addr addr, Addr key);

    mutable std::mutex mutex_;
    std::unordered_map<Addr, std::unique_ptr<EpochValue[]>> chunks_;

    // Per-thread single-entry chunk cache keyed by (instance generation,
    // chunk index). Chunks are immortal while their SparseShadow lives,
    // so a hit can never yield a stale pointer. The key must be a
    // generation id, not the instance address: a new instance allocated
    // where a destroyed one lived would otherwise satisfy an
    // `owner == this` check and hand out a freed chunk (use-after-free).
    // Generations start at 1 so the empty cache (gen 0) never hits.
    std::uint64_t generation_;
    static std::atomic<std::uint64_t> nextGeneration_;
    static thread_local std::uint64_t cachedGen_;
    static thread_local Addr cachedKey_;
    static thread_local EpochValue *cachedChunk_;
};

} // namespace clean

#endif // CLEAN_CORE_SPARSE_SHADOW_H
