# Empty dependencies file for bench_detection_determinism.
# This may be replaced when dependencies are built.
