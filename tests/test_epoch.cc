/**
 * @file
 * Epoch packing/unpacking tests (§4.5 layout).
 */

#include <gtest/gtest.h>

#include "core/epoch.h"
#include "core/sparse_shadow.h"

namespace clean
{
namespace
{

TEST(EpochConfig, DefaultLayoutIsValid)
{
    EXPECT_TRUE(kDefaultEpochConfig.valid());
    EXPECT_EQ(kDefaultEpochConfig.clockBits, 23u);
    EXPECT_EQ(kDefaultEpochConfig.tidBits, 8u);
}

TEST(EpochConfig, WideClockLayoutIsValid)
{
    EXPECT_TRUE(kWideClockEpochConfig.valid());
    EXPECT_EQ(kWideClockEpochConfig.clockBits, 28u);
}

TEST(EpochConfig, RejectsOversizedLayouts)
{
    EXPECT_FALSE((EpochConfig{30, 8}.valid())); // needs bit 31 free
    EXPECT_FALSE((EpochConfig{2, 8}.valid()));
    EXPECT_FALSE((EpochConfig{23, 0}.valid()));
}

TEST(EpochConfig, WideClockBoundaryLeavesEightThreads)
{
    // The 28-bit rollover-free clock of Table 1 fits only with
    // tidBits <= 3: 8 live threads (workers + main), and tids above
    // the width must not silently mispack.
    EXPECT_TRUE((EpochConfig{28, 3}.valid()));
    EXPECT_EQ((EpochConfig{28, 3}.maxThreads()), 8u);
    EXPECT_FALSE((EpochConfig{28, 4}.valid())); // 32 bits: bit 31 taken
    const EpochConfig cfg{28, 3};
    const EpochValue e = cfg.pack(7, (1u << 28) - 1);
    EXPECT_EQ(cfg.tidOf(e), 7u);
    EXPECT_EQ(cfg.clockOf(e), (1u << 28) - 1);
}

TEST(EpochConfig, PackUnpackRoundTrip)
{
    const EpochConfig cfg = kDefaultEpochConfig;
    const EpochValue e = cfg.pack(17, 12345);
    EXPECT_EQ(cfg.tidOf(e), 17u);
    EXPECT_EQ(cfg.clockOf(e), 12345u);
}

TEST(EpochConfig, MaxValuesRoundTrip)
{
    const EpochConfig cfg = kDefaultEpochConfig;
    const EpochValue e = cfg.pack(cfg.tidMask(), cfg.maxClock());
    EXPECT_EQ(cfg.tidOf(e), cfg.tidMask());
    EXPECT_EQ(cfg.clockOf(e), cfg.maxClock());
}

TEST(EpochConfig, ZeroEpochMeansThreadZeroClockZero)
{
    const EpochConfig cfg = kDefaultEpochConfig;
    EXPECT_EQ(cfg.tidOf(0), 0u);
    EXPECT_EQ(cfg.clockOf(0), 0u);
}

TEST(EpochConfig, ExpandedBitIsBit31)
{
    EXPECT_EQ(EpochConfig::expandedBit(), 0x80000000u);
    // No packed epoch ever sets it.
    const EpochConfig cfg = kDefaultEpochConfig;
    EXPECT_EQ(cfg.pack(cfg.tidMask(), cfg.maxClock()) &
                  EpochConfig::expandedBit(),
              0u);
}

TEST(EpochConfig, DefaultSupports256Threads)
{
    EXPECT_EQ(kDefaultEpochConfig.maxThreads(), 256u);
}

TEST(EpochConfig, ClockOverflowWrapsIntoMask)
{
    const EpochConfig cfg = kDefaultEpochConfig;
    // pack() masks; a clock above maxClock would alias — which is why
    // the runtime must reset before reaching maxClock.
    EXPECT_EQ(cfg.clockOf(cfg.pack(0, cfg.maxClock() + 1)), 0u);
}

// Rollover contract (§4.5): after a shadow reset every slot must read
// the zero epoch — thread 0 at clock 0, which every post-reset vector
// clock dominates, so stale pre-reset history can never fire a race.
// The sparse backend implements the reset by *dropping* chunk tables
// (the O(1)-drop analogue of LinearShadow's madvise) rather than
// zeroing in place, so the invariant is two-fold: the tables are gone,
// and lazily rematerialized chunks come back zeroed.
TEST(EpochConfig, ShadowResetRestoresZeroEpochEverywhere)
{
    const EpochConfig cfg = kDefaultEpochConfig;
    SparseShadow shadow;
    const Addr addrs[] = {0x1000, 0x1234567, 0xdeadbeef000,
                          0x1000 + SparseShadow::kChunkBytes};
    for (Addr a : addrs)
        *shadow.slots(a) = cfg.pack(3, 41);
    ASSERT_GT(shadow.chunkCount(), 0u);

    shadow.reset();
    // Drop-based reset: no chunk survives (O(chunks) frees, not
    // O(shadow bytes) of memset while the world is stopped).
    EXPECT_EQ(shadow.chunkCount(), 0u);
    for (Addr a : addrs) {
        const EpochValue e = *shadow.slots(a);
        EXPECT_EQ(e, 0u);
        EXPECT_EQ(cfg.tidOf(e), 0u);
        EXPECT_EQ(cfg.clockOf(e), 0u);
        EXPECT_EQ(e & EpochConfig::expandedBit(), 0u);
    }
}

TEST(EpochConfig, SameTidRawComparisonOrdersClocks)
{
    const EpochConfig cfg = kDefaultEpochConfig;
    // The single-comparison trick (§4.1): same tid bits => raw integer
    // order equals clock order.
    EXPECT_LT(cfg.pack(5, 10), cfg.pack(5, 11));
    EXPECT_GT(cfg.pack(5, 12), cfg.pack(5, 11));
}

/** Sweep layouts: pack/unpack holds for every supported clock width. */
class EpochLayoutSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(EpochLayoutSweep, RoundTripAtBoundaries)
{
    const unsigned clockBits = GetParam();
    const EpochConfig cfg{clockBits, static_cast<unsigned>(31 - clockBits)};
    ASSERT_TRUE(cfg.valid());
    const ClockValue clocks[] = {0, 1, cfg.maxClock() / 2, cfg.maxClock()};
    const ThreadId tids[] = {0, 1, cfg.tidMask()};
    for (ClockValue c : clocks) {
        for (ThreadId t : tids) {
            const EpochValue e = cfg.pack(t, c);
            EXPECT_EQ(cfg.tidOf(e), t);
            EXPECT_EQ(cfg.clockOf(e), c);
            EXPECT_EQ(e & EpochConfig::expandedBit(), 0u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, EpochLayoutSweep,
                         ::testing::Values(4u, 8u, 16u, 23u, 27u));

} // namespace
} // namespace clean
