/**
 * @file
 * cleanrun — command-line driver for the CLEAN reproduction.
 *
 * Runs any suite workload under any backend and prints the full
 * measurement record; can also record traces to disk and replay them on
 * the hardware simulator.
 *
 *   cleanrun --list
 *   cleanrun --workload=raytrace --backend=clean --racy
 *   cleanrun --workload=fft --backend=fasttrack --threads=4
 *   cleanrun --workload=ocean_cp --backend=trace --trace-out=o.trc
 *   cleanrun --trace-in=o.trc --sim --epoch-mode=4B
 *   cleanrun --workload=radix --racy --on-race=report --report-json
 *   cleanrun --workload=fft --inject-seed=7 --inject-kill=0.0001
 *
 * Backends: native, clean, detect-only, kendo-only, fasttrack,
 * tsan-lite, trace. Scales: test, small, large.
 *
 * Robustness knobs (clean backends):
 *   --on-race=throw|report|count|recover   race response policy
 *   --max-recoveries=N             recover: episodes per site before
 *                                  the site is quarantined (default 8)
 *   --watchdog-ms=N                deadlock watchdog (0 = off)
 *   --report-json                  print the structured failure report
 *   --inject-seed=S                enable deterministic fault injection
 *   --inject-skip-check=R --inject-skip-acquire=R --inject-delay=R
 *   --inject-rollover=R --inject-kill=R      per-site fault rates
 *   --inject-delay-us=N            stall length of one Delay fault
 *
 * Observability (clean backends; see DESIGN.md §11):
 *   --obs                          enable the flight recorder
 *   --obs-ring=N --obs-tail=N      ring capacity / failure-report tail
 *   --trace-out=PATH               write the merged event stream as
 *                                  Chrome trace-event JSON (Perfetto);
 *                                  implies --obs. (For --backend=trace
 *                                  the flag keeps its original meaning:
 *                                  the simulator memory trace.)
 *   --metrics-json=PATH            write the metrics snapshot (counters
 *                                  + histograms); "-" = stdout; implies
 *                                  --obs. With --runs=N the file holds
 *                                  the last run.
 *
 * Always-on production mode (clean backend; see DESIGN.md §15):
 *   --overhead-budget=PCT          enforce a detection-overhead SLO:
 *                                  a deterministic sampling gate sheds
 *                                  read checks while a governor adapts
 *                                  the admission level to keep measured
 *                                  overhead near PCT% (1..100; 100
 *                                  admits everything = sampling off)
 *   --sample-force-level=N         pin the admission level (disables
 *                                  the governor and calibration; for
 *                                  tests and benchmarks)
 *   --sample-calib-log2=N          calibrate on every 2^N-th SFR
 *                                  (0 disables calibration; default 6)
 *
 * Record/replay (deterministic backends; see DESIGN.md §13):
 *   --record=PATH                  record this run's deterministic
 *                                  schedule + config to PATH
 *   --replay=PATH                  re-drive a recorded run; the spec is
 *                                  rebuilt from the trace header, and
 *                                  any explicitly passed flag that
 *                                  contradicts it is a config-mismatch
 *                                  trace fault (exit 6)
 *   --report-out=PATH              write the failure report JSON to a
 *                                  file (byte-comparable across a
 *                                  record/replay pair)
 *
 * Exit codes (see support/exit_codes.h): 0 ok / fully recovered,
 * 1 internal error, 2 option error, 3 race, 4 watchdog deadlock,
 * 5 recovery quarantine exhausted, 6 record/replay trace fault
 * (unreadable / truncated / mismatched / diverged trace). With
 * --runs=N the first non-zero code wins (trace fault > deadlock >
 * quarantine > race within one run).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "obs/trace_schema.h"
#include "sim/machine.h"
#include "support/exit_codes.h"
#include "support/logging.h"
#include "support/options.h"
#include "support/trace_error.h"
#include "workloads/registry.h"
#include "workloads/runner.h"

using namespace clean;
using namespace clean::wl;

namespace
{

BackendKind
parseBackend(const std::string &name)
{
    if (name == "native")
        return BackendKind::Native;
    if (name == "clean")
        return BackendKind::Clean;
    if (name == "detect-only")
        return BackendKind::DetectOnly;
    if (name == "kendo-only")
        return BackendKind::KendoOnly;
    if (name == "fasttrack")
        return BackendKind::FastTrack;
    if (name == "tsan-lite")
        return BackendKind::TsanLite;
    if (name == "trace")
        return BackendKind::Trace;
    fatal("unknown backend '%s'", name.c_str());
}

Scale
parseScale(const std::string &name)
{
    if (name == "test")
        return Scale::Test;
    if (name == "small")
        return Scale::Small;
    if (name == "large")
        return Scale::Large;
    fatal("unknown scale '%s'", name.c_str());
}

OnRacePolicy
parseOnRace(const std::string &name)
{
    if (name == "throw")
        return OnRacePolicy::Throw;
    if (name == "report")
        return OnRacePolicy::Report;
    if (name == "count")
        return OnRacePolicy::Count;
    if (name == "recover")
        return OnRacePolicy::Recover;
    fatal("unknown on-race policy '%s' (throw|report|count|recover)",
          name.c_str());
}

bool
writeTextFile(const std::string &path, const std::string &content)
{
    if (path == "-") {
        std::fwrite(content.data(), 1, content.size(), stdout);
        std::fputc('\n', stdout);
        return true;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
                    content.size();
    return std::fclose(f) == 0 && ok;
}

int
simulateFromFile(const Options &opts)
{
    Trace trace;
    const std::string path = opts.getString("trace-in");
    if (!loadTrace(path, trace))
        fatal("cannot load trace '%s'", path.c_str());
    std::printf("loaded %s: %s\n", path.c_str(),
                trace.summary().c_str());

    sim::MachineConfig config;
    config.raceDetection = !opts.getBool("no-detection", false);
    const std::string mode = opts.getString("epoch-mode", "clean");
    if (mode == "1B")
        config.epochMode = sim::EpochMode::Byte1;
    else if (mode == "4B")
        config.epochMode = sim::EpochMode::Byte4;

    const auto stats = sim::simulate(trace, config);
    std::printf("cycles: %llu  instructions: %llu  accesses: %llu  "
                "sync: %llu\n",
                static_cast<unsigned long long>(stats.totalCycles),
                static_cast<unsigned long long>(stats.instructions),
                static_cast<unsigned long long>(stats.memoryAccesses),
                static_cast<unsigned long long>(stats.syncOps));
    StatSet statSet;
    stats.exportTo(statSet, "sim");
    std::printf("%s", statSet.format().c_str());
    return 0;
}

int runMain(const Options &opts);
int runLoop(const Options &opts, RunSpec &spec, bool replaying);

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runMain(Options::parse(argc, argv));
    } catch (const OptionError &e) {
        std::fprintf(stderr, "cleanrun: %s\n", e.what());
        return 2;
    } catch (const TraceError &e) {
        // Structured record/replay rejection: fault kind + message (and
        // step index for mid-replay divergence/truncation).
        std::fprintf(stderr, "cleanrun: %s\n", e.what());
        return static_cast<int>(ExitCode::TraceError);
    }
}

namespace
{

int
runMain(const Options &opts)
{

    if (opts.has("list")) {
        std::printf("%-14s %-8s %-6s %s\n", "workload", "suite", "racy",
                    "in-modified-suite");
        for (const auto &name : workloadNames()) {
            Workload &w = findWorkload(name);
            std::printf("%-14s %-8s %-6s %s\n", name.c_str(), w.suite(),
                        w.hasRacyVariant() ? "yes" : "no",
                        w.excludedFromModified() ? "no" : "yes");
        }
        return 0;
    }

    if (opts.has("trace-in") && opts.getBool("sim", true))
        return simulateFromFile(opts);

    const std::string recordPath = opts.getString("record", "");
    const std::string replayPath = opts.getString("replay", "");
    if (!recordPath.empty() && !replayPath.empty())
        throw OptionError("record", recordPath,
                          "--record and --replay are mutually exclusive");

    RunSpec spec;
    if (!replayPath.empty()) {
        // Replay: the trace header is the spec. Explicitly passed flags
        // still override — a contradiction then surfaces as a
        // ConfigMismatch trace fault (the directed way to probe a trace
        // against a different configuration).
        spec = specFromTraceMeta(obs::readTraceFile(replayPath).meta);
        spec.replayPath = replayPath;
        if (opts.has("workload"))
            spec.workload = opts.getString("workload");
        if (opts.has("backend"))
            spec.backend = parseBackend(opts.getString("backend"));
        if (opts.has("threads"))
            spec.params.threads =
                static_cast<unsigned>(opts.getInt("threads", 8));
        if (opts.has("scale"))
            spec.params.scale = parseScale(opts.getString("scale"));
        if (opts.has("racy"))
            spec.params.racy = opts.getBool("racy", false);
        if (opts.has("seed"))
            spec.params.seed =
                static_cast<std::uint64_t>(opts.getInt("seed", 0));
        if (opts.has("on-race"))
            spec.runtime.onRace =
                parseOnRace(opts.getString("on-race"));
        if (opts.has("watchdog-ms"))
            spec.runtime.watchdogMs = static_cast<std::uint64_t>(
                opts.getInt("watchdog-ms", 10000));
        if (opts.has("overhead-budget"))
            spec.runtime.overheadBudget = static_cast<std::uint32_t>(
                opts.getInt("overhead-budget", 0));
        // Not part of the trace header (drain placement does not shape
        // the deterministic execution), so a replay may freely flip it.
        if (opts.has("async-check"))
            spec.runtime.asyncCheck = opts.getBool("async-check", false);
    }
    spec.recordPath = recordPath;
    if (!replayPath.empty())
        return runLoop(opts, spec, /*replaying=*/true);

    spec.workload = opts.getString("workload", "fft");
    spec.backend = parseBackend(opts.getString("backend", "clean"));
    spec.params.threads =
        static_cast<unsigned>(opts.getInt("threads", 8));
    spec.params.scale = parseScale(opts.getString("scale", "test"));
    spec.params.racy = opts.getBool("racy", false);
    spec.params.seed =
        static_cast<std::uint64_t>(opts.getInt("seed", 0xc0ffee));
    spec.runtime.vectorized = !opts.getBool("no-vectorize", false);
    spec.runtime.fastPath = !opts.getBool("no-fast-path", false);
    spec.runtime.ownCache = !opts.getBool("no-own-cache", false);
    spec.runtime.batch = !opts.getBool("no-batch", false);
    spec.runtime.asyncCheck = opts.getBool("async-check", false);
    if (opts.has("batch-bytes")) {
        const std::int64_t bb = opts.getInt("batch-bytes", 65536);
        if (bb < 64 || bb > (std::int64_t{1} << 30))
            fatal("--batch-bytes=%lld out of range (64..2^30)",
                  static_cast<long long>(bb));
        spec.runtime.batchBytes = static_cast<std::size_t>(bb);
    }
    spec.runtime.granuleLog2 =
        static_cast<unsigned>(opts.getInt("granule-log2", 0));
    spec.runtime.detChunk =
        static_cast<std::uint32_t>(opts.getInt("det-chunk", 1));
    if (opts.getBool("locked-atomicity", false))
        spec.runtime.atomicity = AtomicityMode::Locked;
    if (opts.getString("shadow", "linear") == "sparse")
        spec.runtime.shadow = ShadowKind::Sparse;
    const unsigned clockBits =
        static_cast<unsigned>(opts.getInt("clock-bits", 23));
    if (clockBits < 4 || clockBits > 30)
        fatal("--clock-bits=%u out of range (4..30)", clockBits);
    const unsigned tidBits = std::min(8u, 31 - clockBits);
    spec.runtime.epoch = EpochConfig{clockBits, tidBits};
    // Every live thread (workers + the main thread) needs a distinct
    // tid in `tidBits` bits, or epochs would silently mispack.
    const unsigned live = spec.params.threads + 1;
    if (live > spec.runtime.epoch.maxThreads()) {
        fatal("--clock-bits=%u leaves %u tid bits (at most %u live "
              "threads including main) but --threads=%u needs %u; "
              "lower --threads or --clock-bits",
              clockBits, tidBits,
              static_cast<unsigned>(spec.runtime.epoch.maxThreads()),
              spec.params.threads, live);
    }
    if (spec.runtime.maxThreads > spec.runtime.epoch.maxThreads()) {
        // Loudly adapt the slot-table capacity to the narrower tid
        // space instead of tripping the runtime's assert.
        warn("--clock-bits=%u narrows the tid space: capping maxThreads "
             "%u -> %u",
             clockBits, static_cast<unsigned>(spec.runtime.maxThreads),
             static_cast<unsigned>(spec.runtime.epoch.maxThreads()));
        spec.runtime.maxThreads = spec.runtime.epoch.maxThreads();
    }
    spec.runtime.onRace = parseOnRace(opts.getString("on-race", "throw"));
    spec.runtime.maxRecoveries =
        static_cast<std::uint32_t>(opts.getInt("max-recoveries", 8));
    spec.runtime.watchdogMs = static_cast<std::uint64_t>(
        opts.getInt("watchdog-ms", 10000));
    if (opts.has("overhead-budget")) {
        const std::int64_t budget = opts.getInt("overhead-budget", 10);
        if (budget < 1 || budget > 100)
            fatal("--overhead-budget=%lld out of range (1..100)",
                  static_cast<long long>(budget));
        spec.runtime.overheadBudget = static_cast<std::uint32_t>(budget);
    }
    if (opts.has("sample-force-level")) {
        const std::int64_t level = opts.getInt("sample-force-level", 0);
        if (level < 0 || level > SampleGate::kMaxLevel)
            fatal("--sample-force-level=%lld out of range (0..%u)",
                  static_cast<long long>(level), SampleGate::kMaxLevel);
        spec.runtime.sampleForceLevel = static_cast<std::int32_t>(level);
    }
    if (opts.has("sample-calib-log2")) {
        const std::int64_t calib = opts.getInt("sample-calib-log2", 6);
        if (calib < 0 || calib > 20)
            fatal("--sample-calib-log2=%lld out of range (0..20)",
                  static_cast<long long>(calib));
        spec.runtime.sampleCalibLog2 = static_cast<unsigned>(calib);
    }
    if (opts.has("inject-seed")) {
        auto &inject = spec.runtime.inject;
        inject.enabled = true;
        inject.seed =
            static_cast<std::uint64_t>(opts.getInt("inject-seed", 1));
        inject.skipCheckRate = opts.getDouble("inject-skip-check", 0);
        inject.skipAcquireRate = opts.getDouble("inject-skip-acquire", 0);
        inject.delayRate = opts.getDouble("inject-delay", 0);
        inject.rolloverRate = opts.getDouble("inject-rollover", 0);
        inject.killRate = opts.getDouble("inject-kill", 0);
        inject.delayMicros = static_cast<std::uint32_t>(
            opts.getInt("inject-delay-us", 100));
    }

    return runLoop(opts, spec, /*replaying=*/false);
}

int
runLoop(const Options &opts, RunSpec &spec, bool replaying)
{
    // Observability: --trace-out keeps its historical meaning for the
    // trace backend (the simulator memory trace); for clean backends it
    // selects the flight-recorder event trace and implies --obs.
    const bool cleanBackend = spec.backend == BackendKind::Clean ||
                              spec.backend == BackendKind::DetectOnly ||
                              spec.backend == BackendKind::KendoOnly;
    const std::string obsTraceOut =
        cleanBackend ? opts.getString("trace-out", "") : std::string();
    const std::string metricsOut = opts.getString("metrics-json", "");
    if (!replaying && (opts.getBool("obs", false) || !obsTraceOut.empty() ||
                       !metricsOut.empty())) {
        spec.runtime.obs.enabled = true;
        spec.runtime.obs.ringEvents =
            static_cast<std::size_t>(opts.getInt("obs-ring", 4096));
        spec.runtime.obs.failureTail =
            static_cast<std::size_t>(opts.getInt("obs-tail", 32));
    }
    if (replaying) {
        // Replay keeps the ring geometry from the trace header (the
        // runtime forces the recorder on); explicit overrides are still
        // honored and rejected as ConfigMismatch by the runner.
        if (opts.has("obs-ring"))
            spec.runtime.obs.ringEvents =
                static_cast<std::size_t>(opts.getInt("obs-ring", 4096));
        if (opts.has("obs-tail"))
            spec.runtime.obs.failureTail =
                static_cast<std::size_t>(opts.getInt("obs-tail", 32));
    }
    if ((spec.runtime.obs.enabled || replaying ||
         !spec.recordPath.empty()) &&
        !obs::kCompiledIn)
        warn("observability requested but compiled out "
             "(CLEAN_OBS=OFF): no events will be recorded");

    const unsigned runs =
        static_cast<unsigned>(opts.getInt("runs", 1));
    int exitCode = 0;
    for (unsigned r = 0; r < runs; ++r) {
        const auto result = runWorkload(spec);
        const char *verdict = result.traceFault      ? "TRACE-FAULT"
                              : result.deadlock      ? "DEADLOCK"
                              : result.raceException ? "RACE-EXCEPTION"
                                                     : "ok";
        std::printf("run %u: %s %s (%s)\n", r, spec.workload.c_str(),
                    verdict, backendKindName(spec.backend));
        if (result.traceFault) {
            if (result.traceFaultStep != TraceError::kNoStep)
                std::printf("  replay fault %s at step %llu: %s\n",
                            result.traceFaultKind.c_str(),
                            static_cast<unsigned long long>(
                                result.traceFaultStep),
                            result.traceFaultMessage.c_str());
            else
                std::printf("  replay fault %s: %s\n",
                            result.traceFaultKind.c_str(),
                            result.traceFaultMessage.c_str());
        }
        if (result.raceException)
            std::printf("  %s\n", result.raceMessage.c_str());
        if (result.deadlock)
            std::printf("  %s\n", result.deadlockMessage.c_str());
        if (result.raceCount > 0 && !result.raceException &&
            spec.runtime.onRace != OnRacePolicy::Recover) {
            std::printf("  races recorded (degraded mode): %llu\n",
                        static_cast<unsigned long long>(
                            result.raceCount));
        }
        if (result.recoveryAttempts > 0 || result.quarantinedSites > 0) {
            std::printf("  recovery: %llu recovered (%llu attempts, "
                        "%llu forced, %llu kills) quarantined sites "
                        "%llu\n",
                        static_cast<unsigned long long>(
                            result.recoveredRaces),
                        static_cast<unsigned long long>(
                            result.recoveryAttempts),
                        static_cast<unsigned long long>(
                            result.forcedReplays),
                        static_cast<unsigned long long>(
                            result.recoveredKills),
                        static_cast<unsigned long long>(
                            result.quarantinedSites));
        }
        if (result.samplingOn) {
            // Measured overhead is physical and deliberately lives only
            // here, never in the JSON artifacts (those must round-trip
            // byte-identically under --record/--replay).
            std::printf("  sampling: budget %u%%  shed %llu/%llu reads  "
                        "level %u  quarantined %llu",
                        spec.runtime.overheadBudget,
                        static_cast<unsigned long long>(
                            result.checker.shedReads),
                        static_cast<unsigned long long>(
                            result.checker.sharedReads),
                        result.sampleLevel,
                        static_cast<unsigned long long>(
                            result.sampleTelemetry.quarantines));
            if (result.sampleOverheadPermille >= 0)
                std::printf("  measured overhead %.1f%%",
                            static_cast<double>(
                                result.sampleOverheadPermille) /
                                10.0);
            std::printf("\n");
        }
        // Under Recover, counted races were rolled back and replayed;
        // they only fail the run when a site exhausted its budget.
        const bool raceFailed =
            result.raceException ||
            (result.raceCount > 0 &&
             spec.runtime.onRace != OnRacePolicy::Recover);
        const int code = exitCodeForRun(result.deadlock,
                                        result.quarantinedSites > 0,
                                        raceFailed, result.traceFault);
        if (exitCode == 0)
            exitCode = code;
        std::printf("  time %.4fs  reads %llu  writes %llu  "
                    "output %016llx  rollovers %llu\n",
                    result.seconds,
                    static_cast<unsigned long long>(result.reads),
                    static_cast<unsigned long long>(result.writes),
                    static_cast<unsigned long long>(result.outputHash),
                    static_cast<unsigned long long>(result.rollovers));
        if (result.detectorReports > 0) {
            std::printf("  detector reports %zu (WAW %zu, RAW %zu, "
                        "WAR %zu)\n",
                        result.detectorReports, result.detectorWaw,
                        result.detectorRaw, result.detectorWar);
        }
        if (opts.getBool("report-json", false) &&
            !result.failureReport.empty()) {
            std::printf("%s\n", result.failureReport.c_str());
        }
        const std::string reportOut = opts.getString("report-out", "");
        if (!reportOut.empty() &&
            !writeTextFile(reportOut, result.failureReport))
            warn("failed to write failure report to %s",
                 reportOut.c_str());
        if (spec.backend == BackendKind::Trace) {
            std::printf("  trace: %s\n", result.trace.summary().c_str());
            const std::string out = opts.getString("trace-out", "");
            if (!out.empty()) {
                if (saveTrace(result.trace, out))
                    std::printf("  trace written to %s\n", out.c_str());
                else
                    warn("failed to write trace to %s", out.c_str());
            }
        }
        if (!obsTraceOut.empty() && !result.obsTraceJson.empty()) {
            if (writeTextFile(obsTraceOut, result.obsTraceJson))
                std::printf("  obs trace written to %s\n",
                            obsTraceOut.c_str());
            else
                warn("failed to write obs trace to %s",
                     obsTraceOut.c_str());
        }
        if (!metricsOut.empty() && !result.metricsJson.empty()) {
            if (!writeTextFile(metricsOut, result.metricsJson))
                warn("failed to write metrics to %s", metricsOut.c_str());
        }
    }
    return exitCode;
}

} // namespace
