/**
 * @file
 * Set-associative cache model with LRU replacement (§6.3.1).
 *
 * Tag-only (no data): the simulator is trace-driven and needs hit/miss
 * decisions and evictions, not contents. Lines are identified by line
 * address (byte address >> 6 for the paper's 64-byte lines).
 */

#ifndef CLEAN_SIM_CACHE_H
#define CLEAN_SIM_CACHE_H

#include <cstdint>
#include <vector>

#include "support/common.h"

namespace clean::sim
{

/** One tag-only set-associative cache. */
class Cache
{
  public:
    /** @param capacityBytes total size; @param assoc ways per set. */
    Cache(std::size_t capacityBytes, unsigned assoc,
          std::size_t lineBytes = kCacheLineBytes);

    /** Outcome of an allocating access. */
    struct AccessResult
    {
        bool hit = false;
        bool evicted = false;
        Addr evictedLine = 0;
    };

    /** Touches @p line; allocates on miss (LRU victim reported). */
    AccessResult access(Addr line);

    /** True iff @p line is present (no LRU update). */
    bool contains(Addr line) const;

    /** Drops @p line if present (coherence invalidation). */
    void invalidate(Addr line);

    /** Drops every line (used between simulator runs). */
    void reset();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Way
    {
        Addr line = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::size_t sets_;
    unsigned assoc_;
    std::vector<Way> ways_; // sets_ x assoc_
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;

    std::size_t setOf(Addr line) const { return line % sets_; }
};

} // namespace clean::sim

#endif // CLEAN_SIM_CACHE_H
