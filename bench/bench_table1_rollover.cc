/**
 * @file
 * Table 1 — the impact of clock rollover (§4.5).
 *
 * The paper's 23-bit clocks roll over a handful of times per second in
 * its five most synchronization-intensive benchmarks, with <= 2.4%
 * execution-time cost relative to a 28-bit configuration that never
 * rolls over.
 *
 * Bench-scale runs are orders of magnitude shorter than the paper's
 * native inputs, so a proportionally narrower clock (default 12 bits,
 * --clock-bits to change) stands in for the 23-bit production width,
 * keeping the ratio of synchronization volume to clock capacity in the
 * regime the paper evaluates; the full-width (23-bit) run is the
 * rollover-free reference.
 */

#include <algorithm>

#include "bench/common.h"
#include "support/logging.h"

using namespace clean;
using namespace clean::bench;
using namespace clean::wl;

int
main(int argc, char **argv)
{
    const BenchConfig config = parseBench(argc, argv, "small");
    const unsigned clockBits =
        static_cast<unsigned>(config.options.getInt("clock-bits", 12));
    if (clockBits < 4 || clockBits > 30)
        fatal("--clock-bits=%u out of range (4..30)", clockBits);
    // Narrow clocks shrink the tid space: with clockBits=28 only 3 tid
    // bits remain (8 live threads incl. main). Reject combinations that
    // would silently mispack tids instead of letting the runtime assert.
    const EpochConfig narrowEpoch{clockBits,
                                  static_cast<unsigned>(31 - clockBits)};
    if (config.threads + 1 > narrowEpoch.maxThreads()) {
        fatal("--clock-bits=%u leaves %u tid bits (at most %u live "
              "threads including main) but --threads=%u needs %u; "
              "lower --threads or --clock-bits",
              clockBits, 31 - clockBits,
              static_cast<unsigned>(narrowEpoch.maxThreads()),
              config.threads, config.threads + 1);
    }

    std::printf("=== Table 1: clock rollover impact "
                "(threads=%u, scale=%s, narrow=%u bits) ===\n\n",
                config.threads,
                config.options.getString("scale", "small").c_str(),
                clockBits);
    std::printf("%-14s %12s %14s %16s\n", "benchmark", "rollovers",
                "rollovers/s", "time-decrease*");

    for (const auto &name : config.workloads) {
        auto narrowSpec = baseSpec(config, name, BackendKind::Clean);
        narrowSpec.runtime.epoch = narrowEpoch;
        narrowSpec.runtime.maxThreads =
            std::min<ThreadId>(narrowSpec.runtime.maxThreads,
                               narrowEpoch.maxThreads());
        auto wideSpec = baseSpec(config, name, BackendKind::Clean);

        double narrowTime = 1e300, wideTime = 1e300;
        std::uint64_t rollovers = 0;
        bool failed = false;
        for (unsigned r = 0; r < config.repeats; ++r) {
            const auto narrow = runWorkload(narrowSpec);
            const auto wide = runWorkload(wideSpec);
            if (narrow.raceException || wide.raceException) {
                failed = true;
                break;
            }
            narrowTime = std::min(narrowTime, narrow.seconds);
            wideTime = std::min(wideTime, wide.seconds);
            rollovers = narrow.rollovers;
        }
        if (failed) {
            std::printf("%-14s %12s\n", name.c_str(), "FAILED");
            continue;
        }
        if (rollovers == 0) {
            std::printf("%-14s %12llu %14s %16s\n", name.c_str(),
                        0ull, "-", "-");
            continue;
        }
        const double decrease =
            100.0 * (narrowTime - wideTime) / narrowTime;
        std::printf("%-14s %12llu %14.1f %15.1f%%\n", name.c_str(),
                    static_cast<unsigned long long>(rollovers),
                    static_cast<double>(rollovers) / narrowTime,
                    decrease);
    }

    std::printf("\n*execution-time decrease of the rollover-free "
                "(23-bit) configuration relative to\n the narrow-clock "
                "one; paper: 0.0%%..2.4%% across barnes, fmm, "
                "radiosity, facesim,\n fluidanimate (5.6-34.8 "
                "rollovers/second).\n");
    return 0;
}
